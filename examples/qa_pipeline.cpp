// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Question answering with generated templates (paper Section 2.2),
// compared against the two non-template baselines on held-out questions.
//
// The workload is split: the first part builds templates via the SimJ
// join, the held-out part is answered (a) with the templates, (b) with
// gAnswer-style direct translation, (c) with DEANNA-style greedy joint
// disambiguation. Per-system macro precision/recall/F1 are printed.
//
// Build & run:  ./build/examples/qa_pipeline

#include <cstdio>

#include "core/join.h"
#include "templates/baselines.h"
#include "templates/qa.h"
#include "templates/template.h"
#include "workload/knowledge_base.h"
#include "workload/question_gen.h"

namespace {

struct MacroScore {
  double precision = 0.0;
  double recall = 0.0;
  int count = 0;

  void Add(const simj::tmpl::PrfScore& s) {
    precision += s.precision;
    recall += s.recall;
    ++count;
  }
  void Print(const char* name) const {
    double p = count > 0 ? precision / count : 0.0;
    double r = count > 0 ? recall / count : 0.0;
    double f1 = p + r > 0 ? 2 * p * r / (p + r) : 0.0;
    std::printf("%-22s precision=%.2f recall=%.2f F1=%.2f\n", name, p, r, f1);
  }
};

}  // namespace

int main() {
  using namespace simj;

  workload::KnowledgeBase kb(workload::KbConfig{.seed = 99});

  // Training workload -> templates.
  workload::WorkloadConfig train_config;
  train_config.seed = 5;
  train_config.num_questions = 120;
  train_config.distractor_queries = 60;
  workload::Workload train = workload::GenerateWorkload(kb, train_config);
  workload::JoinSides sides = workload::BuildJoinSides(kb, train);

  core::SimJParams params;
  params.tau = 1;
  params.alpha = 0.6;
  core::JoinResult joined = core::SimJoin(sides.d, sides.u, params, kb.dict());

  tmpl::TemplateStore store;
  for (const core::MatchedPair& pair : joined.pairs) {
    StatusOr<tmpl::Template> t = tmpl::GenerateTemplate(
        train.sparql_queries[pair.q_index], sides.d_graphs[pair.q_index],
        sides.u_parsed[pair.g_index], sides.u_graphs[pair.g_index],
        pair.mapping, kb.dict());
    if (t.ok()) store.Add(*std::move(t), kb.dict());
  }
  std::printf("generated %d templates from %zu matched pairs\n\n",
              store.size(), joined.pairs.size());

  // Held-out questions.
  workload::WorkloadConfig test_config;
  test_config.seed = 6;
  test_config.num_questions = 80;
  workload::Workload test = workload::GenerateWorkload(kb, test_config);

  tmpl::TemplateQa template_qa(&store, &kb.lexicon(), &kb.store(), &kb.dict());

  MacroScore template_score, direct_score, greedy_score;
  for (const workload::QuestionInstance& question : test.questions) {
    std::vector<std::vector<rdf::TermId>> gold =
        kb.store().Evaluate(question.gold_query.ToBgp(), kb.dict());

    StatusOr<tmpl::QaAnswer> a = template_qa.Answer(question.text);
    template_score.Add(tmpl::ScoreAnswer(gold, a.ok() ? a->rows
                                                      : decltype(a->rows){}));

    StatusOr<tmpl::QaAnswer> b =
        tmpl::DirectGraphQa(question.text, kb.lexicon(), kb.store(), kb.dict());
    direct_score.Add(tmpl::ScoreAnswer(gold, b.ok() ? b->rows
                                                    : decltype(b->rows){}));

    StatusOr<tmpl::QaAnswer> c =
        tmpl::JointGreedyQa(question.text, kb.lexicon(), kb.store(), kb.dict());
    greedy_score.Add(tmpl::ScoreAnswer(gold, c.ok() ? c->rows
                                                    : decltype(c->rows){}));
  }

  std::printf("held-out questions: %zu\n", test.questions.size());
  template_score.Print("templates (this paper)");
  direct_score.Print("direct (gAnswer-style)");
  greedy_score.Print("greedy (DEANNA-style)");
  return 0;
}
