// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Persistence tour: exporting a knowledge graph as N-Triples and a template
// library as text, reloading both, and answering a question with the
// reloaded artifacts — the workflow of shipping a template library built
// offline (the paper's "offline phase") to an online Q/A service.
//
// Build & run:  ./build/examples/persistence

#include <cstdio>

#include "core/join.h"
#include "rdf/ntriples.h"
#include "templates/qa.h"
#include "templates/template.h"
#include "workload/knowledge_base.h"
#include "workload/question_gen.h"

int main() {
  using namespace simj;

  // --- Offline: build templates from a workload ---
  workload::KnowledgeBase kb(workload::KbConfig{.seed = 7});
  workload::WorkloadConfig config;
  config.seed = 8;
  config.num_questions = 120;
  config.distractor_queries = 40;
  workload::Workload wl = workload::GenerateWorkload(kb, config);
  workload::JoinSides sides = workload::BuildJoinSides(kb, wl);

  core::SimJParams params;
  params.tau = 1;
  params.alpha = 0.6;
  core::JoinResult joined = core::SimJoin(sides.d, sides.u, params, kb.dict());

  tmpl::TemplateStore store;
  for (const core::MatchedPair& pair : joined.pairs) {
    StatusOr<tmpl::Template> t = tmpl::GenerateTemplate(
        wl.sparql_queries[pair.q_index], sides.d_graphs[pair.q_index],
        sides.u_parsed[pair.g_index], sides.u_graphs[pair.g_index],
        pair.mapping, kb.dict());
    if (t.ok()) store.Add(*std::move(t), kb.dict());
  }

  // --- Export both artifacts as text ---
  std::string kb_text = rdf::ToNTriples(kb.store(), kb.dict());
  std::string templates_text = tmpl::SerializeTemplates(store, kb.dict());
  std::printf("exported: %lld triples (%zu bytes of N-Triples), "
              "%d templates (%zu bytes)\n",
              static_cast<long long>(kb.store().size()), kb_text.size(),
              store.size(), templates_text.size());

  // --- Online: reload into fresh structures and answer ---
  rdf::TripleStore reloaded_store;
  StatusOr<int64_t> triples =
      rdf::ParseNTriples(kb_text, kb.dict(), &reloaded_store);
  StatusOr<tmpl::TemplateStore> reloaded_templates =
      tmpl::ParseTemplates(templates_text, kb.dict());
  if (!triples.ok() || !reloaded_templates.ok()) {
    std::printf("reload failed\n");
    return 1;
  }
  std::printf("reloaded: %lld triples, %d templates\n",
              static_cast<long long>(*triples), reloaded_templates->size());

  tmpl::TemplateQa qa(&*reloaded_templates, &kb.lexicon(), &reloaded_store,
                      &kb.dict());
  int answered = 0;
  for (int i = 0; i < 5 && i < static_cast<int>(wl.questions.size()); ++i) {
    const std::string& question = wl.questions[i].text;
    StatusOr<tmpl::QaAnswer> answer = qa.Answer(question);
    std::printf("\nQ: %s\n", question.c_str());
    if (!answer.ok()) {
      std::printf("A: (no template matched: %s)\n",
                  answer.status().message().c_str());
      continue;
    }
    ++answered;
    std::printf("A: %zu rows via template %d (phi=%.2f)\n",
                answer->rows.size(), answer->template_index,
                answer->matching_proportion);
  }
  std::printf("\nanswered %d/5 sample questions from reloaded artifacts\n",
              answered);
  return 0;
}
