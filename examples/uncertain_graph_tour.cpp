// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Tour of the uncertain-graph machinery: possible worlds, bounds, and the
// pruning pipeline on a single pair — handy when learning the API.
//
// Build & run:  ./build/examples/uncertain_graph_tour

#include <cstdio>

#include "core/groups.h"
#include "core/similarity.h"
#include "ged/edit_distance.h"
#include "ged/lower_bounds.h"
#include "graph/uncertain_graph.h"

int main() {
  using namespace simj;

  graph::LabelDictionary dict;
  graph::LabelId nba = dict.Intern("NBA_Player");
  graph::LabelId prof = dict.Intern("Professor");
  graph::LabelId actor = dict.Intern("Actor");
  graph::LabelId state = dict.Intern("State");
  graph::LabelId city = dict.Intern("City");
  graph::LabelId var = dict.Intern("?x");
  graph::LabelId spouse = dict.Intern("spouse");
  graph::LabelId born = dict.Intern("birthPlace");

  // "which actor is married to Michael Jordan born in a city of NY":
  // Michael Jordan is an NBA player / professor / actor; NY is a state or a
  // city (paper Fig. 2).
  graph::UncertainGraph g;
  int v_who = g.AddCertainVertex(var);
  int v_mj = g.AddVertex({{nba, 0.6}, {prof, 0.3}, {actor, 0.1}});
  int v_ny = g.AddVertex({{state, 0.7}, {city, 0.3}});
  g.AddEdge(v_who, v_mj, spouse);
  g.AddEdge(v_mj, v_ny, born);

  std::printf("uncertain graph:\n%s\n", g.DebugString(dict).c_str());
  std::printf("possible worlds: %lld (total mass %.3f)\n\n",
              static_cast<long long>(g.NumPossibleWorlds()), g.TotalMass());

  for (graph::PossibleWorldIterator it(g); !it.Done(); it.Next()) {
    graph::LabeledGraph world = g.Materialize(it.choice());
    std::printf("world p=%.3f: MJ=%s NY=%s\n", it.probability(),
                dict.Name(world.vertex_label(v_mj)).c_str(),
                dict.Name(world.vertex_label(v_ny)).c_str());
  }

  // A query asking for actors married to an actor born in a city.
  graph::LabeledGraph q;
  int q_who = q.AddVertex(var);
  int q_actor = q.AddVertex(actor);
  int q_city = q.AddVertex(city);
  q.AddEdge(q_who, q_actor, spouse);
  q.AddEdge(q_actor, q_city, born);

  int tau = 1;
  std::printf("\nCSS lower bound (all worlds): %d\n",
              ged::CssLowerBoundUncertain(q, g, dict));
  std::printf("SimP upper bound (Markov):     %.3f\n",
              core::UpperBoundSimP(q, g, tau, dict));
  core::SimPResult simp = core::ComputeSimP(q, g, tau, dict);
  std::printf("exact SimP (tau=%d):           %.3f\n", tau, simp.probability);

  core::GroupingOptions options;
  options.group_count = 4;
  core::GroupingResult grouping =
      core::PartitionPossibleWorlds(q, g, tau, dict, options);
  std::printf("grouped upper bound (GN=4):    %.3f over %zu live groups\n",
              grouping.simp_upper_bound, grouping.live_groups.size());
  return 0;
}
