// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Quickstart: the paper's running example as code.
//
// Builds one SPARQL query graph ("SELECT ?x WHERE { ?x type Artist . ?x
// graduatedFrom Harvard_University }", with the entity typed as University)
// and one uncertain question graph ("Which politician graduated from
// CIT?", where CIT links to a University with confidence 0.8 and to a
// Company with 0.2), then runs the SimJ similarity join and prints the
// matched pairs with their similarity probabilities and vertex mappings.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/join.h"
#include "graph/label.h"

int main() {
  using namespace simj;

  graph::LabelDictionary dict;
  graph::LabelId var_x = dict.Intern("?x");
  graph::LabelId artist = dict.Intern("Artist");
  graph::LabelId politician = dict.Intern("Politician");
  graph::LabelId university = dict.Intern("University");
  graph::LabelId company = dict.Intern("Company");
  graph::LabelId type = dict.Intern("type");
  graph::LabelId graduated_from = dict.Intern("graduatedFrom");

  // D: the SPARQL side (certain graph). Entities are labeled with their
  // class, so "Harvard_University" joins as "University".
  graph::LabeledGraph q;
  int q_var = q.AddVertex(var_x);
  int q_artist = q.AddVertex(artist);
  int q_univ = q.AddVertex(university);
  q.AddEdge(q_var, q_artist, type);
  q.AddEdge(q_var, q_univ, graduated_from);

  // U: the question side (uncertain graph). "CIT" is ambiguous.
  graph::UncertainGraph g;
  int g_var = g.AddCertainVertex(var_x);
  int g_pol = g.AddCertainVertex(politician);
  int g_cit = g.AddVertex({{university, 0.8}, {company, 0.2}});
  g.AddEdge(g_var, g_pol, type);
  g.AddEdge(g_var, g_cit, graduated_from);

  core::SimJParams params;
  params.tau = 1;     // allow one edit (Artist vs Politician)
  params.alpha = 0.7; // require 70% of the probability mass to qualify

  core::JoinResult result = core::SimJoin({q}, {g}, params, dict);

  std::printf("SimJ over |D|=1, |U|=1 with tau=%d alpha=%.2f\n", params.tau,
              params.alpha);
  std::printf("pairs examined: %lld, pruned (structural): %lld, "
              "pruned (probabilistic): %lld, candidates: %lld\n",
              static_cast<long long>(result.stats.total_pairs),
              static_cast<long long>(result.stats.pruned_structural),
              static_cast<long long>(result.stats.pruned_probabilistic),
              static_cast<long long>(result.stats.candidates));

  for (const core::MatchedPair& pair : result.pairs) {
    std::printf("\nmatch: q%d <-> g%d  SimP=%.3f  (best world ged=%d)\n",
                pair.q_index, pair.g_index, pair.similarity_probability,
                pair.best_world_ged);
    for (int u = 0; u < static_cast<int>(pair.mapping.size()); ++u) {
      int v = pair.mapping[u];
      std::printf("  q vertex %d (%s) -> %s\n", u,
                  dict.Name(q.vertex_label(u)).c_str(),
                  v < 0 ? "(deleted)" : dict.Name(
                      g.alternatives(v)[0].label).c_str());
    }
  }
  if (result.pairs.empty()) std::printf("no pairs above the thresholds\n");
  return 0;
}
