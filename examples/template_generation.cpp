// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// End-to-end template generation (the paper's headline pipeline).
//
// 1. Generate a synthetic knowledge base and a paired workload of natural
//    language questions + SPARQL queries (with distractors).
// 2. Run the NLP pipeline: questions -> semantic query graphs -> uncertain
//    graphs; SPARQL -> typed certain graphs.
// 3. SimJ join the two sides (tau=1, alpha=0.6).
// 4. Turn every matched pair into a template and print a sample, in the
//    spirit of the paper's Figs. 4, 10 and 16.
//
// Build & run:  ./build/examples/template_generation

#include <cstdio>

#include "core/join.h"
#include "core/topk.h"
#include "templates/template.h"
#include "workload/knowledge_base.h"
#include "workload/question_gen.h"

int main() {
  using namespace simj;

  workload::KbConfig kb_config;
  kb_config.seed = 2026;
  workload::KnowledgeBase kb(kb_config);

  workload::WorkloadConfig wl_config;
  wl_config.num_questions = 60;
  wl_config.distractor_queries = 40;
  workload::Workload wl = workload::GenerateWorkload(kb, wl_config);

  workload::JoinSides sides = workload::BuildJoinSides(kb, wl);
  std::printf("workload: %zu questions (%d parse failures, %d link "
              "failures), %zu SPARQL queries\n",
              wl.questions.size(), sides.parse_failures,
              sides.build_failures, wl.sparql_queries.size());

  core::SimJParams params;
  params.tau = 1;
  params.alpha = 0.6;
  core::JoinResult joined = core::SimJoin(sides.d, sides.u, params, kb.dict());
  std::printf("join: %zu similar pairs, candidate ratio %.4f%%\n",
              joined.pairs.size(), 100.0 * joined.stats.CandidateRatio());

  tmpl::TemplateStore store;
  int generated = 0;
  for (const core::MatchedPair& pair : joined.pairs) {
    int question_index = sides.u_question_index[pair.g_index];
    StatusOr<tmpl::Template> t = tmpl::GenerateTemplate(
        wl.sparql_queries[pair.q_index], sides.d_graphs[pair.q_index],
        sides.u_parsed[pair.g_index], sides.u_graphs[pair.g_index],
        pair.mapping, kb.dict());
    if (!t.ok()) continue;
    t->support_simp = pair.similarity_probability;
    t->support_ged = pair.best_world_ged;
    t->source_question = wl.questions[question_index].text;
    if (store.Add(*std::move(t), kb.dict())) ++generated;
  }
  std::printf("templates: %d distinct (from %zu pairs)\n\n", generated,
              joined.pairs.size());

  int shown = 0;
  for (const tmpl::Template& t : store.templates()) {
    if (shown++ >= 5) break;
    std::printf("--- template %d (SimP=%.2f, ged=%d)\n", shown,
                t.support_simp, t.support_ged);
    std::printf("  source : %s\n", t.source_question.c_str());
    std::printf("  NL     : %s\n", t.NlPattern().c_str());
    std::printf("  SPARQL : %s\n",
                sparql::ToSparqlText(t.pattern, kb.dict()).c_str());
  }

  // Alternative to the thresholded join: the best 2 SPARQL matches per
  // question, ranked by exact SimP.
  core::TopKParams topk_params;
  topk_params.tau = 1;
  topk_params.k = 2;
  core::TopKResult topk =
      core::TopKJoin(sides.d, sides.u, topk_params, kb.dict());
  std::printf("\ntop-k join: evaluated %lld of %lld pairs (%lld pruned "
              "structurally, %lld by the adaptive threshold)\n",
              static_cast<long long>(topk.stats.evaluated),
              static_cast<long long>(topk.stats.total_pairs),
              static_cast<long long>(topk.stats.pruned_structural),
              static_cast<long long>(topk.stats.pruned_by_threshold));
  for (int gi = 0; gi < 2 && gi < static_cast<int>(topk.matches.size());
       ++gi) {
    int question_index = sides.u_question_index[gi];
    std::printf("question: %s\n",
                wl.questions[question_index].text.c_str());
    for (const core::MatchedPair& pair : topk.matches[gi]) {
      std::printf("  SimP=%.2f  %s\n", pair.similarity_probability,
                  wl.sparql_texts[pair.q_index].c_str());
    }
  }
  return 0;
}
