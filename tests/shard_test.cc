// Tests for the shard planner (dist/shard.h): bucket homogeneity, size
// bounds, exact cross-product coverage, determinism, and index-skip
// accounting that mirrors IndexedSimJoin.

#include "dist/shard.h"

#include <map>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/join.h"
#include "test_util.h"

namespace simj::dist {
namespace {

using simj::testing::MakeRandomJoinWorkload;
using simj::testing::MakeSkewedBucketWorkload;
using simj::testing::RandomJoinWorkload;

core::SimJParams BaseParams() {
  core::SimJParams params;
  params.tau = 2;
  params.alpha = 0.3;
  params.slow_pair_log_ms = 0.0;
  return params;
}

TEST(ShardPlanTest, NoIndexPlanCoversCrossProductExactlyOnce) {
  RandomJoinWorkload w =
      MakeRandomJoinWorkload(21, {.num_certain = 6, .num_uncertain = 5});
  ShardPlanOptions options;
  options.use_index = false;
  options.max_pairs_per_shard = 4;
  ShardPlan plan = PlanShards(w.d, w.u, BaseParams(), options);

  EXPECT_EQ(plan.pre_stats.total_pairs, 0);
  EXPECT_TRUE(plan.pre_explains.empty());
  std::set<std::pair<int, int>> seen;
  for (const Shard& shard : plan.shards) {
    for (const auto& pair : shard.pairs) {
      EXPECT_TRUE(seen.insert(pair).second)
          << "pair <" << pair.first << "," << pair.second
          << "> planned twice";
    }
  }
  EXPECT_EQ(plan.planned_pairs, static_cast<int64_t>(seen.size()));
  EXPECT_EQ(seen.size(), w.d.size() * w.u.size());
}

TEST(ShardPlanTest, ShardsAreSignatureHomogeneousAndSizeBounded) {
  RandomJoinWorkload w =
      MakeRandomJoinWorkload(22, {.num_certain = 8, .num_uncertain = 6});
  ShardPlanOptions options;
  options.max_pairs_per_shard = 3;
  ShardPlan plan = PlanShards(w.d, w.u, BaseParams(), options);

  for (const Shard& shard : plan.shards) {
    EXPECT_LE(shard.pairs.size(), 3u);
    EXPECT_FALSE(shard.pairs.empty());
    for (const auto& [qi, gi] : shard.pairs) {
      EXPECT_EQ(w.d[static_cast<size_t>(qi)].num_vertices(), shard.vertices);
      EXPECT_EQ(w.d[static_cast<size_t>(qi)].num_edges(), shard.edges);
    }
  }
  // Shard ids are dense and ascending.
  for (size_t s = 0; s < plan.shards.size(); ++s) {
    EXPECT_EQ(plan.shards[s].shard_id, static_cast<int>(s));
  }
}

TEST(ShardPlanTest, IndexPlanAccountsSkipsLikeIndexedSimJoin) {
  RandomJoinWorkload w =
      MakeRandomJoinWorkload(23, {.num_certain = 8, .num_uncertain = 6});
  core::SimJParams params = BaseParams();
  ShardPlanOptions options;
  options.use_index = true;
  options.max_pairs_per_shard = 5;
  ShardPlan plan = PlanShards(w.d, w.u, params, options);

  // Planned + skipped partitions the cross product, and skips are counted
  // as structurally pruned.
  const int64_t cross =
      static_cast<int64_t>(w.d.size()) * static_cast<int64_t>(w.u.size());
  EXPECT_EQ(plan.planned_pairs + plan.pre_stats.total_pairs, cross);
  EXPECT_EQ(plan.pre_stats.pruned_structural, plan.pre_stats.total_pairs);
  EXPECT_EQ(plan.pre_stats.candidates, 0);

  // The planned pair set is exactly the index's candidate set.
  core::CertainGraphIndex index(&w.d);
  std::set<std::pair<int, int>> expected;
  for (int gi = 0; gi < static_cast<int>(w.u.size()); ++gi) {
    for (int qi : index.Candidates(w.u[static_cast<size_t>(gi)], params.tau)) {
      expected.emplace(qi, gi);
    }
  }
  std::set<std::pair<int, int>> planned;
  for (const Shard& shard : plan.shards) {
    planned.insert(shard.pairs.begin(), shard.pairs.end());
  }
  EXPECT_EQ(planned, expected);
}

TEST(ShardPlanTest, ExplainModeRecordsEverySkippedPairWhenUnsampled) {
  RandomJoinWorkload w =
      MakeRandomJoinWorkload(24, {.num_certain = 6, .num_uncertain = 6});
  core::SimJParams params = BaseParams();
  params.explain.enabled = true;
  params.explain.sample_every = 1;
  ShardPlanOptions options;
  ShardPlan plan = PlanShards(w.d, w.u, params, options);
  EXPECT_EQ(static_cast<int64_t>(plan.pre_explains.size()),
            plan.pre_stats.total_pairs);
  for (const core::PairExplain& explain : plan.pre_explains) {
    EXPECT_EQ(explain.pruned_by, core::PruneStage::kIndexCount);
  }
}

TEST(ShardPlanTest, PlanIsDeterministic) {
  RandomJoinWorkload w = MakeRandomJoinWorkload(25);
  ShardPlanOptions options;
  options.max_pairs_per_shard = 2;
  ShardPlan a = PlanShards(w.d, w.u, BaseParams(), options);
  ShardPlan b = PlanShards(w.d, w.u, BaseParams(), options);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  EXPECT_EQ(a.planned_pairs, b.planned_pairs);
  for (size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].shard_id, b.shards[s].shard_id);
    EXPECT_EQ(a.shards[s].vertices, b.shards[s].vertices);
    EXPECT_EQ(a.shards[s].edges, b.shards[s].edges);
    EXPECT_EQ(a.shards[s].pairs, b.shards[s].pairs);
  }
}

TEST(ShardPlanTest, SkewedWorkloadYieldsOneHotBucket) {
  RandomJoinWorkload w = MakeSkewedBucketWorkload(26);
  ShardPlanOptions options;
  options.max_pairs_per_shard = 8;
  ShardPlan plan = PlanShards(w.d, w.u, BaseParams(), options);

  // Count shards per signature: the (4,3) hot bucket must dominate.
  std::map<std::pair<int, int>, int> shards_per_signature;
  for (const Shard& shard : plan.shards) {
    ++shards_per_signature[{shard.vertices, shard.edges}];
  }
  ASSERT_TRUE(shards_per_signature.count({4, 3}) > 0);
  const int hot = shards_per_signature[{4, 3}];
  EXPECT_GE(hot, 8);  // 24 hot graphs x 6 uncertain / 8 per shard
  for (const auto& [signature, count] : shards_per_signature) {
    if (signature != std::make_pair(4, 3)) EXPECT_LT(count, hot);
  }
}

}  // namespace
}  // namespace simj::dist
