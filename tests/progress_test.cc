// Tests for the live join-progress tracker (core/progress.h): monotone
// counters under a concurrent sampler, ETA math, the stall watchdog on a
// deliberately-parked worker, and byte-identical join results with the
// introspection machinery armed vs. idle.

#include "core/progress.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/join.h"
#include "test_util.h"
#include "util/log.h"
#include "util/metrics.h"

namespace simj::core {
namespace {

using simj::testing::MakeRandomJoinWorkload;
using simj::testing::RandomJoinWorkload;

SimJParams BaseParams() {
  SimJParams params;
  params.tau = 2;
  params.alpha = 0.3;
  params.group_count = 2;
  params.slow_pair_log_ms = 0.0;  // keep the per-pair watchdog out of the way
  return params;
}

JoinResult RunJoin(const RandomJoinWorkload& w, const SimJParams& params) {
  return SimJoin(w.d, w.u, params, w.dict);
}

void ExpectSameResults(const JoinResult& a, const JoinResult& b) {
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].q_index, b.pairs[i].q_index);
    EXPECT_EQ(a.pairs[i].g_index, b.pairs[i].g_index);
    EXPECT_EQ(a.pairs[i].similarity_probability,
              b.pairs[i].similarity_probability);
    EXPECT_EQ(a.pairs[i].mapping, b.pairs[i].mapping);
    EXPECT_EQ(a.pairs[i].best_world_ged, b.pairs[i].best_world_ged);
  }
  EXPECT_EQ(a.stats.total_pairs, b.stats.total_pairs);
  EXPECT_EQ(a.stats.pruned_structural, b.stats.pruned_structural);
  EXPECT_EQ(a.stats.pruned_probabilistic, b.stats.pruned_probabilistic);
  EXPECT_EQ(a.stats.candidates, b.stats.candidates);
  EXPECT_EQ(a.stats.results, b.stats.results);
  EXPECT_EQ(a.stats.verify.worlds_enumerated, b.stats.verify.worlds_enumerated);
  EXPECT_EQ(a.stats.verify.ged_calls, b.stats.verify.ged_calls);
}

TEST(EtaTest, EtaSecondsMath) {
  EXPECT_EQ(JoinProgress::EtaSeconds(0, 5.0), 0.0);    // done
  EXPECT_EQ(JoinProgress::EtaSeconds(-3, 5.0), 0.0);   // clamped
  EXPECT_EQ(JoinProgress::EtaSeconds(100, 0.0), -1.0);  // no throughput yet
  EXPECT_EQ(JoinProgress::EtaSeconds(100, -2.0), -1.0);
  EXPECT_DOUBLE_EQ(JoinProgress::EtaSeconds(100, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(JoinProgress::EtaSeconds(1, 4.0), 0.25);
}

TEST(ProgressTest, SnapshotCountsMatchJoinStats) {
  RandomJoinWorkload w = MakeRandomJoinWorkload(11);
  SimJParams params = BaseParams();
  JoinResult result = RunJoin(w, params);

  // The join finished; the tracker still holds its baselines, so the
  // deltas must equal the join's own stats.
  ProgressSnapshot s = JoinProgress::Global().Snapshot();
  EXPECT_FALSE(s.active);
  EXPECT_EQ(s.total_pairs, result.stats.total_pairs);
  EXPECT_EQ(s.completed_pairs, result.stats.total_pairs);
  EXPECT_EQ(s.pruned_structural, result.stats.pruned_structural);
  EXPECT_EQ(s.pruned_probabilistic, result.stats.pruned_probabilistic);
  EXPECT_EQ(s.candidates, result.stats.candidates);
  EXPECT_EQ(s.results, result.stats.results);
  EXPECT_GE(s.elapsed_seconds, 0.0);
}

TEST(ProgressTest, MonotoneCountersUnderConcurrentSampler) {
  RandomJoinWorkload w = MakeRandomJoinWorkload(
      12, {.num_certain = 8, .num_uncertain = 8});
  SimJParams params = BaseParams();
  params.num_threads = 8;

  std::atomic<bool> stop{false};
  std::vector<ProgressSnapshot> samples;
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      samples.push_back(JoinProgress::Global().Snapshot());
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  JoinResult result = RunJoin(w, params);
  stop.store(true, std::memory_order_release);
  sampler.join();

  const int64_t join_id = JoinProgress::Global().Snapshot().joins_started;
  int64_t previous = 0;
  for (const ProgressSnapshot& s : samples) {
    if (s.joins_started != join_id) continue;  // before the join began
    EXPECT_GE(s.completed_pairs, previous);
    EXPECT_LE(s.completed_pairs, s.total_pairs);
    EXPECT_GE(s.completed_pairs,
              s.pruned_structural + s.pruned_probabilistic);
    previous = s.completed_pairs;
  }
  EXPECT_EQ(result.stats.total_pairs, 64);
}

TEST(ProgressTest, StallWatchdogFlagsParkedWorker) {
  JoinProgress& progress = JoinProgress::Global();
  progress.BeginJoin(/*total_pairs=*/10, /*workers=*/2, /*heartbeats=*/true);

  // Park worker 0 inside pair <3,7>: beat once, then go silent.
  progress.Heartbeat(0, 3, 7);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  std::vector<StallEvent> events = progress.CheckStalls(/*stall_warn_ms=*/1.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].worker, 0);
  EXPECT_EQ(events[0].q_index, 3);
  EXPECT_EQ(events[0].g_index, 7);
  EXPECT_GT(events[0].stalled_ms, 1.0);

  // The same stalled heartbeat is never reported twice.
  EXPECT_TRUE(progress.CheckStalls(1.0).empty());

  // The worker consumes the flag exactly once (it logs the pair's explain
  // record when the stalled pair finally completes).
  EXPECT_TRUE(progress.ConsumeStallFlag(0));
  EXPECT_FALSE(progress.ConsumeStallFlag(0));

  // A fresh pair re-arms detection for that worker.
  progress.Heartbeat(0, 4, 8);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  events = progress.CheckStalls(1.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].q_index, 4);

  // An idle worker (pair done, heartbeat cleared) never reads as stalled.
  progress.ConsumeStallFlag(0);
  progress.PairDone(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(progress.CheckStalls(1.0).empty());
  progress.EndJoin();
}

TEST(ProgressTest, RequeuedShardNeverRegressesCompletionOrEta) {
  // The distributed join requeues shards abandoned by dead workers: the
  // pairs a worker evaluated before dying stay in the registry counters,
  // and the re-execution counts them again. The tracker must present that
  // overshoot as "done", never as >100% completion or a negative ETA.
  JoinProgress& progress = JoinProgress::Global();
  metrics::Counter& pairs =
      metrics::Registry::Global().GetCounter("simj_join_pairs_total");
  progress.BeginJoin(/*total_pairs=*/10, /*workers=*/2, /*heartbeats=*/true);

  // Worker 1 completes 6 of its shard's pairs, then dies mid-shard.
  progress.Heartbeat(1, 0, 0);
  pairs.Add(6);
  ProgressSnapshot before = progress.Snapshot();
  EXPECT_EQ(before.completed_pairs, 6);
  EXPECT_LE(before.completed_pairs, before.total_pairs);

  // The coordinator requeues the dead worker's shard; worker 0 re-runs it
  // from the start. 3 pairs the dead worker already counted are counted
  // again, then the remaining 7: the registry delta lands at 16 > 10.
  progress.PairDone(1);
  progress.Heartbeat(0, 0, 0);
  pairs.Add(3);
  pairs.Add(7);
  progress.PairDone(0);

  ProgressSnapshot after = progress.Snapshot();
  EXPECT_GE(after.completed_pairs, before.completed_pairs)
      << "completion regressed across a requeue";
  EXPECT_EQ(after.completed_pairs, after.total_pairs)
      << "overshoot must clamp to the planned total";
  EXPECT_GE(after.eta_seconds, 0.0)
      << "a fully-complete join must not report a negative ETA";
  EXPECT_DOUBLE_EQ(after.eta_seconds, 0.0);
  progress.EndJoin();
}

TEST(ProgressTest, HeartbeatsAppearInSnapshotWhileArmed) {
  JoinProgress& progress = JoinProgress::Global();
  progress.BeginJoin(10, 2, /*heartbeats=*/true);
  progress.Heartbeat(1, 5, 6);
  ProgressSnapshot s = progress.Snapshot();
  ASSERT_EQ(s.heartbeats.size(), 1u);
  EXPECT_EQ(s.heartbeats[0].worker, 1);
  EXPECT_EQ(s.heartbeats[0].q_index, 5);
  EXPECT_EQ(s.heartbeats[0].g_index, 6);
  EXPECT_GE(s.heartbeats[0].age_ms, 0.0);
  progress.PairDone(1);
  EXPECT_TRUE(progress.Snapshot().heartbeats.empty());
  progress.EndJoin();
}

TEST(ProgressTest, StatusJsonCarriesProgressFields) {
  JoinProgress& progress = JoinProgress::Global();
  progress.BeginJoin(10, 2, /*heartbeats=*/true);
  progress.Heartbeat(0, 1, 2);
  std::string json = progress.StatusJson();
  EXPECT_NE(json.find("\"active\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_pairs\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"completed_pairs\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"eta_seconds\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"heartbeats\":[{\"worker\":0,"), std::string::npos)
      << json;
  progress.EndJoin();
  EXPECT_NE(progress.StatusJson().find("\"active\":false"),
            std::string::npos);
}

TEST(ProgressTest, ProgressEveryLogsRateLimitedLines) {
  auto sink = std::make_unique<log::CaptureSink>();
  log::CaptureSink* capture = sink.get();
  auto previous = log::SetSink(std::move(sink));

  RandomJoinWorkload w = MakeRandomJoinWorkload(13);
  SimJParams params = BaseParams();
  params.progress_every = 1;
  JoinResult result = RunJoin(w, params);
  EXPECT_GT(result.stats.total_pairs, 0);

  int progress_lines = 0;
  for (const log::Entry& entry : capture->Entries()) {
    if (entry.message.find("join progress:") != std::string::npos) {
      ++progress_lines;
      EXPECT_EQ(entry.level, log::Level::kInfo);
    }
  }
  // The first eligible completion always logs; later ones are rate-limited
  // to one line per 100 ms, so a fast join may produce exactly one.
  EXPECT_GE(progress_lines, 1);
  log::SetSink(std::move(previous));
}

TEST(ProgressTest, StallWatchdogLogsDuringRealJoin) {
  auto sink = std::make_unique<log::CaptureSink>();
  log::CaptureSink* capture = sink.get();
  auto previous = log::SetSink(std::move(sink));

  RandomJoinWorkload w = MakeRandomJoinWorkload(14);
  SimJParams params = BaseParams();
  params.num_threads = 2;
  // A threshold of 0 keeps the watchdog off; a tiny positive threshold arms
  // the monitor thread. Whether it observes a stall depends on timing; the
  // assertion is only that the join completes cleanly with it armed and
  // that any stall lines carry the expected shape.
  params.stall_warn_ms = 0.01;
  JoinResult with_watchdog = RunJoin(w, params);

  for (const log::Entry& entry : capture->Entries()) {
    if (entry.message.find("stalled worker") != std::string::npos) {
      EXPECT_EQ(entry.level, log::Level::kWarn);
      EXPECT_NE(entry.message.find("pair <q="), std::string::npos);
    }
    if (entry.message.find("stalled pair completed") != std::string::npos) {
      // The completion log carries the pair's full explain record.
      EXPECT_NE(entry.message.find("<q="), std::string::npos);
    }
  }
  log::SetSink(std::move(previous));

  params.stall_warn_ms = 0.0;
  JoinResult without = RunJoin(w, params);
  ExpectSameResults(with_watchdog, without);
}

TEST(ProgressTest, ResultsByteIdenticalWithIntrospectionArmed) {
  RandomJoinWorkload w = MakeRandomJoinWorkload(
      15, {.num_certain = 6, .num_uncertain = 6});
  for (int threads : {1, 2, 8}) {
    SimJParams params = BaseParams();
    params.num_threads = threads;
    params.explain.enabled = true;  // explain output must match too
    JoinResult plain = RunJoin(w, params);

    JoinProgress::Global().RequestHeartbeats(true);
    SimJParams armed = params;
    armed.stall_warn_ms = 5.0;
    armed.progress_every = 7;
    JoinResult live = RunJoin(w, armed);
    JoinProgress::Global().RequestHeartbeats(false);

    ExpectSameResults(plain, live);
    ASSERT_EQ(plain.explains.size(), live.explains.size());
    for (size_t i = 0; i < plain.explains.size(); ++i) {
      EXPECT_EQ(FormatExplain(plain.explains[i], params),
                FormatExplain(live.explains[i], armed))
          << "explain " << i << " diverged at threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace simj::core
