#include <set>

#include <gtest/gtest.h>

#include "ged/edit_distance.h"
#include "workload/io.h"
#include "workload/knowledge_base.h"
#include "workload/question_gen.h"
#include "workload/synthetic.h"

namespace simj::workload {
namespace {

TEST(KnowledgeBaseTest, SchemaInvariants) {
  KnowledgeBase kb(KbConfig{.seed = 1});
  EXPECT_GT(kb.classes().size(), 1u);
  EXPECT_GT(kb.predicates().size(), 0u);
  EXPECT_GT(kb.entities().size(), 0u);
  for (const auto& predicate : kb.predicates()) {
    EXPECT_GE(predicate.domain_class, 0);
    EXPECT_LT(predicate.domain_class,
              static_cast<int>(kb.classes().size()));
    EXPECT_GE(predicate.range_class, 0);
    EXPECT_FALSE(predicate.phrases.empty());
  }
}

TEST(KnowledgeBaseTest, EveryEntityHasTypeTripleAndLink) {
  KnowledgeBase kb(KbConfig{.seed = 2});
  for (const auto& entity : kb.entities()) {
    EXPECT_TRUE(kb.store().Contains(entity.term, kb.type_predicate(),
                                    kb.classes()[entity.class_index].term));
    const std::vector<nlp::EntityLink>* links =
        kb.lexicon().FindEntity(entity.phrase);
    ASSERT_NE(links, nullptr) << entity.phrase;
    bool found = false;
    for (const nlp::EntityLink& link : *links) {
      if (link.entity == entity.term) found = true;
    }
    EXPECT_TRUE(found) << entity.phrase;
  }
}

TEST(KnowledgeBaseTest, FactsRespectRangeTyping) {
  KnowledgeBase kb(KbConfig{.seed = 3});
  for (size_t e = 0; e < kb.entities().size(); ++e) {
    for (const KnowledgeBase::Fact& fact : kb.FactsOf(static_cast<int>(e))) {
      const auto& predicate = kb.predicates()[fact.predicate_index];
      EXPECT_EQ(kb.entities()[fact.object_entity].class_index,
                predicate.range_class);
    }
  }
}

TEST(KnowledgeBaseTest, TypeResolverCoversEntitiesOnly) {
  KnowledgeBase kb(KbConfig{.seed = 4});
  auto resolver = kb.TypeResolver();
  const auto& entity = kb.entities().front();
  EXPECT_EQ(resolver(entity.term), kb.classes()[entity.class_index].term);
  EXPECT_EQ(resolver(kb.classes().front().term), graph::kInvalidLabel);
  EXPECT_EQ(resolver(kb.type_predicate()), graph::kInvalidLabel);
}

TEST(KnowledgeBaseTest, AmbiguityKnobCreatesSharedPhrases) {
  KbConfig config;
  config.seed = 5;
  config.entity_phrase_ambiguity = 0.5;
  KnowledgeBase kb(config);
  int shared = 0;
  std::set<std::string> seen;
  for (const auto& entity : kb.entities()) {
    const auto* links = kb.lexicon().FindEntity(entity.phrase);
    if (links != nullptr && links->size() > 1 &&
        seen.insert(entity.phrase).second) {
      ++shared;
    }
  }
  EXPECT_GT(shared, 0);
}

TEST(KnowledgeBaseTest, ClosedDomainUsesMmClasses) {
  KbConfig config;
  config.seed = 6;
  config.closed_domain = true;
  KnowledgeBase kb(config);
  for (const auto& cls : kb.classes()) {
    EXPECT_TRUE(cls.name == "Film" || cls.name == "Actor" ||
                cls.name == "Director" || cls.name == "Band" ||
                cls.name == "Album" || cls.name == "Song" ||
                cls.name == "Composer" || cls.name == "Genre")
        << cls.name;
  }
}

TEST(WorkloadTest, GoldQueriesHaveAnswers) {
  KnowledgeBase kb(KbConfig{.seed = 7});
  WorkloadConfig config;
  config.seed = 7;
  config.num_questions = 40;
  Workload workload = GenerateWorkload(kb, config);
  ASSERT_EQ(workload.questions.size(), 40u);
  for (const QuestionInstance& question : workload.questions) {
    auto rows = kb.store().Evaluate(question.gold_query.ToBgp(), kb.dict());
    EXPECT_FALSE(rows.empty()) << question.text;
    EXPECT_GE(question.num_relations, 1);
    ASSERT_GE(question.gold_sparql_index, 0);
    EXPECT_EQ(workload.sparql_texts[question.gold_sparql_index],
              question.gold_query_text);
  }
}

TEST(WorkloadTest, DistractorsEnlargeD) {
  KnowledgeBase kb(KbConfig{.seed = 8});
  WorkloadConfig config;
  config.seed = 8;
  config.num_questions = 20;
  config.distractor_queries = 30;
  Workload workload = GenerateWorkload(kb, config);
  EXPECT_GT(workload.sparql_queries.size(), 20u);
}

TEST(WorkloadTest, JoinSidesMostQuestionsSurviveTheNlpPipeline) {
  KnowledgeBase kb(KbConfig{.seed = 9});
  WorkloadConfig config;
  config.seed = 9;
  config.num_questions = 60;
  Workload workload = GenerateWorkload(kb, config);
  JoinSides sides = BuildJoinSides(kb, workload);
  EXPECT_EQ(sides.d.size(), workload.sparql_queries.size());
  // The rule-based parser should handle the bulk of the generated grammar;
  // trap phrases cause a small number of failures.
  EXPECT_GE(sides.u.size(), workload.questions.size() * 7 / 10);
  EXPECT_EQ(sides.u.size(), sides.u_parsed.size());
  EXPECT_EQ(sides.u.size(), sides.u_graphs.size());
}

TEST(WorkloadTest, SameIntentIdentifiesGoldPairs) {
  KnowledgeBase kb(KbConfig{.seed = 10});
  WorkloadConfig config;
  config.seed = 10;
  config.num_questions = 10;
  Workload workload = GenerateWorkload(kb, config);
  const auto& q0 = workload.questions[0];
  EXPECT_TRUE(SameIntent(kb, q0.gold_query,
                         workload.sparql_queries[q0.gold_sparql_index]));
}

TEST(WorkloadTest, WhoQuestionsDropTheClassConstraint) {
  KnowledgeBase kb(KbConfig{.seed = 16});
  WorkloadConfig config;
  config.seed = 16;
  config.num_questions = 200;
  Workload workload = GenerateWorkload(kb, config);
  int who_questions = 0;
  for (const QuestionInstance& question : workload.questions) {
    if (question.text.rfind("Who ", 0) != 0) continue;
    ++who_questions;
    // The gold query must not contain a type triple for the select var.
    rdf::TermId wh = question.gold_query.select_vars[0];
    for (const rdf::TriplePattern& pattern : question.gold_query.patterns) {
      EXPECT_FALSE(pattern.subject == wh &&
                   pattern.predicate == kb.type_predicate())
          << question.text;
    }
    // And it still has answers.
    EXPECT_FALSE(
        kb.store().Evaluate(question.gold_query.ToBgp(), kb.dict()).empty());
  }
  EXPECT_GT(who_questions, 0);
}

TEST(WorkloadTest, PluralGiveMeAllQuestionsParse) {
  KnowledgeBase kb(KbConfig{.seed = 17});
  WorkloadConfig config;
  config.seed = 17;
  config.num_questions = 150;
  Workload workload = GenerateWorkload(kb, config);
  int plural = 0;
  for (const QuestionInstance& question : workload.questions) {
    if (question.text.rfind("Give me all", 0) == 0 &&
        nlp::ParseQuestion(question.text, kb.lexicon()).ok()) {
      ++plural;
    }
  }
  EXPECT_GT(plural, 5);
}

TEST(WorkloadIoTest, RoundTripsGeneratedWorkload) {
  KnowledgeBase kb(KbConfig{.seed = 18});
  WorkloadConfig config;
  config.seed = 18;
  config.num_questions = 30;
  config.distractor_queries = 10;
  Workload original = GenerateWorkload(kb, config);

  std::string text = SerializeWorkload(original, kb.dict());
  StatusOr<Workload> reloaded = ParseWorkloadText(text, kb.dict());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded->questions.size(), original.questions.size());
  EXPECT_EQ(reloaded->sparql_texts.size(), original.sparql_texts.size());
  for (size_t i = 0; i < original.questions.size(); ++i) {
    EXPECT_EQ(reloaded->questions[i].text, original.questions[i].text);
    EXPECT_EQ(reloaded->questions[i].gold_query_text,
              original.questions[i].gold_query_text);
    EXPECT_EQ(reloaded->questions[i].num_relations,
              original.questions[i].num_relations);
  }
  // A reloaded workload feeds the join pipeline unchanged.
  JoinSides sides = BuildJoinSides(kb, *reloaded);
  EXPECT_EQ(sides.d.size(), reloaded->sparql_queries.size());
}

TEST(WorkloadIoTest, ParsesHandWrittenFile) {
  graph::LabelDictionary dict;
  StatusOr<Workload> workload = ParseWorkloadText(
      "# my benchmark\n"
      "Q Which actor was born in Paris?\t"
      "SELECT ?x WHERE { ?x type Actor . ?x birthPlace Paris . }\n"
      "S SELECT ?y WHERE { ?y type City . }\n",
      dict);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  ASSERT_EQ(workload->questions.size(), 1u);
  EXPECT_EQ(workload->questions[0].num_relations, 1);
  EXPECT_EQ(workload->sparql_queries.size(), 2u);
}

TEST(WorkloadIoTest, RejectsMalformedLines) {
  graph::LabelDictionary dict;
  EXPECT_FALSE(ParseWorkloadText("Q question without tab\n", dict).ok());
  EXPECT_FALSE(ParseWorkloadText("Q q\tnot sparql at all\n", dict).ok());
  EXPECT_FALSE(ParseWorkloadText("X whatever\n", dict).ok());
  EXPECT_FALSE(
      ParseWorkloadText("S SELECT ?x WHERE { broken\n", dict).ok());
}

TEST(SyntheticTest, ErDatasetShapes) {
  SyntheticConfig config;
  config.seed = 11;
  config.num_certain = 10;
  config.num_uncertain = 10;
  config.num_vertices = 8;
  config.num_edges = 12;
  SyntheticDataset dataset = MakeErDataset(config);
  ASSERT_EQ(dataset.certain.size(), 10u);
  ASSERT_EQ(dataset.uncertain.size(), 10u);
  for (const auto& g : dataset.certain) {
    EXPECT_EQ(g.num_vertices(), 8);
    EXPECT_LE(g.num_edges(), 12);
  }
  for (const auto& g : dataset.uncertain) {
    EXPECT_EQ(g.num_vertices(), 8);
    EXPECT_NEAR(g.TotalMass(), 1.0, 1e-9);
  }
}

TEST(SyntheticTest, SfGraphsAreSkewedErAreNot) {
  SyntheticConfig config;
  config.seed = 12;
  config.num_certain = 30;
  config.num_uncertain = 1;
  config.num_vertices = 30;
  config.num_edges = 60;
  SyntheticDataset er = MakeErDataset(config);
  SyntheticDataset sf = MakeSfDataset(config);
  auto max_degree = [](const std::vector<graph::LabeledGraph>& graphs) {
    int best = 0;
    for (const auto& g : graphs) {
      for (int v = 0; v < g.num_vertices(); ++v) {
        best = std::max(best, g.degree(v));
      }
    }
    return best;
  };
  // Preferential attachment produces hubs well above the ER maximum.
  EXPECT_GT(max_degree(sf.certain), max_degree(er.certain));
}

TEST(SyntheticTest, AidsDatasetLooksMolecular) {
  SyntheticConfig config;
  config.seed = 13;
  config.num_certain = 10;
  config.num_uncertain = 10;
  config.num_vertices = 10;
  SyntheticDataset dataset = MakeAidsDataset(config);
  for (const auto& g : dataset.certain) {
    // Tree backbone plus at most 2 ring closures.
    EXPECT_GE(g.num_edges(), g.num_vertices() - 1);
    EXPECT_LE(g.num_edges(), g.num_vertices() + 1);
  }
}

TEST(SyntheticTest, MakeUncertainKeepsTruthAmongAlternatives) {
  Rng rng(14);
  graph::LabelDictionary dict;
  std::vector<graph::LabelId> labels;
  for (int i = 0; i < 10; ++i) {
    std::string label_name = "L";
    label_name += std::to_string(i);
    labels.push_back(dict.Intern(label_name));
  }
  graph::LabeledGraph base = RandomErGraph(rng, labels, labels, 6, 8);
  graph::UncertainGraph uncertain =
      MakeUncertain(rng, base, labels, /*labels_per_vertex=*/3,
                    /*uncertain_fraction=*/1.0);
  for (int v = 0; v < base.num_vertices(); ++v) {
    bool truth_present = false;
    for (const auto& alt : uncertain.alternatives(v)) {
      if (alt.label == base.vertex_label(v)) truth_present = true;
    }
    EXPECT_TRUE(truth_present);
  }
  EXPECT_EQ(uncertain.num_edges(), base.num_edges());
}

TEST(SyntheticTest, PerturbStaysClose) {
  Rng rng(15);
  graph::LabelDictionary dict;
  std::vector<graph::LabelId> labels;
  for (int i = 0; i < 5; ++i) {
    std::string label_name = "L";
    label_name += std::to_string(i);
    labels.push_back(dict.Intern(label_name));
  }
  graph::LabeledGraph base = RandomErGraph(rng, labels, labels, 5, 6);
  graph::LabeledGraph close = Perturb(rng, base, labels, labels, 2);
  int ged = ged::ExactGed(base, close, dict).distance;
  // Two edit operations applied, but each op costs at most 1 and some may
  // be no-ops (relabel to the same label).
  EXPECT_LE(ged, 2);
}

}  // namespace
}  // namespace simj::workload
