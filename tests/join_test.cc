#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/join.h"
#include "core/similarity.h"
#include "core/topk.h"
#include "ged/lower_bounds.h"
#include "test_util.h"
#include "util/rng.h"

namespace simj::core {
namespace {

using graph::LabelDictionary;
using graph::LabeledGraph;
using graph::UncertainGraph;

// Brute-force reference: exact SimP for every pair, no pruning at all.
std::set<std::pair<int, int>> BruteForceJoin(
    const std::vector<LabeledGraph>& d, const std::vector<UncertainGraph>& u,
    int tau, double alpha, const LabelDictionary& dict) {
  std::set<std::pair<int, int>> result;
  for (int qi = 0; qi < static_cast<int>(d.size()); ++qi) {
    for (int gi = 0; gi < static_cast<int>(u.size()); ++gi) {
      if (ComputeSimP(d[qi], u[gi], tau, dict).probability >= alpha - 1e-9) {
        result.insert({qi, gi});
      }
    }
  }
  return result;
}

std::set<std::pair<int, int>> PairSet(const JoinResult& result) {
  std::set<std::pair<int, int>> out;
  for (const MatchedPair& pair : result.pairs) {
    out.insert({pair.q_index, pair.g_index});
  }
  return out;
}

class JoinEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinEquivalenceTest, AllConfigurationsAgreeWithBruteForce) {
  simj::testing::RandomJoinWorkload workload =
      simj::testing::MakeRandomJoinWorkload(900 + GetParam());
  const LabelDictionary& dict = workload.dict;
  const std::vector<LabeledGraph>& d = workload.d;
  const std::vector<UncertainGraph>& u = workload.u;
  Rng rng(9000 + GetParam());

  int tau = static_cast<int>(rng.Uniform(0, 3));
  double alpha = 0.2 + 0.6 * rng.UniformDouble();
  std::set<std::pair<int, int>> reference =
      BruteForceJoin(d, u, tau, alpha, dict);

  // CSS only / SimJ / SimJ+opt / everything off must all return the same
  // pair set as the brute force.
  for (int config = 0; config < 4; ++config) {
    SimJParams params;
    params.tau = tau;
    params.alpha = alpha;
    params.structural_pruning = config != 3;
    params.probabilistic_pruning = config == 1 || config == 2;
    params.group_count = config == 2 ? 6 : 1;
    JoinResult joined = SimJoin(d, u, params, dict);
    EXPECT_EQ(PairSet(joined), reference)
        << "config=" << config << " tau=" << tau << " alpha=" << alpha;
    // Sanity on statistics bookkeeping.
    EXPECT_EQ(joined.stats.total_pairs,
              static_cast<int64_t>(d.size() * u.size()));
    EXPECT_EQ(joined.stats.results,
              static_cast<int64_t>(joined.pairs.size()));
    EXPECT_LE(joined.stats.candidates, joined.stats.total_pairs);
    EXPECT_EQ(joined.stats.total_pairs - joined.stats.pruned_structural -
                  joined.stats.pruned_probabilistic,
              joined.stats.candidates);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinEquivalenceTest, ::testing::Range(0, 30));

TEST(JoinTest, MatchedPairCarriesMappingForTemplates) {
  LabelDictionary dict;
  graph::LabelId var = dict.Intern("?x");
  graph::LabelId artist = dict.Intern("Artist");
  graph::LabelId politician = dict.Intern("Politician");
  graph::LabelId university = dict.Intern("University");
  graph::LabelId company = dict.Intern("Company");
  graph::LabelId type = dict.Intern("type");
  graph::LabelId grad = dict.Intern("graduatedFrom");

  // q1 from the paper's running example.
  LabeledGraph q;
  q.AddVertex(var);
  q.AddVertex(artist);
  q.AddVertex(university);
  q.AddEdge(0, 1, type);
  q.AddEdge(0, 2, grad);

  // g2: "Which politician graduated from CIT?" (CIT: University 0.8 /
  // Company 0.2).
  UncertainGraph g;
  g.AddCertainVertex(var);
  g.AddCertainVertex(politician);
  g.AddVertex({{university, 0.8}, {company, 0.2}});
  g.AddEdge(0, 1, type);
  g.AddEdge(0, 2, grad);

  SimJParams params;
  params.tau = 1;
  params.alpha = 0.7;
  JoinResult result = SimJoin({q}, {g}, params, dict);
  ASSERT_EQ(result.pairs.size(), 1u);
  const MatchedPair& pair = result.pairs[0];
  // SimP = 0.8 (world with University qualifies at ged 1; the Company world
  // has ged 2).
  EXPECT_NEAR(pair.similarity_probability, 0.8, 1e-9);
  ASSERT_EQ(pair.mapping.size(), 3u);
  EXPECT_EQ(pair.mapping[0], 0);  // ?x        <-> ?x
  EXPECT_EQ(pair.mapping[1], 1);  // Artist    <-> Politician
  EXPECT_EQ(pair.mapping[2], 2);  // University<-> CIT
}

// Regression test: the result set must shrink monotonically as alpha grows,
// including at alphas that exactly hit accumulated world probabilities
// (0.1 * k arithmetic bit-patterns vs exact confidence sums).
TEST(JoinTest, ResultsAreMonotoneInAlpha) {
  simj::testing::RandomJoinWorkloadOptions options;
  options.num_certain = 6;
  options.num_uncertain = 6;
  options.vertex_label_pool = 4;
  options.edge_label_pool = 1;
  options.add_wildcard = false;
  simj::testing::RandomJoinWorkload workload =
      simj::testing::MakeRandomJoinWorkload(999, options);
  const LabelDictionary& dict = workload.dict;
  std::vector<LabeledGraph>& d = workload.d;
  std::vector<UncertainGraph>& u = workload.u;
  // Mix in a vertex with the exact 0.6/0.4 confidences the workload
  // generator produces, so some SimP values equal 0.1 * k exactly.
  UncertainGraph exact_probs;
  exact_probs.AddVertex({{workload.vertex_labels[0], 0.6},
                         {workload.vertex_labels[1], 0.4}});
  u.push_back(std::move(exact_probs));
  LabeledGraph single;
  single.AddVertex(workload.vertex_labels[0]);
  d.push_back(std::move(single));

  std::set<std::pair<int, int>> previous;
  bool first = true;
  for (int step = 9; step >= 1; --step) {
    SimJParams params;
    params.tau = 1;
    params.alpha = 0.1 * step;
    std::set<std::pair<int, int>> current = PairSet(SimJoin(d, u, params, dict));
    if (!first) {
      for (const auto& pair : previous) {
        EXPECT_TRUE(current.contains(pair))
            << "pair (" << pair.first << "," << pair.second
            << ") present at alpha=" << 0.1 * (step + 1)
            << " but missing at alpha=" << 0.1 * step;
      }
    }
    previous = std::move(current);
    first = false;
  }
}

class IndexedJoinTest : public ::testing::TestWithParam<int> {};

TEST_P(IndexedJoinTest, IndexedJoinMatchesNestedLoop) {
  simj::testing::RandomJoinWorkloadOptions options;
  options.num_certain = 8;
  options.num_uncertain = 8;
  options.max_vertices = 5;
  options.max_edges = 6;
  options.max_uncertain_edges = 5;
  options.vertex_label_pool = 4;
  options.edge_label_pool = 1;
  options.add_wildcard = false;
  simj::testing::RandomJoinWorkload workload =
      simj::testing::MakeRandomJoinWorkload(1400 + GetParam(), options);
  const LabelDictionary& dict = workload.dict;
  const std::vector<LabeledGraph>& d = workload.d;
  const std::vector<UncertainGraph>& u = workload.u;
  Rng rng(14000 + GetParam());
  SimJParams params;
  params.tau = static_cast<int>(rng.Uniform(0, 3));
  params.alpha = 0.2 + 0.6 * rng.UniformDouble();

  JoinResult nested = SimJoin(d, u, params, dict);
  JoinResult indexed = IndexedSimJoin(d, u, params, dict);
  EXPECT_EQ(PairSet(indexed), PairSet(nested));
  EXPECT_EQ(indexed.stats.total_pairs, nested.stats.total_pairs);
  // The index only ever *adds* pruning.
  EXPECT_GE(indexed.stats.pruned_structural,
            nested.stats.pruned_structural);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IndexedJoinTest, ::testing::Range(0, 25));

TEST(IndexTest, CandidatesRespectCountBound) {
  LabelDictionary dict;
  graph::LabelId l = dict.Intern("L");
  std::vector<LabeledGraph> d;
  for (int vertices : {1, 2, 3, 5}) {
    LabeledGraph g;
    for (int v = 0; v < vertices; ++v) g.AddVertex(l);
    for (int v = 1; v < vertices; ++v) g.AddEdge(v - 1, v, l);
    d.push_back(std::move(g));
  }
  CertainGraphIndex index(&d);
  UncertainGraph g;
  g.AddCertainVertex(l);
  g.AddCertainVertex(l);
  g.AddCertainVertex(l);
  g.AddEdge(0, 1, l);
  g.AddEdge(1, 2, l);
  // |V|=3, |E|=2. tau=0: only the exact size bucket.
  EXPECT_EQ(index.Candidates(g, 0), (std::vector<int>{2}));
  // tau=2: sizes within combined distance 2: (2,1) and (3,2).
  EXPECT_EQ(index.Candidates(g, 2), (std::vector<int>{1, 2}));
  // Large tau: everything.
  EXPECT_EQ(index.Candidates(g, 10), (std::vector<int>{0, 1, 2, 3}));
}

class TopKJoinTest : public ::testing::TestWithParam<int> {};

TEST_P(TopKJoinTest, MatchesBruteForceRanking) {
  simj::testing::RandomJoinWorkloadOptions options;
  options.num_certain = 7;
  options.num_uncertain = 4;
  options.vertex_label_pool = 4;
  options.edge_label_pool = 1;
  options.add_wildcard = false;
  simj::testing::RandomJoinWorkload workload =
      simj::testing::MakeRandomJoinWorkload(1500 + GetParam(), options);
  const LabelDictionary& dict = workload.dict;
  const std::vector<LabeledGraph>& d = workload.d;
  const std::vector<UncertainGraph>& u = workload.u;
  Rng rng(15000 + GetParam());
  TopKParams params;
  params.tau = static_cast<int>(rng.Uniform(0, 3));
  params.k = static_cast<int>(rng.Uniform(1, 4));
  params.group_count = GetParam() % 2 == 0 ? 1 : 4;

  TopKResult topk = TopKJoin(d, u, params, dict);
  ASSERT_EQ(topk.matches.size(), u.size());
  for (size_t gi = 0; gi < u.size(); ++gi) {
    // Brute force: exact SimP for every q, rank, take k nonzero.
    std::vector<std::pair<double, int>> all;
    for (int qi = 0; qi < static_cast<int>(d.size()); ++qi) {
      double simp =
          ComputeSimP(d[qi], u[gi], params.tau, dict).probability;
      if (simp > kSimPEpsilon) all.push_back({simp, qi});
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    if (static_cast<int>(all.size()) > params.k) all.resize(params.k);

    const std::vector<MatchedPair>& got = topk.matches[gi];
    ASSERT_EQ(got.size(), all.size()) << "g=" << gi;
    for (size_t r = 0; r < all.size(); ++r) {
      EXPECT_EQ(got[r].q_index, all[r].second) << "g=" << gi << " rank=" << r;
      EXPECT_NEAR(got[r].similarity_probability, all[r].first, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TopKJoinTest, ::testing::Range(0, 25));

TEST(JoinTest, EmptyInputs) {
  LabelDictionary dict;
  SimJParams params;
  JoinResult result = SimJoin({}, {}, params, dict);
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(result.stats.total_pairs, 0);
  EXPECT_EQ(result.stats.CandidateRatio(), 0.0);
}

}  // namespace
}  // namespace simj::core
