#include <vector>

#include <gtest/gtest.h>

#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace simj {
namespace {

TEST(StatusTest, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status error = InvalidArgumentError("bad input");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(error.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllErrorConstructors) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

// GCC 12 falsely reports the variant's string member as maybe-uninitialized
// when the StatusOr destructor is inlined at -O2 (gcc PR 80635 family).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);
  EXPECT_EQ(*value, 42);

  StatusOr<int> error = NotFoundError("nothing");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> error = NotFoundError("nothing");
  EXPECT_DEATH((void)error.value(), "SIMJ_CHECK");
}

TEST(RngTest, DeterministicWithSameSeed) {
  Rng a(1);
  Rng b(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    int64_t draw = rng.Uniform(-3, 7);
    EXPECT_GE(draw, -3);
    EXPECT_LE(draw, 7);
  }
}

TEST(RngTest, SimplexSumsToOne) {
  Rng rng(3);
  for (int n : {1, 3, 8}) {
    std::vector<double> probs = rng.RandomSimplex(n, 1.0);
    double sum = 0.0;
    for (double p : probs) {
      EXPECT_GT(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RngTest, WeightedIndexRespectsZeros) {
  Rng rng(4);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1);
  }
}

TEST(StringsTest, SplitAndTrim) {
  EXPECT_EQ(SplitAndTrim(" a , b ,, c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitAndTrim("", ',').empty());
}

TEST(StringsTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  one\ttwo \n three "),
            (std::vector<std::string>{"one", "two", "three"}));
}

TEST(StringsTest, JoinAndCase) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_TRUE(EndsWith("rest_suffix", "suffix"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(FlagsTest, ParsesTypedValues) {
  const char* argv[] = {"prog", "--n=42", "--alpha=0.25", "--name=webq",
                        "--verbose=true", "ignored", "--noval"};
  Flags flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("n", 0), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 0.25);
  EXPECT_EQ(flags.GetString("name", ""), "webq");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.Has("noval"));
  EXPECT_EQ(flags.GetInt("missing", -1), -1);
}

TEST(GraphDeathTest, InvariantViolationsAbort) {
  graph::LabelDictionary dict;
  graph::LabelId l = dict.Intern("L");
  graph::LabeledGraph g;
  g.AddVertex(l);
  EXPECT_DEATH(g.AddEdge(0, 0, l), "SIMJ_CHECK");   // self loop
  EXPECT_DEATH(g.AddEdge(0, 5, l), "SIMJ_CHECK");   // missing vertex

  graph::UncertainGraph u;
  EXPECT_DEATH(u.AddVertex({}), "SIMJ_CHECK");      // no alternatives
  EXPECT_DEATH(u.AddVertex({{l, 0.0}}), "SIMJ_CHECK");   // zero probability
  EXPECT_DEATH(u.AddVertex({{l, 0.7}, {l, 0.7}}), "SIMJ_CHECK");  // sum > 1
}

}  // namespace
}  // namespace simj
