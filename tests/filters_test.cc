#include <gtest/gtest.h>

#include "ged/edit_distance.h"
#include "ged/filters.h"
#include "graph/uncertain_graph.h"
#include "test_util.h"
#include "util/rng.h"

namespace simj::ged {
namespace {

using graph::LabelDictionary;
using graph::LabeledGraph;
using graph::PossibleWorldIterator;
using graph::UncertainGraph;

TEST(SubIsoTest, TriangleInSquareWithDiagonal) {
  LabelDictionary dict;
  graph::LabelId l = dict.Intern("L");
  LabeledGraph triangle;
  for (int i = 0; i < 3; ++i) triangle.AddVertex(l);
  triangle.AddEdge(0, 1, l);
  triangle.AddEdge(1, 2, l);
  triangle.AddEdge(0, 2, l);

  LabeledGraph square;
  for (int i = 0; i < 4; ++i) square.AddVertex(l);
  square.AddEdge(0, 1, l);
  square.AddEdge(1, 2, l);
  square.AddEdge(2, 3, l);
  square.AddEdge(0, 3, l);

  EXPECT_FALSE(StructurallySubgraphIsomorphic(triangle, square));

  square.AddEdge(0, 2, l);  // diagonal creates a directed triangle 0->1->2, 0->2
  EXPECT_TRUE(StructurallySubgraphIsomorphic(triangle, square));
}

TEST(SubIsoTest, PathInStar) {
  LabelDictionary dict;
  graph::LabelId l = dict.Intern("L");
  LabeledGraph path;  // 0 -> 1 -> 2
  for (int i = 0; i < 3; ++i) path.AddVertex(l);
  path.AddEdge(0, 1, l);
  path.AddEdge(1, 2, l);

  LabeledGraph star;  // center 0 -> 1,2,3
  for (int i = 0; i < 4; ++i) star.AddVertex(l);
  star.AddEdge(0, 1, l);
  star.AddEdge(0, 2, l);
  star.AddEdge(0, 3, l);

  // No directed 2-path exists in an out-star.
  EXPECT_FALSE(StructurallySubgraphIsomorphic(path, star));
  EXPECT_TRUE(StructurallySubgraphIsomorphic(path, path));
}

TEST(TwoPathTest, CountsDirectedPaths) {
  LabelDictionary dict;
  graph::LabelId l = dict.Intern("L");
  LabeledGraph g;
  for (int i = 0; i < 3; ++i) g.AddVertex(l);
  g.AddEdge(0, 1, l);
  g.AddEdge(1, 2, l);
  EXPECT_EQ(CountTwoPaths(g), 1);
  g.AddEdge(2, 0, l);  // cycle: three 2-paths now
  EXPECT_EQ(CountTwoPaths(g), 3);
}

TEST(TwoPathTest, ExcludesBackAndForth) {
  LabelDictionary dict;
  graph::LabelId l = dict.Intern("L");
  LabeledGraph g;
  g.AddVertex(l);
  g.AddVertex(l);
  g.AddEdge(0, 1, l);
  g.AddEdge(1, 0, l);
  // 0->1->0 and 1->0->1 return to the start, so they do not count.
  EXPECT_EQ(CountTwoPaths(g), 0);
}

class FilterValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(FilterValidityTest, EveryFilterIsAValidLowerBound) {
  LabelDictionary dict;
  auto vlabels = simj::testing::TestLabels(dict, 4);
  std::vector<graph::LabelId> elabels = {dict.Intern("r1"),
                                         dict.Intern("r2")};
  Rng rng(1100 + GetParam());
  LabeledGraph q = simj::testing::RandomCertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
      static_cast<int>(rng.Uniform(0, 6)));
  UncertainGraph g = simj::testing::RandomUncertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 4)),
      static_cast<int>(rng.Uniform(0, 5)), /*max_alts=*/3);
  int tau = static_cast<int>(rng.Uniform(0, 4));

  // Minimum GED over all possible worlds: any valid filter bound must not
  // exceed it.
  int min_ged = 1 << 20;
  for (PossibleWorldIterator it(g); !it.Done(); it.Next()) {
    graph::LabeledGraph world = g.Materialize(it.choice());
    min_ged = std::min(min_ged, ExactGed(q, world, dict).distance);
  }

  for (const auto& filter :
       {MakeCssFilter(), MakePathFilter(), MakeStarFilter(),
        MakeParsFilter()}) {
    int bound = filter->LowerBound(q, g, dict, tau);
    EXPECT_LE(bound, min_ged) << filter->name() << " tau=" << tau;
    EXPECT_GE(bound, 0) << filter->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FilterValidityTest, ::testing::Range(0, 50));

TEST(FilterTest, CssFilterSeesLabelsOthersDoNot) {
  // Same structure, completely different labels: structure-only filters
  // must return 0 while CSS prunes.
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId b = dict.Intern("B");
  graph::LabelId c = dict.Intern("C");
  graph::LabelId d = dict.Intern("D");
  graph::LabelId r1 = dict.Intern("r1");
  graph::LabelId r2 = dict.Intern("r2");

  LabeledGraph q;
  q.AddVertex(a);
  q.AddVertex(b);
  q.AddEdge(0, 1, r1);

  UncertainGraph g;
  g.AddCertainVertex(c);
  g.AddCertainVertex(d);
  g.AddEdge(0, 1, r2);

  EXPECT_EQ(MakePathFilter()->LowerBound(q, g, dict, 1), 0);
  EXPECT_EQ(MakeStarFilter()->LowerBound(q, g, dict, 1), 0);
  EXPECT_EQ(MakeParsFilter()->LowerBound(q, g, dict, 1), 0);
  EXPECT_GE(MakeCssFilter()->LowerBound(q, g, dict, 1), 3);
}

}  // namespace
}  // namespace simj::ged
