// Tests for the sharded metrics registry: bucket math, quantiles, snapshot
// merging (associativity), the exposition writer, and a multi-threaded
// histogram hammer (run under TSan by ci.sh).

#include "util/metrics.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace simj::metrics {
namespace {

TEST(BucketMathTest, IndexAndBoundsAgree) {
  EXPECT_EQ(BucketIndexForSeconds(0.0), 0);
  // 1 ns lands in [2^0, 2^1) ns.
  EXPECT_EQ(BucketIndexForSeconds(1e-9), 1);
  EXPECT_EQ(BucketIndexForSeconds(2e-9), 2);
  EXPECT_EQ(BucketIndexForSeconds(3e-9), 2);
  EXPECT_EQ(BucketIndexForSeconds(4e-9), 3);
  // Every observed duration must fall inside its bucket's bounds.
  for (double seconds : {1e-9, 5e-9, 1e-6, 3.7e-4, 1e-2, 0.5, 1.0, 60.0}) {
    int index = BucketIndexForSeconds(seconds);
    EXPECT_GE(seconds, BucketLowerBoundSeconds(index)) << seconds;
    EXPECT_LT(seconds, BucketUpperBoundSeconds(index)) << seconds;
  }
  // Buckets tile the line: lower bound of i+1 == upper bound of i.
  for (int i = 0; i + 1 < kHistogramBuckets; ++i) {
    EXPECT_DOUBLE_EQ(BucketLowerBoundSeconds(i + 1),
                     BucketUpperBoundSeconds(i));
  }
  // Overflow bucket is unbounded above.
  EXPECT_TRUE(std::isinf(BucketUpperBoundSeconds(kHistogramBuckets - 1)));
  EXPECT_EQ(BucketIndexForSeconds(1e9), kHistogramBuckets - 1);
}

TEST(HistogramTest, ObserveCountsAndSums) {
  Histogram hist("test_observe_seconds");
  hist.Observe(1e-6);
  hist.Observe(1e-6);
  hist.Observe(2e-3);
  HistogramSnapshot snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.count, 3);
  EXPECT_NEAR(snapshot.sum_seconds, 2e-6 + 2e-3, 1e-9);
  int64_t bucket_total = 0;
  for (int64_t c : snapshot.bucket_counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snapshot.count);
  EXPECT_EQ(snapshot.bucket_counts[BucketIndexForSeconds(1e-6)], 2);
  EXPECT_EQ(snapshot.bucket_counts[BucketIndexForSeconds(2e-3)], 1);
}

TEST(HistogramTest, QuantileBracketsObservedValue) {
  Histogram hist("test_quantile_seconds");
  for (int i = 0; i < 100; ++i) hist.Observe(1e-4);
  HistogramSnapshot snapshot = hist.Snapshot();
  const int bucket = BucketIndexForSeconds(1e-4);
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    double value = snapshot.Quantile(q);
    EXPECT_GE(value, BucketLowerBoundSeconds(bucket)) << q;
    EXPECT_LE(value, BucketUpperBoundSeconds(bucket)) << q;
  }
}

TEST(HistogramTest, QuantileOrdersTwoClusters) {
  Histogram hist("test_quantile_two_seconds");
  for (int i = 0; i < 90; ++i) hist.Observe(1e-6);
  for (int i = 0; i < 10; ++i) hist.Observe(1e-1);
  HistogramSnapshot snapshot = hist.Snapshot();
  // p50 sits in the fast cluster, p99 in the slow one.
  EXPECT_LT(snapshot.Quantile(0.5), 1e-4);
  EXPECT_GT(snapshot.Quantile(0.99), 1e-2);
  EXPECT_LE(snapshot.Quantile(0.5), snapshot.Quantile(0.99));
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram hist("test_empty_seconds");
  EXPECT_DOUBLE_EQ(hist.Snapshot().Quantile(0.5), 0.0);
}

HistogramSnapshot MakeHistogramSnapshot(int bucket, int64_t count,
                                        double sum_seconds) {
  HistogramSnapshot snapshot;
  snapshot.bucket_counts.assign(kHistogramBuckets, 0);
  snapshot.bucket_counts[bucket] = count;
  snapshot.count = count;
  snapshot.sum_seconds = sum_seconds;
  return snapshot;
}

void ExpectSameSnapshot(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (const auto& [name, hist_a] : a.histograms) {
    auto it = b.histograms.find(name);
    ASSERT_NE(it, b.histograms.end()) << name;
    EXPECT_EQ(hist_a.bucket_counts, it->second.bucket_counts) << name;
    EXPECT_EQ(hist_a.count, it->second.count) << name;
    EXPECT_DOUBLE_EQ(hist_a.sum_seconds, it->second.sum_seconds) << name;
  }
}

TEST(SnapshotMergeTest, MergeIsAssociative) {
  // Exactly representable sums so double addition stays associative.
  MetricsSnapshot a;
  a.counters["c1"] = 1;
  a.gauges["g1"] = 2.0;
  a.histograms["h1"] = MakeHistogramSnapshot(3, 4, 0.5);
  MetricsSnapshot b;
  b.counters["c1"] = 10;
  b.counters["c2"] = 7;
  b.histograms["h1"] = MakeHistogramSnapshot(5, 2, 0.25);
  b.histograms["h2"] = MakeHistogramSnapshot(1, 1, 1.0);
  MetricsSnapshot c;
  c.counters["c2"] = 100;
  c.gauges["g1"] = 0.0;  // default value; must not clobber a's gauge
  c.gauges["g2"] = 3.0;
  c.histograms["h2"] = MakeHistogramSnapshot(2, 3, 2.0);

  MetricsSnapshot left = MergeSnapshots(MergeSnapshots(a, b), c);
  MetricsSnapshot right = MergeSnapshots(a, MergeSnapshots(b, c));
  ExpectSameSnapshot(left, right);

  EXPECT_EQ(left.counters.at("c1"), 11);
  EXPECT_EQ(left.counters.at("c2"), 107);
  EXPECT_EQ(left.histograms.at("h1").count, 6);
  EXPECT_DOUBLE_EQ(left.histograms.at("h1").sum_seconds, 0.75);
  EXPECT_DOUBLE_EQ(left.gauges.at("g1"), 2.0);
}

TEST(RegistryTest, GetReturnsStableReferencesAndResetKeepsThem) {
  Registry& registry = Registry::Global();
  Counter& counter = registry.GetCounter("test_registry_total");
  Counter& again = registry.GetCounter("test_registry_total");
  EXPECT_EQ(&counter, &again);
  counter.Add(5);
  EXPECT_EQ(counter.Value(), 5);
  registry.ResetForTesting();
  EXPECT_EQ(counter.Value(), 0);
  counter.Increment();  // cached reference still usable after reset
  EXPECT_EQ(counter.Value(), 1);
}

TEST(RegistryTest, ExpositionTextHasPrometheusShape) {
  Registry& registry = Registry::Global();
  registry.ResetForTesting();
  registry.GetCounter("test_expo_total").Add(42);
  registry.GetGauge("test_expo_workers").Set(8.0);
  registry.GetHistogram("test_expo_seconds").Observe(1e-3);
  std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("# TYPE test_expo_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_expo_total 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expo_workers gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expo_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_seconds_count 1"), std::string::npos);
  registry.ResetForTesting();
}

TEST(LabelTest, EscapeLabelValueHandlesSpecials) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(EscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(LabelTest, LabeledNameComposesAndEscapes) {
  EXPECT_EQ(LabeledName("fam_total", {}), "fam_total");
  EXPECT_EQ(LabeledName("fam_total", {{"k", "v"}}), "fam_total{k=\"v\"}");
  EXPECT_EQ(LabeledName("fam_total", {{"a", "x"}, {"b", "q\"w\\e\nz"}}),
            "fam_total{a=\"x\",b=\"q\\\"w\\\\e\\nz\"}");
}

TEST(LabelTest, SplitMetricNameRoundTrips) {
  std::string family, labels;
  SplitMetricName("fam_total", &family, &labels);
  EXPECT_EQ(family, "fam_total");
  EXPECT_EQ(labels, "");
  SplitMetricName("fam_total{a=\"x\",b=\"y\"}", &family, &labels);
  EXPECT_EQ(family, "fam_total");
  EXPECT_EQ(labels, "a=\"x\",b=\"y\"");
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(RegistryTest, TypeLineEmittedOncePerLabeledFamily) {
  Registry& registry = Registry::Global();
  registry.ResetForTesting();
  registry.GetCounter(LabeledName("test_family_total", {{"k", "a"}})).Add(1);
  registry.GetCounter(LabeledName("test_family_total", {{"k", "b"}})).Add(2);
  std::string text = registry.ExpositionText();
  EXPECT_EQ(CountOccurrences(text, "# TYPE test_family_total counter"), 1)
      << text;
  EXPECT_NE(text.find("test_family_total{k=\"a\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_family_total{k=\"b\"} 2"), std::string::npos);
  registry.ResetForTesting();
}

TEST(RegistryTest, HelpLineEmittedOnceBeforeTypePerFamily) {
  Registry& registry = Registry::Global();
  registry.ResetForTesting();
  registry.SetHelp("test_help_total", "Pairs emitted by the join.");
  registry.GetCounter(LabeledName("test_help_total", {{"k", "a"}})).Add(1);
  registry.GetCounter(LabeledName("test_help_total", {{"k", "b"}})).Add(2);
  registry.GetCounter("test_nohelp_total").Add(3);
  std::string text = registry.ExpositionText();
  // Exactly one HELP line for the family, even with two label sets, and it
  // directly precedes the family's TYPE line.
  EXPECT_EQ(CountOccurrences(
                text, "# HELP test_help_total Pairs emitted by the join.\n"),
            1)
      << text;
  EXPECT_NE(
      text.find("# HELP test_help_total Pairs emitted by the join.\n"
                "# TYPE test_help_total counter\n"),
      std::string::npos)
      << text;
  // Families without a registered description get no HELP line at all.
  EXPECT_EQ(CountOccurrences(text, "# HELP test_nohelp_total"), 0) << text;
  EXPECT_EQ(CountOccurrences(text, "# TYPE test_nohelp_total counter"), 1);
  registry.ResetForTesting();
}

TEST(RegistryTest, HelpSurvivesResetAndReRegistrationReplaces) {
  Registry& registry = Registry::Global();
  registry.ResetForTesting();
  registry.SetHelp("test_help_gauge", "First text.");
  registry.GetGauge("test_help_gauge").Set(4.0);
  registry.ResetForTesting();  // zeroes values, keeps registration state
  registry.GetGauge("test_help_gauge").Set(5.0);
  std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("# HELP test_help_gauge First text.\n"),
            std::string::npos)
      << text;
  registry.SetHelp("test_help_gauge", "Second text.");
  text = registry.ExpositionText();
  EXPECT_EQ(CountOccurrences(text, "# HELP test_help_gauge"), 1) << text;
  EXPECT_NE(text.find("# HELP test_help_gauge Second text.\n"),
            std::string::npos)
      << text;
  registry.ResetForTesting();
}

TEST(HelpTest, EscapeHelpTextEscapesBackslashAndNewlineOnly) {
  EXPECT_EQ(EscapeHelpText("plain text."), "plain text.");
  EXPECT_EQ(EscapeHelpText("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeHelpText("a\nb"), "a\\nb");
  // Unlike label values, quotes pass through unescaped in HELP lines.
  EXPECT_EQ(EscapeHelpText("a\"b"), "a\"b");
}

TEST(HelpTest, FreeExpositionTextWithoutHelpMapHasNoHelpLines) {
  MetricsSnapshot snapshot;
  snapshot.counters["test_free_total"] = 7;
  std::string text = ExpositionText(snapshot);
  EXPECT_EQ(CountOccurrences(text, "# HELP"), 0) << text;
  EXPECT_NE(text.find("# TYPE test_free_total counter"), std::string::npos);
  std::string with_help = ExpositionText(
      snapshot, {{"test_free_total", "Merged\nmulti-line \\ text"}});
  EXPECT_NE(with_help.find(
                "# HELP test_free_total Merged\\nmulti-line \\\\ text\n"),
            std::string::npos)
      << with_help;
}

TEST(RegistryTest, ExpositionEscapesLabelValues) {
  Registry& registry = Registry::Global();
  registry.ResetForTesting();
  registry
      .GetGauge(LabeledName("test_escape_info", {{"v", "a\"b\\c\nd"}}))
      .Set(1.0);
  std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("test_escape_info{v=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
  // The raw (unescaped) quote and newline must not leak into the series
  // name, where they would corrupt the line-oriented format.
  EXPECT_EQ(CountOccurrences(text, "a\"b"), 0);
  EXPECT_EQ(CountOccurrences(text, "c\nd"), 0);
  registry.ResetForTesting();
}

// The distributed coordinator files per-worker counters under a `worker`
// label (worker="0", worker="inline"); the label value is program-built
// today but the escaping contract must hold for any value so a future
// hostname-style label ("node\"7\"") cannot corrupt the exposition.
TEST(RegistryTest, WorkerLabelValuesEscapeAndStayDistinct) {
  Registry& registry = Registry::Global();
  registry.ResetForTesting();
  registry.GetCounter(LabeledName("test_wl_pairs_total", {{"worker", "0"}}))
      .Add(3);
  registry
      .GetCounter(LabeledName("test_wl_pairs_total", {{"worker", "inline"}}))
      .Add(4);
  registry
      .GetCounter(
          LabeledName("test_wl_pairs_total", {{"worker", "node\"7\"\\a"}}))
      .Add(5);
  std::string text = registry.ExpositionText();
  EXPECT_EQ(CountOccurrences(text, "# TYPE test_wl_pairs_total counter"), 1)
      << text;
  EXPECT_NE(text.find("test_wl_pairs_total{worker=\"0\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_wl_pairs_total{worker=\"inline\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("test_wl_pairs_total{worker=\"node\\\"7\\\"\\\\a\"} 5"),
            std::string::npos)
      << text;
  // Escaped and plain label values are distinct registry keys: the nasty
  // value never merged into worker="0"'s series.
  EXPECT_EQ(CountOccurrences(text, "worker=\"node\"7\"\\a\""), 0);
  registry.ResetForTesting();
}

TEST(RegistryTest, LabeledHistogramSplicesLeIntoLabelBlock) {
  Registry& registry = Registry::Global();
  registry.ResetForTesting();
  registry.GetHistogram(LabeledName("test_lh_seconds", {{"k", "v"}}))
      .Observe(1e-3);
  std::string text = registry.ExpositionText();
  EXPECT_EQ(CountOccurrences(text, "# TYPE test_lh_seconds histogram"), 1);
  EXPECT_NE(text.find("test_lh_seconds_bucket{k=\"v\",le=\"+Inf\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_lh_seconds_sum{k=\"v\"} "), std::string::npos);
  EXPECT_NE(text.find("test_lh_seconds_count{k=\"v\"} 1"), std::string::npos);
  // The malformed pre-fix shape (labels outside the bucket braces) is gone.
  EXPECT_EQ(text.find("test_lh_seconds{k=\"v\"}_bucket"), std::string::npos);
  registry.ResetForTesting();
}

TEST(ThreadingTest, EightThreadHistogramHammerMergesExactly) {
  Histogram hist("test_hammer_seconds");
  Counter counter("test_hammer_total");
  constexpr int kThreads = 8;
  constexpr int kObservationsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, &counter, t] {
      for (int i = 0; i < kObservationsPerThread; ++i) {
        hist.Observe(1e-6 * (1 + t));
        counter.Increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  HistogramSnapshot snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.count,
            static_cast<int64_t>(kThreads) * kObservationsPerThread);
  int64_t bucket_total = 0;
  for (int64_t c : snapshot.bucket_counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snapshot.count);
  EXPECT_EQ(counter.Value(),
            static_cast<int64_t>(kThreads) * kObservationsPerThread);
}

TEST(ThreadingTest, ThreadShardIsStableWithinAThread) {
  int first = ThisThreadShard();
  int second = ThisThreadShard();
  EXPECT_EQ(first, second);
  EXPECT_GE(first, 0);
  EXPECT_LT(first, kShardCount);
}

}  // namespace
}  // namespace simj::metrics
