#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "matching/bipartite.h"
#include "matching/hungarian.h"
#include "util/rng.h"

namespace simj::matching {
namespace {

// Brute-force maximum bipartite matching by trying all subsets of edges is
// exponential; instead recurse over left vertices.
int BruteForceMatching(const std::vector<std::vector<int>>& adj, int left,
                       std::vector<bool>& used) {
  if (left == static_cast<int>(adj.size())) return 0;
  int best = BruteForceMatching(adj, left + 1, used);  // leave `left` single
  for (int r : adj[left]) {
    if (used[r]) continue;
    used[r] = true;
    best = std::max(best, 1 + BruteForceMatching(adj, left + 1, used));
    used[r] = false;
  }
  return best;
}

TEST(BipartiteTest, EmptyGraph) {
  BipartiteGraph g(0, 0);
  EXPECT_EQ(g.MaxMatching(), 0);
}

TEST(BipartiteTest, PerfectMatching) {
  BipartiteGraph g(3, 3);
  g.AddEdge(0, 0);
  g.AddEdge(1, 1);
  g.AddEdge(2, 2);
  EXPECT_EQ(g.MaxMatching(), 3);
}

TEST(BipartiteTest, AugmentingPathNeeded) {
  // 0-{0}, 1-{0,1}: greedy could match 1 to 0 and strand 0.
  BipartiteGraph g(2, 2);
  g.AddEdge(0, 0);
  g.AddEdge(1, 0);
  g.AddEdge(1, 1);
  EXPECT_EQ(g.MaxMatching(), 2);
}

TEST(BipartiteTest, MatchingVectorIsConsistent) {
  BipartiteGraph g(3, 4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  std::vector<int> match;
  int size = g.MaxMatching(&match);
  EXPECT_EQ(size, 3);
  std::vector<bool> seen(4, false);
  int matched = 0;
  for (int l = 0; l < 3; ++l) {
    if (match[l] >= 0) {
      EXPECT_FALSE(seen[match[l]]);
      seen[match[l]] = true;
      ++matched;
    }
  }
  EXPECT_EQ(matched, size);
}

class BipartiteRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BipartiteRandomTest, MatchesBruteForce) {
  Rng rng(1000 + GetParam());
  int n = static_cast<int>(rng.Uniform(1, 7));
  int m = static_cast<int>(rng.Uniform(1, 7));
  BipartiteGraph g(n, m);
  std::vector<std::vector<int>> adj(n);
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < m; ++r) {
      if (rng.Bernoulli(0.4)) {
        g.AddEdge(l, r);
        adj[l].push_back(r);
      }
    }
  }
  std::vector<bool> used(m, false);
  EXPECT_EQ(g.MaxMatching(), BruteForceMatching(adj, 0, used));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BipartiteRandomTest,
                         ::testing::Range(0, 40));

double BruteForceAssignment(const std::vector<std::vector<double>>& cost) {
  int n = static_cast<int>(cost.size());
  int m = static_cast<int>(cost[0].size());
  std::vector<int> columns(m);
  std::iota(columns.begin(), columns.end(), 0);
  double best = 1e100;
  // Try all permutations of columns, use the first n.
  std::sort(columns.begin(), columns.end());
  do {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += cost[i][columns[i]];
    best = std::min(best, total);
  } while (std::next_permutation(columns.begin(), columns.end()));
  return best;
}

TEST(HungarianTest, EmptyMatrix) {
  std::vector<int> assignment;
  EXPECT_EQ(MinCostAssignment({}, &assignment), 0.0);
  EXPECT_TRUE(assignment.empty());
}

TEST(HungarianTest, IdentityIsOptimal) {
  std::vector<std::vector<double>> cost = {
      {0, 5, 5}, {5, 0, 5}, {5, 5, 0}};
  std::vector<int> assignment;
  EXPECT_DOUBLE_EQ(MinCostAssignment(cost, &assignment), 0.0);
  EXPECT_EQ(assignment, (std::vector<int>{0, 1, 2}));
}

TEST(HungarianTest, RectangularMatrix) {
  std::vector<std::vector<double>> cost = {{4, 1, 3}, {2, 0, 5}};
  std::vector<int> assignment;
  double total = MinCostAssignment(cost, &assignment);
  EXPECT_DOUBLE_EQ(total, 3.0);  // row0 -> col1 (1), row1 -> col0 (2)
  EXPECT_EQ(assignment[0], 1);
  EXPECT_EQ(assignment[1], 0);
}

class HungarianRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandomTest, MatchesBruteForce) {
  Rng rng(2000 + GetParam());
  int n = static_cast<int>(rng.Uniform(1, 5));
  int m = static_cast<int>(rng.Uniform(n, 6));
  std::vector<std::vector<double>> cost(n, std::vector<double>(m));
  for (auto& row : cost) {
    for (double& c : row) c = rng.Uniform(0, 20);
  }
  std::vector<int> assignment;
  double total = MinCostAssignment(cost, &assignment);
  EXPECT_NEAR(total, BruteForceAssignment(cost), 1e-9);
  // Assignment must be a valid injective map achieving the reported cost.
  std::vector<bool> used(m, false);
  double check = 0.0;
  for (int i = 0; i < n; ++i) {
    ASSERT_GE(assignment[i], 0);
    ASSERT_LT(assignment[i], m);
    EXPECT_FALSE(used[assignment[i]]);
    used[assignment[i]] = true;
    check += cost[i][assignment[i]];
  }
  EXPECT_NEAR(check, total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HungarianRandomTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace simj::matching
