#include <functional>
#include <optional>

#include <gtest/gtest.h>

#include "ged/edit_distance.h"
#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "test_util.h"
#include "util/rng.h"

namespace simj::ged {
namespace {

using graph::LabelDictionary;
using graph::LabeledGraph;

struct Fixture {
  LabelDictionary dict;
  graph::LabelId a, b, c, rel1, rel2, var;

  Fixture() {
    a = dict.Intern("A");
    b = dict.Intern("B");
    c = dict.Intern("C");
    rel1 = dict.Intern("rel1");
    rel2 = dict.Intern("rel2");
    var = dict.Intern("?x");
  }
};

TEST(GedTest, IdenticalGraphsHaveZeroDistance) {
  Fixture f;
  LabeledGraph g;
  g.AddVertex(f.a);
  g.AddVertex(f.b);
  g.AddEdge(0, 1, f.rel1);
  GedResult result = ExactGed(g, g, f.dict);
  EXPECT_EQ(result.distance, 0);
  EXPECT_EQ(result.mapping, (std::vector<int>{0, 1}));
}

TEST(GedTest, SingleVertexLabelSubstitution) {
  Fixture f;
  LabeledGraph g1, g2;
  g1.AddVertex(f.a);
  g1.AddVertex(f.b);
  g1.AddEdge(0, 1, f.rel1);
  g2.AddVertex(f.a);
  g2.AddVertex(f.c);
  g2.AddEdge(0, 1, f.rel1);
  EXPECT_EQ(ExactGed(g1, g2, f.dict).distance, 1);
}

TEST(GedTest, SingleEdgeLabelSubstitution) {
  Fixture f;
  LabeledGraph g1, g2;
  g1.AddVertex(f.a);
  g1.AddVertex(f.b);
  g1.AddEdge(0, 1, f.rel1);
  g2.AddVertex(f.a);
  g2.AddVertex(f.b);
  g2.AddEdge(0, 1, f.rel2);
  EXPECT_EQ(ExactGed(g1, g2, f.dict).distance, 1);
}

TEST(GedTest, EdgeDirectionMatters) {
  Fixture f;
  LabeledGraph g1, g2;
  g1.AddVertex(f.a);
  g1.AddVertex(f.b);
  g1.AddEdge(0, 1, f.rel1);
  g2.AddVertex(f.a);
  g2.AddVertex(f.b);
  g2.AddEdge(1, 0, f.rel1);
  // Delete one edge, insert the reversed one: cost 2 (labels differ on the
  // vertex pair, so flipping cannot be a free substitution).
  EXPECT_EQ(ExactGed(g1, g2, f.dict).distance, 2);
}

TEST(GedTest, VertexInsertionWithEdge) {
  Fixture f;
  LabeledGraph g1, g2;
  g1.AddVertex(f.a);
  g2.AddVertex(f.a);
  g2.AddVertex(f.b);
  g2.AddEdge(0, 1, f.rel1);
  // Insert vertex B (1) + insert edge (1).
  EXPECT_EQ(ExactGed(g1, g2, f.dict).distance, 2);
}

TEST(GedTest, WildcardSubstitutesForFree) {
  Fixture f;
  LabeledGraph g1, g2;
  g1.AddVertex(f.var);
  g1.AddVertex(f.b);
  g1.AddEdge(0, 1, f.rel1);
  g2.AddVertex(f.a);
  g2.AddVertex(f.b);
  g2.AddEdge(0, 1, f.rel1);
  EXPECT_EQ(ExactGed(g1, g2, f.dict).distance, 0);
}

TEST(GedTest, EmptyVersusNonEmpty) {
  Fixture f;
  LabeledGraph empty;
  LabeledGraph g;
  g.AddVertex(f.a);
  g.AddVertex(f.b);
  g.AddEdge(0, 1, f.rel1);
  EXPECT_EQ(ExactGed(empty, g, f.dict).distance, 3);
  EXPECT_EQ(ExactGed(g, empty, f.dict).distance, 3);
}

TEST(GedTest, PaperStyleExample) {
  // q: ?x --type--> Artist, ?x --graduatedFrom--> University
  // g: ?y --type--> Politician, ?y --graduatedFrom--> University
  // One vertex label substitution (Artist -> Politician).
  LabelDictionary dict;
  graph::LabelId var_x = dict.Intern("?x");
  graph::LabelId var_y = dict.Intern("?y");
  graph::LabelId artist = dict.Intern("Artist");
  graph::LabelId politician = dict.Intern("Politician");
  graph::LabelId university = dict.Intern("University");
  graph::LabelId type = dict.Intern("type");
  graph::LabelId grad = dict.Intern("graduatedFrom");

  LabeledGraph q;
  q.AddVertex(var_x);
  q.AddVertex(artist);
  q.AddVertex(university);
  q.AddEdge(0, 1, type);
  q.AddEdge(0, 2, grad);

  LabeledGraph g;
  g.AddVertex(var_y);
  g.AddVertex(politician);
  g.AddVertex(university);
  g.AddEdge(0, 1, type);
  g.AddEdge(0, 2, grad);

  GedResult result = ExactGed(q, g, dict);
  EXPECT_EQ(result.distance, 1);
  // The optimal mapping aligns the variable with the variable and the
  // university with the university.
  EXPECT_EQ(result.mapping[0], 0);
  EXPECT_EQ(result.mapping[2], 2);
}

TEST(EdgeSetCostTest, MultisetEdgeTransforms) {
  Fixture f;
  // Same labels: free.
  EXPECT_EQ(EdgeSetCost({f.rel1}, {f.rel1}, f.dict), 0);
  // Substitution.
  EXPECT_EQ(EdgeSetCost({f.rel1}, {f.rel2}, f.dict), 1);
  // Deletion / insertion.
  EXPECT_EQ(EdgeSetCost({f.rel1}, {}, f.dict), 1);
  EXPECT_EQ(EdgeSetCost({}, {f.rel1, f.rel2}, f.dict), 2);
  // Parallel edges: one kept, one substituted, one inserted.
  EXPECT_EQ(EdgeSetCost({f.rel1, f.rel1}, {f.rel1, f.rel2, f.rel2}, f.dict),
            2);
  EXPECT_EQ(EdgeSetCost({}, {}, f.dict), 0);
}

TEST(GedTest, BoundedGedRespectsThreshold) {
  Fixture f;
  LabeledGraph g1, g2;
  g1.AddVertex(f.a);
  g1.AddVertex(f.b);
  g1.AddEdge(0, 1, f.rel1);
  g2.AddVertex(f.c);
  g2.AddVertex(f.c);
  g2.AddEdge(0, 1, f.rel2);
  int exact = ExactGed(g1, g2, f.dict).distance;
  EXPECT_EQ(exact, 3);
  EXPECT_FALSE(BoundedGed(g1, g2, exact - 1, f.dict).has_value());
  ASSERT_TRUE(BoundedGed(g1, g2, exact, f.dict).has_value());
  EXPECT_EQ(BoundedGed(g1, g2, exact, f.dict)->distance, exact);
}

TEST(GedTest, MappingReachesReportedCost) {
  // Recompute the cost implied by the returned mapping and check it equals
  // the reported distance (on random instances).
  Fixture f;
  std::vector<graph::LabelId> vlabels = {f.a, f.b, f.c};
  std::vector<graph::LabelId> elabels = {f.rel1, f.rel2};
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    LabeledGraph g1 = simj::testing::RandomCertainGraph(
        rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
        static_cast<int>(rng.Uniform(0, 6)));
    LabeledGraph g2 = simj::testing::RandomCertainGraph(
        rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
        static_cast<int>(rng.Uniform(0, 6)));
    GedResult result = ExactGed(g1, g2, f.dict);

    // Cost implied by the mapping: vertex part.
    int implied = 0;
    std::vector<bool> used(g2.num_vertices(), false);
    for (int u = 0; u < g1.num_vertices(); ++u) {
      int v = result.mapping[u];
      if (v < 0) {
        implied += 1;
      } else {
        used[v] = true;
        implied += SubstitutionCost(f.dict, g1.vertex_label(u),
                                    g2.vertex_label(v));
      }
    }
    for (int v = 0; v < g2.num_vertices(); ++v) {
      if (!used[v]) implied += 1;
    }
    // Edge part: for every ordered pair of g1 vertices compare edge
    // multisets; edges incident to deleted/inserted vertices are
    // deleted/inserted wholesale.
    for (int u1 = 0; u1 < g1.num_vertices(); ++u1) {
      for (int u2 = 0; u2 < g1.num_vertices(); ++u2) {
        if (u1 == u2) continue;
        auto a_labels = g1.EdgeLabelsBetween(u1, u2);
        int v1 = result.mapping[u1];
        int v2 = result.mapping[u2];
        if (v1 < 0 || v2 < 0) {
          implied += static_cast<int>(a_labels.size());
        } else {
          implied += EdgeSetCost(a_labels, g2.EdgeLabelsBetween(v1, v2),
                                 f.dict);
        }
      }
    }
    // g2 edges not covered by mapped pairs are insertions.
    for (const graph::Edge& e : g2.edges()) {
      if (!used[e.src] || !used[e.dst]) implied += 1;
    }
    EXPECT_EQ(result.distance, implied)
        << g1.DebugString(f.dict) << g2.DebugString(f.dict);
  }
}

// Independent reference: exhaustively enumerate every injective partial
// mapping and take the cheapest MappingCost. Exponential, so graphs are
// tiny, but it shares no search logic with the A*.
int ReferenceGed(const LabeledGraph& a, const LabeledGraph& b,
                 const LabelDictionary& dict) {
  std::vector<int> mapping(a.num_vertices(), -1);
  std::vector<bool> used(b.num_vertices(), false);
  int best = TrivialUpperBound(a, b);
  std::function<void(int)> recurse = [&](int u) {
    if (u == a.num_vertices()) {
      best = std::min(best, MappingCost(a, b, mapping, dict));
      return;
    }
    mapping[u] = -1;
    recurse(u + 1);
    for (int v = 0; v < b.num_vertices(); ++v) {
      if (used[v]) continue;
      used[v] = true;
      mapping[u] = v;
      recurse(u + 1);
      mapping[u] = -1;
      used[v] = false;
    }
  };
  recurse(0);
  return best;
}

class GedReferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(GedReferenceTest, AStarMatchesExhaustiveSearch) {
  LabelDictionary dict;
  auto vlabels = simj::testing::TestLabels(dict, 3);
  vlabels.push_back(dict.Intern("?x"));
  std::vector<graph::LabelId> elabels = {dict.Intern("r1"),
                                         dict.Intern("r2")};
  Rng rng(4000 + GetParam());
  LabeledGraph a = simj::testing::RandomCertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 4)),
      static_cast<int>(rng.Uniform(0, 5)));
  LabeledGraph b = simj::testing::RandomCertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 4)),
      static_cast<int>(rng.Uniform(0, 5)));
  EXPECT_EQ(ExactGed(a, b, dict).distance, ReferenceGed(a, b, dict))
      << a.DebugString(dict) << b.DebugString(dict);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GedReferenceTest, ::testing::Range(0, 60));

class UpperBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(UpperBoundTest, GreedyBoundDominatesExactAndIsAttained) {
  LabelDictionary dict;
  auto vlabels = simj::testing::TestLabels(dict, 4);
  std::vector<graph::LabelId> elabels = {dict.Intern("r1")};
  Rng rng(4100 + GetParam());
  LabeledGraph a = simj::testing::RandomCertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
      static_cast<int>(rng.Uniform(0, 6)));
  LabeledGraph b = simj::testing::RandomCertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
      static_cast<int>(rng.Uniform(0, 6)));
  int exact = ExactGed(a, b, dict).distance;
  std::vector<int> witness;
  int upper = GreedyGedUpperBound(a, b, dict, &witness);
  EXPECT_GE(upper, exact);
  // The witness mapping must reproduce the reported bound.
  EXPECT_EQ(MappingCost(a, b, witness, dict), upper);
  // The trivial bound is never beaten upward.
  EXPECT_LE(upper, TrivialUpperBound(a, b));
}

INSTANTIATE_TEST_SUITE_P(Sweep, UpperBoundTest, ::testing::Range(0, 60));

TEST(MappingCostTest, OptimalMappingAttainsExactGed) {
  LabelDictionary dict;
  auto vlabels = simj::testing::TestLabels(dict, 3);
  std::vector<graph::LabelId> elabels = {dict.Intern("r1")};
  Rng rng(4200);
  for (int trial = 0; trial < 30; ++trial) {
    LabeledGraph a = simj::testing::RandomCertainGraph(
        rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
        static_cast<int>(rng.Uniform(0, 5)));
    LabeledGraph b = simj::testing::RandomCertainGraph(
        rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
        static_cast<int>(rng.Uniform(0, 5)));
    GedResult result = ExactGed(a, b, dict);
    EXPECT_EQ(MappingCost(a, b, result.mapping, dict), result.distance);
  }
}

class GedMetricTest : public ::testing::TestWithParam<int> {};

TEST_P(GedMetricTest, SymmetryAndTriangleInequality) {
  LabelDictionary dict;
  auto vlabels = simj::testing::TestLabels(dict, 3);
  std::vector<graph::LabelId> elabels = {dict.Intern("r1"),
                                         dict.Intern("r2")};
  Rng rng(300 + GetParam());
  auto random_graph = [&]() {
    return simj::testing::RandomCertainGraph(
        rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 4)),
        static_cast<int>(rng.Uniform(0, 5)));
  };
  LabeledGraph x = random_graph();
  LabeledGraph y = random_graph();
  LabeledGraph z = random_graph();

  int xy = ExactGed(x, y, dict).distance;
  int yx = ExactGed(y, x, dict).distance;
  EXPECT_EQ(xy, yx);

  int xz = ExactGed(x, z, dict).distance;
  int zy = ExactGed(z, y, dict).distance;
  EXPECT_LE(xy, xz + zy);

  EXPECT_GE(xy, 0);
  EXPECT_EQ(ExactGed(x, x, dict).distance, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GedMetricTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace simj::ged
