#include <gtest/gtest.h>

#include "ged/edit_distance.h"
#include "ged/lower_bounds.h"
#include "graph/uncertain_graph.h"
#include "test_util.h"
#include "util/rng.h"

namespace simj::ged {
namespace {

using graph::LabelDictionary;
using graph::LabeledGraph;
using graph::PossibleWorldIterator;
using graph::UncertainGraph;

TEST(LowerBoundTest, CountBoundHandCase) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  LabeledGraph g1, g2;
  g1.AddVertex(a);
  g2.AddVertex(a);
  g2.AddVertex(a);
  g2.AddEdge(0, 1, a);
  EXPECT_EQ(CountLowerBound(g1, g2), 2);
}

TEST(LowerBoundTest, IdenticalGraphsGiveZeroBounds) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId r = dict.Intern("r");
  LabeledGraph g;
  g.AddVertex(a);
  g.AddVertex(a);
  g.AddEdge(0, 1, r);
  EXPECT_EQ(CountLowerBound(g, g), 0);
  EXPECT_EQ(LabelMultisetLowerBound(g, g, dict), 0);
  EXPECT_EQ(CssLowerBound(g, g, dict), 0);
}

TEST(LowerBoundTest, CssUsesDegreeDistance) {
  // Star with 3 spokes vs path with 4 vertices: same |V|, |E|, same labels,
  // but the degree sequences differ, so only CSS sees a gap.
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId r = dict.Intern("r");
  LabeledGraph star;
  for (int i = 0; i < 4; ++i) star.AddVertex(a);
  star.AddEdge(0, 1, r);
  star.AddEdge(0, 2, r);
  star.AddEdge(0, 3, r);
  LabeledGraph path;
  for (int i = 0; i < 4; ++i) path.AddVertex(a);
  path.AddEdge(0, 1, r);
  path.AddEdge(1, 2, r);
  path.AddEdge(2, 3, r);

  EXPECT_EQ(LabelMultisetLowerBound(star, path, dict), 0);
  EXPECT_GE(CssLowerBound(star, path, dict), 1);
  int exact = ExactGed(star, path, dict).distance;
  EXPECT_LE(CssLowerBound(star, path, dict), exact);
}

class CertainBoundsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CertainBoundsPropertyTest, BoundsAreValidAndOrdered) {
  LabelDictionary dict;
  auto vlabels = simj::testing::TestLabels(dict, 4);
  vlabels.push_back(dict.Intern("?x"));  // mix in wildcards
  std::vector<graph::LabelId> elabels = {dict.Intern("r1"),
                                         dict.Intern("r2")};
  Rng rng(400 + GetParam());
  LabeledGraph g1 = simj::testing::RandomCertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
      static_cast<int>(rng.Uniform(0, 6)));
  LabeledGraph g2 = simj::testing::RandomCertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
      static_cast<int>(rng.Uniform(0, 6)));

  int exact = ExactGed(g1, g2, dict).distance;
  int count_lb = CountLowerBound(g1, g2);
  int lm_lb = LabelMultisetLowerBound(g1, g2, dict);
  int css_lb = CssLowerBound(g1, g2, dict);
  int cstar_lb = CStarLowerBound(g1, g2, dict);

  // All bounds are valid lower bounds.
  EXPECT_LE(count_lb, exact);
  EXPECT_LE(lm_lb, exact);
  EXPECT_LE(css_lb, exact);
  EXPECT_LE(cstar_lb, exact);
  EXPECT_GE(cstar_lb, 0);
  // Thm. 2: CSS dominates the label-multiset bound (which dominates the
  // count bound by [31]).
  EXPECT_GE(css_lb, lm_lb);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CertainBoundsPropertyTest,
                         ::testing::Range(0, 60));

class UncertainBoundPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(UncertainBoundPropertyTest, UniformBoundHoldsForEveryWorld) {
  LabelDictionary dict;
  auto vlabels = simj::testing::TestLabels(dict, 5);
  std::vector<graph::LabelId> elabels = {dict.Intern("r1"),
                                         dict.Intern("r2")};
  Rng rng(500 + GetParam());
  LabeledGraph q = simj::testing::RandomCertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
      static_cast<int>(rng.Uniform(0, 6)));
  UncertainGraph g = simj::testing::RandomUncertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 4)),
      static_cast<int>(rng.Uniform(0, 5)), /*max_alts=*/3);

  int uniform_bound = CssLowerBoundUncertain(q, g, dict);
  for (PossibleWorldIterator it(g); !it.Done(); it.Next()) {
    graph::LabeledGraph world = g.Materialize(it.choice());
    int exact = ExactGed(q, world, dict).distance;
    EXPECT_LE(uniform_bound, exact);
    // The per-world certain bound is also valid.
    EXPECT_LE(CssLowerBound(q, world, dict), exact);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, UncertainBoundPropertyTest,
                         ::testing::Range(0, 40));

TEST(CStarBoundTest, HandCases) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId r = dict.Intern("r");
  LabeledGraph g;
  g.AddVertex(a);
  g.AddVertex(a);
  g.AddEdge(0, 1, r);
  EXPECT_EQ(CStarLowerBound(g, g, dict), 0);

  LabeledGraph empty;
  EXPECT_EQ(CStarLowerBound(empty, empty, dict), 0);
  // Versus the empty graph: mu = sum of star sizes, normalized by 4.
  EXPECT_GE(CStarLowerBound(g, empty, dict), 0);
  int exact = ExactGed(g, empty, dict).distance;
  EXPECT_LE(CStarLowerBound(g, empty, dict), exact);
}

TEST(UncertainBoundTest, MaxCommonVertexLabelsBipartite) {
  // Mirrors the paper's Def. 10 example shape: an uncertain vertex links to
  // a q vertex iff one of its alternatives matches.
  LabelDictionary dict;
  graph::LabelId nba = dict.Intern("NBA_Player");
  graph::LabelId prof = dict.Intern("Professor");
  graph::LabelId actor = dict.Intern("Actor");
  graph::LabelId city = dict.Intern("City");

  LabeledGraph q;
  q.AddVertex(actor);
  q.AddVertex(city);

  UncertainGraph g;
  g.AddVertex({{nba, 0.6}, {prof, 0.3}, {actor, 0.1}});
  g.AddVertex({{city, 1.0}});
  g.AddEdge(0, 1, actor);

  EXPECT_EQ(MaxCommonVertexLabels(q, g, dict), 2);
}

TEST(UncertainBoundTest, WildcardInQueryMatchesEverything) {
  LabelDictionary dict;
  graph::LabelId var = dict.Intern("?x");
  graph::LabelId a = dict.Intern("A");
  graph::LabelId b = dict.Intern("B");

  LabeledGraph q;
  q.AddVertex(var);

  UncertainGraph g;
  g.AddVertex({{a, 0.5}, {b, 0.5}});
  EXPECT_EQ(MaxCommonVertexLabels(q, g, dict), 1);
}

}  // namespace
}  // namespace simj::ged
