// Compile-only contract check for the simj::Mutex capability annotations
// (DESIGN.md §11). NOT part of the CMake test build: ci.sh's thread-safety
// leg feeds this file to clang++ -fsyntax-only -Wthread-safety
// -Werror=thread-safety twice:
//
//   1. as-is — must compile silently: the annotated pattern below is the
//      correct one, so a clean tree stays clean;
//   2. with -DSIMJ_THREAD_SAFETY_EXPECT_FAIL — must FAIL to compile:
//      Bad() reads a SIMJ_GUARDED_BY field without holding its mutex. If
//      this leg ever *passes*, the analysis has silently gone dark (macro
//      regression, flag typo) and CI fails loudly instead of drifting.
//
// Under GCC both invocations compile: the attributes expand to nothing,
// which is why the leg is clang-gated.

#include "util/sync.h"

namespace {

class Guarded {
 public:
  int Get() {
    simj::MutexLock lock(mu_);
    return value_;
  }

  void Set(int v) {
    simj::MutexLock lock(mu_);
    value_ = v;
  }

#if defined(SIMJ_THREAD_SAFETY_EXPECT_FAIL)
  // Unannotated access to a guarded field: -Wthread-safety must reject it.
  int Bad() { return value_; }
#endif

 private:
  simj::Mutex mu_;
  int value_ SIMJ_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(3);
  return g.Get() == 3 ? 0 : 1;
}
