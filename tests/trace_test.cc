// Tests for the scoped-span tracer: recording on/off, per-thread tids,
// JSON escaping, and the Chrome-trace JSON shape.

#include "util/trace.h"

#include <sstream>
#include <thread>

#include <gtest/gtest.h>

namespace simj::trace {
namespace {

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  tracer.Stop();
  { ScopedSpan span("should_not_record", "test"); }
  EXPECT_EQ(tracer.event_count(), 0);
}

TEST(TracerTest, SpansRecordWhileEnabled) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  { ScopedSpan span("outer", "test"); ScopedSpan inner("inner", "test"); }
  { ScopedSpan span("second", "test"); }
  tracer.Stop();
  EXPECT_EQ(tracer.event_count(), 3);
  { ScopedSpan span("after_stop", "test"); }
  EXPECT_EQ(tracer.event_count(), 3);
}

TEST(TracerTest, StartClearsPreviousEvents) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  { ScopedSpan span("first_run", "test"); }
  tracer.Stop();
  EXPECT_EQ(tracer.event_count(), 1);
  tracer.Start();
  EXPECT_EQ(tracer.event_count(), 0);
  tracer.Stop();
}

TEST(TracerTest, ThreadsGetDistinctTraceIds) {
  int main_tid = ThisThreadTraceId();
  EXPECT_EQ(main_tid, ThisThreadTraceId());  // stable within a thread
  int worker_tid = -1;
  std::thread worker([&worker_tid] { worker_tid = ThisThreadTraceId(); });
  worker.join();
  EXPECT_NE(main_tid, worker_tid);
}

TEST(TracerTest, ChromeTraceJsonShape) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  { ScopedSpan span("main_span", "join"); }
  std::thread worker([] { ScopedSpan span("worker_span", "verify"); });
  worker.join();
  tracer.Stop();

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  std::string json = os.str();

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Both spans with their categories, as complete events.
  EXPECT_NE(json.find("\"name\":\"main_span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker_span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"join\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"verify\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Metadata so Perfetto labels the lanes.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(TracerTest, WorkerSpanCarriesWorkerTid) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  int worker_tid = -1;
  std::thread worker([&worker_tid] {
    worker_tid = ThisThreadTraceId();
    ScopedSpan span("tid_probe", "test");
  });
  worker.join();
  tracer.Stop();
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  std::string json = os.str();
  std::string expected =
      "\"tid\":" + std::to_string(worker_tid) + ",";
  size_t probe = json.find("\"name\":\"tid_probe\"");
  ASSERT_NE(probe, std::string::npos);
  // The tid field appears inside the same event object as the probe name.
  size_t event_end = json.find('}', probe);
  EXPECT_NE(json.substr(probe, event_end - probe).find(expected),
            std::string::npos)
      << json.substr(probe, event_end - probe);
}

TEST(TracerTest, RegisteredThreadNamesAppearInMetadata) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  SetThisThreadName("main");
  { ScopedSpan span("named_main_span", "test"); }
  std::thread worker([] {
    SetThisThreadName("join-worker-probe");
    ScopedSpan span("named_worker_span", "test");
  });
  worker.join();
  tracer.Stop();

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"args\":{\"name\":\"main\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"join-worker-probe\"}"),
            std::string::npos);
}

TEST(TracerTest, SetThisThreadNameIsNoOpWhileIdle) {
  Tracer& tracer = Tracer::Global();
  tracer.Stop();
  tracer.SetRecentRing(false);
  // Must not register a buffer (and must not crash) while both collectors
  // are off; nothing observable to assert beyond absence of new events.
  SetThisThreadName("idle-name");
  EXPECT_FALSE(tracer.collecting());
}

TEST(TracerTest, RecentRingKeepsLastSpansWithoutFullTrace) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();  // clear events left over from earlier tests
  tracer.Stop();
  tracer.SetRecentRing(true);
  SetThisThreadName("ring-main");
  for (int i = 0; i < kRecentRingCapacity + 10; ++i) {
    ScopedSpan span("ring_span", "test");
  }
  tracer.SetRecentRing(false);

  // The full-trace collector stayed off.
  EXPECT_EQ(tracer.event_count(), 0);

  std::vector<RecentThreadSpans> recent = tracer.RecentSpans();
  int my_tid = ThisThreadTraceId();
  bool found = false;
  for (const RecentThreadSpans& thread : recent) {
    if (thread.tid != my_tid) continue;
    found = true;
    EXPECT_EQ(thread.name, "ring-main");
    EXPECT_EQ(static_cast<int>(thread.spans.size()), kRecentRingCapacity);
    for (const TraceEvent& span : thread.spans) {
      EXPECT_EQ(span.name, "ring_span");
      EXPECT_EQ(span.tid, my_tid);
    }
    // Oldest-first ordering.
    for (size_t i = 1; i < thread.spans.size(); ++i) {
      EXPECT_LE(thread.spans[i - 1].ts_us, thread.spans[i].ts_us);
    }
  }
  EXPECT_TRUE(found);
}

TEST(TracerTest, ReArmingRecentRingClearsStaleSpans) {
  Tracer& tracer = Tracer::Global();
  tracer.SetRecentRing(true);
  { ScopedSpan span("stale_span", "test"); }
  tracer.SetRecentRing(true);  // re-arm: discards the stale ring
  { ScopedSpan span("fresh_span", "test"); }
  tracer.SetRecentRing(false);

  int my_tid = ThisThreadTraceId();
  for (const RecentThreadSpans& thread : tracer.RecentSpans()) {
    if (thread.tid != my_tid) continue;
    ASSERT_EQ(thread.spans.size(), 1u);
    EXPECT_EQ(thread.spans[0].name, "fresh_span");
  }
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

// --- Cluster-trace features: process lanes, injection, thread capture ---

TEST(ClusterTraceTest, RegisteredProcessLanesEmitNamedMetadata) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  tracer.RegisterProcessLane(2, "worker-0");
  tracer.RegisterProcessLane(3, "worker-1");
  TraceEvent remote;
  remote.name = "shard-0/attempt-0";
  remote.category = "shard";
  remote.pid = 3;
  remote.ts_us = 5.0;
  remote.dur_us = 2.0;
  tracer.InjectEvents({remote});
  tracer.Stop();

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"worker-0\""), std::string::npos);
  EXPECT_NE(json.find("\"worker-1\""), std::string::npos);
  // The injected event rides the registered lane.
  const size_t probe = json.find("\"name\":\"shard-0/attempt-0\"");
  ASSERT_NE(probe, std::string::npos);
  const size_t event_end = json.find('}', probe);
  EXPECT_NE(json.substr(probe, event_end - probe).find("\"pid\":3"),
            std::string::npos);
}

// Worker/process lane names come from user-facing strings in the cluster
// path, so the JSON writer must escape quotes, backslashes, and pass
// non-ASCII bytes through (UTF-8 is valid JSON as-is).
TEST(ClusterTraceTest, LaneAndEventNamesAreJsonEscaped) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  tracer.RegisterProcessLane(2, "worker \"zero\"");
  tracer.RegisterProcessLane(3, "lane\\back");
  tracer.RegisterProcessLane(4, "wörker-ü");  // non-ASCII survives verbatim
  TraceEvent odd;
  odd.name = "span \"q\"\\x\n";
  odd.category = "c\\t";
  odd.pid = 2;
  tracer.InjectEvents({odd});
  tracer.Stop();

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"worker \\\"zero\\\"\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"lane\\\\back\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"wörker-ü\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"span \\\"q\\\"\\\\x\\n\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"cat\":\"c\\\\t\""), std::string::npos) << json;
  // No raw quote/backslash/newline leaked into any JSON string.
  EXPECT_EQ(json.find("worker \"zero\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), json.size() - 1) << "embedded raw newline";
}

TEST(ClusterTraceTest, SpanContextIdsSerializeIntoArgs) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  TraceEvent span;
  span.name = "ctx_span";
  span.category = "shard";
  span.pid = 2;
  span.trace_id = 7;
  span.span_id = 9;
  span.parent_span_id = 3;
  TraceEvent plain;
  plain.name = "plain_span";
  plain.category = "shard";
  tracer.InjectEvents({span, plain});
  tracer.Stop();

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  const size_t ctx = json.find("\"name\":\"ctx_span\"");
  ASSERT_NE(ctx, std::string::npos);
  const size_t ctx_end = json.find('}', json.find("\"args\"", ctx));
  const std::string ctx_event = json.substr(ctx, ctx_end - ctx);
  EXPECT_NE(ctx_event.find("\"trace_id\":\"7\""), std::string::npos)
      << ctx_event;
  EXPECT_NE(ctx_event.find("\"span_id\":\"9\""), std::string::npos);
  EXPECT_NE(ctx_event.find("\"parent_span_id\":\"3\""), std::string::npos);
  // Id-less events omit args entirely.
  const size_t p = json.find("\"name\":\"plain_span\"");
  ASSERT_NE(p, std::string::npos);
  EXPECT_EQ(json.substr(p, json.find('}', p) - p).find("\"args\""),
            std::string::npos);
}

TEST(ClusterTraceTest, ThreadCaptureDivertsSpansExclusively) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  tracer.BeginThreadCapture();
  { ScopedSpan span("captured_span", "test"); }
  std::vector<TraceEvent> captured = tracer.EndThreadCapture();
  { ScopedSpan span("buffered_span", "test"); }
  tracer.Stop();

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].name, "captured_span");
  // The captured span did NOT also land in the shared buffers — injecting
  // it later is the only way it enters the trace (no double record).
  EXPECT_EQ(tracer.event_count(), 1);
  std::vector<TraceEvent> snapshot = tracer.SnapshotEvents();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "buffered_span");
}

// A forked process-transport worker inherits an arbitrary enabled_
// snapshot; the capture must record regardless of it.
TEST(ClusterTraceTest, ThreadCaptureRecordsWhileTracerDisabled) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  tracer.Stop();  // tracer idle
  EXPECT_FALSE(tracer.enabled());
  tracer.BeginThreadCapture();
  EXPECT_TRUE(tracer.collecting());
  { ScopedSpan span("disabled_capture", "test"); }
  std::vector<TraceEvent> captured = tracer.EndThreadCapture();
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].name, "disabled_capture");
  EXPECT_EQ(tracer.event_count(), 0);
  // InjectEvents while disabled is a no-op (nothing to merge into).
  tracer.InjectEvents(std::move(captured));
  EXPECT_EQ(tracer.event_count(), 0);
}

TEST(ClusterTraceTest, StartClearsInjectedEventsAndLanes) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  tracer.RegisterProcessLane(2, "stale-lane");
  TraceEvent stale;
  stale.name = "stale_injected";
  tracer.InjectEvents({stale});
  EXPECT_EQ(tracer.event_count(), 1);
  tracer.Start();  // re-arm: a new run starts from a clean slate
  EXPECT_EQ(tracer.event_count(), 0);
  tracer.Stop();
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  EXPECT_EQ(os.str().find("stale"), std::string::npos);
}

}  // namespace
}  // namespace simj::trace
