// Tests for the scoped-span tracer: recording on/off, per-thread tids,
// JSON escaping, and the Chrome-trace JSON shape.

#include "util/trace.h"

#include <sstream>
#include <thread>

#include <gtest/gtest.h>

namespace simj::trace {
namespace {

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  tracer.Stop();
  { ScopedSpan span("should_not_record", "test"); }
  EXPECT_EQ(tracer.event_count(), 0);
}

TEST(TracerTest, SpansRecordWhileEnabled) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  { ScopedSpan span("outer", "test"); ScopedSpan inner("inner", "test"); }
  { ScopedSpan span("second", "test"); }
  tracer.Stop();
  EXPECT_EQ(tracer.event_count(), 3);
  { ScopedSpan span("after_stop", "test"); }
  EXPECT_EQ(tracer.event_count(), 3);
}

TEST(TracerTest, StartClearsPreviousEvents) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  { ScopedSpan span("first_run", "test"); }
  tracer.Stop();
  EXPECT_EQ(tracer.event_count(), 1);
  tracer.Start();
  EXPECT_EQ(tracer.event_count(), 0);
  tracer.Stop();
}

TEST(TracerTest, ThreadsGetDistinctTraceIds) {
  int main_tid = ThisThreadTraceId();
  EXPECT_EQ(main_tid, ThisThreadTraceId());  // stable within a thread
  int worker_tid = -1;
  std::thread worker([&worker_tid] { worker_tid = ThisThreadTraceId(); });
  worker.join();
  EXPECT_NE(main_tid, worker_tid);
}

TEST(TracerTest, ChromeTraceJsonShape) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  { ScopedSpan span("main_span", "join"); }
  std::thread worker([] { ScopedSpan span("worker_span", "verify"); });
  worker.join();
  tracer.Stop();

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  std::string json = os.str();

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Both spans with their categories, as complete events.
  EXPECT_NE(json.find("\"name\":\"main_span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker_span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"join\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"verify\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Metadata so Perfetto labels the lanes.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(TracerTest, WorkerSpanCarriesWorkerTid) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  int worker_tid = -1;
  std::thread worker([&worker_tid] {
    worker_tid = ThisThreadTraceId();
    ScopedSpan span("tid_probe", "test");
  });
  worker.join();
  tracer.Stop();
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  std::string json = os.str();
  std::string expected =
      "\"tid\":" + std::to_string(worker_tid) + ",";
  size_t probe = json.find("\"name\":\"tid_probe\"");
  ASSERT_NE(probe, std::string::npos);
  // The tid field appears inside the same event object as the probe name.
  size_t event_end = json.find('}', probe);
  EXPECT_NE(json.substr(probe, event_end - probe).find(expected),
            std::string::npos)
      << json.substr(probe, event_end - probe);
}

TEST(TracerTest, RegisteredThreadNamesAppearInMetadata) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  SetThisThreadName("main");
  { ScopedSpan span("named_main_span", "test"); }
  std::thread worker([] {
    SetThisThreadName("join-worker-probe");
    ScopedSpan span("named_worker_span", "test");
  });
  worker.join();
  tracer.Stop();

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"args\":{\"name\":\"main\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"join-worker-probe\"}"),
            std::string::npos);
}

TEST(TracerTest, SetThisThreadNameIsNoOpWhileIdle) {
  Tracer& tracer = Tracer::Global();
  tracer.Stop();
  tracer.SetRecentRing(false);
  // Must not register a buffer (and must not crash) while both collectors
  // are off; nothing observable to assert beyond absence of new events.
  SetThisThreadName("idle-name");
  EXPECT_FALSE(tracer.collecting());
}

TEST(TracerTest, RecentRingKeepsLastSpansWithoutFullTrace) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();  // clear events left over from earlier tests
  tracer.Stop();
  tracer.SetRecentRing(true);
  SetThisThreadName("ring-main");
  for (int i = 0; i < kRecentRingCapacity + 10; ++i) {
    ScopedSpan span("ring_span", "test");
  }
  tracer.SetRecentRing(false);

  // The full-trace collector stayed off.
  EXPECT_EQ(tracer.event_count(), 0);

  std::vector<RecentThreadSpans> recent = tracer.RecentSpans();
  int my_tid = ThisThreadTraceId();
  bool found = false;
  for (const RecentThreadSpans& thread : recent) {
    if (thread.tid != my_tid) continue;
    found = true;
    EXPECT_EQ(thread.name, "ring-main");
    EXPECT_EQ(static_cast<int>(thread.spans.size()), kRecentRingCapacity);
    for (const TraceEvent& span : thread.spans) {
      EXPECT_EQ(span.name, "ring_span");
      EXPECT_EQ(span.tid, my_tid);
    }
    // Oldest-first ordering.
    for (size_t i = 1; i < thread.spans.size(); ++i) {
      EXPECT_LE(thread.spans[i - 1].ts_us, thread.spans[i].ts_us);
    }
  }
  EXPECT_TRUE(found);
}

TEST(TracerTest, ReArmingRecentRingClearsStaleSpans) {
  Tracer& tracer = Tracer::Global();
  tracer.SetRecentRing(true);
  { ScopedSpan span("stale_span", "test"); }
  tracer.SetRecentRing(true);  // re-arm: discards the stale ring
  { ScopedSpan span("fresh_span", "test"); }
  tracer.SetRecentRing(false);

  int my_tid = ThisThreadTraceId();
  for (const RecentThreadSpans& thread : tracer.RecentSpans()) {
    if (thread.tid != my_tid) continue;
    ASSERT_EQ(thread.spans.size(), 1u);
    EXPECT_EQ(thread.spans[0].name, "fresh_span");
  }
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace simj::trace
