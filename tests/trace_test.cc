// Tests for the scoped-span tracer: recording on/off, per-thread tids,
// JSON escaping, and the Chrome-trace JSON shape.

#include "util/trace.h"

#include <sstream>
#include <thread>

#include <gtest/gtest.h>

namespace simj::trace {
namespace {

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  tracer.Stop();
  { ScopedSpan span("should_not_record", "test"); }
  EXPECT_EQ(tracer.event_count(), 0);
}

TEST(TracerTest, SpansRecordWhileEnabled) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  { ScopedSpan span("outer", "test"); ScopedSpan inner("inner", "test"); }
  { ScopedSpan span("second", "test"); }
  tracer.Stop();
  EXPECT_EQ(tracer.event_count(), 3);
  { ScopedSpan span("after_stop", "test"); }
  EXPECT_EQ(tracer.event_count(), 3);
}

TEST(TracerTest, StartClearsPreviousEvents) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  { ScopedSpan span("first_run", "test"); }
  tracer.Stop();
  EXPECT_EQ(tracer.event_count(), 1);
  tracer.Start();
  EXPECT_EQ(tracer.event_count(), 0);
  tracer.Stop();
}

TEST(TracerTest, ThreadsGetDistinctTraceIds) {
  int main_tid = ThisThreadTraceId();
  EXPECT_EQ(main_tid, ThisThreadTraceId());  // stable within a thread
  int worker_tid = -1;
  std::thread worker([&worker_tid] { worker_tid = ThisThreadTraceId(); });
  worker.join();
  EXPECT_NE(main_tid, worker_tid);
}

TEST(TracerTest, ChromeTraceJsonShape) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  { ScopedSpan span("main_span", "join"); }
  std::thread worker([] { ScopedSpan span("worker_span", "verify"); });
  worker.join();
  tracer.Stop();

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  std::string json = os.str();

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Both spans with their categories, as complete events.
  EXPECT_NE(json.find("\"name\":\"main_span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker_span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"join\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"verify\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Metadata so Perfetto labels the lanes.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(TracerTest, WorkerSpanCarriesWorkerTid) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  int worker_tid = -1;
  std::thread worker([&worker_tid] {
    worker_tid = ThisThreadTraceId();
    ScopedSpan span("tid_probe", "test");
  });
  worker.join();
  tracer.Stop();
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  std::string json = os.str();
  std::string expected =
      "\"tid\":" + std::to_string(worker_tid) + ",";
  size_t probe = json.find("\"name\":\"tid_probe\"");
  ASSERT_NE(probe, std::string::npos);
  // The tid field appears inside the same event object as the probe name.
  size_t event_end = json.find('}', probe);
  EXPECT_NE(json.substr(probe, event_end - probe).find(expected),
            std::string::npos)
      << json.substr(probe, event_end - probe);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace simj::trace
