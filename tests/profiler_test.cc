// Tests for the sampling CPU profiler (util/profiler.h): deterministic
// emission (JSON schema golden + folded text from a hand-built Profile),
// live-capture attribution of CPU burn to named threads, exact
// drop-counter accounting when a 1 kHz burst overflows the undrained
// ring, batch merge/normalize semantics, and the remote-section merge
// path the cluster coordinator uses.
//
// Live-capture tests arm the real SIGPROF machinery; under TSan
// StartProfiling refuses by design (the handler's stack walk races the
// sanitizer runtime), so those tests skip when arming fails.

#include "util/profiler.h"

#include <csignal>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace simj::prof {
namespace {

// Spends roughly `seconds` of CPU time in a loop the sampler can observe.
// The volatile sink keeps the loop from being optimized away.
void BurnCpu(double seconds) {
  volatile double sink = 0.0;
  const auto clock_start = std::chrono::steady_clock::now();
  const std::chrono::duration<double> budget(seconds);
  while (std::chrono::steady_clock::now() - clock_start < budget) {
    for (int i = 1; i < 2000; ++i) sink = sink + 1.0 / i;
  }
  (void)sink;
}

// Arms the profiler or skips the test (TSan builds refuse by design).
#define ARM_OR_SKIP(options)                                    \
  do {                                                          \
    Status armed = StartProfiling(options);                     \
    if (!armed.ok()) GTEST_SKIP() << armed.ToString();          \
  } while (false)

Profile MakeHandBuiltProfile() {
  Profile profile;
  profile.hz = 99;
  profile.period_us = 1e6 / 99.0;
  profile.duration_seconds = 0.25;
  ProfileSection coordinator;
  coordinator.label = "coordinator";
  coordinator.batch.samples = 7;
  coordinator.batch.dropped = 1;
  coordinator.batch.truncated = 2;
  coordinator.batch.stacks = {
      {"main", {"Run", "Join", "Verify(int, long)"}, 5},
      {"join-w0", {"Run", "Join", "Prune"}, 2},
  };
  coordinator.batch.Normalize();
  ProfileSection worker;
  worker.label = "worker-0";
  worker.batch.samples = 3;
  worker.batch.stacks = {{"serve", {"ServeShards", "EvalShard"}, 3}};
  // Deliberately appended out of label order: emission must sort.
  profile.sections = {worker, coordinator};
  return profile;
}

TEST(ProfilerEmissionTest, JsonMatchesSchemaGolden) {
  const std::string json = ProfileJson(MakeHandBuiltProfile());
  // The full record, byte for byte: key order, %.3f floats, sections
  // sorted by label, stacks by (thread, frames), trailing newline. Any
  // change here is a schema change — coordinate ci.sh's validator,
  // tools/flame.py, and tools/bench_compare.py before re-goldening.
  EXPECT_EQ(json,
            "{\"schema\":\"simj_profile_v1\",\"hz\":99,"
            "\"period_us\":10101.010,\"duration_seconds\":0.250,"
            "\"samples\":10,\"dropped\":1,\"truncated\":2,\"sections\":["
            "{\"label\":\"coordinator\",\"samples\":7,\"dropped\":1,"
            "\"truncated\":2,\"stacks\":["
            "{\"thread\":\"join-w0\",\"count\":2,"
            "\"frames\":[\"Run\",\"Join\",\"Prune\"]},"
            "{\"thread\":\"main\",\"count\":5,"
            "\"frames\":[\"Run\",\"Join\",\"Verify(int, long)\"]}]},"
            "{\"label\":\"worker-0\",\"samples\":3,\"dropped\":0,"
            "\"truncated\":0,\"stacks\":["
            "{\"thread\":\"serve\",\"count\":3,"
            "\"frames\":[\"ServeShards\",\"EvalShard\"]}]}]}\n");
}

TEST(ProfilerEmissionTest, FoldedTextIsSemicolonSafe) {
  const std::string folded = FoldedText(MakeHandBuiltProfile());
  // label;thread;root;...;leaf count — with the space inside
  // "Verify(int, long)" cleaned so the trailing count stays parseable.
  EXPECT_EQ(folded,
            "coordinator;join-w0;Run;Join;Prune 2\n"
            "coordinator;main;Run;Join;Verify(int,long) 5\n"
            "worker-0;serve;ServeShards;EvalShard 3\n");
}

TEST(ProfilerEmissionTest, JsonEscapesFrameStrings) {
  Profile profile;
  profile.hz = 1;
  profile.sections = {{"coordinator",
                       {1, 0, 0, {{"t\"1", {"A\\B"}, 1}}}}};
  const std::string json = ProfileJson(profile);
  EXPECT_NE(json.find("\"t\\\"1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"A\\\\B\""), std::string::npos) << json;
}

TEST(SampleBatchTest, MergeFoldsIdenticalStacksAndSumsCounters) {
  SampleBatch a;
  a.samples = 3;
  a.dropped = 1;
  a.stacks = {{"main", {"X", "Y"}, 3}};
  SampleBatch b;
  b.samples = 5;
  b.truncated = 2;
  b.stacks = {{"main", {"X", "Y"}, 2}, {"main", {"X", "Z"}, 3}};
  a.MergeFrom(b);
  EXPECT_EQ(a.samples, 8);
  EXPECT_EQ(a.dropped, 1);
  EXPECT_EQ(a.truncated, 2);
  ASSERT_EQ(a.stacks.size(), 2u);
  EXPECT_EQ(a.stacks[0].frames, (std::vector<std::string>{"X", "Y"}));
  EXPECT_EQ(a.stacks[0].count, 5);
  EXPECT_EQ(a.stacks[1].count, 3);
  EXPECT_TRUE(SampleBatch{}.empty());
  EXPECT_FALSE(a.empty());
}

TEST(ProfilerCaptureTest, AttributesBurnToNamedThreads) {
  NoteThisThread("prof-test-main");
  ARM_OR_SKIP(ProfileOptions{200});
  EXPECT_TRUE(ProfilingActive());
  EXPECT_EQ(ActiveHz(), 200);

  std::thread alpha([] {
    NoteThisThread("prof-test-alpha");
    BurnCpu(0.4);
  });
  BurnCpu(0.4);
  alpha.join();

  StatusOr<Profile> profile = StopProfiling();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_FALSE(ProfilingActive());
  EXPECT_EQ(ActiveHz(), 0);
  ASSERT_EQ(profile->sections.size(), 1u);
  EXPECT_EQ(profile->sections[0].label, "coordinator");
  int64_t main_samples = 0;
  int64_t alpha_samples = 0;
  for (const FoldedStack& stack : profile->sections[0].batch.stacks) {
    ASSERT_FALSE(stack.frames.empty());
    if (stack.thread == "prof-test-main") main_samples += stack.count;
    if (stack.thread == "prof-test-alpha") alpha_samples += stack.count;
  }
  // 0.4 CPU-seconds at 200 Hz is ~80 samples per thread; even heavily
  // time-shared CI machines deliver a healthy multiple of 1.
  EXPECT_GT(main_samples, 5) << ProfileJson(*profile);
  EXPECT_GT(alpha_samples, 5) << ProfileJson(*profile);
  EXPECT_GT(profile->duration_seconds, 0.0);
}

TEST(ProfilerCaptureTest, BurstOverflowIsCountedNotLost) {
  NoteThisThread("prof-test-main");
  ARM_OR_SKIP(ProfileOptions{1000});
  // Timer-driven delivery tops out at the kernel tick rate (often 250 Hz),
  // so overflow the undrained ring deterministically instead: raise
  // SIGPROF synchronously well past kRingCapacity — a burst far beyond
  // 1 kHz through the same handler path. Every delivery must land as
  // either a stored sample or a counted drop; none may vanish.
  constexpr int kExtra = 200;
  for (int i = 0; i < kRingCapacity + kExtra; ++i) ::raise(SIGPROF);
  StatusOr<Profile> profile = StopProfiling();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  int64_t main_samples = 0;
  for (const ProfileSection& section : profile->sections) {
    for (const FoldedStack& stack : section.batch.stacks) {
      if (stack.thread == "prof-test-main") main_samples += stack.count;
    }
  }
  EXPECT_LE(main_samples, kRingCapacity);
  EXPECT_GE(profile->TotalDropped(), kExtra) << ProfileJson(*profile);
  // stored + dropped >= synchronous deliveries (timer ticks only add).
  EXPECT_GE(main_samples + profile->TotalDropped(),
            kRingCapacity + kExtra);
}

TEST(ProfilerCaptureTest, DoubleStartFailsAndStopWithoutStartFails) {
  NoteThisThread("prof-test-main");
  ARM_OR_SKIP(ProfileOptions{99});
  EXPECT_FALSE(StartProfiling(ProfileOptions{99}).ok());
  StatusOr<Profile> profile = StopProfiling();
  ASSERT_TRUE(profile.ok());
  EXPECT_FALSE(StopProfiling().ok());
  EXPECT_FALSE(StartProfiling(ProfileOptions{0}).ok());       // hz too low
  EXPECT_FALSE(StartProfiling(ProfileOptions{20000}).ok());   // hz too high
}

TEST(ProfilerCaptureTest, RemoteSectionsMergeUnderTheirLabels) {
  NoteThisThread("prof-test-main");
  ARM_OR_SKIP(ProfileOptions{99});
  SampleBatch shipped;
  shipped.samples = 4;
  shipped.stacks = {{"serve", {"ServeShards", "EvalShard"}, 4}};
  AccumulateRemoteSection("worker-1", shipped);
  SampleBatch more;
  more.samples = 2;
  more.dropped = 1;
  more.stacks = {{"serve", {"ServeShards", "EvalShard"}, 2}};
  AccumulateRemoteSection("worker-1", more);
  AccumulateRemoteSection("worker-0", shipped);
  BurnCpu(0.05);
  StatusOr<Profile> profile = StopProfiling();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ASSERT_EQ(profile->sections.size(), 3u);
  EXPECT_EQ(profile->sections[0].label, "coordinator");
  EXPECT_EQ(profile->sections[1].label, "worker-0");
  EXPECT_EQ(profile->sections[2].label, "worker-1");
  EXPECT_EQ(profile->sections[2].batch.samples, 6);
  EXPECT_EQ(profile->sections[2].batch.dropped, 1);
  ASSERT_EQ(profile->sections[2].batch.stacks.size(), 1u);
  EXPECT_EQ(profile->sections[2].batch.stacks[0].count, 6);
  // Accumulated remotes were consumed: a fresh capture starts clean.
  ARM_OR_SKIP(ProfileOptions{99});
  StatusOr<Profile> clean = StopProfiling();
  ASSERT_TRUE(clean.ok());
  for (const ProfileSection& section : clean->sections) {
    EXPECT_EQ(section.label, "coordinator");
  }
}

TEST(ProfilerCaptureTest, CaptureProfileIsSelfContained) {
  NoteThisThread("prof-test-main");
  std::atomic<bool> stop{false};
  std::thread burner([&] {
    NoteThisThread("prof-test-burner");
    while (!stop.load(std::memory_order_acquire)) BurnCpu(0.02);
  });
  StatusOr<Profile> profile = CaptureProfile(0.3, 200);
  stop.store(true, std::memory_order_release);
  burner.join();
  if (!profile.ok()) GTEST_SKIP() << profile.status().ToString();
  EXPECT_EQ(profile->hz, 200);
  EXPECT_GE(profile->duration_seconds, 0.3);
  EXPECT_GT(profile->TotalSamples(), 0);
  EXPECT_FALSE(ProfilingActive());
}

}  // namespace
}  // namespace simj::prof
