#include <gtest/gtest.h>

#include "graph/label.h"
#include "sparql/parser.h"
#include "util/rng.h"

namespace simj::sparql {
namespace {

TEST(ParserTest, ParsesBasicQuery) {
  graph::LabelDictionary dict;
  auto query = ParseSparql(
      "SELECT ?person WHERE { ?person type Artist . "
      "?person graduatedFrom Harvard_University . }",
      dict);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->select_vars.size(), 1u);
  EXPECT_EQ(query->patterns.size(), 2u);
  EXPECT_EQ(dict.Name(query->patterns[0].predicate), "type");
  EXPECT_EQ(dict.Name(query->patterns[1].object), "Harvard_University");
}

TEST(ParserTest, AcceptsAngleBracketIris) {
  graph::LabelDictionary dict;
  auto query = ParseSparql(
      "SELECT ?x WHERE { ?x <rdf:type> <Artist> }", dict);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(dict.Name(query->patterns[0].predicate), "rdf:type");
  EXPECT_EQ(dict.Name(query->patterns[0].object), "Artist");
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  graph::LabelDictionary dict;
  EXPECT_TRUE(ParseSparql("select ?x where { ?x p o . }", dict).ok());
  EXPECT_TRUE(ParseSparql("Select ?x Where { ?x p o }", dict).ok());
}

TEST(ParserTest, MultipleSelectVars) {
  graph::LabelDictionary dict;
  auto query = ParseSparql("SELECT ?a ?b WHERE { ?a knows ?b . }", dict);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->select_vars.size(), 2u);
}

TEST(ParserTest, RejectsMalformedQueries) {
  graph::LabelDictionary dict;
  EXPECT_FALSE(ParseSparql("", dict).ok());
  EXPECT_FALSE(ParseSparql("ASK { ?x p o }", dict).ok());
  EXPECT_FALSE(ParseSparql("SELECT WHERE { ?x p o }", dict).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x p }", dict).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x p o", dict).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x <unterminated o }", dict).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x p o . } junk", dict).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { }", dict).ok());
}

TEST(ParserTest, RoundTripsThroughText) {
  graph::LabelDictionary dict;
  auto query = ParseSparql(
      "SELECT ?x WHERE { ?x type Artist . ?x spouse ?y . }", dict);
  ASSERT_TRUE(query.ok());
  std::string text = ToSparqlText(*query, dict);
  auto reparsed = ParseSparql(text, dict);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->select_vars, query->select_vars);
  EXPECT_EQ(reparsed->patterns, query->patterns);
}

TEST(ParserTest, ExpandsPrefixes) {
  graph::LabelDictionary dict;
  auto query = ParseSparql(
      "PREFIX dbo: <http://dbpedia.org/ontology/> "
      "SELECT ?x WHERE { ?x dbo:birthPlace dbo:Berlin . }",
      dict);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(dict.Name(query->patterns[0].predicate),
            "http://dbpedia.org/ontology/birthPlace");
  EXPECT_EQ(dict.Name(query->patterns[0].object),
            "http://dbpedia.org/ontology/Berlin");
}

TEST(ParserTest, DistinctAndLimit) {
  graph::LabelDictionary dict;
  auto query = ParseSparql(
      "SELECT DISTINCT ?x WHERE { ?x p o . } LIMIT 10", dict);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE(query->distinct);
  EXPECT_EQ(query->limit, 10);
  // Round trip keeps both.
  auto reparsed = ParseSparql(ToSparqlText(*query, dict), dict);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed->distinct);
  EXPECT_EQ(reparsed->limit, 10);
}

TEST(ParserTest, RejectsBadLimitAndPrefix) {
  graph::LabelDictionary dict;
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x p o } LIMIT abc", dict).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x p o } LIMIT -3", dict).ok());
  EXPECT_FALSE(
      ParseSparql("PREFIX dbo <http://x/> SELECT ?x WHERE { ?x p o }", dict)
          .ok());
}

TEST(ParserTest, FuzzedInputNeverCrashes) {
  // Random token soup over the parser's alphabet must yield a Status (or a
  // valid parse), never a crash.
  Rng rng(42);
  const char* pieces[] = {"SELECT", "WHERE",  "PREFIX", "LIMIT", "DISTINCT",
                          "?x",     "?y",     "{",      "}",     ".",
                          "<iri>",  "name",   "p:",     "<",     ">",
                          "10",     "-1",     ""};
  for (int trial = 0; trial < 500; ++trial) {
    graph::LabelDictionary dict;
    std::string input;
    int tokens = static_cast<int>(rng.Uniform(0, 12));
    for (int t = 0; t < tokens; ++t) {
      input += pieces[rng.Uniform(0, std::size(pieces) - 1)];
      input += ' ';
    }
    StatusOr<ParsedQuery> query = ParseSparql(input, dict);
    if (query.ok()) {
      // Whatever parsed must serialize and re-parse.
      EXPECT_TRUE(ParseSparql(ToSparqlText(*query, dict), dict).ok())
          << input;
    }
  }
}

TEST(QueryGraphTest, SharedTermsShareVertices) {
  graph::LabelDictionary dict;
  auto query = ParseSparql(
      "SELECT ?x WHERE { ?x type Artist . ?x spouse ?y . ?y type Actor . }",
      dict);
  ASSERT_TRUE(query.ok());
  QueryGraph qg = BuildQueryGraph(*query, dict);
  // Vertices: ?x, Artist, ?y, Actor.
  EXPECT_EQ(qg.graph.num_vertices(), 4);
  EXPECT_EQ(qg.graph.num_edges(), 3);
  EXPECT_EQ(qg.vertex_terms.size(), 4u);
}

TEST(QueryGraphTest, VariablesAreWildcards) {
  graph::LabelDictionary dict;
  auto query = ParseSparql("SELECT ?x WHERE { ?x p Entity . }", dict);
  ASSERT_TRUE(query.ok());
  QueryGraph qg = BuildQueryGraph(*query, dict);
  EXPECT_TRUE(dict.IsWildcard(qg.graph.vertex_label(0)));
  EXPECT_FALSE(dict.IsWildcard(qg.graph.vertex_label(1)));
}

TEST(QueryGraphTest, TypeResolverRewritesEntityLabels) {
  graph::LabelDictionary dict;
  graph::LabelId university = dict.Intern("University");
  auto query =
      ParseSparql("SELECT ?x WHERE { ?x graduatedFrom Harvard . }", dict);
  ASSERT_TRUE(query.ok());
  rdf::TermId harvard = dict.Find("Harvard");
  std::function<graph::LabelId(rdf::TermId)> resolver =
      [&](rdf::TermId term) {
        return term == harvard ? university : graph::kInvalidLabel;
      };
  QueryGraph qg = BuildQueryGraph(*query, dict, &resolver);
  EXPECT_EQ(qg.graph.vertex_label(1), university);
  // Provenance keeps the original term.
  EXPECT_EQ(qg.vertex_terms[1], harvard);
}

TEST(QueryGraphTest, ReflexivePatternDropsSelfLoop) {
  graph::LabelDictionary dict;
  auto query = ParseSparql("SELECT ?x WHERE { ?x knows ?x . }", dict);
  ASSERT_TRUE(query.ok());
  QueryGraph qg = BuildQueryGraph(*query, dict);
  EXPECT_EQ(qg.graph.num_vertices(), 1);
  EXPECT_EQ(qg.graph.num_edges(), 0);
}

TEST(QueryGraphTest, ParallelPredicatesBecomeParallelEdges) {
  graph::LabelDictionary dict;
  auto query = ParseSparql(
      "SELECT ?x WHERE { ?x knows ?y . ?x likes ?y . }", dict);
  ASSERT_TRUE(query.ok());
  QueryGraph qg = BuildQueryGraph(*query, dict);
  EXPECT_EQ(qg.graph.num_vertices(), 2);
  EXPECT_EQ(qg.graph.num_edges(), 2);
}

}  // namespace
}  // namespace simj::sparql
