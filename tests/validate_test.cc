// Tests for the invariant-validation layer: graph Validate() rejecting
// malformed inputs with descriptive statuses, the GED postcondition
// validator, operand-printing checks, and death tests asserting that
// SIMJ_DEBUG_CHECKS aborts on corrupted internal state. This translation
// unit compiles with SIMJ_DEBUG_CHECKS=1 regardless of the build-wide
// option (see tests/CMakeLists.txt), so the DCHECK macros are live here.

#include <string>
#include <vector>

#include "ged/edit_distance.h"
#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/check.h"
#include "util/status.h"

namespace simj {
namespace {

using graph::Edge;
using graph::LabelAlternative;
using graph::LabelDictionary;
using graph::LabeledGraph;
using graph::LabelId;
using graph::UncertainGraph;

// ---------------------------------------------------------------------------
// LabeledGraph::Validate
// ---------------------------------------------------------------------------

TEST(LabeledGraphValidateTest, WellFormedGraphPasses) {
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 4);
  LabeledGraph g;
  int a = g.AddVertex(labels[0]);
  int b = g.AddVertex(labels[1]);
  int c = g.AddVertex(labels[2]);
  g.AddEdge(a, b, labels[3]);
  g.AddEdge(b, c, labels[3]);
  g.AddEdge(a, c, labels[0]);
  EXPECT_TRUE(g.Validate(dict).ok());
}

TEST(LabeledGraphValidateTest, DanglingEdgeEndpointRejected) {
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 2);
  LabeledGraph g = LabeledGraph::FromParts(
      {labels[0], labels[1]}, {Edge{0, 7, labels[0]}});
  Status status = g.Validate(dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("out-of-range endpoint"),
            std::string::npos)
      << status.ToString();
}

TEST(LabeledGraphValidateTest, SelfLoopRejected) {
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 2);
  LabeledGraph g = LabeledGraph::FromParts(
      {labels[0], labels[1]}, {Edge{1, 1, labels[0]}});
  Status status = g.Validate(dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("self loop"), std::string::npos)
      << status.ToString();
}

TEST(LabeledGraphValidateTest, InvalidVertexLabelRejected) {
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 1);
  LabeledGraph g;
  g.AddVertex(labels[0]);
  g.AddVertex(static_cast<LabelId>(dict.size()) + 41);  // never interned
  Status status = g.Validate(dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("invalid label id"), std::string::npos)
      << status.ToString();
}

TEST(LabeledGraphValidateTest, InvalidEdgeLabelRejected) {
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 2);
  LabeledGraph g;
  int a = g.AddVertex(labels[0]);
  int b = g.AddVertex(labels[1]);
  g.AddEdge(a, b, static_cast<LabelId>(dict.size()) + 5);
  Status status = g.Validate(dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("invalid label id"), std::string::npos)
      << status.ToString();
}

TEST(LabeledGraphValidateTest, FromPartsRoundTripsWellFormedInput) {
  // The escape hatch itself must not corrupt valid input: adjacency is
  // rebuilt so Validate's partition check passes.
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 3);
  LabeledGraph g = LabeledGraph::FromParts(
      {labels[0], labels[1]},
      {Edge{0, 1, labels[2]}, Edge{1, 0, labels[2]}});
  EXPECT_TRUE(g.Validate(dict).ok()) << g.Validate(dict).ToString();
  EXPECT_EQ(g.out_edges(0).size(), 1u);
  EXPECT_EQ(g.in_edges(0).size(), 1u);
}

// ---------------------------------------------------------------------------
// UncertainGraph::Validate (paper Def. 2/4 invariants)
// ---------------------------------------------------------------------------

UncertainGraph OneVertexUncertain(std::vector<LabelAlternative> alternatives) {
  LabeledGraph structure;
  structure.AddVertex(graph::kInvalidLabel);
  return UncertainGraph::FromParts({std::move(alternatives)},
                                   std::move(structure));
}

TEST(UncertainGraphValidateTest, WellFormedGraphPasses) {
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 3);
  UncertainGraph g;
  g.AddVertex({LabelAlternative{labels[0], 0.6},
               LabelAlternative{labels[1], 0.4}});
  g.AddCertainVertex(labels[2]);
  g.AddEdge(0, 1, labels[2]);
  EXPECT_TRUE(g.Validate(dict).ok());
}

TEST(UncertainGraphValidateTest, EmptyAlternativeSetRejected) {
  LabelDictionary dict;
  testing::TestLabels(dict, 1);
  UncertainGraph g = OneVertexUncertain({});
  Status status = g.Validate(dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("empty alternative set"),
            std::string::npos)
      << status.ToString();
}

TEST(UncertainGraphValidateTest, ProbabilityMassAboveOneRejected) {
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 2);
  UncertainGraph g = OneVertexUncertain({LabelAlternative{labels[0], 0.7},
                                         LabelAlternative{labels[1], 0.6}});
  Status status = g.Validate(dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("probability mass"), std::string::npos)
      << status.ToString();
}

TEST(UncertainGraphValidateTest, NonPositiveProbabilityRejected) {
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 1);
  UncertainGraph g = OneVertexUncertain({LabelAlternative{labels[0], 0.0}});
  Status status = g.Validate(dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("outside (0, 1]"), std::string::npos)
      << status.ToString();
}

TEST(UncertainGraphValidateTest, DuplicateAlternativeLabelRejected) {
  // Mutual exclusivity (Def. 2): two alternatives of one vertex must carry
  // distinct labels. AddVertex cannot check this cheaply, so this is a
  // Validate-only catch.
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 1);
  UncertainGraph g;
  g.AddVertex({LabelAlternative{labels[0], 0.5},
               LabelAlternative{labels[0], 0.5}});
  Status status = g.Validate(dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("mutually exclusive"), std::string::npos)
      << status.ToString();
}

TEST(UncertainGraphValidateTest, AlternativeCountMismatchRejected) {
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 1);
  LabeledGraph structure;
  structure.AddVertex(graph::kInvalidLabel);
  structure.AddVertex(graph::kInvalidLabel);
  UncertainGraph g = UncertainGraph::FromParts(
      {{LabelAlternative{labels[0], 1.0}}}, std::move(structure));
  Status status = g.Validate(dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("disagrees"), std::string::npos)
      << status.ToString();
}

TEST(UncertainGraphValidateTest, InvalidAlternativeLabelRejected) {
  LabelDictionary dict;
  testing::TestLabels(dict, 1);
  UncertainGraph g = OneVertexUncertain(
      {LabelAlternative{static_cast<LabelId>(dict.size()) + 3, 0.9}});
  Status status = g.Validate(dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("invalid label id"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------------
// GED postcondition validator
// ---------------------------------------------------------------------------

struct GedFixture {
  LabelDictionary dict;
  LabeledGraph a;
  LabeledGraph b;
  ged::GedResult result;

  GedFixture() {
    std::vector<LabelId> labels = testing::TestLabels(dict, 4);
    int a0 = a.AddVertex(labels[0]);
    int a1 = a.AddVertex(labels[1]);
    a.AddEdge(a0, a1, labels[3]);
    int b0 = b.AddVertex(labels[0]);
    int b1 = b.AddVertex(labels[2]);
    b.AddEdge(b0, b1, labels[3]);
    result = ged::ExactGed(a, b, dict);
  }
};

TEST(GedPostconditionTest, SolverResultPassesValidation) {
  GedFixture fx;
  EXPECT_TRUE(ged::ValidateGedResult(fx.a, fx.b, fx.result, fx.dict).ok());
}

TEST(GedPostconditionTest, InflatedDistanceRejected) {
  GedFixture fx;
  fx.result.distance += 1;  // mapping no longer witnesses the distance
  Status status = ged::ValidateGedResult(fx.a, fx.b, fx.result, fx.dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("witnesses cost"), std::string::npos)
      << status.ToString();
}

TEST(GedPostconditionTest, NonInjectiveMappingRejected) {
  GedFixture fx;
  ASSERT_EQ(fx.result.mapping.size(), 2u);
  fx.result.mapping[0] = fx.result.mapping[1] = 0;
  Status status = ged::ValidateGedResult(fx.a, fx.b, fx.result, fx.dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not injective"), std::string::npos)
      << status.ToString();
}

TEST(GedPostconditionTest, OutOfRangeMappingTargetRejected) {
  GedFixture fx;
  fx.result.mapping[0] = fx.b.num_vertices() + 2;
  Status status = ged::ValidateGedResult(fx.a, fx.b, fx.result, fx.dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("out-of-range target"), std::string::npos)
      << status.ToString();
}

TEST(GedPostconditionTest, WrongMappingSizeRejected) {
  GedFixture fx;
  fx.result.mapping.push_back(-1);
  Status status = ged::ValidateGedResult(fx.a, fx.b, fx.result, fx.dict);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("size disagrees"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------------
// Operand-printing checks (single evaluation + value capture)
// ---------------------------------------------------------------------------

TEST(CheckMacroTest, OperandsEvaluatedExactlyOnce) {
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  SIMJ_CHECK_EQ(next(), 1);
  EXPECT_EQ(calls, 1);
  SIMJ_CHECK_LT(next(), 99);
  EXPECT_EQ(calls, 2);
}

TEST(CheckMacroTest, DcheckLiveInThisTranslationUnit) {
  // tests/CMakeLists.txt compiles this TU with SIMJ_DEBUG_CHECKS=1; the
  // DCHECK family must evaluate (and pass) here.
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  SIMJ_DCHECK_EQ(next(), 1);
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// Death tests: SIMJ_DEBUG_CHECKS aborts on corrupted state, and failed
// checks print both operand values.
// ---------------------------------------------------------------------------

using ValidateDeathTest = ::testing::Test;

TEST(ValidateDeathTest, DebugChecksAbortOnCorruptedGedMapping) {
  GedFixture fx;
  fx.result.mapping[0] = fx.result.mapping[1];  // corrupt: not injective
  EXPECT_DEATH(
      SIMJ_DCHECK_OK(ged::ValidateGedResult(fx.a, fx.b, fx.result, fx.dict)),
      "SIMJ_CHECK failed");
}

TEST(ValidateDeathTest, CheckEqPrintsBothOperandValues) {
  int lhs = 3;
  int rhs = 4;
  EXPECT_DEATH(SIMJ_CHECK_EQ(lhs, rhs), "3 vs\\. 4");
}

TEST(ValidateDeathTest, DcheckMirrorsCheckOperandPrinting) {
  int lhs = 7;
  EXPECT_DEATH(SIMJ_DCHECK_GT(lhs, 9), "7 vs\\. 9");
}

TEST(ValidateDeathTest, ConstructorAbortsOnDanglingEndpoint) {
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 1);
  LabeledGraph g;
  g.AddVertex(labels[0]);
  EXPECT_DEATH(g.AddEdge(0, 9, labels[0]), "SIMJ_CHECK failed");
}

TEST(ValidateDeathTest, ConstructorAbortsOnExcessProbabilityMass) {
  LabelDictionary dict;
  std::vector<LabelId> labels = testing::TestLabels(dict, 2);
  UncertainGraph g;
  EXPECT_DEATH(g.AddVertex({LabelAlternative{labels[0], 0.8},
                            LabelAlternative{labels[1], 0.8}}),
               "SIMJ_CHECK failed");
}

TEST(ValidateDeathTest, ConstructorAbortsOnEmptyAlternativeSet) {
  UncertainGraph g;
  EXPECT_DEATH(g.AddVertex({}), "SIMJ_CHECK failed");
}

}  // namespace
}  // namespace simj
