// The parallel join must be a pure optimization: for a fixed seed and
// parameter set, every thread count (including the serial legacy path)
// must produce byte-identical results — same pairs in the same order, same
// probabilities and mappings, and identical merged prune/verify counters.

#include <vector>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/join.h"
#include "test_util.h"

namespace simj::core {
namespace {

void ExpectSamePairs(const JoinResult& got, const JoinResult& want) {
  ASSERT_EQ(got.pairs.size(), want.pairs.size());
  for (size_t i = 0; i < want.pairs.size(); ++i) {
    const MatchedPair& a = got.pairs[i];
    const MatchedPair& b = want.pairs[i];
    EXPECT_EQ(a.q_index, b.q_index) << "pair " << i;
    EXPECT_EQ(a.g_index, b.g_index) << "pair " << i;
    // Each pair is evaluated wholly inside one worker, so even the
    // floating-point results are bitwise identical across thread counts.
    EXPECT_EQ(a.similarity_probability, b.similarity_probability)
        << "pair " << i;
    EXPECT_EQ(a.mapping, b.mapping) << "pair " << i;
    EXPECT_EQ(a.best_world_ged, b.best_world_ged) << "pair " << i;
  }
}

void ExpectSameCounters(const JoinStats& got, const JoinStats& want) {
  EXPECT_EQ(got.total_pairs, want.total_pairs);
  EXPECT_EQ(got.pruned_structural, want.pruned_structural);
  EXPECT_EQ(got.pruned_probabilistic, want.pruned_probabilistic);
  EXPECT_EQ(got.candidates, want.candidates);
  EXPECT_EQ(got.results, want.results);
  EXPECT_EQ(got.verify.worlds_enumerated, want.verify.worlds_enumerated);
  EXPECT_EQ(got.verify.worlds_pruned_by_bound,
            want.verify.worlds_pruned_by_bound);
  EXPECT_EQ(got.verify.worlds_accepted_by_upper_bound,
            want.verify.worlds_accepted_by_upper_bound);
  EXPECT_EQ(got.verify.ged_calls, want.verify.ged_calls);
  EXPECT_EQ(got.verify.ged_aborted, want.verify.ged_aborted);
}

class JoinDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinDeterminismTest, ThreadCountNeverChangesTheResult) {
  workload::SyntheticDataset data = simj::testing::MakeTinySyntheticDataset(
      5000 + GetParam(), /*num_certain=*/12, /*num_uncertain=*/12);

  SimJParams params;
  params.tau = 1 + GetParam() % 2;
  params.alpha = 0.4;
  params.group_count = GetParam() % 2 == 0 ? 1 : 4;

  params.num_threads = 1;
  JoinResult serial = SimJoin(data.certain, data.uncertain, params, data.dict);
  JoinResult serial_indexed =
      IndexedSimJoin(data.certain, data.uncertain, params, data.dict);

  for (int threads : {2, 8}) {
    params.num_threads = threads;
    JoinResult parallel =
        SimJoin(data.certain, data.uncertain, params, data.dict);
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ExpectSamePairs(parallel, serial);
    ExpectSameCounters(parallel.stats, serial.stats);

    JoinResult parallel_indexed =
        IndexedSimJoin(data.certain, data.uncertain, params, data.dict);
    ExpectSamePairs(parallel_indexed, serial_indexed);
    ExpectSameCounters(parallel_indexed.stats, serial_indexed.stats);
  }

  // num_threads = 0 (hardware concurrency) goes through the parallel path
  // too, whatever the machine's core count.
  params.num_threads = 0;
  JoinResult hw = SimJoin(data.certain, data.uncertain, params, data.dict);
  ExpectSamePairs(hw, serial);
  ExpectSameCounters(hw.stats, serial.stats);
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinDeterminismTest, ::testing::Range(0, 6));

TEST(JoinDeterminismTest, FrozenDictionaryRejectsNewLabels) {
  graph::LabelDictionary dict;
  graph::LabelId known = dict.Intern("Known");
  dict.Freeze();
  EXPECT_TRUE(dict.frozen());
  // Looking up an existing label stays legal after the freeze...
  EXPECT_EQ(dict.Intern("Known"), known);
  EXPECT_EQ(dict.Find("Known"), known);
  // ...but interning a new one is a programmer error.
  EXPECT_DEATH(dict.Intern("Fresh"), "frozen");
}

TEST(JoinDeterminismTest, ParallelJoinFreezesTheDictionary) {
  workload::SyntheticDataset data =
      simj::testing::MakeTinySyntheticDataset(99, /*num_certain=*/3,
                                              /*num_uncertain=*/3);
  SimJParams params;
  params.num_threads = 2;
  // Only the freeze side effect matters here; the join output is discarded.
  JoinResult ignored = SimJoin(data.certain, data.uncertain, params, data.dict);
  (void)ignored;
  EXPECT_TRUE(data.dict.frozen());
}

}  // namespace
}  // namespace simj::core
