// Shared helpers for the test suite: small random graph generators with
// controllable label alphabets and seeded workload builders, used by the
// property-based and integration tests.

#ifndef SIMJ_TESTS_TEST_UTIL_H_
#define SIMJ_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"
#include "util/rng.h"
#include "workload/knowledge_base.h"
#include "workload/question_gen.h"
#include "workload/synthetic.h"

namespace simj::testing {

// Interns labels "L0".."L{n-1}" plus wildcards "?a".."?c".
inline std::vector<graph::LabelId> TestLabels(graph::LabelDictionary& dict,
                                              int n) {
  std::vector<graph::LabelId> labels;
  for (int i = 0; i < n; ++i) {
    // Built via += (not `"L" + std::to_string(i)`) to dodge the GCC 12
    // -Wrestrict false positive on char*-plus-rvalue-string (PR105651).
    std::string name = "L";
    name += std::to_string(i);
    labels.push_back(dict.Intern(name));
  }
  return labels;
}

// Random certain graph with `n` vertices and up to `m` edges (no self
// loops; parallel edges collapse by (src,dst,label) uniqueness not being
// enforced, which exercises the multigraph paths).
inline graph::LabeledGraph RandomCertainGraph(
    Rng& rng, const std::vector<graph::LabelId>& vertex_labels,
    const std::vector<graph::LabelId>& edge_labels, int n, int m) {
  graph::LabeledGraph g;
  for (int v = 0; v < n; ++v) {
    g.AddVertex(vertex_labels[rng.Uniform(0, vertex_labels.size() - 1)]);
  }
  if (n < 2) return g;
  for (int e = 0; e < m; ++e) {
    int src = static_cast<int>(rng.Uniform(0, n - 1));
    int dst = static_cast<int>(rng.Uniform(0, n - 1));
    if (src == dst) continue;
    g.AddEdge(src, dst, edge_labels[rng.Uniform(0, edge_labels.size() - 1)]);
  }
  return g;
}

// Random uncertain graph: each vertex gets 1..max_alts alternatives with a
// random probability simplex.
inline graph::UncertainGraph RandomUncertainGraph(
    Rng& rng, const std::vector<graph::LabelId>& vertex_labels,
    const std::vector<graph::LabelId>& edge_labels, int n, int m,
    int max_alts) {
  graph::UncertainGraph g;
  for (int v = 0; v < n; ++v) {
    int alts = static_cast<int>(rng.Uniform(1, max_alts));
    std::vector<double> probs = rng.RandomSimplex(alts, 1.0);
    std::vector<graph::LabelAlternative> alternatives;
    std::vector<bool> taken(vertex_labels.size(), false);
    for (int a = 0; a < alts; ++a) {
      int pick;
      do {
        pick = static_cast<int>(rng.Uniform(0, vertex_labels.size() - 1));
      } while (taken[pick]);
      taken[pick] = true;
      alternatives.push_back(
          graph::LabelAlternative{vertex_labels[pick], probs[a]});
    }
    g.AddVertex(std::move(alternatives));
  }
  if (n >= 2) {
    for (int e = 0; e < m; ++e) {
      int src = static_cast<int>(rng.Uniform(0, n - 1));
      int dst = static_cast<int>(rng.Uniform(0, n - 1));
      if (src == dst) continue;
      g.AddEdge(src, dst,
                edge_labels[rng.Uniform(0, edge_labels.size() - 1)]);
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// Seeded workload builders shared across join_test, pipeline_test and the
// property tests (one place to keep brute-force-tractable sizes).
// ---------------------------------------------------------------------------

// A complete random join instance: dictionary, certain side D, uncertain
// side U.
struct RandomJoinWorkload {
  graph::LabelDictionary dict;
  std::vector<graph::LabelId> vertex_labels;  // includes the wildcard, if any
  std::vector<graph::LabelId> edge_labels;
  std::vector<graph::LabeledGraph> d;
  std::vector<graph::UncertainGraph> u;
};

struct RandomJoinWorkloadOptions {
  int num_certain = 4;
  int num_uncertain = 4;
  int max_vertices = 4;    // per graph, drawn uniformly from [1, max]
  int max_edges = 5;       // edge draws per certain graph
  int max_uncertain_edges = 4;
  int max_alts = 3;        // candidate labels per uncertain vertex
  int vertex_label_pool = 5;
  int edge_label_pool = 2;
  bool add_wildcard = true;  // append "?x" to the vertex label pool
};

// Small random D/U sides sized so that a no-pruning ComputeSimP brute force
// over the whole cross product stays fast.
inline RandomJoinWorkload MakeRandomJoinWorkload(
    uint64_t seed, const RandomJoinWorkloadOptions& options = {}) {
  RandomJoinWorkload workload;
  Rng rng(seed);
  workload.vertex_labels = TestLabels(workload.dict, options.vertex_label_pool);
  if (options.add_wildcard) {
    workload.vertex_labels.push_back(workload.dict.Intern("?x"));
  }
  for (int i = 0; i < options.edge_label_pool; ++i) {
    std::string name = "r";
    name += std::to_string(i + 1);
    workload.edge_labels.push_back(workload.dict.Intern(name));
  }
  for (int i = 0; i < options.num_certain; ++i) {
    workload.d.push_back(RandomCertainGraph(
        rng, workload.vertex_labels, workload.edge_labels,
        static_cast<int>(rng.Uniform(1, options.max_vertices)),
        static_cast<int>(rng.Uniform(0, options.max_edges))));
  }
  for (int i = 0; i < options.num_uncertain; ++i) {
    workload.u.push_back(RandomUncertainGraph(
        rng, workload.vertex_labels, workload.edge_labels,
        static_cast<int>(rng.Uniform(1, options.max_vertices)),
        static_cast<int>(rng.Uniform(0, options.max_uncertain_edges)),
        options.max_alts));
  }
  return workload;
}

// A join workload with one HOT size-signature bucket and many cold ones:
// `hot_certain` certain graphs share the same (|V|, |E|) signature (so the
// shard planner cuts that bucket into many shards), while `cold_certain`
// graphs get unique, mostly-index-pruned signatures. Exercises the
// distributed join's work stealing: without stealing, the round-robin deal
// strands most of the hot bucket on a few workers.
inline RandomJoinWorkload MakeSkewedBucketWorkload(uint64_t seed,
                                                   int hot_certain = 24,
                                                   int cold_certain = 6,
                                                   int num_uncertain = 6) {
  RandomJoinWorkload workload;
  Rng rng(seed);
  workload.vertex_labels = TestLabels(workload.dict, 6);
  workload.vertex_labels.push_back(workload.dict.Intern("?x"));
  workload.edge_labels.push_back(workload.dict.Intern("r1"));
  workload.edge_labels.push_back(workload.dict.Intern("r2"));
  // Hot bucket: every graph is exactly (4 vertices, 3 edges).
  for (int i = 0; i < hot_certain; ++i) {
    graph::LabeledGraph g;
    for (int v = 0; v < 4; ++v) {
      g.AddVertex(workload.vertex_labels[rng.Uniform(
          0, static_cast<int64_t>(workload.vertex_labels.size()) - 1)]);
    }
    // A random spanning-ish triple of edges over distinct vertex pairs.
    g.AddEdge(0, 1 + static_cast<int>(rng.Uniform(0, 2)),
              workload.edge_labels[rng.Uniform(0, 1)]);
    g.AddEdge(1, 2 + static_cast<int>(rng.Uniform(0, 1)),
              workload.edge_labels[rng.Uniform(0, 1)]);
    g.AddEdge(2, 3, workload.edge_labels[rng.Uniform(0, 1)]);
    workload.d.push_back(std::move(g));
  }
  // Cold tail: one graph per distinct larger signature (8.. vertices), far
  // enough from the uncertain side that the index prunes most of them.
  for (int i = 0; i < cold_certain; ++i) {
    const int n = 8 + i;
    workload.d.push_back(RandomCertainGraph(rng, workload.vertex_labels,
                                            workload.edge_labels, n, n + 2));
  }
  // Uncertain side sized to match the hot bucket signature.
  for (int i = 0; i < num_uncertain; ++i) {
    workload.u.push_back(RandomUncertainGraph(
        rng, workload.vertex_labels, workload.edge_labels, 4, 3,
        /*max_alts=*/3));
  }
  return workload;
}

// Seeded question workload over an existing knowledge base (pipeline and
// template tests generate several of these per test).
inline workload::Workload MakeSeededWorkload(
    workload::KnowledgeBase& kb, uint64_t seed, int num_questions,
    int distractor_queries = 0) {
  workload::WorkloadConfig config;
  config.seed = seed;
  config.num_questions = num_questions;
  config.distractor_queries = distractor_queries;
  return workload::GenerateWorkload(kb, config);
}

// A scaled-down ER dataset from the synthetic generator: few enough
// possible worlds per uncertain graph (<= 2 alternatives on half the
// vertices) that exact SimP enumeration over every pair is cheap.
inline workload::SyntheticDataset MakeTinySyntheticDataset(
    uint64_t seed, int num_certain = 6, int num_uncertain = 6) {
  workload::SyntheticConfig config;
  config.seed = seed;
  config.num_certain = num_certain;
  config.num_uncertain = num_uncertain;
  config.num_vertices = 5;
  config.num_edges = 6;
  config.vertex_label_pool = 8;
  config.edge_label_pool = 3;
  config.labels_per_vertex = 2;
  config.uncertain_vertex_fraction = 0.5;
  config.perturbation_ops = 2;
  return workload::MakeErDataset(config);
}

}  // namespace simj::testing

#endif  // SIMJ_TESTS_TEST_UTIL_H_
