// Shared helpers for the test suite: small random graph generators with
// controllable label alphabets, used by the property-based tests.

#ifndef SIMJ_TESTS_TEST_UTIL_H_
#define SIMJ_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"
#include "util/rng.h"

namespace simj::testing {

// Interns labels "L0".."L{n-1}" plus wildcards "?a".."?c".
inline std::vector<graph::LabelId> TestLabels(graph::LabelDictionary& dict,
                                              int n) {
  std::vector<graph::LabelId> labels;
  for (int i = 0; i < n; ++i) {
    labels.push_back(dict.Intern("L" + std::to_string(i)));
  }
  return labels;
}

// Random certain graph with `n` vertices and up to `m` edges (no self
// loops; parallel edges collapse by (src,dst,label) uniqueness not being
// enforced, which exercises the multigraph paths).
inline graph::LabeledGraph RandomCertainGraph(
    Rng& rng, const std::vector<graph::LabelId>& vertex_labels,
    const std::vector<graph::LabelId>& edge_labels, int n, int m) {
  graph::LabeledGraph g;
  for (int v = 0; v < n; ++v) {
    g.AddVertex(vertex_labels[rng.Uniform(0, vertex_labels.size() - 1)]);
  }
  if (n < 2) return g;
  for (int e = 0; e < m; ++e) {
    int src = static_cast<int>(rng.Uniform(0, n - 1));
    int dst = static_cast<int>(rng.Uniform(0, n - 1));
    if (src == dst) continue;
    g.AddEdge(src, dst, edge_labels[rng.Uniform(0, edge_labels.size() - 1)]);
  }
  return g;
}

// Random uncertain graph: each vertex gets 1..max_alts alternatives with a
// random probability simplex.
inline graph::UncertainGraph RandomUncertainGraph(
    Rng& rng, const std::vector<graph::LabelId>& vertex_labels,
    const std::vector<graph::LabelId>& edge_labels, int n, int m,
    int max_alts) {
  graph::UncertainGraph g;
  for (int v = 0; v < n; ++v) {
    int alts = static_cast<int>(rng.Uniform(1, max_alts));
    std::vector<double> probs = rng.RandomSimplex(alts, 1.0);
    std::vector<graph::LabelAlternative> alternatives;
    std::vector<bool> taken(vertex_labels.size(), false);
    for (int a = 0; a < alts; ++a) {
      int pick;
      do {
        pick = static_cast<int>(rng.Uniform(0, vertex_labels.size() - 1));
      } while (taken[pick]);
      taken[pick] = true;
      alternatives.push_back(
          graph::LabelAlternative{vertex_labels[pick], probs[a]});
    }
    g.AddVertex(std::move(alternatives));
  }
  if (n >= 2) {
    for (int e = 0; e < m; ++e) {
      int src = static_cast<int>(rng.Uniform(0, n - 1));
      int dst = static_cast<int>(rng.Uniform(0, n - 1));
      if (src == dst) continue;
      g.AddEdge(src, dst,
                edge_labels[rng.Uniform(0, edge_labels.size() - 1)]);
    }
  }
  return g;
}

}  // namespace simj::testing

#endif  // SIMJ_TESTS_TEST_UTIL_H_
