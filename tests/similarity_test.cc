#include <gtest/gtest.h>

#include "core/groups.h"
#include "core/similarity.h"
#include "ged/edit_distance.h"
#include "graph/uncertain_graph.h"
#include "test_util.h"
#include "util/rng.h"

namespace simj::core {
namespace {

using graph::LabelDictionary;
using graph::LabeledGraph;
using graph::UncertainGraph;

// Paper Example 3 flavor: SimP adds up exactly the qualifying worlds.
TEST(SimilarityTest, HandComputedSimP) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId b = dict.Intern("B");
  graph::LabelId c = dict.Intern("C");
  graph::LabelId r = dict.Intern("r");

  LabeledGraph q;
  q.AddVertex(a);
  q.AddVertex(b);
  q.AddEdge(0, 1, r);

  // Worlds: (A,B) p=0.42 ged 0; (C,B) p=0.18 ged 1; (A,C) p=0.28 ged 1;
  //         (C,C) p=0.12 ged 2.
  UncertainGraph g;
  g.AddVertex({{a, 0.7}, {c, 0.3}});
  g.AddVertex({{b, 0.6}, {c, 0.4}});
  g.AddEdge(0, 1, r);

  EXPECT_NEAR(ComputeSimP(q, g, /*tau=*/0, dict).probability, 0.42, 1e-9);
  EXPECT_NEAR(ComputeSimP(q, g, /*tau=*/1, dict).probability, 0.88, 1e-9);
  EXPECT_NEAR(ComputeSimP(q, g, /*tau=*/2, dict).probability, 1.0, 1e-9);
}

TEST(SimilarityTest, BestMappingComesFromMostProbableQualifyingWorld) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId b = dict.Intern("B");
  LabeledGraph q;
  q.AddVertex(a);

  UncertainGraph g;
  g.AddVertex({{a, 0.3}, {b, 0.7}});

  SimPResult result = ComputeSimP(q, g, /*tau=*/0, dict);
  EXPECT_NEAR(result.probability, 0.3, 1e-12);
  EXPECT_EQ(result.best_world_ged, 0);
  EXPECT_NEAR(result.best_world_prob, 0.3, 1e-12);
  ASSERT_EQ(result.best_mapping.size(), 1u);
  EXPECT_EQ(result.best_mapping[0], 0);
}

class SimPPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimPPropertyTest, UpperBoundDominatesExactSimP) {
  LabelDictionary dict;
  auto vlabels = simj::testing::TestLabels(dict, 5);
  std::vector<graph::LabelId> elabels = {dict.Intern("r1"),
                                         dict.Intern("r2")};
  Rng rng(600 + GetParam());
  LabeledGraph q = simj::testing::RandomCertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
      static_cast<int>(rng.Uniform(0, 6)));
  UncertainGraph g = simj::testing::RandomUncertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 4)),
      static_cast<int>(rng.Uniform(0, 5)), /*max_alts=*/3);
  int tau = static_cast<int>(rng.Uniform(0, 4));

  double exact = ComputeSimP(q, g, tau, dict).probability;
  double upper = UpperBoundSimP(q, g, tau, dict);
  EXPECT_GE(upper + 1e-9, exact);
  EXPECT_GE(exact, 0.0);
  EXPECT_LE(exact, g.TotalMass() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimPPropertyTest, ::testing::Range(0, 60));

class TotalProbabilityBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(TotalProbabilityBoundTest, ConditionedBoundIsValid) {
  LabelDictionary dict;
  auto vlabels = simj::testing::TestLabels(dict, 5);
  std::vector<graph::LabelId> elabels = {dict.Intern("r1")};
  Rng rng(650 + GetParam());
  LabeledGraph q = simj::testing::RandomCertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
      static_cast<int>(rng.Uniform(0, 6)));
  UncertainGraph g = simj::testing::RandomUncertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 4)),
      static_cast<int>(rng.Uniform(0, 5)), /*max_alts=*/4);
  int tau = static_cast<int>(rng.Uniform(0, 3));

  double exact = ComputeSimP(q, g, tau, dict).probability;
  for (int depth : {0, 1, 2, 3}) {
    double bound = UpperBoundSimPTotalProbability(q, g, tau, dict, depth);
    EXPECT_GE(bound + 1e-9, exact) << "depth=" << depth;
  }
  // Depth 0 degenerates to the plain Markov bound.
  EXPECT_NEAR(UpperBoundSimPTotalProbability(q, g, tau, dict, 0),
              std::min(UpperBoundSimP(q, g, tau, dict),
                       UpperBoundSimPTotalProbability(q, g, tau, dict, 0)),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TotalProbabilityBoundTest,
                         ::testing::Range(0, 40));

TEST(VerifyStatsTest, UpperBoundShortcutCountsWorlds) {
  // A pair where many worlds qualify: the greedy bound should accept some
  // of them without exact searches.
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId b = dict.Intern("B");
  graph::LabelId c = dict.Intern("C");
  graph::LabelId r = dict.Intern("r");
  LabeledGraph q;
  q.AddVertex(a);
  q.AddVertex(a);
  q.AddEdge(0, 1, r);
  UncertainGraph g;
  g.AddVertex({{a, 0.5}, {b, 0.3}, {c, 0.2}});
  g.AddVertex({{a, 0.5}, {b, 0.3}, {c, 0.2}});
  g.AddEdge(0, 1, r);

  VerifyStats stats;
  SimPResult result = ComputeSimP(q, g, /*tau=*/2, dict, ged::GedOptions(),
                                  &stats);
  EXPECT_NEAR(result.probability, 1.0, 1e-9);  // every world within 2 edits
  EXPECT_GT(stats.worlds_accepted_by_upper_bound, 0);
  EXPECT_EQ(stats.worlds_enumerated, 9);
}

class GroupingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupingPropertyTest, GroupsPartitionSimPAndBoundsStayValid) {
  LabelDictionary dict;
  auto vlabels = simj::testing::TestLabels(dict, 5);
  std::vector<graph::LabelId> elabels = {dict.Intern("r1")};
  Rng rng(700 + GetParam());
  LabeledGraph q = simj::testing::RandomCertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 5)),
      static_cast<int>(rng.Uniform(0, 5)));
  UncertainGraph g = simj::testing::RandomUncertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(2, 4)),
      static_cast<int>(rng.Uniform(0, 4)), /*max_alts=*/3);
  int tau = static_cast<int>(rng.Uniform(0, 3));

  double exact = ComputeSimP(q, g, tau, dict).probability;

  for (int group_count : {1, 2, 4, 8}) {
    GroupingOptions options;
    options.group_count = group_count;
    GroupingResult grouping = PartitionPossibleWorlds(q, g, tau, dict, options);

    // The summed group upper bound must dominate the exact SimP.
    EXPECT_GE(grouping.simp_upper_bound + 1e-9, exact)
        << "group_count=" << group_count;

    // Exact SimP restricted to live groups must equal the full SimP:
    // discarded groups contain no qualifying world.
    double across_groups = 0.0;
    for (const ScoredGroup& group : grouping.live_groups) {
      across_groups += ComputeSimP(q, group.graph, tau, dict).probability;
    }
    EXPECT_NEAR(across_groups, exact, 1e-9) << "group_count=" << group_count;

    // Masses of live groups never exceed the total.
    EXPECT_LE(grouping.live_mass, g.TotalMass() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupingPropertyTest, ::testing::Range(0, 40));

TEST(GroupingTest, SplitsRespectGroupCountAndMass) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId b = dict.Intern("B");
  graph::LabelId c = dict.Intern("C");
  graph::LabelId r = dict.Intern("r");
  LabeledGraph q;
  q.AddVertex(a);
  q.AddVertex(a);
  q.AddEdge(0, 1, r);
  UncertainGraph g;
  g.AddVertex({{a, 0.5}, {b, 0.3}, {c, 0.2}});
  g.AddVertex({{a, 0.6}, {b, 0.4}});
  g.AddEdge(0, 1, r);

  for (int gn : {1, 2, 3, 5, 100}) {
    GroupingOptions options;
    options.group_count = gn;
    GroupingResult grouping =
        PartitionPossibleWorlds(q, g, /*tau=*/1, dict, options);
    // Never more groups than requested; mass never exceeds the total;
    // bounds stay within their ranges.
    EXPECT_LE(static_cast<int>(grouping.live_groups.size()), std::max(1, gn));
    EXPECT_LE(grouping.live_mass, g.TotalMass() + 1e-9);
    double mass_sum = 0.0;
    for (const ScoredGroup& group : grouping.live_groups) {
      EXPECT_GE(group.lower_bound, 0);
      EXPECT_LE(group.lower_bound, 1);  // live groups only
      EXPECT_GE(group.upper_bound, 0.0);
      EXPECT_LE(group.upper_bound, group.mass + 1e-9);
      mass_sum += group.mass;
    }
    EXPECT_NEAR(mass_sum, grouping.live_mass, 1e-9);
  }
  // With unlimited splitting the graph decomposes into fully certain
  // groups: 3 * 2 = 6 possible worlds.
  GroupingOptions unlimited;
  unlimited.group_count = 100;
  GroupingResult grouping =
      PartitionPossibleWorlds(q, g, /*tau=*/5, dict, unlimited);
  int64_t worlds = 0;
  for (const ScoredGroup& group : grouping.live_groups) {
    worlds += group.graph.NumPossibleWorlds();
  }
  EXPECT_EQ(worlds, 6);
}

TEST(GroupingTest, AllHeuristicsProduceValidBounds) {
  LabelDictionary dict;
  auto vlabels = simj::testing::TestLabels(dict, 5);
  std::vector<graph::LabelId> elabels = {dict.Intern("r1")};
  Rng rng(760);
  LabeledGraph q = simj::testing::RandomCertainGraph(rng, vlabels, elabels,
                                                     3, 3);
  UncertainGraph g = simj::testing::RandomUncertainGraph(
      rng, vlabels, elabels, 3, 3, /*max_alts=*/4);
  double exact = ComputeSimP(q, g, /*tau=*/1, dict).probability;
  for (SplitHeuristic heuristic :
       {SplitHeuristic::kCostModel, SplitHeuristic::kMassOnly,
        SplitHeuristic::kCountOnly}) {
    GroupingOptions options;
    options.group_count = 6;
    options.heuristic = heuristic;
    GroupingResult grouping =
        PartitionPossibleWorlds(q, g, /*tau=*/1, dict, options);
    EXPECT_GE(grouping.simp_upper_bound + 1e-9, exact);
  }
}

TEST(VerifySimPTest, EarlyAcceptStopsAtAlpha) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId b = dict.Intern("B");
  LabeledGraph q;
  q.AddVertex(a);

  UncertainGraph g;
  g.AddVertex({{a, 0.6}, {b, 0.4}});

  VerifyStats stats;
  SimPResult result = VerifySimP(q, {g}, g.TotalMass(), /*tau=*/0,
                                 /*alpha=*/0.5, dict, ged::GedOptions(),
                                 &stats);
  EXPECT_TRUE(result.early_accept);
  EXPECT_GE(result.probability, 0.5);
}

TEST(VerifySimPTest, EarlyRejectWhenAlphaUnreachable) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId b = dict.Intern("B");
  graph::LabelId c = dict.Intern("C");
  LabeledGraph q;
  q.AddVertex(a);

  UncertainGraph g;
  g.AddVertex({{b, 0.5}, {c, 0.5}});  // no world within tau=0

  SimPResult result =
      VerifySimP(q, {g}, g.TotalMass(), /*tau=*/0, /*alpha=*/0.9, dict);
  EXPECT_TRUE(result.early_reject);
  EXPECT_LT(result.probability, 0.9);
}

class VerifyConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(VerifyConsistencyTest, DecisionMatchesExactComputation) {
  LabelDictionary dict;
  auto vlabels = simj::testing::TestLabels(dict, 4);
  std::vector<graph::LabelId> elabels = {dict.Intern("r1")};
  Rng rng(800 + GetParam());
  LabeledGraph q = simj::testing::RandomCertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 4)),
      static_cast<int>(rng.Uniform(0, 5)));
  UncertainGraph g = simj::testing::RandomUncertainGraph(
      rng, vlabels, elabels, static_cast<int>(rng.Uniform(1, 4)),
      static_cast<int>(rng.Uniform(0, 4)), /*max_alts=*/3);
  int tau = static_cast<int>(rng.Uniform(0, 3));
  double alpha = 0.1 + 0.8 * rng.UniformDouble();

  double exact = ComputeSimP(q, g, tau, dict).probability;
  SimPResult verified = VerifySimP(q, {g}, g.TotalMass(), tau, alpha, dict);
  bool exact_decision = exact >= alpha - 1e-9;
  bool verify_decision = verified.probability >= alpha - 1e-9;
  EXPECT_EQ(exact_decision, verify_decision)
      << "exact=" << exact << " alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Sweep, VerifyConsistencyTest,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace simj::core
