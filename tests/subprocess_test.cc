// Tests for util/subprocess: the length-prefixed frame protocol and the
// fork-based ChildProcess runner — roundtrips, clean-EOF vs truncation
// classification, exit/signal propagation, and kill-mid-conversation.

#include "util/subprocess.h"

#include <csignal>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "util/status.h"

namespace simj::subprocess {
namespace {

// Child that echoes every request frame back verbatim until EOF.
int EchoChild(int request_fd, int response_fd) {
  for (;;) {
    StatusOr<std::string> frame = ReadFrame(request_fd);
    if (!frame.ok()) {
      return frame.status().code() == StatusCode::kNotFound ? 0 : 2;
    }
    if (!WriteFrame(response_fd, frame.value()).ok()) return 2;
  }
}

TEST(SubprocessTest, EchoRoundtripsFramesIncludingEmpty) {
  StatusOr<ChildProcess> child = ChildProcess::Spawn(EchoChild);
  ASSERT_TRUE(child.ok()) << child.status().ToString();
  for (const std::string& payload :
       {std::string("hello"), std::string(), std::string(1000, '\x7f'),
        std::string("\0binary\0", 8)}) {
    ASSERT_TRUE(WriteFrame(child->request_fd(), payload).ok());
    StatusOr<std::string> echoed = ReadFrame(child->response_fd());
    ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
    EXPECT_EQ(echoed.value(), payload);
  }
  // Destructor kills and reaps; no hang.
}

TEST(SubprocessTest, ChildExitStatusPropagatesThroughWait) {
  StatusOr<ChildProcess> child =
      ChildProcess::Spawn([](int, int) { return 42; });
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(child->Wait(), 42);
  EXPECT_FALSE(child->running());
}

TEST(SubprocessTest, CleanChildExitReadsAsNotFound) {
  StatusOr<ChildProcess> child =
      ChildProcess::Spawn([](int, int) { return 0; });
  ASSERT_TRUE(child.ok());
  StatusOr<std::string> frame = ReadFrame(child->response_fd());
  ASSERT_FALSE(frame.ok());
  // EOF at a frame boundary — "worker gone", not corruption.
  EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
}

TEST(SubprocessTest, ChildDyingMidFrameReadsAsInternal) {
  // The child writes a 100-byte length prefix but only 3 payload bytes.
  StatusOr<ChildProcess> child = ChildProcess::Spawn([](int, int response_fd) {
    const char prefix[4] = {100, 0, 0, 0};
    (void)!::write(response_fd, prefix, 4);
    (void)!::write(response_fd, "abc", 3);
    return 0;
  });
  ASSERT_TRUE(child.ok());
  StatusOr<std::string> frame = ReadFrame(child->response_fd());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInternal);
}

TEST(SubprocessTest, KilledChildReportsSignalAndEofsTheParent) {
  // Child blocks forever waiting for a request that never comes.
  StatusOr<ChildProcess> child = ChildProcess::Spawn(EchoChild);
  ASSERT_TRUE(child.ok());
  child->Kill();
  // SIGKILL closes the child's pipe ends: the parent sees clean EOF.
  StatusOr<std::string> frame = ReadFrame(child->response_fd());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(child->Wait(), -SIGKILL);
}

TEST(SubprocessTest, OversizedFrameIsRejectedBeforeWriting) {
  StatusOr<ChildProcess> child = ChildProcess::Spawn(EchoChild);
  ASSERT_TRUE(child.ok());
  std::string huge(static_cast<size_t>(kMaxFrameBytes) + 1, 'x');
  Status status = WriteFrame(child->request_fd(), huge);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SubprocessTest, WriteToDeadChildSurfacesAsStatusNotSigpipe) {
  StatusOr<ChildProcess> child =
      ChildProcess::Spawn([](int, int) { return 0; });
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(child->Wait(), 0);
  // The child is gone and its read end is closed: the kernel would raise
  // SIGPIPE, which Spawn() has ignored process-wide — so this must come
  // back as a Status (possibly after filling the pipe buffer, hence a
  // small payload and a bounded number of attempts).
  Status last = Status::Ok();
  for (int i = 0; i < 4096 && last.ok(); ++i) {
    last = WriteFrame(child->request_fd(), "ping");
  }
  EXPECT_FALSE(last.ok());
  EXPECT_EQ(last.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace simj::subprocess
