#include <gtest/gtest.h>

#include "core/join.h"
#include "nlp/semantic_graph.h"
#include "nlp/uncertain_builder.h"
#include "sparql/parser.h"
#include "templates/baselines.h"
#include "templates/qa.h"
#include "templates/template.h"

namespace simj::tmpl {
namespace {

// A miniature world shared by the tests: the paper's running example
// (politicians, artists, universities) with one ambiguous entity phrase.
class TemplateFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    politician = dict.Intern("Politician");
    artist = dict.Intern("Artist");
    university = dict.Intern("University");
    company = dict.Intern("Company");
    type = dict.Intern("type");
    grad = dict.Intern("graduatedFrom");

    cit_u = dict.Intern("CIT_University");
    cit_c = dict.Intern("CIT_Group");
    harvard = dict.Intern("Harvard_University");
    obama = dict.Intern("Obama");
    warhol = dict.Intern("Warhol");

    lexicon.AddClassPhrase("politician",
                           nlp::ClassLink{politician, politician});
    lexicon.AddClassPhrase("artist", nlp::ClassLink{artist, artist});
    lexicon.AddRelationPhrase("graduated from",
                              nlp::PredicateLink{grad, 0.9});
    lexicon.AddEntityPhrase("cit", nlp::EntityLink{cit_u, university, 0.8});
    lexicon.AddEntityPhrase("cit", nlp::EntityLink{cit_c, company, 0.2});
    lexicon.AddEntityPhrase("harvard",
                            nlp::EntityLink{harvard, university, 1.0});

    store.Add(obama, type, politician);
    store.Add(warhol, type, artist);
    store.Add(obama, grad, cit_u);
    store.Add(warhol, grad, harvard);

    // Make the SPARQL side: "SELECT ?x WHERE { ?x type Artist . ?x
    // graduatedFrom Harvard_University }".
    auto parsed = sparql::ParseSparql(
        "SELECT ?x WHERE { ?x type Artist . ?x graduatedFrom "
        "Harvard_University . }",
        dict);
    ASSERT_TRUE(parsed.ok());
    query = *std::move(parsed);
    resolver = [this](rdf::TermId term) {
      return term == harvard ? university
                             : (term == cit_u ? university
                                              : graph::kInvalidLabel);
    };
    query_graph = sparql::BuildQueryGraph(query, dict, &resolver);

    // The NLQ side: "Which politician graduated from CIT?".
    auto parsed_question =
        nlp::ParseQuestion("Which politician graduated from CIT?", lexicon);
    ASSERT_TRUE(parsed_question.ok());
    question = *std::move(parsed_question);
    auto built = nlp::BuildUncertainGraph(question, lexicon, dict);
    ASSERT_TRUE(built.ok());
    question_graph = *std::move(built);
  }

  // Runs the join on the single pair and returns the mapping.
  std::vector<int> JoinMapping() {
    core::SimJParams params;
    params.tau = 1;
    params.alpha = 0.7;
    core::JoinResult joined = core::SimJoin({query_graph.graph},
                                            {question_graph.graph}, params,
                                            dict);
    EXPECT_EQ(joined.pairs.size(), 1u);
    return joined.pairs.empty() ? std::vector<int>{} : joined.pairs[0].mapping;
  }

  graph::LabelDictionary dict;
  nlp::Lexicon lexicon;
  rdf::TripleStore store;
  graph::LabelId politician, artist, university, company, type, grad;
  rdf::TermId cit_u, cit_c, harvard, obama, warhol;
  sparql::ParsedQuery query;
  std::function<graph::LabelId(rdf::TermId)> resolver;
  sparql::QueryGraph query_graph;
  nlp::ParsedQuestion question;
  nlp::UncertainQuestionGraph question_graph;
};

TEST_F(TemplateFixture, GeneratesPaperStyleTemplate) {
  std::vector<int> mapping = JoinMapping();
  ASSERT_FALSE(mapping.empty());
  StatusOr<Template> t = GenerateTemplate(query, query_graph, question,
                                          question_graph, mapping, dict);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_slots(), 2);
  // "which <_> graduated from <_>" (Fig. 4d).
  EXPECT_EQ(t->NlPattern(), "which <slot0> graduated from <slot1>");
  std::string pattern_text = sparql::ToSparqlText(t->pattern, dict);
  EXPECT_NE(pattern_text.find("type __slot0"), std::string::npos);
  EXPECT_NE(pattern_text.find("graduatedFrom __slot1"), std::string::npos);
  // Slot kinds: class slot for the wh-class, entity slot for CIT.
  EXPECT_EQ(t->slots[0].kind, SlotKind::kClass);
  EXPECT_EQ(t->slots[1].kind, SlotKind::kEntity);
  EXPECT_EQ(t->slots[1].expected_type, university);
}

TEST_F(TemplateFixture, StoreDeduplicates) {
  std::vector<int> mapping = JoinMapping();
  StatusOr<Template> t1 = GenerateTemplate(query, query_graph, question,
                                           question_graph, mapping, dict);
  StatusOr<Template> t2 = GenerateTemplate(query, query_graph, question,
                                           question_graph, mapping, dict);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  TemplateStore template_store;
  EXPECT_TRUE(template_store.Add(*std::move(t1), dict));
  EXPECT_FALSE(template_store.Add(*std::move(t2), dict));
  EXPECT_EQ(template_store.size(), 1);
}

TEST_F(TemplateFixture, TemplateQaAnswersFreshQuestion) {
  std::vector<int> mapping = JoinMapping();
  StatusOr<Template> t = GenerateTemplate(query, query_graph, question,
                                          question_graph, mapping, dict);
  ASSERT_TRUE(t.ok());
  TemplateStore template_store;
  template_store.Add(*std::move(t), dict);

  TemplateQa qa(&template_store, &lexicon, &store, &dict);
  // Fresh question, different class and entity than the template's source.
  StatusOr<QaAnswer> answer = qa.Answer("Which artist graduated from Harvard?");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->rows.size(), 1u);
  EXPECT_EQ(answer->rows[0][0], warhol);
  EXPECT_EQ(answer->template_index, 0);
  EXPECT_DOUBLE_EQ(answer->matching_proportion, 1.0);
}

TEST_F(TemplateFixture, ExpectedTypeDisambiguatesEntitySlot) {
  // "CIT" top-links to the university; the template's expected type keeps
  // it there even though the raw top-1 would be right anyway — so flip the
  // lexicon to make top-1 the company and check the template still picks
  // the university.
  nlp::Lexicon flipped;
  flipped.AddClassPhrase("politician", nlp::ClassLink{politician, politician});
  flipped.AddClassPhrase("artist", nlp::ClassLink{artist, artist});
  flipped.AddRelationPhrase("graduated from", nlp::PredicateLink{grad, 0.9});
  flipped.AddEntityPhrase("cit", nlp::EntityLink{cit_c, company, 0.7});
  flipped.AddEntityPhrase("cit", nlp::EntityLink{cit_u, university, 0.3});

  std::vector<int> mapping = JoinMapping();
  StatusOr<Template> t = GenerateTemplate(query, query_graph, question,
                                          question_graph, mapping, dict);
  ASSERT_TRUE(t.ok());
  TemplateStore template_store;
  template_store.Add(*std::move(t), dict);

  TemplateQa qa(&template_store, &flipped, &store, &dict);
  StatusOr<QaAnswer> answer = qa.Answer("Which politician graduated from CIT?");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->rows.size(), 1u);
  EXPECT_EQ(answer->rows[0][0], obama);
}

TEST_F(TemplateFixture, NoTemplateMatchFails) {
  TemplateStore empty_store;
  TemplateQa qa(&empty_store, &lexicon, &store, &dict);
  EXPECT_FALSE(qa.Answer("Which politician graduated from CIT?").ok());
}

TEST_F(TemplateFixture, PhiThresholdRejectsPartialMatches) {
  std::vector<int> mapping = JoinMapping();
  StatusOr<Template> t = GenerateTemplate(query, query_graph, question,
                                          question_graph, mapping, dict);
  ASSERT_TRUE(t.ok());
  TemplateStore template_store;
  template_store.Add(*std::move(t), dict);
  TemplateQa qa(&template_store, &lexicon, &store, &dict);

  std::string long_question =
      "Which politician graduated from CIT and was elected somewhere in a "
      "landslide twice?";
  QaOptions strict;
  strict.min_matching_proportion = 0.95;
  EXPECT_FALSE(qa.Answer(long_question, strict).ok());
  QaOptions lenient;
  lenient.min_matching_proportion = 0.3;
  StatusOr<QaAnswer> answer = qa.Answer(long_question, lenient);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_LT(answer->matching_proportion, 0.95);
}

TEST_F(TemplateFixture, DirectBaselineAnswers) {
  StatusOr<QaAnswer> answer = DirectGraphQa(
      "Which politician graduated from CIT?", lexicon, store, dict);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->rows.size(), 1u);
  EXPECT_EQ(answer->rows[0][0], obama);
}

TEST_F(TemplateFixture, GreedyBaselineLacksTypeConstraint) {
  StatusOr<QaAnswer> direct = DirectGraphQa(
      "Which artist graduated from Harvard?", lexicon, store, dict);
  StatusOr<QaAnswer> greedy = JointGreedyQa(
      "Which artist graduated from Harvard?", lexicon, store, dict);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(greedy.ok());
  // Both find Warhol; the greedy query has no type pattern.
  EXPECT_EQ(direct->rows, greedy->rows);
  EXPECT_GT(direct->executed.patterns.size(),
            greedy->executed.patterns.size());
}

TEST_F(TemplateFixture, StoreCountsSupport) {
  std::vector<int> mapping = JoinMapping();
  StatusOr<Template> t1 = GenerateTemplate(query, query_graph, question,
                                           question_graph, mapping, dict);
  StatusOr<Template> t2 = GenerateTemplate(query, query_graph, question,
                                           question_graph, mapping, dict);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  TemplateStore template_store;
  template_store.Add(*std::move(t1), dict);
  template_store.Add(*std::move(t2), dict);
  ASSERT_EQ(template_store.size(), 1);
  EXPECT_EQ(template_store.templates()[0].support_count, 2);
}

TEST_F(TemplateFixture, SerializationRoundTripsAndStillAnswers) {
  std::vector<int> mapping = JoinMapping();
  StatusOr<Template> t = GenerateTemplate(query, query_graph, question,
                                          question_graph, mapping, dict);
  ASSERT_TRUE(t.ok());
  t->support_simp = 0.8;
  t->support_ged = 1;
  TemplateStore original;
  original.Add(*std::move(t), dict);

  std::string text = SerializeTemplates(original, dict);
  StatusOr<TemplateStore> reloaded = ParseTemplates(text, dict);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded->size(), 1);
  const Template& round = reloaded->templates()[0];
  EXPECT_EQ(round.NlPattern(), original.templates()[0].NlPattern());
  EXPECT_EQ(round.slots.size(), original.templates()[0].slots.size());
  EXPECT_EQ(round.slots[1].expected_type, university);
  EXPECT_EQ(round.tree.size(), original.templates()[0].tree.size());
  EXPECT_NEAR(round.support_simp, 0.8, 1e-9);

  // The reloaded store must answer questions identically.
  TemplateQa qa(&*reloaded, &lexicon, &store, &dict);
  StatusOr<QaAnswer> answer = qa.Answer("Which artist graduated from Harvard?");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->rows.size(), 1u);
  EXPECT_EQ(answer->rows[0][0], warhol);
}

TEST_F(TemplateFixture, TiesBreakTowardHigherSupport) {
  // Two templates that align equally well with the question; the one with
  // more workload support must win. Build them by hand: identical NL
  // patterns, different SPARQL (one uses a bogus predicate).
  std::vector<int> mapping = JoinMapping();
  StatusOr<Template> good = GenerateTemplate(query, query_graph, question,
                                             question_graph, mapping, dict);
  ASSERT_TRUE(good.ok());
  Template bogus = *good;
  bogus.pattern.patterns[1].predicate = dict.Intern("unrelatedPredicate");

  TemplateStore template_store;
  // The bogus template enters first (so index order would favor it) but
  // the good one gets re-added for extra support.
  template_store.Add(bogus, dict);
  template_store.Add(*good, dict);
  template_store.Add(*std::move(good), dict);
  ASSERT_EQ(template_store.size(), 2);
  ASSERT_GT(template_store.templates()[1].support_count,
            template_store.templates()[0].support_count);

  TemplateQa qa(&template_store, &lexicon, &store, &dict);
  StatusOr<QaAnswer> answer = qa.Answer("Which politician graduated from CIT?");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->template_index, 1);  // the supported template
  ASSERT_EQ(answer->rows.size(), 1u);
  EXPECT_EQ(answer->rows[0][0], obama);
}

TEST(TemplateParseTest, RejectsMalformedInput) {
  graph::LabelDictionary dict;
  EXPECT_FALSE(ParseTemplates("TEMPLATE\nNL which x\nEND\n", dict).ok());
  EXPECT_FALSE(ParseTemplates("END\n", dict).ok());
  EXPECT_FALSE(ParseTemplates("TEMPLATE\nGARBAGE\nEND\n", dict).ok());
  EXPECT_FALSE(ParseTemplates("TEMPLATE\nNL a\n", dict).ok());
  StatusOr<TemplateStore> empty = ParseTemplates("", dict);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0);
}

TEST(ScoreAnswerTest, Cases) {
  std::vector<std::vector<rdf::TermId>> gold = {{1}, {2}};
  PrfScore perfect = ScoreAnswer(gold, {{1}, {2}});
  EXPECT_DOUBLE_EQ(perfect.f1, 1.0);

  PrfScore half = ScoreAnswer(gold, {{1}, {3}});
  EXPECT_DOUBLE_EQ(half.precision, 0.5);
  EXPECT_DOUBLE_EQ(half.recall, 0.5);

  PrfScore nothing = ScoreAnswer(gold, {});
  EXPECT_DOUBLE_EQ(nothing.f1, 0.0);

  PrfScore both_empty = ScoreAnswer({}, {});
  EXPECT_DOUBLE_EQ(both_empty.f1, 1.0);

  PrfScore dup = ScoreAnswer(gold, {{1}, {1}, {2}});
  EXPECT_DOUBLE_EQ(dup.precision, 1.0);  // duplicates collapse
  EXPECT_DOUBLE_EQ(dup.recall, 1.0);
}

}  // namespace
}  // namespace simj::tmpl
