// Randomized differential tests for the similarity join: every pruning
// configuration, the size-indexed join, and the parallel path must return
// exactly the pair set of a no-pruning brute force built on ComputeSimP,
// with matching similarity probabilities. Pruning-heavy joins are where
// silent correctness bugs hide (a wrong filter only makes the join look
// faster), so the oracle uses none of the machinery under test: it
// enumerates possible worlds pair by pair.

#include <map>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/join.h"
#include "core/similarity.h"
#include "test_util.h"

namespace simj::core {
namespace {

using graph::LabelDictionary;
using graph::LabeledGraph;
using graph::UncertainGraph;

using PairKey = std::pair<int, int>;

// Oracle: exact SimP for every pair of the cross product, no pruning.
std::map<PairKey, double> BruteForceSimP(
    const std::vector<LabeledGraph>& d, const std::vector<UncertainGraph>& u,
    int tau, const LabelDictionary& dict) {
  std::map<PairKey, double> simp;
  for (int qi = 0; qi < static_cast<int>(d.size()); ++qi) {
    for (int gi = 0; gi < static_cast<int>(u.size()); ++gi) {
      simp[{qi, gi}] = ComputeSimP(d[qi], u[gi], tau, dict).probability;
    }
  }
  return simp;
}

std::set<PairKey> QualifyingPairs(const std::map<PairKey, double>& simp,
                                  double alpha) {
  std::set<PairKey> out;
  for (const auto& [key, probability] : simp) {
    if (probability >= alpha - kSimPEpsilon) out.insert(key);
  }
  return out;
}

std::set<PairKey> PairSet(const JoinResult& result) {
  std::set<PairKey> out;
  for (const MatchedPair& pair : result.pairs) {
    out.insert({pair.q_index, pair.g_index});
  }
  return out;
}

struct NamedConfig {
  const char* name;
  bool structural_pruning;
  bool probabilistic_pruning;
  int group_count;
};

// Every pruning configuration the paper evaluates, plus everything-off.
constexpr NamedConfig kConfigs[] = {
    {"no pruning", false, false, 1},
    {"CSS only", true, false, 1},
    {"SimJ", true, true, 1},
    {"SimJ+opt g=2", true, true, 2},
    {"SimJ+opt g=4", true, true, 4},
};

class JoinDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinDifferentialTest, AllPathsMatchBruteForceOracle) {
  const int seed = GetParam();
  workload::SyntheticDataset data =
      simj::testing::MakeTinySyntheticDataset(3000 + seed);
  const int tau = 1 + seed % 2;
  const double alpha = 0.25 + 0.15 * (seed % 4);

  std::map<PairKey, double> oracle_simp =
      BruteForceSimP(data.certain, data.uncertain, tau, data.dict);
  std::set<PairKey> oracle_pairs = QualifyingPairs(oracle_simp, alpha);

  for (const NamedConfig& config : kConfigs) {
    for (int threads : {1, 2, 8}) {
      SimJParams params;
      params.tau = tau;
      params.alpha = alpha;
      params.structural_pruning = config.structural_pruning;
      params.probabilistic_pruning = config.probabilistic_pruning;
      params.group_count = config.group_count;
      params.num_threads = threads;
      // Exact mode first: without the verification early exits every
      // reported probability must equal the oracle's, not just bound it.
      params.early_exit_verification = false;

      for (bool indexed : {false, true}) {
        SCOPED_TRACE(::testing::Message()
                     << config.name << " threads=" << threads
                     << " indexed=" << indexed << " tau=" << tau
                     << " alpha=" << alpha);
        JoinResult result =
            indexed ? IndexedSimJoin(data.certain, data.uncertain, params,
                                     data.dict)
                    : SimJoin(data.certain, data.uncertain, params, data.dict);
        EXPECT_EQ(PairSet(result), oracle_pairs);
        for (const MatchedPair& pair : result.pairs) {
          double exact = oracle_simp[{pair.q_index, pair.g_index}];
          EXPECT_NEAR(pair.similarity_probability, exact, kSimPEpsilon);
        }
        EXPECT_EQ(result.stats.results,
                  static_cast<int64_t>(result.pairs.size()));
      }

      // Default mode: with early exits the reported probability is allowed
      // to be a lower bound, but it must still reach alpha and never
      // overshoot the exact value.
      params.early_exit_verification = true;
      JoinResult result =
          SimJoin(data.certain, data.uncertain, params, data.dict);
      SCOPED_TRACE(::testing::Message() << config.name << " threads="
                                        << threads << " early-exit mode");
      EXPECT_EQ(PairSet(result), oracle_pairs);
      for (const MatchedPair& pair : result.pairs) {
        double exact = oracle_simp[{pair.q_index, pair.g_index}];
        EXPECT_GE(pair.similarity_probability, alpha - kSimPEpsilon);
        EXPECT_LE(pair.similarity_probability, exact + kSimPEpsilon);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SyntheticSweep, JoinDifferentialTest,
                         ::testing::Range(0, 8));

// The same oracle over the adversarial random-graph generator (wildcards,
// multigraph edges, degenerate one-vertex graphs).
class RandomGraphDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphDifferentialTest, AllConfigurationsMatchOracle) {
  const int seed = GetParam();
  simj::testing::RandomJoinWorkloadOptions options;
  options.num_certain = 5;
  options.num_uncertain = 5;
  simj::testing::RandomJoinWorkload workload =
      simj::testing::MakeRandomJoinWorkload(7100 + seed, options);
  const int tau = seed % 3;
  const double alpha = 0.2 + 0.1 * (seed % 7);

  std::map<PairKey, double> oracle_simp =
      BruteForceSimP(workload.d, workload.u, tau, workload.dict);
  std::set<PairKey> oracle_pairs = QualifyingPairs(oracle_simp, alpha);

  for (const NamedConfig& config : kConfigs) {
    for (int threads : {1, 4}) {
      SimJParams params;
      params.tau = tau;
      params.alpha = alpha;
      params.structural_pruning = config.structural_pruning;
      params.probabilistic_pruning = config.probabilistic_pruning;
      params.group_count = config.group_count;
      params.num_threads = threads;
      params.early_exit_verification = false;
      SCOPED_TRACE(::testing::Message() << config.name
                                        << " threads=" << threads);
      JoinResult plain = SimJoin(workload.d, workload.u, params, workload.dict);
      JoinResult indexed =
          IndexedSimJoin(workload.d, workload.u, params, workload.dict);
      EXPECT_EQ(PairSet(plain), oracle_pairs);
      EXPECT_EQ(PairSet(indexed), oracle_pairs);
      for (const JoinResult* result : {&plain, &indexed}) {
        for (const MatchedPair& pair : result->pairs) {
          double exact = oracle_simp[{pair.q_index, pair.g_index}];
          EXPECT_NEAR(pair.similarity_probability, exact, kSimPEpsilon);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, RandomGraphDifferentialTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace simj::core
