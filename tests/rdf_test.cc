#include <set>

#include <gtest/gtest.h>

#include "graph/label.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "util/rng.h"

namespace simj::rdf {
namespace {

class StoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    alice = dict.Intern("Alice");
    bob = dict.Intern("Bob");
    carol = dict.Intern("Carol");
    person = dict.Intern("Person");
    city = dict.Intern("City");
    paris = dict.Intern("Paris");
    type = dict.Intern("type");
    knows = dict.Intern("knows");
    born = dict.Intern("bornIn");

    store.Add(alice, type, person);
    store.Add(bob, type, person);
    store.Add(carol, type, person);
    store.Add(paris, type, city);
    store.Add(alice, knows, bob);
    store.Add(bob, knows, carol);
    store.Add(alice, born, paris);
    store.Add(bob, born, paris);
  }

  graph::LabelDictionary dict;
  TripleStore store;
  TermId alice, bob, carol, person, city, paris, type, knows, born;
};

TEST_F(StoreFixture, IndexesAreConsistent) {
  EXPECT_EQ(store.size(), 8);
  EXPECT_EQ(store.BySubject(alice).size(), 3u);
  EXPECT_EQ(store.ByPredicate(type).size(), 4u);
  EXPECT_EQ(store.ByObject(paris).size(), 2u);
  EXPECT_EQ(store.BySubjectPredicate(alice, knows).size(), 1u);
  EXPECT_EQ(store.ByPredicateObject(type, person).size(), 3u);
}

TEST_F(StoreFixture, Contains) {
  EXPECT_TRUE(store.Contains(alice, knows, bob));
  EXPECT_FALSE(store.Contains(bob, knows, alice));
  EXPECT_FALSE(store.Contains(alice, knows, carol));
}

TEST_F(StoreFixture, SingleTriplePatternWithVariable) {
  TermId var = dict.Intern("?x");
  BgpQuery query;
  query.select_vars = {var};
  query.patterns = {TriplePattern{var, type, person}};
  auto rows = store.Evaluate(query, dict);
  ASSERT_EQ(rows.size(), 3u);
}

TEST_F(StoreFixture, JoinAcrossPatterns) {
  // People who know someone born in Paris: Alice (knows Bob).
  TermId x = dict.Intern("?x");
  TermId y = dict.Intern("?y");
  BgpQuery query;
  query.select_vars = {x};
  query.patterns = {TriplePattern{x, knows, y},
                    TriplePattern{y, born, paris}};
  auto rows = store.Evaluate(query, dict);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], alice);
}

TEST_F(StoreFixture, SharedVariableMustUnify) {
  // ?x knows ?x never holds here.
  TermId x = dict.Intern("?x");
  BgpQuery query;
  query.select_vars = {x};
  query.patterns = {TriplePattern{x, knows, x}};
  EXPECT_TRUE(store.Evaluate(query, dict).empty());
}

TEST_F(StoreFixture, VariablePredicate) {
  TermId p = dict.Intern("?p");
  BgpQuery query;
  query.select_vars = {p};
  query.patterns = {TriplePattern{alice, p, bob}};
  auto rows = store.Evaluate(query, dict);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], knows);
}

TEST_F(StoreFixture, MultipleSelectVars) {
  TermId x = dict.Intern("?x");
  TermId y = dict.Intern("?y");
  BgpQuery query;
  query.select_vars = {x, y};
  query.patterns = {TriplePattern{x, born, y}};
  auto rows = store.Evaluate(query, dict);
  EXPECT_EQ(rows.size(), 2u);  // (alice, paris), (bob, paris)
}

TEST_F(StoreFixture, ResultsAreDeduplicated) {
  // ?x born ?anywhere, select only ?anywhere -> {paris} once.
  TermId x = dict.Intern("?x");
  TermId y = dict.Intern("?y");
  BgpQuery query;
  query.select_vars = {y};
  query.patterns = {TriplePattern{x, born, y}};
  EXPECT_EQ(store.Evaluate(query, dict).size(), 1u);
}

TEST_F(StoreFixture, MaxRowsCap) {
  TermId x = dict.Intern("?x");
  TermId y = dict.Intern("?y");
  TermId z = dict.Intern("?z");
  BgpQuery query;
  query.select_vars = {x, y, z};
  query.patterns = {TriplePattern{x, y, z}};
  EXPECT_EQ(store.Evaluate(query, dict, /*max_rows=*/3).size(), 3u);
}

TEST_F(StoreFixture, EmptyQueryYieldsNothing) {
  BgpQuery query;
  EXPECT_TRUE(store.Evaluate(query, dict).empty());
}

TEST_F(StoreFixture, UnsatisfiablePattern) {
  TermId x = dict.Intern("?x");
  BgpQuery query;
  query.select_vars = {x};
  query.patterns = {TriplePattern{x, knows, paris}};
  EXPECT_TRUE(store.Evaluate(query, dict).empty());
}

// Brute-force BGP reference: try every tuple of triples (one per pattern)
// and unify. Exponential but exact.
std::set<std::vector<TermId>> ReferenceEvaluate(
    const TripleStore& store, const BgpQuery& query,
    const graph::LabelDictionary& dict) {
  std::set<std::vector<TermId>> rows;
  size_t p = query.patterns.size();
  std::vector<int> pick(p, 0);
  int64_t total = 1;
  for (size_t i = 0; i < p; ++i) total *= store.size();
  for (int64_t code = 0; code < total; ++code) {
    int64_t rest = code;
    for (size_t i = 0; i < p; ++i) {
      pick[i] = static_cast<int>(rest % store.size());
      rest /= store.size();
    }
    std::unordered_map<TermId, TermId> binding;
    bool ok = true;
    for (size_t i = 0; i < p && ok; ++i) {
      const TriplePattern& pattern = query.patterns[i];
      const Triple& t = store.triples()[pick[i]];
      auto unify = [&](TermId term, TermId value) {
        if (!dict.IsWildcard(term)) return term == value;
        auto it = binding.find(term);
        if (it != binding.end()) return it->second == value;
        binding[term] = value;
        return true;
      };
      ok = unify(pattern.subject, t.subject) &&
           unify(pattern.predicate, t.predicate) &&
           unify(pattern.object, t.object);
    }
    if (!ok) continue;
    std::vector<TermId> row;
    for (TermId var : query.select_vars) {
      auto it = binding.find(var);
      row.push_back(it == binding.end() ? graph::kInvalidLabel : it->second);
    }
    rows.insert(std::move(row));
  }
  return rows;
}

class BgpReferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BgpReferenceTest, EvaluatorMatchesBruteForce) {
  Rng rng(3000 + GetParam());
  graph::LabelDictionary dict;
  std::vector<TermId> entities;
  for (int i = 0; i < 5; ++i) {
    std::string entity_name = "E";
    entity_name += std::to_string(i);
    entities.push_back(dict.Intern(entity_name));
  }
  std::vector<TermId> predicates;
  for (int i = 0; i < 3; ++i) {
    std::string predicate_name = "p";
    predicate_name += std::to_string(i);
    predicates.push_back(dict.Intern(predicate_name));
  }
  TripleStore store;
  int triples = static_cast<int>(rng.Uniform(3, 8));
  for (int i = 0; i < triples; ++i) {
    store.Add(entities[rng.Uniform(0, entities.size() - 1)],
              predicates[rng.Uniform(0, predicates.size() - 1)],
              entities[rng.Uniform(0, entities.size() - 1)]);
  }
  std::vector<TermId> vars = {dict.Intern("?a"), dict.Intern("?b"),
                              dict.Intern("?c")};
  auto random_term = [&]() -> TermId {
    double draw = rng.UniformDouble();
    if (draw < 0.45) return vars[rng.Uniform(0, vars.size() - 1)];
    if (draw < 0.75) return entities[rng.Uniform(0, entities.size() - 1)];
    return predicates[rng.Uniform(0, predicates.size() - 1)];
  };
  BgpQuery query;
  int num_patterns = static_cast<int>(rng.Uniform(1, 3));
  for (int i = 0; i < num_patterns; ++i) {
    query.patterns.push_back(
        TriplePattern{random_term(), random_term(), random_term()});
  }
  query.select_vars = {vars[0], vars[1]};

  auto got = store.Evaluate(query, dict);
  std::set<std::vector<TermId>> got_set(got.begin(), got.end());
  EXPECT_EQ(got_set, ReferenceEvaluate(store, query, dict));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BgpReferenceTest, ::testing::Range(0, 40));

TEST(NTriplesTest, ParsesBasicFile) {
  graph::LabelDictionary dict;
  TripleStore store;
  auto added = ParseNTriples(
      "# a comment\n"
      "<Alice> <knows> <Bob> .\n"
      "\n"
      "Bob type Person .\n"
      "<Alice> <says> \"hello world\" .\n",
      dict, &store);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(*added, 3);
  EXPECT_EQ(store.size(), 3);
  EXPECT_TRUE(store.Contains(dict.Find("Alice"), dict.Find("knows"),
                             dict.Find("Bob")));
  EXPECT_NE(dict.Find("hello world"), graph::kInvalidLabel);
}

TEST(NTriplesTest, RejectsMalformedLines) {
  graph::LabelDictionary dict;
  TripleStore store;
  EXPECT_FALSE(ParseNTriples("<a> <b> .\n", dict, &store).ok());
  EXPECT_FALSE(ParseNTriples("<a> <b> <c> <d> .\n", dict, &store).ok());
  EXPECT_FALSE(ParseNTriples("<a <b> <c> .\n", dict, &store).ok());
  EXPECT_FALSE(ParseNTriples("<a> \"unterminated <c> .\n", dict, &store).ok());
}

TEST(NTriplesTest, RoundTrips) {
  graph::LabelDictionary dict;
  TripleStore store;
  store.Add(dict.Intern("Alice"), dict.Intern("knows"), dict.Intern("Bob"));
  store.Add(dict.Intern("Alice"), dict.Intern("says"),
            dict.Intern("hello world"));
  std::string text = ToNTriples(store, dict);

  TripleStore reloaded;
  auto added = ParseNTriples(text, dict, &reloaded);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(*added, store.size());
  EXPECT_EQ(reloaded.triples(), store.triples());
}

}  // namespace
}  // namespace simj::rdf
