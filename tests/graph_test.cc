#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"
#include "test_util.h"
#include "util/rng.h"

namespace simj::graph {
namespace {

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary dict;
  LabelId a = dict.Intern("Actor");
  LabelId b = dict.Intern("Actor");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.Name(a), "Actor");
  EXPECT_EQ(dict.size(), 1);
}

TEST(LabelDictionaryTest, FindReturnsInvalidForUnknown) {
  LabelDictionary dict;
  dict.Intern("Actor");
  EXPECT_EQ(dict.Find("Professor"), kInvalidLabel);
  EXPECT_NE(dict.Find("Actor"), kInvalidLabel);
}

TEST(LabelDictionaryTest, WildcardDetection) {
  LabelDictionary dict;
  LabelId var = dict.Intern("?x");
  LabelId plain = dict.Intern("City");
  EXPECT_TRUE(dict.IsWildcard(var));
  EXPECT_FALSE(dict.IsWildcard(plain));
}

TEST(LabelDictionaryTest, MatchesIsWildcardAware) {
  LabelDictionary dict;
  LabelId var = dict.Intern("?x");
  LabelId city = dict.Intern("City");
  LabelId state = dict.Intern("State");
  EXPECT_TRUE(dict.Matches(city, city));
  EXPECT_FALSE(dict.Matches(city, state));
  EXPECT_TRUE(dict.Matches(var, city));
  EXPECT_TRUE(dict.Matches(state, var));
  EXPECT_TRUE(dict.Matches(var, var));
}

TEST(MatchableLabelCountTest, PlainMultisetIntersection) {
  LabelDictionary dict;
  LabelId a = dict.Intern("A");
  LabelId b = dict.Intern("B");
  LabelId c = dict.Intern("C");
  LabelCounts left{{a, 2}, {b, 1}};
  LabelCounts right{{a, 1}, {b, 3}, {c, 1}};
  EXPECT_EQ(MatchableLabelCount(left, right, dict), 2);  // one A, one B
}

TEST(MatchableLabelCountTest, WildcardsSoakUpLeftovers) {
  LabelDictionary dict;
  LabelId a = dict.Intern("A");
  LabelId b = dict.Intern("B");
  LabelId var = dict.Intern("?x");
  // left: {A, ?x, ?x}; right: {B, B, A}
  LabelCounts left{{a, 1}, {var, 2}};
  LabelCounts right{{b, 2}, {a, 1}};
  // A matches A; the two wildcards match the two Bs.
  EXPECT_EQ(MatchableLabelCount(left, right, dict), 3);
}

TEST(MatchableLabelCountTest, WildcardOnBothSides) {
  LabelDictionary dict;
  LabelId a = dict.Intern("A");
  LabelId var1 = dict.Intern("?x");
  LabelId var2 = dict.Intern("?y");
  LabelCounts left{{var1, 2}};
  LabelCounts right{{a, 1}, {var2, 2}};
  // Both wildcards on the left match; capped by left size.
  EXPECT_EQ(MatchableLabelCount(left, right, dict), 2);
}

TEST(MatchableLabelCountTest, EmptySides) {
  LabelDictionary dict;
  LabelId a = dict.Intern("A");
  LabelCounts left{{a, 1}};
  LabelCounts empty;
  EXPECT_EQ(MatchableLabelCount(left, empty, dict), 0);
  EXPECT_EQ(MatchableLabelCount(empty, left, dict), 0);
  EXPECT_EQ(MatchableLabelCount(empty, empty, dict), 0);
}

TEST(LabeledGraphTest, DegreesCountBothDirections) {
  LabelDictionary dict;
  LabelId l = dict.Intern("L");
  LabeledGraph g;
  int v0 = g.AddVertex(l);
  int v1 = g.AddVertex(l);
  int v2 = g.AddVertex(l);
  g.AddEdge(v0, v1, l);
  g.AddEdge(v2, v0, l);
  EXPECT_EQ(g.degree(v0), 2);
  EXPECT_EQ(g.degree(v1), 1);
  EXPECT_EQ(g.degree(v2), 1);
  EXPECT_EQ(g.SortedDegrees(), (std::vector<int>{2, 1, 1}));
}

TEST(LabeledGraphTest, ParallelEdgesAreKept) {
  LabelDictionary dict;
  LabelId l = dict.Intern("L");
  LabelId m = dict.Intern("M");
  LabeledGraph g;
  int v0 = g.AddVertex(l);
  int v1 = g.AddVertex(l);
  g.AddEdge(v0, v1, l);
  g.AddEdge(v0, v1, m);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.EdgeLabelsBetween(v0, v1).size(), 2u);
  EXPECT_TRUE(g.EdgeLabelsBetween(v1, v0).empty());
}

TEST(LabeledGraphTest, LabelCounts) {
  LabelDictionary dict;
  LabelId a = dict.Intern("A");
  LabelId b = dict.Intern("B");
  LabeledGraph g;
  g.AddVertex(a);
  g.AddVertex(a);
  g.AddVertex(b);
  g.AddEdge(0, 1, b);
  LabelCounts vcounts = g.VertexLabelCounts();
  EXPECT_EQ(vcounts[a], 2);
  EXPECT_EQ(vcounts[b], 1);
  LabelCounts ecounts = g.EdgeLabelCounts();
  EXPECT_EQ(ecounts[b], 1);
}

TEST(DegreeDistanceTest, HandExample) {
  // small degrees {3, 1}, big degrees {2, 2, 1}: (3-2) + 0 = 1.
  EXPECT_EQ(DegreeDistanceFromSorted({3, 1}, {2, 2, 1}), 1);
}

TEST(DegreeDistanceTest, ZeroWhenDominated) {
  EXPECT_EQ(DegreeDistanceFromSorted({1, 1}, {3, 2, 1}), 0);
}

TEST(UncertainGraphTest, WorldProbabilitiesSumToTotalMass) {
  LabelDictionary dict;
  auto labels = testing::TestLabels(dict, 6);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    UncertainGraph g = testing::RandomUncertainGraph(
        rng, labels, labels, /*n=*/4, /*m=*/5, /*max_alts=*/3);
    double sum = 0.0;
    int64_t worlds = 0;
    for (PossibleWorldIterator it(g); !it.Done(); it.Next()) {
      sum += it.probability();
      ++worlds;
    }
    EXPECT_EQ(worlds, g.NumPossibleWorlds());
    EXPECT_NEAR(sum, g.TotalMass(), 1e-9);
  }
}

TEST(UncertainGraphTest, MaterializePicksChosenLabels) {
  LabelDictionary dict;
  LabelId a = dict.Intern("A");
  LabelId b = dict.Intern("B");
  LabelId e = dict.Intern("rel");
  UncertainGraph g;
  g.AddVertex({{a, 0.6}, {b, 0.4}});
  g.AddCertainVertex(a);
  g.AddEdge(0, 1, e);
  LabeledGraph world = g.Materialize({1, 0});
  EXPECT_EQ(world.vertex_label(0), b);
  EXPECT_EQ(world.vertex_label(1), a);
  EXPECT_EQ(world.num_edges(), 1);
  EXPECT_NEAR(g.WorldProbability({1, 0}), 0.4, 1e-12);
}

TEST(UncertainGraphTest, CertaintyDetection) {
  LabelDictionary dict;
  LabelId a = dict.Intern("A");
  LabelId b = dict.Intern("B");
  UncertainGraph g;
  g.AddCertainVertex(a);
  g.AddVertex({{a, 0.5}, {b, 0.5}});
  EXPECT_TRUE(g.IsVertexCertain(0));
  EXPECT_FALSE(g.IsVertexCertain(1));
}

TEST(UncertainGraphTest, RestrictVertexMassesAddUp) {
  LabelDictionary dict;
  LabelId a = dict.Intern("A");
  LabelId b = dict.Intern("B");
  LabelId c = dict.Intern("C");
  UncertainGraph g;
  g.AddVertex({{a, 0.5}, {b, 0.3}, {c, 0.2}});
  g.AddCertainVertex(a);
  g.AddEdge(0, 1, a);
  UncertainGraph first = g.RestrictVertex(0, {0});
  UncertainGraph rest = g.RestrictVertex(0, {1, 2});
  EXPECT_NEAR(first.TotalMass() + rest.TotalMass(), g.TotalMass(), 1e-12);
  EXPECT_EQ(first.num_edges(), 1);
  EXPECT_EQ(rest.alternatives(0).size(), 2u);
}

TEST(UncertainGraphTest, FromCertainRoundTrips) {
  LabelDictionary dict;
  auto labels = testing::TestLabels(dict, 4);
  Rng rng(11);
  LabeledGraph g =
      testing::RandomCertainGraph(rng, labels, labels, /*n=*/5, /*m=*/6);
  UncertainGraph u = UncertainGraph::FromCertain(g);
  EXPECT_EQ(u.NumPossibleWorlds(), 1);
  LabeledGraph back = u.Materialize(std::vector<int>(5, 0));
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(back.vertex_label(v), g.vertex_label(v));
  }
  EXPECT_EQ(back.num_edges(), g.num_edges());
}

TEST(UncertainGraphTest, LiftUncertainEdgesAddsFictitiousVertices) {
  LabelDictionary dict;
  LabelId person = dict.Intern("Person");
  LabelId spouse = dict.Intern("spouse");
  LabelId knows = dict.Intern("knows");
  LabelId link = dict.Intern("__edge__");

  std::vector<std::vector<LabelAlternative>> vertices = {
      {{person, 1.0}}, {{person, 1.0}}};
  std::vector<UncertainEdge> uncertain_edges = {
      {0, 1, {{spouse, 0.7}, {knows, 0.3}}}};
  UncertainGraph lifted =
      LiftUncertainEdges(vertices, /*certain_edges=*/{}, uncertain_edges,
                         link);
  EXPECT_EQ(lifted.num_vertices(), 3);
  EXPECT_EQ(lifted.num_edges(), 2);
  EXPECT_EQ(lifted.alternatives(2).size(), 2u);
  EXPECT_EQ(lifted.NumPossibleWorlds(), 2);
}

}  // namespace
}  // namespace simj::graph
