// Tests for the structured logging layer: level parsing and filtering,
// lazy operand evaluation below the threshold, text/JSON entry formatting,
// the JSON-lines file sink, sink swapping/restoration, and a multi-thread
// hammer (run under TSan by ci.sh).

#include "util/log.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/strings.h"

namespace simj::log {
namespace {

// Installs a CaptureSink for the test's lifetime and restores the previous
// sink (and level threshold) on destruction, so tests never leak state.
class ScopedCapture {
 public:
  ScopedCapture() : saved_level_(MinLevel()) {
    auto sink = std::make_unique<CaptureSink>();
    capture_ = sink.get();
    previous_ = SetSink(std::move(sink));
  }
  ~ScopedCapture() {
    SetSink(std::move(previous_));
    SetMinLevel(saved_level_);
  }

  CaptureSink& capture() { return *capture_; }

 private:
  Level saved_level_;
  CaptureSink* capture_;
  std::unique_ptr<Sink> previous_;
};

TEST(LevelTest, NamesRoundTrip) {
  EXPECT_STREQ(LevelName(Level::kDebug), "DEBUG");
  EXPECT_STREQ(LevelName(Level::kInfo), "INFO");
  EXPECT_STREQ(LevelName(Level::kWarn), "WARN");
  EXPECT_STREQ(LevelName(Level::kError), "ERROR");

  Level level = Level::kInfo;
  EXPECT_TRUE(ParseLevel("debug", &level));
  EXPECT_EQ(level, Level::kDebug);
  EXPECT_TRUE(ParseLevel("INFO", &level));
  EXPECT_EQ(level, Level::kInfo);
  EXPECT_TRUE(ParseLevel("Warn", &level));
  EXPECT_EQ(level, Level::kWarn);
  EXPECT_TRUE(ParseLevel("warning", &level));
  EXPECT_EQ(level, Level::kWarn);
  EXPECT_TRUE(ParseLevel("error", &level));
  EXPECT_EQ(level, Level::kError);

  level = Level::kWarn;
  EXPECT_FALSE(ParseLevel("verbose", &level));
  EXPECT_EQ(level, Level::kWarn) << "failed parse must not modify *out";
}

TEST(LogTest, ThresholdFiltersLowerLevels) {
  ScopedCapture scoped;
  SetMinLevel(Level::kWarn);
  SIMJ_LOG(DEBUG) << "d";
  SIMJ_LOG(INFO) << "i";
  SIMJ_LOG(WARN) << "w";
  SIMJ_LOG(ERROR) << "e";
  std::vector<Entry> entries = scoped.capture().Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].level, Level::kWarn);
  EXPECT_EQ(entries[0].message, "w");
  EXPECT_EQ(entries[1].level, Level::kError);
  EXPECT_EQ(entries[1].message, "e");
}

TEST(LogTest, DisabledStatementNeverEvaluatesOperands) {
  ScopedCapture scoped;
  SetMinLevel(Level::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  SIMJ_LOG(INFO) << expensive();
  EXPECT_EQ(evaluations, 0);
  SIMJ_LOG(ERROR) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, EntryCarriesSourceLocationAndTime) {
  ScopedCapture scoped;
  SetMinLevel(Level::kInfo);
  SIMJ_LOG(INFO) << "located";
  std::vector<Entry> entries = scoped.capture().Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_NE(std::string(entries[0].file).find("log_test"),
            std::string::npos);
  EXPECT_GT(entries[0].line, 0);
  EXPECT_GT(entries[0].unix_seconds, 1e9) << "clock should be post-2001";
  EXPECT_GE(entries[0].thread_id, 0);
}

TEST(FormatTest, JsonShape) {
  Entry entry;
  entry.level = Level::kWarn;
  entry.file = "core/join.cc";
  entry.line = 412;
  entry.unix_seconds = 1722860000.125;
  entry.thread_id = 3;
  entry.message = "slow pair: 1834.2 ms";
  std::string json = FormatEntryJson(entry);
  EXPECT_NE(json.find("\"level\":\"WARN\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"file\":\"core/join.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":412"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"msg\":\"slow pair: 1834.2 ms\""),
            std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos) << "one line per entry";
}

TEST(FormatTest, JsonEscapesMessage) {
  Entry entry;
  entry.message = "quote \" backslash \\ newline \n tab \t";
  std::string json = FormatEntryJson(entry);
  EXPECT_NE(json.find("quote \\\" backslash \\\\ newline \\n tab \\t"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(FormatTest, TextShape) {
  Entry entry;
  entry.level = Level::kError;
  entry.file = "a.cc";
  entry.line = 7;
  entry.unix_seconds = 0.5;
  entry.thread_id = 1;
  entry.message = "boom";
  std::string text = FormatEntryText(entry);
  EXPECT_EQ(text.front(), 'E');
  EXPECT_NE(text.find("t1"), std::string::npos) << text;
  EXPECT_NE(text.find("a.cc:7] boom"), std::string::npos) << text;
}

TEST(JsonLinesSinkTest, WritesOneParsedLinePerEntry) {
  std::string path = ::testing::TempDir() + "/simj_log_test.jsonl";
  std::remove(path.c_str());
  {
    ScopedCapture restore_after;  // restores the default sink afterwards
    auto sink = std::make_unique<JsonLinesSink>(path);
    ASSERT_TRUE(sink->ok());
    SetSink(std::move(sink));
    SetMinLevel(Level::kInfo);
    SIMJ_LOG(INFO) << "first";
    SIMJ_LOG(WARN) << "second";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_NE(lines[0].find("\"msg\":\"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"msg\":\"second\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"level\":\"WARN\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(LogTest, SetSinkReturnsPrevious) {
  auto first = std::make_unique<CaptureSink>();
  CaptureSink* first_raw = first.get();
  std::unique_ptr<Sink> original = SetSink(std::move(first));
  std::unique_ptr<Sink> back = SetSink(std::move(original));
  EXPECT_EQ(back.get(), first_raw);
}

TEST(LogTest, ConcurrentWritersKeepEveryEntryIntact) {
  ScopedCapture scoped;
  SetMinLevel(Level::kInfo);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        SIMJ_LOG(INFO) << "thread " << t << " entry " << i;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::vector<Entry> entries = scoped.capture().Entries();
  ASSERT_EQ(entries.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  // Every message must be exactly one thread's intact line — interleaving
  // inside a message would corrupt the "thread T entry I" shape.
  std::vector<int> per_thread(kThreads, 0);
  for (const Entry& entry : entries) {
    int t = -1, i = -1;
    ASSERT_EQ(std::sscanf(entry.message.c_str(), "thread %d entry %d", &t,
                          &i),
              2)
        << entry.message;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ++per_thread[t];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], kPerThread) << "thread " << t;
  }
}

}  // namespace
}  // namespace simj::log
