// Tests for the sampling heap profiler (util/heap_profiler.h):
// deterministic emission (JSON schema golden + folded text from a
// hand-built HeapProfile, including negative in-stream inuse deltas),
// batch merge/normalize semantics, the remote-section merge path the
// cluster coordinator uses, and live-capture attribution with exact
// counts — allocations of at least sample_bytes are always sampled, so a
// run of chunk-sized allocations yields exact inuse/alloc byte totals.
//
// Live-capture tests arm the real operator new/delete hooks; sanitizer
// builds refuse to arm by design (ASan/TSan own the allocator), so those
// tests skip when arming fails. Live assertions target counters, never
// symbol names: test binaries are not linked -rdynamic, so frames
// symbolize as module+offset.

#include "util/heap_profiler.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace simj::heapprof {
namespace {

// Arms the heap profiler or skips the test (sanitizer builds refuse by
// design).
#define ARM_OR_SKIP(options)                                    \
  do {                                                          \
    Status armed = StartHeapProfiling(options);                 \
    if (!armed.ok()) GTEST_SKIP() << armed.ToString();          \
  } while (false)

// Large enough that incidental test-infrastructure allocations between
// two drains never add up to a sample of their own; every chunk of
// exactly this size is sampled deterministically (size >= sample_bytes).
constexpr int64_t kChunk = 4 * 1024 * 1024;

HeapProfile MakeHandBuiltProfile() {
  HeapProfile profile;
  profile.sample_bytes = 524288;
  profile.duration_seconds = 0.25;
  HeapSection coordinator;
  coordinator.label = "coordinator";
  coordinator.batch.dropped = 1;
  coordinator.batch.truncated = 2;
  coordinator.batch.stacks = {
      {"main", {"JoinDriver", "BuildCandidates"}, 1024, 2, 4096, 8},
      {"io", {"ReadGraph"}, 0, 0, 2048, 4},
  };
  coordinator.batch.Normalize();
  HeapSection worker;
  worker.label = "worker-1";
  // A shipped delta batch: more frees than allocations since the last
  // drain makes the inuse counters negative mid-stream.
  worker.batch.stacks = {
      {"shard", {"RunShard"}, -512, -1, 1536, 3},
  };
  worker.batch.Normalize();
  // Deliberately out of label order; emission must sort.
  profile.sections.push_back(std::move(worker));
  profile.sections.push_back(std::move(coordinator));
  return profile;
}

int64_t SumField(const HeapBatch& batch, int64_t HeapFoldedStack::*field) {
  int64_t total = 0;
  for (const HeapFoldedStack& stack : batch.stacks) total += stack.*field;
  return total;
}

TEST(HeapProfileJsonTest, GoldenRecordIsByteForByteStable) {
  const HeapProfile profile = MakeHandBuiltProfile();
  const std::string json = HeapProfileJson(profile);
  EXPECT_EQ(
      json,
      "{\"schema\":\"simj_heap_v1\",\"sample_bytes\":524288,"
      "\"duration_seconds\":0.250,\"inuse_bytes\":512,\"inuse_objects\":1,"
      "\"alloc_bytes\":7680,\"alloc_objects\":15,\"dropped\":1,"
      "\"truncated\":2,\"sections\":["
      "{\"label\":\"coordinator\",\"inuse_bytes\":1024,\"inuse_objects\":2,"
      "\"alloc_bytes\":6144,\"alloc_objects\":12,\"dropped\":1,"
      "\"truncated\":2,\"stacks\":["
      "{\"thread\":\"io\",\"inuse_bytes\":0,\"inuse_objects\":0,"
      "\"alloc_bytes\":2048,\"alloc_objects\":4,\"frames\":[\"ReadGraph\"]},"
      "{\"thread\":\"main\",\"inuse_bytes\":1024,\"inuse_objects\":2,"
      "\"alloc_bytes\":4096,\"alloc_objects\":8,"
      "\"frames\":[\"JoinDriver\",\"BuildCandidates\"]}]},"
      "{\"label\":\"worker-1\",\"inuse_bytes\":-512,\"inuse_objects\":-1,"
      "\"alloc_bytes\":1536,\"alloc_objects\":3,\"dropped\":0,"
      "\"truncated\":0,\"stacks\":["
      "{\"thread\":\"shard\",\"inuse_bytes\":-512,\"inuse_objects\":-1,"
      "\"alloc_bytes\":1536,\"alloc_objects\":3,"
      "\"frames\":[\"RunShard\"]}]}]}\n");
}

TEST(HeapProfileJsonTest, EscapesFrameStrings) {
  HeapProfile profile;
  profile.sample_bytes = 1024;
  HeapSection section;
  section.label = "coordinator";
  section.batch.stacks = {{"t\"1", {"Fn\\path", "Line\nBreak"}, 1, 1, 1, 1}};
  profile.sections.push_back(std::move(section));
  const std::string json = HeapProfileJson(profile);
  EXPECT_NE(json.find("\"t\\\"1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"Fn\\\\path\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"Line\\nBreak\""), std::string::npos) << json;
}

TEST(HeapFoldedTextTest, FourTrailingCountersAndSortedSections) {
  const HeapProfile profile = MakeHandBuiltProfile();
  EXPECT_EQ(HeapFoldedText(profile),
            "coordinator;io;ReadGraph 0 0 2048 4\n"
            "coordinator;main;JoinDriver;BuildCandidates 1024 2 4096 8\n"
            "worker-1;shard;RunShard -512 -1 1536 3\n");
}

TEST(HeapFoldedTextTest, CleansSemicolonsAndSpacesOutOfTokens) {
  HeapProfile profile;
  HeapSection section;
  section.label = "coordinator";
  section.batch.stacks = {
      {"pool worker", {"Verify(int, long)", "odd;frame"}, 8, 1, 8, 1}};
  profile.sections.push_back(std::move(section));
  EXPECT_EQ(HeapFoldedText(profile),
            "coordinator;poolworker;Verify(int,long);odd:frame 8 1 8 1\n");
}

TEST(HeapBatchTest, NormalizeMergesDuplicatesAndSorts) {
  HeapBatch batch;
  batch.stacks = {
      {"b", {"Y"}, 10, 1, 20, 2},
      {"a", {"X"}, 1, 1, 2, 2},
      {"b", {"Y"}, -4, -1, 8, 1},
  };
  batch.Normalize();
  ASSERT_EQ(batch.stacks.size(), 2u);
  EXPECT_EQ(batch.stacks[0].thread, "a");
  EXPECT_EQ(batch.stacks[1].thread, "b");
  EXPECT_EQ(batch.stacks[1].inuse_bytes, 6);
  EXPECT_EQ(batch.stacks[1].inuse_objects, 0);
  EXPECT_EQ(batch.stacks[1].alloc_bytes, 28);
  EXPECT_EQ(batch.stacks[1].alloc_objects, 3);
}

TEST(HeapBatchTest, MergeFromSumsAllFourCountersAndLossCounts) {
  HeapBatch a;
  a.dropped = 1;
  a.stacks = {{"main", {"F"}, 100, 1, 100, 1}};
  HeapBatch b;
  b.truncated = 2;
  b.stacks = {{"main", {"F"}, -100, -1, 50, 1}, {"main", {"G"}, 7, 1, 7, 1}};
  a.MergeFrom(b);
  EXPECT_EQ(a.dropped, 1);
  EXPECT_EQ(a.truncated, 2);
  ASSERT_EQ(a.stacks.size(), 2u);
  EXPECT_EQ(a.stacks[0].frames, std::vector<std::string>{"F"});
  EXPECT_EQ(a.stacks[0].inuse_bytes, 0);
  EXPECT_EQ(a.stacks[0].alloc_bytes, 150);
  EXPECT_EQ(a.stacks[0].alloc_objects, 2);
}

TEST(HeapProfilerLiveTest, StopWithoutStartFails) {
  StatusOr<HeapProfile> profile = StopHeapProfiling();
  EXPECT_FALSE(profile.ok());
  EXPECT_EQ(profile.status().code(), StatusCode::kFailedPrecondition);
}

TEST(HeapProfilerLiveTest, RejectsOutOfRangeSampleBytes) {
  HeapProfileOptions options;
  options.sample_bytes = 16;
  Status status = StartHeapProfiling(options);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(HeapProfilerLiveTest, DoubleStartFailsAndActiveReportsRate) {
  EXPECT_FALSE(HeapProfilingActive());
  EXPECT_EQ(ActiveSampleBytes(), 0);
  HeapProfileOptions options;
  options.sample_bytes = kChunk;
  ARM_OR_SKIP(options);
  EXPECT_TRUE(HeapProfilingActive());
  EXPECT_EQ(ActiveSampleBytes(), kChunk);
  Status again = StartHeapProfiling(options);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  StatusOr<HeapProfile> profile = StopHeapProfiling();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_FALSE(HeapProfilingActive());
  EXPECT_EQ(profile->sample_bytes, kChunk);
}

TEST(HeapProfilerLiveTest, ChunkAllocationsAreCountedExactly) {
  HeapProfileOptions options;
  options.sample_bytes = kChunk;
  ARM_OR_SKIP(options);
  // Flush anything pending from arming so the next drain is ours alone.
  (void)DrainAllThreadsBatch();

  constexpr int kChunks = 8;
  std::vector<char*> chunks;
  chunks.reserve(kChunks);
  for (int i = 0; i < kChunks; ++i) {
    char* chunk = new char[kChunk];
    chunk[0] = static_cast<char>(i);  // touch so the store is observable
    chunks.push_back(chunk);
  }
  for (int i = 0; i < kChunks / 2; ++i) {
    delete[] chunks[i];
    chunks[i] = nullptr;
  }

  HeapBatch batch = DrainAllThreadsBatch();
  EXPECT_EQ(SumField(batch, &HeapFoldedStack::alloc_bytes),
            kChunks * kChunk);
  EXPECT_EQ(SumField(batch, &HeapFoldedStack::alloc_objects), kChunks);
  EXPECT_EQ(SumField(batch, &HeapFoldedStack::inuse_bytes),
            (kChunks / 2) * kChunk);
  EXPECT_EQ(SumField(batch, &HeapFoldedStack::inuse_objects), kChunks / 2);
  EXPECT_EQ(batch.dropped, 0);

  // Already-drained deltas must not reappear in the final capture.
  StatusOr<HeapProfile> profile = StopHeapProfiling();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->TotalAllocBytes(), 0);
  for (char* chunk : chunks) delete[] chunk;
}

TEST(HeapProfilerLiveTest, ThreadDrainAttributesToTheRegisteredName) {
  HeapProfileOptions options;
  options.sample_bytes = kChunk;
  ARM_OR_SKIP(options);

  HeapBatch from_thread;
  std::thread worker([&from_thread] {
    NoteThisThread("heap-worker");
    std::vector<std::unique_ptr<char[]>> owned;
    for (int i = 0; i < 2; ++i) {
      owned.push_back(std::make_unique<char[]>(kChunk));
      owned.back()[0] = 1;
    }
    from_thread = DrainThisThreadBatch();
  });
  worker.join();

  ASSERT_FALSE(from_thread.stacks.empty());
  for (const HeapFoldedStack& stack : from_thread.stacks) {
    EXPECT_EQ(stack.thread, "heap-worker");
  }
  EXPECT_EQ(SumField(from_thread, &HeapFoldedStack::alloc_bytes),
            2 * kChunk);
  StatusOr<HeapProfile> profile = StopHeapProfiling();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
}

TEST(HeapProfilerLiveTest, RemoteSectionsMergeUnderTheirLabels) {
  HeapProfileOptions options;
  options.sample_bytes = kChunk;
  ARM_OR_SKIP(options);

  HeapBatch shipment;
  shipment.stacks = {{"shard", {"RunShard"}, 64, 1, 64, 1}};
  AccumulateRemoteSection("worker-1", shipment);
  AccumulateRemoteSection("worker-1", shipment);
  AccumulateRemoteSection("worker-0", shipment);

  StatusOr<HeapProfile> profile = StopHeapProfiling();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ASSERT_EQ(profile->sections.size(), 3u);
  EXPECT_EQ(profile->sections[0].label, "coordinator");
  EXPECT_EQ(profile->sections[1].label, "worker-0");
  EXPECT_EQ(profile->sections[2].label, "worker-1");
  EXPECT_EQ(SumField(profile->sections[1].batch,
                     &HeapFoldedStack::alloc_bytes),
            64);
  ASSERT_EQ(profile->sections[2].batch.stacks.size(), 1u);
  EXPECT_EQ(profile->sections[2].batch.stacks[0].alloc_bytes, 128);
  EXPECT_EQ(profile->sections[2].batch.stacks[0].inuse_bytes, 128);

  // Remote sections were consumed: a fresh capture starts empty.
  ARM_OR_SKIP(options);
  StatusOr<HeapProfile> second = StopHeapProfiling();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  for (const HeapSection& section : second->sections) {
    EXPECT_NE(section.label, "worker-1");
  }
}

}  // namespace
}  // namespace simj::heapprof
