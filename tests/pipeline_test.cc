// End-to-end integration tests: knowledge base -> workload -> NLP -> SimJ
// join -> template generation -> template Q/A, plus the edge-uncertainty
// reduction running through the full similarity machinery.

#include <gtest/gtest.h>

#include "core/join.h"
#include "core/similarity.h"
#include "ged/lower_bounds.h"
#include "graph/uncertain_graph.h"
#include "templates/baselines.h"
#include "templates/qa.h"
#include "templates/template.h"
#include "test_util.h"
#include "workload/knowledge_base.h"
#include "workload/question_gen.h"

namespace simj {
namespace {

struct PipelineResult {
  int templates = 0;
  double template_f1 = 0.0;
  double direct_f1 = 0.0;
  double greedy_f1 = 0.0;
};

PipelineResult RunPipeline(uint64_t seed) {
  workload::KnowledgeBase kb(workload::KbConfig{.seed = seed});

  workload::Workload train = simj::testing::MakeSeededWorkload(
      kb, seed + 1, /*num_questions=*/150, /*distractor_queries=*/60);
  workload::JoinSides sides = workload::BuildJoinSides(kb, train);

  core::SimJParams params;
  params.tau = 1;
  params.alpha = 0.6;
  core::JoinResult joined =
      core::SimJoin(sides.d, sides.u, params, kb.dict());

  tmpl::TemplateStore store;
  for (const core::MatchedPair& pair : joined.pairs) {
    StatusOr<tmpl::Template> t = tmpl::GenerateTemplate(
        train.sparql_queries[pair.q_index], sides.d_graphs[pair.q_index],
        sides.u_parsed[pair.g_index], sides.u_graphs[pair.g_index],
        pair.mapping, kb.dict());
    if (t.ok()) store.Add(*std::move(t), kb.dict());
  }

  workload::Workload test =
      simj::testing::MakeSeededWorkload(kb, seed + 2, /*num_questions=*/80);

  tmpl::TemplateQa qa(&store, &kb.lexicon(), &kb.store(), &kb.dict());
  auto macro_f1 = [&](auto answer_fn) {
    double precision = 0.0;
    double recall = 0.0;
    for (const workload::QuestionInstance& question : test.questions) {
      std::vector<std::vector<rdf::TermId>> gold =
          kb.store().Evaluate(question.gold_query.ToBgp(), kb.dict());
      std::vector<std::vector<rdf::TermId>> rows = answer_fn(question.text);
      tmpl::PrfScore score = tmpl::ScoreAnswer(gold, rows);
      precision += score.precision;
      recall += score.recall;
    }
    int n = static_cast<int>(test.questions.size());
    double p = precision / n;
    double r = recall / n;
    return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
  };

  using Rows = std::vector<std::vector<rdf::TermId>>;
  PipelineResult result;
  result.templates = store.size();
  result.template_f1 = macro_f1([&](const std::string& q) {
    StatusOr<tmpl::QaAnswer> a = qa.Answer(q);
    return a.ok() ? a->rows : Rows{};
  });
  result.direct_f1 = macro_f1([&](const std::string& q) {
    StatusOr<tmpl::QaAnswer> a =
        tmpl::DirectGraphQa(q, kb.lexicon(), kb.store(), kb.dict());
    return a.ok() ? a->rows : Rows{};
  });
  result.greedy_f1 = macro_f1([&](const std::string& q) {
    StatusOr<tmpl::QaAnswer> a =
        tmpl::JointGreedyQa(q, kb.lexicon(), kb.store(), kb.dict());
    return a.ok() ? a->rows : Rows{};
  });
  return result;
}

TEST(PipelineTest, TemplatesBeatBaselinesEndToEnd) {
  PipelineResult result = RunPipeline(/*seed=*/2024);
  EXPECT_GT(result.templates, 20);
  // The paper's Table 4 ordering must hold on the synthetic benchmark.
  EXPECT_GT(result.template_f1, result.direct_f1);
  EXPECT_GE(result.direct_f1, result.greedy_f1);
  EXPECT_GT(result.template_f1, 0.35);
}

TEST(PipelineTest, StableAcrossSeeds) {
  // The ordering is a property of the method, not of one lucky seed.
  for (uint64_t seed : {31337u, 777u}) {
    PipelineResult result = RunPipeline(seed);
    EXPECT_GT(result.template_f1, result.greedy_f1) << "seed=" << seed;
  }
}

TEST(EdgeUncertaintyTest, LiftedGraphsJoinEndToEnd) {
  // The paper's reduction: an uncertain edge becomes a fictitious vertex.
  // Build "?x --(spouse 0.7 | knows 0.3)--> Person" on both sides of the
  // pipeline and check that SimP reflects the edge-label distribution.
  graph::LabelDictionary dict;
  graph::LabelId var = dict.Intern("?x");
  graph::LabelId person = dict.Intern("Person");
  graph::LabelId spouse = dict.Intern("spouse");
  graph::LabelId knows = dict.Intern("knows");
  graph::LabelId link = dict.Intern("__edge__");

  std::vector<std::vector<graph::LabelAlternative>> vertices = {
      {{var, 1.0}}, {{person, 1.0}}};
  std::vector<graph::UncertainEdge> uncertain_edges = {
      {0, 1, {{spouse, 0.7}, {knows, 0.3}}}};
  graph::UncertainGraph g = graph::LiftUncertainEdges(
      vertices, /*certain_edges=*/{}, uncertain_edges, link);

  // Query lifted the same way, with the edge certain at "spouse".
  graph::LabeledGraph q;
  int q_var = q.AddVertex(var);
  int q_person = q.AddVertex(person);
  int q_edge = q.AddVertex(spouse);
  q.AddEdge(q_var, q_edge, link);
  q.AddEdge(q_edge, q_person, link);

  core::SimPResult tau0 = core::ComputeSimP(q, g, /*tau=*/0, dict);
  EXPECT_NEAR(tau0.probability, 0.7, 1e-9);  // only the spouse world
  core::SimPResult tau1 = core::ComputeSimP(q, g, /*tau=*/1, dict);
  EXPECT_NEAR(tau1.probability, 1.0, 1e-9);  // knows world is 1 edit away

  // The bounds remain valid on lifted graphs (they are ordinary uncertain
  // graphs).
  EXPECT_LE(ged::CssLowerBoundUncertain(q, g, dict), 0);
  EXPECT_GE(core::UpperBoundSimP(q, g, 0, dict) + 1e-9, 0.7);
}

}  // namespace
}  // namespace simj
