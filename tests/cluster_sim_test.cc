// The distributed-join cluster simulator test (the headline of the shard-out
// work): differential tests of ShardedSimJoin against the serial oracles
// (IndexedSimJoin / SimJoin) across many seeds, every worker count in
// {1, 2, 4, 8}, and both transports, under rng-driven fault plans mixing
// slow, dying, and restarting workers — plus targeted tests that the stall
// watchdog sees every injected straggler, that work stealing balances a
// skewed-bucket workload, and that the all-workers-dead fallback converges.
//
// Seed count: `--seeds=N` (default 8 for a quick ctest run; ci.sh runs the
// dedicated leg with --seeds=20). On failure the offending seed / worker
// count / transport are in the SCOPED_TRACE output — rerun with that seed
// to replay the exact fault plan.
//
// Under ThreadSanitizer only the in-process transport runs: fork() from a
// multi-threaded TSan process (worker restarts fork mid-run) can deadlock
// in the child, and the ISSUE's TSan requirement covers the in-process
// transport.

#include "dist/simulator.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <sstream>

#include "core/index.h"
#include "core/join.h"
#include "dist/clusterz.h"
#include "dist/coordinator.h"
#include "dist/shard.h"
#include "dist/worker.h"
#include "test_util.h"
#include "util/flight_recorder.h"
#include "util/health.h"
#include "util/metrics.h"
#include "util/trace.h"

#if defined(__SANITIZE_THREAD__)
#define SIMJ_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SIMJ_TSAN 1
#endif
#endif

namespace simj::dist {
namespace {

using simj::testing::MakeRandomJoinWorkload;
using simj::testing::MakeSkewedBucketWorkload;
using simj::testing::RandomJoinWorkload;

int g_seeds = 8;  // overridden by --seeds=N (see main below)

std::vector<Transport> TransportsUnderTest() {
#ifdef SIMJ_TSAN
  return {Transport::kThread};
#else
  return {Transport::kThread, Transport::kProcess};
#endif
}

core::SimJParams BaseParams() {
  core::SimJParams params;
  params.tau = 2;
  params.alpha = 0.3;
  params.group_count = 2;
  params.slow_pair_log_ms = 0.0;
  params.explain.enabled = true;  // the merge must reproduce explains too
  params.explain.sample_every = 2;
  return params;
}

// Byte-identity on everything deterministic: matched pairs (indices, exact
// probabilities, mappings, GED), all counters, and explain records. Timing
// fields (wall/CPU seconds) are excluded by construction.
void ExpectIdenticalJoin(const core::JoinResult& expected,
                         const core::JoinResult& actual) {
  ASSERT_EQ(expected.pairs.size(), actual.pairs.size());
  for (size_t i = 0; i < expected.pairs.size(); ++i) {
    const core::MatchedPair& e = expected.pairs[i];
    const core::MatchedPair& a = actual.pairs[i];
    EXPECT_EQ(e.q_index, a.q_index) << "pair " << i;
    EXPECT_EQ(e.g_index, a.g_index) << "pair " << i;
    EXPECT_EQ(e.similarity_probability, a.similarity_probability)
        << "pair " << i;
    EXPECT_EQ(e.mapping, a.mapping) << "pair " << i;
    EXPECT_EQ(e.best_world_ged, a.best_world_ged) << "pair " << i;
  }
  EXPECT_EQ(expected.stats.total_pairs, actual.stats.total_pairs);
  EXPECT_EQ(expected.stats.pruned_structural, actual.stats.pruned_structural);
  EXPECT_EQ(expected.stats.pruned_probabilistic,
            actual.stats.pruned_probabilistic);
  EXPECT_EQ(expected.stats.candidates, actual.stats.candidates);
  EXPECT_EQ(expected.stats.results, actual.stats.results);
  EXPECT_EQ(expected.stats.verify.worlds_enumerated,
            actual.stats.verify.worlds_enumerated);
  EXPECT_EQ(expected.stats.verify.worlds_pruned_by_bound,
            actual.stats.verify.worlds_pruned_by_bound);
  EXPECT_EQ(expected.stats.verify.worlds_accepted_by_upper_bound,
            actual.stats.verify.worlds_accepted_by_upper_bound);
  EXPECT_EQ(expected.stats.verify.ged_calls, actual.stats.verify.ged_calls);
  EXPECT_EQ(expected.stats.verify.ged_aborted, actual.stats.verify.ged_aborted);
  ASSERT_EQ(expected.explains.size(), actual.explains.size());
  for (size_t i = 0; i < expected.explains.size(); ++i) {
    const core::PairExplain& e = expected.explains[i];
    const core::PairExplain& a = actual.explains[i];
    EXPECT_EQ(e.q_index, a.q_index) << "explain " << i;
    EXPECT_EQ(e.g_index, a.g_index) << "explain " << i;
    EXPECT_EQ(e.pruned_by, a.pruned_by) << "explain " << i;
    EXPECT_EQ(e.accepted, a.accepted) << "explain " << i;
    EXPECT_EQ(e.css_lower_bound, a.css_lower_bound) << "explain " << i;
    EXPECT_EQ(e.simp_upper_bound, a.simp_upper_bound) << "explain " << i;
    EXPECT_EQ(e.live_groups, a.live_groups) << "explain " << i;
    EXPECT_EQ(e.live_mass, a.live_mass) << "explain " << i;
    EXPECT_EQ(e.simp_probability, a.simp_probability) << "explain " << i;
    EXPECT_EQ(e.early_accept, a.early_accept) << "explain " << i;
    EXPECT_EQ(e.early_reject, a.early_reject) << "explain " << i;
    EXPECT_EQ(e.worlds_enumerated, a.worlds_enumerated) << "explain " << i;
    EXPECT_EQ(e.ged_calls, a.ged_calls) << "explain " << i;
    EXPECT_EQ(e.best_world_ged, a.best_world_ged) << "explain " << i;
  }
}

// Internal bookkeeping invariants that must hold after any run.
void ExpectCoherentDistStats(const DistStats& stats) {
  int completed = 0;
  for (const WorkerReport& report : stats.workers) {
    completed += report.shards_completed;
    EXPECT_GE(report.busy_seconds, 0.0);
  }
  EXPECT_EQ(completed + stats.fallback_shards, stats.shards_planned);
  int failed = 0;
  for (const WorkerReport& report : stats.workers) {
    failed += report.shards_failed;
  }
  EXPECT_EQ(failed, stats.shards_requeued);
}

// The headline differential matrix: for each seed, the merged distributed
// result must be byte-identical to the serial oracle at every worker
// count, on both transports, under the seed's fault plan.
TEST(ClusterSimTest, DifferentialAgainstIndexedOracleUnderFaults) {
  for (int s = 0; s < g_seeds; ++s) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(s);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (rerun: cluster_sim_test --seeds=N picks seeds 1000..)");
    RandomJoinWorkload w = MakeRandomJoinWorkload(
        seed, {.num_certain = 5, .num_uncertain = 4});
    core::SimJParams params = BaseParams();
    const core::JoinResult oracle =
        core::IndexedSimJoin(w.d, w.u, params, w.dict);

    for (Transport transport : TransportsUnderTest()) {
      for (int workers : {1, 2, 4, 8}) {
        SCOPED_TRACE(std::string("transport=") + TransportName(transport) +
                     " workers=" + std::to_string(workers));
        SimOptions sim_options;
        sim_options.seed = seed;
        sim_options.slow_probability = 0.2;
        sim_options.slow_min_ms = 1.0;
        sim_options.slow_max_ms = 3.0;
        sim_options.death_probability = 0.25;
        ClusterSim sim(sim_options);

        DistJoinParams dist_params;
        dist_params.num_workers = workers;
        dist_params.transport = transport;
        dist_params.max_pairs_per_shard = 3;
        dist_params.use_index = true;
        dist_params.max_worker_restarts = 3;
        dist_params.fault_hook = sim.Hook();

        DistJoinResult dist =
            ShardedSimJoin(w.d, w.u, params, w.dict, dist_params);
        ExpectIdenticalJoin(oracle, dist.join);
        ExpectCoherentDistStats(dist.dist);
      }
    }
  }
}

// The no-index plan must reproduce plain SimJoin instead.
TEST(ClusterSimTest, DifferentialAgainstSimJoinOracleWithoutIndex) {
  const int seeds = std::min(g_seeds, 5);
  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = 2000 + static_cast<uint64_t>(s);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    RandomJoinWorkload w = MakeRandomJoinWorkload(seed);
    core::SimJParams params = BaseParams();
    const core::JoinResult oracle = core::SimJoin(w.d, w.u, params, w.dict);

    for (Transport transport : TransportsUnderTest()) {
      SCOPED_TRACE(std::string("transport=") + TransportName(transport));
      SimOptions sim_options;
      sim_options.seed = seed;
      sim_options.death_probability = 0.3;
      ClusterSim sim(sim_options);

      DistJoinParams dist_params;
      dist_params.num_workers = 3;
      dist_params.transport = transport;
      dist_params.max_pairs_per_shard = 2;
      dist_params.use_index = false;
      dist_params.fault_hook = sim.Hook();

      DistJoinResult dist =
          ShardedSimJoin(w.d, w.u, params, w.dict, dist_params);
      ExpectIdenticalJoin(oracle, dist.join);
      ExpectCoherentDistStats(dist.dist);
    }
  }
}

// Every injected straggler must be observed by the stall watchdog: the
// coordinator heartbeats the shard's first pair before dispatch, the
// injected delay ages that heartbeat past the budget, and the monitor
// thread flags it — one stall event per delayed execution, regardless of
// transport.
TEST(ClusterSimTest, StallWatchdogSeesEveryInjectedStraggler) {
  RandomJoinWorkload w = MakeRandomJoinWorkload(
      31, {.num_certain = 4, .num_uncertain = 3});
  core::SimJParams params = BaseParams();
  params.stall_warn_ms = 8.0;
  const core::JoinResult oracle =
      core::IndexedSimJoin(w.d, w.u, params, w.dict);

  for (Transport transport : TransportsUnderTest()) {
    SCOPED_TRACE(std::string("transport=") + TransportName(transport));
    SimOptions sim_options;
    sim_options.seed = 31;
    sim_options.slow_probability = 1.0;  // every execution is a straggler
    sim_options.slow_min_ms = 40.0;
    sim_options.slow_max_ms = 60.0;
    ClusterSim sim(sim_options);

    DistJoinParams dist_params;
    dist_params.num_workers = 2;
    dist_params.transport = transport;
    dist_params.max_pairs_per_shard = 4;
    dist_params.fault_hook = sim.Hook();

    DistJoinResult dist = ShardedSimJoin(w.d, w.u, params, w.dict, dist_params);
    EXPECT_GT(sim.injected_delays(), 0);
    EXPECT_EQ(sim.injected_delays(), dist.dist.shards_planned);
    // Detection, not just sampling: every 40-60 ms straggler blows the 8 ms
    // budget and the monitor polls every ~2 ms.
    EXPECT_GE(dist.dist.stall_events, sim.injected_delays());
    ExpectIdenticalJoin(oracle, dist.join);
  }
}

// Work stealing on the skewed-bucket workload: a straggler worker's queue
// is drained by its peers, so busy time stays balanced — no worker owns
// more than 2x the mean — and at least one steal actually happens.
TEST(ClusterSimTest, WorkStealingBalancesSkewedBuckets) {
  RandomJoinWorkload w = MakeSkewedBucketWorkload(33);
  core::SimJParams params = BaseParams();
  params.explain.enabled = false;
  const core::JoinResult oracle =
      core::IndexedSimJoin(w.d, w.u, params, w.dict);

  DistJoinParams dist_params;
  dist_params.num_workers = 4;
  dist_params.transport = Transport::kThread;
  dist_params.max_pairs_per_shard = 8;
  // Deterministic cost model instead of rng faults: every shard carries a
  // per-pair delay so shard time dominates scheduling noise, and worker 0
  // is a straggler (+8 ms per shard) whose queue the others must steal.
  dist_params.fault_hook = [](int worker, int /*shard_id*/, int /*attempt*/,
                              int shard_pairs) {
    FaultSpec fault;
    fault.delay_ms = 1.0 + 0.5 * shard_pairs + (worker == 0 ? 8.0 : 0.0);
    return fault;
  };

  DistJoinResult dist = ShardedSimJoin(w.d, w.u, params, w.dict, dist_params);
  ExpectIdenticalJoin(oracle, dist.join);

  double total_busy = 0.0;
  double max_busy = 0.0;
  int steals = 0;
  for (const WorkerReport& report : dist.dist.workers) {
    total_busy += report.busy_seconds;
    max_busy = std::max(max_busy, report.busy_seconds);
    steals += report.steals;
  }
  const double mean_busy = total_busy / 4.0;
  ASSERT_GT(mean_busy, 0.0);
  EXPECT_LE(max_busy, 2.0 * mean_busy)
      << "straggler kept " << max_busy << "s of " << total_busy
      << "s total; stealing failed to rebalance";
  EXPECT_GT(steals, 0) << "skewed queues should force at least one steal";
}

// With every execution dying and restarts capped, all workers go
// permanently dead — the coordinator must requeue the abandoned shards,
// run them inline, and still merge a byte-identical result.
TEST(ClusterSimTest, AllWorkersDeadFallsBackInlineAndConverges) {
  RandomJoinWorkload w = MakeRandomJoinWorkload(34);
  core::SimJParams params = BaseParams();
  const core::JoinResult oracle =
      core::IndexedSimJoin(w.d, w.u, params, w.dict);

  for (Transport transport : TransportsUnderTest()) {
    SCOPED_TRACE(std::string("transport=") + TransportName(transport));
    SimOptions sim_options;
    sim_options.seed = 34;
    sim_options.death_probability = 1.0;
    ClusterSim sim(sim_options);

    DistJoinParams dist_params;
    dist_params.num_workers = 2;
    dist_params.transport = transport;
    dist_params.max_pairs_per_shard = 3;
    dist_params.max_worker_restarts = 1;
    dist_params.fault_hook = sim.Hook();

    DistJoinResult dist = ShardedSimJoin(w.d, w.u, params, w.dict, dist_params);
    ExpectIdenticalJoin(oracle, dist.join);
    EXPECT_GT(dist.dist.fallback_shards, 0);
    EXPECT_GT(dist.dist.shards_requeued, 0);
    for (const WorkerReport& report : dist.dist.workers) {
      EXPECT_TRUE(report.permanently_dead);
      EXPECT_EQ(report.restarts, 1);
      EXPECT_EQ(report.shards_completed, 0);
    }
    ExpectCoherentDistStats(dist.dist);
  }
}

// The fault plan is a pure function of (seed, shard_id, attempt): two sims
// with the same seed agree decision-for-decision; a different seed
// disagrees somewhere.
TEST(ClusterSimTest, FaultPlanIsPureFunctionOfSeed) {
  SimOptions options;
  options.seed = 42;
  options.slow_probability = 0.5;
  options.death_probability = 0.5;
  ClusterSim a(options);
  ClusterSim b(options);
  options.seed = 43;
  ClusterSim c(options);

  bool differs_across_seeds = false;
  for (int shard = 0; shard < 16; ++shard) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const FaultSpec fa = a.Decide(shard, attempt, 10);
      const FaultSpec fb = b.Decide(shard, attempt, 10);
      EXPECT_EQ(fa.delay_ms, fb.delay_ms);
      EXPECT_EQ(fa.die_after_pairs, fb.die_after_pairs);
      const FaultSpec fc = c.Decide(shard, attempt, 10);
      if (fa.delay_ms != fc.delay_ms ||
          fa.die_after_pairs != fc.die_after_pairs) {
        differs_across_seeds = true;
      }
    }
  }
  EXPECT_TRUE(differs_across_seeds);
}

// A single worker with no faults is the degenerate cluster: still exact.
TEST(ClusterSimTest, SingleWorkerNoFaultsMatchesOracleOnBothTransports) {
  RandomJoinWorkload w = MakeRandomJoinWorkload(35);
  core::SimJParams params = BaseParams();
  const core::JoinResult oracle =
      core::IndexedSimJoin(w.d, w.u, params, w.dict);
  for (Transport transport : TransportsUnderTest()) {
    SCOPED_TRACE(std::string("transport=") + TransportName(transport));
    DistJoinParams dist_params;
    dist_params.num_workers = 1;
    dist_params.transport = transport;
    DistJoinResult dist = ShardedSimJoin(w.d, w.u, params, w.dict, dist_params);
    ExpectIdenticalJoin(oracle, dist.join);
    EXPECT_EQ(dist.dist.shards_requeued, 0);
    EXPECT_EQ(dist.dist.fallback_shards, 0);
  }
}

// Sum across every `family{worker="..."}` labeled series of the counter
// delta between two registry snapshots.
int64_t LabeledWorkerSum(const metrics::MetricsSnapshot& before,
                         const metrics::MetricsSnapshot& after,
                         const std::string& family) {
  const std::string prefix = family + "{worker=";
  int64_t sum = 0;
  for (const auto& [name, value] : after.counters) {
    if (name.rfind(prefix, 0) != 0) continue;
    auto it = before.counters.find(name);
    sum += value - (it == before.counters.end() ? 0 : it->second);
  }
  return sum;
}

// The ISSUE's acceptance criteria in one test, per transport: a seeded
// faulted run with every sink enabled (tracer on, flight recorder active,
// /clusterz probed mid-run from the fault hook) must
//   (1) merge byte-identically to a sinks-off run and the serial oracle,
//   (2) leave a merged cluster trace with a named lane per worker and an
//       attempt span for EVERY executed shard attempt — requeued retries
//       included — filed under the executing worker's lane,
//   (3) account every evaluated pair to exactly one `worker` label, so the
//       per-label sums equal the unsharded oracle's totals, and
//   (4) record a flight-recorder dump whose deal/dispatch/steal/requeue
//       events replay to the exact final shard-to-worker assignment.
TEST(ClusterObservabilityTest, FaultedRunWithAllSinksMeetsAcceptance) {
  RandomJoinWorkload w = MakeRandomJoinWorkload(
      77, {.num_certain = 5, .num_uncertain = 4});
  core::SimJParams params = BaseParams();
  const core::JoinResult oracle =
      core::IndexedSimJoin(w.d, w.u, params, w.dict);

  SimOptions sim_options;
  sim_options.seed = 77;
  sim_options.death_probability = 0.4;
  sim_options.slow_probability = 0.1;
  sim_options.slow_min_ms = 1.0;
  sim_options.slow_max_ms = 2.0;

  for (Transport transport : TransportsUnderTest()) {
    SCOPED_TRACE(std::string("transport=") + TransportName(transport));

    DistJoinParams dist_params;
    dist_params.num_workers = 4;
    dist_params.transport = transport;
    dist_params.max_pairs_per_shard = 3;
    dist_params.max_worker_restarts = 3;

    // Sinks-off reference run under the identical fault plan (ClusterSim
    // decisions are a pure function of (seed, shard, attempt)).
    ClusterSim sim_off(sim_options);
    dist_params.fault_hook = sim_off.Hook();
    const DistJoinResult off =
        ShardedSimJoin(w.d, w.u, params, w.dict, dist_params);

    // Sinks-on run: same fault plan, plus a one-shot /clusterz probe from
    // inside the first fault-hook call (i.e. while the join is live).
    ClusterSim sim_on(sim_options);
    std::atomic<bool> probed{false};
    std::string probe_body;
    std::mutex probe_mu;
    dist_params.fault_hook = [&](int /*worker*/, int shard_id, int attempt,
                                 int shard_pairs) {
      if (!probed.exchange(true)) {
        std::lock_guard<std::mutex> lock(probe_mu);
        probe_body = ClusterzBody();
      }
      return sim_on.Decide(shard_id, attempt, shard_pairs);
    };
    trace::Tracer::Global().Start();
    const metrics::MetricsSnapshot before = metrics::Registry::Global().Snapshot();
    const DistJoinResult on =
        ShardedSimJoin(w.d, w.u, params, w.dict, dist_params);
    const metrics::MetricsSnapshot after = metrics::Registry::Global().Snapshot();
    const std::vector<trace::TraceEvent> spans =
        trace::Tracer::Global().SnapshotEvents();
    std::ostringstream trace_json;
    trace::Tracer::Global().WriteChromeTrace(trace_json);
    trace::Tracer::Global().Stop();

    // (1) Byte identity: sinks change nothing about the join.
    ExpectIdenticalJoin(oracle, on.join);
    ExpectIdenticalJoin(off.join, on.join);
    ExpectCoherentDistStats(on.dist);

    // The seed must actually exercise the paths under test.
    EXPECT_GT(on.dist.shards_requeued, 0)
        << "seed stopped injecting deaths; pick one that requeues";

    // (2) One named lane per worker in the merged Chrome trace...
    const std::string json = trace_json.str();
    for (int worker = 0; worker < 4; ++worker) {
      EXPECT_NE(json.find("\"worker-" + std::to_string(worker) + "\""),
                std::string::npos)
          << "missing process lane for worker " << worker;
    }
    // ...and an attempt span for every executed shard attempt, filed under
    // the executing worker's pid lane (worker w -> pid w+2; pid 1 is the
    // coordinator). dispatch/steal flight events enumerate the executions.
    for (const flight::Event& e : on.dist.events) {
      if (e.type != kEventDispatch && e.type != kEventSteal) continue;
      const std::string name = "shard-" + std::to_string(e.shard) +
                               "/attempt-" + std::to_string(e.attempt);
      bool found = false;
      for (const trace::TraceEvent& span : spans) {
        if (span.name == name) {
          EXPECT_EQ(span.pid, e.worker + 2) << name;
          EXPECT_GT(span.trace_id, 0u) << name;
          EXPECT_GT(span.span_id, 0u) << name;
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "no attempt span for execution " << name
                         << " (worker " << e.worker << ")";
    }

    // (3) Every pair accounted to exactly one worker label: per-label sums
    // equal the oracle totals. Fallback shards land under worker="inline"
    // and index pruning (which never reaches a shard) under
    // worker="coordinator".
    EXPECT_EQ(LabeledWorkerSum(before, after, "simj_join_pairs_total"),
              oracle.stats.total_pairs);
    EXPECT_EQ(
        LabeledWorkerSum(before, after, "simj_join_pruned_structural_total"),
        oracle.stats.pruned_structural);
    EXPECT_EQ(
        LabeledWorkerSum(before, after, "simj_join_pruned_probabilistic_total"),
        oracle.stats.pruned_probabilistic);
    EXPECT_EQ(LabeledWorkerSum(before, after, "simj_join_candidates_total"),
              oracle.stats.candidates);
    EXPECT_EQ(LabeledWorkerSum(before, after, "simj_join_results_total"),
              oracle.stats.results);

    // (4) The flight-recorder dump replays to the final assignment.
    auto replayed =
        ReplayFinalAssignment(on.dist.events, on.dist.shards_planned);
    ASSERT_TRUE(replayed.ok()) << replayed.status().message();
    EXPECT_EQ(replayed.value(), on.dist.shard_completed_by);

    // The mid-run /clusterz probe saw a live coordinator.
    std::lock_guard<std::mutex> lock(probe_mu);
    EXPECT_NE(probe_body.find("\"active\":true"), std::string::npos)
        << probe_body;
    EXPECT_NE(probe_body.find("\"workers\":["), std::string::npos)
        << probe_body;
    EXPECT_NE(probe_body.find("\"recent_events\":["), std::string::npos)
        << probe_body;
    EXPECT_NE(probe_body.find("\"num_shards\":"), std::string::npos)
        << probe_body;
  }
}

// After ShardedSimJoin returns, /clusterz must report inactive (the
// coordinator unregisters itself) and every per-worker health component
// must be healthy again — a finished run never leaves /healthz degraded.
TEST(ClusterObservabilityTest, ClusterzInactiveAndHealthyAfterRun) {
  RandomJoinWorkload w = MakeRandomJoinWorkload(36);
  core::SimJParams params = BaseParams();
  SimOptions sim_options;
  sim_options.seed = 36;
  sim_options.death_probability = 0.5;
  ClusterSim sim(sim_options);
  DistJoinParams dist_params;
  dist_params.num_workers = 2;
  dist_params.transport = Transport::kThread;
  dist_params.max_pairs_per_shard = 2;
  dist_params.fault_hook = sim.Hook();
  DistJoinResult dist = ShardedSimJoin(w.d, w.u, params, w.dict, dist_params);
  EXPECT_GT(dist.dist.shards_requeued, 0);

  const std::string body = ClusterzBody();
  EXPECT_NE(body.find("\"active\":false"), std::string::npos) << body;
  EXPECT_NE(body.find("\"coordinator\":null"), std::string::npos) << body;
  // Workers that died mid-run were marked unhealthy, but the end-of-run
  // sweep cleared every dist_worker_N component (stall_watchdog may outlive
  // the run by design — it resets on the next join's BeginJoin).
  EXPECT_EQ(health::HealthzBody().find("dist_worker"), std::string::npos)
      << health::HealthzBody();
}

}  // namespace
}  // namespace simj::dist

// Custom main: strip --seeds=N (the ci.sh cluster-sim leg passes
// --seeds=20; ctest runs the smaller default) before handing the rest to
// googletest.
int main(int argc, char** argv) {
  int argc_out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      const int seeds = std::atoi(argv[i] + 8);
      if (seeds > 0) simj::dist::g_seeds = seeds;
      continue;
    }
    argv[argc_out++] = argv[i];
  }
  argc = argc_out;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
