// Tests for the BenchResult run-record layer: trial statistics, provenance
// probes, deterministic JSON emission (byte-compared against a checked-in
// golden file), and the file writer round trip.

#include "util/run_record.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace simj::run_record {
namespace {

#ifndef SIMJ_TEST_GOLDEN_DIR
#define SIMJ_TEST_GOLDEN_DIR "tests/golden"
#endif

TEST(StatsTest, FromSamplesComputesOrderStatistics) {
  Stats stats = Stats::FromSamples({3.0, 1.0, 2.0, 5.0, 4.0});
  EXPECT_EQ(stats.trials, 5);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.median, 3.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  // Sample stddev of 1..5 is sqrt(2.5).
  EXPECT_NEAR(stats.stddev, 1.5811388300841898, 1e-12);
}

TEST(StatsTest, EvenCountMedianAveragesMiddlePair) {
  Stats stats = Stats::FromSamples({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(stats.trials, 4);
  EXPECT_DOUBLE_EQ(stats.median, 2.5);
}

TEST(StatsTest, SingleSampleHasZeroStddev) {
  Stats stats = Stats::FromSamples({7.25});
  EXPECT_EQ(stats.trials, 1);
  EXPECT_DOUBLE_EQ(stats.min, 7.25);
  EXPECT_DOUBLE_EQ(stats.median, 7.25);
  EXPECT_DOUBLE_EQ(stats.max, 7.25);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(StatsTest, EmptyYieldsZeroes) {
  Stats stats = Stats::FromSamples({});
  EXPECT_EQ(stats.trials, 0);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.median, 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(ProvenanceTest, BuildInfoIsPopulated) {
  BuildInfo build = CurrentBuildInfo();
  EXPECT_FALSE(build.compiler.empty());
}

TEST(ProvenanceTest, HardwareInfoIsSane) {
  HardwareInfo hardware = CurrentHardwareInfo();
  EXPECT_GE(hardware.hardware_concurrency, 1);
  EXPECT_GT(hardware.page_size_bytes, 0);
}

TEST(ProvenanceTest, ClockIsPostEpoch) {
  EXPECT_GT(NowUnixSeconds(), 1e9);
}

// A fully deterministic record: every environment-dependent field pinned.
BenchResult MakeGoldenRecord() {
  BenchResult result;
  result.harness = "bench_golden";
  result.unix_time_seconds = 0.0;
  result.git.sha = "0123456789abcdef0123456789abcdef01234567";
  result.git.dirty = false;
  result.build.compiler = "testc 1.0";
  result.build.build_type = "Release";
  result.build.sanitizers = "";
  result.build.debug_checks = false;
  result.hardware.hardware_concurrency = 8;
  result.hardware.page_size_bytes = 4096;
  result.params["threads"] = "2";
  result.params["tau"] = "3";
  Sample sample;
  sample.name = "eff tau=3 alpha=0.5 sp=1 pp=1 groups=8 threads=2";
  sample.wall_seconds = Stats::FromSamples({0.5, 0.25, 0.75});
  sample.cpu_seconds = Stats::FromSamples({1.0, 0.5, 1.5});
  sample.values["results"] = 42.0;
  sample.values["candidate_ratio"] = 0.125;
  result.samples.push_back(sample);
  result.wall_seconds_total = 3.5;
  result.peak_rss_bytes = 104857600;
  result.metrics.counters["simj_join_pairs_total"] = 400;
  result.metrics.gauges["simj_join_candidate_set_peak"] = 50.0;
  return result;
}

TEST(ToJsonTest, MatchesGoldenFile) {
  std::string json = ToJson(MakeGoldenRecord());
  std::string golden_path =
      std::string(SIMJ_TEST_GOLDEN_DIR) + "/bench_result_v1.json";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << "; regenerate it from MakeGoldenRecord()";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(json, buffer.str())
      << "ToJson drifted from the golden file — if the schema changed, "
         "bump kSchemaVersion, regenerate the golden, and teach "
         "tools/bench_compare.py both shapes";
}

TEST(ToJsonTest, IsDeterministic) {
  EXPECT_EQ(ToJson(MakeGoldenRecord()), ToJson(MakeGoldenRecord()));
}

TEST(ToJsonTest, SkippedIsSerializedOnlyWhenTrue) {
  // The default (not skipped) record must not mention the key at all —
  // that keeps existing goldens and baselines byte-stable.
  BenchResult record = MakeGoldenRecord();
  EXPECT_EQ(ToJson(record).find("\"skipped\""), std::string::npos);
  // A skipped sample (a scaling row the host cannot measure) carries
  // "skipped": true, which bench_compare.py accepts within schema v1.
  Sample skipped;
  skipped.name = "scaling threads=4";
  skipped.skipped = true;
  record.samples.push_back(skipped);
  EXPECT_NE(ToJson(record).find("\"skipped\": true"), std::string::npos);
}

TEST(ToJsonTest, DeclaresCurrentSchemaVersion) {
  std::string json = ToJson(MakeGoldenRecord());
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos) << json;
}

TEST(WriteJsonFileTest, RoundTripsBytes) {
  BenchResult record = MakeGoldenRecord();
  std::string path = ::testing::TempDir() + "/simj_run_record_test.json";
  std::remove(path.c_str());
  Status status = WriteJsonFile(record, path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), ToJson(record));
  std::remove(path.c_str());
}

TEST(WriteJsonFileTest, FailsOnUnwritablePath) {
  Status status =
      WriteJsonFile(MakeGoldenRecord(), "/nonexistent-dir/x/y/z.json");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace simj::run_record
