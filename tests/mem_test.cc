// Tests for the memory accounting helpers: RSS sanity (current > 0, peak >=
// current, peak monotonic across a deliberate allocation) and the metrics
// bridge that publishes both as gauges.

#include "util/mem.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "util/metrics.h"

namespace simj::mem {
namespace {

TEST(MemTest, CurrentRssIsPositive) {
  int64_t current = CurrentRssBytes();
  EXPECT_GT(current, 0) << "a running process must have resident pages";
}

TEST(MemTest, PeakIsAtLeastCurrent) {
  EXPECT_GE(PeakRssBytes(), CurrentRssBytes());
}

TEST(MemTest, PageSizeIsPositivePowerOfTwo) {
  int64_t page = PageSizeBytes();
  ASSERT_GT(page, 0);
  EXPECT_EQ(page & (page - 1), 0) << page;
}

TEST(MemTest, PeakGrowsAcrossAllocation) {
  int64_t before = PeakRssBytes();
  ASSERT_GT(before, 0);
  // Touch every page so the allocation actually becomes resident; the OS
  // only charges RSS for faulted-in pages.
  constexpr size_t kBytes = 32u << 20;
  std::vector<char> block(kBytes);
  std::memset(block.data(), 0x5a, block.size());
  int64_t after = PeakRssBytes();
  EXPECT_GE(after, before) << "peak RSS can never decrease";
  // The high-water mark should reflect most of the 32 MiB touched above
  // (allow slack for pages already resident before the allocation).
  EXPECT_GE(after, before + static_cast<int64_t>(kBytes / 2));
}

TEST(MemTest, SampleRssToMetricsPublishesGauges) {
  SampleRssToMetrics();
  metrics::MetricsSnapshot snapshot = metrics::Registry::Global().Snapshot();
  auto current = snapshot.gauges.find("simj_mem_current_rss_bytes");
  auto peak = snapshot.gauges.find("simj_mem_peak_rss_bytes");
  ASSERT_NE(current, snapshot.gauges.end());
  ASSERT_NE(peak, snapshot.gauges.end());
  EXPECT_GT(current->second, 0.0);
  EXPECT_GE(peak->second, current->second);
}

TEST(MemTest, PeakGaugeIsMonotonicAcrossSamples) {
  SampleRssToMetrics();
  double first = metrics::Registry::Global()
                     .Snapshot()
                     .gauges.at("simj_mem_peak_rss_bytes");
  SampleRssToMetrics();
  double second = metrics::Registry::Global()
                      .Snapshot()
                      .gauges.at("simj_mem_peak_rss_bytes");
  EXPECT_GE(second, first);
}

}  // namespace
}  // namespace simj::mem
