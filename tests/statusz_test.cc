// Tests for the embedded introspection server (util/statusz.h): loopback
// GETs of all four endpoints, 404/405 handling, and a concurrent scrape
// during an 8-thread join (exercised under TSan by ci.sh) that must leave
// the join results byte-identical to a server-off run.
//
// The raw-socket HTTP client below is test-only; in src/ the lint rule
// no-raw-sockets confines socket calls to src/util/statusz.cc.

#include "util/statusz.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/join.h"
#include "core/progress.h"
#include "test_util.h"
#include "util/health.h"
#include "util/metrics.h"
#include "util/run_record.h"
#include "util/trace.h"

namespace simj::statusz {
namespace {

using simj::testing::MakeRandomJoinWorkload;
using simj::testing::RandomJoinWorkload;

// Minimal blocking HTTP client: sends `request` verbatim to
// 127.0.0.1:port and returns everything the server wrote before closing.
std::string RawRequest(int port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[2048];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

// Body after the blank line separating HTTP headers.
std::string BodyOf(const std::string& response) {
  size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

class StatuszTest : public ::testing::Test {
 protected:
  void StartServer(std::vector<Section> sections = {}) {
    Server::Options options;
    options.port = 0;  // kernel-assigned; the harness "0 = off" rule is
                       // flag-level policy, not the server's
    options.sections = std::move(sections);
    ASSERT_TRUE(server_.Start(options).ok());
    ASSERT_GT(server_.bound_port(), 0);
  }

  Server server_;
};

TEST_F(StatuszTest, HealthzAnswersOk) {
  health::ResetForTesting();
  StartServer();
  std::string response = Get(server_.bound_port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_EQ(BodyOf(response), "{\"status\":\"ok\"}\n");
}

TEST_F(StatuszTest, HealthzReportsDegradedWithReasons) {
  health::ResetForTesting();
  StartServer();
  health::SetUnhealthy("stall_watchdog", "worker 3 stalled for 1200 ms");
  health::SetUnhealthy("dist_worker_1", "died on shard 4; not yet restarted");
  std::string body = BodyOf(Get(server_.bound_port(), "/healthz"));
  EXPECT_NE(body.find("\"status\":\"degraded\""), std::string::npos) << body;
  // Components are listed sorted, "; "-joined, each as "<component>: <why>".
  EXPECT_NE(body.find("dist_worker_1: died on shard 4; not yet restarted"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("stall_watchdog: worker 3 stalled for 1200 ms"),
            std::string::npos)
      << body;

  // Clearing one component keeps the other's reason; clearing both
  // restores "ok" — the recovered-worker / restarted-watchdog path.
  health::SetHealthy("stall_watchdog");
  body = BodyOf(Get(server_.bound_port(), "/healthz"));
  EXPECT_NE(body.find("\"status\":\"degraded\""), std::string::npos) << body;
  EXPECT_EQ(body.find("stall_watchdog"), std::string::npos) << body;
  health::SetHealthy("dist_worker_1");
  EXPECT_EQ(BodyOf(Get(server_.bound_port(), "/healthz")),
            "{\"status\":\"ok\"}\n");
}

TEST_F(StatuszTest, RegisteredEndpointIsServedAndReplaceable) {
  StartServer();
  RegisterEndpoint({"/probez", "application/json",
                    [] { return std::string("{\"v\":1}\n"); }});
  std::string response = Get(server_.bound_port(), "/probez");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_EQ(BodyOf(response), "{\"v\":1}\n");

  // Re-registering the same path replaces the handler (idempotent setup
  // for per-run endpoints like /clusterz).
  RegisterEndpoint({"/probez", "application/json",
                    [] { return std::string("{\"v\":2}\n"); }});
  EXPECT_EQ(BodyOf(Get(server_.bound_port(), "/probez")), "{\"v\":2}\n");
}

TEST_F(StatuszTest, MetricszServesExpositionWithBuildInfo) {
  run_record::PublishBuildInfoMetric();
  metrics::Registry::Global().GetCounter("statusz_test_counter").Add(3);
  StartServer();
  std::string response = Get(server_.bound_port(), "/metricsz");
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  std::string body = BodyOf(response);
  EXPECT_NE(body.find("# TYPE simj_build_info gauge"), std::string::npos);
  EXPECT_NE(body.find("simj_build_info{git_sha="), std::string::npos);
  EXPECT_NE(body.find("statusz_test_counter 3"), std::string::npos);
}

TEST_F(StatuszTest, StatuszCarriesBuildInfoAndSections) {
  StartServer({{"join", [] { return std::string("{\"probe\":42}"); }}});
  std::string response = Get(server_.bound_port(), "/statusz");
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  std::string body = BodyOf(response);
  EXPECT_NE(body.find("\"git_sha\":"), std::string::npos) << body;
  EXPECT_NE(body.find("\"build_type\":"), std::string::npos);
  EXPECT_NE(body.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"rss_bytes\":"), std::string::npos);
  EXPECT_NE(body.find("\"join\":{\"probe\":42}"), std::string::npos) << body;
}

TEST_F(StatuszTest, TracezListsRecentSpans) {
  StartServer();  // Start() arms the recent-span ring
  trace::SetThisThreadName("statusz-test-main");
  { trace::ScopedSpan span("tracez_probe_span", "test"); }
  std::string body = BodyOf(Get(server_.bound_port(), "/tracez"));
  EXPECT_NE(body.find("\"threads\":["), std::string::npos) << body;
  EXPECT_NE(body.find("\"name\":\"tracez_probe_span\""), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"statusz-test-main\""), std::string::npos) << body;
}

TEST_F(StatuszTest, UnknownPathIs404) {
  StartServer();
  EXPECT_NE(Get(server_.bound_port(), "/nope").find("HTTP/1.0 404"),
            std::string::npos);
}

TEST_F(StatuszTest, NonGetIs405) {
  StartServer();
  std::string response =
      RawRequest(server_.bound_port(), "POST /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 405"), std::string::npos) << response;
}

TEST_F(StatuszTest, MalformedRequestLineIs400) {
  StartServer();
  std::string response = RawRequest(server_.bound_port(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos) << response;
}

TEST_F(StatuszTest, StopIsIdempotentAndRestartable) {
  StartServer();
  int first_port = server_.bound_port();
  EXPECT_GT(first_port, 0);
  server_.Stop();
  server_.Stop();  // second stop is a no-op
  EXPECT_FALSE(server_.running());
  ASSERT_TRUE(server_.Start(Server::Options{}).ok());
  EXPECT_TRUE(server_.running());
}

TEST_F(StatuszTest, DoubleStartFails) {
  StartServer();
  EXPECT_FALSE(server_.Start(Server::Options{}).ok());
}

TEST_F(StatuszTest, ConcurrentScrapeDuringJoinLeavesResultsIdentical) {
  RandomJoinWorkload w = MakeRandomJoinWorkload(
      21, {.num_certain = 8, .num_uncertain = 8});
  core::SimJParams params;
  params.tau = 2;
  params.alpha = 0.3;
  params.group_count = 2;
  params.num_threads = 8;
  params.slow_pair_log_ms = 0.0;

  // Baseline: no server, no heartbeats.
  core::JoinResult baseline = core::SimJoin(w.d, w.u, params, w.dict);

  StartServer({{"join", [] {
                  return core::JoinProgress::Global().StatusJson();
                }}});
  core::JoinProgress::Global().RequestHeartbeats(true);
  const int port = server_.bound_port();

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string status = Get(port, "/statusz");
      EXPECT_NE(status.find("\"join\":{"), std::string::npos);
      EXPECT_NE(Get(port, "/metricsz").find("# TYPE"), std::string::npos);
      EXPECT_NE(Get(port, "/tracez").find("\"threads\""), std::string::npos);
      EXPECT_NE(BodyOf(Get(port, "/healthz")), "");
    }
  });
  core::JoinResult live = core::SimJoin(w.d, w.u, params, w.dict);
  stop.store(true, std::memory_order_release);
  scraper.join();
  core::JoinProgress::Global().RequestHeartbeats(false);

  ASSERT_EQ(baseline.pairs.size(), live.pairs.size());
  for (size_t i = 0; i < baseline.pairs.size(); ++i) {
    EXPECT_EQ(baseline.pairs[i].q_index, live.pairs[i].q_index);
    EXPECT_EQ(baseline.pairs[i].g_index, live.pairs[i].g_index);
    EXPECT_EQ(baseline.pairs[i].similarity_probability,
              live.pairs[i].similarity_probability);
    EXPECT_EQ(baseline.pairs[i].mapping, live.pairs[i].mapping);
  }
  EXPECT_EQ(baseline.stats.results, live.stats.results);
  EXPECT_EQ(baseline.stats.candidates, live.stats.candidates);
}

TEST_F(StatuszTest, ProfilezScrapeMidJoinLeavesResultsByteIdentical) {
  RandomJoinWorkload w = MakeRandomJoinWorkload(
      22, {.num_certain = 8, .num_uncertain = 8});
  core::SimJParams params;
  params.tau = 2;
  params.alpha = 0.3;
  params.group_count = 2;
  params.num_threads = 8;
  params.slow_pair_log_ms = 0.0;

  // Baseline: no server, no profiler.
  core::JoinResult baseline = core::SimJoin(w.d, w.u, params, w.dict);

  StartServer();
  trace::SetThisThreadName("statusz-test-main");  // registers a thread so
                                                  // /profilez can arm
  const int port = server_.bound_port();

  // Scrape /profilez repeatedly while the join runs on 8 threads. Each
  // capture arms the real SIGPROF machinery against the join workers; the
  // join results must not notice. Builds where arming is refused (TSan)
  // answer 503 — the scrape must still be harmless.
  std::atomic<bool> stop{false};
  std::atomic<int> captures{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string response =
          Get(port, "/profilez?seconds=0.05&hz=500&format=json");
      if (response.find("HTTP/1.0 200 OK") != std::string::npos) {
        EXPECT_NE(BodyOf(response).find("\"schema\":\"simj_profile_v1\""),
                  std::string::npos)
            << response;
        captures.fetch_add(1, std::memory_order_relaxed);
      } else {
        // 503: profiler refused (sanitizer build). 409 cannot happen —
        // this is the only caller — but either way never a crash.
        EXPECT_NE(response.find("HTTP/1.0 503"), std::string::npos)
            << response;
      }
    }
  });
  core::JoinResult live = core::SimJoin(w.d, w.u, params, w.dict);
  stop.store(true, std::memory_order_release);
  scraper.join();

  ASSERT_EQ(baseline.pairs.size(), live.pairs.size());
  for (size_t i = 0; i < baseline.pairs.size(); ++i) {
    EXPECT_EQ(baseline.pairs[i].q_index, live.pairs[i].q_index);
    EXPECT_EQ(baseline.pairs[i].g_index, live.pairs[i].g_index);
    EXPECT_EQ(baseline.pairs[i].similarity_probability,
              live.pairs[i].similarity_probability);
    EXPECT_EQ(baseline.pairs[i].mapping, live.pairs[i].mapping);
  }
  EXPECT_EQ(baseline.stats.results, live.stats.results);
  EXPECT_EQ(baseline.stats.candidates, live.stats.candidates);
}

// Both sampling profilers armed at once, mid-join: /profilez (SIGPROF
// machinery) and /heapz (operator new/delete countdown sampling) are
// independent subsystems, so concurrent captures must both succeed —
// or answer a clean 409/503 — and the join must stay byte-identical.
TEST_F(StatuszTest, ProfilezAndHeapzConcurrentMidJoinStayByteIdentical) {
  RandomJoinWorkload w = MakeRandomJoinWorkload(
      22, {.num_certain = 8, .num_uncertain = 8});
  core::SimJParams params;
  params.tau = 2;
  params.alpha = 0.3;
  params.group_count = 2;
  params.num_threads = 8;
  params.slow_pair_log_ms = 0.0;

  // Baseline: no server, neither profiler.
  core::JoinResult baseline = core::SimJoin(w.d, w.u, params, w.dict);

  StartServer();
  trace::SetThisThreadName("statusz-test-main");
  const int port = server_.bound_port();

  std::atomic<bool> stop{false};
  std::atomic<int> cpu_captures{0};
  std::atomic<int> heap_captures{0};
  auto scrape = [&](const std::string& path, const char* schema,
                    std::atomic<int>& captures) {
    while (!stop.load(std::memory_order_acquire)) {
      std::string response = Get(port, path);
      if (response.find("HTTP/1.0 200 OK") != std::string::npos) {
        EXPECT_NE(BodyOf(response).find(schema), std::string::npos)
            << response;
        captures.fetch_add(1, std::memory_order_relaxed);
      } else {
        // 503: the profiler refused to arm (sanitizer build). 409: a
        // previous capture of the same endpoint still draining. Either
        // is a clean refusal, never a crash or a corrupted join.
        EXPECT_TRUE(
            response.find("HTTP/1.0 503") != std::string::npos ||
            response.find("HTTP/1.0 409") != std::string::npos)
            << response;
      }
    }
  };
  std::thread cpu_scraper(
      scrape, "/profilez?seconds=0.05&hz=500&format=json",
      "\"schema\":\"simj_profile_v1\"", std::ref(cpu_captures));
  std::thread heap_scraper(
      scrape, "/heapz?seconds=0.05&sample_bytes=4096&format=json",
      "\"schema\":\"simj_heap_v1\"", std::ref(heap_captures));
  core::JoinResult live = core::SimJoin(w.d, w.u, params, w.dict);
  stop.store(true, std::memory_order_release);
  cpu_scraper.join();
  heap_scraper.join();

  ASSERT_EQ(baseline.pairs.size(), live.pairs.size());
  for (size_t i = 0; i < baseline.pairs.size(); ++i) {
    EXPECT_EQ(baseline.pairs[i].q_index, live.pairs[i].q_index);
    EXPECT_EQ(baseline.pairs[i].g_index, live.pairs[i].g_index);
    EXPECT_EQ(baseline.pairs[i].similarity_probability,
              live.pairs[i].similarity_probability);
    EXPECT_EQ(baseline.pairs[i].mapping, live.pairs[i].mapping);
  }
  EXPECT_EQ(baseline.stats.results, live.stats.results);
  EXPECT_EQ(baseline.stats.candidates, live.stats.candidates);
}

TEST_F(StatuszTest, HeapzCapturesOrRefusesCleanly) {
  StartServer();
  trace::SetThisThreadName("statusz-test-main");
  const int port = server_.bound_port();
  std::string response =
      Get(port, "/heapz?seconds=0.05&sample_bytes=4096&format=json");
  if (response.find("HTTP/1.0 200 OK") != std::string::npos) {
    std::string body = BodyOf(response);
    EXPECT_NE(body.find("\"schema\":\"simj_heap_v1\""), std::string::npos)
        << body;
    EXPECT_NE(body.find("\"sample_bytes\":4096"), std::string::npos) << body;
    // Folded output is plain text with the four trailing counters.
    std::string folded =
        Get(port, "/heapz?seconds=0.05&sample_bytes=4096&format=folded");
    EXPECT_NE(folded.find("HTTP/1.0 200 OK"), std::string::npos) << folded;
    EXPECT_NE(folded.find("Content-Type: text/plain"), std::string::npos);
  } else {
    // Sanitizer builds compile the hooks out; /heapz must refuse with
    // 503, not crash or hang.
    EXPECT_NE(response.find("HTTP/1.0 503"), std::string::npos) << response;
  }
}

TEST_F(StatuszTest, ProfilezValidatesItsQuery) {
  StartServer();
  const int port = server_.bound_port();
  // Unparseable parameters are a client error, not a capture attempt.
  EXPECT_NE(Get(port, "/profilez?seconds=abc").find("HTTP/1.0 400"),
            std::string::npos);
  EXPECT_NE(Get(port, "/profilez?hz=abc").find("HTTP/1.0 400"),
            std::string::npos);
  EXPECT_NE(Get(port, "/profilez?format=yaml").find("HTTP/1.0 400"),
            std::string::npos);
  // Query strings never leak into path matching for the other endpoints.
  EXPECT_NE(Get(port, "/healthz?x=1").find("HTTP/1.0 200"),
            std::string::npos);
}

TEST_F(StatuszTest, HeapzValidatesItsQuery) {
  StartServer();
  const int port = server_.bound_port();
  EXPECT_NE(Get(port, "/heapz?seconds=abc").find("HTTP/1.0 400"),
            std::string::npos);
  EXPECT_NE(Get(port, "/heapz?sample_bytes=abc").find("HTTP/1.0 400"),
            std::string::npos);
  EXPECT_NE(Get(port, "/heapz?format=yaml").find("HTTP/1.0 400"),
            std::string::npos);
}

}  // namespace
}  // namespace simj::statusz
