// Tests for the per-pair explain mode: handcrafted workloads force each
// pruning stage (index count bound, CSS structural, probabilistic Markov)
// and each verification outcome for a known pair, and the recorded
// PairExplain must name the right stage with the right evidence. Explain
// output must also be byte-identical at 1/2/8 threads.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/join.h"
#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"
#include "test_util.h"

namespace simj::core {
namespace {

using graph::LabelDictionary;
using graph::LabeledGraph;
using graph::UncertainGraph;

// One certain vertex with the given label.
LabeledGraph SingleVertex(graph::LabelId label) {
  LabeledGraph g;
  g.AddVertex(label);
  return g;
}

// One uncertain vertex with the given alternatives.
UncertainGraph SingleUncertainVertex(
    std::vector<graph::LabelAlternative> alternatives) {
  UncertainGraph g;
  g.AddVertex(std::move(alternatives));
  return g;
}

SimJParams ExplainAllParams(int tau, double alpha) {
  SimJParams params;
  params.tau = tau;
  params.alpha = alpha;
  params.explain.enabled = true;
  return params;
}

const PairExplain* FindExplain(const JoinResult& result, int q, int g) {
  for (const PairExplain& explain : result.explains) {
    if (explain.q_index == q && explain.g_index == g) return &explain;
  }
  return nullptr;
}

TEST(ExplainTest, StructuralPruneRecordsCssBound) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId b = dict.Intern("B");
  graph::LabelId r = dict.Intern("r");
  // q: a 3-vertex chain of Bs; g: a lone A vertex. The CSS bound has to
  // pay for the missing vertices and edges, so it exceeds tau = 0.
  LabeledGraph q;
  q.AddVertex(b);
  q.AddVertex(b);
  q.AddVertex(b);
  q.AddEdge(0, 1, r);
  q.AddEdge(1, 2, r);
  std::vector<LabeledGraph> d = {q};
  std::vector<UncertainGraph> u = {SingleUncertainVertex({{a, 1.0}})};

  JoinResult result = SimJoin(d, u, ExplainAllParams(/*tau=*/0, 0.5), dict);
  ASSERT_EQ(result.explains.size(), 1u);
  const PairExplain& explain = result.explains[0];
  EXPECT_EQ(explain.pruned_by, PruneStage::kStructural);
  EXPECT_GT(explain.css_lower_bound, 0);
  EXPECT_FALSE(explain.accepted);
  // The probabilistic stage never ran.
  EXPECT_EQ(explain.live_groups, -1);
  EXPECT_EQ(explain.worlds_enumerated, 0);
  EXPECT_NE(FormatExplain(explain, ExplainAllParams(0, 0.5))
                .find("PRUNED structural"),
            std::string::npos);
}

TEST(ExplainTest, ProbabilisticPruneRecordsUpperBound) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId c = dict.Intern("C");
  // q: vertex A; g: vertex that is A with prob 0.3. The structural bound
  // passes (the A world has GED 0) but the Markov bound 0.3 < alpha = 0.5.
  std::vector<LabeledGraph> d = {SingleVertex(a)};
  std::vector<UncertainGraph> u = {
      SingleUncertainVertex({{a, 0.3}, {c, 0.7}})};

  SimJParams params = ExplainAllParams(/*tau=*/0, /*alpha=*/0.5);
  JoinResult result = SimJoin(d, u, params, dict);
  ASSERT_EQ(result.explains.size(), 1u);
  const PairExplain& explain = result.explains[0];
  EXPECT_EQ(explain.pruned_by, PruneStage::kProbabilistic);
  EXPECT_EQ(explain.css_lower_bound, 0);
  EXPECT_NEAR(explain.simp_upper_bound, 0.3, 1e-9);
  EXPECT_EQ(explain.live_groups, 1);
  EXPECT_EQ(explain.worlds_enumerated, 0);  // never verified
  EXPECT_NE(FormatExplain(explain, params).find("PRUNED probabilistic"),
            std::string::npos);
}

TEST(ExplainTest, AcceptedPairRecordsVerificationEvidence) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId c = dict.Intern("C");
  std::vector<LabeledGraph> d = {SingleVertex(a)};
  std::vector<UncertainGraph> u = {
      SingleUncertainVertex({{a, 0.8}, {c, 0.2}})};

  SimJParams params = ExplainAllParams(/*tau=*/0, /*alpha=*/0.5);
  JoinResult result = SimJoin(d, u, params, dict);
  ASSERT_EQ(result.pairs.size(), 1u);
  ASSERT_EQ(result.explains.size(), 1u);
  const PairExplain& explain = result.explains[0];
  EXPECT_EQ(explain.pruned_by, PruneStage::kNone);
  EXPECT_TRUE(explain.accepted);
  EXPECT_GE(explain.simp_probability, 0.5);
  EXPECT_TRUE(explain.early_accept);
  EXPECT_GT(explain.worlds_enumerated, 0);
  EXPECT_EQ(explain.best_world_ged, 0);
  EXPECT_NE(FormatExplain(explain, params).find("ACCEPT"), std::string::npos);
}

TEST(ExplainTest, RejectedPairRecordsVerificationEvidence) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId c = dict.Intern("C");
  std::vector<LabeledGraph> d = {SingleVertex(a)};
  std::vector<UncertainGraph> u = {
      SingleUncertainVertex({{a, 0.4}, {c, 0.6}})};

  // Disable the probabilistic filter so the pair reaches verification and
  // fails there (SimP = 0.4 < 0.5).
  SimJParams params = ExplainAllParams(/*tau=*/0, /*alpha=*/0.5);
  params.probabilistic_pruning = false;
  JoinResult result = SimJoin(d, u, params, dict);
  EXPECT_TRUE(result.pairs.empty());
  ASSERT_EQ(result.explains.size(), 1u);
  const PairExplain& explain = result.explains[0];
  EXPECT_EQ(explain.pruned_by, PruneStage::kNone);
  EXPECT_FALSE(explain.accepted);
  // The most probable world (C, 0.6) is bound-pruned first, after which the
  // remaining 0.4 cannot reach alpha: early reject with SimP still below it.
  EXPECT_LT(explain.simp_probability, 0.5);
  EXPECT_TRUE(explain.early_reject);
  EXPECT_GT(explain.worlds_enumerated, 0);
  EXPECT_NE(FormatExplain(explain, params).find("REJECT"), std::string::npos);
}

TEST(ExplainTest, IndexSkipRecordsIndexCountStage) {
  LabelDictionary dict;
  graph::LabelId a = dict.Intern("A");
  graph::LabelId b = dict.Intern("B");
  graph::LabelId r = dict.Intern("r");
  // D holds a matching singleton and a 5-vertex chain; with tau = 0 the
  // index's count bound skips the chain before any per-pair filter runs.
  LabeledGraph chain;
  for (int i = 0; i < 5; ++i) chain.AddVertex(b);
  for (int i = 0; i + 1 < 5; ++i) chain.AddEdge(i, i + 1, r);
  std::vector<LabeledGraph> d = {SingleVertex(a), chain};
  std::vector<UncertainGraph> u = {SingleUncertainVertex({{a, 1.0}})};

  SimJParams params = ExplainAllParams(/*tau=*/0, /*alpha=*/0.5);
  JoinResult result = IndexedSimJoin(d, u, params, dict);
  ASSERT_EQ(result.pairs.size(), 1u);
  ASSERT_EQ(result.explains.size(), 2u);
  const PairExplain* skipped = FindExplain(result, 1, 0);
  ASSERT_NE(skipped, nullptr);
  EXPECT_EQ(skipped->pruned_by, PruneStage::kIndexCount);
  // The skipped pair never reached the filters.
  EXPECT_EQ(skipped->css_lower_bound, -1);
  const PairExplain* kept = FindExplain(result, 0, 0);
  ASSERT_NE(kept, nullptr);
  EXPECT_TRUE(kept->accepted);
  EXPECT_NE(FormatExplain(*skipped, params).find("PRUNED index-count"),
            std::string::npos);
}

TEST(ExplainTest, SampleEveryAndPairListSelectDeterministically) {
  ExplainOptions options;
  options.enabled = true;
  options.sample_every = 3;
  int selected = 0;
  for (int q = 0; q < 10; ++q) {
    for (int g = 0; g < 10; ++g) {
      if (options.ShouldExplain(q, g)) ++selected;
      // Pure function: asking twice gives the same answer.
      EXPECT_EQ(options.ShouldExplain(q, g), options.ShouldExplain(q, g));
    }
  }
  EXPECT_GT(selected, 0);
  EXPECT_LT(selected, 100);

  ExplainOptions listed;
  listed.enabled = true;
  listed.pairs = {{2, 5}, {7, 1}};
  EXPECT_TRUE(listed.ShouldExplain(2, 5));
  EXPECT_TRUE(listed.ShouldExplain(7, 1));
  EXPECT_FALSE(listed.ShouldExplain(5, 2));

  ExplainOptions disabled;
  EXPECT_FALSE(disabled.ShouldExplain(0, 0));
}

TEST(ExplainTest, ExplainOutputIdenticalAcrossThreadCounts) {
  workload::SyntheticDataset data = testing::MakeTinySyntheticDataset(
      /*seed=*/321, /*num_certain=*/8, /*num_uncertain=*/8);
  SimJParams params;
  params.tau = 2;
  params.alpha = 0.5;
  params.group_count = 4;
  params.explain.enabled = true;

  params.num_threads = 1;
  JoinResult serial = SimJoin(data.certain, data.uncertain, params, data.dict);
  ASSERT_FALSE(serial.explains.empty());
  std::string serial_text = FormatExplains(serial, params);

  for (int threads : {2, 8}) {
    params.num_threads = threads;
    JoinResult parallel =
        SimJoin(data.certain, data.uncertain, params, data.dict);
    EXPECT_EQ(FormatExplains(parallel, params), serial_text)
        << "threads=" << threads;
    ASSERT_EQ(parallel.explains.size(), serial.explains.size());
    for (size_t i = 0; i < serial.explains.size(); ++i) {
      EXPECT_EQ(parallel.explains[i].pruned_by, serial.explains[i].pruned_by);
      EXPECT_EQ(parallel.explains[i].worlds_enumerated,
                serial.explains[i].worlds_enumerated);
    }
  }
}

TEST(ExplainTest, DisabledExplainLeavesResultEmpty) {
  workload::SyntheticDataset data =
      testing::MakeTinySyntheticDataset(/*seed=*/322);
  SimJParams params;
  params.tau = 1;
  params.alpha = 0.5;
  JoinResult result = SimJoin(data.certain, data.uncertain, params, data.dict);
  EXPECT_TRUE(result.explains.empty());
}

TEST(ExplainTest, WallSecondsMeasuredOnceAndCpuSecondsSum) {
  workload::SyntheticDataset data =
      testing::MakeTinySyntheticDataset(/*seed=*/323);
  SimJParams params;
  params.tau = 2;
  params.alpha = 0.5;
  params.num_threads = 4;
  JoinResult result = SimJoin(data.certain, data.uncertain, params, data.dict);
  EXPECT_GT(result.stats.wall_seconds, 0.0);
  EXPECT_GE(result.stats.TotalCpuSeconds(), 0.0);
  // Merging per-thread stats must leave wall_seconds untouched.
  JoinStats merged;
  MergeJoinStats(result.stats, &merged);
  EXPECT_DOUBLE_EQ(merged.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(merged.pruning_cpu_seconds,
                   result.stats.pruning_cpu_seconds);
}

}  // namespace
}  // namespace simj::core
