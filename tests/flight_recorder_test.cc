// Tests for the coordinator flight recorder (util/flight_recorder.h) and
// its replay checker (dist/clusterz.h): ring bounding with drop counting,
// byte-deterministic JSON rendering, Clear() semantics, and
// ReplayFinalAssignment acceptance of coordinator-shaped event sequences /
// rejection of transitions the real coordinator could not have produced.

#include "util/flight_recorder.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/clusterz.h"

namespace simj::flight {
namespace {

Event MakeEvent(const std::string& type, int worker = -1, int shard = -1,
                int attempt = -1, const std::string& detail = "") {
  Event event;
  event.type = type;
  event.worker = worker;
  event.shard = shard;
  event.attempt = attempt;
  event.detail = detail;
  return event;
}

TEST(FlightRecorderTest, RecordStampsMonotoneSeqAndTimestamps) {
  FlightRecorder recorder(/*capacity=*/16);
  recorder.Record(MakeEvent("deal", 0, 0));
  recorder.Record(MakeEvent("dispatch", 0, 0, 0));
  recorder.Record(MakeEvent("complete", 0, 0, 0));
  std::vector<Event> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0);
  EXPECT_EQ(events[1].seq, 1);
  EXPECT_EQ(events[2].seq, 2);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[1].ts_us, events[2].ts_us);
  EXPECT_EQ(recorder.dropped(), 0);
}

TEST(FlightRecorderTest, RingDropsOldestWhenFull) {
  FlightRecorder recorder(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(MakeEvent("deal", /*worker=*/i % 2, /*shard=*/i));
  }
  std::vector<Event> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6);
  // The survivors are the newest four, still oldest-first, and their seq
  // numbers kept counting across the drops.
  EXPECT_EQ(events.front().shard, 6);
  EXPECT_EQ(events.front().seq, 6);
  EXPECT_EQ(events.back().shard, 9);
  EXPECT_EQ(events.back().seq, 9);
}

TEST(FlightRecorderTest, ClearResetsSeqAndDropped) {
  FlightRecorder recorder(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) recorder.Record(MakeEvent("deal"));
  EXPECT_EQ(recorder.dropped(), 3);
  recorder.Clear();
  EXPECT_TRUE(recorder.Events().empty());
  EXPECT_EQ(recorder.dropped(), 0);
  recorder.Record(MakeEvent("deal"));
  EXPECT_EQ(recorder.Events().front().seq, 0);
}

TEST(FlightRecorderTest, EventsJsonIsByteDeterministic) {
  // Hand-built events (not via Record) so seq/ts are fixed and the
  // rendering can be golden-checked byte for byte.
  Event a;
  a.seq = 0;
  a.ts_us = 12.5;
  a.type = "steal";
  a.worker = 1;
  a.shard = 3;
  a.attempt = 0;
  a.detail = "victim=2";
  Event b;
  b.seq = 1;
  b.ts_us = 99.0;
  b.type = "requeue";
  b.worker = 2;
  b.shard = 3;
  b.attempt = 1;
  b.detail = "injected \"death\"";  // quotes must be escaped
  const std::string json = EventsJson({a, b}, /*dropped=*/7);
  EXPECT_EQ(json,
            "{\"schema\":\"simj_flight_v1\",\"dropped\":7,\"events\":["
            "{\"seq\":0,\"ts_us\":12.500,\"type\":\"steal\",\"worker\":1,"
            "\"shard\":3,\"attempt\":0,\"detail\":\"victim=2\"},"
            "{\"seq\":1,\"ts_us\":99.000,\"type\":\"requeue\",\"worker\":2,"
            "\"shard\":3,\"attempt\":1,"
            "\"detail\":\"injected \\\"death\\\"\"}]}\n");
}

TEST(FlightRecorderTest, ToJsonRendersEmptyRing) {
  FlightRecorder recorder(4);
  EXPECT_EQ(recorder.ToJson(),
            "{\"schema\":\"simj_flight_v1\",\"dropped\":0,\"events\":[]}\n");
}

// --- ReplayFinalAssignment -------------------------------------------------
//
// The replay checker simulates the per-worker deques from the recorded
// events; sequences below are coordinator-shaped (deal -> dispatch/steal ->
// complete/requeue/fallback).

using simj::dist::ReplayFinalAssignment;

TEST(ReplayTest, DealDispatchCompleteAssignsWorker) {
  std::vector<Event> events;
  events.push_back(MakeEvent("deal", 0, 0));
  events.push_back(MakeEvent("deal", 1, 1));
  events.push_back(MakeEvent("dispatch", 0, 0, 0));
  events.push_back(MakeEvent("dispatch", 1, 1, 0));
  events.push_back(MakeEvent("complete", 0, 0, 0));
  events.push_back(MakeEvent("complete", 1, 1, 0));
  auto assignment = ReplayFinalAssignment(events, 2);
  ASSERT_TRUE(assignment.ok()) << assignment.status().message();
  EXPECT_EQ(assignment.value(), (std::vector<int>{0, 1}));
}

TEST(ReplayTest, StealMovesShardToThief) {
  std::vector<Event> events;
  // Both shards dealt to worker 0; worker 1 steals from the BACK.
  events.push_back(MakeEvent("deal", 0, 0));
  events.push_back(MakeEvent("deal", 0, 1));
  events.push_back(MakeEvent("steal", 1, 1, 0, "victim=0"));
  events.push_back(MakeEvent("dispatch", 0, 0, 0));
  events.push_back(MakeEvent("complete", 1, 1, 0));
  events.push_back(MakeEvent("complete", 0, 0, 0));
  auto assignment = ReplayFinalAssignment(events, 2);
  ASSERT_TRUE(assignment.ok()) << assignment.status().message();
  EXPECT_EQ(assignment.value(), (std::vector<int>{0, 1}));
}

TEST(ReplayTest, RequeueThenRetryAndFallback) {
  std::vector<Event> events;
  events.push_back(MakeEvent("deal", 0, 0));
  events.push_back(MakeEvent("deal", 1, 1));
  // Shard 0 dies on worker 0, is requeued, retried, and completes.
  events.push_back(MakeEvent("dispatch", 0, 0, 0));
  events.push_back(MakeEvent("requeue", 0, 0, 0, "injected death"));
  events.push_back(MakeEvent("restart", 0));
  events.push_back(MakeEvent("dispatch", 0, 0, 1));
  events.push_back(MakeEvent("complete", 0, 0, 1));
  // Shard 1 never dispatches; the coordinator runs it inline.
  events.push_back(MakeEvent("fallback", -1, 1));
  auto assignment = ReplayFinalAssignment(events, 2);
  ASSERT_TRUE(assignment.ok()) << assignment.status().message();
  EXPECT_EQ(assignment.value(), (std::vector<int>{0, -1}));
}

TEST(ReplayTest, RejectsDispatchOfNonFrontShard) {
  std::vector<Event> events;
  events.push_back(MakeEvent("deal", 0, 0));
  events.push_back(MakeEvent("deal", 0, 1));
  // Worker 0's queue front is shard 0; dispatching shard 1 first is a
  // transition the real coordinator cannot produce.
  events.push_back(MakeEvent("dispatch", 0, 1, 0));
  EXPECT_FALSE(ReplayFinalAssignment(events, 2).ok());
}

TEST(ReplayTest, RejectsStealOfNonBackShard) {
  std::vector<Event> events;
  events.push_back(MakeEvent("deal", 0, 0));
  events.push_back(MakeEvent("deal", 0, 1));
  // Steals pop the victim's BACK (shard 1 here), not its front.
  events.push_back(MakeEvent("steal", 1, 0, 0, "victim=0"));
  EXPECT_FALSE(ReplayFinalAssignment(events, 2).ok());
}

TEST(ReplayTest, RejectsCompleteWithoutDispatch) {
  std::vector<Event> events;
  events.push_back(MakeEvent("deal", 0, 0));
  events.push_back(MakeEvent("complete", 0, 0, 0));
  EXPECT_FALSE(ReplayFinalAssignment(events, 1).ok());
}

TEST(ReplayTest, RejectsUnfinishedShard) {
  std::vector<Event> events;
  events.push_back(MakeEvent("deal", 0, 0));
  events.push_back(MakeEvent("dispatch", 0, 0, 0));
  // No complete/fallback: the replay must refuse to call this final.
  EXPECT_FALSE(ReplayFinalAssignment(events, 1).ok());
}

TEST(ReplayTest, DuplicateCompletionIsDiscardedNotDoubleAssigned) {
  std::vector<Event> events;
  events.push_back(MakeEvent("deal", 0, 0));
  events.push_back(MakeEvent("dispatch", 0, 0, 0));
  // Presumed-lost execution requeued, stolen and completed by worker 1,
  // then the original completion arrives late and is discarded.
  events.push_back(MakeEvent("requeue", 0, 0, 0, "stall"));
  events.push_back(MakeEvent("steal", 1, 0, 1, "victim=0"));
  events.push_back(MakeEvent("complete", 1, 0, 1));
  events.push_back(MakeEvent("duplicate", 0, 0, 0));
  auto assignment = ReplayFinalAssignment(events, 1);
  ASSERT_TRUE(assignment.ok()) << assignment.status().message();
  EXPECT_EQ(assignment.value(), (std::vector<int>{1}));
}

}  // namespace
}  // namespace simj::flight
