#include <gtest/gtest.h>

#include "graph/label.h"
#include "nlp/dependency.h"
#include "nlp/lexicon.h"
#include "nlp/semantic_graph.h"
#include "nlp/uncertain_builder.h"
#include "util/rng.h"

namespace simj::nlp {
namespace {

class NlpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    politician = dict.Intern("Politician");
    actor = dict.Intern("Actor");
    university = dict.Intern("University");
    company = dict.Intern("Company");
    city = dict.Intern("City");
    grad = dict.Intern("graduatedFrom");
    born = dict.Intern("birthPlace");
    located = dict.Intern("locatedIn");
    cit_u = dict.Intern("CIT_University");
    cit_c = dict.Intern("CIT_Group");
    springfield = dict.Intern("Springfield_City");

    lexicon.AddClassPhrase("politician", ClassLink{politician, politician});
    lexicon.AddClassPhrase("actor", ClassLink{actor, actor});
    lexicon.AddClassPhrase("city", ClassLink{city, city});
    lexicon.AddRelationPhrase("graduated from", PredicateLink{grad, 0.9});
    lexicon.AddRelationPhrase("born in", PredicateLink{born, 0.9});
    lexicon.AddRelationPhrase("located in", PredicateLink{located, 0.9});
    lexicon.AddEntityPhrase("cit", EntityLink{cit_u, university, 0.8});
    lexicon.AddEntityPhrase("cit", EntityLink{cit_c, company, 0.2});
    lexicon.AddEntityPhrase("springfield", EntityLink{springfield, city, 1.0});
  }

  graph::LabelDictionary dict;
  Lexicon lexicon;
  graph::LabelId politician, actor, university, company, city;
  graph::LabelId grad, born, located;
  rdf::TermId cit_u, cit_c, springfield;
};

TEST_F(NlpFixture, LexiconSortsByConfidence) {
  const std::vector<EntityLink>* links = lexicon.FindEntity("CIT");
  ASSERT_NE(links, nullptr);
  ASSERT_EQ(links->size(), 2u);
  EXPECT_EQ((*links)[0].entity, cit_u);
  EXPECT_GT((*links)[0].confidence, (*links)[1].confidence);
}

TEST_F(NlpFixture, MaxRelationTokensTracksLongestPhrase) {
  EXPECT_EQ(lexicon.max_relation_tokens(), 2);
}

TEST(NormalizeTest, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(NormalizeQuestion("Which Politician graduated from CIT?"),
            (std::vector<std::string>{"which", "politician", "graduated",
                                      "from", "cit"}));
}

TEST_F(NlpFixture, ParsesSimpleQuestion) {
  auto parsed = ParseQuestion("Which politician graduated from CIT?", lexicon);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->wh_argument, 0);
  ASSERT_EQ(parsed->graph.arguments.size(), 2u);
  EXPECT_TRUE(parsed->graph.arguments[0].is_variable);
  EXPECT_EQ(parsed->graph.arguments[0].phrase, "politician");
  EXPECT_EQ(parsed->graph.arguments[1].phrase, "cit");
  ASSERT_EQ(parsed->graph.relations.size(), 1u);
  EXPECT_EQ(parsed->graph.relations[0].phrase, "graduated from");
}

TEST_F(NlpFixture, ParsesStarQuestion) {
  auto parsed = ParseQuestion(
      "Which politician graduated from CIT and born in Springfield?",
      lexicon);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->graph.relations.size(), 2u);
  // Both relations attach to the wh-argument.
  EXPECT_EQ(parsed->graph.relations[0].arg1, 0);
  EXPECT_EQ(parsed->graph.relations[1].arg1, 0);
}

TEST_F(NlpFixture, ParsesChainQuestion) {
  auto parsed = ParseQuestion(
      "Which politician born in the city that located in Springfield?",
      lexicon);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->graph.relations.size(), 2u);
  // Second relation attaches to the chain intermediate ("city").
  int intermediate = parsed->graph.relations[0].arg2;
  EXPECT_TRUE(parsed->graph.arguments[intermediate].is_variable);
  EXPECT_EQ(parsed->graph.arguments[intermediate].phrase, "city");
  EXPECT_EQ(parsed->graph.relations[1].arg1, intermediate);
}

TEST_F(NlpFixture, PluralClassPhrasesResolve) {
  EXPECT_NE(lexicon.FindClass("politicians"), nullptr);
  EXPECT_NE(lexicon.FindClass("cities"), nullptr);
  EXPECT_EQ(lexicon.FindClass("cities")->label, city);
  EXPECT_EQ(lexicon.FindClass("politicianss"), nullptr);

  auto parsed =
      ParseQuestion("Give me all politicians born in Springfield?", lexicon);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->graph.arguments[0].phrase, "politicians");
}

TEST_F(NlpFixture, ParsesGiveMeAllHead) {
  auto parsed =
      ParseQuestion("Give me all actor born in Springfield?", lexicon);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->graph.arguments[0].phrase, "actor");
}

TEST_F(NlpFixture, ParsesWhoHeadWithoutClass) {
  auto parsed = ParseQuestion("Who graduated from CIT?", lexicon);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->graph.arguments[0].phrase.empty());
}

TEST_F(NlpFixture, ToleratesCopulaBeforeRelation) {
  lexicon.AddRelationPhrase("married to",
                            PredicateLink{dict.Intern("spouse"), 0.9});
  auto parsed =
      ParseQuestion("Which actor is married to Springfield?", lexicon);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->graph.relations[0].phrase, "married to");
}

TEST_F(NlpFixture, FailsOnUnknownRelation) {
  auto parsed = ParseQuestion("Which politician frobnicated CIT?", lexicon);
  EXPECT_FALSE(parsed.ok());
}

TEST_F(NlpFixture, FailsOnUnlinkableArgument) {
  auto parsed =
      ParseQuestion("Which politician graduated from Nowhere?", lexicon);
  EXPECT_FALSE(parsed.ok());
}

TEST_F(NlpFixture, TrapPhraseWithConnectorFailsNaturally) {
  // "harold and maude" is one entity, but the parser segments at "and" —
  // the paper's own failure example.
  lexicon.AddEntityPhrase("harold and maude",
                          EntityLink{dict.Intern("Harold_and_Maude"),
                                     dict.Intern("Film"), 1.0});
  auto parsed =
      ParseQuestion("Which actor born in harold and maude?", lexicon);
  EXPECT_FALSE(parsed.ok());
}

TEST_F(NlpFixture, BuildsUncertainGraph) {
  auto parsed = ParseQuestion("Which politician graduated from CIT?", lexicon);
  ASSERT_TRUE(parsed.ok());
  auto ugraph = BuildUncertainGraph(*parsed, lexicon, dict);
  ASSERT_TRUE(ugraph.ok()) << ugraph.status().ToString();
  // Vertices: ?x, Politician (class), CIT (uncertain). Edges: type, grad.
  EXPECT_EQ(ugraph->graph.num_vertices(), 3);
  EXPECT_EQ(ugraph->graph.num_edges(), 2);
  EXPECT_EQ(ugraph->wh_vertex, 0);
  EXPECT_TRUE(ugraph->vertex_is_variable[0]);
  const auto& alts = ugraph->graph.alternatives(2);
  ASSERT_EQ(alts.size(), 2u);
  EXPECT_EQ(alts[0].label, university);
  EXPECT_NEAR(alts[0].prob, 0.8, 1e-9);
  EXPECT_EQ(ugraph->graph.NumPossibleWorlds(), 2);
}

TEST_F(NlpFixture, UncertainGraphUsesTopPredicate) {
  // Give "graduated from" a competing predicate with higher confidence.
  graph::LabelId studied = dict.Intern("studiedAt");
  lexicon.AddRelationPhrase("graduated from", PredicateLink{studied, 0.95});
  auto parsed = ParseQuestion("Which politician graduated from CIT?", lexicon);
  ASSERT_TRUE(parsed.ok());
  auto ugraph = BuildUncertainGraph(*parsed, lexicon, dict);
  ASSERT_TRUE(ugraph.ok());
  bool found = false;
  for (const graph::Edge& e : ugraph->graph.edges()) {
    if (e.label == studied) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(NlpFixture, DependencyTreeShape) {
  auto parsed = ParseQuestion(
      "Which politician graduated from CIT and born in Springfield?",
      lexicon);
  ASSERT_TRUE(parsed.ok());
  DepTree tree = BuildQuestionTree(*parsed);
  // Nodes: 3 arguments + 2 relations.
  EXPECT_EQ(tree.size(), 5);
  // Root is the wh-argument and governs both relation nodes.
  EXPECT_EQ(tree.nodes[tree.root].label, "politician");
  EXPECT_EQ(tree.nodes[tree.root].children.size(), 2u);
}

TEST_F(NlpFixture, SlottedTreeReplacesPhrases) {
  auto parsed = ParseQuestion("Which politician graduated from CIT?", lexicon);
  ASSERT_TRUE(parsed.ok());
  DepTree tree = BuildQuestionTree(*parsed);
  DepTree slotted = SlottedTree(tree, {"politician", "cit"});
  int slots = 0;
  for (const DepTree::Node& node : slotted.nodes) {
    if (node.label == kSlotMarker) ++slots;
  }
  EXPECT_EQ(slots, 2);
  // Slotted tree matches the original at zero cost (slots are free).
  EXPECT_EQ(TreeEditDistance(tree, slotted), 0);
  // And matches a differently-instantiated question equally well.
  auto other = ParseQuestion("Which actor graduated from CIT?", lexicon);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(TreeEditDistance(BuildQuestionTree(*other), slotted), 0);
}

TEST(NormalizeTest, EdgeCases) {
  EXPECT_TRUE(NormalizeQuestion("").empty());
  EXPECT_TRUE(NormalizeQuestion("?!.,").empty());
  EXPECT_EQ(NormalizeQuestion("  A  B  "),
            (std::vector<std::string>{"a", "b"}));
}

TEST(TreeEditDistanceTest, IdenticalTreesAreZero) {
  DepTree t;
  t.nodes = {{"a", {1, 2}}, {"b", {}}, {"c", {}}};
  t.root = 0;
  EXPECT_EQ(TreeEditDistance(t, t), 0);
}

TEST(TreeEditDistanceTest, SingleRename) {
  DepTree a;
  a.nodes = {{"a", {1}}, {"b", {}}};
  a.root = 0;
  DepTree b = a;
  b.nodes[1].label = "x";
  EXPECT_EQ(TreeEditDistance(a, b), 1);
}

TEST(TreeEditDistanceTest, InsertionCostsOne) {
  DepTree a;
  a.nodes = {{"a", {}}};
  a.root = 0;
  DepTree b;
  b.nodes = {{"a", {1}}, {"b", {}}};
  b.root = 0;
  EXPECT_EQ(TreeEditDistance(a, b), 1);
  EXPECT_EQ(TreeEditDistance(b, a), 1);
}

TEST(TreeEditDistanceTest, SlotMatchesAnyLabel) {
  DepTree a;
  a.nodes = {{"a", {1}}, {kSlotMarker, {}}};
  a.root = 0;
  DepTree b;
  b.nodes = {{"a", {1}}, {"anything", {}}};
  b.root = 0;
  EXPECT_EQ(TreeEditDistance(a, b), 0);
}

TEST(TreeEditDistanceTest, MetricPropertiesOnRandomTrees) {
  Rng rng(31);
  auto random_tree = [&](int n) {
    DepTree t;
    for (int i = 0; i < n; ++i) {
      t.nodes.push_back(
          {std::string(1, static_cast<char>('a' + rng.Uniform(0, 3))), {}});
      if (i > 0) {
        int parent = static_cast<int>(rng.Uniform(0, i - 1));
        t.nodes[parent].children.push_back(i);
      }
    }
    t.root = 0;
    return t;
  };
  for (int trial = 0; trial < 30; ++trial) {
    DepTree x = random_tree(static_cast<int>(rng.Uniform(1, 6)));
    DepTree y = random_tree(static_cast<int>(rng.Uniform(1, 6)));
    DepTree z = random_tree(static_cast<int>(rng.Uniform(1, 6)));
    int xy = TreeEditDistance(x, y);
    EXPECT_EQ(xy, TreeEditDistance(y, x));
    EXPECT_EQ(TreeEditDistance(x, x), 0);
    EXPECT_LE(xy, TreeEditDistance(x, z) + TreeEditDistance(z, y));
    EXPECT_LE(std::abs(x.size() - y.size()), xy);
    EXPECT_LE(xy, x.size() + y.size());
  }
}

TEST_F(NlpFixture, FuzzedQuestionsNeverCrash) {
  Rng rng(77);
  const char* words[] = {"which", "who",   "give",      "me",   "all",
                         "that",  "and",   "politician", "city", "cit",
                         "from",  "born",  "in",        "graduated",
                         "located", "the", "is",        "?",    "springfield"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string question;
    int tokens = static_cast<int>(rng.Uniform(0, 10));
    for (int t = 0; t < tokens; ++t) {
      question += words[rng.Uniform(0, std::size(words) - 1)];
      question += ' ';
    }
    StatusOr<ParsedQuestion> parsed = ParseQuestion(question, lexicon);
    if (parsed.ok()) {
      // Anything that parses must survive the downstream pipeline.
      StatusOr<UncertainQuestionGraph> graph =
          BuildUncertainGraph(*parsed, lexicon, dict);
      if (graph.ok()) {
        EXPECT_GT(graph->graph.num_vertices(), 0);
        EXPECT_GT(graph->graph.TotalMass(), 0.0);
      }
      DepTree tree = BuildQuestionTree(*parsed);
      EXPECT_GE(tree.root, 0);
      EXPECT_EQ(TreeEditDistance(tree, tree), 0);
    }
  }
}

TEST(AlignTokensTest, ExactMatchHasZeroCost) {
  auto alignment = AlignTokens({"which", "actor"}, 0, {"which", "actor"});
  ASSERT_TRUE(alignment.has_value());
  EXPECT_EQ(alignment->cost, 0);
  EXPECT_DOUBLE_EQ(alignment->matching_proportion, 1.0);
}

TEST(AlignTokensTest, SlotCapturesMultiwordPhrase) {
  auto alignment =
      AlignTokens({"which", "<slot0>", "graduated", "from", "<slot1>"}, 2,
                  {"which", "famous", "politician", "graduated", "from",
                   "cit"});
  ASSERT_TRUE(alignment.has_value());
  EXPECT_EQ(alignment->cost, 0);
  EXPECT_EQ(alignment->slot_phrases[0], "famous politician");
  EXPECT_EQ(alignment->slot_phrases[1], "cit");
  EXPECT_DOUBLE_EQ(alignment->matching_proportion, 1.0);
}

TEST(AlignTokensTest, InsertionsLowerPhi) {
  // The tail "and married to someone" cannot be absorbed by the slot
  // (slots capture at most 3 tokens), so it costs insertions and phi drops.
  auto alignment = AlignTokens(
      {"which", "<slot0>", "born", "in", "<slot1>"}, 2,
      {"which", "actor", "born", "in", "paris", "and", "married", "to",
       "someone"});
  ASSERT_TRUE(alignment.has_value());
  EXPECT_GT(alignment->cost, 0);
  EXPECT_LT(alignment->matching_proportion, 1.0);
  EXPECT_EQ(alignment->slot_phrases[0], "actor");
}

TEST(AlignTokensTest, SlotMustCaptureSomething) {
  EXPECT_FALSE(AlignTokens({"<slot0>"}, 1, {}).has_value());
}

TEST(AlignTokensTest, ValidatorRestrictsSlotSpans) {
  std::function<bool(const std::string&)> only_paris =
      [](const std::string& span) { return span == "paris"; };
  auto alignment =
      AlignTokens({"born", "in", "<slot0>"}, 1,
                  {"born", "in", "paris", "france"}, &only_paris);
  ASSERT_TRUE(alignment.has_value());
  EXPECT_EQ(alignment->slot_phrases[0], "paris");
  EXPECT_EQ(alignment->cost, 1);  // "france" inserted

  std::function<bool(const std::string&)> nothing =
      [](const std::string&) { return false; };
  // With no valid span the slot must be deleted (cost) or the alignment
  // rejected when the slot never captures.
  EXPECT_FALSE(AlignTokens({"born", "in", "<slot0>"}, 1,
                           {"born", "in", "paris"}, &nothing)
                   .has_value());
}

TEST(AlignTokensTest, SubstitutionCost) {
  auto alignment = AlignTokens({"which", "actor"}, 0, {"which", "singer"});
  ASSERT_TRUE(alignment.has_value());
  EXPECT_EQ(alignment->cost, 1);
}

}  // namespace
}  // namespace simj::nlp
