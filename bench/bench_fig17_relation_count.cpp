// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Figure 17: effect of the number of relations k on recognition quality.
//
// The paper plots rho = (# correct patterns with k relations) / (# correct
// patterns) and observes that simple patterns are recognized best. We print
// rho and, additionally, the per-k recognition rate (fraction of questions
// with k relations that obtained a correct pair), which isolates the trend
// from the workload's k distribution.

#include <cstdio>
#include <set>

#include "bench_util.h"

namespace {

void RunDataset(const char* name, simj::bench::QaDataset& data) {
  simj::core::SimJParams params = simj::bench::ParamsFor(
      simj::bench::JoinConfig::kSimJ, /*tau=*/1, /*alpha=*/0.6);
  simj::core::JoinResult joined = simj::core::SimJoin(
      data.sides.d, data.sides.u, params, data.kb->dict());

  // Questions with at least one correct pair.
  std::set<int> correct_questions;
  for (const simj::core::MatchedPair& pair : joined.pairs) {
    int question_index = data.sides.u_question_index[pair.g_index];
    if (simj::workload::SameIntent(
            *data.kb, data.workload.sparql_queries[pair.q_index],
            data.workload.questions[question_index].gold_query)) {
      correct_questions.insert(question_index);
    }
  }

  constexpr int kMaxK = 5;
  int correct_by_k[kMaxK + 1] = {0};
  int total_by_k[kMaxK + 1] = {0};
  int total_correct = 0;
  for (size_t i = 0; i < data.workload.questions.size(); ++i) {
    int k = std::min(kMaxK, data.workload.questions[i].num_relations);
    ++total_by_k[k];
    if (correct_questions.contains(static_cast<int>(i))) {
      ++correct_by_k[k];
      ++total_correct;
    }
  }

  std::printf("\n%s: %d questions recognized correctly\n", name,
              total_correct);
  std::printf("%4s %10s %10s %12s %14s\n", "k", "questions", "correct",
              "rho(%)", "per-k rate(%)");
  for (int k = 1; k <= kMaxK; ++k) {
    if (total_by_k[k] == 0) continue;
    double rho = total_correct > 0
                     ? 100.0 * correct_by_k[k] / total_correct
                     : 0.0;
    double rate = 100.0 * correct_by_k[k] / total_by_k[k];
    std::printf("%4d %10d %10d %11.1f%% %13.1f%%\n", k, total_by_k[k],
                correct_by_k[k], rho, rate);
  }
}

}  // namespace

int main(int argc, char** argv) {
  simj::bench::ParseBenchFlags(argc, argv);
  simj::bench::PrintHeader("Figure 17: effect of the number of relations k");
  {
    simj::bench::QaDataset qald = simj::bench::MakeQald3Like();
    RunDataset("QALD-3-like", qald);
  }
  {
    simj::bench::QaDataset webq = simj::bench::MakeWebQLike();
    RunDataset("WebQ-like", webq);
  }
  return 0;
}
