// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Table 2: statistics of the data sets.
//
// Paper values (for the real/full-scale datasets):
//   QALD3: |U|=200    avg|V|=5.73  avg|E|=4.51  avg|LV|=4.50  |D|=200
//   WebQ : |U|=5,810  avg|V|=6.15  avg|E|=5.14  avg|LV|=4.39  |D|=73,057
//   ER   : |U|=100,000 avg|V|=64.86 avg|E|=157.07 avg|LV|=9.39 |D|=100,000
//   SF   : |U|=100,000 avg|V|=63.35 avg|E|=88.61 avg|LV|=13.52 |D|=100,000
//   MM   : |U|=23,250 avg|V|=5.35  avg|E|=4.92  avg|LV|=4.21  |D|=2,500
// Our datasets are scaled down (DESIGN.md); this harness prints the same
// columns for the scaled instances.

#include <cstdio>

#include "bench_util.h"

namespace {

struct Stats {
  double avg_v = 0.0;
  double avg_e = 0.0;
  double avg_lv = 0.0;  // average candidate labels per uncertain vertex
};

Stats UncertainStats(const std::vector<simj::graph::UncertainGraph>& graphs) {
  Stats stats;
  int64_t vertices = 0;
  int64_t edges = 0;
  int64_t labels = 0;
  int64_t uncertain_vertices = 0;
  for (const auto& g : graphs) {
    vertices += g.num_vertices();
    edges += g.num_edges();
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (g.alternatives(v).size() > 1) {
        labels += static_cast<int64_t>(g.alternatives(v).size());
        ++uncertain_vertices;
      }
    }
  }
  if (!graphs.empty()) {
    stats.avg_v = static_cast<double>(vertices) / graphs.size();
    stats.avg_e = static_cast<double>(edges) / graphs.size();
  }
  if (uncertain_vertices > 0) {
    stats.avg_lv = static_cast<double>(labels) / uncertain_vertices;
  }
  return stats;
}

void PrintRow(const char* name, size_t u, const Stats& stats, size_t d) {
  std::printf("%-8s %8zu %8.2f %8.2f %8.2f %8zu\n", name, u, stats.avg_v,
              stats.avg_e, stats.avg_lv, d);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simj;
  bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Table 2: statistics of data sets (scaled instances)");
  std::printf("%-8s %8s %8s %8s %8s %8s\n", "Dataset", "|U|", "avg|V|",
              "avg|E|", "avg|LV|", "|D|");

  {
    bench::QaDataset qald = bench::MakeQald3Like();
    PrintRow("QALD3", qald.sides.u.size(), UncertainStats(qald.sides.u),
             qald.sides.d.size());
  }
  {
    bench::QaDataset webq = bench::MakeWebQLike();
    PrintRow("WebQ", webq.sides.u.size(), UncertainStats(webq.sides.u),
             webq.sides.d.size());
  }
  {
    workload::SyntheticConfig config;
    config.seed = 20;
    config.num_certain = 150;
    config.num_uncertain = 150;
    config.num_vertices = 12;
    config.num_edges = 24;
    config.labels_per_vertex = 3;
    workload::SyntheticDataset er = workload::MakeErDataset(config);
    PrintRow("ER", er.uncertain.size(), UncertainStats(er.uncertain),
             er.certain.size());
  }
  {
    workload::SyntheticConfig config;
    config.seed = 21;
    config.num_certain = 150;
    config.num_uncertain = 150;
    config.num_vertices = 12;
    config.num_edges = 18;
    config.labels_per_vertex = 4;
    workload::SyntheticDataset sf = workload::MakeSfDataset(config);
    PrintRow("SF", sf.uncertain.size(), UncertainStats(sf.uncertain),
             sf.certain.size());
  }
  {
    bench::QaDataset mm = bench::MakeMmLike();
    PrintRow("MM", mm.sides.u.size(), UncertainStats(mm.sides.u),
             mm.sides.d.size());
  }
  return 0;
}
