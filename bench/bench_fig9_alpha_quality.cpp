// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Figure 9: effect of the similarity probability threshold alpha on (a)
// precision and (b) the number of correct answers |C| (tau = 1).
//
// Paper shape: precision grows with alpha on all three datasets (QALD3,
// WebQ, MM; MM highest because it is closed-domain); |C| shrinks as alpha
// grows.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace simj;
  bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader(
      "Figure 9: precision and correct answers vs alpha (tau = 1)");

  bench::QaDataset qald = bench::MakeQald3Like();
  bench::QaDataset webq = bench::MakeWebQLike();
  bench::QaDataset mm = bench::MakeMmLike();
  struct Entry {
    const char* name;
    bench::QaDataset* data;
  };
  Entry datasets[] = {{"QALD3", &qald}, {"WebQ", &webq}, {"MM", &mm}};

  std::printf("%6s", "alpha");
  for (const Entry& entry : datasets) {
    std::printf(" %10s-p %10s-C", entry.name, entry.name);
  }
  std::printf("\n");

  for (int step = 1; step <= 9; ++step) {
    double alpha = 0.1 * step;
    std::printf("%6.1f", alpha);
    for (const Entry& entry : datasets) {
      core::SimJParams params =
          bench::ParamsFor(bench::JoinConfig::kSimJ, /*tau=*/1, alpha);
      bench::QualityResult result =
          bench::RunQualityJoin(*entry.data, params);
      std::printf(" %11.2f%% %12lld", 100.0 * result.Precision(),
                  static_cast<long long>(result.correct));
    }
    std::printf("\n");
  }
  return 0;
}
