// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Figure 18: failure analysis — why do some questions produce no correct
// pair?
//
// Paper split: incorrect semantic query graph 73%, graph edit distance
// 21%, others 6%. We classify every failed question:
//   - "incorrect semantic graph": the NLP pipeline failed outright (parse
//     or linking error), or no possible world of the uncertain graph is
//     GED-0 to the gold typed query graph (wrong predicate/class/entity
//     linking, e.g. "Harold and Maude" style traps);
//   - "graph edit distance": the semantic graph was fine but the join's
//     GED/probability thresholds still missed the gold pairing;
//   - "others": anything else (e.g. gold query dropped from D).

#include <cstdio>
#include <set>

#include "bench_util.h"
#include "ged/edit_distance.h"

int main(int argc, char** argv) {
  using namespace simj;
  bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Figure 18: failure analysis (QALD-3-like)");

  bench::QaDataset data = bench::MakeQald3Like();
  core::SimJParams params =
      bench::ParamsFor(bench::JoinConfig::kSimJ, /*tau=*/1, /*alpha=*/0.6);
  core::JoinResult joined =
      core::SimJoin(data.sides.d, data.sides.u, params, data.kb->dict());

  std::set<int> correct_questions;
  for (const core::MatchedPair& pair : joined.pairs) {
    int question_index = data.sides.u_question_index[pair.g_index];
    if (workload::SameIntent(
            *data.kb, data.workload.sparql_queries[pair.q_index],
            data.workload.questions[question_index].gold_query)) {
      correct_questions.insert(question_index);
    }
  }

  // Map question index -> u index (questions missing from u failed NLP).
  std::vector<int> u_of_question(data.workload.questions.size(), -1);
  for (size_t ui = 0; ui < data.sides.u_question_index.size(); ++ui) {
    u_of_question[data.sides.u_question_index[ui]] = static_cast<int>(ui);
  }

  int failures = 0;
  int bad_semantic_graph = 0;
  int ged_miss = 0;
  int others = 0;
  std::function<graph::LabelId(rdf::TermId)> resolver =
      data.kb->TypeResolver();
  for (size_t qi = 0; qi < data.workload.questions.size(); ++qi) {
    if (correct_questions.contains(static_cast<int>(qi))) continue;
    ++failures;
    int ui = u_of_question[qi];
    if (ui < 0) {
      ++bad_semantic_graph;  // parse or linking failure
      continue;
    }
    // Does any possible world reproduce the gold typed graph exactly?
    sparql::QueryGraph gold = sparql::BuildQueryGraph(
        data.workload.questions[qi].gold_query, data.kb->dict(), &resolver);
    const graph::UncertainGraph& g = data.sides.u[ui];
    bool exact_world = false;
    for (graph::PossibleWorldIterator it(g); !it.Done() && !exact_world;
         it.Next()) {
      graph::LabeledGraph world = g.Materialize(it.choice());
      if (ged::BoundedGed(gold.graph, world, /*tau=*/0, data.kb->dict())
              .has_value()) {
        exact_world = true;
      }
    }
    if (!exact_world) {
      ++bad_semantic_graph;  // uncertain graph does not contain the intent
    } else if (data.workload.questions[qi].gold_sparql_index >= 0) {
      ++ged_miss;  // intent present, join thresholds missed it
    } else {
      ++others;
    }
  }

  std::printf("questions: %zu, correctly recognized: %zu, failures: %d\n\n",
              data.workload.questions.size(), correct_questions.size(),
              failures);
  std::printf("%-32s %8s %8s\n", "Reason", "count", "ratio");
  auto ratio = [&](int count) {
    return failures > 0 ? 100.0 * count / failures : 0.0;
  };
  std::printf("%-32s %8d %7.1f%%\n", "Incorrect semantic query graph",
              bad_semantic_graph, ratio(bad_semantic_graph));
  std::printf("%-32s %8d %7.1f%%\n", "Graph edit distance", ged_miss,
              ratio(ged_miss));
  std::printf("%-32s %8d %7.1f%%\n", "Others", others, ratio(others));
  return 0;
}
