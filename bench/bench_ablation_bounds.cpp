// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Ablation: tightness and pruning power of the GED lower bounds.
//
// Compares the count bound [29], the label-multiset bound [31] and the CSS
// bound (Thm. 1/3) on (a) certain pairs — average bound value vs the exact
// GED — and (b) uncertain pairs — pruning power at various tau. Thm. 2
// guarantees CSS >= LM >= count pointwise; this quantifies the gap.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/similarity.h"
#include "ged/edit_distance.h"
#include "ged/lower_bounds.h"

int main(int argc, char** argv) {
  using namespace simj;
  bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Ablation: lower bound tightness and pruning power");

  workload::SyntheticConfig config;
  config.seed = 104;
  config.num_certain = 60;
  config.num_uncertain = 60;
  config.num_vertices = 8;
  config.num_edges = 12;
  workload::SyntheticDataset data = workload::MakeErDataset(config);

  // (a) Tightness on certain pairs (uncertain side collapsed to its most
  // probable world).
  double sum_exact = 0.0;
  double sum_count = 0.0;
  double sum_lm = 0.0;
  double sum_css = 0.0;
  int64_t pairs = 0;
  for (size_t i = 0; i < data.certain.size(); i += 4) {
    for (size_t j = 0; j < data.certain.size(); j += 4) {
      const graph::LabeledGraph& a = data.certain[i];
      const graph::LabeledGraph& b = data.certain[j];
      sum_exact += ged::ExactGed(a, b, data.dict).distance;
      sum_count += ged::CountLowerBound(a, b);
      sum_lm += ged::LabelMultisetLowerBound(a, b, data.dict);
      sum_css += ged::CssLowerBound(a, b, data.dict);
      ++pairs;
    }
  }
  std::printf("(a) average bound value over %lld certain pairs\n",
              static_cast<long long>(pairs));
  std::printf("    exact GED: %.2f | count: %.2f | label-multiset: %.2f | "
              "CSS: %.2f\n\n",
              sum_exact / pairs, sum_count / pairs, sum_lm / pairs,
              sum_css / pairs);

  // (b) Pruning power on uncertain pairs. The count and LM bounds are made
  // world-uniform the only sound way available to them: count ignores
  // labels entirely; LM uses the bipartite lambda_V like CSS but no degree
  // term.
  std::printf("(b) candidate ratio (%%) against the uncertain side\n");
  std::printf("%4s %10s %14s %10s\n", "tau", "count", "LM+bipartite", "CSS");
  for (int tau = 0; tau <= 4; ++tau) {
    int64_t candidate_count = 0;
    int64_t candidate_lm = 0;
    int64_t candidate_css = 0;
    int64_t total = 0;
    for (const auto& q : data.certain) {
      for (const auto& g : data.uncertain) {
        ++total;
        const graph::LabeledGraph& structure = g.structure();
        int count_bound =
            std::abs(q.num_vertices() - structure.num_vertices()) +
            std::abs(q.num_edges() - structure.num_edges());
        if (count_bound <= tau) ++candidate_count;
        int lambda_v = ged::MaxCommonVertexLabels(q, g, data.dict);
        int lambda_e = graph::MatchableLabelCount(
            q.EdgeLabelCounts(), g.EdgeLabelCounts(), data.dict);
        int lm_bound =
            std::max(q.num_vertices(), structure.num_vertices()) - lambda_v +
            std::max(q.num_edges(), structure.num_edges()) - lambda_e;
        if (lm_bound <= tau) ++candidate_lm;
        if (ged::CssLowerBoundUncertain(q, g, data.dict) <= tau) {
          ++candidate_css;
        }
      }
    }
    std::printf("%4d %9.3f%% %13.3f%% %9.3f%%\n", tau,
                100.0 * candidate_count / total, 100.0 * candidate_lm / total,
                100.0 * candidate_css / total);
  }

  // (c) The law-of-total-probability refinement of the Markov bound
  // (Section 5's sketched extension): average upper-bound value at
  // conditioning depths 0..3 (smaller is tighter; all are valid).
  std::printf("\n(c) average SimP upper bound vs conditioning depth "
              "(tau = 2)\n");
  std::printf("%6s %12s\n", "depth", "avg bound");
  for (int depth : {0, 1, 2, 3}) {
    double sum = 0.0;
    int64_t pairs_counted = 0;
    for (size_t i = 0; i < data.certain.size(); i += 3) {
      for (size_t j = 0; j < data.uncertain.size(); j += 3) {
        sum += core::UpperBoundSimPTotalProbability(
            data.certain[i], data.uncertain[j], /*tau=*/2, data.dict, depth);
        ++pairs_counted;
      }
    }
    std::printf("%6d %12.4f\n", depth, sum / pairs_counted);
  }
  return 0;
}
