// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Figure 12: effect of the GED threshold tau on response time and
// candidate ratio (ER dataset, alpha = 0.8).
//
// Paper shape: overall time and candidate ratios grow with tau;
// SimJ+opt <= SimJ <= CSS only throughout, converging toward the Real
// ratio at small tau.

#include <cstdio>

#include "bench_util.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace simj;
  Flags flags = bench::ParseBenchFlags(
      argc, argv,
      {"seed", "num_certain", "num_uncertain", "num_vertices", "num_edges",
       "labels_per_vertex"});
  bench::PrintHeader("Figure 12: effect of tau (ER, alpha = 0.8)");

  workload::SyntheticConfig config;
  config.seed = flags.GetInt("seed", 100);
  config.num_certain = static_cast<int>(flags.GetInt("num_certain", 120));
  config.num_uncertain = static_cast<int>(flags.GetInt("num_uncertain", 120));
  config.num_vertices = static_cast<int>(flags.GetInt("num_vertices", 10));
  config.num_edges = static_cast<int>(flags.GetInt("num_edges", 16));
  config.labels_per_vertex =
      static_cast<int>(flags.GetInt("labels_per_vertex", 3));
  workload::SyntheticDataset data = workload::MakeErDataset(config);
  std::printf("|D|=%zu |U|=%zu, %d vertices, ~%d edges\n\n",
              data.certain.size(), data.uncertain.size(), config.num_vertices,
              config.num_edges);

  std::printf("%4s | %10s %14s %10s | %10s %10s %10s %10s\n", "tau",
              "pruning", "verification", "wall", "CSS only", "SimJ",
              "SimJ+opt", "Real");
  for (int tau = 0; tau <= 5; ++tau) {
    bench::EfficiencyRow css =
        bench::RunEfficiency(data.certain, data.uncertain, data.dict,
                             bench::ParamsFor(bench::JoinConfig::kCssOnly,
                                              tau, /*alpha=*/0.8));
    bench::EfficiencyRow simj =
        bench::RunEfficiency(data.certain, data.uncertain, data.dict,
                             bench::ParamsFor(bench::JoinConfig::kSimJ, tau,
                                              /*alpha=*/0.8));
    bench::EfficiencyRow opt =
        bench::RunEfficiency(data.certain, data.uncertain, data.dict,
                             bench::ParamsFor(bench::JoinConfig::kSimJOpt,
                                              tau, /*alpha=*/0.8));
    std::printf("%4d | %10.3f %14.3f %10.3f | %9.3f%% %9.3f%% %9.3f%% %9.3f%%\n",
                tau, opt.pruning_cpu_seconds, opt.verification_cpu_seconds,
                opt.wall_seconds, 100.0 * css.candidate_ratio,
                100.0 * simj.candidate_ratio, 100.0 * opt.candidate_ratio,
                100.0 * opt.real_ratio);
  }
  return 0;
}
