// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Figure 10 + Figure 16: case study — matched question/query pairs found
// by SimJ on the QALD-3-like workload, and the templates generated from
// them (entities/classes replaced by slots).

#include <cstdio>

#include "bench_util.h"
#include "templates/template.h"

int main(int argc, char** argv) {
  using namespace simj;
  bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Figure 10/16: case study (QALD-3-like + distractors)");

  bench::QaDataset data = bench::MakeQald3Like();
  core::SimJParams params =
      bench::ParamsFor(bench::JoinConfig::kSimJ, /*tau=*/1, /*alpha=*/0.8);
  core::JoinResult joined =
      core::SimJoin(data.sides.d, data.sides.u, params, data.kb->dict());

  tmpl::TemplateStore store;
  struct Sample {
    std::string question;
    std::string query;
    std::string nl_pattern;
    std::string sparql_pattern;
  };
  std::vector<Sample> samples;
  for (const core::MatchedPair& pair : joined.pairs) {
    int question_index = data.sides.u_question_index[pair.g_index];
    StatusOr<tmpl::Template> t = tmpl::GenerateTemplate(
        data.workload.sparql_queries[pair.q_index],
        data.sides.d_graphs[pair.q_index], data.sides.u_parsed[pair.g_index],
        data.sides.u_graphs[pair.g_index], pair.mapping, data.kb->dict());
    if (!t.ok()) continue;
    bool fresh = store.Add(*t, data.kb->dict());
    if (fresh && samples.size() < 6) {
      samples.push_back(Sample{
          data.workload.questions[question_index].text,
          data.workload.sparql_texts[pair.q_index], t->NlPattern(),
          sparql::ToSparqlText(t->pattern, data.kb->dict())});
    }
  }

  std::printf("matched pairs: %zu, distinct templates: %d\n\n",
              joined.pairs.size(), store.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    std::printf("--- case %zu\n", i + 1);
    std::printf("  question : %s\n", samples[i].question.c_str());
    std::printf("  matched  : %s\n", samples[i].query.c_str());
    std::printf("  template : %s\n", samples[i].nl_pattern.c_str());
    std::printf("           : %s\n", samples[i].sparql_pattern.c_str());
  }
  return 0;
}
