// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Figure 13: effect of the group number GN on response time and candidate
// ratio (SF dataset).
//
// Paper shape: pruning time grows with GN (more groups to score) while the
// candidate ratio of SimJ+opt falls toward the Real ratio; CSS only and
// SimJ are flat (they ignore GN).

#include <cstdio>

#include "bench_util.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace simj;
  Flags flags = bench::ParseBenchFlags(
      argc, argv,
      {"seed", "num_certain", "num_uncertain", "num_vertices", "num_edges",
       "labels_per_vertex"});
  bench::PrintHeader("Figure 13: effect of group number GN (SF, tau=2, "
                     "alpha=0.4)");

  workload::SyntheticConfig config;
  config.seed = flags.GetInt("seed", 101);
  config.num_certain = static_cast<int>(flags.GetInt("num_certain", 120));
  config.num_uncertain = static_cast<int>(flags.GetInt("num_uncertain", 120));
  config.num_vertices = static_cast<int>(flags.GetInt("num_vertices", 10));
  config.num_edges = static_cast<int>(flags.GetInt("num_edges", 14));
  config.labels_per_vertex =
      static_cast<int>(flags.GetInt("labels_per_vertex", 4));
  workload::SyntheticDataset data = workload::MakeSfDataset(config);

  constexpr int kTau = 2;
  constexpr double kAlpha = 0.4;

  bench::EfficiencyRow css = bench::RunEfficiency(
      data.certain, data.uncertain, data.dict,
      bench::ParamsFor(bench::JoinConfig::kCssOnly, kTau, kAlpha));
  bench::EfficiencyRow simj = bench::RunEfficiency(
      data.certain, data.uncertain, data.dict,
      bench::ParamsFor(bench::JoinConfig::kSimJ, kTau, kAlpha));
  std::printf("reference: CSS only %.3f%% candidates, SimJ %.3f%% "
              "candidates, Real %.3f%%\n\n",
              100.0 * css.candidate_ratio, 100.0 * simj.candidate_ratio,
              100.0 * simj.real_ratio);

  std::printf("%4s %10s %14s %10s %12s\n", "GN", "pruning", "verification",
              "wall", "SimJ+opt(%)");
  for (int gn : {1, 5, 10, 15, 20, 25, 30, 35, 40}) {
    core::SimJParams params =
        bench::ParamsFor(bench::JoinConfig::kSimJOpt, kTau, kAlpha, gn);
    bench::EfficiencyRow row = bench::RunEfficiency(
        data.certain, data.uncertain, data.dict, params);
    std::printf("%4d %10.3f %14.3f %10.3f %11.3f%%\n", gn,
                row.pruning_cpu_seconds, row.verification_cpu_seconds,
                row.wall_seconds, 100.0 * row.candidate_ratio);
  }
  return 0;
}
