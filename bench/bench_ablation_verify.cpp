// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Ablation: the verification-phase early exits (accept once alpha is
// reached, reject once the remaining mass cannot reach alpha).

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace simj;
  bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Ablation: verification early exits (ER)");

  workload::SyntheticConfig config;
  config.seed = 106;
  config.num_certain = 100;
  config.num_uncertain = 100;
  config.num_vertices = 10;
  config.num_edges = 16;
  config.labels_per_vertex = 4;
  workload::SyntheticDataset data = workload::MakeErDataset(config);

  std::printf("%-18s %6s %14s %10s %10s\n", "mode", "alpha",
              "verification(s)", "wall(s)", "results");
  for (double alpha : {0.3, 0.6, 0.9}) {
    for (bool early_exit : {true, false}) {
      core::SimJParams params =
          bench::ParamsFor(bench::JoinConfig::kSimJ, /*tau=*/2, alpha);
      params.early_exit_verification = early_exit;
      bench::EfficiencyRow row = bench::RunEfficiency(
          data.certain, data.uncertain, data.dict, params);
      std::printf("%-18s %6.1f %14.3f %10.3f %10lld\n",
                  early_exit ? "early exit" : "full enumeration", alpha,
                  row.verification_cpu_seconds, row.wall_seconds,
                  static_cast<long long>(row.results));
    }
  }
  return 0;
}
