// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Figure 11: effect of the similarity threshold alpha on (a) response time
// (pruning / verification / overall, SimJ+opt) and (b) candidate ratio of
// CSS only / SimJ / SimJ+opt vs the Real ratio (WebQ workload, tau = 1).
//
// Paper shape: alpha barely affects pruning time; larger alpha means fewer
// candidates and lower overall time; SimJ+opt < SimJ < CSS only in
// candidate ratio; CSS only is alpha-independent.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace simj;
  bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Figure 11: effect of alpha (WebQ-like, tau = 1)");

  bench::QaDataset data = bench::MakeWebQLike();
  std::printf("|D|=%zu |U|=%zu\n\n", data.sides.d.size(),
              data.sides.u.size());

  std::printf("(a) response time of SimJ+opt, seconds\n");
  std::printf("%6s %10s %14s %10s %10s\n", "alpha", "pruning", "verification",
              "cpu", "wall");
  std::vector<bench::EfficiencyRow> opt_rows;
  for (int step = 1; step <= 9; ++step) {
    double alpha = 0.1 * step;
    core::SimJParams params =
        bench::ParamsFor(bench::JoinConfig::kSimJOpt, /*tau=*/1, alpha);
    bench::EfficiencyRow row = bench::RunEfficiency(
        data.sides.d, data.sides.u, data.kb->dict(), params);
    opt_rows.push_back(row);
    std::printf("%6.1f %10.3f %14.3f %10.3f %10.3f\n", alpha,
                row.pruning_cpu_seconds, row.verification_cpu_seconds,
                row.cpu_seconds, row.wall_seconds);
  }

  std::printf("\n(b) candidate ratio (%%)\n");
  std::printf("%6s %10s %10s %10s %10s\n", "alpha", "CSS only", "SimJ",
              "SimJ+opt", "Real");
  for (int step = 1; step <= 9; ++step) {
    double alpha = 0.1 * step;
    bench::EfficiencyRow css = bench::RunEfficiency(
        data.sides.d, data.sides.u, data.kb->dict(),
        bench::ParamsFor(bench::JoinConfig::kCssOnly, 1, alpha));
    bench::EfficiencyRow simj = bench::RunEfficiency(
        data.sides.d, data.sides.u, data.kb->dict(),
        bench::ParamsFor(bench::JoinConfig::kSimJ, 1, alpha));
    const bench::EfficiencyRow& opt = opt_rows[step - 1];
    std::printf("%6.1f %9.3f%% %9.3f%% %9.3f%% %9.3f%%\n", alpha,
                100.0 * css.candidate_ratio, 100.0 * simj.candidate_ratio,
                100.0 * opt.candidate_ratio, 100.0 * simj.real_ratio);
  }
  return 0;
}
