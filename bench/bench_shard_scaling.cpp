// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Sharded join scaling: wall-clock speedup of ShardedSimJoin at 1/2/4/8
// workers on both transports (in-process threads and forked child
// processes), plus a result-identity check against the serial
// IndexedSimJoin oracle — the distributed path must be a pure
// reorganization of the same work.
//
// Flags: --num_certain / --num_uncertain / --num_vertices / --tau /
// --alpha rescale the workload; --max_pairs_per_shard sets shard
// granularity. --workers=N pins a single worker count (0, the default,
// sweeps {1,2,4,8}); --transport=thread|process|both picks the transport
// legs. --death_probability / --slow_probability / --sim_seed wire a
// ClusterSim fault hook into every measured join, so CI can drive a
// faulted run with --trace_out/--events_out and validate the merged
// cluster trace and flight-recorder dump. As in bench_parallel_scaling,
// worker counts the host cannot exercise (hardware_threads < 4) are
// recorded as skipped samples rather than measured as scheduler noise —
// unless the count was pinned explicitly with --workers.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/index.h"
#include "dist/coordinator.h"
#include "dist/simulator.h"

namespace {

bool SameResults(const simj::core::JoinResult& a,
                 const simj::core::JoinResult& b) {
  if (a.pairs.size() != b.pairs.size()) return false;
  for (size_t i = 0; i < a.pairs.size(); ++i) {
    if (a.pairs[i].q_index != b.pairs[i].q_index ||
        a.pairs[i].g_index != b.pairs[i].g_index ||
        a.pairs[i].similarity_probability !=
            b.pairs[i].similarity_probability ||
        a.pairs[i].mapping != b.pairs[i].mapping) {
      return false;
    }
  }
  return a.stats.total_pairs == b.stats.total_pairs &&
         a.stats.candidates == b.stats.candidates &&
         a.stats.pruned_structural == b.stats.pruned_structural &&
         a.stats.pruned_probabilistic == b.stats.pruned_probabilistic &&
         a.stats.results == b.stats.results;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simj;
  Flags flags = bench::ParseBenchFlags(
      argc, argv,
      {"seed", "num_certain", "num_uncertain", "num_vertices", "num_edges",
       "labels", "tau", "alpha", "max_pairs_per_shard", "workers", "transport",
       "sim_seed", "death_probability", "slow_probability"});
  bench::PrintHeader("Sharded similarity join scaling (synthetic ER)");

  workload::SyntheticConfig config;
  config.seed = flags.GetInt("seed", 7);
  config.num_certain = static_cast<int>(flags.GetInt("num_certain", 120));
  config.num_uncertain = static_cast<int>(flags.GetInt("num_uncertain", 120));
  config.num_vertices = static_cast<int>(flags.GetInt("num_vertices", 10));
  config.num_edges = static_cast<int>(flags.GetInt("num_edges", 14));
  config.labels_per_vertex = static_cast<int>(flags.GetInt("labels", 3));
  workload::SyntheticDataset data = workload::MakeErDataset(config);

  core::SimJParams params =
      bench::ParamsFor(bench::JoinConfig::kSimJ,
                       static_cast<int>(flags.GetInt("tau", 2)),
                       flags.GetDouble("alpha", 0.5));
  const int max_pairs_per_shard =
      static_cast<int>(flags.GetInt("max_pairs_per_shard", 64));

  // --workers=0 sweeps; an explicit pin is honored even on small hosts.
  const int pinned_workers = static_cast<int>(flags.GetInt("workers", 0));
  std::vector<int> worker_counts;
  if (pinned_workers > 0) {
    worker_counts.push_back(pinned_workers);
  } else {
    worker_counts = {1, 2, 4, 8};
  }
  const std::string transport_flag = flags.GetString("transport", "both");
  std::vector<dist::Transport> transports;
  if (transport_flag == "thread") {
    transports = {dist::Transport::kThread};
  } else if (transport_flag == "process") {
    transports = {dist::Transport::kProcess};
  } else {
    transports = {dist::Transport::kThread, dist::Transport::kProcess};
  }

  dist::SimOptions sim_options;
  sim_options.seed = static_cast<uint64_t>(flags.GetInt("sim_seed", 1));
  sim_options.death_probability = flags.GetDouble("death_probability", 0.0);
  sim_options.slow_probability = flags.GetDouble("slow_probability", 0.0);
  const bool faulted = sim_options.death_probability > 0.0 ||
                       sim_options.slow_probability > 0.0;
  dist::ClusterSim sim(sim_options);

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  std::printf("|D|=%zu |U|=%zu max_pairs_per_shard=%d hardware_threads=%u",
              data.certain.size(), data.uncertain.size(), max_pairs_per_shard,
              hardware_threads);
  if (faulted) {
    std::printf(" sim_seed=%llu death_p=%.2f slow_p=%.2f",
                static_cast<unsigned long long>(sim_options.seed),
                sim_options.death_probability, sim_options.slow_probability);
  }
  std::printf("\n\n");

  // Serial oracle: the sharded join must reproduce this byte-for-byte.
  core::JoinResult baseline =
      core::IndexedSimJoin(data.certain, data.uncertain, params, data.dict);
  const double baseline_seconds = baseline.stats.wall_seconds;
  std::printf("serial IndexedSimJoin: %.3fs, %zu results\n\n",
              baseline_seconds, baseline.pairs.size());
  std::printf("%10s %8s %12s %10s %10s %10s\n", "transport", "workers",
              "seconds", "speedup", "steals", "identical");

  bool all_identical = true;
  for (dist::Transport transport : transports) {
    for (int workers : worker_counts) {
      dist::DistJoinParams dist_params;
      dist_params.transport = transport;
      dist_params.num_workers = workers;
      dist_params.max_pairs_per_shard = max_pairs_per_shard;
      if (faulted) dist_params.fault_hook = sim.Hook();
      params.num_threads = workers;  // sample-name key only; workers drive it

      if (pinned_workers == 0 && hardware_threads < 4 &&
          workers > static_cast<int>(hardware_threads)) {
        bench::RecordBenchSample(
            bench::JoinSampleName(dist::TransportName(transport), params),
            run_record::Stats{}, run_record::Stats{},
            {{"hardware_threads", static_cast<double>(hardware_threads)}},
            /*skipped=*/true);
        std::printf("%10s %8d %12s %10s %10s %10s\n",
                    dist::TransportName(transport), workers, "-", "-", "-",
                    "skipped");
        continue;
      }

      std::vector<double> wall, cpu;
      dist::DistJoinResult result;
      int64_t steals = 0;
      const int trials = bench::BenchWarmup() + bench::BenchRepeat();
      for (int trial = 0; trial < trials; ++trial) {
        WallTimer timer;
        result = dist::ShardedSimJoin(data.certain, data.uncertain, params,
                                      data.dict, dist_params);
        if (trial < bench::BenchWarmup()) continue;
        wall.push_back(timer.ElapsedSeconds());
        cpu.push_back(result.join.stats.TotalCpuSeconds());
      }
      steals = 0;
      for (const dist::WorkerReport& report : result.dist.workers) {
        steals += report.steals;
      }
      const double seconds = bench::MedianOf(wall);
      const bool identical = SameResults(result.join, baseline);
      all_identical = all_identical && identical;
      const double speedup = seconds > 0 ? baseline_seconds / seconds : 0.0;
      bench::RecordBenchSample(
          bench::JoinSampleName(dist::TransportName(transport), params),
          run_record::Stats::FromSamples(wall),
          run_record::Stats::FromSamples(cpu),
          {{"speedup", speedup},
           {"identical", identical ? 1.0 : 0.0},
           {"steals", static_cast<double>(steals)},
           {"shards", static_cast<double>(result.dist.shards_planned)},
           {"requeues", static_cast<double>(result.dist.shards_requeued)},
           {"injected_deaths", static_cast<double>(sim.injected_deaths())},
           {"injected_delays", static_cast<double>(sim.injected_delays())}});
      std::printf("%10s %8d %12.3f %9.2fx %10lld %10s\n",
                  dist::TransportName(transport), workers, seconds, speedup,
                  static_cast<long long>(steals), identical ? "yes" : "NO");
    }
  }

  if (!all_identical) {
    std::printf("\nERROR: sharded results differ from the serial oracle\n");
    return 1;
  }
  std::printf("\nidentity: every (transport, workers) cell reproduced the "
              "serial oracle\n");
  if (faulted) {
    std::printf("faults injected: %lld deaths, %lld delays (%.1f ms)\n",
                static_cast<long long>(sim.injected_deaths()),
                static_cast<long long>(sim.injected_delays()),
                sim.injected_delay_ms());
  }
  return 0;
}
