// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Ablation: size-signature index vs the paper's plain nested-loop join.
//
// The index skips whole (|V|, |E|) buckets per uncertain graph using the
// count bound, before any per-pair work. Identical result sets; the win is
// in wall clock and in per-pair bound evaluations avoided.

#include <cstdio>

#include "bench_util.h"
#include "core/index.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace simj;
  Flags flags = bench::ParseBenchFlags(argc, argv, {"seed"});
  bench::PrintHeader("Ablation: nested-loop vs size-indexed join (WebQ-like)");

  bench::QaDataset data = bench::MakeWebQLike(flags.GetInt("seed", 43));
  std::printf("|D|=%zu |U|=%zu\n\n", data.sides.d.size(),
              data.sides.u.size());

  std::printf("%4s %-12s %10s %12s %10s\n", "tau", "join", "seconds",
              "candidates", "results");
  for (int tau : {0, 1, 2}) {
    core::SimJParams params =
        bench::ParamsFor(bench::JoinConfig::kSimJ, tau, /*alpha=*/0.8);
    {
      WallTimer timer;
      core::JoinResult nested =
          core::SimJoin(data.sides.d, data.sides.u, params, data.kb->dict());
      std::printf("%4d %-12s %10.3f %12lld %10zu\n", tau, "nested-loop",
                  timer.ElapsedSeconds(),
                  static_cast<long long>(nested.stats.candidates),
                  nested.pairs.size());
    }
    {
      WallTimer timer;
      core::JoinResult indexed = core::IndexedSimJoin(
          data.sides.d, data.sides.u, params, data.kb->dict());
      std::printf("%4d %-12s %10.3f %12lld %10zu\n", tau, "indexed",
                  timer.ElapsedSeconds(),
                  static_cast<long long>(indexed.stats.candidates),
                  indexed.pairs.size());
    }
  }
  return 0;
}
