// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Microbenchmarks (google-benchmark) for the computational kernels: exact
// GED, the lower bounds, the probabilistic bound, bipartite matching,
// assignment, tree edit distance and BGP evaluation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/similarity.h"
#include "ged/edit_distance.h"
#include "ged/lower_bounds.h"
#include "matching/bipartite.h"
#include "matching/hungarian.h"
#include "nlp/dependency.h"
#include "rdf/triple_store.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace simj;

struct PairFixture {
  graph::LabelDictionary dict;
  std::vector<graph::LabeledGraph> certain;
  std::vector<graph::UncertainGraph> uncertain;

  explicit PairFixture(int vertices, int edges) {
    workload::SyntheticConfig config;
    config.seed = 500;
    config.num_certain = 32;
    config.num_uncertain = 32;
    config.num_vertices = vertices;
    config.num_edges = edges;
    config.labels_per_vertex = 3;
    workload::SyntheticDataset data = workload::MakeErDataset(config);
    dict = std::move(data.dict);
    certain = std::move(data.certain);
    uncertain = std::move(data.uncertain);
  }
};

void BM_ExactGed(benchmark::State& state) {
  PairFixture fixture(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(0)) * 3 / 2);
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = fixture.certain[i % fixture.certain.size()];
    const auto& b = fixture.certain[(i + 1) % fixture.certain.size()];
    benchmark::DoNotOptimize(ged::ExactGed(a, b, fixture.dict).distance);
    ++i;
  }
}
BENCHMARK(BM_ExactGed)->Arg(4)->Arg(6)->Arg(8);

void BM_BoundedGed(benchmark::State& state) {
  PairFixture fixture(10, 15);
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = fixture.certain[i % fixture.certain.size()];
    const auto& b = fixture.certain[(i + 1) % fixture.certain.size()];
    benchmark::DoNotOptimize(
        ged::BoundedGed(a, b, static_cast<int>(state.range(0)), fixture.dict)
            .has_value());
    ++i;
  }
}
BENCHMARK(BM_BoundedGed)->Arg(1)->Arg(3);

void BM_CssLowerBoundCertain(benchmark::State& state) {
  PairFixture fixture(12, 18);
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = fixture.certain[i % fixture.certain.size()];
    const auto& b = fixture.certain[(i + 1) % fixture.certain.size()];
    benchmark::DoNotOptimize(ged::CssLowerBound(a, b, fixture.dict));
    ++i;
  }
}
BENCHMARK(BM_CssLowerBoundCertain);

void BM_CssLowerBoundUncertain(benchmark::State& state) {
  PairFixture fixture(12, 18);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = fixture.certain[i % fixture.certain.size()];
    const auto& g = fixture.uncertain[i % fixture.uncertain.size()];
    benchmark::DoNotOptimize(ged::CssLowerBoundUncertain(q, g, fixture.dict));
    ++i;
  }
}
BENCHMARK(BM_CssLowerBoundUncertain);

void BM_UpperBoundSimP(benchmark::State& state) {
  PairFixture fixture(12, 18);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = fixture.certain[i % fixture.certain.size()];
    const auto& g = fixture.uncertain[i % fixture.uncertain.size()];
    benchmark::DoNotOptimize(core::UpperBoundSimP(q, g, 2, fixture.dict));
    ++i;
  }
}
BENCHMARK(BM_UpperBoundSimP);

void BM_HopcroftKarp(benchmark::State& state) {
  Rng rng(501);
  int n = static_cast<int>(state.range(0));
  matching::BipartiteGraph bipartite(n, n);
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < n; ++r) {
      if (rng.Bernoulli(0.3)) bipartite.AddEdge(l, r);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bipartite.MaxMatching());
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(8)->Arg(32)->Arg(128);

void BM_Hungarian(benchmark::State& state) {
  Rng rng(502);
  int n = static_cast<int>(state.range(0));
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) c = rng.UniformDouble() * 10;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::MinCostAssignment(cost));
  }
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(32)->Arg(64);

void BM_TreeEditDistance(benchmark::State& state) {
  Rng rng(503);
  auto random_tree = [&](int n) {
    nlp::DepTree tree;
    for (int i = 0; i < n; ++i) {
      tree.nodes.push_back(
          {std::string(1, static_cast<char>('a' + rng.Uniform(0, 5))), {}});
      if (i > 0) {
        tree.nodes[rng.Uniform(0, i - 1)].children.push_back(i);
      }
    }
    tree.root = 0;
    return tree;
  };
  nlp::DepTree a = random_tree(static_cast<int>(state.range(0)));
  nlp::DepTree b = random_tree(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nlp::TreeEditDistance(a, b));
  }
}
BENCHMARK(BM_TreeEditDistance)->Arg(6)->Arg(12)->Arg(24);

void BM_BgpEvaluate(benchmark::State& state) {
  graph::LabelDictionary dict;
  rdf::TripleStore store;
  Rng rng(504);
  rdf::TermId knows = dict.Intern("knows");
  rdf::TermId type = dict.Intern("type");
  rdf::TermId person = dict.Intern("Person");
  std::vector<rdf::TermId> people;
  for (int i = 0; i < 500; ++i) {
    std::string person_name = "P";
    person_name += std::to_string(i);
    people.push_back(dict.Intern(person_name));
    store.Add(people.back(), type, person);
  }
  for (int i = 0; i < 3000; ++i) {
    store.Add(people[rng.Uniform(0, people.size() - 1)], knows,
              people[rng.Uniform(0, people.size() - 1)]);
  }
  rdf::TermId x = dict.Intern("?x");
  rdf::TermId y = dict.Intern("?y");
  rdf::TermId z = dict.Intern("?z");
  rdf::BgpQuery query;
  query.select_vars = {x, z};
  query.patterns = {rdf::TriplePattern{x, knows, y},
                    rdf::TriplePattern{y, knows, z},
                    rdf::TriplePattern{x, type, person}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Evaluate(query, dict, 2000));
  }
}
BENCHMARK(BM_BgpEvaluate);

}  // namespace

// Expanded BENCHMARK_MAIN() so the shared bench flags (--json_out,
// --log_level, ...) are consumed before google-benchmark sees argv; the
// harness still emits a BenchResult run record via the shared atexit path.
int main(int argc, char** argv) {
  simj::bench::ConsumeSharedFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
