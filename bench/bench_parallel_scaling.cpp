// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Parallel join scaling: wall-clock speedup of SimJoin at 1/2/4/8 worker
// threads on the synthetic ER workload, plus a result-identity check
// against the serial run (the parallel path must be a pure optimization).
//
// Flags: --num_certain / --num_uncertain / --num_vertices / --tau /
// --alpha rescale the workload; --config picks css|simj|opt. Speedup is
// bounded by the machine's core count — on a single-core container every
// row measures pool overhead, not scaling.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

bool SameResults(const simj::core::JoinResult& a,
                 const simj::core::JoinResult& b) {
  if (a.pairs.size() != b.pairs.size()) return false;
  for (size_t i = 0; i < a.pairs.size(); ++i) {
    if (a.pairs[i].q_index != b.pairs[i].q_index ||
        a.pairs[i].g_index != b.pairs[i].g_index ||
        a.pairs[i].similarity_probability !=
            b.pairs[i].similarity_probability ||
        a.pairs[i].mapping != b.pairs[i].mapping) {
      return false;
    }
  }
  return a.stats.candidates == b.stats.candidates &&
         a.stats.pruned_structural == b.stats.pruned_structural &&
         a.stats.pruned_probabilistic == b.stats.pruned_probabilistic;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simj;
  Flags flags = bench::ParseBenchFlags(
      argc, argv,
      {"seed", "num_certain", "num_uncertain", "num_vertices", "num_edges",
       "labels", "config", "tau", "alpha"});
  bench::PrintHeader("Parallel similarity join scaling (synthetic ER)");

  workload::SyntheticConfig config;
  config.seed = flags.GetInt("seed", 7);
  config.num_certain = static_cast<int>(flags.GetInt("num_certain", 120));
  config.num_uncertain = static_cast<int>(flags.GetInt("num_uncertain", 120));
  config.num_vertices = static_cast<int>(flags.GetInt("num_vertices", 10));
  config.num_edges = static_cast<int>(flags.GetInt("num_edges", 14));
  config.labels_per_vertex = static_cast<int>(flags.GetInt("labels", 3));
  workload::SyntheticDataset data = workload::MakeErDataset(config);

  std::string config_name = flags.GetString("config", "simj");
  bench::JoinConfig join_config =
      config_name == "css" ? bench::JoinConfig::kCssOnly
      : config_name == "opt" ? bench::JoinConfig::kSimJOpt
                             : bench::JoinConfig::kSimJ;
  core::SimJParams params =
      bench::ParamsFor(join_config, static_cast<int>(flags.GetInt("tau", 2)),
                       flags.GetDouble("alpha", 0.5));

  std::printf("|D|=%zu |U|=%zu config=%s hardware_threads=%u\n\n",
              data.certain.size(), data.uncertain.size(),
              bench::ConfigName(join_config),
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %10s %10s %10s\n", "threads", "seconds", "speedup",
              "results", "identical");

  core::JoinResult baseline;
  double baseline_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    params.num_threads = threads;
    WallTimer timer;
    core::JoinResult result =
        core::SimJoin(data.certain, data.uncertain, params, data.dict);
    double seconds = timer.ElapsedSeconds();
    bool identical = true;
    if (threads == 1) {
      baseline = std::move(result);
      baseline_seconds = seconds;
    } else {
      identical = SameResults(result, baseline);
    }
    std::printf("%8d %12.3f %9.2fx %10zu %10s\n", threads, seconds,
                seconds > 0 ? baseline_seconds / seconds : 0.0,
                threads == 1 ? baseline.pairs.size() : result.pairs.size(),
                identical ? "yes" : "NO");
  }
  return 0;
}
