// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Parallel join scaling: wall-clock speedup of SimJoin at 1/2/4/8 worker
// threads on the synthetic ER workload, plus a result-identity check
// against the serial run (the parallel path must be a pure optimization).
//
// Flags: --num_certain / --num_uncertain / --num_vertices / --tau /
// --alpha rescale the workload; --config picks css|simj|opt. Speedup is
// bounded by the machine's core count — the 4-thread >= 2.5x expectation
// is only checked (PASS/FAIL) when the host exposes at least 4 hardware
// threads; otherwise the harness prints SKIPPED and exits 0.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

bool SameResults(const simj::core::JoinResult& a,
                 const simj::core::JoinResult& b) {
  if (a.pairs.size() != b.pairs.size()) return false;
  for (size_t i = 0; i < a.pairs.size(); ++i) {
    if (a.pairs[i].q_index != b.pairs[i].q_index ||
        a.pairs[i].g_index != b.pairs[i].g_index ||
        a.pairs[i].similarity_probability !=
            b.pairs[i].similarity_probability ||
        a.pairs[i].mapping != b.pairs[i].mapping) {
      return false;
    }
  }
  return a.stats.candidates == b.stats.candidates &&
         a.stats.pruned_structural == b.stats.pruned_structural &&
         a.stats.pruned_probabilistic == b.stats.pruned_probabilistic;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simj;
  Flags flags = bench::ParseBenchFlags(
      argc, argv,
      {"seed", "num_certain", "num_uncertain", "num_vertices", "num_edges",
       "labels", "config", "tau", "alpha"});
  bench::PrintHeader("Parallel similarity join scaling (synthetic ER)");

  workload::SyntheticConfig config;
  config.seed = flags.GetInt("seed", 7);
  config.num_certain = static_cast<int>(flags.GetInt("num_certain", 120));
  config.num_uncertain = static_cast<int>(flags.GetInt("num_uncertain", 120));
  config.num_vertices = static_cast<int>(flags.GetInt("num_vertices", 10));
  config.num_edges = static_cast<int>(flags.GetInt("num_edges", 14));
  config.labels_per_vertex = static_cast<int>(flags.GetInt("labels", 3));
  workload::SyntheticDataset data = workload::MakeErDataset(config);

  std::string config_name = flags.GetString("config", "simj");
  bench::JoinConfig join_config =
      config_name == "css" ? bench::JoinConfig::kCssOnly
      : config_name == "opt" ? bench::JoinConfig::kSimJOpt
                             : bench::JoinConfig::kSimJ;
  core::SimJParams params =
      bench::ParamsFor(join_config, static_cast<int>(flags.GetInt("tau", 2)),
                       flags.GetDouble("alpha", 0.5));

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  std::printf("|D|=%zu |U|=%zu config=%s hardware_threads=%u\n\n",
              data.certain.size(), data.uncertain.size(),
              bench::ConfigName(join_config), hardware_threads);
  std::printf("%8s %12s %10s %10s %10s\n", "threads", "seconds", "speedup",
              "results", "identical");

  core::JoinResult baseline;
  double baseline_seconds = 0.0;
  double speedup_at_4 = 0.0;
  bool all_identical = true;
  for (int threads : {1, 2, 4, 8}) {
    params.num_threads = threads;
    // On hosts without 4 hardware threads a multi-thread row measures
    // scheduler interleaving, not scaling: record it as skipped (the run
    // record carries "skipped": true and bench_compare.py excludes it from
    // delta comparison) instead of emitting a meaningless timing.
    if (hardware_threads < 4 &&
        threads > static_cast<int>(hardware_threads)) {
      bench::RecordBenchSample(
          bench::JoinSampleName("scaling", params), run_record::Stats{},
          run_record::Stats{},
          {{"hardware_threads", static_cast<double>(hardware_threads)}},
          /*skipped=*/true);
      std::printf("%8d %12s %10s %10s %10s\n", threads, "-", "-", "-",
                  "skipped");
      continue;
    }
    // 1 warmup + --repeat timed trials; the table reports the median.
    std::vector<double> wall, cpu;
    core::JoinResult result;
    const int trials = bench::BenchWarmup() + bench::BenchRepeat();
    for (int trial = 0; trial < trials; ++trial) {
      WallTimer timer;
      result = core::SimJoin(data.certain, data.uncertain, params, data.dict);
      if (trial < bench::BenchWarmup()) continue;
      wall.push_back(timer.ElapsedSeconds());
      cpu.push_back(result.stats.TotalCpuSeconds());
    }
    double seconds = bench::MedianOf(wall);
    bool identical = true;
    double speedup = 0.0;
    if (threads == 1) {
      baseline = std::move(result);
      baseline_seconds = seconds;
      speedup = 1.0;
    } else {
      identical = SameResults(result, baseline);
      all_identical = all_identical && identical;
      speedup = seconds > 0 ? baseline_seconds / seconds : 0.0;
    }
    if (threads == 4) speedup_at_4 = speedup;
    bench::RecordBenchSample(
        bench::JoinSampleName("scaling", params),
        run_record::Stats::FromSamples(wall),
        run_record::Stats::FromSamples(cpu),
        {{"speedup", speedup},
         {"identical", identical ? 1.0 : 0.0},
         {"hardware_threads", static_cast<double>(hardware_threads)}});
    std::printf("%8d %12.3f %9.2fx %10zu %10s\n", threads, seconds, speedup,
                threads == 1 ? baseline.pairs.size() : result.pairs.size(),
                identical ? "yes" : "NO");
  }

  // The ROADMAP scaling expectation: >= 2.5x at 4 threads. Only meaningful
  // when the host actually has 4 hardware threads to run on.
  std::printf("\n");
  if (hardware_threads < 4) {
    std::printf("scaling expectation (>=2.5x at 4 threads): SKIPPED "
                "(host exposes %u hardware threads < 4)\n",
                hardware_threads);
  } else if (speedup_at_4 >= 2.5) {
    std::printf("scaling expectation (>=2.5x at 4 threads): PASS (%.2fx)\n",
                speedup_at_4);
  } else {
    std::printf("scaling expectation (>=2.5x at 4 threads): FAIL (%.2fx)\n",
                speedup_at_4);
  }
  if (!all_identical) {
    std::printf("ERROR: parallel results differ from the serial baseline\n");
    return 1;
  }
  return 0;
}
