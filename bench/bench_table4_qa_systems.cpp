// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Table 4: end-to-end Q/A quality of the generated templates against the
// non-template baselines.
//
// Paper values (QALD-3 over DBpedia):
//   our method  P=0.65 R=0.65 F1=0.65
//   gAnswer     P=0.41 R=0.41 F1=0.41
//   DEANNA      P=0.21 R=0.21 F1=0.21
// Expected shape: templates > direct (gAnswer-style) > greedy
// (DEANNA-style).
//
// Protocol: templates are generated from a training workload via the SimJ
// join; quality is measured on a held-out workload over the same knowledge
// base (macro-averaged precision/recall as in the QALD campaign).

#include <cstdio>

#include "bench_util.h"
#include "templates/baselines.h"
#include "templates/qa.h"
#include "templates/template.h"

namespace {

struct Macro {
  double precision = 0.0;
  double recall = 0.0;
  int count = 0;

  void Add(const simj::tmpl::PrfScore& score) {
    precision += score.precision;
    recall += score.recall;
    ++count;
  }
  void Print(const char* name) const {
    double p = count > 0 ? precision / count : 0.0;
    double r = count > 0 ? recall / count : 0.0;
    double f1 = p + r > 0 ? 2 * p * r / (p + r) : 0.0;
    std::printf("%-24s %6.2f %6.2f %6.2f\n", name, p, r, f1);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace simj;
  bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Table 4: Q/A quality vs other systems");

  workload::KnowledgeBase kb(workload::KbConfig{.seed = 77});

  workload::WorkloadConfig train_config;
  train_config.seed = 78;
  train_config.num_questions = 400;
  train_config.distractor_queries = 200;
  workload::Workload train = workload::GenerateWorkload(kb, train_config);
  workload::JoinSides sides = workload::BuildJoinSides(kb, train);

  core::SimJParams params =
      bench::ParamsFor(bench::JoinConfig::kSimJ, /*tau=*/1, /*alpha=*/0.6);
  core::JoinResult joined = core::SimJoin(sides.d, sides.u, params, kb.dict());

  tmpl::TemplateStore store;
  for (const core::MatchedPair& pair : joined.pairs) {
    StatusOr<tmpl::Template> t = tmpl::GenerateTemplate(
        train.sparql_queries[pair.q_index], sides.d_graphs[pair.q_index],
        sides.u_parsed[pair.g_index], sides.u_graphs[pair.g_index],
        pair.mapping, kb.dict());
    if (t.ok()) store.Add(*std::move(t), kb.dict());
  }
  std::printf("templates generated: %d (from %zu matched pairs)\n\n",
              store.size(), joined.pairs.size());

  workload::WorkloadConfig test_config;
  test_config.seed = 79;
  test_config.num_questions = 200;
  workload::Workload test = workload::GenerateWorkload(kb, test_config);

  tmpl::TemplateQa template_qa(&store, &kb.lexicon(), &kb.store(), &kb.dict());
  Macro ours, direct, greedy;
  for (const workload::QuestionInstance& question : test.questions) {
    std::vector<std::vector<rdf::TermId>> gold =
        kb.store().Evaluate(question.gold_query.ToBgp(), kb.dict());
    using Rows = std::vector<std::vector<rdf::TermId>>;

    StatusOr<tmpl::QaAnswer> a = template_qa.Answer(question.text);
    ours.Add(tmpl::ScoreAnswer(gold, a.ok() ? a->rows : Rows{}));
    StatusOr<tmpl::QaAnswer> b =
        tmpl::DirectGraphQa(question.text, kb.lexicon(), kb.store(), kb.dict());
    direct.Add(tmpl::ScoreAnswer(gold, b.ok() ? b->rows : Rows{}));
    StatusOr<tmpl::QaAnswer> c =
        tmpl::JointGreedyQa(question.text, kb.lexicon(), kb.store(), kb.dict());
    greedy.Add(tmpl::ScoreAnswer(gold, c.ok() ? c->rows : Rows{}));
  }

  std::printf("held-out questions: %zu\n", test.questions.size());
  std::printf("%-24s %6s %6s %6s\n", "Method", "P", "R", "F1");
  ours.Print("Our method (templates)");
  direct.Print("gAnswer-style");
  greedy.Print("DEANNA-style");
  return 0;
}
