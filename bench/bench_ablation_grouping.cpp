// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Ablation: the Section 6.2 group-split heuristics.
//
// Compares the cost-model-driven split (the paper's design) against the
// two raw selection principles in isolation (highest uncertain mass / most
// labels): candidate ratio and overall time at a fixed GN.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace simj;
  bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Ablation: group-split heuristics (SF, GN = 12)");

  workload::SyntheticConfig config;
  config.seed = 105;
  config.num_certain = 100;
  config.num_uncertain = 100;
  config.num_vertices = 10;
  config.num_edges = 14;
  config.labels_per_vertex = 4;
  workload::SyntheticDataset data = workload::MakeSfDataset(config);

  struct Variant {
    const char* name;
    core::SplitHeuristic heuristic;
  };
  Variant variants[] = {
      {"cost model (paper)", core::SplitHeuristic::kCostModel},
      {"mass only", core::SplitHeuristic::kMassOnly},
      {"label count only", core::SplitHeuristic::kCountOnly},
  };

  std::printf("%-20s %12s %12s %10s\n", "heuristic", "candidates",
              "pruning(s)", "wall(s)");
  for (const Variant& variant : variants) {
    core::SimJParams params = bench::ParamsFor(bench::JoinConfig::kSimJOpt,
                                               /*tau=*/2, /*alpha=*/0.4,
                                               /*group_count=*/12);
    params.split_heuristic = variant.heuristic;
    bench::EfficiencyRow row = bench::RunEfficiency(
        data.certain, data.uncertain, data.dict, params);
    std::printf("%-20s %11.3f%% %12.3f %10.3f\n", variant.name,
                100.0 * row.candidate_ratio, row.pruning_cpu_seconds,
                row.wall_seconds);
  }
  return 0;
}
