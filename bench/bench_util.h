// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Shared helpers for the experiment harnesses: standard dataset recipes
// (scaled-down versions of the paper's workloads — see DESIGN.md for the
// scaling rationale), join-configuration runners, and quality accounting.

#ifndef SIMJ_BENCH_BENCH_UTIL_H_
#define SIMJ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "core/join.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/timer.h"
#include "util/trace.h"
#include "workload/knowledge_base.h"
#include "workload/question_gen.h"
#include "workload/synthetic.h"

namespace simj::bench {

// ---------------------------------------------------------------------------
// Harness-wide options. Every bench calls ParseBenchFlags(argc, argv) at the
// top of main(); flags shared by all harnesses land here and are picked up
// by ParamsFor() / the atexit emitter, so each experiment gains threading,
// metrics, tracing, and explain support without touching its code.
// ---------------------------------------------------------------------------

struct BenchOptions {
  int threads = 1;            // --threads: 0 = hardware concurrency, 1 = serial
  std::string metrics_out;    // --metrics_out: exposition-text dump path
  std::string trace_out;      // --trace_out: Chrome-trace JSON dump path
  bool explain = false;       // --explain: record per-pair prune explanations
  int explain_every = 1;      // --explain_every: sample every Nth pair
  std::string explain_out;    // --explain_out: explain dump path ("" = stdout)
};

inline BenchOptions& GlobalBenchOptions() {
  static BenchOptions options;
  return options;
}

// The flags every harness understands; harness-specific flags are passed to
// ParseBenchFlags as `extra_known`.
struct BenchFlagDoc {
  const char* name;
  const char* help;
};

inline const std::vector<BenchFlagDoc>& SharedBenchFlags() {
  static const std::vector<BenchFlagDoc> docs = {
      {"threads", "worker threads (0 = hardware concurrency, 1 = serial)"},
      {"metrics_out", "write Prometheus-style metrics exposition here"},
      {"trace_out", "write Chrome-trace JSON here (open in Perfetto)"},
      {"explain", "1 = record per-pair prune explanations"},
      {"explain_every", "sample every Nth pair in explain mode (default 1)"},
      {"explain_out", "write explain dump here instead of stdout"},
  };
  return docs;
}

inline void PrintBenchUsage(const char* argv0,
                            std::initializer_list<const char*> extra_known) {
  std::fprintf(stderr, "usage: %s [--flag=value ...]\n", argv0);
  std::fprintf(stderr, "shared flags:\n");
  for (const BenchFlagDoc& doc : SharedBenchFlags()) {
    std::fprintf(stderr, "  --%-14s %s\n", doc.name, doc.help);
  }
  if (extra_known.size() > 0) {
    std::fprintf(stderr, "flags specific to this harness:\n");
    for (const char* name : extra_known) {
      std::fprintf(stderr, "  --%s\n", name);
    }
  }
}

// Dumps the metrics / trace sinks requested on the command line. Registered
// via atexit so every harness emits them on any successful exit path.
inline void EmitBenchArtifacts() {
  const BenchOptions& options = GlobalBenchOptions();
  if (!options.metrics_out.empty()) {
    FILE* f = std::fopen(options.metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot open --metrics_out=%s\n",
                   options.metrics_out.c_str());
    } else {
      std::string text = metrics::Registry::Global().ExpositionText();
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "metrics exposition written to %s\n",
                   options.metrics_out.c_str());
    }
  }
  if (!options.trace_out.empty()) {
    trace::Tracer::Global().Stop();
    std::ofstream os(options.trace_out);
    if (!os) {
      std::fprintf(stderr, "warning: cannot open --trace_out=%s\n",
                   options.trace_out.c_str());
    } else {
      trace::Tracer::Global().WriteChromeTrace(os);
      std::fprintf(stderr, "chrome trace written to %s (open in Perfetto)\n",
                   options.trace_out.c_str());
    }
  }
}

// Parses and validates the command line. Unknown --flags (and --flags
// missing an =value) abort with a usage listing, so a typo like --thread=4
// fails loudly instead of silently running with defaults.
inline Flags ParseBenchFlags(int argc, char** argv,
                             std::initializer_list<const char*> extra_known =
                                 {}) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) continue;
    const size_t eq = arg.find('=');
    const std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    bool known = false;
    for (const BenchFlagDoc& doc : SharedBenchFlags()) {
      if (key == doc.name) known = true;
    }
    for (const char* name : extra_known) {
      if (key == name) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
      PrintBenchUsage(argv[0], extra_known);
      std::exit(2);
    }
    if (eq == std::string::npos) {
      std::fprintf(stderr, "error: flag --%s needs a value (--%s=...)\n",
                   key.c_str(), key.c_str());
      PrintBenchUsage(argv[0], extra_known);
      std::exit(2);
    }
  }
  Flags flags(argc, argv);
  BenchOptions& options = GlobalBenchOptions();
  options.threads = static_cast<int>(flags.GetInt("threads", options.threads));
  options.metrics_out = flags.GetString("metrics_out", options.metrics_out);
  options.trace_out = flags.GetString("trace_out", options.trace_out);
  options.explain = flags.GetBool("explain", options.explain);
  options.explain_every =
      static_cast<int>(flags.GetInt("explain_every", options.explain_every));
  options.explain_out = flags.GetString("explain_out", options.explain_out);
  if (!options.explain_out.empty()) options.explain = true;
  if (!options.trace_out.empty()) trace::Tracer::Global().Start();
  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit(EmitBenchArtifacts);
  }
  return flags;
}

// ---------------------------------------------------------------------------
// Dataset recipes. Paper scales (Table 2) are quoted in comments; defaults
// here are sized so every harness finishes in at most a few minutes on one
// core while preserving the relative curves.
// ---------------------------------------------------------------------------

// A question/SPARQL workload bundle ready for joining.
struct QaDataset {
  std::unique_ptr<workload::KnowledgeBase> kb;
  workload::Workload workload;
  workload::JoinSides sides;
};

// QALD-3-like: 200 questions, |D| = 200 (paper: 200/200).
inline QaDataset MakeQald3Like(uint64_t seed = 42) {
  QaDataset data;
  data.kb = std::make_unique<workload::KnowledgeBase>(
      workload::KbConfig{.seed = seed});
  workload::WorkloadConfig config;
  config.seed = seed + 1;
  config.num_questions = 200;
  config.distractor_queries = 40;
  data.workload = workload::GenerateWorkload(*data.kb, config);
  data.sides = workload::BuildJoinSides(*data.kb, data.workload);
  return data;
}

// WebQ-like: paper 5,810 questions vs 73,057 queries; scaled ~20x down,
// keeping |D| >> |U|.
inline QaDataset MakeWebQLike(uint64_t seed = 43) {
  QaDataset data;
  workload::KbConfig kb_config;
  kb_config.seed = seed;
  kb_config.entities_per_class = 60;
  data.kb = std::make_unique<workload::KnowledgeBase>(kb_config);
  workload::WorkloadConfig config;
  config.seed = seed + 1;
  config.num_questions = 300;
  config.distractor_queries = 2200;
  data.workload = workload::GenerateWorkload(*data.kb, config);
  data.sides = workload::BuildJoinSides(*data.kb, data.workload);
  return data;
}

// MM-like: closed domain (music & movies), |U| > |D| (paper: 23,250/2,500).
inline QaDataset MakeMmLike(uint64_t seed = 44) {
  QaDataset data;
  workload::KbConfig kb_config;
  kb_config.seed = seed;
  kb_config.closed_domain = true;
  // A focused domain links more reliably (the paper credits MM's higher
  // precision to questions and queries sharing similar topics).
  kb_config.entity_phrase_ambiguity = 0.25;
  kb_config.relation_top1_accuracy = 0.85;
  data.kb = std::make_unique<workload::KnowledgeBase>(kb_config);
  workload::WorkloadConfig config;
  config.seed = seed + 1;
  config.num_questions = 400;
  config.distractor_queries = 0;
  data.workload = workload::GenerateWorkload(*data.kb, config);
  data.sides = workload::BuildJoinSides(*data.kb, data.workload);
  return data;
}

// ---------------------------------------------------------------------------
// Join configurations (the three curves of Figs. 11-14).
// ---------------------------------------------------------------------------

enum class JoinConfig { kCssOnly, kSimJ, kSimJOpt };

inline const char* ConfigName(JoinConfig config) {
  switch (config) {
    case JoinConfig::kCssOnly:
      return "CSS only";
    case JoinConfig::kSimJ:
      return "SimJ";
    case JoinConfig::kSimJOpt:
      return "SimJ+opt";
  }
  return "?";
}

inline core::SimJParams ParamsFor(JoinConfig config, int tau, double alpha,
                                  int group_count = 8) {
  core::SimJParams params;
  params.tau = tau;
  params.alpha = alpha;
  params.structural_pruning = true;
  params.probabilistic_pruning = config != JoinConfig::kCssOnly;
  params.group_count = config == JoinConfig::kSimJOpt ? group_count : 1;
  params.num_threads = GlobalBenchOptions().threads;
  params.explain.enabled = GlobalBenchOptions().explain;
  params.explain.sample_every = GlobalBenchOptions().explain_every;
  return params;
}

// Dumps per-pair explanations if --explain was requested, to --explain_out
// or stdout.
inline void MaybeDumpExplains(const core::JoinResult& result,
                              const core::SimJParams& params) {
  if (!params.explain.enabled) return;
  std::string text = core::FormatExplains(result, params);
  const std::string& path = GlobalBenchOptions().explain_out;
  if (path.empty()) {
    std::fputs(text.c_str(), stdout);
    return;
  }
  std::ofstream os(path, std::ios::app);
  if (!os) {
    std::fprintf(stderr, "warning: cannot open --explain_out=%s\n",
                 path.c_str());
    return;
  }
  os << text;
  std::fprintf(stderr, "explain dump appended to %s\n", path.c_str());
}

// ---------------------------------------------------------------------------
// Quality accounting for workload joins.
// ---------------------------------------------------------------------------

struct QualityResult {
  int64_t returned = 0;
  int64_t correct = 0;
  double seconds = 0.0;

  double Precision() const {
    return returned == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(returned);
  }
};

// Runs the join over a QA dataset and scores each returned pair against the
// paper's correctness criterion (typed query graphs match except entities).
inline QualityResult RunQualityJoin(QaDataset& data,
                                    const core::SimJParams& params,
                                    core::JoinResult* out = nullptr) {
  QualityResult result;
  WallTimer timer;
  core::JoinResult joined =
      core::SimJoin(data.sides.d, data.sides.u, params, data.kb->dict());
  result.seconds = timer.ElapsedSeconds();
  result.returned = static_cast<int64_t>(joined.pairs.size());
  for (const core::MatchedPair& pair : joined.pairs) {
    int question_index = data.sides.u_question_index[pair.g_index];
    if (workload::SameIntent(
            *data.kb, data.workload.sparql_queries[pair.q_index],
            data.workload.questions[question_index].gold_query)) {
      ++result.correct;
    }
  }
  MaybeDumpExplains(joined, params);
  if (out != nullptr) *out = std::move(joined);
  return result;
}

// ---------------------------------------------------------------------------
// Efficiency accounting (Figs. 11-14).
// ---------------------------------------------------------------------------

struct EfficiencyRow {
  // CPU seconds are summed across worker threads; wall seconds are measured
  // once around the whole join. They coincide on a serial run.
  double pruning_cpu_seconds = 0.0;
  double verification_cpu_seconds = 0.0;
  double cpu_seconds = 0.0;
  double wall_seconds = 0.0;
  double candidate_ratio = 0.0;  // candidates / (|D| * |U|)
  double real_ratio = 0.0;       // actual results / (|D| * |U|)
  int64_t results = 0;
};

inline EfficiencyRow RunEfficiency(
    const std::vector<graph::LabeledGraph>& d,
    const std::vector<graph::UncertainGraph>& u,
    const graph::LabelDictionary& dict, const core::SimJParams& params) {
  core::JoinResult joined = core::SimJoin(d, u, params, dict);
  EfficiencyRow row;
  row.pruning_cpu_seconds = joined.stats.pruning_cpu_seconds;
  row.verification_cpu_seconds = joined.stats.verification_cpu_seconds;
  row.cpu_seconds = joined.stats.TotalCpuSeconds();
  row.wall_seconds = joined.stats.wall_seconds;
  row.candidate_ratio = joined.stats.CandidateRatio();
  row.results = joined.stats.results;
  if (joined.stats.total_pairs > 0) {
    row.real_ratio = static_cast<double>(joined.stats.results) /
                     static_cast<double>(joined.stats.total_pairs);
  }
  MaybeDumpExplains(joined, params);
  return row;
}

// ---------------------------------------------------------------------------
// Output helpers.
// ---------------------------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace simj::bench

#endif  // SIMJ_BENCH_BENCH_UTIL_H_
