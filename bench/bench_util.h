// Shared helpers for the experiment harnesses: standard dataset recipes
// (scaled-down versions of the paper's workloads — see DESIGN.md for the
// scaling rationale), join-configuration runners, and quality accounting.

#ifndef SIMJ_BENCH_BENCH_UTIL_H_
#define SIMJ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/join.h"
#include "util/flags.h"
#include "util/timer.h"
#include "workload/knowledge_base.h"
#include "workload/question_gen.h"
#include "workload/synthetic.h"

namespace simj::bench {

// ---------------------------------------------------------------------------
// Harness-wide options. Every bench calls ParseBenchFlags(argc, argv) at the
// top of main(); flags shared by all harnesses (--threads=N, 0 = hardware
// concurrency, 1 = serial) land here and are picked up by ParamsFor(), so
// each experiment can be rerun parallel without touching its code.
// ---------------------------------------------------------------------------

struct BenchOptions {
  int threads = 1;
};

inline BenchOptions& GlobalBenchOptions() {
  static BenchOptions options;
  return options;
}

inline Flags ParseBenchFlags(int argc, char** argv) {
  Flags flags(argc, argv);
  GlobalBenchOptions().threads =
      static_cast<int>(flags.GetInt("threads", GlobalBenchOptions().threads));
  return flags;
}

// ---------------------------------------------------------------------------
// Dataset recipes. Paper scales (Table 2) are quoted in comments; defaults
// here are sized so every harness finishes in at most a few minutes on one
// core while preserving the relative curves.
// ---------------------------------------------------------------------------

// A question/SPARQL workload bundle ready for joining.
struct QaDataset {
  std::unique_ptr<workload::KnowledgeBase> kb;
  workload::Workload workload;
  workload::JoinSides sides;
};

// QALD-3-like: 200 questions, |D| = 200 (paper: 200/200).
inline QaDataset MakeQald3Like(uint64_t seed = 42) {
  QaDataset data;
  data.kb = std::make_unique<workload::KnowledgeBase>(
      workload::KbConfig{.seed = seed});
  workload::WorkloadConfig config;
  config.seed = seed + 1;
  config.num_questions = 200;
  config.distractor_queries = 40;
  data.workload = workload::GenerateWorkload(*data.kb, config);
  data.sides = workload::BuildJoinSides(*data.kb, data.workload);
  return data;
}

// WebQ-like: paper 5,810 questions vs 73,057 queries; scaled ~20x down,
// keeping |D| >> |U|.
inline QaDataset MakeWebQLike(uint64_t seed = 43) {
  QaDataset data;
  workload::KbConfig kb_config;
  kb_config.seed = seed;
  kb_config.entities_per_class = 60;
  data.kb = std::make_unique<workload::KnowledgeBase>(kb_config);
  workload::WorkloadConfig config;
  config.seed = seed + 1;
  config.num_questions = 300;
  config.distractor_queries = 2200;
  data.workload = workload::GenerateWorkload(*data.kb, config);
  data.sides = workload::BuildJoinSides(*data.kb, data.workload);
  return data;
}

// MM-like: closed domain (music & movies), |U| > |D| (paper: 23,250/2,500).
inline QaDataset MakeMmLike(uint64_t seed = 44) {
  QaDataset data;
  workload::KbConfig kb_config;
  kb_config.seed = seed;
  kb_config.closed_domain = true;
  // A focused domain links more reliably (the paper credits MM's higher
  // precision to questions and queries sharing similar topics).
  kb_config.entity_phrase_ambiguity = 0.25;
  kb_config.relation_top1_accuracy = 0.85;
  data.kb = std::make_unique<workload::KnowledgeBase>(kb_config);
  workload::WorkloadConfig config;
  config.seed = seed + 1;
  config.num_questions = 400;
  config.distractor_queries = 0;
  data.workload = workload::GenerateWorkload(*data.kb, config);
  data.sides = workload::BuildJoinSides(*data.kb, data.workload);
  return data;
}

// ---------------------------------------------------------------------------
// Join configurations (the three curves of Figs. 11-14).
// ---------------------------------------------------------------------------

enum class JoinConfig { kCssOnly, kSimJ, kSimJOpt };

inline const char* ConfigName(JoinConfig config) {
  switch (config) {
    case JoinConfig::kCssOnly:
      return "CSS only";
    case JoinConfig::kSimJ:
      return "SimJ";
    case JoinConfig::kSimJOpt:
      return "SimJ+opt";
  }
  return "?";
}

inline core::SimJParams ParamsFor(JoinConfig config, int tau, double alpha,
                                  int group_count = 8) {
  core::SimJParams params;
  params.tau = tau;
  params.alpha = alpha;
  params.structural_pruning = true;
  params.probabilistic_pruning = config != JoinConfig::kCssOnly;
  params.group_count = config == JoinConfig::kSimJOpt ? group_count : 1;
  params.num_threads = GlobalBenchOptions().threads;
  return params;
}

// ---------------------------------------------------------------------------
// Quality accounting for workload joins.
// ---------------------------------------------------------------------------

struct QualityResult {
  int64_t returned = 0;
  int64_t correct = 0;
  double seconds = 0.0;

  double Precision() const {
    return returned == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(returned);
  }
};

// Runs the join over a QA dataset and scores each returned pair against the
// paper's correctness criterion (typed query graphs match except entities).
inline QualityResult RunQualityJoin(QaDataset& data,
                                    const core::SimJParams& params,
                                    core::JoinResult* out = nullptr) {
  QualityResult result;
  WallTimer timer;
  core::JoinResult joined =
      core::SimJoin(data.sides.d, data.sides.u, params, data.kb->dict());
  result.seconds = timer.ElapsedSeconds();
  result.returned = static_cast<int64_t>(joined.pairs.size());
  for (const core::MatchedPair& pair : joined.pairs) {
    int question_index = data.sides.u_question_index[pair.g_index];
    if (workload::SameIntent(
            *data.kb, data.workload.sparql_queries[pair.q_index],
            data.workload.questions[question_index].gold_query)) {
      ++result.correct;
    }
  }
  if (out != nullptr) *out = std::move(joined);
  return result;
}

// ---------------------------------------------------------------------------
// Efficiency accounting (Figs. 11-14).
// ---------------------------------------------------------------------------

struct EfficiencyRow {
  double pruning_seconds = 0.0;
  double verification_seconds = 0.0;
  double overall_seconds = 0.0;
  double candidate_ratio = 0.0;  // candidates / (|D| * |U|)
  double real_ratio = 0.0;       // actual results / (|D| * |U|)
  int64_t results = 0;
};

inline EfficiencyRow RunEfficiency(
    const std::vector<graph::LabeledGraph>& d,
    const std::vector<graph::UncertainGraph>& u,
    const graph::LabelDictionary& dict, const core::SimJParams& params) {
  core::JoinResult joined = core::SimJoin(d, u, params, dict);
  EfficiencyRow row;
  row.pruning_seconds = joined.stats.pruning_seconds;
  row.verification_seconds = joined.stats.verification_seconds;
  row.overall_seconds = joined.stats.TotalSeconds();
  row.candidate_ratio = joined.stats.CandidateRatio();
  row.results = joined.stats.results;
  if (joined.stats.total_pairs > 0) {
    row.real_ratio = static_cast<double>(joined.stats.results) /
                     static_cast<double>(joined.stats.total_pairs);
  }
  return row;
}

// ---------------------------------------------------------------------------
// Output helpers.
// ---------------------------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace simj::bench

#endif  // SIMJ_BENCH_BENCH_UTIL_H_
