// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Shared helpers for the experiment harnesses: standard dataset recipes
// (scaled-down versions of the paper's workloads — see DESIGN.md for the
// scaling rationale), join-configuration runners, quality accounting, and
// the shared telemetry path: every harness that calls ParseBenchFlags gains
// --threads/--repeat/--json_out/--metrics_out/--trace_out/--log_*/--explain*
// support plus live introspection (--statusz_port/--progress_every/
// --stall_warn_ms, see util/statusz.h) and emits a versioned BenchResult
// run record (util/run_record.h) at exit when --json_out= is given — no
// per-harness wiring.

#ifndef SIMJ_BENCH_BENCH_UTIL_H_
#define SIMJ_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/join.h"
#include "core/progress.h"
#include "util/flags.h"
#include "util/flight_recorder.h"
#include "util/heap_profiler.h"
#include "util/log.h"
#include "util/mem.h"
#include "util/metrics.h"
#include "util/profiler.h"
#include "util/run_record.h"
#include "util/statusz.h"
#include "util/strings.h"
#include "util/timer.h"
#include "util/trace.h"
#include "workload/knowledge_base.h"
#include "workload/question_gen.h"
#include "workload/synthetic.h"

namespace simj::bench {

// ---------------------------------------------------------------------------
// Harness-wide options. Every bench calls ParseBenchFlags(argc, argv) at the
// top of main(); flags shared by all harnesses land here and are picked up
// by ParamsFor() / the atexit emitter, so each experiment gains threading,
// repeated trials, metrics, tracing, logging, run records, and explain
// support without touching its code.
// ---------------------------------------------------------------------------

struct BenchOptions {
  int threads = 1;            // --threads: 0 = hardware concurrency, 1 = serial
  int repeat = 3;             // --repeat: timed trials per measured join
  std::string json_out;       // --json_out: BenchResult JSON run record path
  std::string metrics_out;    // --metrics_out: exposition-text dump path
  std::string trace_out;      // --trace_out: Chrome-trace JSON dump path
  std::string events_out;     // --events_out: flight-recorder JSON dump path
  std::string log_level = "info";  // --log_level: debug|info|warn|error
  std::string log_json;       // --log_json: JSON-lines log sink path
  double slow_pair_ms = 1000.0;  // --slow_pair_ms: watchdog budget (0 = off)
  double stall_warn_ms = 0.0;  // --stall_warn_ms: stall watchdog (0 = off)
  int64_t progress_every = 0;  // --progress_every: progress line cadence
  int statusz_port = 0;       // --statusz_port: introspection port (0 = off)
  bool explain = false;       // --explain: record per-pair prune explanations
  int explain_every = 1;      // --explain_every: sample every Nth pair
  std::string explain_out;    // --explain_out: explain dump path ("" = stdout)
  int profile_hz = 0;         // --profile_hz: CPU sampling rate (0 = off)
  std::string profile_out;    // --profile_out: simj_profile_v1 JSON dump path
  int64_t heap_sample_bytes = 0;  // --heap_sample_bytes: heap rate (0 = off)
  std::string heap_out;       // --heap_out: simj_heap_v1 JSON dump path
};

inline BenchOptions& GlobalBenchOptions() {
  static BenchOptions options;
  return options;
}

// Accumulates the run record while the harness executes; emitted at exit.
struct BenchRecorder {
  WallTimer process_timer;
  run_record::BenchResult result;
  std::map<std::string, int> name_counts;  // sample-name disambiguation
};

inline BenchRecorder& GlobalBenchRecorder() {
  static BenchRecorder recorder;
  return recorder;
}

// Appends one measured sample to the harness run record. `name` should be
// a pure function of the measured configuration so bench_compare.py can
// match samples across runs; identical names gain a " #k" suffix in call
// order (also deterministic).
inline void RecordBenchSample(const std::string& name,
                              const run_record::Stats& wall,
                              const run_record::Stats& cpu,
                              std::map<std::string, double> values = {},
                              bool skipped = false) {
  BenchRecorder& recorder = GlobalBenchRecorder();
  int& count = recorder.name_counts[name];
  ++count;
  run_record::Sample sample;
  sample.name = count == 1 ? name : name + " #" + std::to_string(count);
  sample.wall_seconds = wall;
  sample.cpu_seconds = cpu;
  sample.values = std::move(values);
  sample.skipped = skipped;
  recorder.result.samples.push_back(std::move(sample));
}

// The flags every harness understands; harness-specific flags are passed to
// ParseBenchFlags as `extra_known`.
struct BenchFlagDoc {
  const char* name;
  const char* help;
};

inline const std::vector<BenchFlagDoc>& SharedBenchFlags() {
  static const std::vector<BenchFlagDoc> docs = {
      {"threads", "worker threads (0 = hardware concurrency, 1 = serial)"},
      {"repeat", "timed trials per measured join, after one discarded "
                 "warmup (default 3; 1 = single trial, no warmup)"},
      {"json_out", "write a BenchResult JSON run record here (see "
                   "tools/bench_compare.py)"},
      {"metrics_out", "write Prometheus-style metrics exposition here"},
      {"trace_out", "write Chrome-trace JSON here (open in Perfetto)"},
      {"events_out", "write the coordinator flight-recorder JSON dump here "
                     "(sharded joins only; see DESIGN.md §10)"},
      {"log_level", "minimum log level: debug|info|warn|error (default info)"},
      {"log_json", "write JSON-lines structured logs here instead of stderr "
                   "text"},
      {"slow_pair_ms", "log pairs whose evaluation exceeds this many ms "
                       "(default 1000; 0 disables the watchdog)"},
      {"stall_warn_ms", "warn when a worker sits inside one pair longer "
                        "than this many ms (default 0 = off)"},
      {"progress_every", "log a join progress line every N completed pairs "
                         "(default 0 = off)"},
      {"statusz_port", "serve /statusz /metricsz /tracez /healthz on "
                       "127.0.0.1:PORT while running (default 0 = off)"},
      {"explain", "1 = record per-pair prune explanations"},
      {"explain_every", "sample every Nth pair in explain mode (default 1)"},
      {"explain_out", "write explain dump here instead of stdout"},
      {"profile_hz", "sampling CPU profiler frequency (default 0 = off; "
                     "implied 99 when only --profile_out is given)"},
      {"profile_out", "write the simj_profile_v1 JSON capture here at exit "
                      "(see tools/flame.py); also embedded in --json_out"},
      {"heap_sample_bytes", "sampling heap profiler rate: one sampled "
                            "allocation per this many bytes (default 0 = "
                            "off; implied 524288 when only --heap_out is "
                            "given)"},
      {"heap_out", "write the simj_heap_v1 JSON capture here at exit (see "
                   "tools/flame.py --metric); also embedded in --json_out"},
  };
  return docs;
}

inline void PrintBenchUsage(const char* argv0,
                            std::initializer_list<const char*> extra_known) {
  std::fprintf(stderr, "usage: %s [--flag=value ...]\n", argv0);
  std::fprintf(stderr, "shared flags:\n");
  for (const BenchFlagDoc& doc : SharedBenchFlags()) {
    std::fprintf(stderr, "  --%-14s %s\n", doc.name, doc.help);
  }
  if (extra_known.size() > 0) {
    std::fprintf(stderr, "flags specific to this harness:\n");
    for (const char* name : extra_known) {
      std::fprintf(stderr, "  --%s\n", name);
    }
  }
}

// The harness's statusz server, when --statusz_port was given. Leaky (the
// accept thread may outlive main's locals) but stopped by the atexit
// emitter so process teardown never races the accept loop.
inline statusz::Server*& GlobalStatuszServer() {
  static statusz::Server* server = nullptr;
  return server;
}

// Dumps the sinks requested on the command line (metrics exposition, Chrome
// trace, BenchResult run record). Registered via atexit so every harness
// emits them on any successful exit path.
inline void EmitBenchArtifacts() {
  const BenchOptions& options = GlobalBenchOptions();
  if (statusz::Server* server = GlobalStatuszServer()) server->Stop();
  if (prof::ProfilingActive()) {
    StatusOr<prof::Profile> profile = prof::StopProfiling();
    if (!profile.ok()) {
      SIMJ_LOG(WARN) << "profiler capture failed: "
                     << profile.status().ToString();
    } else {
      const std::string json = prof::ProfileJson(*profile);
      if (!options.profile_out.empty()) {
        std::ofstream os(options.profile_out);
        if (!os) {
          SIMJ_LOG(WARN) << "cannot open --profile_out="
                         << options.profile_out;
        } else {
          os << json;
          SIMJ_LOG(INFO) << "cpu profile (" << profile->TotalSamples()
                         << " samples, " << profile->sections.size()
                         << " sections) written to " << options.profile_out
                         << " (render with tools/flame.py)";
        }
      }
      // Embed in the run record (sans trailing newline: it is spliced as
      // a raw JSON object value) so bench_compare.py can diff hot paths.
      GlobalBenchRecorder().result.profile_json =
          json.substr(0, json.find_last_not_of('\n') + 1);
    }
  }
  if (heapprof::HeapProfilingActive()) {
    StatusOr<heapprof::HeapProfile> heap = heapprof::StopHeapProfiling();
    if (!heap.ok()) {
      SIMJ_LOG(WARN) << "heap profiler capture failed: "
                     << heap.status().ToString();
    } else {
      const std::string json = heapprof::HeapProfileJson(*heap);
      if (!options.heap_out.empty()) {
        std::ofstream os(options.heap_out);
        if (!os) {
          SIMJ_LOG(WARN) << "cannot open --heap_out=" << options.heap_out;
        } else {
          os << json;
          SIMJ_LOG(INFO) << "heap profile (" << heap->TotalAllocObjects()
                         << " sampled allocations, " << heap->sections.size()
                         << " sections) written to " << options.heap_out
                         << " (render with tools/flame.py --metric)";
        }
      }
      GlobalBenchRecorder().result.heap_json =
          json.substr(0, json.find_last_not_of('\n') + 1);
      // End-of-run leak report: stacks still holding sampled bytes now
      // that the measured work is done. Raw sampled bytes (each sampled
      // object stands for ~sample_bytes of allocation, nothing upscaled).
      std::vector<const heapprof::HeapFoldedStack*> live;
      for (const heapprof::HeapSection& section : heap->sections) {
        for (const heapprof::HeapFoldedStack& stack : section.batch.stacks) {
          if (stack.inuse_bytes > 0) live.push_back(&stack);
        }
      }
      std::sort(live.begin(), live.end(),
                [](const heapprof::HeapFoldedStack* a,
                   const heapprof::HeapFoldedStack* b) {
                  return a->inuse_bytes > b->inuse_bytes;
                });
      SIMJ_LOG(INFO) << "heap leak report: " << heap->TotalInuseBytes()
                     << " sampled bytes live at exit across " << live.size()
                     << " stacks";
      for (size_t i = 0; i < live.size() && i < 3; ++i) {
        const heapprof::HeapFoldedStack& stack = *live[i];
        SIMJ_LOG(INFO) << "  leak #" << (i + 1) << ": "
                       << stack.inuse_bytes << " bytes / "
                       << stack.inuse_objects << " objects at "
                       << (stack.frames.empty() ? "[unknown]"
                                                : stack.frames.back())
                       << " (thread " << stack.thread << ")";
      }
    }
  }
  if (!options.metrics_out.empty()) {
    FILE* f = std::fopen(options.metrics_out.c_str(), "w");
    if (f == nullptr) {
      SIMJ_LOG(WARN) << "cannot open --metrics_out=" << options.metrics_out;
    } else {
      std::string text = metrics::Registry::Global().ExpositionText();
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      SIMJ_LOG(INFO) << "metrics exposition written to "
                     << options.metrics_out;
    }
  }
  if (!options.trace_out.empty()) {
    trace::Tracer::Global().Stop();
    std::ofstream os(options.trace_out);
    if (!os) {
      SIMJ_LOG(WARN) << "cannot open --trace_out=" << options.trace_out;
    } else {
      trace::Tracer::Global().WriteChromeTrace(os);
      SIMJ_LOG(INFO) << "chrome trace written to " << options.trace_out
                     << " (open in Perfetto)";
    }
  }
  if (!options.events_out.empty()) {
    std::ofstream os(options.events_out);
    if (!os) {
      SIMJ_LOG(WARN) << "cannot open --events_out=" << options.events_out;
    } else {
      os << flight::FlightRecorder::Global().ToJson();
      SIMJ_LOG(INFO) << "flight-recorder events written to "
                     << options.events_out;
    }
  }
  if (!options.json_out.empty()) {
    BenchRecorder& recorder = GlobalBenchRecorder();
    run_record::BenchResult& result = recorder.result;
    result.unix_time_seconds = run_record::NowUnixSeconds();
    result.git = run_record::QueryGitInfo();
    result.build = run_record::CurrentBuildInfo();
    result.hardware = run_record::CurrentHardwareInfo();
    result.wall_seconds_total = recorder.process_timer.ElapsedSeconds();
    mem::SampleRssToMetrics();
    result.peak_rss_bytes = mem::PeakRssBytes();
    result.metrics = metrics::Registry::Global().Snapshot();
    Status status = run_record::WriteJsonFile(result, options.json_out);
    if (!status.ok()) {
      SIMJ_LOG(WARN) << "cannot write --json_out=" << options.json_out
                     << ": " << status.ToString();
    } else {
      SIMJ_LOG(INFO) << "bench result (" << result.samples.size()
                     << " samples) written to " << options.json_out;
    }
  }
}

// Applies parsed shared flags: fills BenchOptions, configures the log
// threshold and sink, starts tracing, seeds the run record, and registers
// the atexit emitter. Shared by ParseBenchFlags and ConsumeSharedFlags.
inline void ApplySharedFlags(const Flags& flags, const char* argv0) {
  BenchOptions& options = GlobalBenchOptions();
  options.threads = static_cast<int>(flags.GetInt("threads", options.threads));
  options.repeat = static_cast<int>(flags.GetInt("repeat", options.repeat));
  options.json_out = flags.GetString("json_out", options.json_out);
  options.metrics_out = flags.GetString("metrics_out", options.metrics_out);
  options.trace_out = flags.GetString("trace_out", options.trace_out);
  options.events_out = flags.GetString("events_out", options.events_out);
  options.log_level = flags.GetString("log_level", options.log_level);
  options.log_json = flags.GetString("log_json", options.log_json);
  options.slow_pair_ms =
      flags.GetDouble("slow_pair_ms", options.slow_pair_ms);
  options.stall_warn_ms =
      flags.GetDouble("stall_warn_ms", options.stall_warn_ms);
  options.progress_every =
      flags.GetInt("progress_every", options.progress_every);
  options.statusz_port =
      static_cast<int>(flags.GetInt("statusz_port", options.statusz_port));
  options.explain = flags.GetBool("explain", options.explain);
  options.explain_every =
      static_cast<int>(flags.GetInt("explain_every", options.explain_every));
  options.explain_out = flags.GetString("explain_out", options.explain_out);
  if (!options.explain_out.empty()) options.explain = true;
  options.profile_hz =
      static_cast<int>(flags.GetInt("profile_hz", options.profile_hz));
  options.profile_out = flags.GetString("profile_out", options.profile_out);
  if (!options.profile_out.empty() && options.profile_hz == 0) {
    options.profile_hz = 99;  // a sink without a rate means "default rate"
  }
  options.heap_sample_bytes =
      flags.GetInt("heap_sample_bytes", options.heap_sample_bytes);
  options.heap_out = flags.GetString("heap_out", options.heap_out);
  if (!options.heap_out.empty() && options.heap_sample_bytes == 0) {
    options.heap_sample_bytes = heapprof::kDefaultSampleBytes;
  }

  log::Level level = log::Level::kInfo;
  if (!log::ParseLevel(options.log_level, &level)) {
    std::fprintf(stderr, "error: unknown --log_level=%s\n",
                 options.log_level.c_str());
    std::exit(2);
  }
  log::SetMinLevel(level);
  if (!options.log_json.empty()) {
    auto sink = std::make_unique<log::JsonLinesSink>(options.log_json);
    if (!sink->ok()) {
      std::fprintf(stderr, "error: cannot open --log_json=%s\n",
                   options.log_json.c_str());
      std::exit(2);
    }
    log::SetSink(std::move(sink));
  }
  if (!options.trace_out.empty()) trace::Tracer::Global().Start();

  // Build provenance on every scrape and in every exposition dump.
  run_record::PublishBuildInfoMetric();

  if (options.statusz_port != 0 && GlobalStatuszServer() == nullptr) {
    statusz::Server::Options server_options;
    server_options.port = options.statusz_port;
    server_options.sections.push_back(
        {"join", [] { return core::JoinProgress::Global().StatusJson(); }});
    auto* server = new statusz::Server();  // simj-lint: allow(new) leaky, stopped at exit
    Status status = server->Start(server_options);
    if (!status.ok()) {
      std::fprintf(stderr, "error: --statusz_port=%d: %s\n",
                   options.statusz_port, status.ToString().c_str());
      std::exit(2);
    }
    GlobalStatuszServer() = server;
    // Arm per-worker heartbeats so /statusz shows worker liveness even
    // without the stall watchdog.
    core::JoinProgress::Global().RequestHeartbeats(true);
  }
  // A collector may be live now (trace ring or full trace); label the lane.
  // Also registers this thread with the profiler, so it must precede
  // StartProfiling below.
  trace::SetThisThreadName("main");

  if (options.profile_hz > 0) {
    Status armed =
        prof::StartProfiling(prof::ProfileOptions{options.profile_hz});
    if (!armed.ok()) {
      // Not fatal (e.g. disabled under TSan): the run proceeds unprofiled.
      SIMJ_LOG(WARN) << "--profile_hz=" << options.profile_hz << ": "
                     << armed.ToString();
    }
  }
  if (options.heap_sample_bytes > 0) {
    Status armed = heapprof::StartHeapProfiling(
        heapprof::HeapProfileOptions{options.heap_sample_bytes});
    if (!armed.ok()) {
      // Not fatal (e.g. disabled under ASan/TSan): the run proceeds.
      SIMJ_LOG(WARN) << "--heap_sample_bytes=" << options.heap_sample_bytes
                     << ": " << armed.ToString();
    }
  }

  BenchRecorder& recorder = GlobalBenchRecorder();
  std::string harness = argv0 == nullptr ? "" : argv0;
  size_t slash = harness.find_last_of('/');
  if (slash != std::string::npos) harness = harness.substr(slash + 1);
  recorder.result.harness = harness;
  recorder.result.params["threads"] = std::to_string(options.threads);
  recorder.result.params["repeat"] = std::to_string(options.repeat);
  for (const std::string& key : flags.Keys()) {
    recorder.result.params[key] = flags.GetString(key, "");
  }

  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit(EmitBenchArtifacts);
  }
}

// Parses and validates the command line. Unknown --flags (and --flags
// missing an =value) abort with a usage listing, so a typo like --thread=4
// fails loudly instead of silently running with defaults.
inline Flags ParseBenchFlags(int argc, char** argv,
                             std::initializer_list<const char*> extra_known =
                                 {}) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) continue;
    const size_t eq = arg.find('=');
    const std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    bool known = false;
    for (const BenchFlagDoc& doc : SharedBenchFlags()) {
      if (key == doc.name) known = true;
    }
    for (const char* name : extra_known) {
      if (key == name) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
      PrintBenchUsage(argv[0], extra_known);
      std::exit(2);
    }
    if (eq == std::string::npos) {
      std::fprintf(stderr, "error: flag --%s needs a value (--%s=...)\n",
                   key.c_str(), key.c_str());
      PrintBenchUsage(argv[0], extra_known);
      std::exit(2);
    }
  }
  Flags flags(argc, argv);
  ApplySharedFlags(flags, argv[0]);
  return flags;
}

// For harnesses that hand argv to their own parser (google-benchmark):
// consumes the shared flags above, removes them from argv in place, and
// leaves everything else (e.g. --benchmark_filter=...) untouched.
inline void ConsumeSharedFlags(int* argc, char** argv) {
  std::vector<char*> shared_args;
  shared_args.push_back(argv[0]);
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    bool is_shared = false;
    if (StartsWith(arg, "--")) {
      const size_t eq = arg.find('=');
      const std::string key =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      for (const BenchFlagDoc& doc : SharedBenchFlags()) {
        if (key == doc.name) is_shared = true;
      }
    }
    if (is_shared) {
      shared_args.push_back(argv[i]);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  Flags flags(static_cast<int>(shared_args.size()), shared_args.data());
  ApplySharedFlags(flags, argv[0]);
}

// ---------------------------------------------------------------------------
// Dataset recipes. Paper scales (Table 2) are quoted in comments; defaults
// here are sized so every harness finishes in at most a few minutes on one
// core while preserving the relative curves.
// ---------------------------------------------------------------------------

// A question/SPARQL workload bundle ready for joining.
struct QaDataset {
  std::unique_ptr<workload::KnowledgeBase> kb;
  workload::Workload workload;
  workload::JoinSides sides;
};

// QALD-3-like: 200 questions, |D| = 200 (paper: 200/200).
inline QaDataset MakeQald3Like(uint64_t seed = 42) {
  QaDataset data;
  data.kb = std::make_unique<workload::KnowledgeBase>(
      workload::KbConfig{.seed = seed});
  workload::WorkloadConfig config;
  config.seed = seed + 1;
  config.num_questions = 200;
  config.distractor_queries = 40;
  data.workload = workload::GenerateWorkload(*data.kb, config);
  data.sides = workload::BuildJoinSides(*data.kb, data.workload);
  return data;
}

// WebQ-like: paper 5,810 questions vs 73,057 queries; scaled ~20x down,
// keeping |D| >> |U|.
inline QaDataset MakeWebQLike(uint64_t seed = 43) {
  QaDataset data;
  workload::KbConfig kb_config;
  kb_config.seed = seed;
  kb_config.entities_per_class = 60;
  data.kb = std::make_unique<workload::KnowledgeBase>(kb_config);
  workload::WorkloadConfig config;
  config.seed = seed + 1;
  config.num_questions = 300;
  config.distractor_queries = 2200;
  data.workload = workload::GenerateWorkload(*data.kb, config);
  data.sides = workload::BuildJoinSides(*data.kb, data.workload);
  return data;
}

// MM-like: closed domain (music & movies), |U| > |D| (paper: 23,250/2,500).
inline QaDataset MakeMmLike(uint64_t seed = 44) {
  QaDataset data;
  workload::KbConfig kb_config;
  kb_config.seed = seed;
  kb_config.closed_domain = true;
  // A focused domain links more reliably (the paper credits MM's higher
  // precision to questions and queries sharing similar topics).
  kb_config.entity_phrase_ambiguity = 0.25;
  kb_config.relation_top1_accuracy = 0.85;
  data.kb = std::make_unique<workload::KnowledgeBase>(kb_config);
  workload::WorkloadConfig config;
  config.seed = seed + 1;
  config.num_questions = 400;
  config.distractor_queries = 0;
  data.workload = workload::GenerateWorkload(*data.kb, config);
  data.sides = workload::BuildJoinSides(*data.kb, data.workload);
  return data;
}

// ---------------------------------------------------------------------------
// Join configurations (the three curves of Figs. 11-14).
// ---------------------------------------------------------------------------

enum class JoinConfig { kCssOnly, kSimJ, kSimJOpt };

inline const char* ConfigName(JoinConfig config) {
  switch (config) {
    case JoinConfig::kCssOnly:
      return "CSS only";
    case JoinConfig::kSimJ:
      return "SimJ";
    case JoinConfig::kSimJOpt:
      return "SimJ+opt";
  }
  return "?";
}

inline core::SimJParams ParamsFor(JoinConfig config, int tau, double alpha,
                                  int group_count = 8) {
  core::SimJParams params;
  params.tau = tau;
  params.alpha = alpha;
  params.structural_pruning = true;
  params.probabilistic_pruning = config != JoinConfig::kCssOnly;
  params.group_count = config == JoinConfig::kSimJOpt ? group_count : 1;
  params.num_threads = GlobalBenchOptions().threads;
  params.slow_pair_log_ms = GlobalBenchOptions().slow_pair_ms;
  params.stall_warn_ms = GlobalBenchOptions().stall_warn_ms;
  params.progress_every = GlobalBenchOptions().progress_every;
  params.explain.enabled = GlobalBenchOptions().explain;
  params.explain.sample_every = GlobalBenchOptions().explain_every;
  return params;
}

// Dumps per-pair explanations if --explain was requested, to --explain_out
// or stdout.
inline void MaybeDumpExplains(const core::JoinResult& result,
                              const core::SimJParams& params) {
  if (!params.explain.enabled) return;
  std::string text = core::FormatExplains(result, params);
  const std::string& path = GlobalBenchOptions().explain_out;
  if (path.empty()) {
    std::fputs(text.c_str(), stdout);
    return;
  }
  std::ofstream os(path, std::ios::app);
  if (!os) {
    SIMJ_LOG(WARN) << "cannot open --explain_out=" << path;
    return;
  }
  os << text;
  SIMJ_LOG(INFO) << "explain dump appended to " << path;
}

// ---------------------------------------------------------------------------
// Repeated-trial measurement. Every measured join runs (1 warmup +
// --repeat) times; the warmup trial is discarded, tables report the median,
// and the full min/median/mean/stddev/max series lands in the run record.
// ---------------------------------------------------------------------------

inline int BenchRepeat() { return std::max(1, GlobalBenchOptions().repeat); }

inline int BenchWarmup() { return BenchRepeat() > 1 ? 1 : 0; }

inline double MedianOf(std::vector<double> samples) {
  return run_record::Stats::FromSamples(std::move(samples)).median;
}

// Stable sample-name key for a join configuration (matched across runs by
// tools/bench_compare.py).
inline std::string JoinSampleName(const char* kind,
                                  const core::SimJParams& params) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%s tau=%d alpha=%g sp=%d pp=%d groups=%d threads=%d", kind,
                params.tau, params.alpha, params.structural_pruning ? 1 : 0,
                params.probabilistic_pruning ? 1 : 0, params.group_count,
                params.num_threads);
  return buffer;
}

// ---------------------------------------------------------------------------
// Quality accounting for workload joins.
// ---------------------------------------------------------------------------

struct QualityResult {
  int64_t returned = 0;
  int64_t correct = 0;
  double seconds = 0.0;  // median join wall time over the timed trials

  double Precision() const {
    return returned == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(returned);
  }
};

// Runs the join over a QA dataset (1 warmup + --repeat timed trials) and
// scores each returned pair against the paper's correctness criterion
// (typed query graphs match except entities). Records a run-record sample.
inline QualityResult RunQualityJoin(QaDataset& data,
                                    const core::SimJParams& params,
                                    core::JoinResult* out = nullptr) {
  QualityResult result;
  std::vector<double> wall, cpu;
  core::JoinResult joined;
  const int trials = BenchWarmup() + BenchRepeat();
  for (int trial = 0; trial < trials; ++trial) {
    joined = core::SimJoin(data.sides.d, data.sides.u, params,
                           data.kb->dict());
    if (trial < BenchWarmup()) continue;
    wall.push_back(joined.stats.wall_seconds);
    cpu.push_back(joined.stats.TotalCpuSeconds());
  }
  result.seconds = MedianOf(wall);
  result.returned = static_cast<int64_t>(joined.pairs.size());
  for (const core::MatchedPair& pair : joined.pairs) {
    int question_index = data.sides.u_question_index[pair.g_index];
    if (workload::SameIntent(
            *data.kb, data.workload.sparql_queries[pair.q_index],
            data.workload.questions[question_index].gold_query)) {
      ++result.correct;
    }
  }
  RecordBenchSample(JoinSampleName("quality", params),
                    run_record::Stats::FromSamples(wall),
                    run_record::Stats::FromSamples(cpu),
                    {{"returned", static_cast<double>(result.returned)},
                     {"correct", static_cast<double>(result.correct)},
                     {"precision", result.Precision()}});
  MaybeDumpExplains(joined, params);
  if (out != nullptr) *out = std::move(joined);
  return result;
}

// ---------------------------------------------------------------------------
// Efficiency accounting (Figs. 11-14).
// ---------------------------------------------------------------------------

struct EfficiencyRow {
  // Medians over the timed trials. CPU seconds are summed across worker
  // threads; wall seconds are measured once around the whole join. They
  // coincide on a serial run.
  double pruning_cpu_seconds = 0.0;
  double verification_cpu_seconds = 0.0;
  double cpu_seconds = 0.0;
  double wall_seconds = 0.0;
  double candidate_ratio = 0.0;  // candidates / (|D| * |U|)
  double real_ratio = 0.0;       // actual results / (|D| * |U|)
  int64_t results = 0;
  // Full trial series of the join wall time (min/median/stddev/...).
  run_record::Stats wall_stats;
};

inline EfficiencyRow RunEfficiency(
    const std::vector<graph::LabeledGraph>& d,
    const std::vector<graph::UncertainGraph>& u,
    const graph::LabelDictionary& dict, const core::SimJParams& params) {
  std::vector<double> wall, cpu, pruning_cpu, verification_cpu;
  core::JoinResult joined;
  const int trials = BenchWarmup() + BenchRepeat();
  for (int trial = 0; trial < trials; ++trial) {
    joined = core::SimJoin(d, u, params, dict);
    if (trial < BenchWarmup()) continue;
    wall.push_back(joined.stats.wall_seconds);
    cpu.push_back(joined.stats.TotalCpuSeconds());
    pruning_cpu.push_back(joined.stats.pruning_cpu_seconds);
    verification_cpu.push_back(joined.stats.verification_cpu_seconds);
  }
  EfficiencyRow row;
  row.wall_stats = run_record::Stats::FromSamples(wall);
  run_record::Stats cpu_stats = run_record::Stats::FromSamples(cpu);
  row.pruning_cpu_seconds = MedianOf(pruning_cpu);
  row.verification_cpu_seconds = MedianOf(verification_cpu);
  row.cpu_seconds = cpu_stats.median;
  row.wall_seconds = row.wall_stats.median;
  row.candidate_ratio = joined.stats.CandidateRatio();
  row.results = joined.stats.results;
  if (joined.stats.total_pairs > 0) {
    row.real_ratio = static_cast<double>(joined.stats.results) /
                     static_cast<double>(joined.stats.total_pairs);
  }
  RecordBenchSample(
      JoinSampleName("eff", params), row.wall_stats, cpu_stats,
      {{"results", static_cast<double>(row.results)},
       {"candidate_ratio", row.candidate_ratio}});
  MaybeDumpExplains(joined, params);
  return row;
}

// ---------------------------------------------------------------------------
// Output helpers.
// ---------------------------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace simj::bench

#endif  // SIMJ_BENCH_BENCH_UTIL_H_
