// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Figure 15: comparison of the CSS filter with structure-only
// reimplementations of existing filters (Path [31], SEGOS [22], Pars [30])
// on the AIDS-like dataset: (a) filtering time, (b) candidate ratio vs tau.
//
// Paper shape: CSS is both the fastest filter and by far the tightest
// (lowest candidate ratio, closest to the Real curve); the structure-only
// competitors barely prune because they cannot see the uncertain labels.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "ged/edit_distance.h"
#include "ged/filters.h"
#include "ged/lower_bounds.h"

namespace {

// Fraction of pairs with at least one possible world within tau (the
// "Real" curve): evaluated with per-world pruning and first-hit exit.
double RealRatio(const std::vector<simj::graph::LabeledGraph>& d,
                 const std::vector<simj::graph::UncertainGraph>& u,
                 const simj::graph::LabelDictionary& dict, int tau) {
  int64_t hits = 0;
  for (const auto& q : d) {
    for (const auto& g : u) {
      if (simj::ged::CssLowerBoundUncertain(q, g, dict) > tau) continue;
      bool any = false;
      for (simj::graph::PossibleWorldIterator it(g); !it.Done() && !any;
           it.Next()) {
        simj::graph::LabeledGraph world = g.Materialize(it.choice());
        if (simj::ged::CssLowerBound(q, world, dict) > tau) continue;
        if (simj::ged::BoundedGed(q, world, tau, dict).has_value()) {
          any = true;
        }
      }
      if (any) ++hits;
    }
  }
  return static_cast<double>(hits) /
         (static_cast<double>(d.size()) * static_cast<double>(u.size()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simj;
  bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Figure 15: filter comparison (AIDS-like)");

  workload::SyntheticConfig config;
  config.seed = 103;
  config.num_certain = 100;
  config.num_uncertain = 100;
  config.num_vertices = 10;
  config.labels_per_vertex = 3;
  config.uncertain_vertex_fraction = 0.4;
  workload::SyntheticDataset data = workload::MakeAidsDataset(config);
  const double total_pairs = static_cast<double>(data.certain.size()) *
                             static_cast<double>(data.uncertain.size());
  std::printf("|D|=%zu |U|=%zu molecule-like graphs\n\n",
              data.certain.size(), data.uncertain.size());

  std::vector<std::unique_ptr<ged::GedFilter>> filters;
  filters.push_back(ged::MakePathFilter());
  filters.push_back(ged::MakeStarFilter());
  filters.push_back(ged::MakeParsFilter());
  filters.push_back(ged::MakeCssFilter());

  std::printf("(a) filtering time over all pairs, seconds\n");
  std::printf("%4s %10s %10s %10s %10s\n", "tau", "Path", "SEGOS", "Pars",
              "CSS");
  std::vector<std::vector<double>> candidate_ratio(
      6, std::vector<double>(filters.size(), 0.0));
  for (int tau = 0; tau <= 5; ++tau) {
    std::printf("%4d", tau);
    for (size_t f = 0; f < filters.size(); ++f) {
      WallTimer timer;
      int64_t candidates = 0;
      for (const auto& q : data.certain) {
        for (const auto& g : data.uncertain) {
          if (filters[f]->LowerBound(q, g, data.dict, tau) <= tau) {
            ++candidates;
          }
        }
      }
      candidate_ratio[tau][f] = candidates / total_pairs;
      std::printf(" %10.3f", timer.ElapsedSeconds());
    }
    std::printf("\n");
  }

  std::printf("\n(b) candidate ratio (%%)\n");
  std::printf("%4s %10s %10s %10s %10s %10s\n", "tau", "Path", "SEGOS",
              "Pars", "CSS", "Real");
  for (int tau = 0; tau <= 5; ++tau) {
    std::printf("%4d", tau);
    for (size_t f = 0; f < filters.size(); ++f) {
      std::printf(" %9.3f%%", 100.0 * candidate_ratio[tau][f]);
    }
    std::printf(" %9.3f%%\n",
                100.0 * RealRatio(data.certain, data.uncertain, data.dict,
                                  tau));
  }
  return 0;
}
