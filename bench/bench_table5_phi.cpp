// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Table 5: effect of the matching proportion threshold phi on template
// Q/A quality.
//
// Paper values: phi=0.5 P=0.69 R=0.73; ... phi=1.0 P=0.65 R=0.65.
// Expected shape: lowering phi lets partial template matches answer more
// questions (recall rises) without hurting the fully-matched ones much.

#include <cstdio>

#include "bench_util.h"
#include "templates/qa.h"
#include "templates/template.h"

int main(int argc, char** argv) {
  using namespace simj;
  bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Table 5: effect of matching proportion phi");

  workload::KnowledgeBase kb(workload::KbConfig{.seed = 88});

  // Train templates on simple (k<=2) questions so the more complex held-out
  // questions require partial matches.
  workload::WorkloadConfig train_config;
  train_config.seed = 89;
  train_config.num_questions = 300;
  train_config.distractor_queries = 100;
  train_config.relation_count_weights = {0.7, 0.3};
  workload::Workload train = workload::GenerateWorkload(kb, train_config);
  workload::JoinSides sides = workload::BuildJoinSides(kb, train);

  core::SimJParams params =
      bench::ParamsFor(bench::JoinConfig::kSimJ, /*tau=*/1, /*alpha=*/0.6);
  core::JoinResult joined = core::SimJoin(sides.d, sides.u, params, kb.dict());
  tmpl::TemplateStore store;
  for (const core::MatchedPair& pair : joined.pairs) {
    StatusOr<tmpl::Template> t = tmpl::GenerateTemplate(
        train.sparql_queries[pair.q_index], sides.d_graphs[pair.q_index],
        sides.u_parsed[pair.g_index], sides.u_graphs[pair.g_index],
        pair.mapping, kb.dict());
    if (t.ok()) store.Add(*std::move(t), kb.dict());
  }

  workload::WorkloadConfig test_config;
  test_config.seed = 90;
  test_config.num_questions = 150;
  test_config.relation_count_weights = {0.4, 0.3, 0.2, 0.1};
  workload::Workload test = workload::GenerateWorkload(kb, test_config);

  tmpl::TemplateQa qa(&store, &kb.lexicon(), &kb.store(), &kb.dict());
  std::printf("templates: %d; held-out questions: %zu\n\n", store.size(),
              test.questions.size());
  std::printf("%6s %10s %10s %10s %10s\n", "phi", "answered", "P", "R", "F1");
  for (double phi : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    tmpl::QaOptions options;
    options.min_matching_proportion = phi;
    double precision = 0.0;
    double recall = 0.0;
    int answered = 0;
    for (const workload::QuestionInstance& question : test.questions) {
      std::vector<std::vector<rdf::TermId>> gold =
          kb.store().Evaluate(question.gold_query.ToBgp(), kb.dict());
      StatusOr<tmpl::QaAnswer> answer = qa.Answer(question.text, options);
      if (answer.ok()) ++answered;
      tmpl::PrfScore score = tmpl::ScoreAnswer(
          gold, answer.ok() ? answer->rows
                            : std::vector<std::vector<rdf::TermId>>{});
      precision += score.precision;
      recall += score.recall;
    }
    int n = static_cast<int>(test.questions.size());
    double p = precision / n;
    double r = recall / n;
    double f1 = p + r > 0 ? 2 * p * r / (p + r) : 0.0;
    std::printf("%6.1f %10d %10.2f %10.2f %10.2f\n", phi, answered, p, r, f1);
  }
  return 0;
}
