// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Figure 14: effect of the number of candidate labels per uncertain vertex
// |L(v)| on response time and candidate ratio (ER dataset).
//
// Paper shape: response time grows with |L(v)| (bigger bipartite graphs,
// more possible worlds); pruning power decreases, though with many labels
// each label's probability shrinks, which the probabilistic bound exploits.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace simj;
  bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader(
      "Figure 14: effect of |L(v)| (ER, tau = 2, alpha = 0.4)");

  std::printf("%6s | %10s %14s %10s | %10s %10s %10s %10s\n", "|L(v)|",
              "pruning", "verification", "wall", "CSS only", "SimJ",
              "SimJ+opt", "Real");
  for (int labels = 2; labels <= 6; ++labels) {
    workload::SyntheticConfig config;
    config.seed = 102;
    config.num_certain = 100;
    config.num_uncertain = 100;
    config.num_vertices = 10;
    config.num_edges = 16;
    config.labels_per_vertex = labels;
    config.uncertain_vertex_fraction = 0.4;
    workload::SyntheticDataset data = workload::MakeErDataset(config);

    bench::EfficiencyRow css = bench::RunEfficiency(
        data.certain, data.uncertain, data.dict,
        bench::ParamsFor(bench::JoinConfig::kCssOnly, 2, 0.4));
    bench::EfficiencyRow simj = bench::RunEfficiency(
        data.certain, data.uncertain, data.dict,
        bench::ParamsFor(bench::JoinConfig::kSimJ, 2, 0.4));
    bench::EfficiencyRow opt = bench::RunEfficiency(
        data.certain, data.uncertain, data.dict,
        bench::ParamsFor(bench::JoinConfig::kSimJOpt, 2, 0.4));
    std::printf(
        "%6d | %10.3f %14.3f %10.3f | %9.3f%% %9.3f%% %9.3f%% %9.3f%%\n",
        labels, opt.pruning_cpu_seconds, opt.verification_cpu_seconds,
        opt.wall_seconds, 100.0 * css.candidate_ratio,
        100.0 * simj.candidate_ratio, 100.0 * opt.candidate_ratio,
        100.0 * opt.real_ratio);
  }
  return 0;
}
