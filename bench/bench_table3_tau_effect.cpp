// simj-lint: allow-file(io) -- benchmark/example harness prints results to stdout.
// Table 3: effect of the GED threshold tau on the quality of the returned
// pairs (alpha fixed at 0.9).
//
// Paper values:
//   QALD-3: tau=0 |R|=3 p=100% t=1.45s; tau=1 |R|=86 p=97.67% t=1.86s;
//           tau=2 |R|=2421 p=52.33% t=2.11s
//   WebQ  : tau=0 |R|=55 p=100% t=76.9s; tau=1 |R|=8351 p=86.54% t=100.3s;
//           tau=2 |R|=179227 p=37.69% t=652.9s
// Expected shape: |R| grows sharply with tau while precision collapses.

#include <cstdio>

#include "bench_util.h"

namespace {

void RunDataset(const char* name, simj::bench::QaDataset& data) {
  std::printf("\n%s (|U|=%zu, |D|=%zu)\n", name, data.sides.u.size(),
              data.sides.d.size());
  std::printf("%4s %8s %10s %10s\n", "tau", "|R|", "precision", "time(s)");
  for (int tau = 0; tau <= 2; ++tau) {
    simj::core::SimJParams params =
        simj::bench::ParamsFor(simj::bench::JoinConfig::kSimJ, tau,
                               /*alpha=*/0.9);
    simj::bench::QualityResult result =
        simj::bench::RunQualityJoin(data, params);
    std::printf("%4d %8lld %9.2f%% %10.3f\n", tau,
                static_cast<long long>(result.returned),
                100.0 * result.Precision(), result.seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  simj::bench::ParseBenchFlags(argc, argv);
  simj::bench::PrintHeader(
      "Table 3: effect of GED threshold tau (alpha = 0.9)");
  {
    simj::bench::QaDataset qald = simj::bench::MakeQald3Like();
    RunDataset("QALD-3-like", qald);
  }
  {
    simj::bench::QaDataset webq = simj::bench::MakeWebQLike();
    RunDataset("WebQ-like", webq);
  }
  return 0;
}
