#!/usr/bin/env bash
# CI driver: builds the Release and ASan/UBSan configurations and runs the
# full test suite in each, then reruns the threaded join tests under TSan
# with an 8-worker pool (data races in the parallel join only show up with
# real concurrency, whatever the host's core count).
#
# Usage: ./ci.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 2)"
GENERATOR_ARGS=()
command -v ninja >/dev/null 2>&1 && GENERATOR_ARGS=(-G Ninja)

build_and_test() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "${GENERATOR_ARGS[@]}" "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
}

# 1. Release: the configuration benchmarks and users run.
build_and_test build-release -DCMAKE_BUILD_TYPE=Release
ctest --test-dir build-release --output-on-failure -j "${JOBS}"

# 1b. Observability smoke: run a small join with every sink enabled, then
# validate that the Chrome trace is well-formed JSON with the expected span
# names and that the metrics exposition is non-empty.
echo "=== observability smoke ==="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
./build-release/bench/bench_fig13_group_number \
  --num_certain=8 --num_uncertain=8 --threads=8 \
  --metrics_out="${SMOKE_DIR}/metrics.txt" \
  --trace_out="${SMOKE_DIR}/trace.json" \
  --explain=1 --explain_every=16 \
  --explain_out="${SMOKE_DIR}/explains.txt" > /dev/null
python3 - "${SMOKE_DIR}" <<'PY'
import json, sys, collections
d = sys.argv[1]
with open(f"{d}/trace.json") as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no events"
for e in events:
    assert {"name", "ph", "pid", "tid"} <= e.keys(), e
    if e["ph"] == "X":
        assert "ts" in e and "dur" in e, e
names = {e["name"] for e in events if e["ph"] == "X"}
required = {"simjoin", "css_filter", "markov_filter", "group_partition",
            "verify", "ged_astar"}
missing = required - names
assert not missing, f"missing spans: {missing}"
tids = {e["tid"] for e in events if e["ph"] == "X"}
assert len(tids) > 1, f"expected spans from multiple workers, got tids={tids}"
metrics = open(f"{d}/metrics.txt").read()
assert "simj_join_pairs_total" in metrics, "exposition missing join counters"
assert "_bucket{le=" in metrics, "exposition missing histogram buckets"
explains = open(f"{d}/explains.txt").read()
assert "<q=" in explains, "explain dump is empty"
print(f"smoke OK: {len(events)} trace events, {len(tids)} worker lanes, "
      f"{len(metrics.splitlines())} exposition lines")
PY

# 2. ASan + UBSan: memory and UB bugs across the whole suite.
build_and_test build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMJ_SANITIZE="address;undefined"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

# 3. TSan: the property/determinism tests exercise the work-stealing pool
# with up to 8 workers; run them (and the pool-heavy join tests) race-checked.
if [[ "${1:-}" != "--skip-tsan" ]]; then
  build_and_test build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSIMJ_SANITIZE=thread
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan \
    --output-on-failure \
    -R 'join_property_test|join_determinism_test|join_test|metrics_test|trace_test|explain_test'
fi

echo "CI OK"
