#!/usr/bin/env bash
# CI driver: lints, then builds the Release, debug-checks, and ASan/UBSan
# configurations and runs the full test suite in each, then reruns the
# threaded join tests under TSan with an 8-worker pool (data races in the
# parallel join only show up with real concurrency, whatever the host's
# core count).
#
# Usage: ./ci.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 2)"
GENERATOR_ARGS=()
command -v ninja >/dev/null 2>&1 && GENERATOR_ARGS=(-G Ninja)

build_and_test() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "${GENERATOR_ARGS[@]}" "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
}

# 0. Static analysis. The project linter has no dependencies and always
# runs (self-test first, so a broken linter cannot pass a broken tree).
# clang-tidy and clang-format are optional in the CI image: their runners
# skip with a notice when the binaries are absent, and diff against the
# checked-in baselines when present, failing only on NEW findings.
echo "=== lint ==="
python3 tools/simj_lint.py --self-test
python3 tools/simj_lint.py
python3 tools/statusz_poll.py --self-test
if command -v clang-format >/dev/null 2>&1; then
  clang-format --dry-run --Werror src/*/*.h src/*/*.cc tests/*.cc \
    tests/*.h bench/*.h bench/*.cpp examples/*.cpp
  echo "format OK"
else
  echo "format SKIPPED (clang-format not installed)"
fi

# 0a. Lock-order analysis (DESIGN.md §11): extract the static
# lock-acquisition graph from the simj::Mutex annotations and fail on any
# cycle (a potential ABBA deadlock). Pure python, always runs; self-test
# first so a broken extractor cannot bless a cyclic tree.
echo "=== lock order ==="
python3 tools/lock_order.py --self-test
python3 tools/lock_order.py --json /dev/null

# 0b. Thread-safety analysis (clang-only): the SIMJ_GUARDED_BY /
# SIMJ_REQUIRES contracts in src/ are no-op attributes under GCC, so this
# leg syntax-checks every src TU under clang's -Wthread-safety as errors,
# then proves the analysis is actually live by compiling
# tests/thread_safety_check.cc both ways (clean as-is, rejected with
# -DSIMJ_THREAD_SAFETY_EXPECT_FAIL). Skips with a notice when clang++ is
# absent from the CI image.
echo "=== thread safety (clang) ==="
if command -v clang++ >/dev/null 2>&1; then
  TS_FLAGS=(-std=c++20 -Isrc -fsyntax-only
            -Wthread-safety -Wthread-safety-beta
            -Werror=thread-safety -Werror=thread-safety-beta)
  for tu in src/*/*.cc; do
    clang++ "${TS_FLAGS[@]}" "${tu}"
  done
  clang++ "${TS_FLAGS[@]}" tests/thread_safety_check.cc
  if clang++ "${TS_FLAGS[@]}" -DSIMJ_THREAD_SAFETY_EXPECT_FAIL \
      tests/thread_safety_check.cc 2>/dev/null; then
    echo "ERROR: -Wthread-safety accepted an unannotated access to a"
    echo "SIMJ_GUARDED_BY field — the analysis is not actually running."
    exit 1
  fi
  echo "thread safety OK ($(ls src/*/*.cc | wc -l) TUs + expect-fail probe)"
else
  echo "thread safety SKIPPED (clang++ not installed; GCC ignores the"
  echo "  annotations — run this leg on a machine with clang to enforce them)"
fi

# 1. Release: the configuration benchmarks and users run. Warnings are
# errors in CI (-DSIMJ_WERROR=ON) in every configuration below; the build
# exports compile_commands.json for clang-tidy.
build_and_test build-release -DCMAKE_BUILD_TYPE=Release -DSIMJ_WERROR=ON
ctest --test-dir build-release --output-on-failure -j "${JOBS}"
python3 tools/run_clang_tidy.py --build-dir build-release

# 1x. Cluster simulator, widened: plain ctest runs the test's default seed
# count; CI differential-tests the sharded join against the serial oracle
# across 20 distinct fault schedules, both transports, 1-8 workers. Any
# assertion carries the failing seed in its scope trace, so a red run is
# reproducible with --seeds=1 after editing the seed base, or by rerunning
# the printed seed.
echo "=== cluster sim (20 seeds) ==="
./build-release/tests/cluster_sim_test --seeds=20

# 1y. Cluster observability smoke: a faulted 4-worker sharded join with the
# trace and flight-recorder sinks on. The merged Chrome trace must carry a
# named lane per worker and an attempt span for every shard execution the
# flight recorder saw — requeued retries included — and the events dump
# must satisfy the simj_flight_v1 schema with the restart story intact.
echo "=== cluster observability smoke ==="
CLUSTER_DIR="$(mktemp -d)"
trap 'rm -rf "${CLUSTER_DIR}"' EXIT
./build-release/bench/bench_shard_scaling \
  --workers=4 --transport=thread --max_pairs_per_shard=16 \
  --sim_seed=5 --death_probability=0.3 --slow_probability=0.1 \
  --num_certain=40 --num_uncertain=40 \
  --trace_out="${CLUSTER_DIR}/cluster_trace.json" \
  --events_out="${CLUSTER_DIR}/cluster_events.json" > /dev/null
python3 - "${CLUSTER_DIR}" <<'PY'
import json, sys
d = sys.argv[1]
with open(f"{d}/cluster_trace.json") as f:
    trace = json.load(f)
events = trace["traceEvents"]
lanes = {e["pid"]: e["args"]["name"]
         for e in events if e.get("name") == "process_name"}
for worker in range(4):
    assert f"worker-{worker}" in lanes.values(), \
        f"missing lane worker-{worker}: {lanes}"
assert lanes.get(1) == "simj", lanes

with open(f"{d}/cluster_events.json") as f:
    flight = json.load(f)
assert flight["schema"] == "simj_flight_v1", flight["schema"]
assert isinstance(flight["dropped"], int)
for event in flight["events"]:
    assert {"seq", "ts_us", "type", "worker", "shard", "attempt",
            "detail"} <= event.keys(), event
seqs = [e["seq"] for e in flight["events"]]
assert seqs == sorted(seqs), "flight events out of seq order"
by_type = {}
for e in flight["events"]:
    by_type.setdefault(e["type"], []).append(e)
assert by_type.get("requeue"), "fault plan injected no requeues"
assert by_type.get("restart"), "no worker restart recorded"

# Every executed attempt (dispatch or steal) appears as a span in the
# executing worker's lane; requeued shards therefore show attempt>0 spans.
spans = {e["name"]: e for e in events if e["ph"] == "X"}
worker_pids = {name: pid for pid, name in lanes.items()}
for e in by_type.get("dispatch", []) + by_type.get("steal", []):
    name = f"shard-{e['shard']}/attempt-{e['attempt']}"
    assert name in spans, f"no span for executed attempt {name}"
    expected_pid = worker_pids[f"worker-{e['worker']}"]
    assert spans[name]["pid"] == expected_pid, (name, spans[name])
    assert spans[name]["args"]["trace_id"], name
retried = [e for e in by_type.get("requeue", [])
           if f"shard-{e['shard']}/attempt-{e['attempt'] + 1}" in spans]
assert retried, "no retried shard produced an attempt>0 span"
print(f"cluster observability OK: {len(lanes)} lanes, "
      f"{len(spans)} spans, {len(flight['events'])} flight events, "
      f"{len(by_type.get('requeue', []))} requeues, "
      f"{len(by_type.get('restart', []))} restarts")
PY

# 1a. Debug-checks: the full suite with every SIMJ_DCHECK live, so the
# internal invariants (GED postconditions, join counter identities, SimP
# ranges, per-input graph validation) are enforced on every test.
build_and_test build-dcheck -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMJ_DEBUG_CHECKS=ON -DSIMJ_WERROR=ON
ctest --test-dir build-dcheck --output-on-failure -j "${JOBS}"

# 1b. Observability smoke: run a small join with every sink enabled, then
# validate that the Chrome trace is well-formed JSON with the expected span
# names and that the metrics exposition is non-empty.
echo "=== observability smoke ==="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}" "${CLUSTER_DIR}"' EXIT
./build-release/bench/bench_fig13_group_number \
  --num_certain=8 --num_uncertain=8 --threads=8 \
  --metrics_out="${SMOKE_DIR}/metrics.txt" \
  --trace_out="${SMOKE_DIR}/trace.json" \
  --json_out="${SMOKE_DIR}/result.json" \
  --log_json="${SMOKE_DIR}/log.jsonl" \
  --explain=1 --explain_every=16 \
  --explain_out="${SMOKE_DIR}/explains.txt" > /dev/null
python3 - "${SMOKE_DIR}" <<'PY'
import json, sys, collections
d = sys.argv[1]
with open(f"{d}/trace.json") as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no events"
for e in events:
    assert {"name", "ph", "pid", "tid"} <= e.keys(), e
    if e["ph"] == "X":
        assert "ts" in e and "dur" in e, e
names = {e["name"] for e in events if e["ph"] == "X"}
required = {"simjoin", "css_filter", "markov_filter", "group_partition",
            "verify", "ged_astar"}
missing = required - names
assert not missing, f"missing spans: {missing}"
tids = {e["tid"] for e in events if e["ph"] == "X"}
assert len(tids) > 1, f"expected spans from multiple workers, got tids={tids}"
metrics = open(f"{d}/metrics.txt").read()
assert "simj_join_pairs_total" in metrics, "exposition missing join counters"
assert "_bucket{le=" in metrics, "exposition missing histogram buckets"
explains = open(f"{d}/explains.txt").read()
assert "<q=" in explains, "explain dump is empty"
with open(f"{d}/log.jsonl") as f:
    log_lines = [json.loads(line) for line in f if line.strip()]
for entry in log_lines:
    assert {"ts", "level", "file", "line", "tid", "msg"} <= entry.keys(), entry
print(f"smoke OK: {len(events)} trace events, {len(tids)} worker lanes, "
      f"{len(metrics.splitlines())} exposition lines, "
      f"{len(log_lines)} structured log lines")
PY

# 1c. Perf smoke: the comparator proves it can tell signal from noise on
# synthetic records, the emitted run record parses under the current schema,
# and the run is compared (warn-only: machine speed varies) against the
# checked-in baseline. Regenerate the baseline on a quiet machine with the
# command in EXPERIMENTS.md when the join deliberately changes speed.
echo "=== perf smoke ==="
python3 tools/bench_compare.py --self-test
python3 tools/bench_compare.py --schema-check "${SMOKE_DIR}/result.json"
./build-release/bench/bench_fig12_tau_efficiency \
  --num_certain=30 --num_uncertain=30 \
  --json_out="${SMOKE_DIR}/fig12.json" > /dev/null
python3 tools/bench_compare.py --schema-check "${SMOKE_DIR}/fig12.json"
python3 tools/bench_compare.py bench/baselines/BENCH_smoke.json \
  "${SMOKE_DIR}/fig12.json" || true

# 1cc. Profiler smoke (DESIGN.md §12): a faulted 4-worker forked-process
# cluster run with --profile_out must produce ONE merged simj_profile_v1
# record with a non-empty section for the coordinator and for every
# worker — samples crossed the pipe protocol from fork()ed children, were
# symbolized child-side, and merged under per-worker labels — while every
# (transport, workers) cell still reproduces the serial oracle
# (identical==1; the bench exits nonzero otherwise). Then the flamegraph
# pipeline renders the record to SVG, and the perf-smoke workload is
# rerun with sampling armed at 99 Hz: its wall-time overhead over the
# leg-1c sinks-off run must stay under 0.5% (or within 3 combined trial
# sigmas on a noisy host — the same gating bench_compare uses).
#
# Fault plan: death_probability=0.1 with 64-pair shards (not leg 1y's
# 0.3/16) so a forked child survives long enough to accumulate CPU past
# the kernel's CPU-timer tick (~4 ms) — a child killed every couple of
# sub-millisecond shards would legitimately never deliver a sample and
# the per-worker-section assertion would be testing luck, not plumbing.
echo "=== profiler smoke ==="
python3 tools/flame.py --self-test
./build-release/bench/bench_shard_scaling \
  --workers=4 --transport=process --max_pairs_per_shard=64 \
  --sim_seed=5 --death_probability=0.1 --slow_probability=0.1 \
  --num_certain=100 --num_uncertain=100 \
  --profile_hz=1000 --profile_out="${SMOKE_DIR}/cluster_profile.json" \
  --json_out="${SMOKE_DIR}/cluster_profiled.json" > /dev/null
python3 - "${SMOKE_DIR}" <<'PY'
import json, sys
d = sys.argv[1]
with open(f"{d}/cluster_profile.json") as f:
    profile = json.load(f)
assert profile["schema"] == "simj_profile_v1", profile["schema"]
assert profile["hz"] == 1000, profile["hz"]
assert profile["samples"] > 0, "profile captured no samples"
for key in ("period_us", "duration_seconds", "dropped", "truncated"):
    assert key in profile, f"missing {key}"
sections = {s["label"]: s for s in profile["sections"]}
labels = sorted(sections)
assert "coordinator" in sections, labels
for worker in range(4):
    label = f"worker-{worker}"
    assert label in sections, f"missing section {label}: {labels}"
for label, section in sections.items():
    assert section["samples"] > 0, f"section {label} is empty"
    assert section["stacks"], f"section {label} has no stacks"
    for stack in section["stacks"]:
        assert stack["thread"] and stack["count"] > 0 and stack["frames"], \
            (label, stack)

with open(f"{d}/cluster_profiled.json") as f:
    record = json.load(f)
measured = [s for s in record["samples"] if not s.get("skipped")]
assert measured, "profiled cluster run measured nothing"
for sample in measured:
    assert sample["values"].get("identical") == 1.0, \
        f"profiled run diverged from the serial oracle: {sample['name']}"
# The run record embeds the same capture under "profile".
assert record["profile"]["schema"] == "simj_profile_v1", record["profile"]
assert {s["label"] for s in record["profile"]["sections"]} == set(sections)
print(f"cluster profile OK: {profile['samples']} samples, "
      f"sections {labels}, dropped {profile['dropped']}, "
      f"{len(measured)} identical cells")
PY
python3 tools/flame.py "${SMOKE_DIR}/cluster_profile.json" \
  -o "${SMOKE_DIR}/cluster_flame.svg"
python3 - "${SMOKE_DIR}" <<'PY'
import sys
svg = open(f"{sys.argv[1]}/cluster_flame.svg").read()
assert svg.lstrip().startswith("<svg"), svg[:80]
assert "coordinator" in svg and "worker-0" in svg, "flamegraph lost sections"
print(f"flamegraph OK: {len(svg)} bytes of SVG")
PY
# Overhead gate: baseline is rerun here, back to back with the armed run,
# rather than reusing leg 1c's record — minutes of drift (frequency
# scaling, page cache) between the two would otherwise dominate a 0.5%
# budget. The assertion is on the MEDIAN per-cell delta: real sampling
# overhead shifts every cell the same way, while per-cell scheduler noise
# on millisecond workloads (routinely +-20% on shared CI hosts) does not
# survive a median over 18 cells.
./build-release/bench/bench_fig12_tau_efficiency \
  --num_certain=30 --num_uncertain=30 \
  --json_out="${SMOKE_DIR}/fig12_base.json" > /dev/null
./build-release/bench/bench_fig12_tau_efficiency \
  --num_certain=30 --num_uncertain=30 \
  --profile_hz=99 --profile_out="${SMOKE_DIR}/fig12_profile.json" \
  --json_out="${SMOKE_DIR}/fig12_profiled.json" > /dev/null
python3 - "${SMOKE_DIR}" <<'PY'
import json, math, statistics, sys
d = sys.argv[1]
with open(f"{d}/fig12_base.json") as f:
    off = json.load(f)
with open(f"{d}/fig12_profiled.json") as f:
    armed = json.load(f)
off_samples = {s["name"]: s for s in off["samples"] if not s.get("skipped")}
deltas, noises = [], []
for sample in armed["samples"]:
    if sample.get("skipped") or sample["name"] not in off_samples:
        continue
    base = off_samples[sample["name"]]["wall_seconds"]
    cur = sample["wall_seconds"]
    if base["median"] <= 0:
        continue
    delta_pct = (cur["median"] - base["median"]) / base["median"] * 100.0
    noise_pct = (math.hypot(base["stddev"], cur["stddev"])
                 / base["median"] * 100.0)
    deltas.append(delta_pct)
    noises.append(noise_pct)
    print(f"  {sample['name']}: {delta_pct:+.2f}% (noise {noise_pct:.2f}%)")
assert deltas, "no comparable cells between sinks-off and armed runs"
median_delta = statistics.median(deltas)
median_noise = statistics.median(noises)
threshold = max(0.5, 3.0 * median_noise)
assert median_delta <= threshold, \
    f"profiler overhead beyond budget: median {median_delta:+.2f}% " \
    f"over {len(deltas)} cells (threshold {threshold:.2f}%)"
print(f"profiler overhead OK: median {median_delta:+.2f}% over "
      f"{len(deltas)} cells, threshold {threshold:.2f}% "
      "(0.5% floor, 3-sigma noise-gated)")
PY

# 1cd. Heap smoke (DESIGN.md §13): the memory-axis mirror of leg 1cc. A
# faulted 4-worker forked-process cluster run with --heap_out must produce
# ONE merged simj_heap_v1 record with a non-empty section for the
# coordinator and for every worker — allocation samples were recorded by
# the countdown hooks inside fork()ed children, symbolized child-side,
# shipped as drain deltas over the pipe protocol, and merged under
# per-worker labels — while every (transport, workers) cell still
# reproduces the serial oracle. Then the flamegraph pipeline renders the
# record to SVG (alloc_bytes: cumulative allocation is monotone, so every
# shipped stack is renderable even when its live-byte delta went
# negative), and the perf-smoke workload is rerun with the default
# 512 KiB/sample rate armed: its wall-time overhead over a back-to-back
# sinks-off run must stay under 1% (or within 3 combined trial sigmas).
#
# sample_bytes=4096 for the cluster capture (not the 512 KiB default) for
# the same reason leg 1cc softens the fault plan: a forked child that
# dies after a couple of 64-pair shards has only allocated a few hundred
# KiB, so at the default rate a worker section would be a coin flip — the
# assertion would test luck, not the delta-shipping plumbing.
echo "=== heap smoke ==="
./build-release/bench/bench_shard_scaling \
  --workers=4 --transport=process --max_pairs_per_shard=64 \
  --sim_seed=5 --death_probability=0.1 --slow_probability=0.1 \
  --num_certain=100 --num_uncertain=100 \
  --heap_sample_bytes=4096 --heap_out="${SMOKE_DIR}/cluster_heap.json" \
  --json_out="${SMOKE_DIR}/cluster_heaped.json" > /dev/null
python3 - "${SMOKE_DIR}" <<'PY'
import json, sys
d = sys.argv[1]
with open(f"{d}/cluster_heap.json") as f:
    heap = json.load(f)
assert heap["schema"] == "simj_heap_v1", heap["schema"]
assert heap["sample_bytes"] == 4096, heap["sample_bytes"]
for key in ("duration_seconds", "inuse_bytes", "inuse_objects",
            "alloc_bytes", "alloc_objects", "dropped", "truncated"):
    assert key in heap, f"missing {key}"
assert heap["alloc_bytes"] > 0, "capture sampled no allocations"
sections = {s["label"]: s for s in heap["sections"]}
labels = sorted(sections)
assert "coordinator" in sections, labels
for worker in range(4):
    label = f"worker-{worker}"
    assert label in sections, f"missing section {label}: {labels}"
for label, section in sections.items():
    assert section["alloc_bytes"] > 0, f"section {label} saw no allocations"
    assert section["stacks"], f"section {label} has no stacks"
    for stack in section["stacks"]:
        assert stack["thread"] and stack["frames"], (label, stack)
        # Worker stacks are drain deltas: live counters may be negative
        # (freed after an earlier ship), cumulative ones never are.
        assert stack["alloc_bytes"] >= 0 and stack["alloc_objects"] >= 0, \
            (label, stack)

with open(f"{d}/cluster_heaped.json") as f:
    record = json.load(f)
measured = [s for s in record["samples"] if not s.get("skipped")]
assert measured, "heap-profiled cluster run measured nothing"
for sample in measured:
    assert sample["values"].get("identical") == 1.0, \
        f"heap-profiled run diverged from the serial oracle: {sample['name']}"
# The run record embeds the same capture under "heap".
assert record["heap"]["schema"] == "simj_heap_v1", record["heap"]
assert {s["label"] for s in record["heap"]["sections"]} == set(sections)
print(f"cluster heap OK: {heap['alloc_objects']} sampled allocations "
      f"({heap['alloc_bytes']} bytes), sections {labels}, "
      f"dropped {heap['dropped']}, {len(measured)} identical cells")
PY
python3 tools/flame.py --metric alloc_bytes \
  "${SMOKE_DIR}/cluster_heap.json" -o "${SMOKE_DIR}/cluster_heap.svg"
python3 - "${SMOKE_DIR}" <<'PY'
import sys
svg = open(f"{sys.argv[1]}/cluster_heap.svg").read()
assert svg.lstrip().startswith("<svg"), svg[:80]
assert "coordinator" in svg and "worker-0" in svg, "heap flamegraph lost sections"
print(f"heap flamegraph OK: {len(svg)} bytes of SVG")
PY
# Overhead gate: same back-to-back median-delta protocol as leg 1cc, with
# a 1% floor — the armed allocation path does real work per new/delete
# (countdown decrement, and table bookkeeping on the sampled ones), so
# its budget is looser than the timer-driven CPU profiler's 0.5%.
./build-release/bench/bench_fig12_tau_efficiency \
  --num_certain=30 --num_uncertain=30 \
  --json_out="${SMOKE_DIR}/fig12_heap_base.json" > /dev/null
./build-release/bench/bench_fig12_tau_efficiency \
  --num_certain=30 --num_uncertain=30 \
  --heap_sample_bytes=524288 \
  --heap_out="${SMOKE_DIR}/fig12_heap.json" \
  --json_out="${SMOKE_DIR}/fig12_heaped.json" > /dev/null
python3 - "${SMOKE_DIR}" <<'PY'
import json, math, statistics, sys
d = sys.argv[1]
with open(f"{d}/fig12_heap_base.json") as f:
    off = json.load(f)
with open(f"{d}/fig12_heaped.json") as f:
    armed = json.load(f)
off_samples = {s["name"]: s for s in off["samples"] if not s.get("skipped")}
deltas, noises = [], []
for sample in armed["samples"]:
    if sample.get("skipped") or sample["name"] not in off_samples:
        continue
    base = off_samples[sample["name"]]["wall_seconds"]
    cur = sample["wall_seconds"]
    if base["median"] <= 0:
        continue
    delta_pct = (cur["median"] - base["median"]) / base["median"] * 100.0
    noise_pct = (math.hypot(base["stddev"], cur["stddev"])
                 / base["median"] * 100.0)
    deltas.append(delta_pct)
    noises.append(noise_pct)
    print(f"  {sample['name']}: {delta_pct:+.2f}% (noise {noise_pct:.2f}%)")
assert deltas, "no comparable cells between sinks-off and armed runs"
median_delta = statistics.median(deltas)
median_noise = statistics.median(noises)
threshold = max(1.0, 3.0 * median_noise)
assert median_delta <= threshold, \
    f"heap profiler overhead beyond budget: median {median_delta:+.2f}% " \
    f"over {len(deltas)} cells (threshold {threshold:.2f}%)"
print(f"heap profiler overhead OK: median {median_delta:+.2f}% over "
      f"{len(deltas)} cells, threshold {threshold:.2f}% "
      "(1% floor, 3-sigma noise-gated)")
PY

# 1d. Live-introspection smoke: the same join sweep twice, server-off then
# with --statusz_port on a fixed loopback port. A concurrent scraper hits
# all four endpoints mid-run and checks that /metricsz parses as Prometheus
# exposition, /statusz join progress is monotone in (joins_started,
# completed_pairs), and at least one sample shows nonzero progress with a
# finite ETA. The explain dumps from both runs must be byte-identical: the
# server observes the join, it never steers it.
echo "=== live introspection smoke ==="
STATUSZ_PORT=18573
./build-release/bench/bench_fig13_group_number \
  --num_certain=16 --num_uncertain=16 --threads=8 \
  --explain=1 --explain_every=1 \
  --explain_out="${SMOKE_DIR}/explains_off.txt" \
  --json_out="${SMOKE_DIR}/live_off.json" > /dev/null
./build-release/bench/bench_fig13_group_number \
  --num_certain=16 --num_uncertain=16 --threads=8 \
  --statusz_port="${STATUSZ_PORT}" --progress_every=64 \
  --explain=1 --explain_every=1 \
  --explain_out="${SMOKE_DIR}/explains_on.txt" \
  --json_out="${SMOKE_DIR}/live_on.json" > /dev/null &
BENCH_PID=$!
python3 - "${STATUSZ_PORT}" <<'PY' || {
import json, sys, time, urllib.error, urllib.request
port = int(sys.argv[1])
base = f"http://127.0.0.1:{port}"

def get(path, timeout=2.0):
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        return response.read().decode("utf-8")

deadline = time.time() + 60
samples = []
metrics_ok = tracez_ok = healthz_ok = False
server_seen = False
while time.time() < deadline:
    try:
        status = json.loads(get("/statusz"))
    except (urllib.error.URLError, OSError, ConnectionError):
        if server_seen:
            break  # server gone: the bench finished and stopped it
        time.sleep(0.01)
        continue
    server_seen = True
    join = status.get("join") or {}
    samples.append((join.get("joins_started", 0),
                    join.get("completed_pairs", 0),
                    join.get("total_pairs", 0),
                    join.get("eta_seconds", -1.0)))
    try:
        if not metrics_ok:
            text = get("/metricsz")
            # Minimal exposition parse: every non-comment line is
            # `name[{labels}] value` with a float value.
            for line in text.splitlines():
                if not line or line.startswith("#"):
                    continue
                name, _, value = line.rpartition(" ")
                assert name, f"bad exposition line: {line!r}"
                float(value)
            assert "simj_build_info{" in text, "missing simj_build_info gauge"
            assert "simj_join_pairs_total" in text, "missing join counters"
            metrics_ok = True
        if not tracez_ok:
            tracez = json.loads(get("/tracez"))
            assert "threads" in tracez, tracez
            tracez_ok = True
        if not healthz_ok:
            health = json.loads(get("/healthz"))
            assert health.get("status") in ("ok", "degraded"), health
            if health["status"] == "degraded":
                assert health.get("reason"), health
            healthz_ok = True
    except (urllib.error.URLError, OSError, ConnectionError):
        break
assert samples, "never scraped /statusz while the bench ran"
assert metrics_ok and tracez_ok and healthz_ok, \
    (metrics_ok, tracez_ok, healthz_ok)
previous = (0, 0)
live = 0
for joins, done, total, eta in samples:
    key = (joins, done)
    assert key >= previous, f"progress went backwards: {previous} -> {key}"
    previous = key
    if done > 0 and eta >= 0:
        live += 1
assert live > 0, f"no sample with nonzero progress and finite ETA: {samples}"
print(f"live scrape OK: {len(samples)} /statusz samples, "
      f"{live} with nonzero progress and finite ETA")
PY
  kill "${BENCH_PID}" 2>/dev/null || true
  wait "${BENCH_PID}" 2>/dev/null || true
  exit 1
}
wait "${BENCH_PID}"
cmp "${SMOKE_DIR}/explains_off.txt" "${SMOKE_DIR}/explains_on.txt"
echo "live introspection OK: server-on explain dump identical to server-off"

# 2. ASan + UBSan: memory and UB bugs across the whole suite.
build_and_test build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMJ_SANITIZE="address;undefined" -DSIMJ_WERROR=ON
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

# 3. TSan: the property/determinism tests exercise the work-stealing pool
# with up to 8 workers; run them (and the pool-heavy join tests) race-checked.
# cluster_sim_test rides along for the coordinator + in-process transport
# (its process transport self-disables under TSan: fork from a threaded
# parent deadlocks the TSan runtime, and the child shares no memory anyway).
if [[ "${1:-}" != "--skip-tsan" ]]; then
  build_and_test build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSIMJ_SANITIZE=thread -DSIMJ_WERROR=ON
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan \
    --output-on-failure \
    -R 'join_property_test|join_determinism_test|join_test|metrics_test|trace_test|explain_test|log_test|statusz_test|progress_test|cluster_sim_test|flight_recorder_test|heap_profiler_test'
fi

echo "CI OK"
