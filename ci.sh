#!/usr/bin/env bash
# CI driver: builds the Release and ASan/UBSan configurations and runs the
# full test suite in each, then reruns the threaded join tests under TSan
# with an 8-worker pool (data races in the parallel join only show up with
# real concurrency, whatever the host's core count).
#
# Usage: ./ci.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 2)"
GENERATOR_ARGS=()
command -v ninja >/dev/null 2>&1 && GENERATOR_ARGS=(-G Ninja)

build_and_test() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "${GENERATOR_ARGS[@]}" "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
}

# 1. Release: the configuration benchmarks and users run.
build_and_test build-release -DCMAKE_BUILD_TYPE=Release
ctest --test-dir build-release --output-on-failure -j "${JOBS}"

# 2. ASan + UBSan: memory and UB bugs across the whole suite.
build_and_test build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMJ_SANITIZE="address;undefined"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

# 3. TSan: the property/determinism tests exercise the work-stealing pool
# with up to 8 workers; run them (and the pool-heavy join tests) race-checked.
if [[ "${1:-}" != "--skip-tsan" ]]; then
  build_and_test build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSIMJ_SANITIZE=thread
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan \
    --output-on-failure -R 'join_property_test|join_determinism_test|join_test'
fi

echo "CI OK"
