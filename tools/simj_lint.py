#!/usr/bin/env python3
"""Project linter for repo-specific contracts that generic tools can't see.

Rules (see DESIGN.md "Correctness tooling"):

  no-exceptions      src/ is Status-only: no `throw`, `try {`, or `catch (`.
  no-raw-random      all randomness flows through util/rng (deterministic,
                     seedable): no rand()/srand()/time()/std::random_device
                     outside src/util/rng.*.
  no-direct-io       src/core, src/ged, src/graph, src/matching never write
                     to stdout/stderr directly; output goes through
                     metrics/trace/explain. bench/ and examples/ are also
                     linted so harness prints need an explicit allow(io).
  no-raw-logging     src/ never logs with raw fprintf(stderr, ...),
                     std::cerr, or std::cout — diagnostics go through
                     SIMJ_LOG (util/log.h) so sinks, levels, and JSON
                     output stay centralized. src/util/log.cc (the sink
                     implementation) is exempt by path.
  no-naked-new       no bare `new`; owning allocations use containers or
                     smart pointers. Intentional leaky singletons carry an
                     allow(new) pragma.
  no-raw-sockets     src/ never opens sockets or includes socket headers;
                     all network I/O lives in src/util/statusz.cc (the
                     embedded introspection server), which is exempt by
                     path. Keeps the "at most one file touches the
                     network" audit surface honest.
  no-raw-subprocess  src/ never forks, execs, opens raw pipes, or signals
                     processes directly; all child-process plumbing lives
                     in src/util/subprocess.cc (the framed-pipe worker
                     runner), which is exempt by path. Mirrors
                     no-raw-sockets: one auditable file per privileged
                     syscall family.
  no-raw-allocator-interposition
                     global operator new/delete replacements and malloc/
                     free-family interposition (definitions, not calls)
                     live only in src/util/heap_profiler.cc — the sampling
                     heap profiler, which is exempt by path. Two
                     replacements of the global allocator in one binary is
                     an ODR violation the linker won't always catch.
                     Mirrors no-raw-sockets: one auditable file per
                     privileged hook. Waivable with allow(allocator).
  unconsumed-status  a call to a function returning Status/StatusOr (names
                     harvested from src/**/*.h) must not be a bare
                     discarded statement, and `(void)` discards must use
                     SIMJ_IGNORE_STATUS or carry an allow(discard) pragma.
  nodiscard-contract util/status.h must keep Status and StatusOr declared
                     [[nodiscard]] at class level.
  fork-safety        the child branch after ::fork() (the window before
                     exec/_exit) may only call async-signal-safe
                     allowlisted functions — the parent's locks are
                     permanently frozen in the child, so a hidden malloc
                     or SIMJ_LOG there can deadlock (DESIGN.md §11).
  signal-handler-safety
                     the body of any function registered as a signal
                     handler (via sigaction's sa_handler/sa_sigaction or
                     signal()) may only call async-signal-safe allowlisted
                     functions — write/clock_gettime-class syscalls,
                     backtrace(), and std::atomic member ops (sig-atomic
                     stores) — because the handler can interrupt a thread
                     mid-malloc or mid-lock (DESIGN.md §12). Waivable with
                     allow(signal-handler).
  explicit-memory-order
                     std::atomic member operations in src/ must pass an
                     explicit std::memory_order argument; a bare .load()
                     defaults to seq_cst, hiding the author's intent and
                     the cost. Waivable with allow(memory-order).

Suppression pragmas (the pragma is a comment, checked before stripping):

  ... violating code ...  // simj-lint: allow(rule)        same line
  // simj-lint: allow(rule)                                 next line
  // simj-lint: allow-file(rule)                            whole file
                                                            (first 30 lines)

Usage:
  tools/simj_lint.py [--repo DIR] [--baseline FILE] [--update-baseline]
                     [--self-test] [paths...]

Default paths: src bench examples. Exits 1 when findings not covered by the
baseline exist, 0 otherwise. The baseline (tools/simj_lint_baseline.txt)
stores one fingerprint per historical finding so CI fails only on *new*
findings; it ships empty because the tree is clean.
"""

import argparse
import hashlib
import os
import re
import sys

LINT_EXTENSIONS = (".cc", ".cpp", ".cxx", ".h", ".hpp")

PRAGMA_RE = re.compile(r"//\s*simj-lint:\s*(allow|allow-file)\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Short pragma spellings accepted alongside the full rule names.
PRAGMA_SHORTHAND = {
    "io": "no-direct-io",
    "new": "no-naked-new",
    "discard": "unconsumed-status",
    "exceptions": "no-exceptions",
    "random": "no-raw-random",
    "logging": "no-raw-logging",
    "sockets": "no-raw-sockets",
    "subprocess": "no-raw-subprocess",
    "allocator": "no-raw-allocator-interposition",
    "fork": "fork-safety",
    "signal-handler": "signal-handler-safety",
    "memory-order": "explicit-memory-order",
}

# ---------------------------------------------------------------------------
# Source model
# ---------------------------------------------------------------------------


class SourceFile:
    """A lint unit: raw lines, comment/string-stripped lines, pragmas."""

    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel
        self.raw_lines = text.splitlines()
        self.code_lines = strip_comments_and_strings(text).splitlines()
        self.line_allows = {}  # line number (1-based) -> set of rules
        self.file_allows = set()
        for i, line in enumerate(self.raw_lines, start=1):
            for kind, rules in PRAGMA_RE.findall(line):
                names = {
                    PRAGMA_SHORTHAND.get(r.strip(), r.strip())
                    for r in rules.split(",")
                }
                if kind == "allow-file":
                    if i <= 30:
                        self.file_allows |= names
                else:
                    # A pragma covers its own line and the following line,
                    # so it can trail the violation or sit above it.
                    self.line_allows.setdefault(i, set()).update(names)
                    self.line_allows.setdefault(i + 1, set()).update(names)

    def allowed(self, rule, line_number):
        return rule in self.file_allows or rule in self.line_allows.get(
            line_number, set()
        )


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literal bodies, keeping line
    structure so findings report real line numbers."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings: skip to the matching delimiter wholesale.
                if out and out[-1] == "R":
                    match = re.match(r'R"([^()\s\\]{0,16})\(', text[i - 1 :])
                    if match:
                        delim = ")" + match.group(1) + '"'
                        end = text.find(delim, i)
                        if end < 0:
                            end = n
                        chunk = text[i - 1 : end + len(delim)]
                        out[-1] = ""
                        out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
                        i = end + len(delim)
                        continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated; keep line structure
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class Finding:
    def __init__(self, rel, line, rule, message, line_text):
        self.rel = rel
        self.line = line
        self.rule = rule
        self.message = message
        self.line_text = line_text

    def fingerprint(self):
        # Line numbers shift with unrelated edits; fingerprint on the
        # normalized offending line instead.
        normalized = re.sub(r"\s+", " ", self.line_text.strip())
        digest = hashlib.sha256(
            f"{self.rel}:{self.rule}:{normalized}".encode()
        ).hexdigest()[:16]
        return f"{self.rel}:{self.rule}:{digest}"

    def __str__(self):
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"


def in_dir(rel, *dirs):
    rel = rel.replace(os.sep, "/")
    return any(rel == d or rel.startswith(d + "/") for d in dirs)


EXCEPTION_RE = re.compile(r"\b(throw)\b|\b(try)\s*\{|\b(catch)\s*\(")
RANDOM_RE = re.compile(r"\b(rand|srand|time)\s*\(|\bstd::random_device\b")
IO_RE = re.compile(r"\b(printf|fprintf|puts|fputs|putchar)\s*\(|\bstd::(cout|cerr|clog)\b")
LOGGING_RE = re.compile(r"\b(fprintf)\s*\(\s*stderr\b|\bstd::(cerr|cout)\b")
# Naked allocation. The lookahead skips placement-new syntax `new (` and
# the token sequence `new[]` (which only occurs in `operator new[]`
# declarations — policed by no-raw-allocator-interposition instead);
# preprocessor lines (`#include <new>`) are skipped at the check site.
NEW_RE = re.compile(r"\bnew\b(?!\s*(?:\(|\[\]))")
# Socket headers and ::-qualified POSIX socket calls. The lookbehind keeps
# std::bind (the functional one) from matching `::bind(`.
SOCKET_INCLUDE_RE = re.compile(
    r'#\s*include\s*[<"](?:sys/socket\.h|netinet/[^>"]+|arpa/inet\.h)[>"]'
)
SOCKET_CALL_RE = re.compile(
    r"(?<!std)::(socket|bind|listen|accept|connect|setsockopt|recv|send|"
    r"shutdown|getsockname)\s*\("
)
# Process-control headers and ::-qualified POSIX process/pipe calls. Only
# ::-qualified spellings count (matching the project convention for raw
# syscalls), so methods like ChildProcess::Kill() don't trip the rule.
SUBPROCESS_INCLUDE_RE = re.compile(
    r'#\s*include\s*[<"](?:sys/wait\.h|spawn\.h)[>"]'
)
SUBPROCESS_CALL_RE = re.compile(
    r"(?<!std)::(fork|vfork|pipe2?|execve?|execvpe?|execlp?|posix_spawnp?|"
    r"waitpid|waitid|wait[34]?|kill|killpg|system|popen)\s*\("
)
VOID_DISCARD_RE = re.compile(r"\(\s*void\s*\)\s*([A-Za-z_][A-Za-z0-9_:]*)\s*\(")
# Global allocator replacement: any mention of `operator new`/`operator
# delete` (replacing, declaring, or ::operator-calling the global ones all
# belong next to the replacement), plus *definitions* of the C allocator
# entry points (a return type directly before the name — plain calls like
# `std::free(p)` or `::free(p)` don't match).
OPERATOR_ALLOC_RE = re.compile(r"\boperator\s+(new|delete)\b")
ALLOC_INTERPOSE_RE = re.compile(
    r'^\s*(?:extern\s*"[^"]*"\s*)?(?:void\s*\*|void|int)\s+'
    r"(malloc|calloc|realloc|free|cfree|aligned_alloc|posix_memalign|"
    r"memalign|valloc|pvalloc)\s*\("
)

# --- fork-safety ---
# Only these may run in a forked child before exec/_exit: the async-signal-
# safe syscall wrappers plus the project's own child entry points (which are
# audited to stay on this list transitively).
FORK_SAFE_CALLS = {
    "close", "_exit", "dup", "dup2", "read", "write",
    "execl", "execle", "execlp", "execv", "execve", "execvp",
    "CloseAllFdsExcept", "child_main",
}
FORK_RE = re.compile(r"::fork\s*\(\s*\)")
# The child branch: the first `== 0)` comparison after the fork call.
CHILD_BRANCH_RE = re.compile(r"==\s*0\s*\)\s*")
FORK_CALL_RE = re.compile(r"(::)?\b([A-Za-z_]\w*)\s*\(")
FORK_CALL_SKIP = {
    "if", "for", "while", "switch", "return", "sizeof",
    "static_cast", "reinterpret_cast", "const_cast", "int",
}

# --- signal-handler-safety ---
# How handlers get registered: a sigaction struct member assignment or the
# legacy signal() call. SIG_IGN/SIG_DFL are not functions and are skipped.
SIGNAL_REGISTER_RES = [
    re.compile(r"\.\s*sa_(?:handler|sigaction)\s*=\s*&?\s*([A-Za-z_]\w*)"),
    re.compile(r"\bsignal\s*\(\s*[^,()]+,\s*&?\s*([A-Za-z_]\w*)\s*\)"),
]
# What a handler body may call: async-signal-safe syscall wrappers,
# backtrace() (after a warmup call outside signal context), and
# std::atomic member operations (the C++ spelling of sig-atomic stores).
SIGNAL_SAFE_CALLS = {
    "write", "read", "close", "clock_gettime", "syscall", "backtrace",
    "_exit", "sigemptyset", "sigaddset",
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong",
}


def check_signal_handler_safety(source, emit):
    """Finds functions registered as signal handlers and flags any call in
    their (brace-balanced) bodies outside the async-signal-safe allowlist."""
    text = "\n".join(source.code_lines)

    def line_of(pos):
        return text.count("\n", 0, pos) + 1

    handlers = set()
    for register_re in SIGNAL_REGISTER_RES:
        for match in register_re.finditer(text):
            name = match.group(1)
            if name not in ("SIG_IGN", "SIG_DFL", "SIG_ERR"):
                handlers.add(name)
    for name in sorted(handlers):
        # The handler's definition in this file; registrations of handlers
        # defined elsewhere can't be analyzed here (their own file is).
        definition = re.search(
            r"\bvoid\s+%s\s*\([^)]*\)\s*\{" % re.escape(name), text
        )
        if definition is None:
            continue
        start = definition.end() - 1
        depth = 0
        end = start
        for end in range(start, len(text)):
            if text[end] == "{":
                depth += 1
            elif text[end] == "}":
                depth -= 1
                if depth == 0:
                    break
        body = text[start:end]
        for call in FORK_CALL_RE.finditer(body):
            called = call.group(2)
            if called in FORK_CALL_SKIP or called in SIGNAL_SAFE_CALLS:
                continue
            if called == name:
                continue  # recursion is odd but not an allowlist escape
            emit(
                "signal-handler-safety", line_of(start + call.start()),
                f"'{called}' called inside signal handler '{name}' — "
                "handlers may interrupt a thread mid-malloc/mid-lock, so "
                "only async-signal-safe calls (write, clock_gettime, "
                "backtrace, atomics) are legal; allowlist or annotate "
                "allow(signal-handler)",
            )


# --- explicit-memory-order ---
ATOMIC_OP_RE = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|"
    r"fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\("
)


def check_fork_safety(source, emit):
    """Walks every `::fork()` child branch and flags calls outside the
    async-signal-safe allowlist."""
    text = "\n".join(source.code_lines)

    def line_of(pos):
        return text.count("\n", 0, pos) + 1

    for fork in FORK_RE.finditer(text):
        branch = CHILD_BRANCH_RE.search(text, fork.end(), fork.end() + 2000)
        if branch is None:
            continue  # fork result never compared against 0 nearby
        start = branch.end()
        if start < len(text) and text[start] == "{":
            # Braced child block: window is the matching brace span.
            depth = 0
            end = start
            for end in range(start, len(text)):
                if text[end] == "{":
                    depth += 1
                elif text[end] == "}":
                    depth -= 1
                    if depth == 0:
                        break
        else:
            # Single-statement branch: window runs to the semicolon.
            end = text.find(";", start)
            end = len(text) if end < 0 else end
        window = text[start:end]
        for call in FORK_CALL_RE.finditer(window):
            name = call.group(2)
            if name in FORK_CALL_SKIP:
                continue
            if name in FORK_SAFE_CALLS:
                continue
            emit(
                "fork-safety", line_of(start + call.start()),
                f"'{name}' called in the fork()..._exit window — only "
                "async-signal-safe calls are legal in the child (the "
                "parent's locks are frozen); allowlist or annotate "
                "allow(fork)",
            )


def check_memory_order(source, emit):
    """Flags std::atomic member operations whose (multi-line, paren-
    balanced) argument list lacks an explicit memory_order."""
    lines = source.code_lines
    for index, line in enumerate(lines):
        for match in ATOMIC_OP_RE.finditer(line):
            # Join from the opening paren until parens balance (atomics
            # with explicit orders routinely wrap).
            args = []
            depth = 0
            done = False
            row, col = index, match.end() - 1
            while row < len(lines) and row < index + 12 and not done:
                segment = lines[row][col:]
                for offset, ch in enumerate(segment):
                    if ch == "(":
                        depth += 1
                    elif ch == ")":
                        depth -= 1
                        if depth == 0:
                            args.append(segment[:offset])
                            done = True
                            break
                if not done:
                    args.append(segment)
                row += 1
                col = 0
            if "memory_order" not in "".join(args):
                emit(
                    "explicit-memory-order", index + 1,
                    f"atomic '{match.group(1)}' without an explicit "
                    "std::memory_order — say seq_cst if you mean it "
                    "(or annotate allow(memory-order))",
                )

STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:inline\s+|static\s+|constexpr\s+)*"
    r"(?:simj::)?Status(?:Or<[^;=]*>)?\s+([A-Za-z_][A-Za-z0-9_]*)\s*\(",
    re.MULTILINE,
)

# Names that return Status/StatusOr but are unconditionally safe to call as
# statements never (empty), or that the harvest would misfire on.
HARVEST_SKIP = {"Ok"}


def harvest_status_functions(repo):
    """Collects names of functions returning Status/StatusOr from src headers."""
    names = set()
    src = os.path.join(repo, "src")
    for dirpath, _, filenames in os.walk(src):
        for filename in filenames:
            if not filename.endswith(".h"):
                continue
            path = os.path.join(dirpath, filename)
            try:
                text = open(path, encoding="utf-8", errors="replace").read()
            except OSError:
                continue
            for match in STATUS_DECL_RE.finditer(strip_comments_and_strings(text)):
                name = match.group(1)
                if name not in HARVEST_SKIP:
                    names.add(name)
    return names


def lint_file(source, status_functions):
    rel = source.rel.replace(os.sep, "/")
    findings = []

    def emit(rule, line_number, message):
        if source.allowed(rule, line_number):
            return
        findings.append(
            Finding(rel, line_number, rule, message,
                    source.raw_lines[line_number - 1]
                    if line_number <= len(source.raw_lines) else "")
        )

    check_exceptions = in_dir(rel, "src")
    check_random = not rel.startswith("src/util/rng")
    check_io = in_dir(
        rel, "src/core", "src/ged", "src/graph", "src/matching", "bench",
        "examples"
    )
    # The sink implementation itself is the one place raw stderr is legal.
    check_logging = in_dir(rel, "src") and rel != "src/util/log.cc"
    # The introspection server is the one file allowed to touch the network.
    check_sockets = (
        in_dir(rel, "src", "bench", "examples")
        and rel != "src/util/statusz.cc"
    )
    # The framed-pipe worker runner is the one file allowed to fork/exec.
    check_subprocess = (
        in_dir(rel, "src", "bench", "examples")
        and rel != "src/util/subprocess.cc"
    )
    # The sampling heap profiler is the one file allowed to replace the
    # global allocator.
    check_allocator = (
        in_dir(rel, "src", "bench", "examples")
        and rel != "src/util/heap_profiler.cc"
    )

    bare_call_re = None
    if status_functions:
        joined = "|".join(sorted(status_functions))
        # A statement that *starts* with a harvested call: nothing consumes
        # the returned status.
        bare_call_re = re.compile(
            r"^\s*(?:[A-Za-z_][A-Za-z0-9_]*(?:::|\.|->))*(%s)\s*\(" % joined
        )

    if in_dir(rel, "src"):
        check_fork_safety(source, emit)
        check_signal_handler_safety(source, emit)
        check_memory_order(source, emit)

    previous = ""
    for line_number, line in enumerate(source.code_lines, start=1):
        if check_exceptions:
            match = EXCEPTION_RE.search(line)
            if match:
                keyword = match.group(1) or match.group(2) or match.group(3)
                emit(
                    "no-exceptions", line_number,
                    f"'{keyword}' in src/ — this codebase is Status-only "
                    "(util/status.h)",
                )
        if check_random:
            match = RANDOM_RE.search(line)
            if match:
                what = match.group(1) or "std::random_device"
                emit(
                    "no-raw-random", line_number,
                    f"raw '{what}' — use util/rng so runs stay seeded and "
                    "reproducible",
                )
        if check_io:
            match = IO_RE.search(line)
            if match:
                what = match.group(1) or f"std::{match.group(2)}"
                emit(
                    "no-direct-io", line_number,
                    f"direct '{what}' I/O — route output through "
                    "metrics/trace/explain (or annotate a harness print "
                    "with allow(io))",
                )
        if check_logging:
            match = LOGGING_RE.search(line)
            if match:
                what = match.group(1) or f"std::{match.group(2)}"
                emit(
                    "no-raw-logging", line_number,
                    f"raw '{what}' logging in src/ — use SIMJ_LOG "
                    "(util/log.h) so level filtering and JSON sinks apply "
                    "(or annotate allow(logging))",
                )
        match = NEW_RE.search(line)
        if match and not line.lstrip().startswith("#"):
            emit(
                "no-naked-new", line_number,
                "naked 'new' — own allocations with containers or "
                "std::make_unique (leaky singletons: annotate allow(new))",
            )
        if check_sockets:
            match = SOCKET_INCLUDE_RE.search(line) or SOCKET_CALL_RE.search(line)
            if match:
                what = (match.group(1) if match.re is SOCKET_CALL_RE
                        else "socket header include")
                emit(
                    "no-raw-sockets", line_number,
                    f"raw socket use ('{what}') — all network I/O belongs "
                    "in src/util/statusz.cc (or annotate allow(sockets))",
                )
        if check_subprocess:
            match = (SUBPROCESS_INCLUDE_RE.search(line)
                     or SUBPROCESS_CALL_RE.search(line))
            if match:
                what = (match.group(1) if match.re is SUBPROCESS_CALL_RE
                        else "process-control header include")
                emit(
                    "no-raw-subprocess", line_number,
                    f"raw process control ('{what}') — fork/exec/pipe/wait "
                    "plumbing belongs in src/util/subprocess.cc (or "
                    "annotate allow(subprocess))",
                )
        if check_allocator:
            match = OPERATOR_ALLOC_RE.search(line) or ALLOC_INTERPOSE_RE.match(line)
            if match:
                what = (f"operator {match.group(1)}"
                        if match.re is OPERATOR_ALLOC_RE
                        else f"{match.group(1)} definition")
                emit(
                    "no-raw-allocator-interposition", line_number,
                    f"global allocator hook ('{what}') — operator "
                    "new/delete replacement and malloc-family interposition "
                    "belong in src/util/heap_profiler.cc (or annotate "
                    "allow(allocator))",
                )
        if bare_call_re:
            match = bare_call_re.match(line)
            # `return Foo();`-style lines don't match (they start with
            # `return`), and continuation lines like `StatusOr<T> x =\n
            # Foo(...)` are filtered by requiring the previous code line to
            # end a statement or block.
            at_statement_start = (
                not previous.strip()
                or previous.rstrip().endswith((";", "{", "}"))
                or previous.lstrip().startswith("#")
            )
            if match and at_statement_start:
                emit(
                    "unconsumed-status", line_number,
                    f"result of '{match.group(1)}' (returns Status/StatusOr) "
                    "is discarded — handle it or use SIMJ_IGNORE_STATUS",
                )
            match = VOID_DISCARD_RE.search(line)
            if match and match.group(1).split("::")[-1] in status_functions:
                emit(
                    "unconsumed-status", line_number,
                    f"'(void)' discard of '{match.group(1)}' — use "
                    "SIMJ_IGNORE_STATUS or annotate allow(discard)",
                )
        if line.strip():
            previous = line
    return findings


def lint_contract(repo):
    """util/status.h must keep the class-level [[nodiscard]] contract."""
    findings = []
    path = os.path.join(repo, "src/util/status.h")
    try:
        text = open(path, encoding="utf-8").read()
    except OSError:
        return [Finding("src/util/status.h", 1, "nodiscard-contract",
                        "util/status.h is missing", "")]
    for needle, what in [
        (r"class\s+\[\[nodiscard\]\]\s+Status\b", "Status"),
        (r"class\s+\[\[nodiscard\]\]\s+StatusOr\b", "StatusOr"),
    ]:
        if not re.search(needle, text):
            findings.append(
                Finding(
                    "src/util/status.h", 1, "nodiscard-contract",
                    f"class {what} must be declared [[nodiscard]] so ignored "
                    "statuses fail the build", needle,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect_files(repo, paths):
    for path in paths:
        absolute = os.path.join(repo, path)
        if os.path.isfile(absolute):
            yield absolute
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            for filename in sorted(filenames):
                if filename.endswith(LINT_EXTENSIONS):
                    yield os.path.join(dirpath, filename)


def run_lint(repo, paths):
    status_functions = harvest_status_functions(repo)
    findings = lint_contract(repo)
    for path in collect_files(repo, paths):
        rel = os.path.relpath(path, repo)
        try:
            text = open(path, encoding="utf-8", errors="replace").read()
        except OSError as error:
            print(f"simj_lint: cannot read {rel}: {error}", file=sys.stderr)
            continue
        findings.extend(lint_file(SourceFile(path, rel, text), status_functions))
    return findings


def load_baseline(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return {
                line.strip()
                for line in handle
                if line.strip() and not line.startswith("#")
            }
    except OSError:
        return set()


# ---------------------------------------------------------------------------
# Self test: every rule must catch its seeded violation and respect pragmas.
# ---------------------------------------------------------------------------

SELF_TEST_CASES = [
    # (virtual path, snippet, rule expected to fire)
    ("src/core/bad_throw.cc", "void F() { throw 1; }\n", "no-exceptions"),
    ("src/core/bad_try.cc", "void F() { try { G(); } catch (...) {} }\n",
     "no-exceptions"),
    ("src/core/bad_rand.cc", "int F() { return rand(); }\n", "no-raw-random"),
    ("src/workload/bad_seed.cc",
     "#include <ctime>\nlong F() { return time(nullptr); }\n",
     "no-raw-random"),
    ("src/ged/bad_device.cc",
     "#include <random>\nstd::random_device dev;\n", "no-raw-random"),
    ("src/ged/bad_print.cc",
     '#include <cstdio>\nvoid F() { printf("x"); }\n', "no-direct-io"),
    ("src/graph/bad_cout.cc",
     "#include <iostream>\nvoid F() { std::cout << 1; }\n", "no-direct-io"),
    ("src/core/bad_new.cc", "int* F() { return new int(3); }\n",
     "no-naked-new"),
    ("src/core/bad_status.cc",
     "#include \"sparql/parser.h\"\nvoid F() {\n  ParseSparql(\"\", d);\n}\n",
     "unconsumed-status"),
    ("src/core/bad_void.cc",
     "#include \"sparql/parser.h\"\nvoid F() { (void)ParseSparql(\"\", d); }\n",
     "unconsumed-status"),
    ("src/util/bad_stderr.cc",
     '#include <cstdio>\nvoid F() { fprintf(stderr, "x\\n"); }\n',
     "no-raw-logging"),
    ("src/nlp/bad_cerr.cc",
     '#include <iostream>\nvoid F() { std::cerr << "x"; }\n',
     "no-raw-logging"),
    ("src/workload/bad_cout.cc",
     "#include <iostream>\nvoid F() { std::cout << 1; }\n",
     "no-raw-logging"),
    ("src/core/bad_opnew.cc",
     "#include <new>\nvoid* operator new(std::size_t n);\n",
     "no-raw-allocator-interposition"),
    ("src/core/bad_opdelete.cc",
     "void operator delete(void* p) noexcept;\n",
     "no-raw-allocator-interposition"),
    ("src/util/bad_malloc_def.cc",
     "#include <cstddef>\n"
     "extern \"C\" void* malloc(std::size_t n) { return nullptr; }\n",
     "no-raw-allocator-interposition"),
    ("bench/bad_free_def.cc",
     "void free(void* p) {}\n",
     "no-raw-allocator-interposition"),
    ("src/core/bad_opnew_call.cc",
     "void* F(std::size_t n) { return ::operator new(n); }\n",
     "no-raw-allocator-interposition"),
    ("src/core/bad_socket_header.cc",
     "#include <sys/socket.h>\nvoid F();\n", "no-raw-sockets"),
    ("src/core/bad_socket_call.cc",
     "void F() { int fd = ::socket(2, 1, 0); ::listen(fd, 16); }\n",
     "no-raw-sockets"),
    ("bench/bad_connect.cc",
     "#include <netinet/in.h>\nvoid F();\n", "no-raw-sockets"),
    ("src/core/bad_fork.cc",
     "void F() { if (::fork() == 0) { ::_exit(0); } }\n",
     "no-raw-subprocess"),
    ("src/dist/bad_wait_header.cc",
     "#include <sys/wait.h>\nvoid F();\n", "no-raw-subprocess"),
    ("src/graph/bad_pipe.cc",
     "void F(int* fds) { ::pipe(fds); ::kill(1, 9); }\n",
     "no-raw-subprocess"),
    ("bench/bad_system.cc",
     'void F() { ::system("ls"); }\n', "no-raw-subprocess"),
    ("src/util/subprocess.cc",
     "void F() {\n  pid_t pid = ::fork();\n  if (pid == 0) {\n"
     '    printf("child\\n");\n    ::_exit(0);\n  }\n}\n',
     "fork-safety"),
    ("src/util/subprocess.cc",
     "void F() {\n  pid_t pid = ::fork();\n  if (pid == 0) {\n"
     "    SIMJ_LOG(WARN) << \"in child\";\n    ::_exit(0);\n  }\n}\n",
     "fork-safety"),
    ("src/util/bad_handler_malloc.cc",
     "void OnProf(int) {\n  void* p = malloc(8);\n  free(p);\n}\n"
     "void F() {\n  struct sigaction sa{};\n  sa.sa_handler = &OnProf;\n"
     "  ::sigaction(SIGPROF, &sa, nullptr);\n}\n",
     "signal-handler-safety"),
    ("src/util/bad_handler_log.cc",
     "void OnTerm(int) {\n  SIMJ_LOG(WARN) << \"dying\";\n}\n"
     "void F() { ::signal(SIGTERM, OnTerm); }\n",
     "signal-handler-safety"),
    ("src/util/bad_handler_sigaction_member.cc",
     "void OnSegv(int) { printf(\"boom\"); }\n"
     "void F() {\n  struct sigaction sa{};\n  sa.sa_sigaction = OnSegv;\n}\n",
     "signal-handler-safety"),
    ("src/core/bad_atomic_store.cc",
     "#include <atomic>\nvoid F(std::atomic<int>& a) { a.store(1); }\n",
     "explicit-memory-order"),
    ("src/core/bad_atomic_fetch.cc",
     "#include <atomic>\nstd::atomic<int> c;\n"
     "int F() { return c.fetch_add(1); }\n",
     "explicit-memory-order"),
]

SELF_TEST_CLEAN = [
    ("src/core/ok_pragma_new.cc",
     "int* F() { return new int(3); }  // simj-lint: allow(new)\n"),
    ("src/core/ok_snprintf.cc",
     '#include <cstdio>\nvoid F(char* b) { std::snprintf(b, 4, "x"); }\n'),
    ("bench/ok_allow_io.cpp",
     "// simj-lint: allow-file(io)\n#include <iostream>\n"
     "void F() { std::cout << 1; }\n"),
    ("src/core/ok_comment.cc",
     "// a comment may say throw or rand() or new freely\nvoid F();\n"),
    ("src/core/ok_string.cc",
     'const char* kMessage = "do not throw here";\n'),
    ("src/core/ok_registry.cc",
     "struct Registry {};\nRegistry MakeRegistry();\n"),
    ("src/core/ok_ignore.cc",
     "#include \"sparql/parser.h\"\n"
     "void F() { SIMJ_IGNORE_STATUS(ParseSparql(\"\", d)); }\n"),
    # The sink implementation is path-exempt from no-raw-logging.
    ("src/util/log.cc",
     '#include <cstdio>\nvoid F() { fprintf(stderr, "sink\\n"); }\n'),
    ("src/workload/ok_logging_pragma.cc",
     '#include <cstdio>\n'
     'void F() { fprintf(stderr, "x\\n"); }  // simj-lint: allow(logging)\n'),
    # fprintf to a real file (not stderr) is not raw logging.
    ("src/util/ok_fprintf_file.cc",
     "#include <cstdio>\nvoid F(FILE* f) { fprintf(f, \"x\\n\"); }\n"),
    # The introspection server is path-exempt from no-raw-sockets.
    ("src/util/statusz.cc",
     "#include <sys/socket.h>\nvoid F() { ::socket(2, 1, 0); }\n"),
    # std::bind (the functional one) is not ::bind(2).
    ("src/core/ok_std_bind.cc",
     "#include <functional>\nauto F() { return std::bind(G, 1); }\n"),
    ("src/workload/ok_sockets_pragma.cc",
     "// simj-lint: allow-file(sockets)\n#include <sys/socket.h>\n"
     "void F() { ::socket(2, 1, 0); }\n"),
    # The framed-pipe worker runner is path-exempt from no-raw-subprocess.
    ("src/util/subprocess.cc",
     "#include <sys/wait.h>\nvoid F() { if (::fork() == 0) ::_exit(0); }\n"),
    # Method names that shadow the syscalls (ChildProcess::Kill, a worker's
    # Wait) are not ::-qualified syscalls.
    ("src/dist/ok_kill_method.cc",
     "#include \"util/subprocess.h\"\n"
     "void F(simj::subprocess::ChildProcess* c) { c->Kill(); c->Wait(); }\n"),
    ("src/workload/ok_subprocess_pragma.cc",
     "// simj-lint: allow-file(subprocess)\n"
     "void F() { ::kill(1, 9); }\n"),
    # The real child window: only allowlisted async-signal-safe calls.
    ("src/util/subprocess.cc",
     "void F() {\n  pid_t pid = ::fork();\n  if (pid == 0) {\n"
     "    CloseAllFdsExcept(a, b);\n    int code = child_main(a, b);\n"
     "    ::close(a);\n    ::_exit(code);\n  }\n}\n"),
    # A fork-window violation can be waived per line.
    ("src/util/subprocess.cc",
     "void F() {\n  if (::fork() == 0) {\n"
     "    setup_child();  // simj-lint: allow(fork)\n    ::_exit(0);\n  }\n}\n"),
    # A handler restricted to the async-signal-safe allowlist is clean.
    ("src/util/ok_handler_safe.cc",
     "#include <atomic>\nstd::atomic<int> hits;\n"
     "void OnProf(int) {\n"
     "  const int saved_errno = errno;\n"
     "  void* frames[8];\n"
     "  int depth = ::backtrace(frames, 8);\n"
     "  if (depth > 0) hits.fetch_add(1, std::memory_order_relaxed);\n"
     "  ::write(2, \"\", 0);\n  errno = saved_errno;\n}\n"
     "void F() {\n  struct sigaction sa{};\n  sa.sa_handler = &OnProf;\n}\n"),
    # Registering SIG_IGN/SIG_DFL registers no function.
    ("src/util/ok_handler_ignore.cc",
     "void F() { ::signal(SIGPIPE, SIG_IGN); }\n"),
    # A handler-body violation can be waived per line.
    ("src/util/ok_handler_pragma.cc",
     "void OnTerm(int) {\n"
     "  Flush();  // simj-lint: allow(signal-handler)\n}\n"
     "void F() { ::signal(SIGTERM, OnTerm); }\n"),
    # A function merely named like a handler but never registered is free.
    ("src/util/ok_not_registered.cc",
     "void OnProf(int) { malloc(8); }  // simj-lint: allow(new)\n"),
    # The sampling heap profiler is path-exempt from allocator
    # interposition (and `operator new[]`/`#include <new>` don't trip
    # no-naked-new, whose target is naked allocation expressions).
    ("src/util/heap_profiler.cc",
     "#include <new>\n"
     "void* operator new(std::size_t n) { return SimjAlloc(n); }\n"
     "void* operator new[](std::size_t n) { return SimjAlloc(n); }\n"
     "void operator delete(void* p) noexcept { SimjFree(p); }\n"),
    # Calls into the allocator (not definitions) are not interposition.
    ("src/core/ok_free_call.cc",
     "#include <cstdlib>\nvoid F(void* p) { std::free(p); }\n"),
    ("src/core/ok_malloc_wrapper.cc",
     "void* MyAlloc(std::size_t n);\n"),
    # An interposition violation can be waived per line.
    ("src/core/ok_alloc_pragma.cc",
     "void* operator new(std::size_t n);  // simj-lint: allow(allocator)\n"),
    # Explicit orders satisfy the rule even when the call wraps lines.
    ("src/core/ok_mo_multiline.cc",
     "#include <atomic>\nstd::atomic<int> c;\nvoid F() {\n  c.store(1,\n"
     "      std::memory_order_relaxed);\n}\n"),
    # std::exchange (the <utility> one) is not an atomic member op.
    ("src/core/ok_std_exchange.cc",
     "#include <utility>\nint F(int& x) { return std::exchange(x, 3); }\n"),
    ("src/core/ok_mo_pragma.cc",
     "#include <atomic>\nstd::atomic<int> c;\n"
     "int F() { return c.load(); }  // simj-lint: allow(memory-order)\n"),
]

def self_test(repo):
    status_functions = harvest_status_functions(repo)
    if "ParseSparql" not in status_functions:
        print("self-test: FAILED to harvest ParseSparql from src headers")
        return 1
    failures = 0
    for rel, snippet, rule in SELF_TEST_CASES:
        findings = lint_file(SourceFile(rel, rel, snippet), status_functions)
        if not any(f.rule == rule for f in findings):
            print(f"self-test: expected [{rule}] finding in {rel}, got "
                  f"{[str(f) for f in findings]}")
            failures += 1
    for rel, snippet in SELF_TEST_CLEAN:
        findings = lint_file(SourceFile(rel, rel, snippet), status_functions)
        if findings:
            print(f"self-test: expected no findings in {rel}, got "
                  f"{[str(f) for f in findings]}")
            failures += 1
    if failures == 0:
        cases = len(SELF_TEST_CASES) + len(SELF_TEST_CLEAN)
        print(f"self-test OK: {cases} cases")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--repo", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file of known-finding fingerprints")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule catches its seeded violation")
    args = parser.parse_args()

    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    if args.self_test:
        sys.exit(self_test(repo))

    paths = args.paths or ["src", "bench", "examples"]
    baseline_path = args.baseline or os.path.join(
        repo, "tools", "simj_lint_baseline.txt"
    )
    findings = run_lint(repo, paths)

    if args.update_baseline:
        with open(baseline_path, "w", encoding="utf-8") as handle:
            handle.write("# simj_lint baseline: one fingerprint per known "
                         "finding. New findings fail CI.\n")
            for finding in sorted(findings, key=lambda f: f.fingerprint()):
                handle.write(finding.fingerprint() + "\n")
        print(f"baseline updated: {len(findings)} finding(s)")
        return

    baseline = load_baseline(baseline_path)
    new_findings = [f for f in findings if f.fingerprint() not in baseline]
    for finding in new_findings:
        print(finding)
    suppressed = len(findings) - len(new_findings)
    if new_findings:
        print(f"simj_lint: {len(new_findings)} new finding(s)"
              + (f", {suppressed} baselined" if suppressed else ""))
        sys.exit(1)
    print(f"simj_lint OK"
          + (f" ({suppressed} baselined finding(s))" if suppressed else ""))


if __name__ == "__main__":
    main()
