#!/usr/bin/env python3
"""Poll a running harness's /statusz and render a one-line live summary.

A join launched with --statusz_port=8080 serves a JSON status document on
127.0.0.1 (see src/util/statusz.h). This tool scrapes it and prints

  [run] 1234/20000 pairs  6.2%  831.0 pairs/s  eta 22.6s  workers 8  \
rss 84 MB  hb w0:3ms w1:151ms  cluster 5/12 shards q=[2,1,0,3] requeued 1

once (the default) or repeatedly with --watch, overwriting the line in
place like a progress bar. The `hb` segment lists per-worker heartbeat
ages (present when the join runs with heartbeats armed); the `cluster`
segment summarizes /clusterz (live shard queue depths, per-worker state,
requeue/fallback totals) and is silently omitted for builds or runs
without a distributed coordinator — /clusterz answering 404 is not an
error. Exit status: 0 on a successful scrape, 2 when /statusz is
unreachable or returns malformed JSON.

Usage:
  tools/statusz_poll.py [--port PORT] [--host HOST]
      [--watch] [--interval SECONDS]
  tools/statusz_poll.py --self-test
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def fetch_status(host: str, port: int, timeout: float = 2.0) -> dict:
    url = f"http://{host}:{port}/statusz"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_clusterz(host: str, port: int, timeout: float = 2.0):
    """Best-effort /clusterz scrape; None when absent (404) or unreadable."""
    url = f"http://{host}:{port}/clusterz"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, json.JSONDecodeError, ValueError):
        return None


def render_heartbeats(join: dict) -> str:
    """`hb w0:3ms w1:151ms` from the join's per-worker heartbeat ages."""
    beats = join.get("heartbeats") or []
    if not beats:
        return ""
    parts = [
        f"w{b.get('worker', '?')}:{b.get('age_ms', 0.0):.0f}ms"
        for b in beats
    ]
    return "hb " + " ".join(parts)


def render_clusterz(clusterz: dict) -> str:
    """One segment summarizing the live distributed coordinator."""
    if not clusterz or not clusterz.get("active"):
        return ""
    coord = clusterz.get("coordinator") or {}
    workers = coord.get("workers") or []
    depths = ",".join(str(w.get("queue_depth", 0)) for w in workers)
    dead = sum(1 for w in workers if w.get("state") == "dead")
    segment = (
        f"cluster {coord.get('done', 0)}/{coord.get('num_shards', 0)} shards"
        f"  q=[{depths}]  requeued {coord.get('requeued', 0)}"
    )
    if coord.get("fallback", 0):
        segment += f"  fallback {coord['fallback']}"
    if dead:
        segment += f"  dead {dead}"
    return segment


def render_line(status: dict, clusterz: dict = None) -> str:
    join = status.get("join") or {}
    total = join.get("total_pairs", 0)
    done = join.get("completed_pairs", 0)
    pct = 100.0 * done / total if total else 0.0
    rate = join.get("pairs_per_second", 0.0)
    eta = join.get("eta_seconds", -1.0)
    eta_text = f"eta {eta:.1f}s" if eta >= 0 else "eta ?"
    state = "run" if join.get("active") else "idle"
    rss_mb = status.get("rss_bytes", 0) / (1024.0 * 1024.0)
    line = (
        f"[{state}] {done}/{total} pairs  {pct:.1f}%  {rate:.1f} pairs/s  "
        f"{eta_text}  workers {join.get('workers', 0)}  rss {rss_mb:.0f} MB"
    )
    for segment in (render_heartbeats(join), render_clusterz(clusterz or {})):
        if segment:
            line += "  " + segment
    return line


def self_test() -> int:
    status = {
        "rss_bytes": 88 * 1024 * 1024,
        "join": {
            "active": True,
            "total_pairs": 20000,
            "completed_pairs": 1234,
            "pairs_per_second": 831.0,
            "eta_seconds": 22.6,
            "workers": 8,
        },
    }
    line = render_line(status)
    assert "1234/20000 pairs" in line, line
    assert "6.2%" in line, line
    assert "eta 22.6s" in line, line
    assert "workers 8" in line, line
    assert "rss 88 MB" in line, line
    assert line.startswith("[run]"), line

    idle = render_line({"join": {"active": False, "total_pairs": 0}})
    assert idle.startswith("[idle]"), idle
    assert "eta ?" in idle, idle

    # A status document with no join section (harness before its first
    # join) must render, not crash.
    bare = render_line({"rss_bytes": 0})
    assert "0/0 pairs" in bare, bare

    # Heartbeat ages render per worker, in order.
    with_beats = render_line({
        "join": {
            "active": True,
            "total_pairs": 10,
            "heartbeats": [
                {"worker": 0, "age_ms": 3.2, "q": 1, "g": 2},
                {"worker": 2, "age_ms": 151.0, "q": 4, "g": 0},
            ],
        },
    })
    assert "hb w0:3ms w2:151ms" in with_beats, with_beats

    # /clusterz summary: queue depths, requeues, dead workers, fallback.
    clusterz = {
        "active": True,
        "coordinator": {
            "num_shards": 12,
            "done": 5,
            "requeued": 1,
            "fallback": 2,
            "workers": [
                {"worker": 0, "queue_depth": 2, "state": "alive"},
                {"worker": 1, "queue_depth": 0, "state": "dead"},
                {"worker": 2, "queue_depth": 3, "state": "alive"},
            ],
        },
    }
    with_cluster = render_line({"join": {"active": True}}, clusterz)
    assert "cluster 5/12 shards" in with_cluster, with_cluster
    assert "q=[2,0,3]" in with_cluster, with_cluster
    assert "requeued 1" in with_cluster, with_cluster
    assert "fallback 2" in with_cluster, with_cluster
    assert "dead 1" in with_cluster, with_cluster

    # No /clusterz (404 or single-process build) and inactive coordinators
    # add nothing to the line.
    assert render_clusterz(None) == ""
    assert render_clusterz({"active": False, "coordinator": None}) == ""
    assert "cluster" not in render_line({"join": {}}, None)

    print("statusz_poll.py self-test: OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--watch", action="store_true",
                        help="poll until interrupted, updating one line")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between polls with --watch")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    try:
        while True:
            try:
                status = fetch_status(args.host, args.port)
            except (urllib.error.URLError, OSError, json.JSONDecodeError,
                    ValueError) as error:
                print(f"statusz_poll: cannot scrape "
                      f"http://{args.host}:{args.port}/statusz: {error}",
                      file=sys.stderr)
                return 2
            line = render_line(status, fetch_clusterz(args.host, args.port))
            if args.watch:
                print("\r\x1b[K" + line, end="", flush=True)
                time.sleep(args.interval)
            else:
                print(line)
                return 0
    except KeyboardInterrupt:
        print()
        return 0


if __name__ == "__main__":
    sys.exit(main())
