#!/usr/bin/env python3
"""Poll a running harness's /statusz and render a one-line live summary.

A join launched with --statusz_port=8080 serves a JSON status document on
127.0.0.1 (see src/util/statusz.h). This tool scrapes it and prints

  [run] 1234/20000 pairs  6.2%  831.0 pairs/s  eta 22.6s  workers 8  rss 84 MB

once (the default) or repeatedly with --watch, overwriting the line in
place like a progress bar. Exit status: 0 on a successful scrape, 2 when
the endpoint is unreachable or returns malformed JSON.

Usage:
  tools/statusz_poll.py [--port PORT] [--host HOST]
      [--watch] [--interval SECONDS]
  tools/statusz_poll.py --self-test
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def fetch_status(host: str, port: int, timeout: float = 2.0) -> dict:
    url = f"http://{host}:{port}/statusz"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def render_line(status: dict) -> str:
    join = status.get("join") or {}
    total = join.get("total_pairs", 0)
    done = join.get("completed_pairs", 0)
    pct = 100.0 * done / total if total else 0.0
    rate = join.get("pairs_per_second", 0.0)
    eta = join.get("eta_seconds", -1.0)
    eta_text = f"eta {eta:.1f}s" if eta >= 0 else "eta ?"
    state = "run" if join.get("active") else "idle"
    rss_mb = status.get("rss_bytes", 0) / (1024.0 * 1024.0)
    return (
        f"[{state}] {done}/{total} pairs  {pct:.1f}%  {rate:.1f} pairs/s  "
        f"{eta_text}  workers {join.get('workers', 0)}  rss {rss_mb:.0f} MB"
    )


def self_test() -> int:
    status = {
        "rss_bytes": 88 * 1024 * 1024,
        "join": {
            "active": True,
            "total_pairs": 20000,
            "completed_pairs": 1234,
            "pairs_per_second": 831.0,
            "eta_seconds": 22.6,
            "workers": 8,
        },
    }
    line = render_line(status)
    assert "1234/20000 pairs" in line, line
    assert "6.2%" in line, line
    assert "eta 22.6s" in line, line
    assert "workers 8" in line, line
    assert "rss 88 MB" in line, line
    assert line.startswith("[run]"), line

    idle = render_line({"join": {"active": False, "total_pairs": 0}})
    assert idle.startswith("[idle]"), idle
    assert "eta ?" in idle, idle

    # A status document with no join section (harness before its first
    # join) must render, not crash.
    bare = render_line({"rss_bytes": 0})
    assert "0/0 pairs" in bare, bare
    print("statusz_poll.py self-test: OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--watch", action="store_true",
                        help="poll until interrupted, updating one line")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between polls with --watch")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    try:
        while True:
            try:
                status = fetch_status(args.host, args.port)
            except (urllib.error.URLError, OSError, json.JSONDecodeError,
                    ValueError) as error:
                print(f"statusz_poll: cannot scrape "
                      f"http://{args.host}:{args.port}/statusz: {error}",
                      file=sys.stderr)
                return 2
            line = render_line(status)
            if args.watch:
                print("\r\x1b[K" + line, end="", flush=True)
                time.sleep(args.interval)
            else:
                print(line)
                return 0
    except KeyboardInterrupt:
        print()
        return 0


if __name__ == "__main__":
    sys.exit(main())
