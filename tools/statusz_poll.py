#!/usr/bin/env python3
"""Poll a running harness's /statusz and render a one-line live summary.

A join launched with --statusz_port=8080 serves a JSON status document on
127.0.0.1 (see src/util/statusz.h). This tool scrapes it and prints

  [run] 1234/20000 pairs  6.2%  831.0 pairs/s  eta 22.6s  workers 8  \
rss 84 MB  hb w0:3ms w1:151ms  cluster 5/12 shards q=[2,1,0,3] requeued 1

once (the default) or repeatedly with --watch, overwriting the line in
place like a progress bar. The `hb` segment lists per-worker heartbeat
ages (present when the join runs with heartbeats armed); the `cluster`
segment summarizes /clusterz (live shard queue depths, per-worker state,
requeue/fallback totals) and is silently omitted for builds or runs
without a distributed coordinator — /clusterz answering 404 is not an
error. Exit status: 0 on a successful scrape, 2 when /statusz is
unreachable or returns malformed JSON.

With --profile=SECONDS the tool instead triggers an on-demand CPU capture
via /profilez (see util/profiler.h), saves the folded-stack output to
--profile_out (render it with tools/flame.py), and prints the top-5
hottest frames by self time. A 404 means the binary serves /statusz but
was built without the profiler — reported and exited 0, not an error; a
409 means another capture is already in flight.

With --heap=SECONDS it triggers an on-demand heap capture via /heapz (see
util/heap_profiler.h), saves the four-counter folded output to
--heap_out (render with tools/flame.py --metric inuse_bytes), and prints
the top-5 allocation sites by live (in-use) bytes. 404 (built without
the heap profiler, e.g. under a sanitizer) and 503 (profiler refused to
arm) are tolerated and exit 0; 409 means a capture is already running.

Usage:
  tools/statusz_poll.py [--port PORT] [--host HOST]
      [--watch] [--interval SECONDS]
  tools/statusz_poll.py --profile SECONDS [--hz HZ]
      [--profile_out FILE.folded]
  tools/statusz_poll.py --heap SECONDS [--sample_bytes N]
      [--heap_out FILE.folded]
  tools/statusz_poll.py --self-test
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def fetch_status(host: str, port: int, timeout: float = 2.0) -> dict:
    url = f"http://{host}:{port}/statusz"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_clusterz(host: str, port: int, timeout: float = 2.0):
    """Best-effort /clusterz scrape; None when absent (404) or unreadable."""
    url = f"http://{host}:{port}/clusterz"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, json.JSONDecodeError, ValueError):
        return None


def parse_folded_leaves(text: str):
    """(leaf-frame self counts, total samples) from folded-stack text.

    Each line is `frame;frame;...;leaf COUNT`; a stack's samples belong to
    its leaf frame (the function on-CPU), matching flame-graph self time.
    Blank lines and #-comments are tolerated; malformed lines are skipped
    rather than failing the whole capture.
    """
    counts = {}
    total = 0
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        stack, _, count_text = line.rpartition(" ")
        if not stack or not count_text.isdigit():
            continue
        count = int(count_text)
        leaf = stack.split(";")[-1]
        counts[leaf] = counts.get(leaf, 0) + count
        total += count
    return counts, total


def top_frames(text: str, n: int = 5):
    """Top-n (frame, count, share_pct) by self time, hottest first."""
    counts, total = parse_folded_leaves(text)
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [
        (frame, count, 100.0 * count / total)
        for frame, count in ranked[:n]
    ]


def run_profile(host: str, port: int, seconds: float, hz: int,
                out_path: str) -> int:
    url = (f"http://{host}:{port}/profilez?seconds={seconds:g}&hz={hz}"
           "&format=folded")
    print(f"statusz_poll: capturing {seconds:g}s at {hz} Hz via {url}")
    try:
        # The server blocks for the whole capture window; give it margin.
        with urllib.request.urlopen(url, timeout=seconds + 15.0) as response:
            body = response.read().decode("utf-8", errors="replace")
    except urllib.error.HTTPError as error:
        if error.code == 404:
            print("statusz_poll: /profilez not found (404) — binary built "
                  "without the profiler; nothing captured")
            return 0
        detail = error.read().decode("utf-8", errors="replace").strip()
        if error.code == 409:
            print(f"statusz_poll: capture already in flight (409): {detail}",
                  file=sys.stderr)
        else:
            print(f"statusz_poll: /profilez failed ({error.code}): {detail}",
                  file=sys.stderr)
        return 2
    except (urllib.error.URLError, OSError) as error:
        print(f"statusz_poll: cannot reach {url}: {error}", file=sys.stderr)
        return 2
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(body)
    counts, total = parse_folded_leaves(body)
    print(f"statusz_poll: {total} samples across {len(counts)} leaf frames "
          f"saved to {out_path} (render: tools/flame.py {out_path})")
    if total == 0:
        print("statusz_poll: no samples (idle process or window too short)")
        return 0
    print("top frames by self time:")
    for frame, count, share in top_frames(body):
        print(f"  {share:5.1f}%  {count:>6}  {frame}")
    return 0


def parse_heap_folded_leaves(text: str):
    """(leaf -> [inuse_b, inuse_obj, alloc_b, alloc_obj], totals) from
    /heapz folded text.

    Heap folded lines end in four counters (util/heap_profiler.h's
    contract); counters aggregate onto the stack's leaf frame — the
    function that called the allocator. Malformed lines are skipped.
    """
    counts = {}
    totals = [0, 0, 0, 0]
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split(" ")
        if len(tokens) < 5:
            continue
        try:
            values = [int(t) for t in tokens[-4:]]
        except ValueError:
            continue
        leaf = " ".join(tokens[:-4]).split(";")[-1]
        slot = counts.setdefault(leaf, [0, 0, 0, 0])
        for i, v in enumerate(values):
            slot[i] += v
            totals[i] += v
    return counts, totals


def format_bytes(n: int) -> str:
    """1234567 -> '1.2 MB'; negatives keep their sign (drained deltas)."""
    sign = "-" if n < 0 else ""
    n = abs(n)
    if n < 1024:
        return f"{sign}{n} B"
    for unit, scale in (("KB", 1024), ("MB", 1024 ** 2), ("GB", 1024 ** 3)):
        if n < scale * 1024 or unit == "GB":
            return f"{sign}{n / scale:.1f} {unit}"
    return f"{sign}{n} B"  # unreachable


def top_heap_frames(text: str, n: int = 5):
    """Top-n (frame, inuse_bytes, inuse_objects, share_pct) by live bytes."""
    counts, totals = parse_heap_folded_leaves(text)
    total_inuse = totals[0]
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1][0], kv[0]))
    return [
        (frame, vals[0], vals[1],
         100.0 * vals[0] / total_inuse if total_inuse > 0 else 0.0)
        for frame, vals in ranked[:n]
    ]


def run_heap(host: str, port: int, seconds: float, sample_bytes: int,
             out_path: str) -> int:
    url = (f"http://{host}:{port}/heapz?seconds={seconds:g}"
           f"&sample_bytes={sample_bytes}&format=folded")
    print(f"statusz_poll: capturing heap for {seconds:g}s "
          f"(1 sample per ~{sample_bytes} bytes) via {url}")
    try:
        # The server blocks for the whole capture window; give it margin.
        with urllib.request.urlopen(url, timeout=seconds + 15.0) as response:
            body = response.read().decode("utf-8", errors="replace")
    except urllib.error.HTTPError as error:
        detail = error.read().decode("utf-8", errors="replace").strip()
        if error.code == 404:
            print("statusz_poll: /heapz not found (404) — binary built "
                  "without the heap profiler; nothing captured")
            return 0
        if error.code == 503:
            print(f"statusz_poll: heap profiler unavailable (503): {detail}")
            return 0
        if error.code == 409:
            print(f"statusz_poll: capture already in flight (409): {detail}",
                  file=sys.stderr)
        else:
            print(f"statusz_poll: /heapz failed ({error.code}): {detail}",
                  file=sys.stderr)
        return 2
    except (urllib.error.URLError, OSError) as error:
        print(f"statusz_poll: cannot reach {url}: {error}", file=sys.stderr)
        return 2
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(body)
    counts, totals = parse_heap_folded_leaves(body)
    print(f"statusz_poll: {format_bytes(totals[0])} live in "
          f"{totals[1]} sampled objects ({format_bytes(totals[2])} "
          f"allocated) across {len(counts)} leaf frames saved to "
          f"{out_path} (render: tools/flame.py --metric inuse_bytes "
          f"{out_path})")
    if totals[3] == 0:
        print("statusz_poll: no sampled allocations (quiet window or "
              "sample_bytes too large)")
        return 0
    print("top frames by live bytes:")
    for frame, inuse_b, inuse_obj, share in top_heap_frames(body):
        print(f"  {share:5.1f}%  {format_bytes(inuse_b):>10}  "
              f"{inuse_obj:>6} objs  {frame}")
    return 0


def render_heartbeats(join: dict) -> str:
    """`hb w0:3ms w1:151ms` from the join's per-worker heartbeat ages."""
    beats = join.get("heartbeats") or []
    if not beats:
        return ""
    parts = [
        f"w{b.get('worker', '?')}:{b.get('age_ms', 0.0):.0f}ms"
        for b in beats
    ]
    return "hb " + " ".join(parts)


def render_clusterz(clusterz: dict) -> str:
    """One segment summarizing the live distributed coordinator."""
    if not clusterz or not clusterz.get("active"):
        return ""
    coord = clusterz.get("coordinator") or {}
    workers = coord.get("workers") or []
    depths = ",".join(str(w.get("queue_depth", 0)) for w in workers)
    dead = sum(1 for w in workers if w.get("state") == "dead")
    segment = (
        f"cluster {coord.get('done', 0)}/{coord.get('num_shards', 0)} shards"
        f"  q=[{depths}]  requeued {coord.get('requeued', 0)}"
    )
    if coord.get("fallback", 0):
        segment += f"  fallback {coord['fallback']}"
    if dead:
        segment += f"  dead {dead}"
    return segment


def render_line(status: dict, clusterz: dict = None) -> str:
    join = status.get("join") or {}
    total = join.get("total_pairs", 0)
    done = join.get("completed_pairs", 0)
    pct = 100.0 * done / total if total else 0.0
    rate = join.get("pairs_per_second", 0.0)
    eta = join.get("eta_seconds", -1.0)
    eta_text = f"eta {eta:.1f}s" if eta >= 0 else "eta ?"
    state = "run" if join.get("active") else "idle"
    rss_mb = status.get("rss_bytes", 0) / (1024.0 * 1024.0)
    line = (
        f"[{state}] {done}/{total} pairs  {pct:.1f}%  {rate:.1f} pairs/s  "
        f"{eta_text}  workers {join.get('workers', 0)}  rss {rss_mb:.0f} MB"
    )
    for segment in (render_heartbeats(join), render_clusterz(clusterz or {})):
        if segment:
            line += "  " + segment
    return line


def self_test() -> int:
    status = {
        "rss_bytes": 88 * 1024 * 1024,
        "join": {
            "active": True,
            "total_pairs": 20000,
            "completed_pairs": 1234,
            "pairs_per_second": 831.0,
            "eta_seconds": 22.6,
            "workers": 8,
        },
    }
    line = render_line(status)
    assert "1234/20000 pairs" in line, line
    assert "6.2%" in line, line
    assert "eta 22.6s" in line, line
    assert "workers 8" in line, line
    assert "rss 88 MB" in line, line
    assert line.startswith("[run]"), line

    idle = render_line({"join": {"active": False, "total_pairs": 0}})
    assert idle.startswith("[idle]"), idle
    assert "eta ?" in idle, idle

    # A status document with no join section (harness before its first
    # join) must render, not crash.
    bare = render_line({"rss_bytes": 0})
    assert "0/0 pairs" in bare, bare

    # Heartbeat ages render per worker, in order.
    with_beats = render_line({
        "join": {
            "active": True,
            "total_pairs": 10,
            "heartbeats": [
                {"worker": 0, "age_ms": 3.2, "q": 1, "g": 2},
                {"worker": 2, "age_ms": 151.0, "q": 4, "g": 0},
            ],
        },
    })
    assert "hb w0:3ms w2:151ms" in with_beats, with_beats

    # /clusterz summary: queue depths, requeues, dead workers, fallback.
    clusterz = {
        "active": True,
        "coordinator": {
            "num_shards": 12,
            "done": 5,
            "requeued": 1,
            "fallback": 2,
            "workers": [
                {"worker": 0, "queue_depth": 2, "state": "alive"},
                {"worker": 1, "queue_depth": 0, "state": "dead"},
                {"worker": 2, "queue_depth": 3, "state": "alive"},
            ],
        },
    }
    with_cluster = render_line({"join": {"active": True}}, clusterz)
    assert "cluster 5/12 shards" in with_cluster, with_cluster
    assert "q=[2,0,3]" in with_cluster, with_cluster
    assert "requeued 1" in with_cluster, with_cluster
    assert "fallback 2" in with_cluster, with_cluster
    assert "dead 1" in with_cluster, with_cluster

    # No /clusterz (404 or single-process build) and inactive coordinators
    # add nothing to the line.
    assert render_clusterz(None) == ""
    assert render_clusterz({"active": False, "coordinator": None}) == ""
    assert "cluster" not in render_line({"join": {}}, None)

    # Folded-stack parsing for --profile: self time goes to the leaf
    # frame, malformed/comment/blank lines are skipped, ties break by name.
    folded = (
        "# comment\n"
        "\n"
        "coordinator;main;Join;Verify 30\n"
        "coordinator;main;Join;Prune 55\n"
        "coordinator;t1;Join;Verify 10\n"
        "not a folded line\n"
        "coordinator;t1;Join;Expand 5\n"
    )
    counts, total = parse_folded_leaves(folded)
    assert total == 100, (counts, total)
    assert counts == {"Verify": 40, "Prune": 55, "Expand": 5}, counts
    ranked = top_frames(folded, n=2)
    assert ranked == [("Prune", 55, 55.0), ("Verify", 40, 40.0)], ranked
    tie = top_frames("a;B 5\na;A 5\n")
    assert [frame for frame, _, _ in tie] == ["A", "B"], tie
    empty_counts, empty_total = parse_folded_leaves("# nothing\n\n")
    assert empty_counts == {} and empty_total == 0

    # Heap folded parsing for --heap: four counters aggregate onto the
    # leaf frame; malformed lines are skipped; negative in-use deltas
    # (possible in drained remote sections) sum through.
    heap_folded = (
        "# comment\n"
        "coordinator;main;Join;BuildIndex 4096 2 8192 4\n"
        "coordinator;t1;Join;BuildIndex 1024 1 1024 1\n"
        "coordinator;main;Join;Verify 512 1 2048 3\n"
        "worker-1;serve;Verify -256 -1 1024 2\n"
        "not heap folded\n"
        "also;not;heap 12\n"
    )
    heap_counts, heap_totals = parse_heap_folded_leaves(heap_folded)
    assert heap_totals == [5376, 3, 12288, 10], heap_totals
    assert heap_counts["BuildIndex"] == [5120, 3, 9216, 5], heap_counts
    assert heap_counts["Verify"] == [256, 0, 3072, 5], heap_counts
    heap_ranked = top_heap_frames(heap_folded, n=1)
    assert heap_ranked == [("BuildIndex", 5120, 3,
                            100.0 * 5120 / 5376)], heap_ranked
    heap_tie = top_heap_frames("a;B 5 1 5 1\na;A 5 1 5 1\n")
    assert [f for f, *_ in heap_tie] == ["A", "B"], heap_tie
    empty_heap = parse_heap_folded_leaves("# nothing\n\n")
    assert empty_heap == ({}, [0, 0, 0, 0]), empty_heap
    # Zero-total in-use renders 0% shares rather than dividing by zero.
    freed = top_heap_frames("a;X 0 0 64 1\n")
    assert freed == [("X", 0, 0, 0.0)], freed

    assert format_bytes(512) == "512 B", format_bytes(512)
    assert format_bytes(5376) == "5.2 KB", format_bytes(5376)
    assert format_bytes(3 * 1024 * 1024) == "3.0 MB"
    assert format_bytes(-2048) == "-2.0 KB", format_bytes(-2048)
    assert format_bytes(5 * 1024 ** 3) == "5.0 GB"

    print("statusz_poll.py self-test: OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--watch", action="store_true",
                        help="poll until interrupted, updating one line")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between polls with --watch")
    parser.add_argument("--profile", type=float, metavar="SECONDS",
                        help="trigger a /profilez capture of this many "
                             "seconds instead of polling /statusz")
    parser.add_argument("--hz", type=int, default=99,
                        help="sampling frequency for --profile")
    parser.add_argument("--profile_out", default="statusz_profile.folded",
                        help="where --profile saves the folded stacks")
    parser.add_argument("--heap", type=float, metavar="SECONDS",
                        help="trigger a /heapz capture of this many "
                             "seconds instead of polling /statusz")
    parser.add_argument("--sample_bytes", type=int, default=512 * 1024,
                        help="heap sampling interval for --heap "
                             "(bytes per sample, default 512 KiB)")
    parser.add_argument("--heap_out", default="statusz_heap.folded",
                        help="where --heap saves the folded stacks")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.profile is not None:
        return run_profile(args.host, args.port, args.profile, args.hz,
                           args.profile_out)
    if args.heap is not None:
        return run_heap(args.host, args.port, args.heap, args.sample_bytes,
                        args.heap_out)

    try:
        while True:
            try:
                status = fetch_status(args.host, args.port)
            except (urllib.error.URLError, OSError, json.JSONDecodeError,
                    ValueError) as error:
                print(f"statusz_poll: cannot scrape "
                      f"http://{args.host}:{args.port}/statusz: {error}",
                      file=sys.stderr)
                return 2
            line = render_line(status, fetch_clusterz(args.host, args.port))
            if args.watch:
                print("\r\x1b[K" + line, end="", flush=True)
                time.sleep(args.interval)
            else:
                print(line)
                return 0
    except KeyboardInterrupt:
        print()
        return 0


if __name__ == "__main__":
    sys.exit(main())
