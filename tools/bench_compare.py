#!/usr/bin/env python3
"""Compare two BenchResult run records (util/run_record.h, --json_out=).

Matches samples across the two records by (harness, sample name) — the
sample name is a pure function of the measured join configuration — and
reports per-sample wall-time and CPU-time deltas of the trial medians
(CPU rows carry a " [cpu]" suffix), plus one whole-process peak-RSS
delta row. Deltas are noise-aware: a change only counts as a
regression/improvement when it exceeds both --min_delta_pct and
--noise_sigmas combined trial standard deviations, so a jittery 2%
wobble on a noisy sample is not a finding while a clean 2% shift on a
tight sample can be. Peak RSS is a single point per record (no trials),
so its noise term is zero and only --min_delta_pct gates it.

When both records embed a `simj_profile_v1` profile (--profile_out=, see
util/profiler.h), the comparison also names the top-N symbols whose
self-time share regressed between the two profiles — warn-only triage
notes pointing at *which code* got hotter, alongside the sample deltas
saying *how much* slower. When both embed a `simj_heap_v1` record
(--heap_out=, see util/heap_profiler.h) it likewise names the top-N
allocation sites (leaf frames) whose live bytes grew beyond the sampled
profile's own statistical noise — warn-only, pointing at *which code*
holds more memory when peak RSS moves.

Exit status:
  0  no regression beyond --fail_above_pct (or no --fail_above_pct given:
     report-only mode always exits 0 unless inputs are malformed)
  1  at least one regression beyond --fail_above_pct
  2  malformed input (unreadable file, schema mismatch)

Usage:
  tools/bench_compare.py BASELINE.json CURRENT.json
      [--fail_above_pct PCT] [--min_delta_pct PCT] [--noise_sigmas N]
  tools/bench_compare.py --schema-check FILE [FILE...]
  tools/bench_compare.py --self-test

The schema is versioned (schema_version); this tool understands version 1
and refuses other versions rather than misreading them.
"""

import argparse
import json
import math
import os
import sys

SUPPORTED_SCHEMA_VERSIONS = (1,)

# Fields every version-1 record must carry, with their JSON types.
V1_REQUIRED = {
    "schema_version": int,
    "harness": str,
    "git": dict,
    "build": dict,
    "hardware": dict,
    "params": dict,
    "samples": list,
    "wall_seconds_total": (int, float),
    "peak_rss_bytes": int,
    "metrics": dict,
}

V1_STATS_REQUIRED = {
    "trials": int,
    "min": (int, float),
    "median": (int, float),
    "mean": (int, float),
    "stddev": (int, float),
    "max": (int, float),
}


class SchemaError(Exception):
    pass


def validate_record(record, origin="<record>"):
    """Raises SchemaError unless `record` is a well-formed v1 BenchResult."""
    if not isinstance(record, dict):
        raise SchemaError(f"{origin}: top level must be a JSON object")
    for field, kind in V1_REQUIRED.items():
        if field not in record:
            raise SchemaError(f"{origin}: missing field '{field}'")
        if not isinstance(record[field], kind):
            raise SchemaError(
                f"{origin}: field '{field}' has type "
                f"{type(record[field]).__name__}"
            )
    version = record["schema_version"]
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchemaError(
            f"{origin}: schema_version {version} not supported "
            f"(supported: {list(SUPPORTED_SCHEMA_VERSIONS)})"
        )
    for i, sample in enumerate(record["samples"]):
        where = f"{origin}: samples[{i}]"
        if not isinstance(sample, dict) or "name" not in sample:
            raise SchemaError(f"{where}: must be an object with a 'name'")
        for series in ("wall_seconds", "cpu_seconds"):
            stats = sample.get(series)
            if not isinstance(stats, dict):
                raise SchemaError(f"{where}: missing '{series}' stats")
            for field, kind in V1_STATS_REQUIRED.items():
                if not isinstance(stats.get(field), kind):
                    raise SchemaError(
                        f"{where}: {series}.{field} missing or mistyped"
                    )
        if not isinstance(sample.get("values", {}), dict):
            raise SchemaError(f"{where}: 'values' must be an object")
        # Optional within v1: harnesses mark configurations they declined
        # to measure (e.g. a 4-thread scaling row on a 2-core host) with
        # "skipped": true. Absence means false — no schema bump.
        if not isinstance(sample.get("skipped", False), bool):
            raise SchemaError(f"{where}: 'skipped' must be a boolean")
    # Optional within v1: profiled runs (--profile_out=) embed the raw
    # simj_profile_v1 object under "profile". Absence means unprofiled —
    # no schema bump. Deep validation of the profile body belongs to the
    # profiler's own schema (util/profiler.h, ci.sh smoke leg); here we
    # only insist it is an object so compare_profiles can sniff it.
    if "profile" in record and not isinstance(record["profile"], dict):
        raise SchemaError(f"{origin}: 'profile' must be an object")
    # Optional within v1: heap-profiled runs (--heap_out=) embed the raw
    # simj_heap_v1 object under "heap". Same contract as "profile".
    if "heap" in record and not isinstance(record["heap"], dict):
        raise SchemaError(f"{origin}: 'heap' must be an object")
    return record


def load_record(path):
    try:
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SchemaError(f"{path}: {error}") from error
    return validate_record(record, origin=path)


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


# Distributed-scheduler counters compared across the two records' embedded
# metrics snapshots. A jump in steals/requeues/restarts between runs of
# the same bench often explains a wall-time delta (fault injection turned
# on, a flakier host) — surfaced as warn-only notes, never an exit status:
# scheduling churn is workload-dependent, not a regression by itself.
SCHEDULER_COUNTERS = (
    "simj_dist_steals_total",
    "simj_dist_shards_requeued_total",
    "simj_dist_worker_restarts_total",
)


def compare_scheduler_counters(baseline, current):
    """Warn-only notes for distributed-scheduler counter changes."""
    base_counters = baseline.get("metrics", {}).get("counters", {})
    cur_counters = current.get("metrics", {}).get("counters", {})
    notes = []
    for name in SCHEDULER_COUNTERS:
        if name not in base_counters and name not in cur_counters:
            continue  # single-process bench: no dist counters at all
        base_value = base_counters.get(name, 0)
        cur_value = cur_counters.get(name, 0)
        if base_value == cur_value:
            continue
        notes.append(
            f"scheduler counter {name}: {base_value} -> {cur_value} "
            f"({cur_value - base_value:+d}, warn-only)"
        )
    return notes


class Delta:
    """One matched measurement's median change, classified against noise.

    `unit` selects formatting only ("s" for seconds, "bytes" for RSS);
    the classification math is identical for every unit.
    """

    def __init__(self, name, base_stats, cur_stats, min_delta_pct,
                 noise_sigmas, unit="s"):
        self.name = name
        self.unit = unit
        self.base_median = base_stats["median"]
        self.cur_median = cur_stats["median"]
        if self.base_median > 0:
            self.delta_pct = (
                (self.cur_median - self.base_median) / self.base_median * 100.0
            )
            combined_stddev = math.hypot(
                base_stats["stddev"], cur_stats["stddev"]
            )
            self.noise_pct = combined_stddev / self.base_median * 100.0
        else:
            self.delta_pct = 0.0
            self.noise_pct = 0.0
        self.threshold_pct = max(min_delta_pct, noise_sigmas * self.noise_pct)
        if self.delta_pct > self.threshold_pct:
            self.verdict = "REGRESSION"
        elif self.delta_pct < -self.threshold_pct:
            self.verdict = "IMPROVEMENT"
        else:
            self.verdict = "ok"

    def _format_value(self, value):
        if self.unit == "bytes":
            return f"{value / 1048576.0:.1f} MiB"
        return f"{value:.6f}s"

    def __str__(self):
        return (
            f"{self.verdict:>11}  {self.name}: "
            f"{self._format_value(self.base_median)} -> "
            f"{self._format_value(self.cur_median)} "
            f"({self.delta_pct:+.1f}%, noise ±{self.noise_pct:.1f}%, "
            f"threshold {self.threshold_pct:.1f}%)"
        )


def profile_self_shares(profile):
    """Per-symbol self-time sample counts and the total across sections.

    A stack's samples are attributed entirely to its leaf frame — the
    function that was actually on-CPU — matching flame-graph self time.
    """
    counts = {}
    total = 0
    for section in profile.get("sections", []):
        for stack in section.get("stacks", []):
            count = stack.get("count", 0)
            frames = stack.get("frames", [])
            if not frames or not isinstance(count, int) or count <= 0:
                continue
            leaf = frames[-1]
            counts[leaf] = counts.get(leaf, 0) + count
            total += count
    return counts, total


def compare_profiles(baseline, current, top_n=5):
    """Warn-only notes naming symbols whose self-time share regressed.

    Requires both records to carry an embedded simj_profile_v1 object
    (--profile_out= wiring in bench_util.h); silent otherwise — most runs
    are unprofiled and that must not look like a finding.
    """
    base_prof = baseline.get("profile")
    cur_prof = current.get("profile")
    if not isinstance(base_prof, dict) or not isinstance(cur_prof, dict):
        return []
    for origin, prof in (("baseline", base_prof), ("current", cur_prof)):
        if prof.get("schema") != "simj_profile_v1":
            return [f"embedded {origin} profile has unknown schema "
                    f"{prof.get('schema')!r}; profile diff skipped"]
    base_counts, base_total = profile_self_shares(base_prof)
    cur_counts, cur_total = profile_self_shares(cur_prof)
    if base_total == 0 or cur_total == 0:
        return ["embedded profile has no samples; profile diff skipped"]
    moves = []
    for symbol in set(base_counts) | set(cur_counts):
        base_share = base_counts.get(symbol, 0) / base_total * 100.0
        cur_share = cur_counts.get(symbol, 0) / cur_total * 100.0
        moves.append((cur_share - base_share, symbol, base_share, cur_share))
    moves.sort(key=lambda m: (-m[0], m[1]))
    notes = []
    for delta_pp, symbol, base_share, cur_share in moves[:top_n]:
        if delta_pp <= 0:
            break  # sorted desc: nothing hotter beyond this point
        notes.append(
            f"profile self-time regressed: {symbol} "
            f"{base_share:.1f}% -> {cur_share:.1f}% ({delta_pp:+.1f}pp, "
            "warn-only)"
        )
    return notes


def heap_inuse_by_leaf(heap):
    """Per-leaf-frame live bytes summed across every section of a
    simj_heap_v1 record. The leaf frame is the function that called the
    allocator, so growth attributes to the allocation site."""
    counts = {}
    for section in heap.get("sections", []):
        for stack in section.get("stacks", []):
            frames = stack.get("frames", [])
            value = stack.get("inuse_bytes", 0)
            if not frames or not isinstance(value, int):
                continue
            leaf = frames[-1]
            counts[leaf] = counts.get(leaf, 0) + value
    return counts


def _mib(n):
    return f"{n / 1048576.0:.1f} MiB"


def compare_heaps(baseline, current, top_n=5, noise_sigmas=3.0):
    """Warn-only notes naming leaf frames whose live bytes grew.

    Requires both records to carry an embedded simj_heap_v1 object
    (--heap_out= wiring in bench_util.h); silent otherwise. Gating is
    stddev-aware for the *sampling* noise inherent to a sampled heap
    profile: a leaf holding B bytes was estimated from roughly
    B / sample_bytes samples, so its standard error is about
    sqrt(B * sample_bytes). A growth only becomes a note when it exceeds
    `noise_sigmas` combined standard errors — a one-sample wobble on a
    coarsely-sampled profile is not a finding.
    """
    base_heap = baseline.get("heap")
    cur_heap = current.get("heap")
    if not isinstance(base_heap, dict) or not isinstance(cur_heap, dict):
        return []
    for origin, heap in (("baseline", base_heap), ("current", cur_heap)):
        if heap.get("schema") != "simj_heap_v1":
            return [f"embedded {origin} heap record has unknown schema "
                    f"{heap.get('schema')!r}; heap diff skipped"]
    base_sb = max(int(base_heap.get("sample_bytes", 0)), 1)
    cur_sb = max(int(cur_heap.get("sample_bytes", 0)), 1)
    base_counts = heap_inuse_by_leaf(base_heap)
    cur_counts = heap_inuse_by_leaf(cur_heap)
    moves = []
    for leaf in set(base_counts) | set(cur_counts):
        base_bytes = base_counts.get(leaf, 0)
        cur_bytes = cur_counts.get(leaf, 0)
        delta = cur_bytes - base_bytes
        sigma = math.sqrt(max(base_bytes, 0) * base_sb
                          + max(cur_bytes, 0) * cur_sb)
        if delta > noise_sigmas * sigma:
            moves.append((delta, leaf, base_bytes, cur_bytes, sigma))
    moves.sort(key=lambda m: (-m[0], m[1]))
    notes = []
    for delta, leaf, base_bytes, cur_bytes, sigma in moves[:top_n]:
        notes.append(
            f"heap inuse grew: {leaf} {_mib(base_bytes)} -> "
            f"{_mib(cur_bytes)} ({_mib(delta)} more, beyond "
            f"{noise_sigmas:g} sigma ~ {_mib(noise_sigmas * sigma)} "
            "sampling noise, warn-only)"
        )
    return notes


def compare_records(baseline, current, min_delta_pct=2.0, noise_sigmas=3.0,
                    profile_top=5):
    """Returns (deltas, missing_names, added_names, notes)."""
    notes = []
    if baseline["harness"] != current["harness"]:
        notes.append(
            "harness mismatch: baseline "
            f"'{baseline['harness']}' vs current '{current['harness']}' — "
            "samples are matched by name anyway, interpret with care"
        )
    if baseline["params"] != current["params"]:
        notes.append(
            f"params differ: baseline {baseline['params']} vs "
            f"current {current['params']}"
        )
    skipped = sorted(
        {s["name"] for s in baseline["samples"] if s.get("skipped")}
        | {s["name"] for s in current["samples"] if s.get("skipped")}
    )
    for name in skipped:
        notes.append(f"sample skipped (not compared): {name}")
    base_samples = {s["name"]: s for s in baseline["samples"]
                    if not s.get("skipped")}
    cur_samples = {s["name"]: s for s in current["samples"]
                   if not s.get("skipped")}
    deltas = []
    for name in base_samples:
        if name not in cur_samples:
            continue
        deltas.append(
            Delta(name, base_samples[name]["wall_seconds"],
                  cur_samples[name]["wall_seconds"], min_delta_pct,
                  noise_sigmas))
        deltas.append(
            Delta(f"{name} [cpu]", base_samples[name]["cpu_seconds"],
                  cur_samples[name]["cpu_seconds"], min_delta_pct,
                  noise_sigmas))
    # Peak RSS is one point per record, not a trial series: synthesize a
    # zero-stddev Stats so the same classifier applies with noise = 0 and
    # only --min_delta_pct gating the verdict.
    base_rss = baseline["peak_rss_bytes"]
    cur_rss = current["peak_rss_bytes"]
    if base_rss > 0:
        deltas.append(
            Delta("peak_rss_bytes (whole process)",
                  {"median": float(base_rss), "stddev": 0.0},
                  {"median": float(cur_rss), "stddev": 0.0},
                  min_delta_pct, noise_sigmas, unit="bytes"))
    deltas.sort(key=lambda d: -d.delta_pct)
    missing = sorted(set(base_samples) - set(cur_samples) - set(skipped))
    added = sorted(set(cur_samples) - set(base_samples) - set(skipped))
    notes.extend(compare_scheduler_counters(baseline, current))
    notes.extend(compare_profiles(baseline, current, profile_top))
    notes.extend(compare_heaps(baseline, current, profile_top, noise_sigmas))
    return deltas, missing, added, notes


def run_compare(args):
    try:
        baseline = load_record(args.baseline)
        current = load_record(args.current)
    except SchemaError as error:
        print(f"bench_compare: {error}", file=sys.stderr)
        return 2
    deltas, missing, added, notes = compare_records(
        baseline, current, args.min_delta_pct, args.noise_sigmas,
        args.profile_top
    )
    print(
        f"bench_compare: {baseline['harness']} "
        f"(baseline {baseline.get('git', {}).get('sha', '')[:12] or '?'} vs "
        f"current {current.get('git', {}).get('sha', '')[:12] or '?'})"
    )
    for note in notes:
        print(f"  note: {note}")
    for name in missing:
        print(f"  note: sample only in baseline: {name}")
    for name in added:
        print(f"  note: sample only in current: {name}")
    for delta in deltas:
        print(f"  {delta}")
    if not deltas:
        print("  no matching samples")
    regressions = [d for d in deltas if d.verdict == "REGRESSION"]
    if args.fail_above_pct is not None:
        failing = [
            d for d in regressions if d.delta_pct > args.fail_above_pct
        ]
        if failing:
            print(
                f"bench_compare: FAIL — {len(failing)} regression(s) beyond "
                f"--fail_above_pct={args.fail_above_pct}"
            )
            return 1
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) (warn-only)")
    else:
        print("bench_compare: OK")
    return 0


def run_schema_check(paths):
    status = 0
    for path in paths:
        try:
            record = load_record(path)
        except SchemaError as error:
            print(f"bench_compare: {error}", file=sys.stderr)
            status = 2
            continue
        print(
            f"{path}: OK (schema v{record['schema_version']}, "
            f"harness {record['harness']}, {len(record['samples'])} samples)"
        )
    return status


# ---------------------------------------------------------------------------
# Self test
# ---------------------------------------------------------------------------


def make_record(medians, stddev=0.001, harness="bench_selftest"):
    """A synthetic v1 record with one sample per (name -> median wall s)."""
    samples = []
    for name, median in medians.items():
        stats = {
            "trials": 3,
            "min": median - stddev,
            "median": median,
            "mean": median,
            "stddev": stddev,
            "max": median + stddev,
        }
        samples.append(
            {
                "name": name,
                "wall_seconds": dict(stats),
                "cpu_seconds": dict(stats),
                "values": {"results": 42},
            }
        )
    return {
        "schema_version": 1,
        "harness": harness,
        "unix_time_seconds": 0.0,
        "git": {"sha": "f" * 40, "dirty": False},
        "build": {
            "compiler": "testc 1.0",
            "build_type": "Release",
            "sanitizers": "",
            "debug_checks": False,
        },
        "hardware": {"hardware_concurrency": 8, "page_size_bytes": 4096},
        "params": {"threads": "1", "repeat": "3"},
        "samples": samples,
        "wall_seconds_total": sum(medians.values()) * 4,
        "peak_rss_bytes": 100 << 20,
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    }


def self_test(repo):
    failures = []

    def check(condition, what):
        if not condition:
            failures.append(what)

    base = make_record({"eff tau=2": 1.0, "eff tau=3": 2.0})
    validate_record(base, "synthetic")

    # Identical runs: no regression, no improvement.
    deltas, missing, added, _ = compare_records(base, make_record(
        {"eff tau=2": 1.0, "eff tau=3": 2.0}))
    check(all(d.verdict == "ok" for d in deltas), "identical runs flagged")
    check(not missing and not added, "identical runs mismatched samples")

    # A synthetic 20% slowdown on one sample must be detected — on both
    # the wall row and its companion [cpu] row (make_record mirrors the
    # stats into cpu_seconds).
    slow = make_record({"eff tau=2": 1.2, "eff tau=3": 2.0})
    deltas, _, _, _ = compare_records(base, slow)
    by_name = {d.name: d for d in deltas}
    check(by_name["eff tau=2"].verdict == "REGRESSION",
          "20% slowdown not detected")
    check(by_name["eff tau=2 [cpu]"].verdict == "REGRESSION",
          "20% CPU slowdown not detected")
    check(by_name["eff tau=3"].verdict == "ok",
          "unchanged sample misflagged")

    # A 20% speedup is an improvement, not a regression.
    fast = make_record({"eff tau=2": 0.8, "eff tau=3": 2.0})
    deltas, _, _, _ = compare_records(base, fast)
    by_name = {d.name: d for d in deltas}
    check(by_name["eff tau=2"].verdict == "IMPROVEMENT",
          "20% speedup not reported as improvement")

    # A 2% wobble on a noisy sample (stddev 5% of median) stays quiet ...
    noisy_base = make_record({"eff noisy": 1.0}, stddev=0.05)
    noisy_cur = make_record({"eff noisy": 1.02}, stddev=0.05)
    deltas, _, _, _ = compare_records(noisy_base, noisy_cur)
    check({d.name: d for d in deltas}["eff noisy"].verdict == "ok",
          "noisy 2% wobble misflagged")
    # ... but the same 2% shift on a tight sample (stddev 0.1%) is real —
    # noise awareness must scale the threshold, not blanket-suppress.
    tight_base = make_record({"eff tight": 1.0}, stddev=0.001)
    tight_cur = make_record({"eff tight": 1.05}, stddev=0.001)
    deltas, _, _, _ = compare_records(tight_base, tight_cur)
    check({d.name: d for d in deltas}["eff tight"].verdict == "REGRESSION",
          "tight 5% shift missed")

    # Added/removed samples are reported, not silently dropped.
    deltas, missing, added, _ = compare_records(
        base, make_record({"eff tau=2": 1.0, "eff tau=4": 1.0}))
    check(missing == ["eff tau=3"], "missing sample not reported")
    check(added == ["eff tau=4"], "added sample not reported")

    # Schema validation: rejects wrong versions and missing fields.
    bad_version = make_record({"x": 1.0})
    bad_version["schema_version"] = 99
    try:
        validate_record(bad_version, "bad-version")
        check(False, "schema_version 99 accepted")
    except SchemaError:
        pass
    bad_fields = make_record({"x": 1.0})
    del bad_fields["peak_rss_bytes"]
    try:
        validate_record(bad_fields, "bad-fields")
        check(False, "missing peak_rss_bytes accepted")
    except SchemaError:
        pass

    # "skipped": true is valid v1 (a <4-core host skips scaling rows) and
    # excludes the sample from comparison on either side.
    with_skip = make_record({"scaling t=1": 1.0, "scaling t=4": 0.0})
    for sample in with_skip["samples"]:
        if sample["name"] == "scaling t=4":
            sample["skipped"] = True
    validate_record(with_skip, "with-skip")
    deltas, missing, added, notes = compare_records(
        with_skip, make_record({"scaling t=1": 1.0, "scaling t=4": 0.9}))
    check(not any("scaling t=4" in d.name for d in deltas),
          "skipped sample entered delta comparison")
    check(not missing and not added,
          "skipped sample misreported as missing/added")
    check(any("skipped" in note for note in notes),
          "skipped sample not surfaced as a note")
    bad_skip = make_record({"x": 1.0})
    bad_skip["samples"][0]["skipped"] = "yes"
    try:
        validate_record(bad_skip, "bad-skip")
        check(False, "non-boolean 'skipped' accepted")
    except SchemaError:
        pass

    # Scheduler-counter comparison: changes surface as warn-only notes and
    # never flip a verdict or the exit path.
    dist_base = make_record({"shard w=4": 1.0})
    dist_base["metrics"]["counters"] = {
        "simj_dist_steals_total": 3,
        "simj_dist_shards_requeued_total": 0,
        "simj_dist_worker_restarts_total": 0,
    }
    dist_cur = make_record({"shard w=4": 1.0})
    dist_cur["metrics"]["counters"] = {
        "simj_dist_steals_total": 9,
        "simj_dist_shards_requeued_total": 4,
        "simj_dist_worker_restarts_total": 2,
    }
    deltas, _, _, notes = compare_records(dist_base, dist_cur)
    check(all(d.verdict == "ok" for d in deltas),
          "counter churn flipped a wall-time verdict")
    check(any("simj_dist_steals_total: 3 -> 9 (+6" in n for n in notes),
          "steal counter change not noted")
    check(any("simj_dist_shards_requeued_total: 0 -> 4" in n for n in notes),
          "requeue counter change not noted")
    check(any("simj_dist_worker_restarts_total: 0 -> 2" in n for n in notes),
          "restart counter change not noted")
    # A counter present on one side only compares against 0; identical
    # values and single-process records (no dist counters) stay silent.
    one_sided = make_record({"shard w=4": 1.0})
    one_sided["metrics"]["counters"] = {"simj_dist_steals_total": 5}
    notes = compare_scheduler_counters(make_record({"shard w=4": 1.0}),
                                       one_sided)
    check(notes == ["scheduler counter simj_dist_steals_total: 0 -> 5 "
                    "(+5, warn-only)"], f"one-sided counter notes: {notes}")
    check(compare_scheduler_counters(dist_base, dist_base) == [],
          "identical counters produced notes")
    check(compare_scheduler_counters(make_record({"a": 1.0}),
                                     make_record({"a": 1.0})) == [],
          "single-process records produced scheduler notes")

    # Peak RSS compares through the same classifier: a 30% bloat is a
    # regression row, a 1% wobble (under --min_delta_pct) stays quiet,
    # and a zero-RSS baseline produces no row rather than dividing by it.
    rss_base = make_record({"eff tau=2": 1.0})
    rss_cur = make_record({"eff tau=2": 1.0})
    rss_cur["peak_rss_bytes"] = int(rss_base["peak_rss_bytes"] * 1.30)
    deltas, _, _, _ = compare_records(rss_base, rss_cur)
    rss_rows = [d for d in deltas if d.unit == "bytes"]
    check(len(rss_rows) == 1 and rss_rows[0].verdict == "REGRESSION",
          "30% RSS bloat not detected")
    check("MiB" in str(rss_rows[0]), "RSS row not formatted in MiB")
    rss_cur["peak_rss_bytes"] = int(rss_base["peak_rss_bytes"] * 1.01)
    deltas, _, _, _ = compare_records(rss_base, rss_cur)
    rss_rows = [d for d in deltas if d.unit == "bytes"]
    check(rss_rows[0].verdict == "ok", "1% RSS wobble misflagged")
    rss_zero = make_record({"eff tau=2": 1.0})
    rss_zero["peak_rss_bytes"] = 0
    deltas, _, _, _ = compare_records(rss_zero, rss_cur)
    check(not any(d.unit == "bytes" for d in deltas),
          "zero-RSS baseline produced an RSS row")

    # A CPU-only regression (wall flat, e.g. more threads burning the same
    # wall time) is caught by the [cpu] row.
    cpu_base = make_record({"eff tau=2": 1.0})
    cpu_cur = make_record({"eff tau=2": 1.0})
    for sample in cpu_cur["samples"]:
        for field in ("min", "median", "mean", "max"):
            sample["cpu_seconds"][field] *= 1.25
    deltas, _, _, _ = compare_records(cpu_base, cpu_cur)
    by_name = {d.name: d for d in deltas}
    check(by_name["eff tau=2"].verdict == "ok",
          "flat wall time misflagged alongside CPU regression")
    check(by_name["eff tau=2 [cpu]"].verdict == "REGRESSION",
          "CPU-only regression missed")

    # Embedded-profile diff: names the symbols whose self-time share grew.
    def make_profile(symbol_counts):
        total = sum(symbol_counts.values())
        return {
            "schema": "simj_profile_v1",
            "hz": 99,
            "period_us": 10101.01,
            "duration_seconds": 1.0,
            "samples": total,
            "dropped": 0,
            "truncated": 0,
            "sections": [{
                "label": "coordinator",
                "samples": total,
                "dropped": 0,
                "truncated": 0,
                "stacks": [
                    {"thread": "main", "count": count,
                     "frames": ["Run", symbol]}
                    for symbol, count in sorted(symbol_counts.items())
                ],
            }],
        }

    prof_base = make_record({"eff tau=2": 1.0})
    prof_base["profile"] = make_profile({"Verify": 30, "Prune": 70})
    prof_cur = make_record({"eff tau=2": 1.0})
    prof_cur["profile"] = make_profile({"Verify": 60, "Prune": 40})
    validate_record(prof_base, "with-profile")
    notes = compare_profiles(prof_base, prof_cur)
    check(len(notes) == 1 and "Verify" in notes[0] and "+30.0pp" in notes[0],
          f"profile self-time regression not named: {notes}")
    check(not any("Prune" in n for n in notes),
          "improved symbol misreported as profile regression")
    # Unprofiled records (the common case) must stay silent, and the diff
    # rides through compare_records as notes.
    check(compare_profiles(make_record({"x": 1.0}),
                           make_record({"x": 1.0})) == [],
          "unprofiled records produced profile notes")
    _, _, _, notes = compare_records(prof_base, prof_cur)
    check(any("profile self-time regressed: Verify" in n for n in notes),
          "profile diff not surfaced through compare_records")
    # --profile_top bounds the list.
    wide_base = make_record({"x": 1.0})
    wide_base["profile"] = make_profile(
        {f"Sym{i}": 10 for i in range(8)} | {"Cold": 920})
    wide_cur = make_record({"x": 1.0})
    wide_cur["profile"] = make_profile(
        {f"Sym{i}": 100 for i in range(8)} | {"Cold": 200})
    check(len(compare_profiles(wide_base, wide_cur, top_n=3)) == 3,
          "--profile_top did not bound the regression list")
    # A mangled embedded profile degrades to a note, never a crash.
    bad_prof = make_record({"x": 1.0})
    bad_prof["profile"] = {"schema": "simj_profile_v99"}
    notes = compare_profiles(bad_prof, prof_cur)
    check(len(notes) == 1 and "unknown schema" in notes[0],
          "unknown profile schema not surfaced")
    not_dict = make_record({"x": 1.0})
    not_dict["profile"] = "folded text"
    try:
        validate_record(not_dict, "bad-profile")
        check(False, "non-object 'profile' accepted")
    except SchemaError:
        pass

    # Embedded-heap diff: names leaf frames whose live bytes grew beyond
    # the sampling noise; shrinks and sub-noise wobbles stay silent.
    def make_heap(leaf_inuse, sample_bytes=4096):
        return {
            "schema": "simj_heap_v1",
            "sample_bytes": sample_bytes,
            "duration_seconds": 1.0,
            "sections": [{
                "label": "coordinator",
                "stacks": [
                    {"thread": "main", "inuse_bytes": inuse,
                     "inuse_objects": max(inuse // 1024, 1),
                     "alloc_bytes": inuse * 2,
                     "alloc_objects": max(inuse // 512, 1),
                     "frames": ["Run", leaf]}
                    for leaf, inuse in sorted(leaf_inuse.items())
                ],
            }],
        }

    heap_base = make_record({"eff tau=2": 1.0})
    heap_base["heap"] = make_heap({"BuildIndex": 4 << 20, "Verify": 1 << 20})
    heap_cur = make_record({"eff tau=2": 1.0})
    heap_cur["heap"] = make_heap({"BuildIndex": 16 << 20, "Verify": 1 << 19})
    validate_record(heap_base, "with-heap")
    notes = compare_heaps(heap_base, heap_cur)
    check(len(notes) == 1 and "BuildIndex" in notes[0]
          and "4.0 MiB -> 16.0 MiB" in notes[0] and "warn-only" in notes[0],
          f"heap inuse growth not named: {notes}")
    check(not any("Verify" in n for n in notes),
          "shrinking leaf misreported as heap growth")
    # A growth smaller than noise_sigmas standard errors of the sampling
    # estimate is gated: 16 KiB growth on a 512 KiB-sampled profile is
    # within one sample's wobble.
    wobble_base = make_record({"x": 1.0})
    wobble_base["heap"] = make_heap({"BuildIndex": 4 << 20},
                                    sample_bytes=512 * 1024)
    wobble_cur = make_record({"x": 1.0})
    wobble_cur["heap"] = make_heap({"BuildIndex": (4 << 20) + (16 << 10)},
                                   sample_bytes=512 * 1024)
    check(compare_heaps(wobble_base, wobble_cur) == [],
          "sub-noise heap wobble misflagged")
    # Unheaped records (the common case) stay silent; the diff rides
    # through compare_records as notes; unknown schemas degrade to a note.
    check(compare_heaps(make_record({"x": 1.0}),
                        make_record({"x": 1.0})) == [],
          "unheaped records produced heap notes")
    _, _, _, notes = compare_records(heap_base, heap_cur)
    check(any("heap inuse grew: BuildIndex" in n for n in notes),
          "heap diff not surfaced through compare_records")
    bad_heap = make_record({"x": 1.0})
    bad_heap["heap"] = {"schema": "simj_heap_v99"}
    notes = compare_heaps(bad_heap, heap_cur)
    check(len(notes) == 1 and "unknown schema" in notes[0],
          "unknown heap schema not surfaced")
    heap_not_dict = make_record({"x": 1.0})
    heap_not_dict["heap"] = "folded text"
    try:
        validate_record(heap_not_dict, "bad-heap")
        check(False, "non-object 'heap' accepted")
    except SchemaError:
        pass
    # A leaf present only in current compares against zero bytes.
    new_leaf_cur = make_record({"x": 1.0})
    new_leaf_cur["heap"] = make_heap({"BuildIndex": 4 << 20,
                                      "Spill": 8 << 20})
    notes = compare_heaps(heap_base, new_leaf_cur)
    check(any("Spill" in n and "0.0 MiB -> 8.0 MiB" in n for n in notes),
          f"new allocation site not reported: {notes}")

    # The checked-in golden record (tests/golden) must satisfy the schema —
    # it is the contract between the C++ writer and this reader.
    golden = os.path.join(repo, "tests", "golden", "bench_result_v1.json")
    if os.path.exists(golden):
        try:
            record = load_record(golden)
            check(record["harness"] == "bench_golden",
                  "golden record harness drifted")
        except SchemaError as error:
            check(False, f"golden record fails schema: {error}")
    else:
        check(False, f"golden record missing: {golden}")

    for failure in failures:
        print(f"self-test: {failure}")
    if not failures:
        print("self-test OK: 47 cases")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--fail_above_pct", type=float, default=None,
                        help="exit 1 when a sample regresses beyond this "
                             "percentage (default: warn-only)")
    parser.add_argument("--min_delta_pct", type=float, default=2.0,
                        help="ignore deltas smaller than this percentage")
    parser.add_argument("--noise_sigmas", type=float, default=3.0,
                        help="ignore deltas within this many combined trial "
                             "standard deviations")
    parser.add_argument("--profile_top", type=int, default=5,
                        help="when both records embed a profile, name at "
                             "most this many regressed self-time symbols")
    parser.add_argument("--schema-check", nargs="+", metavar="FILE",
                        help="validate FILEs against the schema and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the comparator against synthetic runs")
    args = parser.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        sys.exit(self_test(repo))
    if args.schema_check:
        sys.exit(run_schema_check(args.schema_check))
    if not args.baseline or not args.current:
        parser.error("need BASELINE and CURRENT records (or --self-test / "
                     "--schema-check)")
    sys.exit(run_compare(args))


if __name__ == "__main__":
    main()
