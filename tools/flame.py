#!/usr/bin/env python3
"""Render simj CPU and heap profiles as self-contained SVG flamegraphs.

Input is either Brendan-Gregg folded-stack text (one
"section;thread;root;...;leaf count" line per aggregated stack — what
/profilez?format=folded and prof::FoldedText emit) or a `simj_profile_v1`
JSON record (what --profile_out writes and run records embed under
"profile"); the format is sniffed from the first non-space byte. The SVG
is a static icicle layout — frames widen with their inclusive sample
count, nested by call depth, with <title> tooltips carrying exact counts
and percentages — and needs no JavaScript or external assets.

Heap profiles (`simj_heap_v1`, from /heapz and --heap_out) carry four
counters per stack — inuse_bytes inuse_objects alloc_bytes alloc_objects
— instead of one sample count. Select the rendered counter with
--metric; heap folded text has the four counters as trailing columns and
needs --metric too (the default `samples` expects the one-count CPU
shape). Run records are unwrapped through their "heap" or "profile" key
to match the metric. Stacks whose selected counter is <= 0 (possible for
in-use deltas drained mid-capture) are skipped — a flame frame cannot
have negative width.

Modes:
  tools/flame.py profile.json -o flame.svg       # render one profile
  tools/flame.py --metric inuse_bytes heap.json  # heap: live bytes
  tools/flame.py --diff old.json new.json        # hot-path delta report
  tools/flame.py --self-test                     # offline unit checks

--diff compares per-symbol self-time *shares* (fraction of total samples
in which the symbol is the leaf frame), so two captures of different
lengths compare cleanly; it prints the top-N symbols whose share moved,
worst regression first. With a heap --metric it compares shares of that
counter instead. Exit status: 0 on success (including a diff with no
movement), 2 on malformed input.
"""

import argparse
import html
import json
import sys

# Layout constants (pixels). Width is fixed; depth grows the height.
WIDTH = 1200
ROW_HEIGHT = 17
TEXT_PAD = 3
MIN_LABEL_WIDTH = 35  # below this, draw the rect but skip the label
FONT_SIZE = 11

# Warm palette cycled by depth so adjacent rows are distinguishable
# without per-symbol hashing (keeps the SVG byte-stable across runs).
PALETTE = [
    "#e4572e", "#e98a15", "#f2a33c", "#d1495b", "#c75146",
    "#ba5a31", "#e26d5c", "#d68c45", "#f4a259", "#bc4b51",
]


# Heap folded lines carry these four counters, in this column order,
# after the semicolon-joined stack (heapprof::HeapFoldedText's contract).
HEAP_METRICS = ("inuse_bytes", "inuse_objects", "alloc_bytes",
                "alloc_objects")


def metric_unit(metric):
    """Display unit for a --metric value ("samples" for CPU)."""
    if metric.endswith("_bytes"):
        return "bytes"
    if metric.endswith("_objects"):
        return "objects"
    return "samples"


def _is_int(token):
    try:
        int(token)
    except ValueError:
        return False
    return True


def parse_folded(text, metric="samples"):
    """Folded text -> list of (frames_tuple, count).

    The section and thread fields are kept as the two outermost frames so
    one graph shows coordinator vs worker sections side by side. With a
    heap metric each line must end in the four heap counters; the
    requested column is selected and non-positive stacks are dropped.
    """
    column = HEAP_METRICS.index(metric) if metric in HEAP_METRICS else None
    stacks = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split(" ")
        n_counts = 1 if column is None else len(HEAP_METRICS)
        if len(tokens) <= n_counts:
            raise ValueError(f"line {line_number}: no count field")
        if (column is None and len(tokens) > len(HEAP_METRICS)
                and all(_is_int(t) for t in tokens[-len(HEAP_METRICS):])):
            raise ValueError(
                f"line {line_number}: four trailing counters look like "
                f"heap folded text; pass --metric "
                f"{'/'.join(HEAP_METRICS)}")
        frames_part = " ".join(tokens[:-n_counts])
        try:
            counts = [int(t) for t in tokens[-n_counts:]]
        except ValueError as error:
            raise ValueError(f"line {line_number}: bad count in "
                             f"{tokens[-n_counts:]!r}") from error
        count = counts[0] if column is None else counts[column]
        frames = tuple(f for f in frames_part.split(";") if f)
        if not frames:
            raise ValueError(f"line {line_number}: empty stack")
        if column is not None and count <= 0:
            continue
        stacks.append((frames, count))
    return stacks


def parse_profile_json(text):
    """simj_profile_v1 JSON -> list of (frames_tuple, count)."""
    record = json.loads(text)
    if record.get("schema") != "simj_profile_v1":
        raise ValueError(f"not a simj_profile_v1 record "
                         f"(schema={record.get('schema')!r})")
    stacks = []
    for section in record.get("sections", []):
        label = section.get("label", "?")
        for stack in section.get("stacks", []):
            frames = (label, stack.get("thread", "?"),
                      *stack.get("frames", []))
            stacks.append((frames, int(stack.get("count", 0))))
    return stacks


def parse_heap_json(text, metric):
    """simj_heap_v1 JSON -> list of (frames_tuple, value) for `metric`."""
    record = json.loads(text)
    if record.get("schema") != "simj_heap_v1":
        raise ValueError(f"not a simj_heap_v1 record "
                         f"(schema={record.get('schema')!r})")
    if metric not in HEAP_METRICS:
        raise ValueError(f"heap profiles need --metric from "
                         f"{'/'.join(HEAP_METRICS)} (got {metric!r})")
    stacks = []
    for section in record.get("sections", []):
        label = section.get("label", "?")
        for stack in section.get("stacks", []):
            value = int(stack.get(metric, 0))
            if value <= 0:
                continue
            frames = (label, stack.get("thread", "?"),
                      *stack.get("frames", []))
            stacks.append((frames, value))
    return stacks


def load_stacks(text, metric="samples"):
    """Sniffs JSON vs folded text; returns (stacks, resolved_metric).

    The resolved metric differs from the argument only when a bare
    simj_heap_v1 record arrives without an explicit heap metric, in which
    case it defaults to inuse_bytes (live memory is the usual question).
    """
    stripped = text.lstrip()
    if not stripped.startswith("{"):
        return parse_folded(text, metric), metric
    record = json.loads(stripped)
    if "schema" not in record:
        # A run record embeds profiles under "profile" / "heap"; unwrap
        # whichever matches the metric.
        key = "heap" if metric in HEAP_METRICS else "profile"
        if key not in record:
            raise ValueError(f"run record has no {key!r} section "
                             f"(--metric {metric})")
        record = record[key]
    if record.get("schema") == "simj_heap_v1":
        if metric == "samples":
            metric = "inuse_bytes"
        return parse_heap_json(json.dumps(record), metric), metric
    if metric in HEAP_METRICS:
        raise ValueError(f"--metric {metric} needs a simj_heap_v1 record "
                         f"(schema={record.get('schema')!r})")
    return parse_profile_json(json.dumps(record)), metric


class Node:
    """One frame in the merged call tree."""

    __slots__ = ("name", "total", "self_count", "children")

    def __init__(self, name):
        self.name = name
        self.total = 0       # inclusive samples
        self.self_count = 0  # samples with this frame as the leaf
        self.children = {}   # name -> Node, insertion-ordered


def build_tree(stacks):
    root = Node("all")
    for frames, count in stacks:
        root.total += count
        node = root
        for frame in frames:
            child = node.children.get(frame)
            if child is None:
                child = node.children[frame] = Node(frame)
            child.total += count
            node = child
        node.self_count += count
    return root


def tree_depth(node):
    if not node.children:
        return 1
    return 1 + max(tree_depth(child) for child in node.children.values())


def render_svg(stacks, title="simj CPU profile", unit="samples"):
    """Static icicle SVG: root row on top, leaves at the bottom."""
    root = build_tree(stacks)
    if root.total <= 0:
        raise ValueError(f"profile contains no {unit}")
    depth = tree_depth(root)
    height = depth * ROW_HEIGHT + 40
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{height}" font-family="monospace" '
        f'font-size="{FONT_SIZE}">',
        f'<rect width="{WIDTH}" height="{height}" fill="#fdf6ec"/>',
        f'<text x="{WIDTH / 2:.0f}" y="16" text-anchor="middle" '
        f'font-size="14">{html.escape(title)} '
        f'({root.total} {unit})</text>',
    ]

    def emit(node, x, row, width):
        y = 28 + row * ROW_HEIGHT
        color = PALETTE[row % len(PALETTE)]
        pct = 100.0 * node.total / root.total
        tooltip = f"{node.name}: {node.total} {unit} ({pct:.2f}%)"
        if node.self_count:
            tooltip += f", {node.self_count} self"
        parts.append(
            f'<g><title>{html.escape(tooltip)}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{max(width, 0.5):.2f}" '
            f'height="{ROW_HEIGHT - 1}" fill="{color}" stroke="#fdf6ec" '
            f'stroke-width="0.5"/>')
        if width >= MIN_LABEL_WIDTH:
            label = html.escape(_fit_label(node.name, width))
            parts.append(
                f'<text x="{x + TEXT_PAD:.2f}" y="{y + ROW_HEIGHT - 5}" '
                f'fill="#241c15">{label}</text>')
        parts.append("</g>")
        child_x = x
        for child in node.children.values():
            child_width = width * child.total / node.total
            emit(child, child_x, row + 1, child_width)
            child_x += child_width

    emit(root, 0.0, 0, float(WIDTH))
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _fit_label(name, width):
    max_chars = max(int((width - 2 * TEXT_PAD) / (FONT_SIZE * 0.62)), 1)
    if len(name) <= max_chars:
        return name
    if max_chars <= 2:
        return name[:max_chars]
    return name[: max_chars - 2] + ".."


def self_shares(stacks):
    """symbol -> fraction of all samples where it is the leaf frame."""
    totals = {}
    grand_total = 0
    for frames, count in stacks:
        grand_total += count
        leaf = frames[-1]
        totals[leaf] = totals.get(leaf, 0) + count
    if grand_total == 0:
        return {}
    return {name: count / grand_total for name, count in totals.items()}


def diff_report(old_stacks, new_stacks, top_n=10):
    """Top-N symbols by absolute self-share movement, regressions first.

    Returns a list of (symbol, old_share, new_share, delta) with delta =
    new - old; positive delta means the symbol burns a larger share now.
    """
    old = self_shares(old_stacks)
    new = self_shares(new_stacks)
    rows = []
    for symbol in set(old) | set(new):
        old_share = old.get(symbol, 0.0)
        new_share = new.get(symbol, 0.0)
        delta = new_share - old_share
        if abs(delta) > 1e-12:
            rows.append((symbol, old_share, new_share, delta))
    rows.sort(key=lambda row: -row[3])
    return rows[:top_n]


def format_diff(rows):
    if not rows:
        return "no self-time movement between the two profiles\n"
    lines = ["self-time share movement (new - old), regressions first:"]
    width = max(len(row[0]) for row in rows)
    for symbol, old_share, new_share, delta in rows:
        lines.append(f"  {symbol:<{width}}  {old_share * 100:6.2f}% -> "
                     f"{new_share * 100:6.2f}%  ({delta * 100:+.2f}%)")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Self-test.


def self_test():
    checks = 0

    def check(condition, message):
        nonlocal checks
        checks += 1
        if not condition:
            raise AssertionError(f"self-test case {checks}: {message}")

    folded = ("coordinator;main;JoinPairs;EvaluatePair 6\n"
              "coordinator;main;JoinPairs;EvaluatePair;Verify 3\n"
              "worker-0;serve;JoinPairs;EvaluatePair 1\n")
    stacks = parse_folded(folded)
    check(len(stacks) == 3, "parse_folded stack count")
    check(stacks[0][0] == ("coordinator", "main", "JoinPairs",
                           "EvaluatePair"), "parse_folded frames")
    check(stacks[1][1] == 3, "parse_folded count")
    check(parse_folded("# comment\n\n") == [], "comments and blanks skipped")
    try:
        parse_folded("JoinPairs notanumber\n")
        check(False, "bad count should raise")
    except ValueError:
        check(True, "bad count raises ValueError")

    record = {
        "schema": "simj_profile_v1", "hz": 99,
        "sections": [
            {"label": "coordinator", "stacks": [
                {"thread": "main", "count": 4,
                 "frames": ["JoinPairs", "EvaluatePair"]}]},
            {"label": "worker-1", "stacks": [
                {"thread": "serve", "count": 2, "frames": ["Verify"]}]},
        ],
    }
    json_stacks = parse_profile_json(json.dumps(record))
    check(len(json_stacks) == 2, "parse_profile_json stack count")
    check(json_stacks[0][0][0] == "coordinator",
          "section label becomes root frame")
    check(json_stacks[1][0] == ("worker-1", "serve", "Verify"),
          "worker frames include thread")
    try:
        parse_profile_json('{"schema":"other_v1"}')
        check(False, "wrong schema should raise")
    except ValueError:
        check(True, "wrong schema raises ValueError")
    # A run record with an embedded profile loads through the same door.
    embedded = json.dumps({"harness": "x", "profile": record})
    check(len(load_stacks(embedded)[0]) == 2, "embedded profile loads")
    check(load_stacks(folded)[0] == stacks, "load_stacks sniffs folded text")

    # Heap profiles: four counters per stack, column picked by --metric.
    heap_record = {
        "schema": "simj_heap_v1", "sample_bytes": 524288,
        "sections": [
            {"label": "coordinator", "stacks": [
                {"thread": "main", "inuse_bytes": 4096, "inuse_objects": 2,
                 "alloc_bytes": 8192, "alloc_objects": 4,
                 "frames": ["JoinPairs", "BuildIndex"]},
                {"thread": "io", "inuse_bytes": 0, "inuse_objects": 0,
                 "alloc_bytes": 1024, "alloc_objects": 1,
                 "frames": ["ReadGraph"]}]},
            {"label": "worker-1", "stacks": [
                {"thread": "serve", "inuse_bytes": -512, "inuse_objects": -1,
                 "alloc_bytes": 2048, "alloc_objects": 2,
                 "frames": ["Verify"]}]},
        ],
    }
    heap_text = json.dumps(heap_record)
    inuse = parse_heap_json(heap_text, "inuse_bytes")
    check(inuse == [(("coordinator", "main", "JoinPairs", "BuildIndex"),
                     4096)],
          "inuse_bytes keeps only positive live stacks")
    alloc = parse_heap_json(heap_text, "alloc_bytes")
    check(len(alloc) == 3 and alloc[2][1] == 2048,
          "alloc_bytes keeps every allocating stack")
    check(parse_heap_json(heap_text, "alloc_objects")[0][1] == 4,
          "alloc_objects selects the object counter")
    try:
        parse_heap_json(heap_text, "samples")
        check(False, "heap json without heap metric should raise")
    except ValueError:
        check(True, "heap json without heap metric raises")
    try:
        parse_heap_json('{"schema":"simj_profile_v1"}', "inuse_bytes")
        check(False, "cpu schema through heap parser should raise")
    except ValueError:
        check(True, "cpu schema through heap parser raises")

    # load_stacks resolves bare heap JSON to inuse_bytes by default and
    # unwraps run records through the "heap" key for heap metrics.
    default_stacks, default_metric = load_stacks(heap_text)
    check(default_metric == "inuse_bytes" and default_stacks == inuse,
          "bare heap json defaults to inuse_bytes")
    heap_embedded = json.dumps({"harness": "x", "heap": heap_record})
    check(load_stacks(heap_embedded, "alloc_bytes")[0] == alloc,
          "run record heap key unwraps for heap metrics")
    try:
        load_stacks(embedded, "inuse_bytes")
        check(False, "run record without heap key should raise")
    except ValueError:
        check(True, "run record without heap key raises")
    try:
        load_stacks(json.dumps(record), "inuse_bytes")
        check(False, "heap metric against cpu schema should raise")
    except ValueError:
        check(True, "heap metric against cpu schema raises")

    heap_folded = ("coordinator;main;JoinPairs;BuildIndex 4096 2 8192 4\n"
                   "coordinator;io;ReadGraph 0 0 1024 1\n"
                   "worker-1;serve;Verify -512 -1 2048 2\n")
    check(parse_folded(heap_folded, "inuse_bytes") == inuse,
          "heap folded matches heap json for inuse_bytes")
    check(parse_folded(heap_folded, "alloc_objects")[1][1] == 1,
          "heap folded selects trailing column by metric")
    try:
        parse_folded(heap_folded)
        check(False, "heap folded without metric should raise")
    except ValueError:
        check(True, "heap folded without metric raises on extra columns")
    try:
        parse_folded(folded, "inuse_bytes")
        check(False, "cpu folded with heap metric should raise")
    except ValueError:
        check(True, "cpu folded with heap metric raises")

    heap_svg = render_svg(alloc, title="heap self-test", unit="bytes")
    check("11264 bytes" in heap_svg, "heap svg totals use byte unit")
    check(metric_unit("inuse_bytes") == "bytes"
          and metric_unit("alloc_objects") == "objects"
          and metric_unit("samples") == "samples", "metric_unit mapping")

    root = build_tree(stacks)
    check(root.total == 10, "tree total")
    coord = root.children["coordinator"]
    check(coord.total == 9, "section subtotal")
    evaluate = coord.children["main"].children["JoinPairs"].children[
        "EvaluatePair"]
    check(evaluate.total == 9, "inclusive count merges suffixes")
    check(evaluate.self_count == 6, "self count excludes nested Verify")
    check(tree_depth(root) == 6, "tree depth")

    svg = render_svg(stacks, title="self-test")
    check(svg.startswith("<svg"), "svg opens")
    check(svg.rstrip().endswith("</svg>"), "svg closes")
    check("EvaluatePair" in svg, "wide frame labeled")
    check("10 samples" in svg, "total in title")
    # 10 tree nodes (root + 9 frames) + the background rect.
    check(svg.count("<rect") == 11, "one rect per node plus background")
    try:
        render_svg([])
        check(False, "empty profile should raise")
    except ValueError:
        check(True, "empty profile raises ValueError")

    shares = self_shares(stacks)
    check(abs(shares["EvaluatePair"] - 0.7) < 1e-9, "leaf self share")
    check(abs(shares["Verify"] - 0.3) < 1e-9, "nested leaf self share")

    old = parse_folded("c;m;A;B 50\nc;m;A;C 50\n")
    new = parse_folded("c;m;A;B 90\nc;m;A;C 10\n")
    rows = diff_report(old, new)
    check(rows[0][0] == "B" and abs(rows[0][3] - 0.4) < 1e-9,
          "regression sorted first")
    check(rows[-1][0] == "C" and abs(rows[-1][3] + 0.4) < 1e-9,
          "improvement sorted last")
    check(diff_report(old, old) == [], "identical profiles show no movement")
    check("B" in format_diff(rows) and "+40.00%" in format_diff(rows),
          "diff report formatting")
    check(format_diff([]).startswith("no self-time movement"),
          "empty diff message")

    check(_fit_label("short", 400.0) == "short", "label fits untouched")
    check(_fit_label("a" * 200, 60.0).endswith(".."), "long label elided")

    print(f"flame.py self-test: {checks} cases passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="folded-stack / simj_profile_v1 -> SVG flamegraph")
    parser.add_argument("inputs", nargs="*",
                        help="profile file(s); two with --diff")
    parser.add_argument("-o", "--output", default="flame.svg",
                        help="SVG output path (default flame.svg)")
    parser.add_argument("--title", default="simj CPU profile")
    parser.add_argument("--diff", action="store_true",
                        help="compare two profiles' self-time shares")
    parser.add_argument("--top", type=int, default=10,
                        help="rows in the --diff report (default 10)")
    parser.add_argument("--metric", default="samples",
                        choices=("samples",) + HEAP_METRICS,
                        help="counter to render: samples (CPU, default) "
                             "or a simj_heap_v1 counter")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    try:
        if args.diff:
            if len(args.inputs) != 2:
                parser.error("--diff needs exactly two input files")
            with open(args.inputs[0]) as f:
                old_stacks, _ = load_stacks(f.read(), args.metric)
            with open(args.inputs[1]) as f:
                new_stacks, _ = load_stacks(f.read(), args.metric)
            sys.stdout.write(format_diff(diff_report(old_stacks, new_stacks,
                                                     args.top)))
            return 0
        if len(args.inputs) != 1:
            parser.error("expected exactly one input file (or --diff)")
        with open(args.inputs[0]) as f:
            stacks, metric = load_stacks(f.read(), args.metric)
        title = args.title
        if metric != "samples" and title == parser.get_default("title"):
            title = f"simj heap profile ({metric})"
        svg = render_svg(stacks, title=title, unit=metric_unit(metric))
    except (ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    with open(args.output, "w") as f:
        f.write(svg)
    total = sum(count for _, count in stacks)
    print(f"wrote {args.output}: {total} {metric_unit(metric)}, "
          f"{len(stacks)} distinct stacks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
