#!/usr/bin/env python3
"""Baseline-diffed clang-tidy runner.

Runs clang-tidy (config: .clang-tidy at the repo root) over every src/
translation unit in a compile_commands.json, normalizes the findings to
location-independent fingerprints, and fails only when findings appear that
are not in tools/clang_tidy_baseline.txt. This keeps CI green on historical
debt while stopping new debt.

The container used for CI does not ship clang-tidy; the runner exits 0 with
a SKIPPED notice when the binary is unavailable so the pipeline stays
runnable everywhere. Pass --require to turn that skip into a failure (for
environments that are supposed to have the toolchain).

Usage:
  tools/run_clang_tidy.py [--build-dir build] [--jobs N]
                          [--baseline tools/clang_tidy_baseline.txt]
                          [--update-baseline] [--require] [files...]
"""

import argparse
import hashlib
import json
import multiprocessing
import os
import re
import shutil
import subprocess
import sys

FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<kind>warning|error): (?P<message>.*?) \[(?P<check>[^\]]+)\]$"
)


def find_clang_tidy():
    explicit = os.environ.get("CLANG_TIDY")
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        if shutil.which(name):
            return name
    return None


def load_compile_db(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except OSError:
        return None


def fingerprint(repo, path, check, message):
    rel = os.path.relpath(os.path.abspath(path), repo).replace(os.sep, "/")
    digest = hashlib.sha256(f"{rel}:{check}:{message}".encode()).hexdigest()[:16]
    return f"{rel}:{check}:{digest}"


def run_one(task):
    clang_tidy, repo, source = task
    proc = subprocess.run(
        [clang_tidy, "-p", os.path.join(repo, "build"), "--quiet", source],
        capture_output=True, text=True, cwd=repo, check=False,
    )
    findings = []
    for line in proc.stdout.splitlines():
        match = FINDING_RE.match(line)
        if match:
            findings.append(
                (
                    fingerprint(repo, match.group("path"),
                                match.group("check"), match.group("message")),
                    line,
                )
            )
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*")
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count() - 1))
    parser.add_argument("--baseline", default=None)
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--require", action="store_true",
                        help="fail (instead of skip) when clang-tidy is "
                        "not installed")
    args = parser.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = args.baseline or os.path.join(
        repo, "tools", "clang_tidy_baseline.txt"
    )

    clang_tidy = find_clang_tidy()
    if clang_tidy is None:
        print("run_clang_tidy: SKIPPED (clang-tidy not installed; set "
              "CLANG_TIDY or install it to enable this check)")
        sys.exit(1 if args.require else 0)

    database = load_compile_db(os.path.join(repo, args.build_dir))
    if database is None:
        print(f"run_clang_tidy: no compile_commands.json under "
              f"{args.build_dir}/ — configure with CMake first (the build "
              "exports it via CMAKE_EXPORT_COMPILE_COMMANDS)")
        sys.exit(1)

    sources = sorted(
        {
            entry["file"]
            for entry in database
            if "/src/" in entry["file"].replace(os.sep, "/")
        }
    )
    if args.files:
        wanted = {os.path.abspath(f) for f in args.files}
        sources = [s for s in sources if os.path.abspath(s) in wanted]

    tasks = [(clang_tidy, repo, source) for source in sources]
    with multiprocessing.Pool(args.jobs) as pool:
        results = pool.map(run_one, tasks)
    findings = [item for sub in results for item in sub]

    if args.update_baseline:
        with open(baseline_path, "w", encoding="utf-8") as handle:
            handle.write("# clang-tidy baseline fingerprints; new findings "
                         "fail CI. Regenerate with --update-baseline.\n")
            for fp, _ in sorted(set(findings)):
                handle.write(fp + "\n")
        print(f"baseline updated: {len(set(fp for fp, _ in findings))} "
              "finding(s)")
        return

    baseline = set()
    try:
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = {
                line.strip()
                for line in handle
                if line.strip() and not line.startswith("#")
            }
    except OSError:
        pass

    new = [(fp, text) for fp, text in findings if fp not in baseline]
    for _, text in new:
        print(text)
    if new:
        print(f"run_clang_tidy: {len(new)} new finding(s) over "
              f"{len(sources)} TU(s)")
        sys.exit(1)
    print(f"run_clang_tidy OK: {len(sources)} TU(s), "
          f"{len(findings)} baselined finding(s)")


if __name__ == "__main__":
    main()
