#!/usr/bin/env python3
"""Static lock-order analysis over the simj::Mutex capability annotations.

Extracts the static lock-acquisition graph from the C++ sources:

  * every `Mutex <name>;` declaration inside a class/struct becomes a
    capability node named `Class::member` (the same names DESIGN.md §11 and
    the SIMJ_GUARDED_BY annotations use);
  * every `MutexLock guard(expr);` acquisition is tracked through the
    enclosing braces, so acquiring B while A is still in scope yields the
    edge A -> B;
  * calls made while holding a lock add edges to every capability the
    callee may (transitively) acquire, via a may-acquire fixpoint over a
    name-based call graph;
  * indirection the static walk cannot follow (std::function, virtual
    dispatch) is covered by declared edges: a comment of the form
    `// simj-lock-order: Class::mu -> Other::mu` anywhere in the tree.

The combined graph must be acyclic: a cycle is a potential ABBA deadlock
and fails the run (exit 1). CI runs this after the lint leg (ci.sh); the
DOT/JSON outputs are deterministic so they can be diffed across commits.

The extractor is deliberately conservative: an unresolvable acquisition or
callee produces a warning, never a silent drop, and over-approximate edges
(e.g. a `.Record(` call matching both FlightRecorder::Record and
Tracer::Record) are acceptable as long as the over-approximation stays
acyclic.

Usage:
  tools/lock_order.py [--root src] [--dot FILE] [--json FILE] [-v]
  tools/lock_order.py --self-test
"""

import argparse
import json
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The annotation vocabulary itself declares no program state worth walking.
EXCLUDE_FILES = {os.path.join("src", "util", "sync.h")}

# Call names never treated as user-defined callees. The sync primitives
# would otherwise alias unrelated methods (cv_.Wait(mu_) is NOT a call to
# ThreadPool::Wait), and the std names are pure noise.
SKIP_CALL_NAMES = {
    "Wait", "NotifyOne", "NotifyAll", "Lock", "Unlock", "TryLock",
    "lock", "unlock", "try_lock", "wait", "notify_one", "notify_all",
}

# Macros modeled as calls: SIMJ_LOG(level) << ... funnels into log.cc's
# free Write(), which takes the sink mutex.
MACRO_CALLS = {"SIMJ_LOG": ["Write"]}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "throw",
    "new", "delete", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "alignof", "alignas", "decltype", "typeid",
    "assert", "defined", "int", "char", "bool", "void", "float", "double",
    "auto", "operator", "noexcept", "static_assert", "co_await", "co_return",
}

DECLARED_EDGE_RE = re.compile(r"simj-lock-order:\s*([\w:]+)\s*->\s*([\w:]+)")

_MUTEX_DECL_RE = re.compile(r"(?:mutable\s+)?(?:simj::)?\bMutex\s+(\w+)\s*$")
_MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\((.*)\)\s*$")
_CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+"
    r"(?:alignas\s*\([^)]*\)\s*|SIMJ_\w+(?:\s*\([^)]*\))?\s+)*"
    r"([A-Za-z_]\w*)")
_CALL_RE = re.compile(
    r"(\.|->|::)?\s*((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)\s*\(")
_FUNC_NAME_RE = re.compile(r"((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)\s*\(")


def strip_comments_and_strings(text):
    """Blanks comments, string and char literals, and preprocessor lines,
    preserving every newline so line numbers survive."""
    out = []
    i, n = 0, len(text)
    # Raw strings first would complicate the single pass; handle inline.
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c == "R" and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^(]*)\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i)
                j = n - len(close) if j < 0 else j
                out.append("\n" * text.count("\n", i, j + len(close)))
                i = j + len(close)
            else:
                out.append(c)
                i += 1
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            out.append(c + c)  # keep an empty literal so `("")` stays balanced
            i = j + 1
        elif c == "#" and (not out or out[-1].endswith("\n") or not out[-1]):
            # Preprocessor line (only when at start of line).
            j = text.find("\n", i)
            j = n if j < 0 else j
            while text[j - 1] == "\\" and j < n:  # line continuations
                j2 = text.find("\n", j + 1)
                j = n if j2 < 0 else j2
            out.append("\n" * text.count("\n", i, j))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Ctx:
    """One entry in the brace-context stack."""

    def __init__(self, kind, name, depth):
        self.kind = kind  # 'namespace' | 'class' | 'function' | 'block'
        self.name = name
        self.depth = depth


class FunctionInfo:
    def __init__(self, name, cls, path):
        self.name = name          # unqualified name
        self.cls = cls            # enclosing class name or ""
        self.path = path
        self.acquisitions = []    # [(capability, line)]
        self.calls = []           # [(callee_name, is_method, held tuple, line)]
        self.direct_edges = []    # [(a, b, line)]


class Analysis:
    def __init__(self):
        self.capabilities = {}    # "Class::member" -> (path, line)
        self.caps_by_member = {}  # member -> set of "Class::member"
        self.caps_by_class = {}   # class -> {member -> cap}
        self.caps_by_file = {}    # stem-or-path -> set of caps
        self.functions = []       # [FunctionInfo]
        self.declared_edges = []  # [(a, b, path, line)]
        self.warnings = []

    def warn(self, msg):
        if msg not in self.warnings:
            self.warnings.append(msg)

    def add_capability(self, cls, member, path, line):
        cap = "%s::%s" % (cls, member)
        self.capabilities[cap] = (path, line)
        self.caps_by_member.setdefault(member, set()).add(cap)
        self.caps_by_class.setdefault(cls, {})[member] = cap
        stem = os.path.splitext(os.path.basename(path))[0]
        self.caps_by_file.setdefault(path, set()).add(cap)
        self.caps_by_file.setdefault("stem:" + stem, set()).add(cap)


def innermost_class(stack):
    for ctx in reversed(stack):
        if ctx.kind == "class":
            return ctx.name
    return ""


def in_function(stack):
    return any(ctx.kind == "function" for ctx in stack)


def classify_header(header, stack):
    """Classify the statement text preceding a `{`."""
    text = header.strip()
    if text.startswith("namespace"):
        m = re.match(r"namespace\s+([A-Za-z_][\w:]*)?", text)
        return "namespace", (m.group(1) or "") if m else ""
    if in_function(stack):
        return "block", ""
    if not text.startswith("enum"):
        m = _CLASS_RE.search(text)
        # A base-class list or plain body brace both follow the name; a
        # `class Foo;` forward declaration never reaches here (no brace).
        if m and ("class" in text.split()[:3] or "struct" in text.split()[:3]):
            return "class", m.group(1)
    # Function definition: the header must contain a parameter list. Strip
    # trailing specifiers and any constructor initializer list first.
    body = re.sub(r"\b(const|noexcept|override|final|mutable)\b", " ", text)
    body = re.sub(r"SIMJ_\w+(\s*\([^)]*\))?", " ", body)
    if "(" in body and body.rstrip().endswith((")", ":")) or re.search(
            r"\)\s*:\s*", body):
        for m in _FUNC_NAME_RE.finditer(text):
            name = m.group(1)
            base = name.rsplit("::", 1)[-1]
            if base in CPP_KEYWORDS or base.startswith("SIMJ_"):
                continue
            return "function", name
        return "function", "<anon>"
    return "block", ""


def resolve_capability(analysis, expr, cls, path):
    """Maps a MutexLock argument expression to a capability name."""
    expr = expr.strip()
    expr = re.sub(r"^\*", "", expr)
    has_object = False
    member = expr
    for sep in ("->", "."):
        if sep in member:
            prefix, member = member.rsplit(sep, 1)
            if prefix.strip() not in ("this", ""):
                has_object = True
    member = member.strip()
    if not re.fullmatch(r"\w+", member):
        return None
    # 1. Member of the enclosing class (bare `mu_` / `this->mu_`).
    if not has_object and cls and member in analysis.caps_by_class.get(cls, {}):
        return analysis.caps_by_class[cls][member]
    candidates = analysis.caps_by_member.get(member, set())
    if len(candidates) == 1:
        return next(iter(candidates))
    # 2. Unique among capabilities declared in this file.
    local = candidates & analysis.caps_by_file.get(path, set())
    if len(local) == 1:
        return next(iter(local))
    # 3. Unique among this file and its header/impl twin (same stem).
    stem = os.path.splitext(os.path.basename(path))[0]
    twin = candidates & analysis.caps_by_file.get("stem:" + stem, set())
    if len(twin) == 1:
        return next(iter(twin))
    return None


def scan_file(analysis, path, rel):
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    for i, line in enumerate(raw.splitlines(), 1):
        m = DECLARED_EDGE_RE.search(line)
        if m:
            analysis.declared_edges.append((m.group(1), m.group(2), rel, i))
    text = strip_comments_and_strings(raw)

    stack = []           # [Ctx]
    depth = 0
    buf = []             # current statement text
    line_no = 1
    pending = []         # second pass: (FunctionInfo-index resolution deferred)
    current_fn = None
    held = []            # [(capability, entry_depth, line)]
    fn_stack = []        # saved (current_fn, held) around nested... (none)

    def statement_done(stmt, at_line):
        nonlocal current_fn
        cls = innermost_class(stack)
        # Capability declaration (class scope only).
        dm = _MUTEX_DECL_RE.search(stmt.strip())
        if dm and cls and not in_function(stack):
            analysis.add_capability(cls, dm.group(1), rel, at_line)
            return
        # Acquisition.
        am = _MUTEXLOCK_RE.search(stmt.strip())
        if am and current_fn is not None:
            cap = resolve_capability(analysis, am.group(1), current_fn.cls, rel)
            if cap is None:
                analysis.warn("%s:%d: cannot resolve MutexLock argument '%s'"
                              % (rel, at_line, am.group(1).strip()))
                return
            for held_cap, _, _ in held:
                if held_cap != cap:
                    current_fn.direct_edges.append((held_cap, cap, at_line))
            held.append((cap, depth, at_line))
            current_fn.acquisitions.append((cap, at_line))
            return
        record_calls(stmt, at_line)

    def record_calls(stmt, at_line):
        if current_fn is None:
            return
        snapshot = tuple(c for c, _, _ in held)
        for m in _CALL_RE.finditer(stmt):
            sep, name = m.group(1), m.group(2)
            base = name.rsplit("::", 1)[-1]
            if base in CPP_KEYWORDS or base in SKIP_CALL_NAMES:
                continue
            if base in MACRO_CALLS:
                for target in MACRO_CALLS[base]:
                    current_fn.calls.append((target, False, snapshot, at_line))
                continue
            if base.startswith("SIMJ_") or re.fullmatch(r"[A-Z][A-Z0-9_]+",
                                                        base):
                continue  # other macros
            is_method = sep in (".", "->")
            current_fn.calls.append((base, is_method, snapshot, at_line))

    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "\n":
            line_no += 1
            buf.append(" ")
        elif c == "{":
            header = "".join(buf).strip()
            buf = []
            depth += 1
            kind, name = classify_header(header, stack)
            if kind == "function":
                record_calls(header, line_no)  # calls in e.g. ctor init lists
                cls = innermost_class(stack)
                fname = name
                if "::" in name:
                    cls = name.rsplit("::", 2)[-2]
                    fname = name.rsplit("::", 1)[-1]
                current_fn = FunctionInfo(fname, cls, rel)
                analysis.functions.append(current_fn)
            elif kind == "block" and current_fn is not None:
                record_calls(header, line_no)
            stack.append(Ctx(kind, name, depth))
        elif c == "}":
            stmt = "".join(buf).strip()
            if stmt:
                statement_done(stmt, line_no)
            buf = []
            if stack and stack[-1].depth == depth:
                ctx = stack.pop()
                if ctx.kind == "function":
                    current_fn = None
                    held = []
            depth -= 1
            held = [h for h in held if h[1] <= depth]
        elif c == ";":
            stmt = "".join(buf).strip()
            if stmt:
                statement_done(stmt, line_no)
            buf = []
        else:
            buf.append(c)
        i += 1


def build_graph(analysis):
    """Returns (edges dict: (a,b) -> [site,...]) after the call-graph
    may-acquire fixpoint."""
    # Index function definitions by name.
    defs_by_name = {}
    for idx, fn in enumerate(analysis.functions):
        defs_by_name.setdefault(fn.name, []).append(idx)

    def resolve_call(name, is_method):
        targets = []
        for idx in defs_by_name.get(name, []):
            fn = analysis.functions[idx]
            if is_method and not fn.cls:
                continue  # a method call cannot hit a free function
            targets.append(idx)
        return targets

    # may_acquire fixpoint.
    may = [set(c for c, _ in fn.acquisitions) for fn in analysis.functions]
    changed = True
    while changed:
        changed = False
        for idx, fn in enumerate(analysis.functions):
            for name, is_method, _, _ in fn.calls:
                for t in resolve_call(name, is_method):
                    if not may[t] <= may[idx]:
                        may[idx] |= may[t]
                        changed = True

    edges = {}

    def add_edge(a, b, site):
        if a == b:
            analysis.warn("%s: '%s' may be re-acquired while held "
                          "(via an over-approximate call edge)" % (site, a))
            return
        edges.setdefault((a, b), [])
        if site not in edges[(a, b)]:
            edges[(a, b)].append(site)

    for fn in analysis.functions:
        for a, b, line in fn.direct_edges:
            add_edge(a, b, "%s:%d" % (fn.path, line))
        for name, is_method, snapshot, line in fn.calls:
            if not snapshot:
                continue
            for t in resolve_call(name, is_method):
                for b in may[t]:
                    for a in snapshot:
                        add_edge(a, b, "%s:%d (via %s)"
                                 % (fn.path, line, name))
    for a, b, path, line in analysis.declared_edges:
        for cap in (a, b):
            if cap not in analysis.capabilities:
                analysis.warn("%s:%d: declared edge references unknown "
                              "capability '%s'" % (path, line, cap))
        if a != b:
            edges.setdefault((a, b), [])
            site = "%s:%d (declared)" % (path, line)
            if site not in edges[(a, b)]:
                edges[(a, b)].append(site)
    return edges


def find_cycles(edges):
    adj = {}
    for (a, b), _ in edges.items():
        adj.setdefault(a, set()).add(b)
    WHITE, GREY, BLACK = 0, 1, 2
    color = {}
    cycles = []

    def dfs(node, path):
        color[node] = GREY
        path.append(node)
        for nxt in sorted(adj.get(node, ())):
            if color.get(nxt, WHITE) == GREY:
                cycles.append(path[path.index(nxt):] + [nxt])
            elif color.get(nxt, WHITE) == WHITE:
                dfs(nxt, path)
        path.pop()
        color[node] = BLACK

    for node in sorted(adj):
        if color.get(node, WHITE) == WHITE:
            dfs(node, [])
    return cycles


def render_dot(analysis, edges):
    lines = ["digraph lock_order {"]
    lines.append('  rankdir=LR;')
    for cap in sorted(analysis.capabilities):
        lines.append('  "%s";' % cap)
    for (a, b) in sorted(edges):
        declared = all("(declared)" in s for s in edges[(a, b)]) and \
            bool(edges[(a, b)])
        style = ' [style=dashed]' if declared else ""
        lines.append('  "%s" -> "%s"%s;' % (a, b, style))
    lines.append("}")
    return "\n".join(lines) + "\n"


def render_json(analysis, edges, cycles):
    return json.dumps({
        "capabilities": {
            cap: "%s:%d" % loc
            for cap, loc in sorted(analysis.capabilities.items())
        },
        "edges": [
            {"from": a, "to": b, "sites": sorted(edges[(a, b)])}
            for (a, b) in sorted(edges)
        ],
        "declared_edges": [
            {"from": a, "to": b, "site": "%s:%d" % (p, l)}
            for a, b, p, l in sorted(analysis.declared_edges)
        ],
        "cycles": [list(c) for c in cycles],
        "warnings": sorted(analysis.warnings),
    }, indent=2, sort_keys=False) + "\n"


def analyze(root, repo_root=REPO_ROOT):
    analysis = Analysis()
    paths = []
    for dirpath, _, names in os.walk(root):
        for name in sorted(names):
            if not name.endswith((".cc", ".h")):
                continue
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, repo_root)
            if rel in EXCLUDE_FILES:
                continue
            paths.append((full, rel))
    # Two passes: capabilities must all be known before acquisitions are
    # resolved, and headers declare capabilities that .cc files acquire.
    for full, rel in sorted(paths):
        with open(full, encoding="utf-8") as f:
            raw = f.read()
        text = strip_comments_and_strings(raw)
        _collect_capabilities(analysis, text, rel)
    for full, rel in sorted(paths):
        scan_file(analysis, full, rel)
    return analysis


def _collect_capabilities(analysis, text, rel):
    """First pass: walk braces only far enough to attribute Mutex members."""
    stack = []
    depth = 0
    buf = []
    line_no = 1
    for c in text:
        if c == "\n":
            line_no += 1
            buf.append(" ")
        elif c == "{":
            header = "".join(buf).strip()
            buf = []
            depth += 1
            kind, name = classify_header(header, stack)
            stack.append(Ctx(kind, name, depth))
        elif c == "}":
            buf = []
            if stack and stack[-1].depth == depth:
                stack.pop()
            depth -= 1
        elif c == ";":
            stmt = "".join(buf).strip()
            buf = []
            cls = innermost_class(stack)
            dm = _MUTEX_DECL_RE.search(stmt)
            if dm and cls and not in_function(stack):
                cap = "%s::%s" % (cls, dm.group(1))
                if cap not in analysis.capabilities:
                    analysis.add_capability(cls, dm.group(1), rel, line_no)
        else:
            buf.append(c)


def run(root, dot_path, json_path, verbose):
    analysis = analyze(root)
    edges = build_graph(analysis)
    cycles = find_cycles(edges)
    if dot_path:
        with open(dot_path, "w", encoding="utf-8") as f:
            f.write(render_dot(analysis, edges))
    if json_path:
        with open(json_path, "w", encoding="utf-8") as f:
            f.write(render_json(analysis, edges, cycles))
    if verbose or not (dot_path or json_path):
        sys.stdout.write(render_json(analysis, edges, cycles))
    for w in analysis.warnings:
        print("lock_order: warning: %s" % w, file=sys.stderr)
    if cycles:
        for cycle in cycles:
            print("lock_order: LOCK-ORDER CYCLE: %s" % " -> ".join(cycle),
                  file=sys.stderr)
        return 1
    print("lock_order: %d capabilities, %d edges, acyclic"
          % (len(analysis.capabilities), len(edges)), file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# Self-test

SELF_TEST_CASES = [
    # (name, source, expect_cycle, expected_edges, forbidden_edges)
    ("abba_deadlock", """
struct A { Mutex a_mu; };
struct B { Mutex b_mu; };
void First(A& a, B& b) {
  MutexLock l1(a.a_mu);
  MutexLock l2(b.b_mu);
}
void Second(A& a, B& b) {
  MutexLock l1(b.b_mu);
  MutexLock l2(a.a_mu);
}
""", True, [("A::a_mu", "B::b_mu"), ("B::b_mu", "A::a_mu")], []),
    ("consistent_order", """
struct A { Mutex a_mu; };
struct B { Mutex b_mu; };
void First(A& a, B& b) {
  MutexLock l1(a.a_mu);
  MutexLock l2(b.b_mu);
}
void Second(A& a, B& b) {
  MutexLock l1(a.a_mu);
  {
    MutexLock l2(b.b_mu);
  }
}
""", False, [("A::a_mu", "B::b_mu")], [("B::b_mu", "A::a_mu")]),
    ("sequential_blocks_no_edge", """
struct A { Mutex a_mu; };
struct B { Mutex b_mu; };
void Sequential(A& a, B& b) {
  {
    MutexLock l1(a.a_mu);
  }
  {
    MutexLock l2(b.b_mu);
  }
}
""", False, [], [("A::a_mu", "B::b_mu"), ("B::b_mu", "A::a_mu")]),
    ("interprocedural_cycle", """
struct A { Mutex a_mu; };
struct B { Mutex b_mu; };
void TakeB(B& b) {
  MutexLock l(b.b_mu);
}
void TakeA(A& a) {
  MutexLock l(a.a_mu);
}
void Caller1(A& a, B& b) {
  MutexLock l(a.a_mu);
  TakeB(b);
}
void Caller2(A& a, B& b) {
  MutexLock l(b.b_mu);
  TakeA(a);
}
""", True, [("A::a_mu", "B::b_mu"), ("B::b_mu", "A::a_mu")], []),
    ("declared_edge_cycle", """
struct A { Mutex a_mu; };
struct B { Mutex b_mu; };
void First(A& a, B& b) {
  MutexLock l1(a.a_mu);
  MutexLock l2(b.b_mu);
}
// The indirect path back is declared, closing the cycle:
// simj-lock-order: B::b_mu -> A::a_mu
""", True, [("A::a_mu", "B::b_mu"), ("B::b_mu", "A::a_mu")], []),
    ("member_methods_and_fixpoint", """
class Pool {
 public:
  void Loop();
 private:
  Mutex mu_;
};
struct Queue { Mutex mu; };
void Pool::Loop() {
  MutexLock lock(mu_);
  for (int i = 0; i < 4; ++i) {
    Queue q;
    MutexLock qlock(q.mu);
  }
}
""", False, [("Pool::mu_", "Queue::mu")], [("Queue::mu", "Pool::mu_")]),
]


def self_test():
    failures = 0
    for name, source, expect_cycle, expected, forbidden in SELF_TEST_CASES:
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "case.cc")
            with open(src, "w", encoding="utf-8") as f:
                f.write(source)
            analysis = analyze(tmp, repo_root=tmp)
            edges = build_graph(analysis)
            cycles = find_cycles(edges)
        problems = []
        if expect_cycle and not cycles:
            problems.append("expected a cycle, found none")
        if not expect_cycle and cycles:
            problems.append("unexpected cycle: %s" % cycles)
        for e in expected:
            if e not in edges:
                problems.append("missing edge %s -> %s" % e)
        for e in forbidden:
            if e in edges:
                problems.append("forbidden edge %s -> %s present" % e)
        if problems:
            failures += 1
            print("self-test FAIL %-28s %s" % (name, "; ".join(problems)))
            print("  edges: %s" % sorted(edges))
        else:
            print("self-test ok   %-28s (%d edges%s)"
                  % (name, len(edges), ", cycle" if cycles else ""))
    if failures:
        print("lock_order self-test: %d FAILURES" % failures)
        return 1
    print("lock_order self-test: all %d cases passed" % len(SELF_TEST_CASES))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.join(REPO_ROOT, "src"),
                        help="directory tree to analyze (default: src/)")
    parser.add_argument("--dot", help="write the lock graph as DOT")
    parser.add_argument("--json", help="write the lock graph as JSON")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print the JSON report to stdout")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in extraction/cycle test cases")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return run(args.root, args.dot, args.json, args.verbose)


if __name__ == "__main__":
    sys.exit(main())
