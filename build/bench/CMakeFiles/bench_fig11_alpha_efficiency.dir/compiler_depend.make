# Empty compiler generated dependencies file for bench_fig11_alpha_efficiency.
# This may be replaced when dependencies are built.
