# Empty dependencies file for bench_fig17_relation_count.
# This may be replaced when dependencies are built.
