# Empty dependencies file for bench_table4_qa_systems.
# This may be replaced when dependencies are built.
