file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_qa_systems.dir/bench_table4_qa_systems.cpp.o"
  "CMakeFiles/bench_table4_qa_systems.dir/bench_table4_qa_systems.cpp.o.d"
  "bench_table4_qa_systems"
  "bench_table4_qa_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_qa_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
