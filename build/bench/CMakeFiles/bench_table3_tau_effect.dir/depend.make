# Empty dependencies file for bench_table3_tau_effect.
# This may be replaced when dependencies are built.
