file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_tau_effect.dir/bench_table3_tau_effect.cpp.o"
  "CMakeFiles/bench_table3_tau_effect.dir/bench_table3_tau_effect.cpp.o.d"
  "bench_table3_tau_effect"
  "bench_table3_tau_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_tau_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
