# Empty dependencies file for bench_fig14_label_count.
# This may be replaced when dependencies are built.
