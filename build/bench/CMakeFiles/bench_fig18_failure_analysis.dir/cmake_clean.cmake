file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_failure_analysis.dir/bench_fig18_failure_analysis.cpp.o"
  "CMakeFiles/bench_fig18_failure_analysis.dir/bench_fig18_failure_analysis.cpp.o.d"
  "bench_fig18_failure_analysis"
  "bench_fig18_failure_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_failure_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
