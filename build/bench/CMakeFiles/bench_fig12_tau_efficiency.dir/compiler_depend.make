# Empty compiler generated dependencies file for bench_fig12_tau_efficiency.
# This may be replaced when dependencies are built.
