
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_tau_efficiency.cpp" "bench/CMakeFiles/bench_fig12_tau_efficiency.dir/bench_fig12_tau_efficiency.cpp.o" "gcc" "bench/CMakeFiles/bench_fig12_tau_efficiency.dir/bench_fig12_tau_efficiency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/simj_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/simj_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ged/CMakeFiles/simj_ged.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/simj_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/simj_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/simj_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/simj_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/simj_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/simj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
