file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_group_number.dir/bench_fig13_group_number.cpp.o"
  "CMakeFiles/bench_fig13_group_number.dir/bench_fig13_group_number.cpp.o.d"
  "bench_fig13_group_number"
  "bench_fig13_group_number.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_group_number.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
