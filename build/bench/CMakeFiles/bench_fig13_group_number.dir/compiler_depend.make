# Empty compiler generated dependencies file for bench_fig13_group_number.
# This may be replaced when dependencies are built.
