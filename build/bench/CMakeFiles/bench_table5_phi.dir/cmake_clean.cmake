file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_phi.dir/bench_table5_phi.cpp.o"
  "CMakeFiles/bench_table5_phi.dir/bench_table5_phi.cpp.o.d"
  "bench_table5_phi"
  "bench_table5_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
