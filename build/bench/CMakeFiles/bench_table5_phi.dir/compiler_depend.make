# Empty compiler generated dependencies file for bench_table5_phi.
# This may be replaced when dependencies are built.
