file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_verify.dir/bench_ablation_verify.cpp.o"
  "CMakeFiles/bench_ablation_verify.dir/bench_ablation_verify.cpp.o.d"
  "bench_ablation_verify"
  "bench_ablation_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
