# Empty compiler generated dependencies file for bench_ablation_verify.
# This may be replaced when dependencies are built.
