# Empty dependencies file for bench_fig15_filter_comparison.
# This may be replaced when dependencies are built.
