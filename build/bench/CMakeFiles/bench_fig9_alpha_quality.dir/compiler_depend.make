# Empty compiler generated dependencies file for bench_fig9_alpha_quality.
# This may be replaced when dependencies are built.
