file(REMOVE_RECURSE
  "CMakeFiles/simj_workload.dir/io.cc.o"
  "CMakeFiles/simj_workload.dir/io.cc.o.d"
  "CMakeFiles/simj_workload.dir/knowledge_base.cc.o"
  "CMakeFiles/simj_workload.dir/knowledge_base.cc.o.d"
  "CMakeFiles/simj_workload.dir/question_gen.cc.o"
  "CMakeFiles/simj_workload.dir/question_gen.cc.o.d"
  "CMakeFiles/simj_workload.dir/synthetic.cc.o"
  "CMakeFiles/simj_workload.dir/synthetic.cc.o.d"
  "libsimj_workload.a"
  "libsimj_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simj_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
