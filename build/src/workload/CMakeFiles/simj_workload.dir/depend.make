# Empty dependencies file for simj_workload.
# This may be replaced when dependencies are built.
