file(REMOVE_RECURSE
  "libsimj_workload.a"
)
