file(REMOVE_RECURSE
  "CMakeFiles/simj_ged.dir/edit_distance.cc.o"
  "CMakeFiles/simj_ged.dir/edit_distance.cc.o.d"
  "CMakeFiles/simj_ged.dir/filters.cc.o"
  "CMakeFiles/simj_ged.dir/filters.cc.o.d"
  "CMakeFiles/simj_ged.dir/lower_bounds.cc.o"
  "CMakeFiles/simj_ged.dir/lower_bounds.cc.o.d"
  "libsimj_ged.a"
  "libsimj_ged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simj_ged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
