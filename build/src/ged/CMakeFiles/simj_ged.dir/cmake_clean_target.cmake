file(REMOVE_RECURSE
  "libsimj_ged.a"
)
