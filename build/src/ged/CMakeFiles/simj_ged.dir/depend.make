# Empty dependencies file for simj_ged.
# This may be replaced when dependencies are built.
