file(REMOVE_RECURSE
  "CMakeFiles/simj_matching.dir/bipartite.cc.o"
  "CMakeFiles/simj_matching.dir/bipartite.cc.o.d"
  "CMakeFiles/simj_matching.dir/hungarian.cc.o"
  "CMakeFiles/simj_matching.dir/hungarian.cc.o.d"
  "libsimj_matching.a"
  "libsimj_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simj_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
