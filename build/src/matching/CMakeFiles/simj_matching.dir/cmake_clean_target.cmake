file(REMOVE_RECURSE
  "libsimj_matching.a"
)
