# Empty dependencies file for simj_matching.
# This may be replaced when dependencies are built.
