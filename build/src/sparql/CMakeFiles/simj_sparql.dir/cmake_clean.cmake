file(REMOVE_RECURSE
  "CMakeFiles/simj_sparql.dir/parser.cc.o"
  "CMakeFiles/simj_sparql.dir/parser.cc.o.d"
  "libsimj_sparql.a"
  "libsimj_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simj_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
