file(REMOVE_RECURSE
  "libsimj_sparql.a"
)
