# Empty dependencies file for simj_sparql.
# This may be replaced when dependencies are built.
