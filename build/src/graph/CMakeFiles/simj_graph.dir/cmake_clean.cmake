file(REMOVE_RECURSE
  "CMakeFiles/simj_graph.dir/label.cc.o"
  "CMakeFiles/simj_graph.dir/label.cc.o.d"
  "CMakeFiles/simj_graph.dir/labeled_graph.cc.o"
  "CMakeFiles/simj_graph.dir/labeled_graph.cc.o.d"
  "CMakeFiles/simj_graph.dir/uncertain_graph.cc.o"
  "CMakeFiles/simj_graph.dir/uncertain_graph.cc.o.d"
  "libsimj_graph.a"
  "libsimj_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simj_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
