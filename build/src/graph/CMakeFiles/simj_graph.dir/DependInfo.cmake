
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/label.cc" "src/graph/CMakeFiles/simj_graph.dir/label.cc.o" "gcc" "src/graph/CMakeFiles/simj_graph.dir/label.cc.o.d"
  "/root/repo/src/graph/labeled_graph.cc" "src/graph/CMakeFiles/simj_graph.dir/labeled_graph.cc.o" "gcc" "src/graph/CMakeFiles/simj_graph.dir/labeled_graph.cc.o.d"
  "/root/repo/src/graph/uncertain_graph.cc" "src/graph/CMakeFiles/simj_graph.dir/uncertain_graph.cc.o" "gcc" "src/graph/CMakeFiles/simj_graph.dir/uncertain_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/simj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
