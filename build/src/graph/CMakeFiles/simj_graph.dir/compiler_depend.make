# Empty compiler generated dependencies file for simj_graph.
# This may be replaced when dependencies are built.
