file(REMOVE_RECURSE
  "libsimj_graph.a"
)
