# Empty compiler generated dependencies file for simj_rdf.
# This may be replaced when dependencies are built.
