file(REMOVE_RECURSE
  "CMakeFiles/simj_rdf.dir/ntriples.cc.o"
  "CMakeFiles/simj_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/simj_rdf.dir/triple_store.cc.o"
  "CMakeFiles/simj_rdf.dir/triple_store.cc.o.d"
  "libsimj_rdf.a"
  "libsimj_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simj_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
