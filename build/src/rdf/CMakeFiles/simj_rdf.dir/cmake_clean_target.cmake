file(REMOVE_RECURSE
  "libsimj_rdf.a"
)
