file(REMOVE_RECURSE
  "libsimj_templates.a"
)
