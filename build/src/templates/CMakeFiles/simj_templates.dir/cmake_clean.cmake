file(REMOVE_RECURSE
  "CMakeFiles/simj_templates.dir/baselines.cc.o"
  "CMakeFiles/simj_templates.dir/baselines.cc.o.d"
  "CMakeFiles/simj_templates.dir/qa.cc.o"
  "CMakeFiles/simj_templates.dir/qa.cc.o.d"
  "CMakeFiles/simj_templates.dir/template.cc.o"
  "CMakeFiles/simj_templates.dir/template.cc.o.d"
  "libsimj_templates.a"
  "libsimj_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simj_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
