# Empty compiler generated dependencies file for simj_templates.
# This may be replaced when dependencies are built.
