
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/groups.cc" "src/core/CMakeFiles/simj_core.dir/groups.cc.o" "gcc" "src/core/CMakeFiles/simj_core.dir/groups.cc.o.d"
  "/root/repo/src/core/index.cc" "src/core/CMakeFiles/simj_core.dir/index.cc.o" "gcc" "src/core/CMakeFiles/simj_core.dir/index.cc.o.d"
  "/root/repo/src/core/join.cc" "src/core/CMakeFiles/simj_core.dir/join.cc.o" "gcc" "src/core/CMakeFiles/simj_core.dir/join.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/simj_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/simj_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/topk.cc" "src/core/CMakeFiles/simj_core.dir/topk.cc.o" "gcc" "src/core/CMakeFiles/simj_core.dir/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ged/CMakeFiles/simj_ged.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/simj_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/simj_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/simj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
