file(REMOVE_RECURSE
  "libsimj_core.a"
)
