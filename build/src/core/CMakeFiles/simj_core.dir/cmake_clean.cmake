file(REMOVE_RECURSE
  "CMakeFiles/simj_core.dir/groups.cc.o"
  "CMakeFiles/simj_core.dir/groups.cc.o.d"
  "CMakeFiles/simj_core.dir/index.cc.o"
  "CMakeFiles/simj_core.dir/index.cc.o.d"
  "CMakeFiles/simj_core.dir/join.cc.o"
  "CMakeFiles/simj_core.dir/join.cc.o.d"
  "CMakeFiles/simj_core.dir/similarity.cc.o"
  "CMakeFiles/simj_core.dir/similarity.cc.o.d"
  "CMakeFiles/simj_core.dir/topk.cc.o"
  "CMakeFiles/simj_core.dir/topk.cc.o.d"
  "libsimj_core.a"
  "libsimj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
