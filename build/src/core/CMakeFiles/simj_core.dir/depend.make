# Empty dependencies file for simj_core.
# This may be replaced when dependencies are built.
