
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/dependency.cc" "src/nlp/CMakeFiles/simj_nlp.dir/dependency.cc.o" "gcc" "src/nlp/CMakeFiles/simj_nlp.dir/dependency.cc.o.d"
  "/root/repo/src/nlp/lexicon.cc" "src/nlp/CMakeFiles/simj_nlp.dir/lexicon.cc.o" "gcc" "src/nlp/CMakeFiles/simj_nlp.dir/lexicon.cc.o.d"
  "/root/repo/src/nlp/semantic_graph.cc" "src/nlp/CMakeFiles/simj_nlp.dir/semantic_graph.cc.o" "gcc" "src/nlp/CMakeFiles/simj_nlp.dir/semantic_graph.cc.o.d"
  "/root/repo/src/nlp/uncertain_builder.cc" "src/nlp/CMakeFiles/simj_nlp.dir/uncertain_builder.cc.o" "gcc" "src/nlp/CMakeFiles/simj_nlp.dir/uncertain_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/simj_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/simj_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/simj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
