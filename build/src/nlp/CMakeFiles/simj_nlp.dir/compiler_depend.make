# Empty compiler generated dependencies file for simj_nlp.
# This may be replaced when dependencies are built.
