file(REMOVE_RECURSE
  "CMakeFiles/simj_nlp.dir/dependency.cc.o"
  "CMakeFiles/simj_nlp.dir/dependency.cc.o.d"
  "CMakeFiles/simj_nlp.dir/lexicon.cc.o"
  "CMakeFiles/simj_nlp.dir/lexicon.cc.o.d"
  "CMakeFiles/simj_nlp.dir/semantic_graph.cc.o"
  "CMakeFiles/simj_nlp.dir/semantic_graph.cc.o.d"
  "CMakeFiles/simj_nlp.dir/uncertain_builder.cc.o"
  "CMakeFiles/simj_nlp.dir/uncertain_builder.cc.o.d"
  "libsimj_nlp.a"
  "libsimj_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simj_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
