file(REMOVE_RECURSE
  "libsimj_nlp.a"
)
