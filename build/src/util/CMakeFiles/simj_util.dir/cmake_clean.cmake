file(REMOVE_RECURSE
  "CMakeFiles/simj_util.dir/flags.cc.o"
  "CMakeFiles/simj_util.dir/flags.cc.o.d"
  "CMakeFiles/simj_util.dir/rng.cc.o"
  "CMakeFiles/simj_util.dir/rng.cc.o.d"
  "CMakeFiles/simj_util.dir/status.cc.o"
  "CMakeFiles/simj_util.dir/status.cc.o.d"
  "CMakeFiles/simj_util.dir/strings.cc.o"
  "CMakeFiles/simj_util.dir/strings.cc.o.d"
  "libsimj_util.a"
  "libsimj_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simj_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
