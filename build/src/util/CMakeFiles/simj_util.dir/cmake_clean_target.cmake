file(REMOVE_RECURSE
  "libsimj_util.a"
)
