# Empty compiler generated dependencies file for simj_util.
# This may be replaced when dependencies are built.
