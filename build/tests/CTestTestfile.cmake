# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(matching_test "/root/repo/build/tests/matching_test")
set_tests_properties(matching_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ged_test "/root/repo/build/tests/ged_test")
set_tests_properties(ged_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bounds_test "/root/repo/build/tests/bounds_test")
set_tests_properties(bounds_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(similarity_test "/root/repo/build/tests/similarity_test")
set_tests_properties(similarity_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(join_test "/root/repo/build/tests/join_test")
set_tests_properties(join_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(filters_test "/root/repo/build/tests/filters_test")
set_tests_properties(filters_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rdf_test "/root/repo/build/tests/rdf_test")
set_tests_properties(rdf_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sparql_test "/root/repo/build/tests/sparql_test")
set_tests_properties(sparql_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nlp_test "/root/repo/build/tests/nlp_test")
set_tests_properties(nlp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(templates_test "/root/repo/build/tests/templates_test")
set_tests_properties(templates_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pipeline_test "/root/repo/build/tests/pipeline_test")
set_tests_properties(pipeline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;20;simj_add_test;/root/repo/tests/CMakeLists.txt;0;")
