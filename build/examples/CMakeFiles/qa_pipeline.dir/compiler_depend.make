# Empty compiler generated dependencies file for qa_pipeline.
# This may be replaced when dependencies are built.
