file(REMOVE_RECURSE
  "CMakeFiles/qa_pipeline.dir/qa_pipeline.cpp.o"
  "CMakeFiles/qa_pipeline.dir/qa_pipeline.cpp.o.d"
  "qa_pipeline"
  "qa_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
