file(REMOVE_RECURSE
  "CMakeFiles/template_generation.dir/template_generation.cpp.o"
  "CMakeFiles/template_generation.dir/template_generation.cpp.o.d"
  "template_generation"
  "template_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
