# Empty compiler generated dependencies file for template_generation.
# This may be replaced when dependencies are built.
