# Empty dependencies file for uncertain_graph_tour.
# This may be replaced when dependencies are built.
