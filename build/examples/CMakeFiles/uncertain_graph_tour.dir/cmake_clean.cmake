file(REMOVE_RECURSE
  "CMakeFiles/uncertain_graph_tour.dir/uncertain_graph_tour.cpp.o"
  "CMakeFiles/uncertain_graph_tour.dir/uncertain_graph_tour.cpp.o.d"
  "uncertain_graph_tour"
  "uncertain_graph_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncertain_graph_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
