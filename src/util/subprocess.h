// Child-process plumbing for the multi-process sharded join: anonymous
// pipes, a length-prefixed frame protocol, and a fork-based child runner.
//
// This is the ONLY translation unit in the tree allowed to issue process
// syscalls (fork/pipe/waitpid/kill) — tools/simj_lint.py's
// no-raw-subprocess rule confines them here, mirroring the no-raw-sockets
// rule that confines network I/O to util/statusz.cc. Everything above this
// layer (src/dist) speaks Status and frames, never file descriptors
// directly acquired from the OS.
//
// Frame protocol: every message on a pipe is a 4-byte little-endian
// unsigned length followed by that many payload bytes. ReadFrame
// distinguishes clean EOF (the peer closed the pipe between frames,
// StatusCode::kNotFound) from a truncated frame or I/O error
// (StatusCode::kInternal), because the sharded-join coordinator treats the
// former as "worker died, requeue its shard" and the latter identically —
// but the distinction keeps error messages honest.
//
// Children are created with fork() WITHOUT exec: the child inherits the
// parent's address space — in particular the already-built join workload
// (graphs, label dictionary) — so the shard protocol only ever carries
// pair indices and results, never graphs. The child runs a caller-provided
// function against its inherited memory snapshot and _exit()s; it must not
// touch parent-held locks, so dist workers sanitize their parameters
// (logging, watchdogs, progress off) before evaluating anything in a child.

#ifndef SIMJ_UTIL_SUBPROCESS_H_
#define SIMJ_UTIL_SUBPROCESS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/status.h"

namespace simj::subprocess {

// Upper bound on a single frame payload; a length prefix beyond this is
// treated as protocol corruption rather than an allocation request.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

// Appends/reads one length-prefixed frame. Blocking; EINTR is retried.
// WriteFrame fails with kInternal when the pipe is closed (EPIPE surfaces
// as a Status, not a signal: the caller is expected to have SIGPIPE
// ignored, which ChildProcess::Spawn arranges process-wide).
[[nodiscard]] Status WriteFrame(int fd, const std::string& payload);

// Reads one frame. kNotFound = clean EOF at a frame boundary (peer gone);
// kInternal = truncated frame, oversized length prefix, or read error.
[[nodiscard]] StatusOr<std::string> ReadFrame(int fd);

// A forked child running `child_main(request_fd, response_fd)` over a pair
// of anonymous pipes. The parent writes requests to request_fd() and reads
// responses from response_fd(); the child sees the opposite ends. The
// child's return value becomes its exit status.
class ChildProcess {
 public:
  ChildProcess() = default;
  ~ChildProcess();  // closes fds; reaps the child if still running

  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  // Forks a child that runs `child_main` and _exit()s with its return
  // value. Installs SIG_IGN for SIGPIPE process-wide (once) so a dead
  // peer surfaces as a Status from WriteFrame instead of killing the
  // process. The child closes every parent-side pipe end before running.
  [[nodiscard]] static StatusOr<ChildProcess> Spawn(
      const std::function<int(int request_fd, int response_fd)>& child_main);

  [[nodiscard]] bool running() const { return pid_ > 0; }
  [[nodiscard]] int pid() const { return pid_; }

  // Parent-side pipe ends.
  [[nodiscard]] int request_fd() const { return request_write_fd_; }
  [[nodiscard]] int response_fd() const { return response_read_fd_; }

  // SIGKILLs the child (no-op when already reaped). Used by the fault
  // injector to simulate a worker dying mid-shard, and by Shutdown paths.
  void Kill();

  // Blocks until the child exits and reaps it. Returns the exit status
  // (or the negated signal number when signalled); 0 when already reaped.
  int Wait();

 private:
  void CloseFds();

  int pid_ = -1;
  int request_write_fd_ = -1;  // parent writes requests here
  int response_read_fd_ = -1;  // parent reads responses here
};

}  // namespace simj::subprocess

#endif  // SIMJ_UTIL_SUBPROCESS_H_
