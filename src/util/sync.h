// Capability-annotated synchronization primitives: the project's only
// sanctioned mutex and condition variable (DESIGN.md §11).
//
// simj::Mutex wraps std::mutex and carries Clang's thread-safety
// capability attributes, so a Clang build with -Wthread-safety (wired up
// in CMakeLists.txt, errors under SIMJ_WERROR) statically checks that
//
//   * every field annotated SIMJ_GUARDED_BY(mu) is only touched while mu
//     is held,
//   * functions annotated SIMJ_REQUIRES(mu) are only called with mu held,
//     and SIMJ_EXCLUDES(mu) ones without it,
//   * a MutexLock actually releases what it acquired (scoped capability).
//
// On GCC (the default CI toolchain) every annotation macro expands to
// nothing and the wrappers are zero-cost forwarding shims around
// std::mutex / std::condition_variable — same codegen, no behavior
// change. The annotations are still load-bearing there: tools/lock_order.py
// parses Mutex declarations and MutexLock acquisition sites out of the
// source to build the static lock-order graph and fail CI on cycles.
//
// Conventions (enforced by review + DESIGN.md §11, checked by Clang when
// available):
//
//   * no naked std::mutex / std::condition_variable in src/ — always the
//     wrappers, so every lock is visible to the analyses;
//   * every field a Mutex protects carries SIMJ_GUARDED_BY(mu_) at the
//     declaration;
//   * dynamic lock edges the static extractor cannot see (virtual calls,
//     std::function callbacks) are declared next to the call site with a
//     `// simj-lock-order: A -> B` comment (see tools/lock_order.py).

#ifndef SIMJ_UTIL_SYNC_H_
#define SIMJ_UTIL_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <utility>

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros (no-ops on other compilers).
// Spellings follow the Clang documentation's canonical mutex.h.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define SIMJ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SIMJ_THREAD_ANNOTATION(x)  // no-op: GCC ignores the analysis
#endif

#define SIMJ_CAPABILITY(x) SIMJ_THREAD_ANNOTATION(capability(x))
#define SIMJ_SCOPED_CAPABILITY SIMJ_THREAD_ANNOTATION(scoped_lockable)
#define SIMJ_GUARDED_BY(x) SIMJ_THREAD_ANNOTATION(guarded_by(x))
#define SIMJ_PT_GUARDED_BY(x) SIMJ_THREAD_ANNOTATION(pt_guarded_by(x))
#define SIMJ_ACQUIRED_BEFORE(...) \
  SIMJ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SIMJ_ACQUIRED_AFTER(...) \
  SIMJ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define SIMJ_REQUIRES(...) \
  SIMJ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SIMJ_ACQUIRE(...) \
  SIMJ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SIMJ_RELEASE(...) \
  SIMJ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SIMJ_TRY_ACQUIRE(...) \
  SIMJ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SIMJ_EXCLUDES(...) SIMJ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SIMJ_ASSERT_CAPABILITY(x) \
  SIMJ_THREAD_ANNOTATION(assert_capability(x))
#define SIMJ_RETURN_CAPABILITY(x) SIMJ_THREAD_ANNOTATION(lock_returned(x))
#define SIMJ_NO_THREAD_SAFETY_ANALYSIS \
  SIMJ_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace simj {

// A std::mutex that Clang's analysis (and tools/lock_order.py) can see.
// Non-reentrant, non-timed — exactly the subset the codebase uses. Prefer
// MutexLock over manual Lock()/Unlock(); the scoped form is what both
// analyses understand best.
class SIMJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SIMJ_ACQUIRE() { mu_.lock(); }
  void Unlock() SIMJ_RELEASE() { mu_.unlock(); }
  bool TryLock() SIMJ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock — the project's replacement for std::lock_guard/unique_lock.
class SIMJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SIMJ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SIMJ_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to simj::Mutex. Wait() takes the Mutex (not the
// MutexLock) so the REQUIRES annotation names the capability being
// released and reacquired — the caller must already hold it via a
// MutexLock in the same scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and reacquires `mu` before
  // returning. Spurious wakeups happen; re-check the predicate.
  void Wait(Mutex& mu) SIMJ_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  // Waits until pred() is true. pred runs with `mu` held.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) SIMJ_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace simj

#endif  // SIMJ_UTIL_SYNC_H_
