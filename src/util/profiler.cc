#include "util/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <utility>

#include "util/log.h"
#include "util/sync.h"

// Linux delivers SIGEV_THREAD_ID timer expirations to one specific thread;
// glibc only started exposing the sigevent spellings recently, so provide
// the (stable, kernel-ABI) fallbacks for older headers.
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

// The profiler's SIGPROF handler calls backtrace(), whose unwinder TSan
// does not consider signal-safe; cluster_sim_test's process transport
// self-disables under TSan for the same class of reason. The rest of the
// profiler (schema emission, batch merging) stays live.
#if defined(__SANITIZE_THREAD__)
#define SIMJ_PROFILER_UNDER_TSAN 1
#endif
#if !defined(SIMJ_PROFILER_UNDER_TSAN) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SIMJ_PROFILER_UNDER_TSAN 1
#endif
#endif

namespace simj::prof {

namespace {

int ThisTid() { return static_cast<int>(::syscall(SYS_gettid)); }

// Linux encodes "the scheduling CPU-time clock of thread `tid`" as
// ((~tid) << 3) | 6 (CPUCLOCK_SCHED with the per-thread bit) — the same
// value pthread_getcpuclockid computes. Built from the raw tid because
// StartProfiling arms timers for *other* threads, where no pthread_t is at
// hand. timer_create fails cleanly for a tid that no longer exists, which
// is how stale registrations are pruned.
clockid_t ThreadCpuClockId(int tid) {
  return static_cast<clockid_t>(
      ((~static_cast<unsigned int>(tid)) << 3) | 6u);
}

// One raw stack sample. `depth` counts valid leading entries of `frames`
// (leaf-first, as backtrace() returns them).
struct RawSample {
  int32_t depth = 0;
  void* frames[kMaxFrames];
};

// Per-thread sample ring, shared lock-free between the SIGPROF handler
// (producer, on the sampled thread) and a draining thread (consumer, under
// the registry mutex). write_pos advances with release order only after
// the sample is fully written; drains read it with acquire, so a drain
// never observes a half-written sample. Overflow is counted, not wrapped:
// a capture keeps its oldest samples and reports exactly what it lost.
struct ThreadSlot {
  std::atomic<int> tid{0};  // 0 = free; claimed by CAS (handler or drainer)
  std::atomic<uint32_t> write_pos{0};
  std::atomic<uint32_t> read_pos{0};
  std::atomic<int64_t> dropped{0};
  std::atomic<int64_t> truncated{0};
  RawSample* ring = nullptr;  // [kRingCapacity]; allocated before arming

  // Normal-context bookkeeping (registry mutex): the thread's timer and
  // the counter baselines that turn the cumulative atomics into per-drain
  // deltas (each drop/truncation is reported by exactly one batch).
  timer_t timer{};
  bool timer_armed = false;
  int64_t base_dropped = 0;
  int64_t base_truncated = 0;
  int64_t shipped_dropped = 0;
  int64_t shipped_truncated = 0;
};

ThreadSlot g_slots[kMaxThreads];

// Handler-visible arming state. g_armed is the handler's gate: stored with
// release order after the rings and handler are set up, so an acquire load
// in the handler sees complete state. g_armed_pid distinguishes a fork()ed
// child inheriting the parent's flags from a genuinely armed process
// (POSIX timers do not survive fork, so the child's state is stale).
std::atomic<bool> g_armed{false};
std::atomic<int> g_armed_pid{0};
std::atomic<int> g_active_hz{0};
// Samples that arrived on a thread no slot could be claimed for (all
// kMaxThreads slots taken); folded into the local section's drop count.
std::atomic<int64_t> g_unattributed{0};

void SigProfHandler(int /*signo*/) {
  // Async-signal-safe only (tools/simj_lint.py signal-handler-safety):
  // raw syscalls, atomics with explicit orders, backtrace(). No
  // allocation, no locks, no symbolization — that all happens at drain
  // time (DESIGN.md §12).
  const int saved_errno = errno;
  if (g_armed.load(std::memory_order_acquire)) {
    const int tid = static_cast<int>(::syscall(SYS_gettid));
    ThreadSlot* slot = nullptr;
    for (int i = 0; i < kMaxThreads; ++i) {
      int claimed = g_slots[i].tid.load(std::memory_order_acquire);
      if (claimed == tid) {
        slot = &g_slots[i];
        break;
      }
      if (claimed == 0 &&
          g_slots[i].tid.compare_exchange_strong(
              claimed, tid, std::memory_order_acq_rel)) {
        slot = &g_slots[i];
        break;
      }
    }
    if (slot == nullptr || slot->ring == nullptr) {
      g_unattributed.fetch_add(1, std::memory_order_relaxed);
    } else {
      const uint32_t w = slot->write_pos.load(std::memory_order_relaxed);
      const uint32_t r = slot->read_pos.load(std::memory_order_acquire);
      if (w - r >= static_cast<uint32_t>(kRingCapacity)) {
        slot->dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        RawSample& sample =
            slot->ring[w % static_cast<uint32_t>(kRingCapacity)];
        sample.depth = ::backtrace(sample.frames, kMaxFrames);
        if (sample.depth >= kMaxFrames) {
          slot->truncated.fetch_add(1, std::memory_order_relaxed);
        }
        slot->write_pos.store(w + 1, std::memory_order_release);
      }
    }
  }
  errno = saved_errno;
}

struct Registry {
  Mutex mu;
  std::map<int, std::string> names SIMJ_GUARDED_BY(mu);  // tid -> name
  std::map<std::string, SampleBatch> remote SIMJ_GUARDED_BY(mu);
  std::map<const void*, std::string> symbols SIMJ_GUARDED_BY(mu);
  bool rings_allocated SIMJ_GUARDED_BY(mu) = false;
  bool handler_installed SIMJ_GUARDED_BY(mu) = false;
  int hz SIMJ_GUARDED_BY(mu) = 0;
  std::chrono::steady_clock::time_point start SIMJ_GUARDED_BY(mu);
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();  // simj-lint: allow(new) leaky singleton
  return *registry;
}

bool ArmedInThisProcess() {
  return g_armed.load(std::memory_order_acquire) &&
         g_armed_pid.load(std::memory_order_relaxed) ==
             static_cast<int>(::getpid());
}

// Finds (or CAS-claims) the slot for `tid`. nullptr when all slots are
// taken — that thread simply goes unsampled (no timer is armed for it).
ThreadSlot* ClaimSlot(int tid) {
  for (int i = 0; i < kMaxThreads; ++i) {
    int claimed = g_slots[i].tid.load(std::memory_order_acquire);
    if (claimed == tid) return &g_slots[i];
    if (claimed == 0 &&
        g_slots[i].tid.compare_exchange_strong(claimed, tid,
                                               std::memory_order_acq_rel)) {
      return &g_slots[i];
    }
  }
  return nullptr;
}

bool ArmTimerLocked(Registry& reg, ThreadSlot* slot, int tid)
    SIMJ_REQUIRES(reg.mu) {
  if (slot->timer_armed) return true;
  struct sigevent sev {};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = tid;
  timer_t timer{};
  if (::timer_create(ThreadCpuClockId(tid), &sev, &timer) != 0) {
    return false;  // typically a thread that has already exited
  }
  const long period_ns =
      std::max<long>(1000000000L / std::max(reg.hz, 1), 100000L);
  itimerspec spec{};
  spec.it_interval.tv_sec = period_ns / 1000000000L;
  spec.it_interval.tv_nsec = period_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (::timer_settime(timer, 0, &spec, nullptr) != 0) {
    ::timer_delete(timer);
    return false;
  }
  slot->timer = timer;
  slot->timer_armed = true;
  return true;
}

// A fork()ed child inherits the parent's flags, rings and registrations,
// but none of its timers or threads: every slot tid is stale. Reset to a
// blank, disarmed profiler so the child can arm itself cleanly.
void ResetAfterForkLocked(Registry& reg) SIMJ_REQUIRES(reg.mu) {
  g_armed.store(false, std::memory_order_release);
  g_active_hz.store(0, std::memory_order_relaxed);
  g_armed_pid.store(0, std::memory_order_relaxed);
  g_unattributed.store(0, std::memory_order_relaxed);
  for (ThreadSlot& slot : g_slots) {
    slot.tid.store(0, std::memory_order_release);
    slot.write_pos.store(0, std::memory_order_relaxed);
    slot.read_pos.store(0, std::memory_order_relaxed);
    slot.dropped.store(0, std::memory_order_relaxed);
    slot.truncated.store(0, std::memory_order_relaxed);
    slot.timer_armed = false;  // the parent's timer ids mean nothing here
    slot.base_dropped = slot.base_truncated = 0;
    slot.shipped_dropped = slot.shipped_truncated = 0;
  }
  reg.names.clear();
  reg.remote.clear();
}

// Rewrites a symbol or thread name so it cannot break the folded-stack
// line structure (space separates the count, semicolon separates frames).
std::string CleanFrameToken(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == ' ') {
      // Demangled signatures put a space after each comma; dropping it
      // keeps "Foo(int, long)" readable as "Foo(int,long)".
      continue;
    }
    out.push_back(c == ';' ? ':' : (c == '\n' ? '_' : c));
  }
  return out.empty() ? std::string("[unknown]") : out;
}

const std::string& SymbolizeLocked(Registry& reg, const void* addr)
    SIMJ_REQUIRES(reg.mu) {
  auto it = reg.symbols.find(addr);
  if (it != reg.symbols.end()) return it->second;
  std::string name;
  Dl_info info{};
  if (::dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled
                                                 : info.dli_sname;
    std::free(demangled);
  } else if (info.dli_fname != nullptr && info.dli_fbase != nullptr) {
    // No symbol (static function, stripped object): module + offset keeps
    // the frame stable enough to aggregate and diff.
    const char* base = std::strrchr(info.dli_fname, '/');
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer), "%s+0x%zx",
                  base != nullptr ? base + 1 : info.dli_fname,
                  reinterpret_cast<size_t>(addr) -
                      reinterpret_cast<size_t>(info.dli_fbase));
    name = buffer;
  } else {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "0x%zx",
                  reinterpret_cast<size_t>(addr));
    name = buffer;
  }
  return reg.symbols[addr] = CleanFrameToken(name);
}

std::string ThreadLabelLocked(Registry& reg, int tid) SIMJ_REQUIRES(reg.mu) {
  auto it = reg.names.find(tid);
  if (it != reg.names.end()) return CleanFrameToken(it->second);
  return "tid-" + std::to_string(tid);
}

// Drains one slot's pending samples into `batch` (symbolized, folded per
// stack) and ships the slot's untold drop/truncation deltas with them.
void DrainSlotLocked(Registry& reg, ThreadSlot& slot, SampleBatch* batch)
    SIMJ_REQUIRES(reg.mu) {
  const int tid = slot.tid.load(std::memory_order_acquire);
  if (tid == 0 || slot.ring == nullptr) return;
  const uint32_t w = slot.write_pos.load(std::memory_order_acquire);
  uint32_t r = slot.read_pos.load(std::memory_order_relaxed);
  const std::string thread_label = ThreadLabelLocked(reg, tid);
  std::map<std::vector<std::string>, int64_t> folded;
  int64_t drained = 0;
  for (; r != w; ++r) {
    const RawSample& sample =
        slot.ring[r % static_cast<uint32_t>(kRingCapacity)];
    const int depth = std::min<int>(sample.depth, kMaxFrames);
    std::vector<std::string> leaf_first;
    leaf_first.reserve(static_cast<size_t>(depth));
    for (int f = 0; f < depth; ++f) {
      leaf_first.push_back(SymbolizeLocked(reg, sample.frames[f]));
    }
    // Strip the profiler's own frames. backtrace() inside a signal handler
    // always yields [handler, kernel signal trampoline, interrupted PC,
    // ...] leaf-first on Linux, so drop the two leading frames by position
    // (the handler has internal linkage and rarely symbolizes by name),
    // plus a defensive check in case the trampoline unwinds to two frames.
    size_t begin = std::min<size_t>(2, leaf_first.size());
    if (begin < leaf_first.size() &&
        leaf_first[begin].find("__restore") != std::string::npos) {
      ++begin;
    }
    std::vector<std::string> root_first(leaf_first.rbegin(),
                                        leaf_first.rend() -
                                            static_cast<long>(begin));
    if (root_first.empty()) root_first.push_back("[truncated]");
    folded[std::move(root_first)] += 1;
    ++drained;
  }
  slot.read_pos.store(w, std::memory_order_release);
  batch->samples += drained;
  for (auto& [frames, count] : folded) {
    FoldedStack stack;
    stack.thread = thread_label;
    stack.frames = frames;
    stack.count = count;
    batch->stacks.push_back(std::move(stack));
  }
  const int64_t total_dropped =
      slot.dropped.load(std::memory_order_relaxed) - slot.base_dropped;
  const int64_t total_truncated =
      slot.truncated.load(std::memory_order_relaxed) - slot.base_truncated;
  batch->dropped += total_dropped - slot.shipped_dropped;
  batch->truncated += total_truncated - slot.shipped_truncated;
  slot.shipped_dropped = total_dropped;
  slot.shipped_truncated = total_truncated;
}

void DisarmTimersLocked(Registry& reg) SIMJ_REQUIRES(reg.mu) {
  (void)reg;
  for (ThreadSlot& slot : g_slots) {
    if (slot.timer_armed) {
      ::timer_delete(slot.timer);
      slot.timer_armed = false;
    }
  }
}

std::string FormatFixed3(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

bool StackLess(const FoldedStack& a, const FoldedStack& b) {
  if (a.thread != b.thread) return a.thread < b.thread;
  return a.frames < b.frames;
}

}  // namespace

void SampleBatch::Normalize() {
  std::map<std::pair<std::string, std::vector<std::string>>, int64_t> agg;
  for (FoldedStack& stack : stacks) {
    agg[{std::move(stack.thread), std::move(stack.frames)}] += stack.count;
  }
  stacks.clear();
  stacks.reserve(agg.size());
  for (auto& [key, count] : agg) {
    FoldedStack stack;
    stack.thread = key.first;
    stack.frames = key.second;
    stack.count = count;
    stacks.push_back(std::move(stack));
  }
}

void SampleBatch::MergeFrom(const SampleBatch& other) {
  samples += other.samples;
  dropped += other.dropped;
  truncated += other.truncated;
  stacks.insert(stacks.end(), other.stacks.begin(), other.stacks.end());
  Normalize();
}

int64_t Profile::TotalSamples() const {
  int64_t total = 0;
  for (const ProfileSection& section : sections) total += section.batch.samples;
  return total;
}

int64_t Profile::TotalDropped() const {
  int64_t total = 0;
  for (const ProfileSection& section : sections) total += section.batch.dropped;
  return total;
}

int64_t Profile::TotalTruncated() const {
  int64_t total = 0;
  for (const ProfileSection& section : sections) {
    total += section.batch.truncated;
  }
  return total;
}

Status StartProfiling(const ProfileOptions& options) {
  if (options.hz < 1 || options.hz > 10000) {
    return InvalidArgumentError("profiler hz out of range [1, 10000]: " +
                                std::to_string(options.hz));
  }
#ifdef SIMJ_PROFILER_UNDER_TSAN
  return FailedPreconditionError(
      "profiler disabled under ThreadSanitizer (backtrace() in a signal "
      "handler is not TSan-safe)");
#else
  Registry& reg = GlobalRegistry();
  MutexLock lock(reg.mu);
  const int pid = static_cast<int>(::getpid());
  if (g_armed.load(std::memory_order_acquire)) {
    if (g_armed_pid.load(std::memory_order_relaxed) == pid) {
      return FailedPreconditionError("profiler already armed");
    }
    ResetAfterForkLocked(reg);  // stale state inherited across fork()
  }
  if (!reg.rings_allocated) {
    for (ThreadSlot& slot : g_slots) {
      slot.ring = new RawSample[kRingCapacity];  // simj-lint: allow(new) preallocated rings, never freed
    }
    reg.rings_allocated = true;
  }
  // Force the unwinder's lazy initialization (it may allocate on first
  // use) outside signal context, before any handler can run.
  void* warmup[4];
  (void)::backtrace(warmup, 4);
  if (!reg.handler_installed) {
    struct sigaction sa {};
    sa.sa_handler = &SigProfHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    if (::sigaction(SIGPROF, &sa, nullptr) != 0) {
      return InternalError(std::string("profiler: sigaction(SIGPROF): ") +
                           std::strerror(errno));
    }
    reg.handler_installed = true;
  }
  reg.hz = options.hz;
  // The arming thread is always covered, named or not.
  const int self = ThisTid();
  (void)ClaimSlot(self);
  // Fresh capture: discard inter-capture residue and re-baseline the
  // cumulative loss counters so this capture reports only its own.
  for (ThreadSlot& slot : g_slots) {
    if (slot.tid.load(std::memory_order_acquire) == 0) continue;
    slot.read_pos.store(slot.write_pos.load(std::memory_order_relaxed),
                        std::memory_order_release);
    slot.base_dropped = slot.dropped.load(std::memory_order_relaxed);
    slot.base_truncated = slot.truncated.load(std::memory_order_relaxed);
    slot.shipped_dropped = slot.shipped_truncated = 0;
  }
  g_unattributed.store(0, std::memory_order_relaxed);
  reg.start = std::chrono::steady_clock::now();
  g_armed_pid.store(pid, std::memory_order_relaxed);
  g_active_hz.store(options.hz, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
  // One CPU-time timer per registered live thread. Registered tids whose
  // thread has exited fail timer_create and are pruned.
  int armed_timers = 0;
  for (auto it = reg.names.begin(); it != reg.names.end();) {
    ThreadSlot* slot = ClaimSlot(it->first);
    if (slot != nullptr && ArmTimerLocked(reg, slot, it->first)) {
      ++armed_timers;
      ++it;
    } else if (slot != nullptr && it->first != self) {
      slot->tid.store(0, std::memory_order_release);  // dead thread: recycle
      it = reg.names.erase(it);
    } else {
      ++it;
    }
  }
  ThreadSlot* self_slot = ClaimSlot(self);
  if (self_slot != nullptr && ArmTimerLocked(reg, self_slot, self)) {
    // Counted above when `self` was registered by name; arming twice is a
    // no-op thanks to the timer_armed flag.
    if (reg.names.find(self) == reg.names.end()) ++armed_timers;
  }
  if (armed_timers == 0) {
    DisarmTimersLocked(reg);
    g_armed.store(false, std::memory_order_release);
    g_active_hz.store(0, std::memory_order_relaxed);
    return InternalError("profiler: could not arm any per-thread CPU timer");
  }
  return Status::Ok();
#endif
}

StatusOr<Profile> StopProfiling() {
  Registry& reg = GlobalRegistry();
  MutexLock lock(reg.mu);
  if (!g_armed.load(std::memory_order_acquire) ||
      g_armed_pid.load(std::memory_order_relaxed) !=
          static_cast<int>(::getpid())) {
    return FailedPreconditionError("profiler not armed in this process");
  }
  // Gate first (a handler mid-flight past the gate finishes writing into
  // its ring via atomics; its sample is simply discarded by the next
  // Start), then delete the timers.
  g_armed.store(false, std::memory_order_release);
  g_active_hz.store(0, std::memory_order_relaxed);
  DisarmTimersLocked(reg);

  Profile profile;
  profile.hz = reg.hz;
  profile.period_us = reg.hz > 0 ? 1e6 / reg.hz : 0.0;
  profile.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    reg.start)
          .count();

  SampleBatch local;
  for (ThreadSlot& slot : g_slots) {
    DrainSlotLocked(reg, slot, &local);
  }
  local.dropped += g_unattributed.load(std::memory_order_relaxed);
  g_unattributed.store(0, std::memory_order_relaxed);
  local.Normalize();
  profile.sections.push_back({"coordinator", std::move(local)});
  for (auto& [label, batch] : reg.remote) {
    batch.Normalize();
    profile.sections.push_back({label, std::move(batch)});
  }
  reg.remote.clear();
  std::sort(profile.sections.begin(), profile.sections.end(),
            [](const ProfileSection& a, const ProfileSection& b) {
              return a.label < b.label;
            });
  return profile;
}

bool ProfilingActive() { return ArmedInThisProcess(); }

int ActiveHz() {
  return ArmedInThisProcess() ? g_active_hz.load(std::memory_order_relaxed)
                              : 0;
}

StatusOr<Profile> CaptureProfile(double seconds, int hz) {
  Status started = StartProfiling(ProfileOptions{hz});
  if (!started.ok()) return started;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(std::clamp(seconds, 0.01, 600.0)));
  return StopProfiling();
}

void NoteThisThread(const std::string& name) {
  Registry& reg = GlobalRegistry();
  const int tid = ThisTid();
  MutexLock lock(reg.mu);
  reg.names[tid] = name;
  if (g_armed.load(std::memory_order_acquire) &&
      g_armed_pid.load(std::memory_order_relaxed) ==
          static_cast<int>(::getpid())) {
    // A capture is running: cover this thread from now on.
    ThreadSlot* slot = ClaimSlot(tid);
    if (slot != nullptr && !ArmTimerLocked(reg, slot, tid)) {
      SIMJ_LOG(WARN) << "profiler: cannot arm timer for thread '" << name
                     << "' (tid " << tid << ")";
    }
  }
}

SampleBatch DrainThisThreadBatch() {
  SampleBatch batch;
  if (!ArmedInThisProcess()) return batch;
  Registry& reg = GlobalRegistry();
  const int tid = ThisTid();
  MutexLock lock(reg.mu);
  for (ThreadSlot& slot : g_slots) {
    if (slot.tid.load(std::memory_order_acquire) == tid) {
      DrainSlotLocked(reg, slot, &batch);
      break;
    }
  }
  batch.Normalize();
  return batch;
}

SampleBatch DrainAllThreadsBatch() {
  SampleBatch batch;
  if (!ArmedInThisProcess()) return batch;
  Registry& reg = GlobalRegistry();
  MutexLock lock(reg.mu);
  for (ThreadSlot& slot : g_slots) {
    DrainSlotLocked(reg, slot, &batch);
  }
  batch.Normalize();
  return batch;
}

void AccumulateRemoteSection(const std::string& label,
                             const SampleBatch& batch) {
  if (batch.empty()) return;
  Registry& reg = GlobalRegistry();
  MutexLock lock(reg.mu);
  reg.remote[label].MergeFrom(batch);
}

std::string ProfileJson(const Profile& profile) {
  // Deterministic: fixed key order, %.3f floats, sections/stacks sorted.
  std::vector<ProfileSection> sections = profile.sections;
  std::sort(sections.begin(), sections.end(),
            [](const ProfileSection& a, const ProfileSection& b) {
              return a.label < b.label;
            });
  std::string out = "{\"schema\":\"simj_profile_v1\",\"hz\":";
  out += std::to_string(profile.hz);
  out += ",\"period_us\":" + FormatFixed3(profile.period_us);
  out += ",\"duration_seconds\":" + FormatFixed3(profile.duration_seconds);
  out += ",\"samples\":" + std::to_string(profile.TotalSamples());
  out += ",\"dropped\":" + std::to_string(profile.TotalDropped());
  out += ",\"truncated\":" + std::to_string(profile.TotalTruncated());
  out += ",\"sections\":[";
  bool first_section = true;
  for (const ProfileSection& section : sections) {
    if (!first_section) out += ",";
    first_section = false;
    out += "{\"label\":";
    AppendJsonString(&out, section.label);
    out += ",\"samples\":" + std::to_string(section.batch.samples);
    out += ",\"dropped\":" + std::to_string(section.batch.dropped);
    out += ",\"truncated\":" + std::to_string(section.batch.truncated);
    out += ",\"stacks\":[";
    std::vector<FoldedStack> stacks = section.batch.stacks;
    std::sort(stacks.begin(), stacks.end(), StackLess);
    bool first_stack = true;
    for (const FoldedStack& stack : stacks) {
      if (!first_stack) out += ",";
      first_stack = false;
      out += "{\"thread\":";
      AppendJsonString(&out, stack.thread);
      out += ",\"count\":" + std::to_string(stack.count);
      out += ",\"frames\":[";
      bool first_frame = true;
      for (const std::string& frame : stack.frames) {
        if (!first_frame) out += ",";
        first_frame = false;
        AppendJsonString(&out, frame);
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

std::string FoldedText(const Profile& profile) {
  std::vector<ProfileSection> sections = profile.sections;
  std::sort(sections.begin(), sections.end(),
            [](const ProfileSection& a, const ProfileSection& b) {
              return a.label < b.label;
            });
  std::string out;
  for (const ProfileSection& section : sections) {
    const std::string label = CleanFrameToken(section.label);
    std::vector<FoldedStack> stacks = section.batch.stacks;
    std::sort(stacks.begin(), stacks.end(), StackLess);
    for (const FoldedStack& stack : stacks) {
      out += label;
      out.push_back(';');
      out += CleanFrameToken(stack.thread);
      for (const std::string& frame : stack.frames) {
        out.push_back(';');
        out += CleanFrameToken(frame);
      }
      out.push_back(' ');
      out += std::to_string(stack.count);
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace simj::prof
