#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace simj {

std::vector<std::string> SplitAndTrim(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find(sep, begin);
    if (end == std::string_view::npos) end = text.size();
    std::string_view piece = StripWhitespace(text.substr(begin, end - begin));
    if (!piece.empty()) out.emplace_back(piece);
    begin = end + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t begin = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > begin) out.emplace_back(text.substr(begin, i - begin));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace simj
