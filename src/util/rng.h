// Deterministic, explicitly seeded random number generation used by all
// workload generators and benchmarks. Every generator takes an Rng so runs
// are reproducible end to end.

#ifndef SIMJ_UTIL_RNG_H_
#define SIMJ_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/check.h"

namespace simj {

// Wrapper around std::mt19937_64 with convenience draws.
// Not thread-safe; use one Rng per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    SIMJ_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Index in [0, n) drawn proportionally to `weights` (must be non-empty,
  // non-negative, with positive sum).
  int WeightedIndex(const std::vector<double>& weights);

  // Random probability vector of length n (each entry > 0, sums to 1).
  // `concentration` < 1 skews toward one dominant entry, > 1 flattens.
  std::vector<double> RandomSimplex(int n, double concentration);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (int i = static_cast<int>(items.size()) - 1; i > 0; --i) {
      int j = static_cast<int>(Uniform(0, i));
      std::swap(items[i], items[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace simj

#endif  // SIMJ_UTIL_RNG_H_
