// Embedded live-introspection endpoint: a tiny HTTP/1.0 server on one
// background thread, answering operator GETs while a join runs.
//
//   GET /healthz   JSON liveness probe: {"status":"ok"} or
//                  {"status":"degraded","reason":...} from util/health
//                  (the stall watchdog and the dist coordinator report
//                  degradation there)
//   GET /metricsz  Prometheus text exposition of the metrics registry
//   GET /statusz   JSON: build provenance (git SHA, build type, sanitizers),
//                  uptime, RSS, plus every registered section (the bench
//                  harnesses register the live join-progress section here)
//   GET /tracez    JSON: last-N completed spans per thread, from the
//                  recent-span ring armed in util/trace by Start()
//
// Design constraints (see DESIGN.md "Live introspection"):
//   * handlers only ever READ shared state through the existing
//     merge-on-snapshot paths (Registry::Snapshot, Tracer::RecentSpans,
//     JoinProgress::Snapshot behind a section callback) — the server can
//     never perturb join results, and the join hot path pays at most one
//     relaxed atomic for its existence;
//   * one blocking accept loop on one background thread, HTTP/1.0 with
//     Connection: close — no keep-alive bookkeeping, no thread pool, no
//     third-party dependency;
//   * binds 127.0.0.1 only, and harnesses default the port to "off": this
//     is an operator loopback port, not a service API.
//
// This file is the only place in src/ allowed to touch raw sockets
// (enforced by tools/simj_lint.py, rule no-raw-sockets).

#ifndef SIMJ_UTIL_STATUSZ_H_
#define SIMJ_UTIL_STATUSZ_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace simj::statusz {

// One named JSON block spliced into the /statusz document. The provider is
// called on the server thread per request and must return a complete JSON
// value; it must only read snapshots (never block on join-side locks).
struct Section {
  std::string name;
  std::function<std::string()> json;
};

// A process-global extra endpoint ("/clusterz"). Layers above util register
// endpoints here (callback inversion: util never links against them); every
// running Server consults the registry after its built-in routes. The body
// provider runs on the server thread and must only read snapshots.
// Registering a path twice replaces the previous handler.
struct Endpoint {
  std::string path;          // must start with '/'
  std::string content_type;  // e.g. "application/json"
  std::function<std::string()> body;
};

void RegisterEndpoint(Endpoint endpoint);

class Server {
 public:
  struct Options {
    // TCP port on 127.0.0.1. 0 asks the kernel for an ephemeral port
    // (tests); the "0 means disabled" convention lives in the harness flag
    // handling, not here.
    int port = 0;
    std::vector<Section> sections;
  };

  Server() = default;
  ~Server() { Stop(); }
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, arms the trace recent-span ring, and spawns the accept
  // thread. Fails (without crashing) when the port is taken.
  Status Start(const Options& options);

  // Wakes the accept loop and joins the thread. Idempotent; called by the
  // destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  // The actually-bound port (resolves port 0). 0 while not running.
  int bound_port() const { return bound_port_; }

 private:
  void AcceptLoop();
  // Routes one parsed request to a handler; returns the full HTTP response.
  std::string HandleRequest(const std::string& method,
                            const std::string& path) const;

  Options options_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  double start_unix_seconds_ = 0.0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

// /statusz body for the given sections; exposed for tests.
std::string StatusBody(const std::vector<Section>& sections,
                       double uptime_seconds);

// /tracez body from the global tracer's recent-span rings; exposed for
// tests.
std::string TracezBody();

}  // namespace simj::statusz

#endif  // SIMJ_UTIL_STATUSZ_H_
