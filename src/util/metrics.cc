#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <set>

namespace simj::metrics {

int ThisThreadShard() {
  static std::atomic<uint32_t> next_slot{0};
  thread_local int slot = static_cast<int>(
      next_slot.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(kShardCount));
  return slot;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string LabeledName(
    const std::string& family,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return family;
  std::string out = family;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += '"';
  }
  out += '}';
  return out;
}

void SplitMetricName(const std::string& name, std::string* family,
                     std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *family = name;
    labels->clear();
    return;
  }
  *family = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

int BucketIndexForSeconds(double seconds) {
  if (!(seconds > 0.0)) return 0;  // also catches NaN
  double nanos = seconds * 1e9;
  if (nanos >= 9.2e18) return kHistogramBuckets - 1;
  int index = std::bit_width(static_cast<uint64_t>(nanos));
  return std::min(index, kHistogramBuckets - 1);
}

double BucketUpperBoundSeconds(int index) {
  if (index >= kHistogramBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(1ULL << index) * 1e-9;
}

double BucketLowerBoundSeconds(int index) {
  if (index <= 0) return 0.0;
  return static_cast<double>(1ULL << (index - 1)) * 1e-9;
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::ResetForTesting() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bucket_counts.assign(kHistogramBuckets, 0);
  int64_t sum_nanos = 0;
  for (const Shard& shard : shards_) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      snapshot.bucket_counts[b] +=
          shard.buckets[b].load(std::memory_order_relaxed);
    }
    sum_nanos += shard.sum_nanos.load(std::memory_order_relaxed);
  }
  for (int64_t c : snapshot.bucket_counts) snapshot.count += c;
  snapshot.sum_seconds = static_cast<double>(sum_nanos) * 1e-9;
  return snapshot;
}

void Histogram::ResetForTesting() {
  for (Shard& shard : shards_) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    shard.sum_nanos.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  int64_t target = static_cast<int64_t>(std::ceil(q * static_cast<double>(count)));
  target = std::clamp<int64_t>(target, 1, count);
  int64_t cumulative = 0;
  for (int b = 0; b < static_cast<int>(bucket_counts.size()); ++b) {
    if (bucket_counts[b] == 0) continue;
    if (cumulative + bucket_counts[b] < target) {
      cumulative += bucket_counts[b];
      continue;
    }
    double lower = BucketLowerBoundSeconds(b);
    double upper = BucketUpperBoundSeconds(b);
    if (std::isinf(upper)) return lower;  // overflow bucket: report its floor
    double fraction = static_cast<double>(target - cumulative) /
                      static_cast<double>(bucket_counts[b]);
    return lower + fraction * (upper - lower);
  }
  return 0.0;
}

MetricsSnapshot MergeSnapshots(const MetricsSnapshot& a,
                               const MetricsSnapshot& b) {
  MetricsSnapshot merged = a;
  for (const auto& [name, value] : b.counters) merged.counters[name] += value;
  for (const auto& [name, value] : b.gauges) {
    // Gauges do not add; the merge keeps the latest non-default value. A
    // default (0.0) on the right never clobbers an observed value on the
    // left, which keeps the merge associative.
    if (value != 0.0 || !merged.gauges.contains(name)) {
      if (value != 0.0) {
        merged.gauges[name] = value;
      } else {
        merged.gauges.try_emplace(name, 0.0);
      }
    }
  }
  for (const auto& [name, hist] : b.histograms) {
    auto it = merged.histograms.find(name);
    if (it == merged.histograms.end()) {
      merged.histograms[name] = hist;
      continue;
    }
    HistogramSnapshot& into = it->second;
    if (into.bucket_counts.size() < hist.bucket_counts.size()) {
      into.bucket_counts.resize(hist.bucket_counts.size(), 0);
    }
    for (size_t i = 0; i < hist.bucket_counts.size(); ++i) {
      into.bucket_counts[i] += hist.bucket_counts[i];
    }
    into.count += hist.count;
    into.sum_seconds += hist.sum_seconds;
  }
  return merged;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // simj-lint: allow(new) leaky singleton
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(name);
  return *slot;
}

MetricsSnapshot Registry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

void Registry::ResetForTesting() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->ResetForTesting();
  for (auto& [name, gauge] : gauges_) gauge->ResetForTesting();
  for (auto& [name, histogram] : histograms_) histogram->ResetForTesting();
}

namespace {

void AppendLine(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendLine(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) out.append(buffer, std::min<size_t>(written, sizeof(buffer) - 1));
}

// Emits `# HELP family text` (when registered) and `# TYPE family kind`
// the first time a family is seen. Label sets of the same family (and a
// bare series alongside labeled ones) share one HELP/TYPE pair, as the
// exposition format requires; HELP precedes TYPE by convention.
void AppendTypeOnce(std::string& out, std::set<std::string>& emitted,
                    const std::string& family, const char* kind,
                    const std::map<std::string, std::string>& help) {
  if (!emitted.insert(family).second) return;
  auto it = help.find(family);
  if (it != help.end()) {
    AppendLine(out, "# HELP %s %s\n", family.c_str(),
               EscapeHelpText(it->second).c_str());
  }
  AppendLine(out, "# TYPE %s %s\n", family.c_str(), kind);
}

// Series name for a histogram sub-series: `family_sum` when unlabeled,
// `family_sum{labels}` otherwise.
std::string SubSeries(const std::string& family, const char* suffix,
                      const std::string& labels) {
  std::string out = family;
  out += suffix;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  return out;
}

}  // namespace

std::string EscapeHelpText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string ExpositionText(const MetricsSnapshot& snapshot) {
  return ExpositionText(snapshot, {});
}

std::string ExpositionText(const MetricsSnapshot& snapshot,
                           const std::map<std::string, std::string>& help) {
  std::string out;
  std::set<std::string> typed_families;
  std::string family, labels;
  for (const auto& [name, value] : snapshot.counters) {
    SplitMetricName(name, &family, &labels);
    AppendTypeOnce(out, typed_families, family, "counter", help);
    AppendLine(out, "%s %lld\n", name.c_str(),
               static_cast<long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    SplitMetricName(name, &family, &labels);
    AppendTypeOnce(out, typed_families, family, "gauge", help);
    AppendLine(out, "%s %.9g\n", name.c_str(), value);
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    SplitMetricName(name, &family, &labels);
    AppendTypeOnce(out, typed_families, family, "histogram", help);
    // `le` joins the metric's own labels inside one brace block.
    const std::string le_prefix = labels.empty() ? "" : labels + ",";
    // Trim to the populated bucket range; the series stays a valid
    // cumulative histogram because the omitted leading buckets are zero.
    int last_nonzero = -1;
    for (int b = 0; b < static_cast<int>(hist.bucket_counts.size()); ++b) {
      if (hist.bucket_counts[b] != 0) last_nonzero = b;
    }
    int64_t cumulative = 0;
    for (int b = 0; b <= last_nonzero; ++b) {
      if (hist.bucket_counts[b] == 0 && cumulative == 0) continue;
      cumulative += hist.bucket_counts[b];
      AppendLine(out, "%s_bucket{%sle=\"%.9g\"} %lld\n", family.c_str(),
                 le_prefix.c_str(), BucketUpperBoundSeconds(b),
                 static_cast<long long>(cumulative));
    }
    AppendLine(out, "%s_bucket{%sle=\"+Inf\"} %lld\n", family.c_str(),
               le_prefix.c_str(), static_cast<long long>(hist.count));
    AppendLine(out, "%s %.9g\n",
               SubSeries(family, "_sum", labels).c_str(), hist.sum_seconds);
    AppendLine(out, "%s %lld\n",
               SubSeries(family, "_count", labels).c_str(),
               static_cast<long long>(hist.count));
  }
  return out;
}

void Registry::SetHelp(const std::string& family, const std::string& help) {
  MutexLock lock(mu_);
  help_[family] = help;
}

std::string Registry::ExpositionText() const {
  std::map<std::string, std::string> help;
  {
    MutexLock lock(mu_);
    help = help_;
  }
  // Snapshot() retakes mu_; copy the help map first so the lock is never
  // held across the merge.
  return metrics::ExpositionText(Snapshot(), help);
}

}  // namespace simj::metrics
