// Durable, versioned run records for the bench harnesses: the BenchResult
// schema and its JSON writer.
//
// A BenchResult is the machine-readable counterpart of a harness's printed
// tables: one record per process run, carrying everything needed to compare
// that run against any other run of the same harness — schema version,
// harness name, git provenance (SHA + dirty flag), build configuration
// (compiler, build type, sanitizers, debug checks), hardware (cores, page
// size), the harness parameters, per-join repeated-trial wall/CPU stats
// (min/median/mean/stddev/max after a discarded warmup), peak RSS, and an
// embedded metrics-registry snapshot.
//
// Records deliberately live OUTSIDE the metrics registry (see DESIGN.md):
// the registry is live, monotonic, in-process state for scraping; a run
// record is a durable point-in-time artifact that must stay comparable
// across processes, builds and machines. The record embeds a registry
// snapshot rather than the registry exposing run semantics.
//
// ToJson() is deterministic for deterministic inputs (fixed key order,
// fixed float formatting), so records can be golden-tested and diffed.
// tools/bench_compare.py consumes these files; bump kSchemaVersion on any
// breaking field change and teach the comparator both shapes.

#ifndef SIMJ_UTIL_RUN_RECORD_H_
#define SIMJ_UTIL_RUN_RECORD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/status.h"

namespace simj::run_record {

inline constexpr int kSchemaVersion = 1;

// Summary of one repeated-trial measurement series.
struct Stats {
  int trials = 0;
  double min = 0.0;
  double median = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1); 0 for a single trial
  double max = 0.0;

  // Computes the summary from raw samples (order irrelevant). An empty
  // vector yields an all-zero Stats.
  static Stats FromSamples(std::vector<double> samples);
};

// One measured join (or other timed unit) within a harness run. `name` is
// the stable match key across runs: derived from the join parameters, with
// a " #k" suffix disambiguating repeats of identical parameters.
struct Sample {
  std::string name;
  Stats wall_seconds;
  Stats cpu_seconds;
  // Additional scalar facts about the sample (results, candidate_ratio,
  // precision, speedup, ...). Compared as point values.
  std::map<std::string, double> values;
  // True when the harness decided not to measure this configuration (e.g.
  // a 4-thread scaling row on a 2-core host). Serialized only when true,
  // so existing records and goldens are unchanged — absence means false.
  // bench_compare.py excludes skipped samples from delta comparison.
  bool skipped = false;
};

struct GitInfo {
  std::string sha;  // empty when git/repo is unavailable
  bool dirty = false;
};

struct BuildInfo {
  std::string compiler;    // e.g. "gcc 13.2.0"
  std::string build_type;  // CMAKE_BUILD_TYPE
  std::string sanitizers;  // SIMJ_SANITIZE list, empty when none
  bool debug_checks = false;  // SIMJ_DEBUG_CHECKS compiled in
};

struct HardwareInfo {
  int hardware_concurrency = 0;
  int64_t page_size_bytes = 0;
};

struct BenchResult {
  int schema_version = kSchemaVersion;
  std::string harness;            // binary basename
  double unix_time_seconds = 0.0; // record creation time (0 in golden tests)
  GitInfo git;
  BuildInfo build;
  HardwareInfo hardware;
  // The harness's effective command-line parameters (threads, repeat, and
  // every explicitly passed --key=value).
  std::map<std::string, std::string> params;
  std::vector<Sample> samples;
  double wall_seconds_total = 0.0;  // whole-process wall time
  int64_t peak_rss_bytes = 0;
  // Raw simj_profile_v1 JSON object (util/profiler.h), spliced verbatim
  // under the "profile" key. Serialized only when non-empty — absence
  // means the run was not profiled, so the schema version is unchanged.
  // tools/bench_compare.py diffs self-time shares between two embedded
  // profiles.
  std::string profile_json;
  // Raw simj_heap_v1 JSON object (util/heap_profiler.h), spliced verbatim
  // under the "heap" key with the same non-empty-only contract.
  // tools/bench_compare.py reads inuse-bytes deltas by leaf frame from it.
  std::string heap_json;
  // Point-in-time registry snapshot at emission (counters accumulate over
  // every trial including warmups; histograms are summarized in the JSON).
  metrics::MetricsSnapshot metrics;
};

// Provenance probes, each tolerant of its source being absent.
GitInfo QueryGitInfo();
BuildInfo CurrentBuildInfo();
HardwareInfo CurrentHardwareInfo();

// Publishes the provenance above as a `simj_build_info` gauge (value 1,
// labels git_sha / build_type / sanitizers) so every Prometheus scrape of
// /metricsz carries build identity. Idempotent; call once at startup.
void PublishBuildInfoMetric();

// Seconds since the epoch (system clock).
double NowUnixSeconds();

// Deterministic pretty-printed JSON (2-space indent, trailing newline).
std::string ToJson(const BenchResult& result);

// Writes ToJson(result) to `path`, failing with a descriptive Status when
// the file cannot be written.
Status WriteJsonFile(const BenchResult& result, const std::string& path);

}  // namespace simj::run_record

#endif  // SIMJ_UTIL_RUN_RECORD_H_
