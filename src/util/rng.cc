#include "util/rng.h"

namespace simj {

int Rng::WeightedIndex(const std::vector<double>& weights) {
  SIMJ_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SIMJ_CHECK_GE(w, 0.0);
    total += w;
  }
  SIMJ_CHECK_GT(total, 0.0);
  double draw = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (draw < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<double> Rng::RandomSimplex(int n, double concentration) {
  SIMJ_CHECK_GT(n, 0);
  std::gamma_distribution<double> gamma(concentration, 1.0);
  std::vector<double> out(n);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    // Clamp away from zero so every label keeps nonzero probability.
    out[i] = gamma(engine_) + 1e-6;
    total += out[i];
  }
  for (int i = 0; i < n; ++i) out[i] /= total;
  return out;
}

}  // namespace simj
