// Small string helpers shared across parsers and report printers.

#ifndef SIMJ_UTIL_STRINGS_H_
#define SIMJ_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace simj {

// Splits `text` on `sep`, dropping empty pieces.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

// Splits `text` on runs of whitespace.
std::vector<std::string> SplitWhitespace(std::string_view text);

// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

// Removes leading/trailing whitespace.
std::string_view StripWhitespace(std::string_view text);

// ASCII lower-casing.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Escapes `text` for embedding inside a JSON string literal: quotes,
// backslashes, and control characters (\uXXXX for the ones without a short
// escape). Non-ASCII bytes pass through untouched (valid UTF-8 stays valid).
std::string JsonEscape(std::string_view text);

}  // namespace simj

#endif  // SIMJ_UTIL_STRINGS_H_
