// Scoped-span tracing with a Chrome-trace / Perfetto-compatible JSON dump.
//
// The tracer is a process-wide singleton, disabled by default. While
// disabled, ScopedSpan costs one relaxed atomic load and no clock reads —
// instrumentation can stay compiled into the hot path. When enabled
// (Tracer::Global().Start()), each span records a complete event
// ("ph":"X") with the thread's stable tid, a microsecond timestamp
// relative to Start(), and the span duration, into a per-thread buffer;
// WriteChromeTrace() merges the buffers into
//
//   {"displayTimeUnit":"ms","traceEvents":[{"name":...,"cat":...,
//    "ph":"X","pid":1,"tid":...,"ts":...,"dur":...}, ...]}
//
// which loads directly in chrome://tracing and https://ui.perfetto.dev.
// Thread-name metadata events ("ph":"M") are emitted so Perfetto labels
// each worker lane.

#ifndef SIMJ_UTIL_TRACE_H_
#define SIMJ_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace simj::trace {

// Stable, dense per-thread id (0 for the first thread that asks, 1 for the
// next, ...). Used as the Chrome-trace tid.
int ThisThreadTraceId();

struct TraceEvent {
  std::string name;
  const char* category = "";
  int tid = 0;
  double ts_us = 0.0;   // microseconds since Tracer::Start()
  double dur_us = 0.0;  // span duration in microseconds
};

class Tracer {
 public:
  static Tracer& Global();

  // Discards previously collected events, re-arms the epoch and enables
  // collection.
  void Start();
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  using Clock = std::chrono::steady_clock;

  // Appends one complete event for the calling thread. Called by
  // ScopedSpan; safe from any thread while enabled.
  void Record(const char* name, const char* category, Clock::time_point begin,
              Clock::time_point end);

  // Number of events collected so far (across all threads).
  int64_t event_count() const;

  // Serializes every collected event (sorted by timestamp, then tid) as
  // Chrome trace JSON. Call after the traced work has quiesced.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  Tracer() = default;

  struct ThreadBuffer {
    std::mutex mu;  // recording thread vs. a concurrent dump
    int tid = 0;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  Clock::time_point epoch_{};

  mutable std::mutex mu_;  // guards buffers_ registration and iteration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

// Records the lifetime of a scope as a trace span. `name` and `category`
// must outlive the span (string literals in practice; dynamic names are
// copied at destruction time).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "join")
      : name_(name), category_(category),
        active_(Tracer::Global().enabled()) {
    if (active_) begin_ = Tracer::Clock::now();
  }
  ~ScopedSpan() {
    if (active_) {
      Tracer::Global().Record(name_, category_, begin_,
                              Tracer::Clock::now());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_;
  Tracer::Clock::time_point begin_{};
};

// JSON string escaping for event names/categories. Exposed for tests.
std::string JsonEscape(const std::string& s);

}  // namespace simj::trace

#endif  // SIMJ_UTIL_TRACE_H_
