// Scoped-span tracing with a Chrome-trace / Perfetto-compatible JSON dump.
//
// The tracer is a process-wide singleton, disabled by default. While
// disabled, ScopedSpan costs one relaxed atomic load and no clock reads —
// instrumentation can stay compiled into the hot path. When enabled
// (Tracer::Global().Start()), each span records a complete event
// ("ph":"X") with the thread's stable tid, a microsecond timestamp
// relative to Start(), and the span duration, into a per-thread buffer;
// WriteChromeTrace() merges the buffers into
//
//   {"displayTimeUnit":"ms","traceEvents":[{"name":...,"cat":...,
//    "ph":"X","pid":1,"tid":...,"ts":...,"dur":...}, ...]}
//
// which loads directly in chrome://tracing and https://ui.perfetto.dev.
// process_name/thread_name metadata events ("ph":"M") are emitted so
// Perfetto labels each worker lane; threads that called SetThisThreadName
// show their registered name ("join-worker-3", "statusz") instead of the
// bare tid.
//
// Cluster traces (DESIGN.md §10): the distributed join merges spans from
// every shard worker into this tracer so one --trace_out file shows the
// whole cluster timeline. Three pieces cooperate:
//
//   * pid lanes — TraceEvent carries a Chrome-trace pid (1 = this
//     process); RegisterProcessLane(pid, name) names additional process
//     lanes ("worker-3") and InjectEvents() files externally recorded
//     events under them;
//   * span context — events optionally carry Dapper-style trace/span ids
//     (trace_id / span_id / parent_span_id), serialized into the event's
//     "args" so a span shipped across the pipe keeps its parent link;
//   * thread capture — BeginThreadCapture()/EndThreadCapture() divert the
//     calling thread's spans into a private vector instead of the shared
//     buffers, which is how a shard worker collects the spans of one shard
//     execution for shipping (the coordinator re-injects them under the
//     worker's pid lane, so nothing is recorded twice).
//
// Independently of full tracing, SetRecentRing(true) arms a small
// per-thread ring buffer of the last kRecentRingCapacity completed spans,
// sampled by the /tracez endpoint of util/statusz — cheap enough to leave
// on for a whole production run (one mutex-guarded ring store per span).
// While both collectors are off, ScopedSpan still costs one relaxed load.

#ifndef SIMJ_UTIL_TRACE_H_
#define SIMJ_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/sync.h"

namespace simj::trace {

// Stable, dense per-thread id (0 for the first thread that asks, 1 for the
// next, ...). Used as the Chrome-trace tid.
int ThisThreadTraceId();

// Capacity of the per-thread recent-span ring (see SetRecentRing).
inline constexpr int kRecentRingCapacity = 64;

struct TraceEvent {
  std::string name;
  std::string category;
  // Chrome-trace process lane. 1 is this process ("simj"); other lanes are
  // named via Tracer::RegisterProcessLane and populated by InjectEvents.
  int pid = 1;
  int tid = 0;
  double ts_us = 0.0;   // microseconds since the tracer epoch
  double dur_us = 0.0;  // span duration in microseconds
  // Cross-process span context (0 = unset, omitted from the JSON args).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

// Registers a human-readable name for the calling thread ("main",
// "join-worker-3"). Shown in Chrome-trace thread_name metadata and in
// /tracez output. A no-op while both collectors are off, so idle
// processes never allocate trace buffers.
void SetThisThreadName(const std::string& name);

// The last completed spans of one thread, oldest first.
struct RecentThreadSpans {
  int tid = 0;
  std::string name;  // registered via SetThisThreadName, may be empty
  std::vector<TraceEvent> spans;
};

namespace internal {
// Non-null while the calling thread has an armed span capture (see
// Tracer::BeginThreadCapture). Lives here so ScopedSpan's disabled path
// can test it inline; treat as private to trace.cc.
extern thread_local std::vector<TraceEvent>* thread_capture;
}  // namespace internal

class Tracer {
 public:
  static Tracer& Global();

  // Discards previously collected events, re-arms the epoch and enables
  // collection.
  void Start();
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Arms (or disarms) the per-thread recent-span rings. Independent of
  // Start/Stop: the ring keeps the last kRecentRingCapacity completed
  // spans per thread for live /tracez sampling.
  void SetRecentRing(bool enabled);
  bool recent_ring_enabled() const {
    return recent_enabled_.load(std::memory_order_relaxed);
  }

  // True when Record() would keep the span (full trace, recent ring, or an
  // armed thread capture on the calling thread).
  bool collecting() const {
    return enabled() || recent_ring_enabled() ||
           internal::thread_capture != nullptr;
  }

  using Clock = std::chrono::steady_clock;

  // Microseconds since the tracer epoch "now" — the timebase of every
  // recorded event. steady_clock is machine-wide and the epoch survives
  // fork(), so parent and forked-child timestamps share one timeline.
  double NowUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
        .count();
  }

  // Appends one complete event for the calling thread. Called by
  // ScopedSpan; safe from any thread while enabled.
  void Record(const char* name, const char* category, Clock::time_point begin,
              Clock::time_point end);

  // Diverts the calling thread's spans into a private vector until
  // EndThreadCapture(), which returns them (oldest first) and re-arms
  // normal recording. While a capture is armed, spans are recorded even if
  // the tracer is otherwise idle — a forked shard worker captures spans
  // regardless of its inherited enabled_ snapshot — and they do NOT land
  // in the shared buffers or the /tracez ring, so a later InjectEvents of
  // the same spans never double-records. Captures must not nest.
  void BeginThreadCapture();
  std::vector<TraceEvent> EndThreadCapture();

  // Names an additional Chrome-trace process lane ("worker-3"). Lane
  // registrations are cleared by Start(), like events.
  void RegisterProcessLane(int pid, const std::string& name);

  // Files externally recorded events (spans shipped back from a shard
  // worker, coordinator-synthesized attempt spans) under their events'
  // pid lanes. No-op while the tracer is disabled.
  void InjectEvents(std::vector<TraceEvent> events);

  // Number of events collected so far (across all threads + injected).
  int64_t event_count() const;

  // Point-in-time copy of every collected event (thread buffers and
  // injected), unsorted. For tests and post-run analysis.
  std::vector<TraceEvent> SnapshotEvents() const;

  // Serializes every collected event (sorted by timestamp, then pid/tid)
  // as Chrome trace JSON. Call after the traced work has quiesced.
  void WriteChromeTrace(std::ostream& os) const;

  // Point-in-time copy of every thread's recent-span ring (threads with no
  // spans omitted), sorted by tid, spans oldest first. Safe to call from
  // any thread while spans are still being recorded — each ring is copied
  // under its buffer mutex.
  std::vector<RecentThreadSpans> RecentSpans() const;

  // Registers `name` for the calling thread. Prefer the free function
  // SetThisThreadName, which skips the buffer allocation while idle.
  void SetThreadNameForThisThread(const std::string& name);

 private:
  Tracer() : epoch_(Clock::now()) {}

  struct ThreadBuffer {
    Mutex mu;  // recording thread vs. a concurrent dump
    // tid is deliberately NOT guarded: it is written once before the
    // buffer is published via buffers_ and read-only afterwards, so
    // Record() may read it without the lock.
    int tid = 0;
    std::string name SIMJ_GUARDED_BY(mu);  // registered name, may stay empty
    std::vector<TraceEvent> events SIMJ_GUARDED_BY(mu);
    // Ring of the last completed spans; ring_count grows monotonically and
    // (ring_count % kRecentRingCapacity) is the next write slot.
    std::vector<TraceEvent> ring SIMJ_GUARDED_BY(mu);
    int64_t ring_count SIMJ_GUARDED_BY(mu) = 0;
  };

  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::atomic<bool> recent_enabled_{false};
  Clock::time_point epoch_;

  // Lock order: mu_ before ThreadBuffer::mu (dumps iterate buffers_ under
  // mu_ and lock each buffer in turn).
  mutable Mutex mu_;  // guards buffers_ registration and iteration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ SIMJ_GUARDED_BY(mu_);
  // Merged remote events and named process lanes, both guarded by mu_.
  std::vector<TraceEvent> injected_ SIMJ_GUARDED_BY(mu_);
  std::vector<std::pair<int, std::string>> process_lanes_
      SIMJ_GUARDED_BY(mu_);
};

// Records the lifetime of a scope as a trace span. `name` and `category`
// must outlive the span (string literals in practice; dynamic names are
// copied at destruction time).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "join")
      : name_(name), category_(category),
        active_(Tracer::Global().collecting()) {
    if (active_) begin_ = Tracer::Clock::now();
  }
  ~ScopedSpan() {
    if (active_) {
      Tracer::Global().Record(name_, category_, begin_,
                              Tracer::Clock::now());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_;
  Tracer::Clock::time_point begin_{};
};

// JSON string escaping for event names/categories. Exposed for tests.
std::string JsonEscape(const std::string& s);

}  // namespace simj::trace

#endif  // SIMJ_UTIL_TRACE_H_
