// Structured, leveled logging with a pluggable process-wide sink.
//
//   SIMJ_LOG(INFO) << "joined " << pairs << " pairs";
//   SIMJ_LOG(WARN) << "slow pair: " << ms << " ms";
//
// Levels are DEBUG < INFO < WARN < ERROR. A statement below the active
// threshold costs one relaxed atomic load and never evaluates its stream
// operands; the default threshold is INFO. Messages at or above the
// threshold are formatted into an Entry and handed to the installed Sink
// under a mutex, so interleaved threads never tear each other's lines.
//
// Sinks: the default writes human-readable text to stderr; JsonLinesSink
// writes one JSON object per line (machine-readable, for --log_json=);
// CaptureSink buffers entries for tests. SetSink() swaps the process sink
// and returns the previous one so tests can restore it.
//
// SIMJ_CHECK failures are routed through WriteCheckFailureAndAbort so
// aborts land in the same sink (and always on stderr, even when a custom
// sink is installed).

#ifndef SIMJ_UTIL_LOG_H_
#define SIMJ_UTIL_LOG_H_

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "util/sync.h"

namespace simj::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Spellings used by the SIMJ_LOG(severity) macro: the macro pastes the
// severity token onto "k", and these constants map the result onto Level.
inline constexpr Level kDEBUG = Level::kDebug;
inline constexpr Level kINFO = Level::kInfo;
inline constexpr Level kWARN = Level::kWarn;
inline constexpr Level kERROR = Level::kError;

// "DEBUG", "INFO", "WARN", "ERROR".
const char* LevelName(Level level);

// Parses a case-insensitive level name ("debug", "INFO", ...). Returns
// false (leaving *out untouched) on an unknown name.
bool ParseLevel(const std::string& name, Level* out);

// One log statement, fully formatted.
struct Entry {
  Level level = Level::kInfo;
  const char* file = "";
  int line = 0;
  double unix_seconds = 0.0;  // system clock, seconds since the epoch
  int thread_id = 0;          // small sequential per-process thread id
  std::string message;
};

// Where formatted entries go. Write() is always called under the logger
// mutex, so implementations need no locking of their own against other
// writers (CaptureSink locks anyway because tests read it concurrently).
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void Write(const Entry& entry) = 0;
};

// Human-readable text on stderr:
//   W 14:33:12.345 t3 core/join.cc:412] slow pair: 1834.2 ms
class StderrSink : public Sink {
 public:
  void Write(const Entry& entry) override;
};

// One JSON object per line, e.g.
//   {"ts":1722860000.123,"level":"WARN","file":"core/join.cc","line":412,
//    "tid":3,"msg":"slow pair: 1834.2 ms"}
// Lines are flushed as they are written so a crash loses at most the
// in-flight entry.
class JsonLinesSink : public Sink {
 public:
  explicit JsonLinesSink(const std::string& path);
  ~JsonLinesSink() override;

  // False when the path could not be opened; writes are then dropped.
  bool ok() const { return file_ != nullptr; }
  void Write(const Entry& entry) override;

 private:
  void* file_;  // FILE*, kept opaque so this header stays <cstdio>-free
};

// Buffers entries in memory; Entries() returns a snapshot copy.
class CaptureSink : public Sink {
 public:
  void Write(const Entry& entry) override;
  std::vector<Entry> Entries() const;

 private:
  mutable Mutex mu_;
  std::vector<Entry> entries_ SIMJ_GUARDED_BY(mu_);
};

// Formats `entry` as a single JSON object (no trailing newline). Shared by
// JsonLinesSink and the tests.
std::string FormatEntryJson(const Entry& entry);

// Formats `entry` in the stderr text shape (no trailing newline).
std::string FormatEntryText(const Entry& entry);

namespace internal {
// The active threshold. Inline so Enabled() compiles to one relaxed load
// with no function call — the entire cost of a disabled log statement.
inline std::atomic<int> g_min_level{static_cast<int>(Level::kInfo)};
}  // namespace internal

inline Level MinLevel() {
  return static_cast<Level>(
      internal::g_min_level.load(std::memory_order_relaxed));
}
void SetMinLevel(Level level);

inline bool Enabled(Level level) {
  return static_cast<int>(level) >=
         internal::g_min_level.load(std::memory_order_relaxed);
}

// Installs `sink` as the process-wide sink and returns the previous one
// (nullptr means the built-in stderr sink was active). Passing nullptr
// restores the built-in stderr sink.
std::unique_ptr<Sink> SetSink(std::unique_ptr<Sink> sink);

// Small sequential id for the calling thread (0 for the first thread that
// logs, 1 for the next, ...). Stable for the thread's lifetime.
int ThisThreadLogId();

// Dispatches one entry to the active sink. Prefer the SIMJ_LOG macro.
void Write(Level level, const char* file, int line, std::string message);

// Emits an ERROR entry for a failed SIMJ_CHECK — to the active sink, and
// additionally to stderr when a custom sink is installed so aborts are
// never invisible — then aborts the process.
[[noreturn]] void WriteCheckFailureAndAbort(const char* file, int line,
                                            const std::string& message);

// Accumulates one statement's stream operands; dispatches on destruction
// (end of the full expression).
class LogMessage {
 public:
  LogMessage(Level level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Write(level_, file_, line_, out_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return out_; }

 private:
  Level level_;
  const char* file_;
  int line_;
  std::ostringstream out_;
};

// Swallows the stream expression inside SIMJ_LOG's ternary: operator&
// binds looser than operator<<, so the whole chain evaluates first and the
// expression's type collapses to void (matching the disabled arm).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace simj::log

// SIMJ_LOG(severity) << ...; severity is DEBUG, INFO, WARN or ERROR.
// Below the threshold the operands are never evaluated.
#define SIMJ_LOG(severity)                                        \
  !::simj::log::Enabled(::simj::log::k##severity)                 \
      ? (void)0                                                   \
      : ::simj::log::Voidify() &                                  \
            ::simj::log::LogMessage(::simj::log::k##severity,     \
                                    __FILE__, __LINE__)           \
                .stream()

#endif  // SIMJ_UTIL_LOG_H_
