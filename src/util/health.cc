#include "util/health.h"

#include <map>

#include "util/sync.h"
#include "util/trace.h"  // JsonEscape

namespace simj::health {

namespace {

struct State {
  Mutex mu;  // leaf lock: nothing else is acquired under it
  std::map<std::string, std::string> degraded
      SIMJ_GUARDED_BY(mu);  // component -> reason
};

State& GlobalState() {
  static State* state = new State();  // simj-lint: allow(new) leaky singleton
  return *state;
}

}  // namespace

void SetUnhealthy(const std::string& component, const std::string& reason) {
  State& state = GlobalState();
  MutexLock lock(state.mu);
  state.degraded[component] = reason;
}

void SetHealthy(const std::string& component) {
  State& state = GlobalState();
  MutexLock lock(state.mu);
  state.degraded.erase(component);
}

bool IsDegraded() {
  State& state = GlobalState();
  MutexLock lock(state.mu);
  return !state.degraded.empty();
}

std::string HealthzBody() {
  State& state = GlobalState();
  MutexLock lock(state.mu);
  if (state.degraded.empty()) return "{\"status\":\"ok\"}\n";
  std::string reason;
  for (const auto& [component, why] : state.degraded) {
    if (!reason.empty()) reason += "; ";
    reason += component + ": " + why;
  }
  return "{\"status\":\"degraded\",\"reason\":\"" + trace::JsonEscape(reason) +
         "\"}\n";
}

void ResetForTesting() {
  State& state = GlobalState();
  MutexLock lock(state.mu);
  state.degraded.clear();
}

}  // namespace simj::health
