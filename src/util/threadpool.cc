#include "util/threadpool.h"

#include <algorithm>
#include <string>

#include "util/check.h"
#include "util/trace.h"

namespace simj {

int ResolveThreadCount(int num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  int count = ResolveThreadCount(num_threads);
  queues_.reserve(count);
  for (int i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(count);
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  shutdown_.store(true, std::memory_order_release);
  {
    MutexLock lock(mu_);
    work_available_.NotifyAll();
  }
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(Task task) {
  int target = static_cast<int>(
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size());
  SubmitTo(target, std::move(task));
}

void ThreadPool::SubmitTo(int worker, Task task) {
  SIMJ_CHECK(worker >= 0 && worker < num_workers());
  unfinished_.fetch_add(1, std::memory_order_acq_rel);
  {
    MutexLock lock(queues_[worker]->mu);
    queues_[worker]->tasks.push_back(std::move(task));
  }
  {
    MutexLock lock(mu_);
    work_available_.NotifyOne();
  }
}

bool ThreadPool::PopOwn(int worker, Task* task) {
  WorkerQueue& queue = *queues_[worker];
  MutexLock lock(queue.mu);
  if (queue.tasks.empty()) return false;
  *task = std::move(queue.tasks.back());
  queue.tasks.pop_back();
  return true;
}

bool ThreadPool::StealFrom(int thief, Task* task) {
  int n = num_workers();
  for (int offset = 1; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(thief + offset) % n];
    MutexLock lock(victim.mu);
    if (victim.tasks.empty()) continue;
    // Steal the oldest task: round-robin scattering puts the least-started
    // work at the front.
    *task = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(int worker) {
  trace::SetThisThreadName("join-worker-" + std::to_string(worker));
  while (true) {
    Task task;
    if (PopOwn(worker, &task) || StealFrom(worker, &task)) {
      task(worker);
      if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(mu_);
        all_idle_.NotifyAll();
      }
      continue;
    }
    MutexLock lock(mu_);
    if (shutdown_.load(std::memory_order_acquire)) return;
    // Re-check the queues under the wakeup mutex: a Submit between our
    // failed scan and this lock would otherwise be missed.
    bool any = false;
    for (const auto& queue : queues_) {
      MutexLock qlock(queue->mu);
      if (!queue->tasks.empty()) {
        any = true;
        break;
      }
    }
    if (any) continue;
    work_available_.Wait(mu_);
  }
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  all_idle_.Wait(mu_, [this] {
    return unfinished_.load(std::memory_order_acquire) == 0;
  });
}

void ParallelFor(int num_threads, int64_t n,
                 const std::function<void(int, int64_t)>& fn) {
  int count = ResolveThreadCount(num_threads);
  if (count <= 1 || n < 2) {
    for (int64_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  ThreadPool pool(count);
  // Several chunks per worker so stealing can even out skewed costs
  // (pair-evaluation time varies by orders of magnitude with pruning).
  int64_t chunks = std::min<int64_t>(n, static_cast<int64_t>(count) * 8);
  int64_t chunk_size = (n + chunks - 1) / chunks;
  int worker = 0;
  for (int64_t begin = 0; begin < n; begin += chunk_size) {
    int64_t end = std::min(n, begin + chunk_size);
    pool.SubmitTo(worker, [&fn, begin, end](int worker_index) {
      for (int64_t i = begin; i < end; ++i) fn(worker_index, i);
    });
    worker = (worker + 1) % count;
  }
  pool.Wait();
}

}  // namespace simj
