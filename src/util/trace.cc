#include "util/trace.h"

#include <algorithm>
#include <cstdio>

#include "util/heap_profiler.h"
#include "util/profiler.h"

namespace simj::trace {

namespace internal {
thread_local std::vector<TraceEvent>* thread_capture = nullptr;
}  // namespace internal

int ThisThreadTraceId() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // simj-lint: allow(new) leaky singleton
  return *tracer;
}

void Tracer::Start() {
  MutexLock lock(mu_);
  for (auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  injected_.clear();
  process_lanes_.clear();
  epoch_ = Clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::SetRecentRing(bool enabled) {
  if (enabled) {
    // Arming discards stale rings so /tracez never mixes runs.
    MutexLock lock(mu_);
    for (auto& buffer : buffers_) {
      MutexLock buffer_lock(buffer->mu);
      buffer->ring_count = 0;
    }
  }
  recent_enabled_.store(enabled, std::memory_order_relaxed);
}

void Tracer::SetThreadNameForThisThread(const std::string& name) {
  ThreadBuffer* buffer = BufferForThisThread();
  MutexLock lock(buffer->mu);
  buffer->name = name;
}

void SetThisThreadName(const std::string& name) {
  // The profiler keys sample attribution on thread names; register
  // unconditionally (bounded map entry, no buffer) so threads named before
  // a capture starts are covered by it.
  prof::NoteThisThread(name);
  heapprof::NoteThisThread(name);
  Tracer& tracer = Tracer::Global();
  // Skipping the registration while idle keeps short-lived pools from
  // accumulating dead ThreadBuffers in processes that never introspect.
  if (!tracer.collecting()) return;
  tracer.SetThreadNameForThisThread(name);
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  // One buffer per (tracer, thread); the pointer is cached thread-locally
  // after the first registration. Buffers outlive their threads so events
  // recorded by pool workers survive the pool's destruction.
  thread_local ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = ThisThreadTraceId();
    cached = buffer.get();
    MutexLock lock(mu_);
    buffers_.push_back(std::move(buffer));
  }
  return cached;
}

void Tracer::Record(const char* name, const char* category,
                    Clock::time_point begin, Clock::time_point end) {
  // An armed thread capture owns this thread's spans outright: they are
  // destined for shipping + re-injection, so the shared buffers and the
  // /tracez ring must not see them now (that would double-record).
  if (internal::thread_capture != nullptr) {
    TraceEvent captured;
    captured.name = name;
    captured.category = category;
    captured.tid = ThisThreadTraceId();
    captured.ts_us =
        std::chrono::duration<double, std::micro>(begin - epoch_).count();
    captured.dur_us =
        std::chrono::duration<double, std::micro>(end - begin).count();
    internal::thread_capture->push_back(std::move(captured));
    return;
  }
  const bool to_events = enabled();
  const bool to_ring = recent_ring_enabled();
  if (!to_events && !to_ring) return;
  ThreadBuffer* buffer = BufferForThisThread();
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.tid = buffer->tid;
  event.ts_us =
      std::chrono::duration<double, std::micro>(begin - epoch_).count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  MutexLock lock(buffer->mu);
  if (to_ring) {
    if (buffer->ring.size() < static_cast<size_t>(kRecentRingCapacity)) {
      buffer->ring.resize(kRecentRingCapacity);
    }
    buffer->ring[buffer->ring_count % kRecentRingCapacity] = event;
    ++buffer->ring_count;
  }
  if (to_events) buffer->events.push_back(std::move(event));
}

void Tracer::BeginThreadCapture() {
  // Captures must not nest; a leftover pointer here would mean a worker
  // leaked a capture across shard executions.
  if (internal::thread_capture != nullptr) return;
  internal::thread_capture =
      new std::vector<TraceEvent>();  // simj-lint: allow(new) owned by EndThreadCapture
}

std::vector<TraceEvent> Tracer::EndThreadCapture() {
  std::vector<TraceEvent>* capture = internal::thread_capture;
  internal::thread_capture = nullptr;
  if (capture == nullptr) return {};
  std::vector<TraceEvent> out = std::move(*capture);
  delete capture;
  return out;
}

void Tracer::RegisterProcessLane(int pid, const std::string& name) {
  MutexLock lock(mu_);
  for (auto& [lane_pid, lane_name] : process_lanes_) {
    if (lane_pid == pid) {
      lane_name = name;
      return;
    }
  }
  process_lanes_.emplace_back(pid, name);
}

void Tracer::InjectEvents(std::vector<TraceEvent> events) {
  if (!enabled() || events.empty()) return;
  MutexLock lock(mu_);
  injected_.insert(injected_.end(), std::make_move_iterator(events.begin()),
                   std::make_move_iterator(events.end()));
}

std::vector<RecentThreadSpans> Tracer::RecentSpans() const {
  std::vector<RecentThreadSpans> out;
  {
    MutexLock lock(mu_);
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(buffer->mu);
      if (buffer->ring_count == 0) continue;
      RecentThreadSpans thread;
      thread.tid = buffer->tid;
      thread.name = buffer->name;
      const int64_t kept = std::min<int64_t>(
          buffer->ring_count, kRecentRingCapacity);
      thread.spans.reserve(static_cast<size_t>(kept));
      for (int64_t i = buffer->ring_count - kept; i < buffer->ring_count;
           ++i) {
        thread.spans.push_back(buffer->ring[i % kRecentRingCapacity]);
      }
      out.push_back(std::move(thread));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RecentThreadSpans& a, const RecentThreadSpans& b) {
              return a.tid < b.tid;
            });
  return out;
}

int64_t Tracer::event_count() const {
  MutexLock lock(mu_);
  int64_t total = static_cast<int64_t>(injected_.size());
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mu);
    total += static_cast<int64_t>(buffer->events.size());
  }
  return total;
}

std::vector<TraceEvent> Tracer::SnapshotEvents() const {
  MutexLock lock(mu_);
  std::vector<TraceEvent> events = injected_;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  return events;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  std::vector<TraceEvent> events;
  std::vector<std::pair<int, std::string>> lanes;  // (tid, registered name)
  std::vector<std::pair<int, std::string>> proc_lanes;  // (pid, name)
  {
    MutexLock lock(mu_);
    proc_lanes = process_lanes_;
    events = injected_;
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(buffer->mu);
      if (buffer->events.empty()) continue;
      lanes.emplace_back(buffer->tid, buffer->name);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.pid != b.pid) return a.pid < b.pid;
              return a.tid < b.tid;
            });
  std::sort(lanes.begin(), lanes.end());
  std::sort(proc_lanes.begin(), proc_lanes.end());

  auto fmt_us = [](double v) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.3f", v);
    return std::string(buffer);
  };

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };
  comma();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"simj\"}}";
  for (const auto& [pid, name] : proc_lanes) {
    if (pid == 1) continue;  // pid 1 is always "simj"
    comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
  }
  for (const auto& [tid, name] : lanes) {
    std::string lane_name =
        name.empty() ? "thread-" + std::to_string(tid) : JsonEscape(name);
    comma();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << lane_name << "\"}}";
  }
  for (const TraceEvent& event : events) {
    comma();
    os << "{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
       << JsonEscape(event.category) << "\",\"ph\":\"X\",\"pid\":" << event.pid
       << ",\"tid\":" << event.tid << ",\"ts\":" << fmt_us(event.ts_us)
       << ",\"dur\":" << fmt_us(event.dur_us);
    if (event.trace_id != 0 || event.span_id != 0 ||
        event.parent_span_id != 0) {
      os << ",\"args\":{\"trace_id\":\"" << event.trace_id
         << "\",\"span_id\":\"" << event.span_id << "\",\"parent_span_id\":\""
         << event.parent_span_id << "\"}";
    }
    os << "}";
  }
  os << "]}\n";
}

}  // namespace simj::trace
