#include "util/trace.h"

#include <algorithm>
#include <cstdio>

namespace simj::trace {

int ThisThreadTraceId() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // simj-lint: allow(new) leaky singleton
  return *tracer;
}

void Tracer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  epoch_ = Clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::SetRecentRing(bool enabled) {
  if (enabled) {
    // Arming discards stale rings so /tracez never mixes runs.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->ring_count = 0;
    }
  }
  recent_enabled_.store(enabled, std::memory_order_relaxed);
}

void Tracer::SetThreadNameForThisThread(const std::string& name) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->name = name;
}

void SetThisThreadName(const std::string& name) {
  Tracer& tracer = Tracer::Global();
  // Skipping the registration while idle keeps short-lived pools from
  // accumulating dead ThreadBuffers in processes that never introspect.
  if (!tracer.collecting()) return;
  tracer.SetThreadNameForThisThread(name);
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  // One buffer per (tracer, thread); the pointer is cached thread-locally
  // after the first registration. Buffers outlive their threads so events
  // recorded by pool workers survive the pool's destruction.
  thread_local ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = ThisThreadTraceId();
    cached = buffer.get();
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::move(buffer));
  }
  return cached;
}

void Tracer::Record(const char* name, const char* category,
                    Clock::time_point begin, Clock::time_point end) {
  const bool to_events = enabled();
  const bool to_ring = recent_ring_enabled();
  if (!to_events && !to_ring) return;
  ThreadBuffer* buffer = BufferForThisThread();
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.tid = buffer->tid;
  event.ts_us =
      std::chrono::duration<double, std::micro>(begin - epoch_).count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (to_ring) {
    if (buffer->ring.size() < static_cast<size_t>(kRecentRingCapacity)) {
      buffer->ring.resize(kRecentRingCapacity);
    }
    buffer->ring[buffer->ring_count % kRecentRingCapacity] = event;
    ++buffer->ring_count;
  }
  if (to_events) buffer->events.push_back(std::move(event));
}

std::vector<RecentThreadSpans> Tracer::RecentSpans() const {
  std::vector<RecentThreadSpans> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      if (buffer->ring_count == 0) continue;
      RecentThreadSpans thread;
      thread.tid = buffer->tid;
      thread.name = buffer->name;
      const int64_t kept = std::min<int64_t>(
          buffer->ring_count, kRecentRingCapacity);
      thread.spans.reserve(static_cast<size_t>(kept));
      for (int64_t i = buffer->ring_count - kept; i < buffer->ring_count;
           ++i) {
        thread.spans.push_back(buffer->ring[i % kRecentRingCapacity]);
      }
      out.push_back(std::move(thread));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RecentThreadSpans& a, const RecentThreadSpans& b) {
              return a.tid < b.tid;
            });
  return out;
}

int64_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += static_cast<int64_t>(buffer->events.size());
  }
  return total;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  std::vector<TraceEvent> events;
  std::vector<std::pair<int, std::string>> lanes;  // (tid, registered name)
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      if (buffer->events.empty()) continue;
      lanes.emplace_back(buffer->tid, buffer->name);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.tid < b.tid;
            });
  std::sort(lanes.begin(), lanes.end());

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };
  comma();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"simj\"}}";
  char line[256];
  for (const auto& [tid, name] : lanes) {
    std::string lane_name =
        name.empty() ? "thread-" + std::to_string(tid) : JsonEscape(name);
    comma();
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                  tid, lane_name.c_str());
    os << line;
  }
  for (const TraceEvent& event : events) {
    comma();
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,"
                  "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
                  JsonEscape(event.name).c_str(),
                  JsonEscape(event.category).c_str(), event.tid, event.ts_us,
                  event.dur_us);
    os << line;
  }
  os << "]}\n";
}

}  // namespace simj::trace
