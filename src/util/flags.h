// Minimal command-line flag parsing for the benchmark harnesses:
// --key=value pairs with typed getters and defaults, so every bench can be
// re-scaled from the command line while running fine with no arguments.
//
//   Flags flags(argc, argv);
//   int n = flags.GetInt("num_questions", 200);
//   double alpha = flags.GetDouble("alpha", 0.9);

#ifndef SIMJ_UTIL_FLAGS_H_
#define SIMJ_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace simj {

class Flags {
 public:
  // Parses argv; unrecognized arguments (no leading "--" or no '=') are
  // ignored so harness runners can pass their own options through.
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  // Keys of every parsed --key=value argument, in argv order. Lets callers
  // validate against a known-flag set and reject typos.
  std::vector<std::string> Keys() const { return keys_; }

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> keys_;
};

}  // namespace simj

#endif  // SIMJ_UTIL_FLAGS_H_
