#include "util/run_record.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "util/mem.h"
#include "util/strings.h"

#ifndef SIMJ_SOURCE_DIR
#define SIMJ_SOURCE_DIR "."
#endif
#ifndef SIMJ_BUILD_TYPE_NAME
#define SIMJ_BUILD_TYPE_NAME ""
#endif
#ifndef SIMJ_SANITIZERS_NAME
#define SIMJ_SANITIZERS_NAME ""
#endif

namespace simj::run_record {

namespace {

// ---------------------------------------------------------------------------
// Deterministic JSON emission. Numbers use %.9g (shortest round-half digits
// that keep bench timings comparable); keys are emitted in a fixed order.
// ---------------------------------------------------------------------------

std::string FormatDouble(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string FormatInt(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  return buffer;
}

std::string Quoted(const std::string& text) {
  std::string out;
  std::string escaped = JsonEscape(text);
  out.reserve(escaped.size() + 2);
  out.push_back('"');
  out.append(escaped);
  out.push_back('"');
  return out;
}

// Minimal structural JSON builder: tracks indentation and comma placement
// so the emitted text is always well-formed.
class JsonWriter {
 public:
  void BeginObject(const std::string& key = "") { Open(key, '{'); }
  void EndObject() { Close('}'); }
  void BeginArray(const std::string& key = "") { Open(key, '['); }
  void EndArray() { Close(']'); }

  void Field(const std::string& key, const std::string& raw_value) {
    Prefix(key);
    out_ += raw_value;
  }
  void String(const std::string& key, const std::string& value) {
    Field(key, Quoted(value));
  }
  void Double(const std::string& key, double value) {
    Field(key, FormatDouble(value));
  }
  void Int(const std::string& key, int64_t value) {
    Field(key, FormatInt(value));
  }
  void Bool(const std::string& key, bool value) {
    Field(key, value ? "true" : "false");
  }

  std::string Take() {
    out_ += '\n';
    return std::move(out_);
  }

 private:
  void Open(const std::string& key, char bracket) {
    Prefix(key);
    out_ += bracket;
    ++depth_;
    first_in_scope_ = true;
  }

  void Close(char bracket) {
    --depth_;
    if (!first_in_scope_) {
      out_ += '\n';
      Indent();
    }
    out_ += bracket;
    first_in_scope_ = false;
  }

  void Prefix(const std::string& key) {
    if (depth_ > 0) {
      if (!first_in_scope_) out_ += ',';
      out_ += '\n';
      Indent();
    }
    first_in_scope_ = false;
    if (!key.empty()) {
      out_ += Quoted(key);
      out_ += ": ";
    }
  }

  void Indent() { out_.append(static_cast<size_t>(depth_) * 2, ' '); }

  std::string out_;
  int depth_ = 0;
  bool first_in_scope_ = true;
};

void WriteStats(JsonWriter* json, const std::string& key,
                const Stats& stats) {
  json->BeginObject(key);
  json->Int("trials", stats.trials);
  json->Double("min", stats.min);
  json->Double("median", stats.median);
  json->Double("mean", stats.mean);
  json->Double("stddev", stats.stddev);
  json->Double("max", stats.max);
  json->EndObject();
}

// Runs `command` through a shell and returns its whitespace-stripped
// stdout, or "" on any failure. Used only for provenance probes.
std::string RunCommandTrimmed(const std::string& command) {
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return "";
  std::string out;
  char buffer[256];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    out.append(buffer, read);
  }
  pclose(pipe);
  return std::string(StripWhitespace(out));
}

bool LooksLikeSha(const std::string& text) {
  if (text.size() != 40) return false;
  for (char c : text) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

}  // namespace

Stats Stats::FromSamples(std::vector<double> samples) {
  Stats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  stats.trials = static_cast<int>(n);
  stats.min = samples.front();
  stats.max = samples.back();
  stats.median = n % 2 == 1 ? samples[n / 2]
                            : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sum = 0.0;
  for (double s : samples) sum += s;
  stats.mean = sum / static_cast<double>(n);
  if (n > 1) {
    double sq = 0.0;
    for (double s : samples) sq += (s - stats.mean) * (s - stats.mean);
    stats.stddev = std::sqrt(sq / static_cast<double>(n - 1));
  }
  return stats;
}

GitInfo QueryGitInfo() {
  GitInfo info;
  const std::string base = "git -C \"" SIMJ_SOURCE_DIR "\" ";
  std::string sha = RunCommandTrimmed(base + "rev-parse HEAD 2>/dev/null");
  if (!LooksLikeSha(sha)) return info;
  info.sha = sha;
  info.dirty =
      !RunCommandTrimmed(base + "status --porcelain 2>/dev/null").empty();
  return info;
}

BuildInfo CurrentBuildInfo() {
  BuildInfo info;
#if defined(__clang__)
  info.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  info.compiler = std::string("gcc ") + __VERSION__;
#else
  info.compiler = "unknown";
#endif
  info.build_type = SIMJ_BUILD_TYPE_NAME;
  info.sanitizers = SIMJ_SANITIZERS_NAME;
#ifdef SIMJ_DEBUG_CHECKS
  info.debug_checks = true;
#endif
  return info;
}

HardwareInfo CurrentHardwareInfo() {
  HardwareInfo info;
  info.hardware_concurrency =
      static_cast<int>(std::thread::hardware_concurrency());
  info.page_size_bytes = mem::PageSizeBytes();
  return info;
}

double NowUnixSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void PublishBuildInfoMetric() {
  GitInfo git = QueryGitInfo();
  BuildInfo build = CurrentBuildInfo();
  metrics::Registry::Global().SetHelp(
      "simj_build_info",
      "Build provenance as labels (git_sha, build_type, sanitizers); "
      "value is always 1.");
  metrics::Registry::Global()
      .GetGauge(metrics::LabeledName(
          "simj_build_info", {{"git_sha", git.sha},
                              {"build_type", build.build_type},
                              {"sanitizers", build.sanitizers}}))
      .Set(1.0);
}

std::string ToJson(const BenchResult& result) {
  JsonWriter json;
  json.BeginObject();
  json.Int("schema_version", result.schema_version);
  json.String("harness", result.harness);
  json.Double("unix_time_seconds", result.unix_time_seconds);

  json.BeginObject("git");
  json.String("sha", result.git.sha);
  json.Bool("dirty", result.git.dirty);
  json.EndObject();

  json.BeginObject("build");
  json.String("compiler", result.build.compiler);
  json.String("build_type", result.build.build_type);
  json.String("sanitizers", result.build.sanitizers);
  json.Bool("debug_checks", result.build.debug_checks);
  json.EndObject();

  json.BeginObject("hardware");
  json.Int("hardware_concurrency", result.hardware.hardware_concurrency);
  json.Int("page_size_bytes", result.hardware.page_size_bytes);
  json.EndObject();

  json.BeginObject("params");
  for (const auto& [key, value] : result.params) json.String(key, value);
  json.EndObject();

  json.BeginArray("samples");
  for (const Sample& sample : result.samples) {
    json.BeginObject();
    json.String("name", sample.name);
    if (sample.skipped) json.Bool("skipped", true);
    WriteStats(&json, "wall_seconds", sample.wall_seconds);
    WriteStats(&json, "cpu_seconds", sample.cpu_seconds);
    json.BeginObject("values");
    for (const auto& [key, value] : sample.values) json.Double(key, value);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();

  json.Double("wall_seconds_total", result.wall_seconds_total);
  json.Int("peak_rss_bytes", result.peak_rss_bytes);
  if (!result.profile_json.empty()) {
    // Already-rendered simj_profile_v1 object; spliced raw, not re-escaped.
    json.Field("profile", result.profile_json);
  }
  if (!result.heap_json.empty()) {
    // Already-rendered simj_heap_v1 object; same splice contract.
    json.Field("heap", result.heap_json);
  }

  json.BeginObject("metrics");
  json.BeginObject("counters");
  for (const auto& [name, value] : result.metrics.counters) {
    json.Int(name, value);
  }
  json.EndObject();
  json.BeginObject("gauges");
  for (const auto& [name, value] : result.metrics.gauges) {
    json.Double(name, value);
  }
  json.EndObject();
  json.BeginObject("histograms");
  for (const auto& [name, histogram] : result.metrics.histograms) {
    json.BeginObject(name);
    json.Int("count", histogram.count);
    json.Double("sum_seconds", histogram.sum_seconds);
    json.Double("p50", histogram.Quantile(0.5));
    json.Double("p99", histogram.Quantile(0.99));
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();

  json.EndObject();
  return json.Take();
}

Status WriteJsonFile(const BenchResult& result, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    return InvalidArgumentError("cannot open run record path: " + path);
  }
  os << ToJson(result);
  os.flush();
  if (!os) {
    return InternalError("failed writing run record to: " + path);
  }
  return Status::Ok();
}

}  // namespace simj::run_record
