#include "util/flight_recorder.h"

#include <cstdio>

#include "util/trace.h"  // JsonEscape, Tracer::NowUs

namespace simj::flight {

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder =
      new FlightRecorder();  // simj-lint: allow(new) leaky singleton
  return *recorder;
}

void FlightRecorder::Record(Event event) {
  MutexLock lock(mu_);
  // The tracer epoch is the process timebase every other sink already uses,
  // so flight-recorder timestamps line up with trace spans.
  event.seq = next_seq_++;
  event.ts_us = trace::Tracer::Global().NowUs();
  if (static_cast<int>(ring_.size()) >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(event));
}

std::vector<Event> FlightRecorder::Events() const {
  MutexLock lock(mu_);
  return std::vector<Event>(ring_.begin(), ring_.end());
}

int64_t FlightRecorder::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::string FlightRecorder::ToJson() const {
  std::vector<Event> events;
  int64_t dropped;
  {
    MutexLock lock(mu_);
    events.assign(ring_.begin(), ring_.end());
    dropped = dropped_;
  }
  return EventsJson(events, dropped);
}

void FlightRecorder::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

std::string EventsJson(const std::vector<Event>& events, int64_t dropped) {
  std::string out = "{\"schema\":\"simj_flight_v1\",\"dropped\":";
  out += std::to_string(dropped);
  out += ",\"events\":[";
  char buffer[64];
  bool first = true;
  for (const Event& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"seq\":";
    out += std::to_string(event.seq);
    std::snprintf(buffer, sizeof(buffer), ",\"ts_us\":%.3f", event.ts_us);
    out += buffer;
    out += ",\"type\":\"";
    out += trace::JsonEscape(event.type);
    out += "\",\"worker\":";
    out += std::to_string(event.worker);
    out += ",\"shard\":";
    out += std::to_string(event.shard);
    out += ",\"attempt\":";
    out += std::to_string(event.attempt);
    out += ",\"detail\":\"";
    out += trace::JsonEscape(event.detail);
    out += "\"}";
  }
  out += "]}\n";
  return out;
}

}  // namespace simj::flight
