// Coordinator flight recorder: a bounded in-memory ring of timestamped
// scheduling decisions, dumped as deterministic JSON for post-mortem
// analysis (--events_out=).
//
// The distributed-join coordinator records one Event per decision — deal,
// dispatch, steal, complete, requeue, restart, fault observed, worker
// death, stall, fallback (string constants live in src/dist/clusterz.h so
// util stays ignorant of dist semantics). Events carry a process-wide
// monotone sequence number assigned at Record() time, so the dump's order
// IS the decision order even when timestamps collide; DESIGN.md §10 shows
// how replaying deal/steal/requeue/restart events reconstructs the exact
// final shard-to-worker assignment.
//
// The ring is bounded (default 4096 events): when full, the oldest events
// are dropped and dropped() counts them — a post-mortem is best-effort by
// design, never a memory hazard. Recording is a mutex-guarded push; the
// coordinator only records on scheduling transitions (dozens per shard at
// most), never per pair.
//
// This lives in util (not dist) so bench_util can dump --events_out
// without linking the dist layer.

#ifndef SIMJ_UTIL_FLIGHT_RECORDER_H_
#define SIMJ_UTIL_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/sync.h"

namespace simj::flight {

struct Event {
  int64_t seq = 0;     // assigned by Record(); process-wide decision order
  double ts_us = 0.0;  // microseconds since the recorder epoch
  std::string type;    // "deal", "steal", "requeue", ... (see dist/clusterz.h)
  int worker = -1;     // -1 = not worker-specific
  int shard = -1;      // -1 = not shard-specific
  int attempt = -1;    // -1 = not attempt-specific
  std::string detail;  // free-form context ("victim=2", "exit status 3")
};

class FlightRecorder {
 public:
  explicit FlightRecorder(int capacity = 4096) : capacity_(capacity) {}

  static FlightRecorder& Global();

  // Stamps seq/ts and appends; drops the oldest event when full.
  void Record(Event event);

  // Point-in-time copy, oldest first.
  [[nodiscard]] std::vector<Event> Events() const;

  // Events discarded because the ring was full.
  [[nodiscard]] int64_t dropped() const;

  // Deterministic JSON dump of the current ring (see EventsJson).
  [[nodiscard]] std::string ToJson() const;

  // Discards all events and resets seq/dropped. The coordinator clears the
  // global recorder at the start of each sharded run.
  void Clear();

 private:
  const int capacity_;
  // Leaf lock in practice today, except that the dist coordinator records
  // events while holding its own mutex — so the documented order is
  // Coordinator::mu_ before FlightRecorder::mu_ (see tools/lock_order.py).
  mutable Mutex mu_;
  std::deque<Event> ring_ SIMJ_GUARDED_BY(mu_);
  int64_t next_seq_ SIMJ_GUARDED_BY(mu_) = 0;
  int64_t dropped_ SIMJ_GUARDED_BY(mu_) = 0;
};

// Renders `{"schema":"simj_flight_v1","dropped":N,"events":[...]}` with one
// object per event ({"seq","ts_us","type","worker","shard","attempt",
// "detail"}), byte-deterministic for a given event list. Exposed so tests
// can golden-check rendering without going through the global ring.
[[nodiscard]] std::string EventsJson(const std::vector<Event>& events,
                                     int64_t dropped);

}  // namespace simj::flight

#endif  // SIMJ_UTIL_FLIGHT_RECORDER_H_
