#include "util/statusz.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <utility>

#include "util/health.h"
#include "util/heap_profiler.h"
#include "util/log.h"
#include "util/mem.h"
#include "util/metrics.h"
#include "util/profiler.h"
#include "util/run_record.h"
#include "util/sync.h"
#include "util/trace.h"

namespace simj::statusz {

namespace {

// Per-connection read budget: a request line plus headers; anything longer
// is not a request we answer.
constexpr size_t kMaxRequestBytes = 4096;

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                code, reason, content_type, body.size());
  return std::string(header) + body;
}

std::string NotFound() {
  return HttpResponse(404, "Not Found", "text/plain", "not found\n");
}

std::string MethodNotAllowed() {
  return HttpResponse(405, "Method Not Allowed", "text/plain",
                      "only GET is supported\n");
}

// /profilez?seconds=N&hz=M&format=json|folded — on-demand CPU capture.
// Deliberately synchronous: the single serving thread blocks for the
// capture window, which also serializes concurrent capture requests (a
// second caller while armed gets 409 instead of corrupting the first).
std::string ProfilezResponse(const std::string& query) {
  double seconds = 1.0;
  int hz = 99;
  std::string format = "json";
  size_t pos = 0;
  while (pos < query.size()) {
    const size_t amp = query.find('&', pos);
    const std::string pair =
        query.substr(pos, amp == std::string::npos ? amp : amp - pos);
    pos = amp == std::string::npos ? query.size() : amp + 1;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "seconds") {
      char* end = nullptr;
      seconds = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return HttpResponse(400, "Bad Request", "text/plain",
                            "unparseable seconds: " + value + "\n");
      }
    } else if (key == "hz") {
      char* end = nullptr;
      hz = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      if (end == value.c_str() || *end != '\0') {
        return HttpResponse(400, "Bad Request", "text/plain",
                            "unparseable hz: " + value + "\n");
      }
    } else if (key == "format") {
      format = value;
    }
  }
  if (format != "json" && format != "folded") {
    return HttpResponse(400, "Bad Request", "text/plain",
                        "format must be json or folded\n");
  }
  // Well-formed but extreme values are clamped, not rejected: the window
  // bounds protect the serving thread, not the caller's intent.
  seconds = std::min(std::max(seconds, 0.05), 60.0);
  hz = std::min(std::max(hz, 1), 1000);
  if (prof::ProfilingActive()) {
    return HttpResponse(409, "Conflict", "text/plain",
                        "profiler already armed\n");
  }
  StatusOr<prof::Profile> profile = prof::CaptureProfile(seconds, hz);
  if (!profile.ok()) {
    // E.g. disabled under TSan, or no per-thread timer could be armed.
    return HttpResponse(503, "Service Unavailable", "text/plain",
                        profile.status().ToString() + "\n");
  }
  if (format == "folded") {
    return HttpResponse(200, "OK", "text/plain",
                        prof::FoldedText(*profile));
  }
  return HttpResponse(200, "OK", "application/json",
                      prof::ProfileJson(*profile));
}

// /heapz?seconds=N&sample_bytes=B&format=json|folded — on-demand heap
// capture. Same synchronous contract as /profilez: the serving thread
// blocks for the window and a concurrent capture gets 409.
std::string HeapzResponse(const std::string& query) {
  double seconds = 1.0;
  int64_t sample_bytes = heapprof::kDefaultSampleBytes;
  std::string format = "json";
  size_t pos = 0;
  while (pos < query.size()) {
    const size_t amp = query.find('&', pos);
    const std::string pair =
        query.substr(pos, amp == std::string::npos ? amp : amp - pos);
    pos = amp == std::string::npos ? query.size() : amp + 1;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "seconds") {
      char* end = nullptr;
      seconds = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return HttpResponse(400, "Bad Request", "text/plain",
                            "unparseable seconds: " + value + "\n");
      }
    } else if (key == "sample_bytes") {
      char* end = nullptr;
      sample_bytes = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return HttpResponse(400, "Bad Request", "text/plain",
                            "unparseable sample_bytes: " + value + "\n");
      }
    } else if (key == "format") {
      format = value;
    }
  }
  if (format != "json" && format != "folded") {
    return HttpResponse(400, "Bad Request", "text/plain",
                        "format must be json or folded\n");
  }
  seconds = std::min(std::max(seconds, 0.05), 60.0);
  sample_bytes = std::min(std::max(sample_bytes, int64_t{1024}),
                          int64_t{1} << 32);
  if (heapprof::HeapProfilingActive()) {
    return HttpResponse(409, "Conflict", "text/plain",
                        "heap profiler already armed\n");
  }
  StatusOr<heapprof::HeapProfile> profile =
      heapprof::CaptureHeapProfile(seconds, sample_bytes);
  if (!profile.ok()) {
    // E.g. disabled under sanitizers, or a capture raced us to arm.
    return HttpResponse(503, "Service Unavailable", "text/plain",
                        profile.status().ToString() + "\n");
  }
  if (format == "folded") {
    return HttpResponse(200, "OK", "text/plain",
                        heapprof::HeapFoldedText(*profile));
  }
  return HttpResponse(200, "OK", "application/json",
                      heapprof::HeapProfileJson(*profile));
}

struct EndpointRegistry {
  Mutex mu;
  std::vector<Endpoint> endpoints SIMJ_GUARDED_BY(mu);
};

EndpointRegistry& GlobalEndpoints() {
  static EndpointRegistry* registry =
      new EndpointRegistry();  // simj-lint: allow(new) leaky singleton
  return *registry;
}

}  // namespace

void RegisterEndpoint(Endpoint endpoint) {
  EndpointRegistry& registry = GlobalEndpoints();
  MutexLock lock(registry.mu);
  for (Endpoint& existing : registry.endpoints) {
    if (existing.path == endpoint.path) {
      existing = std::move(endpoint);
      return;
    }
  }
  registry.endpoints.push_back(std::move(endpoint));
}

std::string StatusBody(const std::vector<Section>& sections,
                       double uptime_seconds) {
  run_record::GitInfo git = run_record::QueryGitInfo();
  run_record::BuildInfo build = run_record::CurrentBuildInfo();
  std::string out = "{";
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "\"git_sha\":\"%s\",\"git_dirty\":%s,\"compiler\":\"%s\","
                "\"build_type\":\"%s\",\"sanitizers\":\"%s\","
                "\"debug_checks\":%s,\"uptime_seconds\":%.3f,"
                "\"rss_bytes\":%lld,\"peak_rss_bytes\":%lld",
                trace::JsonEscape(git.sha).c_str(),
                git.dirty ? "true" : "false",
                trace::JsonEscape(build.compiler).c_str(),
                trace::JsonEscape(build.build_type).c_str(),
                trace::JsonEscape(build.sanitizers).c_str(),
                build.debug_checks ? "true" : "false", uptime_seconds,
                static_cast<long long>(mem::CurrentRssBytes()),
                static_cast<long long>(mem::PeakRssBytes()));
  out += buffer;
  for (const Section& section : sections) {
    out += ",\"";
    out += trace::JsonEscape(section.name);
    out += "\":";
    out += section.json ? section.json() : "null";
  }
  out += "}\n";
  return out;
}

std::string TracezBody() {
  std::string out = "{\"threads\":[";
  char buffer[512];
  bool first_thread = true;
  for (const trace::RecentThreadSpans& thread :
       trace::Tracer::Global().RecentSpans()) {
    if (!first_thread) out += ",";
    first_thread = false;
    std::snprintf(buffer, sizeof(buffer), "{\"tid\":%d,\"name\":\"%s\",\"spans\":[",
                  thread.tid, trace::JsonEscape(thread.name).c_str());
    out += buffer;
    bool first_span = true;
    for (const trace::TraceEvent& span : thread.spans) {
      if (!first_span) out += ",";
      first_span = false;
      std::snprintf(buffer, sizeof(buffer),
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ts_us\":%.3f,"
                    "\"dur_us\":%.3f}",
                    trace::JsonEscape(span.name).c_str(),
                    trace::JsonEscape(span.category).c_str(), span.ts_us,
                    span.dur_us);
      out += buffer;
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

Status Server::Start(const Options& options) {
  if (running()) {
    return FailedPreconditionError("statusz server already running");
  }
  options_ = options;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("statusz: socket() failed: ") +
                         std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // operator loopback only
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = InternalError(
        std::string("statusz: bind(127.0.0.1:") +
        std::to_string(options.port) + ") failed: " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) < 0) {
    Status status = InternalError(std::string("statusz: listen() failed: ") +
                                  std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    Status status = InternalError(
        std::string("statusz: getsockname() failed: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  listen_fd_ = fd;
  bound_port_ = ntohs(addr.sin_port);
  start_unix_seconds_ = run_record::NowUnixSeconds();

  // Arm the live-trace ring so /tracez has spans to show. (Full tracing
  // stays under its own --trace_out switch.)
  trace::Tracer::Global().SetRecentRing(true);

  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  SIMJ_LOG(INFO) << "statusz listening on http://127.0.0.1:" << bound_port_;
  return Status::Ok();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  // Wake the blocking accept(): shutdown makes it return with an error even
  // on platforms where close() alone does not.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  bound_port_ = 0;
  trace::Tracer::Global().SetRecentRing(false);
}

std::string Server::HandleRequest(const std::string& method,
                                  const std::string& request_path) const {
  if (method != "GET") return MethodNotAllowed();
  // Split off the query string: /profilez takes parameters; every other
  // route matches on the bare path and ignores any query.
  const size_t query_start = request_path.find('?');
  const std::string path = request_path.substr(0, query_start);
  const std::string query = query_start == std::string::npos
                                ? std::string()
                                : request_path.substr(query_start + 1);
  if (path == "/profilez") return ProfilezResponse(query);
  if (path == "/heapz") return HeapzResponse(query);
  if (path == "/healthz") {
    return HttpResponse(200, "OK", "application/json", health::HealthzBody());
  }
  if (path == "/metricsz") {
    return HttpResponse(200, "OK", "text/plain; version=0.0.4",
                        metrics::Registry::Global().ExpositionText());
  }
  if (path == "/statusz") {
    double uptime = run_record::NowUnixSeconds() - start_unix_seconds_;
    return HttpResponse(200, "OK", "application/json",
                        StatusBody(options_.sections, uptime));
  }
  if (path == "/tracez") {
    return HttpResponse(200, "OK", "application/json", TracezBody());
  }
  {
    EndpointRegistry& registry = GlobalEndpoints();
    MutexLock lock(registry.mu);
    for (const Endpoint& endpoint : registry.endpoints) {
      if (endpoint.path == path && endpoint.body) {
        // endpoint.body() is a std::function the static extractor cannot
        // follow; registrants declare what their bodies lock (see the
        // simj-lock-order comments in src/dist/clusterz.cc).
        return HttpResponse(200, "OK", endpoint.content_type.c_str(),
                            endpoint.body());
      }
    }
  }
  return NotFound();
}

void Server::AcceptLoop() {
  trace::SetThisThreadName("statusz");
  while (running()) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (!running()) break;  // woken by Stop()
      if (errno == EINTR) continue;
      SIMJ_LOG(WARN) << "statusz: accept() failed: " << std::strerror(errno);
      break;
    }
    // A stuck client must not wedge the single server thread.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

    // Read until the end of the headers (we never accept request bodies).
    std::string request;
    char chunk[1024];
    while (request.size() < kMaxRequestBytes &&
           request.find("\r\n\r\n") == std::string::npos) {
      ssize_t n = ::recv(conn, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      request.append(chunk, static_cast<size_t>(n));
    }

    std::string response;
    size_t method_end = request.find(' ');
    size_t path_end = method_end == std::string::npos
                          ? std::string::npos
                          : request.find(' ', method_end + 1);
    if (path_end == std::string::npos) {
      response = HttpResponse(400, "Bad Request", "text/plain",
                              "malformed request line\n");
    } else {
      response = HandleRequest(
          request.substr(0, method_end),
          request.substr(method_end + 1, path_end - method_end - 1));
    }
    size_t sent = 0;
    while (sent < response.size()) {
      ssize_t n = ::send(conn, response.data() + sent, response.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(conn);
  }
}

}  // namespace simj::statusz
