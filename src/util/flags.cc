#include "util/flags.h"

#include <cstdlib>

#include "util/strings.h"

namespace simj {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) continue;
    size_t eq = arg.find('=');
    if (eq == std::string::npos) continue;
    std::string key = arg.substr(2, eq - 2);
    keys_.push_back(key);
    values_[key] = arg.substr(eq + 1);
  }
}

bool Flags::Has(const std::string& key) const {
  return values_.contains(key);
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  std::string lowered = ToLower(it->second);
  return lowered == "1" || lowered == "true" || lowered == "yes";
}

}  // namespace simj
