// simj-lint: allow-file(io) -- this is the one file allowed to write to
// stderr: every SIMJ_LOG statement in the tree funnels through the sinks
// defined here.

#include "util/log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/strings.h"

namespace simj::log {

namespace {

double NowUnixSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// The installed sink; nullptr means "use the built-in stderr sink".
// Bundled with its mutex so the guarded_by relation is expressible (and
// visible to tools/lock_order.py).
struct SinkState {
  Mutex mu;
  std::unique_ptr<Sink> slot SIMJ_GUARDED_BY(mu);
};

SinkState& GlobalSinkState() {
  static SinkState* state = new SinkState();  // simj-lint: allow(new) leaky singleton
  return *state;
}

StderrSink& BuiltinStderrSink() {
  static StderrSink sink;
  return sink;
}

Entry MakeEntry(Level level, const char* file, int line,
                std::string message) {
  Entry entry;
  entry.level = level;
  entry.file = file;
  entry.line = line;
  entry.unix_seconds = NowUnixSeconds();
  entry.thread_id = ThisThreadLogId();
  entry.message = std::move(message);
  return entry;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
  }
  return "?";
}

bool ParseLevel(const std::string& name, Level* out) {
  const std::string lower = ToLower(name);
  if (lower == "debug") {
    *out = Level::kDebug;
  } else if (lower == "info") {
    *out = Level::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = Level::kWarn;
  } else if (lower == "error") {
    *out = Level::kError;
  } else {
    return false;
  }
  return true;
}

void SetMinLevel(Level level) {
  internal::g_min_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

int ThisThreadLogId() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string FormatEntryText(const Entry& entry) {
  // Wall-clock time of day (UTC), computed arithmetically so the formatter
  // has no libc time dependency.
  const int64_t whole = static_cast<int64_t>(entry.unix_seconds);
  const int millis = static_cast<int>((entry.unix_seconds - whole) * 1e3);
  const int second_of_day = static_cast<int>(whole % 86400);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%c %02d:%02d:%02d.%03d t%d ",
                LevelName(entry.level)[0], second_of_day / 3600,
                (second_of_day / 60) % 60, second_of_day % 60, millis,
                entry.thread_id);
  std::string out = buffer;
  out += entry.file;
  std::snprintf(buffer, sizeof(buffer), ":%d] ", entry.line);
  out += buffer;
  out += entry.message;
  return out;
}

std::string FormatEntryJson(const Entry& entry) {
  char buffer[64];
  std::string out = "{\"ts\":";
  std::snprintf(buffer, sizeof(buffer), "%.6f", entry.unix_seconds);
  out += buffer;
  out += ",\"level\":\"";
  out += LevelName(entry.level);
  out += "\",\"file\":\"";
  out += JsonEscape(entry.file);
  std::snprintf(buffer, sizeof(buffer), "\",\"line\":%d,\"tid\":%d,",
                entry.line, entry.thread_id);
  out += buffer;
  out += "\"msg\":\"";
  out += JsonEscape(entry.message);
  out += "\"}";
  return out;
}

void StderrSink::Write(const Entry& entry) {
  std::string line = FormatEntryText(entry);
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

JsonLinesSink::JsonLinesSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {}

JsonLinesSink::~JsonLinesSink() {
  if (file_ != nullptr) std::fclose(static_cast<FILE*>(file_));
}

void JsonLinesSink::Write(const Entry& entry) {
  if (file_ == nullptr) return;
  std::string line = FormatEntryJson(entry);
  line += '\n';
  FILE* file = static_cast<FILE*>(file_);
  std::fwrite(line.data(), 1, line.size(), file);
  std::fflush(file);
}

void CaptureSink::Write(const Entry& entry) {
  MutexLock lock(mu_);
  entries_.push_back(entry);
}

std::vector<Entry> CaptureSink::Entries() const {
  MutexLock lock(mu_);
  return entries_;
}

std::unique_ptr<Sink> SetSink(std::unique_ptr<Sink> sink) {
  SinkState& state = GlobalSinkState();
  MutexLock lock(state.mu);
  std::unique_ptr<Sink> previous = std::move(state.slot);
  state.slot = std::move(sink);
  return previous;
}

void Write(Level level, const char* file, int line, std::string message) {
  Entry entry = MakeEntry(level, file, line, std::move(message));
  SinkState& state = GlobalSinkState();
  MutexLock lock(state.mu);
  Sink* sink = state.slot ? state.slot.get() : &BuiltinStderrSink();
  sink->Write(entry);
}

void WriteCheckFailureAndAbort(const char* file, int line,
                               const std::string& message) {
  Entry entry = MakeEntry(Level::kError, file, line, message);
  {
    SinkState& state = GlobalSinkState();
    MutexLock lock(state.mu);
    Sink* sink = state.slot ? state.slot.get() : &BuiltinStderrSink();
    sink->Write(entry);
    // A capture or JSON sink must not swallow the last words of an
    // aborting process; mirror them to stderr.
    if (sink != &BuiltinStderrSink()) BuiltinStderrSink().Write(entry);
  }
  std::abort();
}

}  // namespace simj::log
