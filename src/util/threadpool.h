// Work-stealing thread-pool executor for the parallel join paths.
//
// Each worker owns a deque of tasks: it pops from the back of its own
// queue (LIFO, cache-friendly for recursively submitted work) and steals
// from the front of a victim's queue when its own runs dry (FIFO, so
// thieves take the oldest — usually largest — pending chunks). Tasks
// receive the executing worker's index so callers can keep per-thread
// accumulators (stats, result buffers) and merge them after Wait().
//
// ParallelFor shards an index range [0, n) into chunks, scatters the
// chunks round-robin across the workers' queues, and lets stealing do the
// load balancing. With num_threads <= 1 (or a trivially small range) it
// degenerates to an inline serial loop on worker 0 — the exact legacy
// code path, no pool constructed.

#ifndef SIMJ_UTIL_THREADPOOL_H_
#define SIMJ_UTIL_THREADPOOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace simj {

// Resolves a user-facing thread-count parameter: 0 means "one per
// hardware thread", anything else is taken literally (minimum 1).
int ResolveThreadCount(int num_threads);

class ThreadPool {
 public:
  // Tasks take the index of the worker running them, in [0, num_workers()).
  using Task = std::function<void(int)>;

  // Spawns ResolveThreadCount(num_threads) workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Based on queues_, which is fully built before the first worker thread
  // starts (workers_ is still growing while early workers already run).
  int num_workers() const { return static_cast<int>(queues_.size()); }

  // Enqueues a task on one worker's queue (round-robin). Thread-safe.
  void Submit(Task task);

  // Enqueues a task on a specific worker's queue; other workers may still
  // steal it. `worker` must be in [0, num_workers()).
  void SubmitTo(int worker, Task task);

  // Blocks until every submitted task has finished. The pool is reusable
  // after Wait() returns.
  void Wait();

 private:
  struct WorkerQueue {
    Mutex mu;
    std::deque<Task> tasks SIMJ_GUARDED_BY(mu);
  };

  bool PopOwn(int worker, Task* task);
  bool StealFrom(int thief, Task* task);
  void WorkerLoop(int worker);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Lock order: mu_ before WorkerQueue::mu (WorkerLoop re-checks the
  // queues under mu_ before sleeping). Never take mu_ while holding a
  // queue lock.
  Mutex mu_;  // guards the condition variables below
  CondVar work_available_;
  CondVar all_idle_;
  std::atomic<int64_t> unfinished_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> next_queue_{0};
};

// Runs fn(worker_index, i) for every i in [0, n), sharded across
// ResolveThreadCount(num_threads) workers with work stealing. Blocks until
// every index has been processed. Exact serial fallback (worker_index 0,
// ascending i) when the resolved count is 1 or n < 2.
void ParallelFor(int num_threads, int64_t n,
                 const std::function<void(int, int64_t)>& fn);

}  // namespace simj

#endif  // SIMJ_UTIL_THREADPOOL_H_
