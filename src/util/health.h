// Process-wide health registry backing the /healthz endpoint.
//
// Components that can detect their own degradation (the stall watchdog, the
// distributed-join coordinator observing a dead worker) report it here with
// a short reason string; they clear it when the condition resolves (a
// worker restart, the next join starting cleanly). /healthz renders
//
//   {"status":"ok"}                                  — no component degraded
//   {"status":"degraded","reason":"<c1>: <r1>; ..."} — reasons sorted by
//                                                      component name
//
// so a liveness probe stays a trivial string compare while an operator
// still sees *why* the process is unhealthy. The registry is intentionally
// tiny: a mutex-guarded map touched only on state transitions — never on
// the join hot path.

#ifndef SIMJ_UTIL_HEALTH_H_
#define SIMJ_UTIL_HEALTH_H_

#include <string>

namespace simj::health {

// Marks `component` degraded with a human-readable reason. Overwrites any
// previous reason for the same component.
void SetUnhealthy(const std::string& component, const std::string& reason);

// Clears `component`'s degradation (no-op if it was healthy).
void SetHealthy(const std::string& component);

// True when any component is currently degraded.
bool IsDegraded();

// The /healthz response body (JSON, newline-terminated).
std::string HealthzBody();

// Clears all components. Tests only.
void ResetForTesting();

}  // namespace simj::health

#endif  // SIMJ_UTIL_HEALTH_H_
