// Process memory accounting for the join pipeline and the bench telemetry.
//
// CurrentRssBytes/PeakRssBytes read the resident set from
// /proc/self/status (VmRSS / VmHWM) on Linux; on other POSIX systems the
// peak falls back to getrusage(RU_MAXRSS) and the current value reports 0.
// A return of 0 always means "unavailable", never "zero bytes resident".
//
// SampleRssToMetrics publishes both into the process metrics registry:
//   simj_mem_current_rss_bytes   gauge, last sampled value
//   simj_mem_peak_rss_bytes     gauge, high-water (monotonic via UpdateMax)
// The join pipeline samples once per join, so the cost is one /proc read
// per join, not per pair; bench harnesses sample again at exit so the
// BenchResult record carries the true process peak.

#ifndef SIMJ_UTIL_MEM_H_
#define SIMJ_UTIL_MEM_H_

#include <cstdint>

namespace simj::mem {

// Bytes currently resident (VmRSS). 0 when unavailable.
int64_t CurrentRssBytes();

// High-water resident set of the process (VmHWM / RU_MAXRSS). 0 when
// unavailable. Never decreases over the process lifetime.
int64_t PeakRssBytes();

// The VM page size. 0 when unavailable.
int64_t PageSizeBytes();

// Samples both RSS figures into the metrics registry gauges named above.
void SampleRssToMetrics();

}  // namespace simj::mem

#endif  // SIMJ_UTIL_MEM_H_
