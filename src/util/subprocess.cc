#include "util/subprocess.h"

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include <dirent.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>

#include "util/metrics.h"

namespace simj::subprocess {

namespace {

// Pipe-protocol telemetry. The references are resolved EAGERLY at static
// initialization (single-threaded, pre-main) instead of lazily at first
// use: forked shard workers call WriteFrame/ReadFrame too, and a lazy
// Registry::GetCounter after fork() could deadlock if the fork landed
// while another parent thread held the registry mutex. Relaxed atomic adds
// on already-resolved references are fork-safe.
struct FrameCounters {
  metrics::Counter& frames_written;
  metrics::Counter& frames_read;
  metrics::Counter& bytes_written;
  metrics::Counter& bytes_read;
  FrameCounters()
      : frames_written(metrics::Registry::Global().GetCounter(
            "simj_subprocess_frames_written_total")),
        frames_read(metrics::Registry::Global().GetCounter(
            "simj_subprocess_frames_read_total")),
        bytes_written(metrics::Registry::Global().GetCounter(
            "simj_subprocess_frame_bytes_written_total")),
        bytes_read(metrics::Registry::Global().GetCounter(
            "simj_subprocess_frame_bytes_read_total")) {}
};

FrameCounters g_frame_counters;

// Full write with EINTR/short-write handling.
Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("pipe write failed: ") +
                           std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Full read. Returns the number of bytes read: `size` on success, 0 on
// clean EOF before the first byte, and a negative errno-style failure is
// reported through *error. Short reads mid-buffer report EOF via *eof.
Status ReadAll(int fd, char* data, size_t size, bool* clean_eof) {
  *clean_eof = false;
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("pipe read failed: ") +
                           std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) {
        *clean_eof = true;
        return Status::Ok();
      }
      return InternalError("pipe closed mid-frame (truncated)");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

void IgnoreSigpipeOnce() {
  static const bool installed = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)installed;
}

// Child-side: close every inherited descriptor except stdio and the
// child's own pipe ends. fork() duplicates ALL parent fds — including the
// pipes of every OTHER ChildProcess — and a leaked write end keeps a dead
// sibling's response pipe from ever reaching EOF in the parent (the
// coordinator would block forever waiting for a worker it believes is
// alive). Enumerates /proc/self/fd to avoid scanning the whole rlimit
// range; falls back to a bounded sweep if /proc is unavailable.
void CloseAllFdsExcept(int keep1, int keep2) {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir != nullptr) {
    const int dir_fd = ::dirfd(dir);
    std::vector<int> to_close;
    while (struct dirent* entry = ::readdir(dir)) {
      char* end = nullptr;
      const long fd = std::strtol(entry->d_name, &end, 10);
      if (end == entry->d_name || *end != '\0') continue;
      if (fd <= 2 || fd == keep1 || fd == keep2 || fd == dir_fd) continue;
      to_close.push_back(static_cast<int>(fd));
    }
    ::closedir(dir);
    for (int fd : to_close) ::close(fd);
    return;
  }
  for (int fd = 3; fd < 4096; ++fd) {
    if (fd != keep1 && fd != keep2) ::close(fd);
  }
}

}  // namespace

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return InvalidArgumentError("frame exceeds kMaxFrameBytes");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char prefix[4];
  prefix[0] = static_cast<char>(length & 0xff);
  prefix[1] = static_cast<char>((length >> 8) & 0xff);
  prefix[2] = static_cast<char>((length >> 16) & 0xff);
  prefix[3] = static_cast<char>((length >> 24) & 0xff);
  Status status = WriteAll(fd, prefix, sizeof(prefix));
  if (!status.ok()) return status;
  status = WriteAll(fd, payload.data(), payload.size());
  if (!status.ok()) return status;
  g_frame_counters.frames_written.Increment();
  g_frame_counters.bytes_written.Add(
      static_cast<int64_t>(sizeof(prefix) + payload.size()));
  return Status::Ok();
}

StatusOr<std::string> ReadFrame(int fd) {
  char prefix[4];
  bool clean_eof = false;
  Status status = ReadAll(fd, prefix, sizeof(prefix), &clean_eof);
  if (!status.ok()) return status;
  if (clean_eof) return NotFoundError("pipe closed (EOF at frame boundary)");
  const uint32_t length = (static_cast<uint32_t>(prefix[0]) & 0xff) |
                          ((static_cast<uint32_t>(prefix[1]) & 0xff) << 8) |
                          ((static_cast<uint32_t>(prefix[2]) & 0xff) << 16) |
                          ((static_cast<uint32_t>(prefix[3]) & 0xff) << 24);
  if (length > kMaxFrameBytes) {
    return InternalError("frame length prefix exceeds kMaxFrameBytes "
                         "(protocol corruption)");
  }
  std::string payload(length, '\0');
  if (length > 0) {
    status = ReadAll(fd, payload.data(), length, &clean_eof);
    if (!status.ok()) return status;
    if (clean_eof) return InternalError("pipe closed mid-frame (truncated)");
  }
  g_frame_counters.frames_read.Increment();
  g_frame_counters.bytes_read.Add(
      static_cast<int64_t>(sizeof(prefix) + length));
  return payload;
}

ChildProcess::~ChildProcess() {
  CloseFds();
  if (pid_ > 0) {
    Kill();
    Wait();
  }
}

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      request_write_fd_(std::exchange(other.request_write_fd_, -1)),
      response_read_fd_(std::exchange(other.response_read_fd_, -1)) {}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    CloseFds();
    if (pid_ > 0) {
      Kill();
      Wait();
    }
    pid_ = std::exchange(other.pid_, -1);
    request_write_fd_ = std::exchange(other.request_write_fd_, -1);
    response_read_fd_ = std::exchange(other.response_read_fd_, -1);
  }
  return *this;
}

void ChildProcess::CloseFds() {
  if (request_write_fd_ >= 0) ::close(request_write_fd_);
  if (response_read_fd_ >= 0) ::close(response_read_fd_);
  request_write_fd_ = -1;
  response_read_fd_ = -1;
}

StatusOr<ChildProcess> ChildProcess::Spawn(
    const std::function<int(int request_fd, int response_fd)>& child_main) {
  IgnoreSigpipeOnce();
  int request_pipe[2];  // parent writes [1], child reads [0]
  int response_pipe[2];  // child writes [1], parent reads [0]
  if (::pipe(request_pipe) != 0) {
    return InternalError(std::string("pipe() failed: ") +
                         std::strerror(errno));
  }
  if (::pipe(response_pipe) != 0) {
    int saved = errno;
    ::close(request_pipe[0]);
    ::close(request_pipe[1]);
    return InternalError(std::string("pipe() failed: ") +
                         std::strerror(saved));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    int saved = errno;
    ::close(request_pipe[0]);
    ::close(request_pipe[1]);
    ::close(response_pipe[0]);
    ::close(response_pipe[1]);
    return InternalError(std::string("fork() failed: ") +
                         std::strerror(saved));
  }
  if (pid == 0) {
    // Child: keep only its own pipe ends (dropping, in particular, fds of
    // sibling children's pipes — see CloseAllFdsExcept), run, and _exit
    // without touching atexit handlers (they belong to the parent's
    // lifecycle).
    CloseAllFdsExcept(request_pipe[0], response_pipe[1]);
    int code = child_main(request_pipe[0], response_pipe[1]);
    ::close(request_pipe[0]);
    ::close(response_pipe[1]);
    ::_exit(code);
  }
  ::close(request_pipe[0]);
  ::close(response_pipe[1]);
  ChildProcess child;
  child.pid_ = pid;
  child.request_write_fd_ = request_pipe[1];
  child.response_read_fd_ = response_pipe[0];
  return child;
}

void ChildProcess::Kill() {
  if (pid_ > 0) ::kill(pid_, SIGKILL);
}

int ChildProcess::Wait() {
  if (pid_ <= 0) return 0;
  int wstatus = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(pid_, &wstatus, 0);
  } while (reaped < 0 && errno == EINTR);
  pid_ = -1;
  if (reaped < 0) return 0;
  if (WIFEXITED(wstatus)) return WEXITSTATUS(wstatus);
  if (WIFSIGNALED(wstatus)) return -WTERMSIG(wstatus);
  return 0;
}

}  // namespace simj::subprocess
