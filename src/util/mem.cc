#include "util/mem.h"

#include <cstdio>
#include <cstring>

#include "util/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define SIMJ_MEM_HAVE_POSIX 1
#endif

namespace simj::mem {

namespace {

// Reads a "Key:   1234 kB" line from /proc/self/status. Returns -1 when
// the file or the key is unavailable (non-Linux).
int64_t ReadProcStatusKb(const char* key) {
  FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return -1;
  const size_t key_len = std::strlen(key);
  char line[256];
  int64_t value_kb = -1;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') {
      continue;
    }
    long long parsed = 0;
    if (std::sscanf(line + key_len + 1, "%lld", &parsed) == 1) {
      value_kb = parsed;
    }
    break;
  }
  std::fclose(file);
  return value_kb;
}

}  // namespace

int64_t CurrentRssBytes() {
  int64_t kb = ReadProcStatusKb("VmRSS");
  return kb < 0 ? 0 : kb * 1024;
}

int64_t PeakRssBytes() {
  int64_t kb = ReadProcStatusKb("VmHWM");
  if (kb >= 0) return kb * 1024;
#ifdef SIMJ_MEM_HAVE_POSIX
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return usage.ru_maxrss;  // bytes on macOS
#else
    return usage.ru_maxrss * 1024;  // kilobytes elsewhere
#endif
  }
#endif
  return 0;
}

int64_t PageSizeBytes() {
#ifdef SIMJ_MEM_HAVE_POSIX
  long page = sysconf(_SC_PAGESIZE);
  return page > 0 ? page : 0;
#else
  return 0;
#endif
}

void SampleRssToMetrics() {
  metrics::Registry& registry = metrics::Registry::Global();
  static bool help_registered = [&registry] {
    registry.SetHelp("simj_mem_current_rss_bytes",
                     "Resident set size at the last sample.");
    registry.SetHelp("simj_mem_peak_rss_bytes",
                     "High-water resident set size (monotonic).");
    return true;
  }();
  (void)help_registered;
  int64_t current = CurrentRssBytes();
  if (current > 0) {
    registry.GetGauge("simj_mem_current_rss_bytes")
        .Set(static_cast<double>(current));
  }
  int64_t peak = PeakRssBytes();
  if (peak > 0) {
    registry.GetGauge("simj_mem_peak_rss_bytes")
        .UpdateMax(static_cast<double>(peak));
  }
}

}  // namespace simj::mem
