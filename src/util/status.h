// Error handling without exceptions: Status carries an error code and
// message; StatusOr<T> carries either a value or a non-OK Status.
//
// Usage:
//   StatusOr<ParsedQuery> result = ParseSparql(text);
//   if (!result.ok()) return result.status();
//   Use(result.value());

#ifndef SIMJ_UTIL_STATUS_H_
#define SIMJ_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace simj {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT"...).
const char* StatusCodeName(StatusCode code);

// Value-type result of an operation that can fail. Copyable and movable.
// [[nodiscard]] at class level: any call that returns a Status and ignores
// it is a compile error under -Werror; explicitly discarded statuses must
// be annotated at the call site (see SIMJ_IGNORE_STATUS below).
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

// Holds either a T or a non-OK Status. Accessing value() on a non-OK
// StatusOr is a programmer error and aborts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit, so functions can `return value;` or `return status;`.
  StatusOr(T value) : rep_(std::move(value)) {}
  StatusOr(Status status) : rep_(std::move(status)) {
    SIMJ_CHECK(!std::get<Status>(rep_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    SIMJ_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    SIMJ_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    SIMJ_CHECK(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

namespace internal_status {

inline void CheckOkImpl(const Status& status, const char* expr,
                        const char* file, int line) {
  if (!status.ok()) {
    internal_check::CheckOpFailed(expr, "OK", status.ToString(), file, line);
  }
}

}  // namespace internal_status

}  // namespace simj

// Aborts (printing the status) when `expr` is not OK. The DCHECK mirror is
// compiled out unless the build defines SIMJ_DEBUG_CHECKS; use it for
// expensive validators on hot paths.
#define SIMJ_CHECK_OK(expr)                                                  \
  ::simj::internal_status::CheckOkImpl((expr), #expr " is OK", __FILE__, \
                                       __LINE__)

#ifdef SIMJ_DEBUG_CHECKS
#define SIMJ_DCHECK_OK(expr) SIMJ_CHECK_OK(expr)
#else
#define SIMJ_DCHECK_OK(expr)  \
  do {                        \
    if (false) {              \
      (void)(expr);           \
    }                         \
  } while (false)
#endif  // SIMJ_DEBUG_CHECKS

// Annotated discard for a Status the caller deliberately ignores. Requiring
// a macro (instead of a bare `(void)` cast) makes intentional discards
// greppable and lets tools/simj_lint.py flag unannotated ones.
#define SIMJ_IGNORE_STATUS(expr) \
  do {                           \
    auto simj_ignored = (expr);  \
    (void)simj_ignored;          \
  } while (false)

#endif  // SIMJ_UTIL_STATUS_H_
