// Lightweight assertion macros for programmer errors.
//
// SIMJ_CHECK(cond) aborts the process with a message when `cond` is false.
// These are for invariants that indicate a bug, never for recoverable
// conditions (use Status for those). Enabled in all build types.

#ifndef SIMJ_UTIL_CHECK_H_
#define SIMJ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace simj {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "SIMJ_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace internal_check
}  // namespace simj

#define SIMJ_CHECK(cond)                                            \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::simj::internal_check::CheckFailed(#cond, __FILE__, __LINE__); \
    }                                                               \
  } while (false)

#define SIMJ_CHECK_EQ(a, b) SIMJ_CHECK((a) == (b))
#define SIMJ_CHECK_NE(a, b) SIMJ_CHECK((a) != (b))
#define SIMJ_CHECK_LT(a, b) SIMJ_CHECK((a) < (b))
#define SIMJ_CHECK_LE(a, b) SIMJ_CHECK((a) <= (b))
#define SIMJ_CHECK_GT(a, b) SIMJ_CHECK((a) > (b))
#define SIMJ_CHECK_GE(a, b) SIMJ_CHECK((a) >= (b))

#endif  // SIMJ_UTIL_CHECK_H_
