// Lightweight assertion macros for programmer errors.
//
// SIMJ_CHECK(cond) aborts the process with a message when `cond` is false.
// The binary forms (SIMJ_CHECK_EQ, ...) additionally print both operand
// values, so a failure reads
//   SIMJ_CHECK failed: tau >= 0 (-3 vs. 0) at ged/edit_distance.cc:205
// Operands are evaluated exactly once. These are for invariants that
// indicate a bug, never for recoverable conditions (use Status for those).
// Enabled in all build types.
//
// SIMJ_DCHECK and friends are the debug-only mirrors: they compile to the
// same aborting checks when the build defines SIMJ_DEBUG_CHECKS (cmake
// -DSIMJ_DEBUG_CHECKS=ON) and to a no-op that never evaluates its
// arguments otherwise. Use them for expensive invariants — full-graph
// validation, GED postconditions — that would distort Release performance.

#ifndef SIMJ_UTIL_CHECK_H_
#define SIMJ_UTIL_CHECK_H_

#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

#include "util/log.h"

namespace simj {
namespace internal_check {

// Failures go through the structured-logging sink (ERROR level) so they
// land in JSON logs too; util/log.cc guarantees they also reach stderr
// when a custom sink is installed, then aborts.

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::string message = "SIMJ_CHECK failed: ";
  message += expr;
  log::WriteCheckFailureAndAbort(file, line, message);
}

[[noreturn]] inline void CheckOpFailed(const char* expr,
                                       const std::string& lhs,
                                       const std::string& rhs,
                                       const char* file, int line) {
  std::string message = "SIMJ_CHECK failed: ";
  message += expr;
  message += " (" + lhs + " vs. " + rhs + ")";
  log::WriteCheckFailureAndAbort(file, line, message);
}

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

// Best-effort stringification of a check operand for the failure message.
template <typename T>
std::string ValueString(const T& value) {
  if constexpr (std::is_same_v<T, bool>) {
    return value ? "true" : "false";
  } else if constexpr (IsStreamable<T>::value) {
    std::ostringstream out;
    out << value;
    return out.str();
  } else {
    return "<unprintable>";
  }
}

// Evaluates each operand exactly once and aborts with both values when the
// comparison fails. Perfect forwarding keeps move-only and reference
// semantics intact; comparison happens before stringification so operator<<
// side effects cannot mask the check.
template <typename A, typename B, typename Op>
void CheckOp(const A& a, const B& b, Op op, const char* expr,
             const char* file, int line) {
  if (!op(a, b)) {
    CheckOpFailed(expr, ValueString(a), ValueString(b), file, line);
  }
}

struct OpEq {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a == b; }
};
struct OpNe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a != b; }
};
struct OpLt {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a < b; }
};
struct OpLe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a <= b; }
};
struct OpGt {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a > b; }
};
struct OpGe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a >= b; }
};

}  // namespace internal_check
}  // namespace simj

#define SIMJ_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::simj::internal_check::CheckFailed(#cond, __FILE__, __LINE__); \
    }                                                                 \
  } while (false)

#define SIMJ_CHECK_OP_IMPL(a, b, op, expr)                              \
  ::simj::internal_check::CheckOp((a), (b), ::simj::internal_check::op(), \
                                  expr, __FILE__, __LINE__)

#define SIMJ_CHECK_EQ(a, b) SIMJ_CHECK_OP_IMPL(a, b, OpEq, #a " == " #b)
#define SIMJ_CHECK_NE(a, b) SIMJ_CHECK_OP_IMPL(a, b, OpNe, #a " != " #b)
#define SIMJ_CHECK_LT(a, b) SIMJ_CHECK_OP_IMPL(a, b, OpLt, #a " < " #b)
#define SIMJ_CHECK_LE(a, b) SIMJ_CHECK_OP_IMPL(a, b, OpLe, #a " <= " #b)
#define SIMJ_CHECK_GT(a, b) SIMJ_CHECK_OP_IMPL(a, b, OpGt, #a " > " #b)
#define SIMJ_CHECK_GE(a, b) SIMJ_CHECK_OP_IMPL(a, b, OpGe, #a " >= " #b)

// Debug-only mirrors. The no-op form keeps the condition inside an
// `if (false)` so it still type-checks but is never evaluated at runtime
// (and dead-code eliminates entirely).
#ifdef SIMJ_DEBUG_CHECKS

#define SIMJ_DCHECK(cond) SIMJ_CHECK(cond)
#define SIMJ_DCHECK_EQ(a, b) SIMJ_CHECK_EQ(a, b)
#define SIMJ_DCHECK_NE(a, b) SIMJ_CHECK_NE(a, b)
#define SIMJ_DCHECK_LT(a, b) SIMJ_CHECK_LT(a, b)
#define SIMJ_DCHECK_LE(a, b) SIMJ_CHECK_LE(a, b)
#define SIMJ_DCHECK_GT(a, b) SIMJ_CHECK_GT(a, b)
#define SIMJ_DCHECK_GE(a, b) SIMJ_CHECK_GE(a, b)

#else  // !SIMJ_DEBUG_CHECKS

#define SIMJ_DCHECK(cond) \
  do {                    \
    if (false) {          \
      (void)(cond);       \
    }                     \
  } while (false)
#define SIMJ_DCHECK_EQ(a, b) SIMJ_DCHECK((a) == (b))
#define SIMJ_DCHECK_NE(a, b) SIMJ_DCHECK((a) != (b))
#define SIMJ_DCHECK_LT(a, b) SIMJ_DCHECK((a) < (b))
#define SIMJ_DCHECK_LE(a, b) SIMJ_DCHECK((a) <= (b))
#define SIMJ_DCHECK_GT(a, b) SIMJ_DCHECK((a) > (b))
#define SIMJ_DCHECK_GE(a, b) SIMJ_DCHECK((a) >= (b))

#endif  // SIMJ_DEBUG_CHECKS

#endif  // SIMJ_UTIL_CHECK_H_
