#include "util/heap_profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <thread>
#include <utility>

#include "util/sync.h"

// ASan, TSan and MSan interpose the allocator themselves (poisoning,
// happens-before modeling, shadow bookkeeping); stacking our operator
// new/delete replacements on top would defeat their checks and backtrace()
// from inside an interposed allocation path is not sanitizer-safe. The
// hooks compile out entirely and StartHeapProfiling refuses, mirroring the
// CPU profiler's TSan refusal — /heapz answers 503, tests skip.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SIMJ_HEAP_PROFILER_UNDER_SANITIZER 1
#endif
#if !defined(SIMJ_HEAP_PROFILER_UNDER_SANITIZER) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SIMJ_HEAP_PROFILER_UNDER_SANITIZER 1
#endif
#endif

namespace simj::heapprof {

namespace {

// Leading backtrace() frames that belong to the profiler itself:
// [RecordSample, operator new variant] — both are real calls (RecordSample
// is noinline; replaceable operator new is never inlined without LTO), so
// the strip is positional, like the CPU profiler's handler-frame strip.
inline constexpr int kSkipFrames = 2;
// Open-addressed live-object table. Power of two; at kMaxLiveObjects the
// load factor stays 12.5%, so probe chains stay short.
inline constexpr size_t kAddrSlots = 1u << 16;
inline constexpr size_t kAddrMask = kAddrSlots - 1;
// Probe bound for both insertion and lookup (they must match: an entry is
// only ever stored within kMaxProbes of its home slot).
inline constexpr int kMaxProbes = 64;
// Slot meta packs (stack index << 40) | size; sizes cap at 1 TiB - 1.
inline constexpr uint64_t kSizeMask = (uint64_t{1} << 40) - 1;
inline constexpr uintptr_t kTombstone = 1;

// One aggregated (thread, stack) entry. The inuse counters are atomics
// because operator delete decrements them lock-free; everything else is
// touched only under Tables::mu (sample and drain paths).
struct StackEntry {
  std::atomic<int64_t> inuse_bytes{0};
  std::atomic<int64_t> inuse_objects{0};
  int64_t alloc_bytes = 0;
  int64_t alloc_objects = 0;
  // Drain baselines: drains ship deltas against these (inuse deltas may be
  // negative — they sum to the live level), and StartHeapProfiling
  // re-baselines so each capture reports only its own activity.
  int64_t shipped_inuse_bytes = 0;
  int64_t shipped_inuse_objects = 0;
  int64_t shipped_alloc_bytes = 0;
  int64_t shipped_alloc_objects = 0;
  int thread_key = 0;
  int depth = 0;           // stored frames (leaf-first, profiler-stripped)
  void* frames[kMaxFrames];
};

// addr transitions: 0 (empty) -> ptr (insert, under mu) -> kTombstone
// (free or stop-clear, by CAS — exactly one owner decrements) -> 0 or ptr
// (stop-clear / insert reuse, under mu). meta is published before addr
// with release order, so a matching acquire load of addr sees it.
struct AddrSlot {
  std::atomic<uintptr_t> addr{0};
  std::atomic<uint64_t> meta{0};
};

// The per-capture state, heap-allocated once and leaked (lookups from
// operator delete must never race a destructor). A fork()ed child's copy
// may be mid-mutation (another parent thread inside the mutex at fork), so
// the atfork child handler abandons the whole block and the child's first
// StartHeapProfiling allocates a fresh one.
struct Tables {
  Mutex mu;
  std::map<std::pair<int, std::vector<void*>>, int> dedupe
      SIMJ_GUARDED_BY(mu);  // (thread key, leaf-first frames) -> index
  int stack_count SIMJ_GUARDED_BY(mu) = 0;
  StackEntry stacks[kMaxStacks];
  AddrSlot slots[kAddrSlots];
  std::atomic<int64_t> live_objects{0};
  std::atomic<int64_t> dropped{0};    // cumulative; deltas via baselines
  std::atomic<int64_t> truncated{0};
  int64_t base_dropped SIMJ_GUARDED_BY(mu) = 0;
  int64_t base_truncated SIMJ_GUARDED_BY(mu) = 0;
  int64_t shipped_dropped SIMJ_GUARDED_BY(mu) = 0;
  int64_t shipped_truncated SIMJ_GUARDED_BY(mu) = 0;
  std::map<std::string, HeapBatch> remote SIMJ_GUARDED_BY(mu);
  std::map<const void*, std::string> symbols SIMJ_GUARDED_BY(mu);
  int64_t sample_bytes SIMJ_GUARDED_BY(mu) = 0;
  std::chrono::steady_clock::time_point start SIMJ_GUARDED_BY(mu);
};

// Thread names live outside Tables so naming works before any capture and
// survives the atfork table swap.
struct NameRegistry {
  Mutex mu;
  std::map<int, std::string> names SIMJ_GUARDED_BY(mu);  // key -> name
};

NameRegistry& Names() {
  static NameRegistry* names = new NameRegistry();  // simj-lint: allow(new) leaky singleton
  return *names;
}

// Hook-visible arming state. All constant-initialized: the operator
// new/delete replacements run before main and during static destruction,
// where no dynamic initializer may be relied on.
std::atomic<bool> g_enabled{false};
std::atomic<int> g_armed_pid{0};
std::atomic<int64_t> g_active_sample_bytes{0};
std::atomic<Tables*> g_tables{nullptr};
std::atomic<uint64_t> g_capture_gen{0};
std::atomic<int> g_next_thread_key{0};
std::atomic<bool> g_atfork_registered{false};

// Per-thread sampling state. t_in_hook is the re-entrancy guard: while
// set, the hooks pass allocations straight through, so the profiler's own
// internal allocations (stack-table nodes, symbol strings, backtrace's
// lazy libgcc init) never recurse into the sampled path. POD thread-locals
// only — they stay readable during thread teardown.
thread_local bool t_in_hook = false;
thread_local int64_t t_countdown = 0;
thread_local uint64_t t_gen = 0;
thread_local int t_thread_key = 0;

// Scoped re-entrancy guard for every path that allocates while the
// profiler is (or may be) enabled — including drains and Stop, whose
// internal allocations would otherwise deadlock on Tables::mu.
class HookGuard {
 public:
  HookGuard() : active_(!t_in_hook) { t_in_hook = true; }
  ~HookGuard() {
    if (active_) t_in_hook = false;
  }
  HookGuard(const HookGuard&) = delete;
  HookGuard& operator=(const HookGuard&) = delete;

 private:
  bool active_;
};

bool ArmedInThisProcess() {
  return g_enabled.load(std::memory_order_acquire) &&
         g_armed_pid.load(std::memory_order_relaxed) ==
             static_cast<int>(::getpid());
}

int ThisThreadKey() {
  if (t_thread_key == 0) {
    t_thread_key = g_next_thread_key.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  return t_thread_key;
}

[[maybe_unused]] size_t HomeSlot(uintptr_t p) {
  // Fibonacci hash of the address sans allocator-alignment bits.
  return static_cast<size_t>(((p >> 4) * 0x9E3779B97F4A7C15ull) >> 40) &
         kAddrMask;
}

// A fork()ed child inherits the arming flags and a possibly mid-mutation
// copy of the tables. Abandon both (the block is leaked — a few MiB once
// per child); async-signal-safe: atomic stores only.
void AtForkInChild() {
  g_enabled.store(false, std::memory_order_relaxed);
  g_active_sample_bytes.store(0, std::memory_order_relaxed);
  g_armed_pid.store(0, std::memory_order_relaxed);
  g_tables.store(nullptr, std::memory_order_relaxed);
}

// Records one sampled allocation: captures the raw stack, folds it into
// the (thread, frames) entry, and publishes the address in the live table.
// noinline so it is always frame [0] of its own backtrace (kSkipFrames).
[[maybe_unused]] __attribute__((noinline)) void RecordSample(
    void* ptr, std::size_t size) {
  HookGuard guard;
  t_countdown = g_active_sample_bytes.load(std::memory_order_relaxed);
  if (t_countdown <= 0) t_countdown = kDefaultSampleBytes;
  Tables* tables = g_tables.load(std::memory_order_acquire);
  if (tables == nullptr) return;
  void* raw[kMaxFrames + kSkipFrames];
  const int raw_depth = ::backtrace(raw, kMaxFrames + kSkipFrames);
  const int key = ThisThreadKey();

  MutexLock lock(tables->mu);
  if (!g_enabled.load(std::memory_order_acquire)) return;  // Stop raced us
  const int begin = std::min(kSkipFrames, raw_depth);
  const int depth = raw_depth - begin;
  if (raw_depth >= kMaxFrames + kSkipFrames) {
    tables->truncated.fetch_add(1, std::memory_order_relaxed);
  }
  std::vector<void*> frames(raw + begin, raw + raw_depth);
  auto [it, inserted] =
      tables->dedupe.try_emplace({key, std::move(frames)}, tables->stack_count);
  if (inserted) {
    if (tables->stack_count >= kMaxStacks) {
      tables->dedupe.erase(it);
      tables->dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    StackEntry& fresh = tables->stacks[tables->stack_count++];
    fresh.thread_key = key;
    fresh.depth = depth;
    std::memcpy(fresh.frames, raw + begin,
                sizeof(void*) * static_cast<size_t>(depth));
  }
  StackEntry& entry = tables->stacks[it->second];
  entry.alloc_bytes += static_cast<int64_t>(size);
  entry.alloc_objects += 1;

  // Liveness tracking: publish addr -> (entry, size) so operator delete
  // can decrement. Beyond capacity the allocation stays in the cumulative
  // counters but its liveness is dropped (counted).
  if (tables->live_objects.load(std::memory_order_relaxed) >=
      kMaxLiveObjects) {
    tables->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uintptr_t p = reinterpret_cast<uintptr_t>(ptr);
  size_t slot_index = HomeSlot(p);
  for (int probe = 0; probe < kMaxProbes;
       ++probe, slot_index = (slot_index + 1) & kAddrMask) {
    AddrSlot& slot = tables->slots[slot_index];
    const uintptr_t current = slot.addr.load(std::memory_order_relaxed);
    if (current != 0 && current != kTombstone) continue;
    const uint64_t meta =
        (static_cast<uint64_t>(it->second) << 40) |
        (static_cast<uint64_t>(size) & kSizeMask);
    slot.meta.store(meta, std::memory_order_relaxed);
    slot.addr.store(p, std::memory_order_release);
    entry.inuse_bytes.fetch_add(static_cast<int64_t>(size),
                                std::memory_order_relaxed);
    entry.inuse_objects.fetch_add(1, std::memory_order_relaxed);
    tables->live_objects.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  tables->dropped.fetch_add(1, std::memory_order_relaxed);  // chain full
}

// The operator delete side: probe for the address and, if this free owns a
// sampled object, take it out of the live table. Lock-free — the common
// never-sampled free costs a handful of relaxed loads.
[[maybe_unused]] inline void RecordFree(void* ptr) {
  Tables* tables = g_tables.load(std::memory_order_acquire);
  if (tables == nullptr) return;
  const uintptr_t p = reinterpret_cast<uintptr_t>(ptr);
  size_t slot_index = HomeSlot(p);
  for (int probe = 0; probe < kMaxProbes;
       ++probe, slot_index = (slot_index + 1) & kAddrMask) {
    AddrSlot& slot = tables->slots[slot_index];
    uintptr_t current = slot.addr.load(std::memory_order_acquire);
    if (current == 0) return;  // end of chain: never sampled
    if (current != p) continue;
    const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    if (!slot.addr.compare_exchange_strong(current, kTombstone,
                                           std::memory_order_acq_rel)) {
      return;  // stop-clear won the slot and did the decrement
    }
    StackEntry& entry = tables->stacks[meta >> 40];
    entry.inuse_bytes.fetch_sub(static_cast<int64_t>(meta & kSizeMask),
                                std::memory_order_relaxed);
    entry.inuse_objects.fetch_sub(1, std::memory_order_relaxed);
    tables->live_objects.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
}

// Allocation-side fast path, inlined into every operator new variant.
// Unarmed cost: one relaxed load. Armed cost: two relaxed loads and a
// countdown subtract; the sampled slow path runs once per sample_bytes.
[[maybe_unused]] inline void RecordAlloc(void* ptr, std::size_t size) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (t_in_hook) return;
  const uint64_t gen = g_capture_gen.load(std::memory_order_relaxed);
  if (t_gen != gen) {
    // First armed allocation on this thread this capture: a full, fresh
    // countdown (deterministic — no RNG anywhere in the sampling path).
    t_gen = gen;
    t_countdown = g_active_sample_bytes.load(std::memory_order_relaxed);
  }
  t_countdown -= static_cast<int64_t>(size);
  if (t_countdown > 0) return;
  RecordSample(ptr, size);
}

[[maybe_unused]] inline void RecordDealloc(void* ptr) {
  if (ptr == nullptr) return;
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  RecordFree(ptr);
}

Tables* GetOrCreateTablesSlow() {
  // Single-threaded by construction in practice (first StartHeapProfiling
  // or a fork child's re-arm); CAS settles any race, losers leak one block
  // — same never-freed discipline as the rest of the tables.
  HookGuard guard;
  Tables* fresh = new Tables();  // simj-lint: allow(new) leaky per-capture tables
  Tables* expected = nullptr;
  if (!g_tables.compare_exchange_strong(expected, fresh,
                                        std::memory_order_acq_rel)) {
    delete fresh;
    return expected;
  }
  return fresh;
}

Tables* GetOrCreateTables() {
  Tables* tables = g_tables.load(std::memory_order_acquire);
  return tables != nullptr ? tables : GetOrCreateTablesSlow();
}

std::string CleanFrameToken(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == ' ') continue;  // "Foo(int, long)" -> "Foo(int,long)"
    out.push_back(c == ';' ? ':' : (c == '\n' ? '_' : c));
  }
  return out.empty() ? std::string("[unknown]") : out;
}

const std::string& SymbolizeLocked(Tables& tables, const void* addr)
    SIMJ_REQUIRES(tables.mu) {
  auto it = tables.symbols.find(addr);
  if (it != tables.symbols.end()) return it->second;
  std::string name;
  Dl_info info{};
  if (::dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled
                                                 : info.dli_sname;
    std::free(demangled);
  } else if (info.dli_fname != nullptr && info.dli_fbase != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer), "%s+0x%zx",
                  base != nullptr ? base + 1 : info.dli_fname,
                  reinterpret_cast<size_t>(addr) -
                      reinterpret_cast<size_t>(info.dli_fbase));
    name = buffer;
  } else {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "0x%zx",
                  reinterpret_cast<size_t>(addr));
    name = buffer;
  }
  return tables.symbols[addr] = CleanFrameToken(name);
}

std::string ThreadLabel(int key) {
  NameRegistry& names = Names();
  MutexLock lock(names.mu);
  auto it = names.names.find(key);
  if (it != names.names.end()) return CleanFrameToken(it->second);
  return "t-" + std::to_string(key);
}

// Drains every entry's counters as deltas against its shipped baselines
// (all entries when only_thread_key < 0, else that thread's). All-zero
// entries are skipped, so repeat drains of quiet stacks ship nothing.
HeapBatch DrainLocked(Tables& tables, int only_thread_key)
    SIMJ_REQUIRES(tables.mu) {
  HeapBatch batch;
  for (int i = 0; i < tables.stack_count; ++i) {
    StackEntry& entry = tables.stacks[i];
    if (only_thread_key >= 0 && entry.thread_key != only_thread_key) continue;
    const int64_t inuse_bytes =
        entry.inuse_bytes.load(std::memory_order_relaxed);
    const int64_t inuse_objects =
        entry.inuse_objects.load(std::memory_order_relaxed);
    HeapFoldedStack stack;
    stack.inuse_bytes = inuse_bytes - entry.shipped_inuse_bytes;
    stack.inuse_objects = inuse_objects - entry.shipped_inuse_objects;
    stack.alloc_bytes = entry.alloc_bytes - entry.shipped_alloc_bytes;
    stack.alloc_objects = entry.alloc_objects - entry.shipped_alloc_objects;
    if (stack.inuse_bytes == 0 && stack.inuse_objects == 0 &&
        stack.alloc_bytes == 0 && stack.alloc_objects == 0) {
      continue;
    }
    entry.shipped_inuse_bytes = inuse_bytes;
    entry.shipped_inuse_objects = inuse_objects;
    entry.shipped_alloc_bytes = entry.alloc_bytes;
    entry.shipped_alloc_objects = entry.alloc_objects;
    stack.thread = ThreadLabel(entry.thread_key);
    stack.frames.reserve(static_cast<size_t>(entry.depth));
    for (int f = entry.depth - 1; f >= 0; --f) {  // leaf-first -> root-first
      stack.frames.push_back(SymbolizeLocked(tables, entry.frames[f]));
    }
    if (stack.frames.empty()) stack.frames.push_back("[truncated]");
    batch.stacks.push_back(std::move(stack));
  }
  const int64_t total_dropped =
      tables.dropped.load(std::memory_order_relaxed) - tables.base_dropped;
  const int64_t total_truncated =
      tables.truncated.load(std::memory_order_relaxed) -
      tables.base_truncated;
  batch.dropped = total_dropped - tables.shipped_dropped;
  batch.truncated = total_truncated - tables.shipped_truncated;
  tables.shipped_dropped = total_dropped;
  tables.shipped_truncated = total_truncated;
  batch.Normalize();
  return batch;
}

// Empties the live table, decrementing through the same CAS protocol as
// operator delete so an in-flight concurrent free and the clear can never
// both decrement one object.
void ClearLiveTableLocked(Tables& tables) SIMJ_REQUIRES(tables.mu) {
  for (AddrSlot& slot : tables.slots) {
    uintptr_t current = slot.addr.load(std::memory_order_acquire);
    if (current != 0 && current != kTombstone) {
      const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      if (slot.addr.compare_exchange_strong(current, kTombstone,
                                            std::memory_order_acq_rel)) {
        StackEntry& entry = tables.stacks[meta >> 40];
        entry.inuse_bytes.fetch_sub(
            static_cast<int64_t>(meta & kSizeMask),
            std::memory_order_relaxed);
        entry.inuse_objects.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    slot.addr.store(0, std::memory_order_relaxed);
    slot.meta.store(0, std::memory_order_relaxed);
  }
  tables.live_objects.store(0, std::memory_order_relaxed);
}

std::string FormatFixed3(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

bool StackLess(const HeapFoldedStack& a, const HeapFoldedStack& b) {
  if (a.thread != b.thread) return a.thread < b.thread;
  return a.frames < b.frames;
}

struct SectionTotals {
  int64_t inuse_bytes = 0;
  int64_t inuse_objects = 0;
  int64_t alloc_bytes = 0;
  int64_t alloc_objects = 0;
};

SectionTotals TotalsOf(const HeapBatch& batch) {
  SectionTotals totals;
  for (const HeapFoldedStack& stack : batch.stacks) {
    totals.inuse_bytes += stack.inuse_bytes;
    totals.inuse_objects += stack.inuse_objects;
    totals.alloc_bytes += stack.alloc_bytes;
    totals.alloc_objects += stack.alloc_objects;
  }
  return totals;
}

}  // namespace

void HeapBatch::Normalize() {
  std::map<std::pair<std::string, std::vector<std::string>>,
           std::array<int64_t, 4>>
      agg;
  for (HeapFoldedStack& stack : stacks) {
    auto& counters = agg[{std::move(stack.thread), std::move(stack.frames)}];
    counters[0] += stack.inuse_bytes;
    counters[1] += stack.inuse_objects;
    counters[2] += stack.alloc_bytes;
    counters[3] += stack.alloc_objects;
  }
  stacks.clear();
  stacks.reserve(agg.size());
  for (auto& [key, counters] : agg) {
    HeapFoldedStack stack;
    stack.thread = key.first;
    stack.frames = key.second;
    stack.inuse_bytes = counters[0];
    stack.inuse_objects = counters[1];
    stack.alloc_bytes = counters[2];
    stack.alloc_objects = counters[3];
    stacks.push_back(std::move(stack));
  }
}

void HeapBatch::MergeFrom(const HeapBatch& other) {
  dropped += other.dropped;
  truncated += other.truncated;
  stacks.insert(stacks.end(), other.stacks.begin(), other.stacks.end());
  Normalize();
}

int64_t HeapProfile::TotalInuseBytes() const {
  int64_t total = 0;
  for (const HeapSection& section : sections) {
    total += TotalsOf(section.batch).inuse_bytes;
  }
  return total;
}

int64_t HeapProfile::TotalInuseObjects() const {
  int64_t total = 0;
  for (const HeapSection& section : sections) {
    total += TotalsOf(section.batch).inuse_objects;
  }
  return total;
}

int64_t HeapProfile::TotalAllocBytes() const {
  int64_t total = 0;
  for (const HeapSection& section : sections) {
    total += TotalsOf(section.batch).alloc_bytes;
  }
  return total;
}

int64_t HeapProfile::TotalAllocObjects() const {
  int64_t total = 0;
  for (const HeapSection& section : sections) {
    total += TotalsOf(section.batch).alloc_objects;
  }
  return total;
}

int64_t HeapProfile::TotalDropped() const {
  int64_t total = 0;
  for (const HeapSection& section : sections) total += section.batch.dropped;
  return total;
}

int64_t HeapProfile::TotalTruncated() const {
  int64_t total = 0;
  for (const HeapSection& section : sections) {
    total += section.batch.truncated;
  }
  return total;
}

Status StartHeapProfiling(const HeapProfileOptions& options) {
  if (options.sample_bytes < 1024 ||
      options.sample_bytes > (int64_t{1} << 40)) {
    return InvalidArgumentError(
        "heap profiler sample_bytes out of range [1024, 2^40]: " +
        std::to_string(options.sample_bytes));
  }
#ifdef SIMJ_HEAP_PROFILER_UNDER_SANITIZER
  return FailedPreconditionError(
      "heap profiler disabled under sanitizers (ASan/TSan own the "
      "allocator; stacked interposition defeats their checks)");
#else
  HookGuard guard;
  Tables* tables = GetOrCreateTables();
  MutexLock lock(tables->mu);
  const int pid = static_cast<int>(::getpid());
  if (g_enabled.load(std::memory_order_acquire)) {
    // The atfork handler clears stale fork-inherited state, so an enabled
    // flag here always means armed in this process.
    return FailedPreconditionError("heap profiler already armed");
  }
  if (!g_atfork_registered.exchange(true, std::memory_order_acq_rel)) {
    ::pthread_atfork(nullptr, nullptr, &AtForkInChild);
  }
  // Force the unwinder's lazy initialization (it may allocate on first
  // use) before the first in-hook backtrace.
  void* warmup[4];
  (void)::backtrace(warmup, 4);
  // Fresh capture: re-baseline every persistent entry and the loss
  // counters so this capture reports only its own activity.
  for (int i = 0; i < tables->stack_count; ++i) {
    StackEntry& entry = tables->stacks[i];
    entry.shipped_inuse_bytes =
        entry.inuse_bytes.load(std::memory_order_relaxed);
    entry.shipped_inuse_objects =
        entry.inuse_objects.load(std::memory_order_relaxed);
    entry.shipped_alloc_bytes = entry.alloc_bytes;
    entry.shipped_alloc_objects = entry.alloc_objects;
  }
  tables->base_dropped = tables->dropped.load(std::memory_order_relaxed);
  tables->base_truncated = tables->truncated.load(std::memory_order_relaxed);
  tables->shipped_dropped = tables->shipped_truncated = 0;
  tables->remote.clear();
  tables->sample_bytes = options.sample_bytes;
  tables->start = std::chrono::steady_clock::now();
  g_capture_gen.fetch_add(1, std::memory_order_relaxed);
  g_armed_pid.store(pid, std::memory_order_relaxed);
  g_active_sample_bytes.store(options.sample_bytes,
                              std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
  return Status::Ok();
#endif
}

StatusOr<HeapProfile> StopHeapProfiling() {
  HookGuard guard;
  Tables* tables = g_tables.load(std::memory_order_acquire);
  if (tables == nullptr || !ArmedInThisProcess()) {
    return FailedPreconditionError("heap profiler not armed in this process");
  }
  MutexLock lock(tables->mu);
  if (!g_enabled.load(std::memory_order_acquire)) {
    return FailedPreconditionError("heap profiler not armed in this process");
  }
  // Gate first: samplers already inside the mutex finished before us; ones
  // blocked on it re-check the gate and bail. Lock-free frees past the
  // gate race the table clear below through the CAS protocol.
  g_enabled.store(false, std::memory_order_release);
  g_active_sample_bytes.store(0, std::memory_order_relaxed);
  g_armed_pid.store(0, std::memory_order_relaxed);

  HeapProfile profile;
  profile.sample_bytes = tables->sample_bytes;
  profile.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    tables->start)
          .count();
  HeapBatch local = DrainLocked(*tables, -1);
  ClearLiveTableLocked(*tables);
  profile.sections.push_back({"coordinator", std::move(local)});
  for (auto& [label, batch] : tables->remote) {
    batch.Normalize();
    profile.sections.push_back({label, std::move(batch)});
  }
  tables->remote.clear();
  std::sort(profile.sections.begin(), profile.sections.end(),
            [](const HeapSection& a, const HeapSection& b) {
              return a.label < b.label;
            });
  return profile;
}

bool HeapProfilingActive() { return ArmedInThisProcess(); }

int64_t ActiveSampleBytes() {
  return ArmedInThisProcess()
             ? g_active_sample_bytes.load(std::memory_order_relaxed)
             : 0;
}

StatusOr<HeapProfile> CaptureHeapProfile(double seconds,
                                         int64_t sample_bytes) {
  Status started = StartHeapProfiling(HeapProfileOptions{sample_bytes});
  if (!started.ok()) return started;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(std::clamp(seconds, 0.01, 600.0)));
  return StopHeapProfiling();
}

void NoteThisThread(const std::string& name) {
  HookGuard guard;
  NameRegistry& names = Names();
  const int key = ThisThreadKey();
  MutexLock lock(names.mu);
  names.names[key] = name;
}

HeapBatch DrainThisThreadBatch() {
  HeapBatch batch;
  if (!ArmedInThisProcess()) return batch;
  HookGuard guard;
  Tables* tables = g_tables.load(std::memory_order_acquire);
  if (tables == nullptr) return batch;
  MutexLock lock(tables->mu);
  return DrainLocked(*tables, ThisThreadKey());
}

HeapBatch DrainAllThreadsBatch() {
  HeapBatch batch;
  if (!ArmedInThisProcess()) return batch;
  HookGuard guard;
  Tables* tables = g_tables.load(std::memory_order_acquire);
  if (tables == nullptr) return batch;
  MutexLock lock(tables->mu);
  return DrainLocked(*tables, -1);
}

void AccumulateRemoteSection(const std::string& label,
                             const HeapBatch& batch) {
  if (batch.empty()) return;
  HookGuard guard;
  Tables* tables = GetOrCreateTables();
  MutexLock lock(tables->mu);
  tables->remote[label].MergeFrom(batch);
}

std::string HeapProfileJson(const HeapProfile& profile) {
  // Deterministic: fixed key order, %.3f floats, sections/stacks sorted.
  std::vector<HeapSection> sections = profile.sections;
  std::sort(sections.begin(), sections.end(),
            [](const HeapSection& a, const HeapSection& b) {
              return a.label < b.label;
            });
  std::string out = "{\"schema\":\"simj_heap_v1\",\"sample_bytes\":";
  out += std::to_string(profile.sample_bytes);
  out += ",\"duration_seconds\":" + FormatFixed3(profile.duration_seconds);
  out += ",\"inuse_bytes\":" + std::to_string(profile.TotalInuseBytes());
  out += ",\"inuse_objects\":" + std::to_string(profile.TotalInuseObjects());
  out += ",\"alloc_bytes\":" + std::to_string(profile.TotalAllocBytes());
  out += ",\"alloc_objects\":" + std::to_string(profile.TotalAllocObjects());
  out += ",\"dropped\":" + std::to_string(profile.TotalDropped());
  out += ",\"truncated\":" + std::to_string(profile.TotalTruncated());
  out += ",\"sections\":[";
  bool first_section = true;
  for (const HeapSection& section : sections) {
    if (!first_section) out += ",";
    first_section = false;
    const SectionTotals totals = TotalsOf(section.batch);
    out += "{\"label\":";
    AppendJsonString(&out, section.label);
    out += ",\"inuse_bytes\":" + std::to_string(totals.inuse_bytes);
    out += ",\"inuse_objects\":" + std::to_string(totals.inuse_objects);
    out += ",\"alloc_bytes\":" + std::to_string(totals.alloc_bytes);
    out += ",\"alloc_objects\":" + std::to_string(totals.alloc_objects);
    out += ",\"dropped\":" + std::to_string(section.batch.dropped);
    out += ",\"truncated\":" + std::to_string(section.batch.truncated);
    out += ",\"stacks\":[";
    std::vector<HeapFoldedStack> stacks = section.batch.stacks;
    std::sort(stacks.begin(), stacks.end(), StackLess);
    bool first_stack = true;
    for (const HeapFoldedStack& stack : stacks) {
      if (!first_stack) out += ",";
      first_stack = false;
      out += "{\"thread\":";
      AppendJsonString(&out, stack.thread);
      out += ",\"inuse_bytes\":" + std::to_string(stack.inuse_bytes);
      out += ",\"inuse_objects\":" + std::to_string(stack.inuse_objects);
      out += ",\"alloc_bytes\":" + std::to_string(stack.alloc_bytes);
      out += ",\"alloc_objects\":" + std::to_string(stack.alloc_objects);
      out += ",\"frames\":[";
      bool first_frame = true;
      for (const std::string& frame : stack.frames) {
        if (!first_frame) out += ",";
        first_frame = false;
        AppendJsonString(&out, frame);
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

std::string HeapFoldedText(const HeapProfile& profile) {
  std::vector<HeapSection> sections = profile.sections;
  std::sort(sections.begin(), sections.end(),
            [](const HeapSection& a, const HeapSection& b) {
              return a.label < b.label;
            });
  std::string out;
  for (const HeapSection& section : sections) {
    const std::string label = CleanFrameToken(section.label);
    std::vector<HeapFoldedStack> stacks = section.batch.stacks;
    std::sort(stacks.begin(), stacks.end(), StackLess);
    for (const HeapFoldedStack& stack : stacks) {
      out += label;
      out.push_back(';');
      out += CleanFrameToken(stack.thread);
      for (const std::string& frame : stack.frames) {
        out.push_back(';');
        out += CleanFrameToken(frame);
      }
      out.push_back(' ');
      out += std::to_string(stack.inuse_bytes);
      out.push_back(' ');
      out += std::to_string(stack.inuse_objects);
      out.push_back(' ');
      out += std::to_string(stack.alloc_bytes);
      out.push_back(' ');
      out += std::to_string(stack.alloc_objects);
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace simj::heapprof

#ifndef SIMJ_HEAP_PROFILER_UNDER_SANITIZER

// ---------------------------------------------------------------------------
// Global allocator interposition. These replace the C++ runtime's operator
// new/new[]/delete/delete[] for every binary that links this object file.
// Confined to this file by tools/simj_lint.py's
// no-raw-allocator-interposition rule. malloc is the single backing
// allocator for every variant (posix_memalign memory is free()-compatible),
// so any new/delete pairing — sized, nothrow, aligned — funnels into the
// same record/free pair.
// ---------------------------------------------------------------------------

namespace {

// Unnamed-namespace members of simj::heapprof are reachable here by
// qualified name (implicit using-directive) — same TU only, by design.

inline void* SimjAlloc(std::size_t size) {
  void* ptr = std::malloc(size != 0 ? size : 1);
  if (ptr != nullptr) simj::heapprof::RecordAlloc(ptr, size);
  return ptr;
}

inline void* SimjAllocAligned(std::size_t size, std::size_t align) {
  // align_val_t is always a power of two; posix_memalign additionally
  // requires a multiple of sizeof(void*).
  if (align < sizeof(void*)) align = sizeof(void*);
  void* ptr = nullptr;
  if (::posix_memalign(&ptr, align, size != 0 ? size : 1) != 0) {
    return nullptr;
  }
  simj::heapprof::RecordAlloc(ptr, size);
  return ptr;
}

inline void SimjFree(void* ptr) {
  if (ptr == nullptr) return;
  // Record before free(): the allocator cannot reuse the address until
  // free() returns, so a live-table entry can never alias a new object.
  simj::heapprof::RecordDealloc(ptr);
  std::free(ptr);
}

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = SimjAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();  // simj-lint: allow(exceptions)
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = SimjAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();  // simj-lint: allow(exceptions)
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return SimjAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return SimjAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = SimjAllocAligned(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();  // simj-lint: allow(exceptions)
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* ptr = SimjAllocAligned(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();  // simj-lint: allow(exceptions)
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return SimjAllocAligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return SimjAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { SimjFree(ptr); }
void operator delete[](void* ptr) noexcept { SimjFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { SimjFree(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { SimjFree(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  SimjFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  SimjFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { SimjFree(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  SimjFree(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  SimjFree(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  SimjFree(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  SimjFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  SimjFree(ptr);
}

#endif  // SIMJ_HEAP_PROFILER_UNDER_SANITIZER
