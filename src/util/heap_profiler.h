// Sampling heap profiler: global operator new/new[]/delete/delete[]
// overrides (confined to heap_profiler.cc; tools/simj_lint.py's
// no-raw-allocator-interposition rule keeps them out of the rest of src/)
// record a deterministic sample of live allocations, attributing bytes to
// the call stacks that own them. Output is a deterministic `simj_heap_v1`
// JSON record plus folded-stack text with four counters per stack —
// inuse_bytes/inuse_objects (live at capture end) and
// alloc_bytes/alloc_objects (cumulative while armed) — consumed by
// tools/flame.py (--metric inuse_bytes|alloc_bytes), tools/statusz_poll.py
// --heap, and tools/bench_compare.py's heap-delta notes.
//
// Sampling is a per-thread byte countdown (DESIGN.md §13): every armed
// allocation subtracts its size from the thread's countdown, and the
// allocation that drives it to or below zero is sampled and the countdown
// reset to `sample_bytes`. No RNG anywhere (the rng-only lint rule holds):
// given each thread's allocation sequence the sampled set is a pure
// function of sample_bytes. Counters report raw sampled sizes — each
// sampled object stands for roughly `sample_bytes` of allocation; nothing
// is up-scaled, so the end-of-run leak report reads "live sampled bytes".
//
// Sample -> symbolize split (same shape as the CPU profiler, DESIGN.md
// §12): the allocation hook stores raw backtrace() addresses and byte
// counts; dladdr + demangling run only when a capture is drained. The hook
// guards itself with a thread-local re-entrancy flag, so its own internal
// allocations (stack-table nodes, backtrace's lazy libgcc init) pass
// through unrecorded instead of recursing. Frees are attributed by an
// open-addressed address table probed lock-free, so the common
// never-sampled free costs a few relaxed loads and no lock.
//
// Cluster captures: the coordinator stamps the armed sample_bytes into
// every shard dispatch (SpanContext::heap_sample_bytes). Thread-transport
// workers drain their own thread's entries per shard result
// (DrainThisThreadBatch) and forked children arm their own profiler and
// drain everything per response (DrainAllThreadsBatch); shipped batches
// carry symbolized frames and *delta* counters since the previous drain
// (inuse deltas may be negative mid-stream — they sum to the live level),
// so the coordinator merges them under worker-N labels by plain addition,
// exactly like /profilez. Duplicate shard completions drop their batch.
//
// The profiler is observational: unarmed, every allocation costs one
// relaxed atomic load; armed captures never touch join state — results
// are byte-identical either way (asserted by statusz_test and ci.sh).
// Sanitizer builds (ASan/TSan own the allocator) refuse to arm; /heapz
// answers 503 and everything else proceeds.

#ifndef SIMJ_UTIL_HEAP_PROFILER_H_
#define SIMJ_UTIL_HEAP_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace simj::heapprof {

// Deepest stack recorded per sampled allocation; deeper stacks are
// truncated (counted).
inline constexpr int kMaxFrames = 32;
// Distinct (thread, stack) aggregation entries per capture; further new
// stacks are dropped (counted).
inline constexpr int kMaxStacks = 2048;
// Concurrently tracked live sampled objects; beyond this a sample still
// lands in the cumulative counters but its liveness is dropped (counted).
inline constexpr int kMaxLiveObjects = 8192;
// Default sampling rate: one sampled allocation per 512 KiB allocated.
inline constexpr int64_t kDefaultSampleBytes = 512 * 1024;

struct HeapProfileOptions {
  // One sample per this many bytes allocated, per thread. Allocations of
  // at least sample_bytes are always sampled.
  int64_t sample_bytes = kDefaultSampleBytes;
};

// One aggregated allocation stack: `frames` is root-first, already
// symbolized; `thread` is the allocating thread's registered name (or a
// stable "t-N" for unregistered threads). In a shipped worker batch the
// counters are deltas since the worker's previous drain.
struct HeapFoldedStack {
  std::string thread;
  std::vector<std::string> frames;
  int64_t inuse_bytes = 0;
  int64_t inuse_objects = 0;
  int64_t alloc_bytes = 0;
  int64_t alloc_objects = 0;
};

// A drained set of heap stacks plus loss accounting. dropped counts
// samples lost to table capacity (stack or live-object); truncated counts
// stacks cut at kMaxFrames (still stored).
struct HeapBatch {
  int64_t dropped = 0;
  int64_t truncated = 0;
  std::vector<HeapFoldedStack> stacks;

  bool empty() const {
    return dropped == 0 && truncated == 0 && stacks.empty();
  }
  // Folds `other` in, merging identical (thread, frames) stacks by adding
  // all four counters (delta batches sum to levels by construction).
  void MergeFrom(const HeapBatch& other);
  // Deterministic order: by (thread, frames) ascending, duplicates merged.
  // MergeFrom leaves the batch normalized; call this after building one by
  // hand.
  void Normalize();
};

// One process's (or one worker's) share of a capture.
struct HeapSection {
  std::string label;  // "coordinator" locally, "worker-N" when shipped
  HeapBatch batch;
};

struct HeapProfile {
  int64_t sample_bytes = 0;
  double duration_seconds = 0.0;  // armed wall time
  std::vector<HeapSection> sections;  // sorted by label

  int64_t TotalInuseBytes() const;
  int64_t TotalInuseObjects() const;
  int64_t TotalAllocBytes() const;
  int64_t TotalAllocObjects() const;
  int64_t TotalDropped() const;
  int64_t TotalTruncated() const;
};

// Arms the heap profiler process-wide: resets the per-capture tables and
// enables sampling in the operator new/delete hooks. Fails if already
// armed in this process or when a sanitizer owns the allocator. In a
// fork()ed child the inherited armed state is stale (the child handler
// disarms and retires the parent's tables); Start arms fresh there.
[[nodiscard]] Status StartHeapProfiling(const HeapProfileOptions& options = {});

// Disarms, snapshots and clears the live-object table, symbolizes, and
// returns the capture: the local "coordinator" section plus any
// accumulated remote sections.
[[nodiscard]] StatusOr<HeapProfile> StopHeapProfiling();

// True while armed in THIS process (a fork child of an armed parent
// reports false until it arms itself).
bool HeapProfilingActive();

// The armed sampling rate in bytes, or 0 when not armed in this process.
int64_t ActiveSampleBytes();

// Start + sleep(seconds) + Stop, for on-demand captures (/heapz).
[[nodiscard]] StatusOr<HeapProfile> CaptureHeapProfile(double seconds,
                                                       int64_t sample_bytes);

// Registers the calling thread's name for sample attribution. Called by
// trace::SetThisThreadName, so named threads are covered transparently;
// safe any time. Unregistered threads appear as "t-N".
void NoteThisThread(const std::string& name);

// Drains the calling thread's entries as deltas since its last drain.
// Used by thread-transport shard workers to ship per-shard heap batches
// (drained deltas will not reappear in StopHeapProfiling's section).
HeapBatch DrainThisThreadBatch();

// Drains every thread's entries as deltas — the fork child's per-response
// shipping path.
HeapBatch DrainAllThreadsBatch();

// Folds a worker-shipped batch into the section named `label`; merged
// batches are returned (and cleared) by the next StopHeapProfiling().
void AccumulateRemoteSection(const std::string& label,
                             const HeapBatch& batch);

// Deterministic single-line JSON record (schema "simj_heap_v1"),
// newline-terminated. Sections sorted by label, stacks by (thread,
// frames); fixed float formatting — golden-testable.
std::string HeapProfileJson(const HeapProfile& profile);

// Folded-stack text with all four counters trailing each line:
// "label;thread;root;...;leaf inuse_bytes inuse_objects alloc_bytes
// alloc_objects". tools/flame.py and tools/statusz_poll.py --heap consume
// this directly (symbols are cleaned so the trailing counters always
// parse).
std::string HeapFoldedText(const HeapProfile& profile);

}  // namespace simj::heapprof

#endif  // SIMJ_UTIL_HEAP_PROFILER_H_
