// Process-wide metrics for the join pipeline: named counters, gauges and
// fixed-bucket latency histograms.
//
// The hot path is one relaxed atomic add: every counter/histogram keeps an
// array of cache-line-aligned per-thread shards, each thread hashes to a
// fixed shard (thread-local slot assigned on first use), and readers merge
// the shards on Snapshot(). There are no locks anywhere on the write path;
// the registry mutex is only taken on metric creation and snapshot.
//
// Metrics are created on first use and live for the process lifetime, so
// call sites may cache references:
//
//   static metrics::Counter& pairs =
//       metrics::Registry::Global().GetCounter("simj_join_pairs_total");
//   pairs.Increment();
//
//   static metrics::Histogram& lat =
//       metrics::Registry::Global().GetHistogram("simj_verify_ged_seconds");
//   { metrics::ScopedLatency t(lat); ... }
//
// Histogram buckets are powers of two in nanoseconds (bucket i holds
// durations in [2^(i-1), 2^i) ns), which makes the bucket index a single
// bit_width and covers 1 ns .. ~2.4 h in kHistogramBuckets buckets.
// Registry::ExpositionText() renders everything in the Prometheus text
// format; ResetForTesting() zeroes values without invalidating cached
// references.

#ifndef SIMJ_UTIL_METRICS_H_
#define SIMJ_UTIL_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.h"
#include "util/timer.h"

namespace simj::metrics {

// Shard count per metric. Threads are assigned round-robin, so with more
// live threads than shards some threads share a shard — still correct
// (shards are atomic), just contended.
inline constexpr int kShardCount = 16;

// Fixed bucket count for every histogram. Last bucket is the overflow
// (+Inf) bucket; the largest finite upper bound is 2^(kHistogramBuckets-2)
// ns ~ 2.4 hours.
inline constexpr int kHistogramBuckets = 44;

// Stable per-thread shard slot in [0, kShardCount).
int ThisThreadShard();

// Prometheus label-value escaping: backslash, double quote, and newline
// become \\, \" and \n (the exposition-format rules). Exposed for tests.
std::string EscapeLabelValue(const std::string& value);

// Builds a fully-qualified metric name `family{k1="v1",k2="v2"}` with the
// label values escaped; with no labels returns `family` unchanged. The
// result is the registry key, so two label sets of the same family are two
// independent metrics that the exposition writer groups under one # TYPE
// line:
//
//   Registry::Global()
//       .GetGauge(LabeledName("simj_build_info", {{"git_sha", sha}}))
//       .Set(1.0);
std::string LabeledName(
    const std::string& family,
    const std::vector<std::pair<std::string, std::string>>& labels);

// Splits a registry key produced by LabeledName back into its family and
// the inner label list (no braces; empty when unlabeled). Used by the
// exposition writer to emit # TYPE per family and to splice `le=` into
// histogram bucket series. Exposed for tests.
void SplitMetricName(const std::string& name, std::string* family,
                     std::string* labels);

// Index of the bucket holding a duration of `seconds` (clamped to the
// overflow bucket). Exposed for tests.
int BucketIndexForSeconds(double seconds);

// Exclusive upper bound of bucket `index` in seconds (+Inf for the last
// bucket). Exposed for tests and the exposition writer.
double BucketUpperBoundSeconds(int index);

// Inclusive lower bound of bucket `index` in seconds (0 for bucket 0).
double BucketLowerBoundSeconds(int index);

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::string& name() const { return name_; }

  void Add(int64_t delta) {
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  // Merged value across shards. Exact once writers have quiesced; during
  // concurrent writes it is a valid point-in-time lower bound.
  int64_t Value() const;

  void ResetForTesting();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::string name_;
  Shard shards_[kShardCount];
};

// Gauges are set-to-current-value metrics (worker counts, sizes); they are
// not sharded because they are never on a per-pair hot path.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  const std::string& name() const { return name_; }
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  // Monotonic high-water update: keeps the larger of the stored and given
  // values. Lock-free and safe from any thread; the common no-raise case
  // is a single relaxed load.
  void UpdateMax(double value) {
    double current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }

  void ResetForTesting() { Set(0.0); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

// Merged view of one histogram; also the unit of snapshot merging.
struct HistogramSnapshot {
  std::vector<int64_t> bucket_counts;  // size kHistogramBuckets
  int64_t count = 0;
  double sum_seconds = 0.0;

  // Quantile estimate (q in [0, 1]) by linear interpolation inside the
  // bucket holding the target rank. Returns 0 when empty; the overflow
  // bucket reports its lower bound.
  double Quantile(double q) const;
};

class Histogram {
 public:
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const std::string& name() const { return name_; }

  void Observe(double seconds) {
    Shard& shard = shards_[ThisThreadShard()];
    shard.buckets[BucketIndexForSeconds(seconds)].fetch_add(
        1, std::memory_order_relaxed);
    // Sum in integer nanoseconds so a relaxed add suffices (no CAS loop).
    shard.sum_nanos.fetch_add(static_cast<int64_t>(seconds * 1e9),
                              std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;
  void ResetForTesting();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> buckets[kHistogramBuckets] = {};
    std::atomic<int64_t> sum_nanos{0};
  };
  std::string name_;
  Shard shards_[kShardCount];
};

// Point-in-time view of every metric in a registry. Mergeable (counters
// and histogram buckets add, gauges keep the latest non-default value), and
// the merge is associative — asserted by tests.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

MetricsSnapshot MergeSnapshots(const MetricsSnapshot& a,
                               const MetricsSnapshot& b);

class Registry {
 public:
  static Registry& Global();

  // Create-on-first-use; the returned reference is valid for the process
  // lifetime (metrics are never destroyed or re-created).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  // Registers a description for a metric family, emitted as a `# HELP
  // family text` line (before the family's `# TYPE` line) in
  // ExpositionText(). Keyed by bare family name — one help string covers
  // every label set of the family. Re-registering replaces the text;
  // families without help get no HELP line. Survives ResetForTesting()
  // (help is registration state, not a value).
  void SetHelp(const std::string& family, const std::string& help);

  // Prometheus text exposition of the current snapshot. Histogram bucket
  // series are cumulative and trimmed to the populated range plus +Inf.
  // Families registered via SetHelp lead with their `# HELP` line.
  std::string ExpositionText() const;

  // Zeroes every value without invalidating references handed out by the
  // getters (cached `static Counter&`s keep working).
  void ResetForTesting();

 private:
  Registry() = default;

  // Leaf lock (nothing else is acquired under it); taken only on metric
  // creation and snapshot — never on the sharded-atomic write path.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SIMJ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ SIMJ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SIMJ_GUARDED_BY(mu_);
  std::map<std::string, std::string> help_ SIMJ_GUARDED_BY(mu_);
};

// Prometheus HELP-text escaping: backslash and newline become \\ and \n
// (quotes are NOT escaped in HELP lines, unlike label values). Exposed for
// tests.
std::string EscapeHelpText(const std::string& text);

// Renders any snapshot (e.g. a merged one) in the exposition format.
// `help` maps family name -> description; pass nothing for no HELP lines
// (a merged snapshot has no registry to ask).
std::string ExpositionText(const MetricsSnapshot& snapshot);
std::string ExpositionText(const MetricsSnapshot& snapshot,
                           const std::map<std::string, std::string>& help);

// Observes the elapsed wall time of a scope into a histogram.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& histogram) : histogram_(histogram) {}
  ~ScopedLatency() { histogram_.Observe(timer_.ElapsedSeconds()); }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram& histogram_;
  WallTimer timer_;
};

}  // namespace simj::metrics

#endif  // SIMJ_UTIL_METRICS_H_
