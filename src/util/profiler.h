// Sampling CPU profiler: per-thread CPU-time timers deliver SIGPROF to the
// running thread, an async-signal-safe handler appends the raw backtrace()
// frames to that thread's preallocated lock-free ring, and symbolization
// (dladdr + demangling) happens entirely off the hot path when a capture is
// drained. Output is Brendan-Gregg folded-stack text (tools/flame.py turns
// it into an SVG flamegraph) and a deterministic `simj_profile_v1` JSON
// record (tools/bench_compare.py diffs the embedded copies between runs).
//
// Sample -> symbolize split (DESIGN.md §12): the handler may only execute
// async-signal-safe operations — write/clock_gettime-class syscalls,
// sig-atomic loads/stores, and backtrace() — which rules out malloc, locks,
// and therefore symbol resolution. So the handler stores raw return
// addresses in a fixed-capacity per-thread ring (dropping, with an exact
// counter, once the ring is full) and everything that needs the allocator
// runs later on the draining thread. tools/simj_lint.py's
// signal-handler-safety rule enforces the handler-side restriction.
//
// Thread coverage: threads are sampled once they are registered — either
// explicitly via NoteThisThread or, transparently, whenever they call
// trace::SetThisThreadName (main, join workers, dispatch threads, statusz
// all do). Each registered thread gets its own timer on its own CPU-time
// clock (SIGEV_THREAD_ID), so samples are attributed to the thread that
// actually burned the CPU, and sleeping threads cost nothing.
//
// Cluster captures: `ShardedSimJoin` forwards the active hz to shard
// workers through the pipe protocol; thread workers drain their own ring
// per shard (DrainThisThreadBatch) and forked children run their own
// profiler and drain everything per response (DrainAllThreadsBatch). The
// coordinator folds the shipped batches into per-worker sections via
// AccumulateRemoteSection; StopProfiling() then returns one Profile whose
// "coordinator" section is this process and whose "worker-N" sections are
// the shipped remote samples.
//
// The profiler is purely observational: with no capture armed the join
// path costs one pid-checked atomic load per shard dispatch, and an armed
// capture never touches join state — results are byte-identical either way.

#ifndef SIMJ_UTIL_PROFILER_H_
#define SIMJ_UTIL_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace simj::prof {

// Deepest stack recorded per sample; deeper stacks are truncated (counted).
inline constexpr int kMaxFrames = 32;
// Concurrently sampled threads; later registrations are ignored (counted).
inline constexpr int kMaxThreads = 64;
// Samples buffered per thread between drains; overflow drops (counted).
inline constexpr int kRingCapacity = 512;

struct ProfileOptions {
  // Sampling frequency per thread, in samples per CPU-second. 99 (not a
  // round 100) avoids lockstep with common periodic work.
  int hz = 99;
};

// One aggregated call stack: `frames` is root-first, already symbolized;
// `thread` is the sampled thread's registered name (or "tid-N").
struct FoldedStack {
  std::string thread;
  std::vector<std::string> frames;
  int64_t count = 0;
};

// A drained set of samples plus its loss accounting. samples counts stacks
// actually stored (== sum of stack counts); dropped counts ring-overflow
// losses; truncated counts stacks cut at kMaxFrames (still stored).
struct SampleBatch {
  int64_t samples = 0;
  int64_t dropped = 0;
  int64_t truncated = 0;
  std::vector<FoldedStack> stacks;

  bool empty() const {
    return samples == 0 && dropped == 0 && truncated == 0 && stacks.empty();
  }
  // Folds `other` in, merging identical (thread, frames) stacks.
  void MergeFrom(const SampleBatch& other);
  // Deterministic order: by (thread, frames) ascending. MergeFrom leaves
  // the batch normalized; call this after building one by hand.
  void Normalize();
};

// One process's (or one worker's) share of a capture.
struct ProfileSection {
  std::string label;  // "coordinator" locally, "worker-N" when shipped
  SampleBatch batch;
};

struct Profile {
  int hz = 0;
  double period_us = 0.0;        // 1e6 / hz
  double duration_seconds = 0.0; // armed wall time
  std::vector<ProfileSection> sections;  // sorted by label

  int64_t TotalSamples() const;
  int64_t TotalDropped() const;
  int64_t TotalTruncated() const;
};

// Arms the profiler process-wide: installs the SIGPROF handler, allocates
// the rings (first call only), and starts one CPU-time timer per
// registered thread. Fails if already armed in this process. In a fork()ed
// child the inherited armed state is stale (POSIX timers do not survive
// fork); Start detects the pid change, resets, and arms fresh.
[[nodiscard]] Status StartProfiling(const ProfileOptions& options = {});

// Disarms, drains every ring, symbolizes, and returns the capture: the
// local "coordinator" section plus any accumulated remote sections.
[[nodiscard]] StatusOr<Profile> StopProfiling();

// True while armed in THIS process (a fork child of an armed parent
// reports false until it arms itself).
bool ProfilingActive();

// The armed sampling frequency, or 0 when not armed in this process.
int ActiveHz();

// Start + sleep(seconds) + Stop, for on-demand captures (/profilez).
[[nodiscard]] StatusOr<Profile> CaptureProfile(double seconds, int hz);

// Registers the calling thread for sampling under `name`. Called by
// trace::SetThisThreadName, so named threads are covered transparently;
// safe to call any time, before or while armed. Re-registering renames.
void NoteThisThread(const std::string& name);

// Drains and symbolizes the calling thread's samples since its last drain.
// Used by thread-transport shard workers to ship per-shard profile batches
// (the drained samples will not reappear in StopProfiling's section).
SampleBatch DrainThisThreadBatch();

// Drains every thread's ring — the fork child's per-response shipping path
// (the child's serve loop is the only thread that ever drains there).
SampleBatch DrainAllThreadsBatch();

// Folds a worker-shipped batch into the section named `label`; merged
// batches are returned (and cleared) by the next StopProfiling().
void AccumulateRemoteSection(const std::string& label,
                             const SampleBatch& batch);

// Deterministic single-line JSON record (schema "simj_profile_v1"),
// newline-terminated. Sections sorted by label, stacks by (thread,
// frames); fixed float formatting — golden-testable.
std::string ProfileJson(const Profile& profile);

// Brendan-Gregg folded-stack text: one "label;thread;root;...;leaf count"
// line per aggregated stack (spaces/semicolons in symbols are rewritten so
// the line structure survives). tools/flame.py consumes this directly.
std::string FoldedText(const Profile& profile);

}  // namespace simj::prof

#endif  // SIMJ_UTIL_PROFILER_H_
