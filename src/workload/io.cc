#include "workload/io.h"

#include <unordered_map>

#include "sparql/parser.h"
#include "util/strings.h"

namespace simj::workload {

namespace {

// k of a question = number of non-type triple patterns (the paper's
// "relations").
int CountRelations(const sparql::ParsedQuery& query,
                   const graph::LabelDictionary& dict) {
  int relations = 0;
  graph::LabelId type_term = dict.Find("type");
  for (const rdf::TriplePattern& pattern : query.patterns) {
    if (pattern.predicate != type_term) ++relations;
  }
  return relations;
}

}  // namespace

std::string SerializeWorkload(const Workload& workload,
                              const graph::LabelDictionary& dict) {
  (void)dict;
  std::string out;
  std::vector<bool> has_question(workload.sparql_texts.size(), false);
  for (const QuestionInstance& question : workload.questions) {
    out += "Q " + question.text + "\t" + question.gold_query_text + "\n";
    if (question.gold_sparql_index >= 0) {
      has_question[question.gold_sparql_index] = true;
    }
  }
  for (size_t i = 0; i < workload.sparql_texts.size(); ++i) {
    if (!has_question[i]) out += "S " + workload.sparql_texts[i] + "\n";
  }
  return out;
}

StatusOr<Workload> ParseWorkloadText(std::string_view text,
                                     graph::LabelDictionary& dict) {
  Workload workload;
  std::unordered_map<std::string, int> query_index_by_text;

  auto intern_query = [&](sparql::ParsedQuery query,
                          const std::string& query_text) {
    auto it = query_index_by_text.find(query_text);
    if (it != query_index_by_text.end()) return it->second;
    int index = static_cast<int>(workload.sparql_queries.size());
    workload.sparql_queries.push_back(std::move(query));
    workload.sparql_texts.push_back(query_text);
    query_index_by_text.emplace(query_text, index);
    return index;
  };

  size_t begin = 0;
  int line_number = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    std::string line(StripWhitespace(text.substr(begin, end - begin)));
    begin = end + 1;
    ++line_number;
    if (line.empty() || line.front() == '#') continue;

    auto fail = [&](const std::string& what) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": " + what);
    };

    if (StartsWith(line, "Q ")) {
      size_t tab = line.find('\t');
      if (tab == std::string::npos) {
        return fail("Q line needs '<question> \\t <sparql>'");
      }
      QuestionInstance question;
      question.text = std::string(StripWhitespace(line.substr(2, tab - 2)));
      std::string query_text(StripWhitespace(line.substr(tab + 1)));
      if (question.text.empty() || query_text.empty()) {
        return fail("empty question or query");
      }
      StatusOr<sparql::ParsedQuery> query =
          sparql::ParseSparql(query_text, dict);
      if (!query.ok()) return fail(query.status().message());
      question.num_relations = CountRelations(*query, dict);
      // Re-serialize so textual variants of the same query deduplicate.
      std::string canonical = sparql::ToSparqlText(*query, dict);
      question.gold_query = *query;
      question.gold_sparql_index = intern_query(*std::move(query), canonical);
      question.gold_query_text = canonical;
      workload.questions.push_back(std::move(question));
    } else if (StartsWith(line, "S ")) {
      std::string query_text(StripWhitespace(line.substr(2)));
      StatusOr<sparql::ParsedQuery> query =
          sparql::ParseSparql(query_text, dict);
      if (!query.ok()) return fail(query.status().message());
      std::string canonical = sparql::ToSparqlText(*query, dict);
      intern_query(*std::move(query), canonical);
    } else {
      return fail("unrecognized line '" + line + "'");
    }
  }
  return workload;
}

}  // namespace simj::workload
