#include "workload/knowledge_base.h"

#include <algorithm>
#include <iterator>

#include "util/check.h"
#include "util/strings.h"

namespace simj::workload {

namespace {

struct ClassSeed {
  const char* name;
  const char* phrase;
};

constexpr ClassSeed kOpenClasses[] = {
    {"Actor", "actor"},         {"Politician", "politician"},
    {"City", "city"},           {"Country", "country"},
    {"University", "university"}, {"Company", "company"},
    {"Film", "film"},           {"Band", "band"},
    {"Scientist", "scientist"}, {"River", "river"},
    {"Book", "book"},           {"Team", "team"},
    {"Museum", "museum"},       {"Airport", "airport"},
    {"Language", "language"},   {"Award", "award"},
};

constexpr ClassSeed kClosedClasses[] = {
    {"Film", "film"},       {"Actor", "actor"},
    {"Director", "director"}, {"Band", "band"},
    {"Album", "album"},     {"Song", "song"},
    {"Composer", "composer"}, {"Genre", "genre"},
};

struct PredicateSeed {
  const char* name;
  const char* phrase;
};

constexpr PredicateSeed kPredicateSeeds[] = {
    {"birthPlace", "born in"},
    {"graduatedFrom", "graduated from"},
    {"spouse", "married to"},
    {"directedBy", "directed by"},
    {"locatedIn", "located in"},
    {"worksFor", "works for"},
    {"foundedBy", "founded by"},
    {"playsFor", "plays for"},
    {"wrote", "wrote"},
    {"composedBy", "composed by"},
    {"memberOf", "member of"},
    {"capitalOf", "capital of"},
    {"starring", "starring"},
    {"developedBy", "developed by"},
    {"headquarteredIn", "headquartered in"},
    {"discoveredBy", "discovered by"},
    {"flowsThrough", "flows through"},
    {"ownedBy", "owned by"},
    {"marriedIn", "married in"},
    {"studiedAt", "studied at"},
};

constexpr const char* kSyllables[] = {"ka", "ro", "min", "tel", "dor", "va",
                                      "lu", "shan", "pe", "gri", "zo", "mar",
                                      "li", "ben", "tu", "sa"};

std::string RandomName(Rng& rng, int syllables) {
  std::string out;
  for (int i = 0; i < syllables; ++i) {
    out += kSyllables[rng.Uniform(0, std::size(kSyllables) - 1)];
  }
  return out;
}

}  // namespace

KnowledgeBase::KnowledgeBase(const KbConfig& config) {
  Rng rng(config.seed);
  type_predicate_ = dict_.Intern("type");
  BuildSchema(config, rng);
  BuildEntities(config, rng);
  BuildFacts(config, rng);
}

void KnowledgeBase::BuildSchema(const KbConfig& config, Rng& rng) {
  const ClassSeed* seeds = config.closed_domain ? kClosedClasses : kOpenClasses;
  int seed_count = config.closed_domain
                       ? static_cast<int>(std::size(kClosedClasses))
                       : static_cast<int>(std::size(kOpenClasses));
  int num_classes = std::min(config.num_classes, seed_count);
  SIMJ_CHECK_GT(num_classes, 1);
  classes_.reserve(num_classes);
  for (int i = 0; i < num_classes; ++i) {
    ClassInfo info;
    info.name = seeds[i].name;
    info.phrase = seeds[i].phrase;
    info.term = dict_.Intern(info.name);
    lexicon_.AddClassPhrase(info.phrase,
                            nlp::ClassLink{info.term, info.term});
    classes_.push_back(std::move(info));
  }
  entities_of_class_.resize(classes_.size());
  predicates_of_domain_.resize(classes_.size());

  int num_predicates =
      std::min(config.num_predicates,
               static_cast<int>(std::size(kPredicateSeeds)));
  SIMJ_CHECK_GT(num_predicates, 0);
  for (int i = 0; i < num_predicates; ++i) {
    PredicateInfo info;
    info.name = kPredicateSeeds[i].name;
    info.term = dict_.Intern(info.name);
    info.domain_class = static_cast<int>(rng.Uniform(0, classes_.size() - 1));
    do {
      info.range_class = static_cast<int>(rng.Uniform(0, classes_.size() - 1));
    } while (info.range_class == info.domain_class && classes_.size() > 1);
    info.phrases.push_back(kPredicateSeeds[i].phrase);
    predicates_of_domain_[info.domain_class].push_back(
        static_cast<int>(predicates_.size()));
    // Half the predicates are polysemous: a second domain class also uses
    // them ("locatedIn" applies to cities and companies alike). Queries
    // without an answer-type constraint then mix classes in their results.
    if (classes_.size() > 2 && rng.Bernoulli(0.5)) {
      int second;
      do {
        second = static_cast<int>(rng.Uniform(0, classes_.size() - 1));
      } while (second == info.domain_class || second == info.range_class);
      predicates_of_domain_[second].push_back(
          static_cast<int>(predicates_.size()));
    }
    predicates_.push_back(std::move(info));
  }

  // Register relation phrases. With probability (1 - top1_accuracy) the
  // phrase also links to a random *other* predicate with a higher
  // confidence, so naive top-1 paraphrasing picks the wrong predicate.
  for (size_t i = 0; i < predicates_.size(); ++i) {
    for (const std::string& phrase : predicates_[i].phrases) {
      bool corrupted = predicates_.size() > 1 &&
                       !rng.Bernoulli(config.relation_top1_accuracy);
      if (corrupted) {
        size_t other;
        do {
          other = static_cast<size_t>(rng.Uniform(0, predicates_.size() - 1));
        } while (other == i);
        lexicon_.AddRelationPhrase(
            phrase, nlp::PredicateLink{predicates_[other].term, 0.55});
        lexicon_.AddRelationPhrase(
            phrase, nlp::PredicateLink{predicates_[i].term, 0.45});
      } else {
        lexicon_.AddRelationPhrase(
            phrase, nlp::PredicateLink{predicates_[i].term, 0.9});
      }
    }
  }
}

void KnowledgeBase::BuildEntities(const KbConfig& config, Rng& rng) {
  // Phrase -> entity indices sharing it (for ambiguity bookkeeping).
  std::unordered_map<std::string, std::vector<int>> entities_of_phrase;
  std::vector<std::string> reusable_phrases;

  for (size_t c = 0; c < classes_.size(); ++c) {
    for (int k = 0; k < config.entities_per_class; ++k) {
      EntityInfo info;
      info.class_index = static_cast<int>(c);

      bool reuse = !reusable_phrases.empty() &&
                   rng.Bernoulli(config.entity_phrase_ambiguity);
      if (reuse) {
        info.phrase = reusable_phrases[rng.Uniform(
            0, reusable_phrases.size() - 1)];
      } else if (rng.Bernoulli(config.trap_phrase_fraction)) {
        info.phrase = RandomName(rng, 2) + " and " + RandomName(rng, 2);
      } else {
        do {
          info.phrase = RandomName(rng, static_cast<int>(rng.Uniform(2, 3)));
        } while (entities_of_phrase.contains(info.phrase));
        reusable_phrases.push_back(info.phrase);
      }

      std::string term_name =
          classes_[c].name + "_" + std::to_string(k) + "_" + info.phrase;
      // Phrases may contain spaces; terms must not.
      std::replace(term_name.begin(), term_name.end(), ' ', '_');
      info.term = dict_.Intern(term_name);

      int index = static_cast<int>(entities_.size());
      entities_.push_back(info);
      entities_of_class_[c].push_back(index);
      entities_of_phrase[info.phrase].push_back(index);
      entity_index_of_term_.emplace(info.term, index);
    }
  }

  // Register entity links with confidences: phrases shared by several
  // entities get a descending confidence profile; with probability
  // entity_top1_error the *true order is scrambled* so the top candidate is
  // a different entity than the intended one in half the generated
  // questions.
  for (auto& [phrase, members] : entities_of_phrase) {
    std::vector<int> order = members;
    if (order.size() > 1 && rng.Bernoulli(config.entity_top1_error)) {
      rng.Shuffle(order);
    }
    // Descending confidences summing to <= 1.
    double remaining = 1.0;
    for (size_t i = 0; i < order.size(); ++i) {
      double conf = i + 1 == order.size() ? remaining : remaining * 0.6;
      remaining -= conf;
      const EntityInfo& e = entities_[order[i]];
      lexicon_.AddEntityPhrase(
          phrase, nlp::EntityLink{e.term, classes_[e.class_index].term, conf});
    }
  }

  facts_of_entity_.resize(entities_.size());
}

void KnowledgeBase::BuildFacts(const KbConfig& config, Rng& rng) {
  for (size_t e = 0; e < entities_.size(); ++e) {
    const EntityInfo& entity = entities_[e];
    store_.Add(entity.term, type_predicate_, classes_[entity.class_index].term);
    const std::vector<int>& candidate_predicates =
        predicates_of_domain_[entity.class_index];
    if (candidate_predicates.empty()) continue;
    // Poisson-ish fact count: at least one fact so every entity can seed a
    // question.
    int fact_count = 1 + static_cast<int>(rng.Uniform(
                             0, std::max<int64_t>(1, static_cast<int64_t>(
                                                         2 * config.facts_per_entity) -
                                                         1)));
    for (int f = 0; f < fact_count; ++f) {
      int p = candidate_predicates[rng.Uniform(
          0, candidate_predicates.size() - 1)];
      const std::vector<int>& range_entities =
          entities_of_class_[predicates_[p].range_class];
      if (range_entities.empty()) continue;
      int o = range_entities[rng.Uniform(0, range_entities.size() - 1)];
      store_.Add(entity.term, predicates_[p].term, entities_[o].term);
      facts_of_entity_[e].push_back(Fact{p, o});
    }
  }
}

graph::LabelId KnowledgeBase::TypeLabelOf(rdf::TermId term) const {
  auto it = entity_index_of_term_.find(term);
  if (it == entity_index_of_term_.end()) return graph::kInvalidLabel;
  return classes_[entities_[it->second].class_index].term;
}

std::function<graph::LabelId(rdf::TermId)> KnowledgeBase::TypeResolver()
    const {
  return [this](rdf::TermId term) { return TypeLabelOf(term); };
}

}  // namespace simj::workload
