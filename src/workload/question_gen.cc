#include "workload/question_gen.h"

#include <unordered_map>

#include "ged/edit_distance.h"
#include "util/check.h"
#include "util/strings.h"

namespace simj::workload {

namespace {

using KbFact = KnowledgeBase::Fact;

// One relation clause of a question under construction.
struct Clause {
  int predicate_index = -1;
  int object_entity = -1;   // entity index, or -1 when the object is a
  int object_class = -1;    // chain variable of this class
  bool chains_from_previous = false;
};

struct Draft {
  int wh_class = -1;
  // "Who <rel> <entity>?" questions have no class constraint at all: the
  // gold query drops the type triple, like the NL side drops the class
  // phrase.
  bool who_head = false;
  std::vector<Clause> clauses;
};

// Samples a question draft from the knowledge base's facts so the gold
// query always has at least one answer.
bool SampleDraft(KnowledgeBase& kb, Rng& rng, int relations,
                 bool chain_shape, Draft* draft) {
  const auto& entities = kb.entities();
  if (entities.empty()) return false;
  // Seed entity: needs enough facts for a star, or a chainable fact.
  for (int attempt = 0; attempt < 50; ++attempt) {
    int e0 = static_cast<int>(rng.Uniform(0, entities.size() - 1));
    const std::vector<KbFact>& facts = kb.FactsOf(e0);
    if (facts.empty()) continue;
    draft->wh_class = entities[e0].class_index;
    draft->clauses.clear();

    if (relations == 1 || !chain_shape) {
      // Star: k distinct facts of e0.
      if (static_cast<int>(facts.size()) < relations) continue;
      std::vector<int> order(facts.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
      rng.Shuffle(order);
      for (int k = 0; k < relations; ++k) {
        const KbFact& fact = facts[order[k]];
        draft->clauses.push_back(
            Clause{fact.predicate_index, fact.object_entity, -1, false});
      }
      return true;
    }

    // Chain: e0 -p1-> o1 -p2-> o2 ... The first (relations - 1) hops end in
    // class-constrained variables; only the last object is a concrete
    // entity.
    int current = e0;
    bool ok = true;
    for (int k = 0; k < relations; ++k) {
      const std::vector<KbFact>& step_facts = kb.FactsOf(current);
      if (step_facts.empty()) {
        ok = false;
        break;
      }
      const KbFact& fact =
          step_facts[rng.Uniform(0, step_facts.size() - 1)];
      Clause clause;
      clause.predicate_index = fact.predicate_index;
      clause.chains_from_previous = k > 0;
      if (k + 1 < relations) {
        clause.object_class = kb.entities()[fact.object_entity].class_index;
        clause.object_entity = -1;
      } else {
        clause.object_entity = fact.object_entity;
      }
      draft->clauses.push_back(clause);
      current = fact.object_entity;
    }
    if (ok) return true;
  }
  return false;
}

// Renders the question text.
std::string RenderQuestion(const KnowledgeBase& kb, Rng& rng,
                           const Draft& draft) {
  const auto& classes = kb.classes();
  const auto& predicates = kb.predicates();
  std::string text;
  if (draft.who_head) {
    text = "Who";
  } else if (rng.Bernoulli(0.3)) {
    // "Give me all" heads usually pluralize the class phrase.
    std::string phrase = classes[draft.wh_class].phrase;
    if (rng.Bernoulli(0.6)) {
      if (phrase.size() > 1 && phrase.back() == 'y') {
        phrase = phrase.substr(0, phrase.size() - 1) + "ies";
      } else {
        phrase += "s";
      }
    }
    text = "Give me all " + phrase;
  } else {
    text = "Which " + classes[draft.wh_class].phrase;
  }
  for (size_t i = 0; i < draft.clauses.size(); ++i) {
    const Clause& clause = draft.clauses[i];
    const auto& phrases = predicates[clause.predicate_index].phrases;
    const std::string& rel_phrase =
        phrases[rng.Uniform(0, phrases.size() - 1)];
    if (i > 0) {
      text += clause.chains_from_previous ? " that" : " and";
    }
    text += " " + rel_phrase;
    if (clause.object_entity >= 0) {
      text += " " + kb.entities()[clause.object_entity].phrase;
    } else {
      text += " the " + classes[clause.object_class].phrase;
    }
  }
  text += "?";
  return text;
}

// Builds the gold SPARQL query.
sparql::ParsedQuery BuildGoldQuery(KnowledgeBase& kb, const Draft& draft) {
  graph::LabelDictionary& dict = kb.dict();
  sparql::ParsedQuery query;
  rdf::TermId wh_var = dict.Intern("?x");
  query.select_vars.push_back(wh_var);
  if (!draft.who_head) {
    query.patterns.push_back(rdf::TriplePattern{
        wh_var, kb.type_predicate(), kb.classes()[draft.wh_class].term});
  }

  int next_var = 0;
  rdf::TermId attach = wh_var;
  for (const Clause& clause : draft.clauses) {
    rdf::TermId subject = clause.chains_from_previous ? attach : wh_var;
    rdf::TermId object;
    if (clause.object_entity >= 0) {
      object = kb.entities()[clause.object_entity].term;
    } else {
      object = dict.Intern("?c" + std::to_string(next_var++));
      query.patterns.push_back(rdf::TriplePattern{
          object, kb.type_predicate(),
          kb.classes()[clause.object_class].term});
    }
    query.patterns.push_back(rdf::TriplePattern{
        subject, kb.predicates()[clause.predicate_index].term, object});
    attach = object;
  }
  return query;
}

// A distractor query: a random star pattern with no paired question.
sparql::ParsedQuery BuildDistractor(KnowledgeBase& kb, Rng& rng) {
  Draft draft;
  int relations = static_cast<int>(rng.Uniform(1, 3));
  while (!SampleDraft(kb, rng, relations, rng.Bernoulli(0.3), &draft)) {
    relations = 1;
  }
  return BuildGoldQuery(kb, draft);
}

}  // namespace

Workload GenerateWorkload(KnowledgeBase& kb, const WorkloadConfig& config) {
  Rng rng(config.seed);
  Workload workload;
  std::unordered_map<std::string, int> query_index_by_text;

  auto intern_query = [&](sparql::ParsedQuery query) {
    std::string text = sparql::ToSparqlText(query, kb.dict());
    auto it = query_index_by_text.find(text);
    if (it != query_index_by_text.end()) return it->second;
    int index = static_cast<int>(workload.sparql_queries.size());
    workload.sparql_queries.push_back(std::move(query));
    workload.sparql_texts.push_back(text);
    query_index_by_text.emplace(std::move(text), index);
    return index;
  };

  while (static_cast<int>(workload.questions.size()) < config.num_questions) {
    int relations = 1 + rng.WeightedIndex(config.relation_count_weights);
    bool chain = relations >= 2 && rng.Bernoulli(config.chain_probability);
    Draft draft;
    if (!SampleDraft(kb, rng, relations, chain, &draft)) continue;
    // A slice of single-relation questions uses the class-free "Who" head.
    if (relations == 1 && rng.Bernoulli(0.12)) draft.who_head = true;

    QuestionInstance question;
    question.text = RenderQuestion(kb, rng, draft);
    question.gold_query = BuildGoldQuery(kb, draft);
    question.num_relations = static_cast<int>(draft.clauses.size());
    question.gold_sparql_index = intern_query(question.gold_query);
    question.gold_query_text =
        workload.sparql_texts[question.gold_sparql_index];
    workload.questions.push_back(std::move(question));
  }

  for (int i = 0; i < config.distractor_queries; ++i) {
    intern_query(BuildDistractor(kb, rng));
  }
  return workload;
}

JoinSides BuildJoinSides(KnowledgeBase& kb, const Workload& workload) {
  JoinSides sides;
  std::function<graph::LabelId(rdf::TermId)> resolver = kb.TypeResolver();
  for (const sparql::ParsedQuery& query : workload.sparql_queries) {
    sparql::QueryGraph qgraph =
        sparql::BuildQueryGraph(query, kb.dict(), &resolver);
    sides.d.push_back(qgraph.graph);
    sides.d_graphs.push_back(std::move(qgraph));
  }
  for (size_t i = 0; i < workload.questions.size(); ++i) {
    StatusOr<nlp::ParsedQuestion> parsed =
        nlp::ParseQuestion(workload.questions[i].text, kb.lexicon());
    if (!parsed.ok()) {
      ++sides.parse_failures;
      continue;
    }
    StatusOr<nlp::UncertainQuestionGraph> ugraph =
        nlp::BuildUncertainGraph(*parsed, kb.lexicon(), kb.dict());
    if (!ugraph.ok()) {
      ++sides.build_failures;
      continue;
    }
    sides.u.push_back(ugraph->graph);
    sides.u_question_index.push_back(static_cast<int>(i));
    sides.u_parsed.push_back(*std::move(parsed));
    sides.u_graphs.push_back(*std::move(ugraph));
  }
  return sides;
}

bool SameIntent(const KnowledgeBase& kb, const sparql::ParsedQuery& a,
                const sparql::ParsedQuery& b) {
  std::function<graph::LabelId(rdf::TermId)> resolver = kb.TypeResolver();
  sparql::QueryGraph ga = sparql::BuildQueryGraph(a, kb.dict(), &resolver);
  sparql::QueryGraph gb = sparql::BuildQueryGraph(b, kb.dict(), &resolver);
  if (ga.graph.num_vertices() != gb.graph.num_vertices() ||
      ga.graph.num_edges() != gb.graph.num_edges()) {
    return false;
  }
  return ged::BoundedGed(ga.graph, gb.graph, /*tau=*/0, kb.dict())
      .has_value();
}

}  // namespace simj::workload
