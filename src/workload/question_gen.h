// Paired workload generation: natural-language questions with their gold
// SPARQL queries (the QALD-3-like, WebQ-like and MM-like datasets of the
// paper's evaluation), and the conversion into the two join sides.

#ifndef SIMJ_WORKLOAD_QUESTION_GEN_H_
#define SIMJ_WORKLOAD_QUESTION_GEN_H_

#include <string>
#include <vector>

#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"
#include "nlp/semantic_graph.h"
#include "nlp/uncertain_builder.h"
#include "sparql/parser.h"
#include "workload/knowledge_base.h"

namespace simj::workload {

struct WorkloadConfig {
  uint64_t seed = 1;
  int num_questions = 200;
  // Additional SPARQL queries in D with no paired question (the DBpedia
  // query-log effect: |D| >> |N|).
  int distractor_queries = 0;
  // Weight of questions with k = 1, 2, 3, ... relations (matching the
  // paper's Table 2 graph sizes of ~5.7 vertices on average).
  std::vector<double> relation_count_weights = {0.30, 0.35, 0.25, 0.10};
  // For k >= 2: probability of a chain shape (vs a star).
  double chain_probability = 0.4;
};

struct QuestionInstance {
  std::string text;
  sparql::ParsedQuery gold_query;
  std::string gold_query_text;
  int num_relations = 0;
  // Index of the gold query inside Workload::sparql_queries.
  int gold_sparql_index = -1;
};

struct Workload {
  std::vector<QuestionInstance> questions;
  // The D side: gold queries (deduplicated) plus distractors.
  std::vector<sparql::ParsedQuery> sparql_queries;
  std::vector<std::string> sparql_texts;
};

Workload GenerateWorkload(KnowledgeBase& kb, const WorkloadConfig& config);

// The two graph sets the join consumes, with provenance kept for template
// generation and quality accounting.
struct JoinSides {
  // D: typed SPARQL query graphs, aligned with workload.sparql_queries.
  std::vector<graph::LabeledGraph> d;
  std::vector<sparql::QueryGraph> d_graphs;

  // U: uncertain graphs of the questions that survived the NLP pipeline.
  std::vector<graph::UncertainGraph> u;
  std::vector<int> u_question_index;  // into workload.questions
  std::vector<nlp::ParsedQuestion> u_parsed;
  std::vector<nlp::UncertainQuestionGraph> u_graphs;

  int parse_failures = 0;  // questions the rule-based parser rejected
  int build_failures = 0;  // questions whose uncertain graph failed linking
};

JoinSides BuildJoinSides(KnowledgeBase& kb, const Workload& workload);

// Ground truth used by the paper's |C|/precision metrics: a returned pair
// <q, n> is correct when q matches n's gold query "except for entity
// phrases", i.e. their typed query graphs are at graph edit distance 0.
bool SameIntent(const KnowledgeBase& kb, const sparql::ParsedQuery& a,
                const sparql::ParsedQuery& b);

}  // namespace simj::workload

#endif  // SIMJ_WORKLOAD_QUESTION_GEN_H_
