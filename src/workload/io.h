// Workload persistence: a line-oriented text format for paired
// question/SPARQL workloads, the adoption path for real data (QALD-style
// benchmarks ship exactly this shape: a question and its gold query).
//
//   # comment
//   Q <question text> \t <gold SPARQL>
//   S <SPARQL with no paired question>        (distractor queries)
//
// ParseWorkloadText deduplicates gold queries into the D side exactly as
// the generator does, so a loaded workload drops into BuildJoinSides
// unchanged.

#ifndef SIMJ_WORKLOAD_IO_H_
#define SIMJ_WORKLOAD_IO_H_

#include <string>
#include <string_view>

#include "graph/label.h"
#include "workload/question_gen.h"

namespace simj::workload {

std::string SerializeWorkload(const Workload& workload,
                              const graph::LabelDictionary& dict);

StatusOr<Workload> ParseWorkloadText(std::string_view text,
                                     graph::LabelDictionary& dict);

}  // namespace simj::workload

#endif  // SIMJ_WORKLOAD_IO_H_
