// Synthetic knowledge base with controlled ambiguity.
//
// Substitute for DBpedia + the entity-linking / paraphrasing tooling the
// paper consumes (see DESIGN.md): a schema of classes and predicates with
// domain/range typing, entities with surface phrases (a tunable fraction of
// phrases is shared across entities of different classes — the "Michael
// Jordan" effect), relation phrases with tunable top-1 accuracy (a wrong
// predicate may outrank the right one), facts stored in an rdf::TripleStore,
// and an nlp::Lexicon exposing the confidence-scored links.

#ifndef SIMJ_WORKLOAD_KNOWLEDGE_BASE_H_
#define SIMJ_WORKLOAD_KNOWLEDGE_BASE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/label.h"
#include "nlp/lexicon.h"
#include "rdf/triple_store.h"
#include "util/rng.h"

namespace simj::workload {

struct KbConfig {
  uint64_t seed = 42;
  int num_classes = 12;
  int num_predicates = 16;
  int entities_per_class = 30;
  // Fraction of entities whose phrase is shared with an entity of another
  // class (entity-linking ambiguity).
  double entity_phrase_ambiguity = 0.45;
  // Fraction of entities with a shared phrase whose *top* candidate is the
  // wrong entity.
  double entity_top1_error = 0.5;
  // Probability that a relation phrase's top candidate is the correct
  // predicate.
  double relation_top1_accuracy = 0.65;
  // Small chance of "trap" phrases containing connector words, which the
  // rule-based parser genuinely cannot segment ("Harold and Maude").
  double trap_phrase_fraction = 0.02;
  // Expected facts per entity (excluding the type triple).
  double facts_per_entity = 3.0;
  // Restrict to the music & movies slice (the paper's MM workload).
  bool closed_domain = false;
};

class KnowledgeBase {
 public:
  struct ClassInfo {
    rdf::TermId term = graph::kInvalidLabel;
    std::string name;
    std::string phrase;  // lexicon class phrase, lowercase
  };
  struct PredicateInfo {
    rdf::TermId term = graph::kInvalidLabel;
    std::string name;
    int domain_class = -1;
    int range_class = -1;
    std::vector<std::string> phrases;
  };
  struct EntityInfo {
    rdf::TermId term = graph::kInvalidLabel;
    int class_index = -1;
    std::string phrase;
  };
  struct Fact {
    int predicate_index = -1;
    int object_entity = -1;  // index into entities()
  };

  explicit KnowledgeBase(const KbConfig& config);

  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;

  graph::LabelDictionary& dict() { return dict_; }
  const graph::LabelDictionary& dict() const { return dict_; }
  const rdf::TripleStore& store() const { return store_; }
  const nlp::Lexicon& lexicon() const { return lexicon_; }

  rdf::TermId type_predicate() const { return type_predicate_; }

  const std::vector<ClassInfo>& classes() const { return classes_; }
  const std::vector<PredicateInfo>& predicates() const { return predicates_; }
  const std::vector<EntityInfo>& entities() const { return entities_; }

  const std::vector<int>& EntitiesOfClass(int class_index) const {
    return entities_of_class_[class_index];
  }
  const std::vector<int>& PredicatesWithDomain(int class_index) const {
    return predicates_of_domain_[class_index];
  }
  // Facts whose subject is entity `entity_index`.
  const std::vector<Fact>& FactsOf(int entity_index) const {
    return facts_of_entity_[entity_index];
  }

  // Class label of an entity term, or kInvalidLabel for non-entities. This
  // is the resolver the typed query graphs use ("Harvard_University" is
  // joined as "University").
  graph::LabelId TypeLabelOf(rdf::TermId term) const;
  std::function<graph::LabelId(rdf::TermId)> TypeResolver() const;

 private:
  void BuildSchema(const KbConfig& config, Rng& rng);
  void BuildEntities(const KbConfig& config, Rng& rng);
  void BuildFacts(const KbConfig& config, Rng& rng);

  graph::LabelDictionary dict_;
  rdf::TripleStore store_;
  nlp::Lexicon lexicon_;
  rdf::TermId type_predicate_ = graph::kInvalidLabel;

  std::vector<ClassInfo> classes_;
  std::vector<PredicateInfo> predicates_;
  std::vector<EntityInfo> entities_;
  std::vector<std::vector<int>> entities_of_class_;
  std::vector<std::vector<int>> predicates_of_domain_;
  std::vector<std::vector<Fact>> facts_of_entity_;
  std::unordered_map<rdf::TermId, int> entity_index_of_term_;
};

}  // namespace simj::workload

#endif  // SIMJ_WORKLOAD_KNOWLEDGE_BASE_H_
