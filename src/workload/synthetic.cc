#include "workload/synthetic.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace simj::workload {

namespace {

std::vector<graph::LabelId> InternLabels(graph::LabelDictionary& dict,
                                         const std::string& prefix,
                                         int count) {
  std::vector<graph::LabelId> labels;
  labels.reserve(count);
  for (int i = 0; i < count; ++i) {
    labels.push_back(dict.Intern(prefix + std::to_string(i)));
  }
  return labels;
}

graph::LabelId PickLabel(Rng& rng,
                         const std::vector<graph::LabelId>& labels) {
  return labels[rng.Uniform(0, labels.size() - 1)];
}

using GraphFactory = graph::LabeledGraph (*)(
    Rng&, const std::vector<graph::LabelId>&,
    const std::vector<graph::LabelId>&, const SyntheticConfig&);

SyntheticDataset MakeDataset(const SyntheticConfig& config,
                             GraphFactory factory,
                             const std::string& vertex_prefix,
                             int vertex_pool, int edge_pool) {
  SyntheticDataset dataset;
  Rng rng(config.seed);
  std::vector<graph::LabelId> vlabels =
      InternLabels(dataset.dict, vertex_prefix, vertex_pool);
  std::vector<graph::LabelId> elabels =
      InternLabels(dataset.dict, "e", edge_pool);

  dataset.certain.reserve(config.num_certain);
  for (int i = 0; i < config.num_certain; ++i) {
    dataset.certain.push_back(factory(rng, vlabels, elabels, config));
  }
  dataset.uncertain.reserve(config.num_uncertain);
  for (int i = 0; i < config.num_uncertain; ++i) {
    graph::LabeledGraph base;
    if (!dataset.certain.empty() && rng.Bernoulli(config.derived_fraction)) {
      const graph::LabeledGraph& seed =
          dataset.certain[rng.Uniform(0, dataset.certain.size() - 1)];
      base = Perturb(rng, seed, vlabels, elabels, config.perturbation_ops);
    } else {
      base = factory(rng, vlabels, elabels, config);
    }
    dataset.uncertain.push_back(MakeUncertain(
        rng, base, vlabels, config.labels_per_vertex,
        config.uncertain_vertex_fraction));
  }
  return dataset;
}

graph::LabeledGraph ErFactory(Rng& rng,
                              const std::vector<graph::LabelId>& vlabels,
                              const std::vector<graph::LabelId>& elabels,
                              const SyntheticConfig& config) {
  return RandomErGraph(rng, vlabels, elabels, config.num_vertices,
                       config.num_edges);
}

graph::LabeledGraph SfFactory(Rng& rng,
                              const std::vector<graph::LabelId>& vlabels,
                              const std::vector<graph::LabelId>& elabels,
                              const SyntheticConfig& config) {
  int attachments =
      std::max(1, config.num_edges / std::max(1, config.num_vertices));
  return RandomSfGraph(rng, vlabels, elabels, config.num_vertices,
                       attachments);
}

graph::LabeledGraph MoleculeFactory(
    Rng& rng, const std::vector<graph::LabelId>& vlabels,
    const std::vector<graph::LabelId>& elabels,
    const SyntheticConfig& config) {
  return RandomMoleculeGraph(rng, vlabels, elabels, config.num_vertices);
}

}  // namespace

graph::LabeledGraph RandomErGraph(Rng& rng,
                                  const std::vector<graph::LabelId>& vlabels,
                                  const std::vector<graph::LabelId>& elabels,
                                  int num_vertices, int num_edges) {
  SIMJ_CHECK_GT(num_vertices, 0);
  graph::LabeledGraph g;
  for (int v = 0; v < num_vertices; ++v) g.AddVertex(PickLabel(rng, vlabels));
  if (num_vertices < 2) return g;
  for (int e = 0; e < num_edges; ++e) {
    int src = static_cast<int>(rng.Uniform(0, num_vertices - 1));
    int dst = static_cast<int>(rng.Uniform(0, num_vertices - 1));
    if (src == dst) continue;
    g.AddEdge(src, dst, PickLabel(rng, elabels));
  }
  return g;
}

graph::LabeledGraph RandomSfGraph(Rng& rng,
                                  const std::vector<graph::LabelId>& vlabels,
                                  const std::vector<graph::LabelId>& elabels,
                                  int num_vertices, int attachments) {
  SIMJ_CHECK_GT(num_vertices, 0);
  graph::LabeledGraph g;
  g.AddVertex(PickLabel(rng, vlabels));
  // Preferential attachment: endpoints are drawn from a list where each
  // vertex appears once per incident edge (plus once flat, so isolated
  // vertices stay reachable).
  std::vector<int> endpoint_pool = {0};
  for (int v = 1; v < num_vertices; ++v) {
    g.AddVertex(PickLabel(rng, vlabels));
    int links = std::min(attachments, v);
    for (int a = 0; a < links; ++a) {
      int target = endpoint_pool[rng.Uniform(0, endpoint_pool.size() - 1)];
      if (target == v) continue;
      if (rng.Bernoulli(0.5)) {
        g.AddEdge(v, target, PickLabel(rng, elabels));
      } else {
        g.AddEdge(target, v, PickLabel(rng, elabels));
      }
      endpoint_pool.push_back(target);
      endpoint_pool.push_back(v);
    }
    endpoint_pool.push_back(v);
  }
  return g;
}

graph::LabeledGraph RandomMoleculeGraph(
    Rng& rng, const std::vector<graph::LabelId>& atom_labels,
    const std::vector<graph::LabelId>& bond_labels, int num_vertices) {
  SIMJ_CHECK_GT(num_vertices, 0);
  graph::LabeledGraph g;
  // Skewed atom distribution: the first few labels (carbon/oxygen/nitrogen
  // stand-ins) dominate, as in AIDS.
  auto pick_atom = [&]() {
    double r = rng.UniformDouble();
    size_t index;
    if (r < 0.55) {
      index = 0;
    } else if (r < 0.75) {
      index = 1 % atom_labels.size();
    } else if (r < 0.85) {
      index = 2 % atom_labels.size();
    } else {
      index = static_cast<size_t>(rng.Uniform(0, atom_labels.size() - 1));
    }
    return atom_labels[index];
  };
  for (int v = 0; v < num_vertices; ++v) g.AddVertex(pick_atom());
  // Tree backbone.
  for (int v = 1; v < num_vertices; ++v) {
    int parent = static_cast<int>(rng.Uniform(0, v - 1));
    g.AddEdge(parent, v, PickLabel(rng, bond_labels));
  }
  // A few ring closures.
  int rings = static_cast<int>(rng.Uniform(0, 2));
  for (int r = 0; r < rings && num_vertices >= 3; ++r) {
    int a = static_cast<int>(rng.Uniform(0, num_vertices - 1));
    int b = static_cast<int>(rng.Uniform(0, num_vertices - 1));
    if (a != b) g.AddEdge(a, b, PickLabel(rng, bond_labels));
  }
  return g;
}

graph::LabeledGraph Perturb(Rng& rng, const graph::LabeledGraph& base,
                            const std::vector<graph::LabelId>& vlabels,
                            const std::vector<graph::LabelId>& elabels,
                            int ops) {
  // Rebuild with mutations: vertex relabels directly; edge deletion by
  // skipping; edge insertion at the end.
  std::vector<graph::LabelId> labels(base.num_vertices());
  for (int v = 0; v < base.num_vertices(); ++v) {
    labels[v] = base.vertex_label(v);
  }
  std::vector<bool> keep_edge(base.num_edges(), true);
  int added_edges = 0;

  for (int op = 0; op < ops; ++op) {
    int kind = static_cast<int>(rng.Uniform(0, 2));
    if (kind == 0 && base.num_vertices() > 0) {
      int v = static_cast<int>(rng.Uniform(0, base.num_vertices() - 1));
      labels[v] = PickLabel(rng, vlabels);
    } else if (kind == 1 && base.num_edges() > 0) {
      keep_edge[rng.Uniform(0, base.num_edges() - 1)] = false;
    } else {
      ++added_edges;
    }
  }

  graph::LabeledGraph out;
  for (graph::LabelId label : labels) out.AddVertex(label);
  for (int e = 0; e < base.num_edges(); ++e) {
    if (keep_edge[e]) {
      const graph::Edge& edge = base.edge(e);
      out.AddEdge(edge.src, edge.dst, edge.label);
    }
  }
  for (int e = 0; e < added_edges && out.num_vertices() >= 2; ++e) {
    int src = static_cast<int>(rng.Uniform(0, out.num_vertices() - 1));
    int dst = static_cast<int>(rng.Uniform(0, out.num_vertices() - 1));
    if (src != dst) out.AddEdge(src, dst, PickLabel(rng, elabels));
  }
  return out;
}

graph::UncertainGraph MakeUncertain(
    Rng& rng, const graph::LabeledGraph& base,
    const std::vector<graph::LabelId>& vlabels, int labels_per_vertex,
    double uncertain_fraction) {
  graph::UncertainGraph out;
  for (int v = 0; v < base.num_vertices(); ++v) {
    graph::LabelId truth = base.vertex_label(v);
    int alts = std::min<int>(labels_per_vertex,
                             static_cast<int>(vlabels.size()));
    if (alts < 2 || !rng.Bernoulli(uncertain_fraction)) {
      out.AddCertainVertex(truth);
      continue;
    }
    // Candidate set: the true label plus distinct random others.
    std::vector<graph::LabelId> candidates = {truth};
    while (static_cast<int>(candidates.size()) < alts) {
      graph::LabelId pick = PickLabel(rng, vlabels);
      if (std::find(candidates.begin(), candidates.end(), pick) ==
          candidates.end()) {
        candidates.push_back(pick);
      }
    }
    // Confidences: descending simplex; the true label leads 70% of the
    // time (entity linking is right more often than not, but not always).
    std::vector<double> probs = rng.RandomSimplex(alts, 1.2);
    std::sort(probs.begin(), probs.end(), std::greater<double>());
    if (!rng.Bernoulli(0.7)) {
      // Swap the true label away from the top.
      std::swap(candidates[0],
                candidates[rng.Uniform(1, candidates.size() - 1)]);
    }
    std::vector<graph::LabelAlternative> alternatives;
    for (int i = 0; i < alts; ++i) {
      alternatives.push_back(
          graph::LabelAlternative{candidates[i], probs[i]});
    }
    out.AddVertex(std::move(alternatives));
  }
  for (const graph::Edge& e : base.edges()) {
    out.AddEdge(e.src, e.dst, e.label);
  }
  return out;
}

SyntheticDataset MakeErDataset(const SyntheticConfig& config) {
  return MakeDataset(config, ErFactory, "v", config.vertex_label_pool,
                     config.edge_label_pool);
}

SyntheticDataset MakeSfDataset(const SyntheticConfig& config) {
  return MakeDataset(config, SfFactory, "v", config.vertex_label_pool,
                     config.edge_label_pool);
}

SyntheticDataset MakeAidsDataset(const SyntheticConfig& config) {
  SyntheticConfig molecule_config = config;
  // AIDS-like alphabet: 62 atom types, 3 bond types.
  molecule_config.vertex_label_pool = 62;
  molecule_config.edge_label_pool = 3;
  return MakeDataset(molecule_config, MoleculeFactory, "atom",
                     molecule_config.vertex_label_pool,
                     molecule_config.edge_label_pool);
}

}  // namespace simj::workload
