// Synthetic graph datasets for the efficiency and scalability experiments:
// ER (random) and SF (power-law) graphs as in the paper's Section 7.1.1,
// plus AIDS-like molecule graphs for the filter comparison (Fig. 15).
//
// The uncertain side is generated the way the paper's pipeline would: a
// base certain graph is lightly perturbed (so the join has real matches and
// near-misses) and a fraction of its vertices receive extra candidate
// labels with a confidence simplex.

#ifndef SIMJ_WORKLOAD_SYNTHETIC_H_
#define SIMJ_WORKLOAD_SYNTHETIC_H_

#include <vector>

#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"
#include "util/rng.h"

namespace simj::workload {

struct SyntheticConfig {
  uint64_t seed = 7;
  int num_certain = 200;    // |D|
  int num_uncertain = 200;  // |U|
  int num_vertices = 12;
  int num_edges = 18;       // ER edge draws; SF attachments derive from it
  int vertex_label_pool = 20;
  int edge_label_pool = 6;
  // Average number of candidate labels on uncertain vertices (|L(v)|).
  int labels_per_vertex = 3;
  // Fraction of vertices that are uncertain.
  double uncertain_vertex_fraction = 0.5;
  // Fraction of uncertain graphs derived from a perturbed certain graph
  // (the rest are independent random graphs).
  double derived_fraction = 0.6;
  // Edit operations applied when deriving.
  int perturbation_ops = 2;
};

struct SyntheticDataset {
  graph::LabelDictionary dict;
  std::vector<graph::LabeledGraph> certain;
  std::vector<graph::UncertainGraph> uncertain;
};

SyntheticDataset MakeErDataset(const SyntheticConfig& config);
SyntheticDataset MakeSfDataset(const SyntheticConfig& config);
SyntheticDataset MakeAidsDataset(const SyntheticConfig& config);

// Building blocks, exposed for tests and custom benches.
graph::LabeledGraph RandomErGraph(Rng& rng,
                                  const std::vector<graph::LabelId>& vlabels,
                                  const std::vector<graph::LabelId>& elabels,
                                  int num_vertices, int num_edges);

// Barabasi-Albert style preferential attachment.
graph::LabeledGraph RandomSfGraph(Rng& rng,
                                  const std::vector<graph::LabelId>& vlabels,
                                  const std::vector<graph::LabelId>& elabels,
                                  int num_vertices, int attachments);

// Molecule-like: tree backbone plus a few ring-closing edges, atom-type
// labels with a skewed distribution.
graph::LabeledGraph RandomMoleculeGraph(
    Rng& rng, const std::vector<graph::LabelId>& atom_labels,
    const std::vector<graph::LabelId>& bond_labels, int num_vertices);

// Applies `ops` random edit operations (relabel vertex / delete edge / add
// edge) to a copy of `base`.
graph::LabeledGraph Perturb(Rng& rng, const graph::LabeledGraph& base,
                            const std::vector<graph::LabelId>& vlabels,
                            const std::vector<graph::LabelId>& elabels,
                            int ops);

// Lifts a certain graph into an uncertain one: each vertex becomes
// uncertain with probability `uncertain_fraction`, receiving
// `labels_per_vertex` candidate labels (the original label included, not
// always on top) with a random confidence simplex.
graph::UncertainGraph MakeUncertain(
    Rng& rng, const graph::LabeledGraph& base,
    const std::vector<graph::LabelId>& vlabels, int labels_per_vertex,
    double uncertain_fraction);

}  // namespace simj::workload

#endif  // SIMJ_WORKLOAD_SYNTHETIC_H_
