#include "graph/uncertain_graph.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace simj::graph {

namespace {
constexpr double kProbEpsilon = 1e-9;
}  // namespace

int UncertainGraph::AddVertex(std::vector<LabelAlternative> alternatives) {
  SIMJ_CHECK(!alternatives.empty());
  double sum = 0.0;
  for (const LabelAlternative& alt : alternatives) {
    SIMJ_CHECK_GT(alt.prob, 0.0);
    SIMJ_CHECK_LE(alt.prob, 1.0 + kProbEpsilon);
    sum += alt.prob;
  }
  SIMJ_CHECK_LE(sum, 1.0 + kProbEpsilon);
  alternatives_.push_back(std::move(alternatives));
  structure_.AddVertex(kInvalidLabel);
  return num_vertices() - 1;
}

void UncertainGraph::AddEdge(int src, int dst, LabelId label) {
  structure_.AddEdge(src, dst, label);
}

bool UncertainGraph::IsVertexCertain(int v) const {
  const auto& alts = alternatives(v);
  return alts.size() == 1 && alts[0].prob >= 1.0 - kProbEpsilon;
}

int64_t UncertainGraph::NumPossibleWorlds() const {
  int64_t total = 1;
  for (const auto& alts : alternatives_) {
    int64_t n = static_cast<int64_t>(alts.size());
    if (total > std::numeric_limits<int64_t>::max() / n) {
      return std::numeric_limits<int64_t>::max();
    }
    total *= n;
  }
  return total;
}

double UncertainGraph::TotalMass() const {
  double mass = 1.0;
  for (const auto& alts : alternatives_) {
    double sum = 0.0;
    for (const LabelAlternative& alt : alts) sum += alt.prob;
    mass *= sum;
  }
  return mass;
}

LabeledGraph UncertainGraph::Materialize(const std::vector<int>& choice) const {
  SIMJ_CHECK_EQ(static_cast<int>(choice.size()), num_vertices());
  LabeledGraph world;
  for (int v = 0; v < num_vertices(); ++v) {
    const auto& alts = alternatives_[v];
    SIMJ_CHECK(choice[v] >= 0 && choice[v] < static_cast<int>(alts.size()));
    world.AddVertex(alts[choice[v]].label);
  }
  for (const Edge& e : structure_.edges()) {
    world.AddEdge(e.src, e.dst, e.label);
  }
  return world;
}

double UncertainGraph::WorldProbability(const std::vector<int>& choice) const {
  SIMJ_CHECK_EQ(static_cast<int>(choice.size()), num_vertices());
  double prob = 1.0;
  for (int v = 0; v < num_vertices(); ++v) {
    prob *= alternatives_[v][choice[v]].prob;
  }
  return prob;
}

UncertainGraph UncertainGraph::RestrictVertex(
    int v, const std::vector<int>& keep) const {
  SIMJ_CHECK(v >= 0 && v < num_vertices());
  SIMJ_CHECK(!keep.empty());
  UncertainGraph restricted;
  for (int u = 0; u < num_vertices(); ++u) {
    if (u != v) {
      restricted.AddVertex(alternatives_[u]);
      continue;
    }
    std::vector<LabelAlternative> subset;
    subset.reserve(keep.size());
    for (int idx : keep) {
      SIMJ_CHECK(idx >= 0 && idx < static_cast<int>(alternatives_[v].size()));
      subset.push_back(alternatives_[v][idx]);
    }
    restricted.AddVertex(std::move(subset));
  }
  for (const Edge& e : structure_.edges()) {
    restricted.AddEdge(e.src, e.dst, e.label);
  }
  return restricted;
}

Status UncertainGraph::Validate(const LabelDictionary& dict) const {
  Status topology = structure_.ValidateTopology(dict);
  if (!topology.ok()) return topology;
  if (static_cast<int>(alternatives_.size()) != structure_.num_vertices()) {
    return InternalError("alternative-set count disagrees with vertex count");
  }
  for (int v = 0; v < num_vertices(); ++v) {
    const std::vector<LabelAlternative>& alts = alternatives_[v];
    std::string where = "vertex ";
    where += std::to_string(v);
    if (alts.empty()) {
      return InvalidArgumentError(where + " has an empty alternative set");
    }
    double mass = 0.0;
    for (size_t a = 0; a < alts.size(); ++a) {
      if (alts[a].label < 0 ||
          alts[a].label >= static_cast<LabelId>(dict.size())) {
        return InvalidArgumentError(where +
                                    " has an alternative with an invalid "
                                    "label id");
      }
      if (!(alts[a].prob > 0.0) || alts[a].prob > 1.0 + kProbEpsilon) {
        std::string message = where;
        message += " alternative ";
        message += std::to_string(a);
        message += " has probability ";
        message += std::to_string(alts[a].prob);
        message += " outside (0, 1]";
        return InvalidArgumentError(std::move(message));
      }
      for (size_t b = 0; b < a; ++b) {
        if (alts[b].label == alts[a].label) {
          return InvalidArgumentError(
              where + " repeats a label in its alternative set (alternatives "
                      "must be mutually exclusive)");
        }
      }
      mass += alts[a].prob;
    }
    if (mass > 1.0 + kProbEpsilon) {
      std::string message = where;
      message += " has probability mass ";
      message += std::to_string(mass);
      message += " > 1";
      return InvalidArgumentError(std::move(message));
    }
  }
  return Status::Ok();
}

UncertainGraph UncertainGraph::FromCertain(const LabeledGraph& g) {
  UncertainGraph out;
  for (int v = 0; v < g.num_vertices(); ++v) {
    out.AddCertainVertex(g.vertex_label(v));
  }
  for (const Edge& e : g.edges()) out.AddEdge(e.src, e.dst, e.label);
  return out;
}

UncertainGraph UncertainGraph::FromParts(
    std::vector<std::vector<LabelAlternative>> alternatives,
    LabeledGraph structure) {
  UncertainGraph g;
  g.alternatives_ = std::move(alternatives);
  g.structure_ = std::move(structure);
  return g;
}

std::string UncertainGraph::DebugString(const LabelDictionary& dict) const {
  std::ostringstream out;
  out << "uncertain_graph(|V|=" << num_vertices() << ", |E|=" << num_edges()
      << ")\n";
  for (int v = 0; v < num_vertices(); ++v) {
    out << "  v" << v << ": {";
    for (size_t i = 0; i < alternatives_[v].size(); ++i) {
      if (i > 0) out << ", ";
      out << dict.Name(alternatives_[v][i].label) << ":"
          << alternatives_[v][i].prob;
    }
    out << "}\n";
  }
  for (const Edge& e : structure_.edges()) {
    out << "  v" << e.src << " -[" << dict.Name(e.label) << "]-> v" << e.dst
        << "\n";
  }
  return out.str();
}

PossibleWorldIterator::PossibleWorldIterator(const UncertainGraph& g)
    : g_(g), choice_(g.num_vertices(), 0), done_(false) {}

void PossibleWorldIterator::Next() {
  SIMJ_CHECK(!done_);
  for (int v = 0; v < g_.num_vertices(); ++v) {
    if (choice_[v] + 1 < static_cast<int>(g_.alternatives(v).size())) {
      ++choice_[v];
      return;
    }
    choice_[v] = 0;
  }
  done_ = true;
}

double PossibleWorldIterator::probability() const {
  return g_.WorldProbability(choice_);
}

UncertainGraph LiftUncertainEdges(
    const std::vector<std::vector<LabelAlternative>>& vertex_alternatives,
    const std::vector<Edge>& certain_edges,
    const std::vector<UncertainEdge>& uncertain_edges, LabelId link_label) {
  UncertainGraph out;
  for (const auto& alts : vertex_alternatives) out.AddVertex(alts);
  for (const Edge& e : certain_edges) out.AddEdge(e.src, e.dst, e.label);
  for (const UncertainEdge& ue : uncertain_edges) {
    int w = out.AddVertex(ue.alternatives);
    out.AddEdge(ue.src, w, link_label);
    out.AddEdge(w, ue.dst, link_label);
  }
  return out;
}

}  // namespace simj::graph
