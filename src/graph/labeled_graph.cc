#include "graph/labeled_graph.h"

#include <algorithm>
#include <sstream>

namespace simj::graph {

int LabeledGraph::AddVertex(LabelId label) {
  vertex_labels_.push_back(label);
  out_.emplace_back();
  in_.emplace_back();
  return num_vertices() - 1;
}

void LabeledGraph::AddEdge(int src, int dst, LabelId label) {
  SIMJ_CHECK(src >= 0 && src < num_vertices());
  SIMJ_CHECK(dst >= 0 && dst < num_vertices());
  SIMJ_CHECK_NE(src, dst);
  int e = num_edges();
  edges_.push_back(Edge{src, dst, label});
  out_[src].push_back(e);
  in_[dst].push_back(e);
}

std::vector<LabelId> LabeledGraph::EdgeLabelsBetween(int src, int dst) const {
  std::vector<LabelId> labels;
  for (int e : out_[src]) {
    if (edges_[e].dst == dst) labels.push_back(edges_[e].label);
  }
  return labels;
}

std::vector<int> LabeledGraph::SortedDegrees() const {
  std::vector<int> degrees(num_vertices());
  for (int v = 0; v < num_vertices(); ++v) degrees[v] = degree(v);
  std::sort(degrees.begin(), degrees.end(), std::greater<int>());
  return degrees;
}

LabelCounts LabeledGraph::VertexLabelCounts() const {
  LabelCounts counts;
  for (LabelId label : vertex_labels_) ++counts[label];
  return counts;
}

LabelCounts LabeledGraph::EdgeLabelCounts() const {
  LabelCounts counts;
  for (const Edge& e : edges_) ++counts[e.label];
  return counts;
}

namespace {

// "<what> <index>" without operator+ on temporaries.
std::string Describe(const char* what, int index) {
  std::string out = what;
  out += ' ';
  out += std::to_string(index);
  return out;
}

bool ValidLabel(LabelId label, const LabelDictionary& dict) {
  return label >= 0 && label < static_cast<LabelId>(dict.size());
}

}  // namespace

Status LabeledGraph::ValidateTopology(const LabelDictionary& dict) const {
  for (int e = 0; e < num_edges(); ++e) {
    const Edge& edge = edges_[e];
    if (edge.src < 0 || edge.src >= num_vertices() || edge.dst < 0 ||
        edge.dst >= num_vertices()) {
      return InvalidArgumentError(Describe("edge", e) +
                                  " has an out-of-range endpoint");
    }
    if (edge.src == edge.dst) {
      return InvalidArgumentError(Describe("edge", e) + " is a self loop");
    }
    if (!ValidLabel(edge.label, dict)) {
      return InvalidArgumentError(Describe("edge", e) +
                                  " carries an invalid label id");
    }
  }
  // The adjacency lists must partition edges(): every edge appears exactly
  // once in its source's out-list and its destination's in-list.
  if (static_cast<int>(out_.size()) != num_vertices() ||
      static_cast<int>(in_.size()) != num_vertices()) {
    return InternalError("adjacency list count disagrees with vertex count");
  }
  std::vector<int> seen_out(num_edges(), 0);
  std::vector<int> seen_in(num_edges(), 0);
  for (int v = 0; v < num_vertices(); ++v) {
    for (int e : out_[v]) {
      if (e < 0 || e >= num_edges() || edges_[e].src != v || ++seen_out[e] > 1) {
        return InternalError(Describe("vertex", v) +
                             " has an inconsistent out-edge list");
      }
    }
    for (int e : in_[v]) {
      if (e < 0 || e >= num_edges() || edges_[e].dst != v || ++seen_in[e] > 1) {
        return InternalError(Describe("vertex", v) +
                             " has an inconsistent in-edge list");
      }
    }
  }
  for (int e = 0; e < num_edges(); ++e) {
    if (seen_out[e] != 1 || seen_in[e] != 1) {
      return InternalError(Describe("edge", e) +
                           " is missing from an adjacency list");
    }
  }
  return Status::Ok();
}

LabeledGraph LabeledGraph::FromParts(std::vector<LabelId> vertex_labels,
                                     std::vector<Edge> edges) {
  LabeledGraph g;
  g.vertex_labels_ = std::move(vertex_labels);
  g.edges_ = std::move(edges);
  g.out_.assign(g.vertex_labels_.size(), {});
  g.in_.assign(g.vertex_labels_.size(), {});
  const int n = g.num_vertices();
  for (int e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edges_[e];
    if (edge.src >= 0 && edge.src < n) g.out_[edge.src].push_back(e);
    if (edge.dst >= 0 && edge.dst < n) g.in_[edge.dst].push_back(e);
  }
  return g;
}

Status LabeledGraph::Validate(const LabelDictionary& dict) const {
  for (int v = 0; v < num_vertices(); ++v) {
    if (!ValidLabel(vertex_labels_[v], dict)) {
      return InvalidArgumentError(Describe("vertex", v) +
                                  " carries an invalid label id");
    }
  }
  return ValidateTopology(dict);
}

std::string LabeledGraph::DebugString(const LabelDictionary& dict) const {
  std::ostringstream out;
  out << "graph(|V|=" << num_vertices() << ", |E|=" << num_edges() << ")\n";
  for (int v = 0; v < num_vertices(); ++v) {
    out << "  v" << v << ": " << dict.Name(vertex_labels_[v]) << "\n";
  }
  for (const Edge& e : edges_) {
    out << "  v" << e.src << " -[" << dict.Name(e.label) << "]-> v" << e.dst
        << "\n";
  }
  return out.str();
}

int DegreeDistanceFromSorted(const std::vector<int>& small_sorted,
                             const std::vector<int>& big_sorted) {
  SIMJ_CHECK_LE(small_sorted.size(), big_sorted.size());
  int total = 0;
  for (size_t i = 0; i < small_sorted.size(); ++i) {
    int diff = small_sorted[i] - big_sorted[i];
    if (diff > 0) total += diff;
  }
  return total;
}

int DegreeDistance(const LabeledGraph& a, const LabeledGraph& b) {
  const LabeledGraph& small = a.num_vertices() <= b.num_vertices() ? a : b;
  const LabeledGraph& big = a.num_vertices() <= b.num_vertices() ? b : a;
  return DegreeDistanceFromSorted(small.SortedDegrees(), big.SortedDegrees());
}

}  // namespace simj::graph
