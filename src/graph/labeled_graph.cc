#include "graph/labeled_graph.h"

#include <algorithm>
#include <sstream>

namespace simj::graph {

int LabeledGraph::AddVertex(LabelId label) {
  vertex_labels_.push_back(label);
  out_.emplace_back();
  in_.emplace_back();
  return num_vertices() - 1;
}

void LabeledGraph::AddEdge(int src, int dst, LabelId label) {
  SIMJ_CHECK(src >= 0 && src < num_vertices());
  SIMJ_CHECK(dst >= 0 && dst < num_vertices());
  SIMJ_CHECK_NE(src, dst);
  int e = num_edges();
  edges_.push_back(Edge{src, dst, label});
  out_[src].push_back(e);
  in_[dst].push_back(e);
}

std::vector<LabelId> LabeledGraph::EdgeLabelsBetween(int src, int dst) const {
  std::vector<LabelId> labels;
  for (int e : out_[src]) {
    if (edges_[e].dst == dst) labels.push_back(edges_[e].label);
  }
  return labels;
}

std::vector<int> LabeledGraph::SortedDegrees() const {
  std::vector<int> degrees(num_vertices());
  for (int v = 0; v < num_vertices(); ++v) degrees[v] = degree(v);
  std::sort(degrees.begin(), degrees.end(), std::greater<int>());
  return degrees;
}

LabelCounts LabeledGraph::VertexLabelCounts() const {
  LabelCounts counts;
  for (LabelId label : vertex_labels_) ++counts[label];
  return counts;
}

LabelCounts LabeledGraph::EdgeLabelCounts() const {
  LabelCounts counts;
  for (const Edge& e : edges_) ++counts[e.label];
  return counts;
}

std::string LabeledGraph::DebugString(const LabelDictionary& dict) const {
  std::ostringstream out;
  out << "graph(|V|=" << num_vertices() << ", |E|=" << num_edges() << ")\n";
  for (int v = 0; v < num_vertices(); ++v) {
    out << "  v" << v << ": " << dict.Name(vertex_labels_[v]) << "\n";
  }
  for (const Edge& e : edges_) {
    out << "  v" << e.src << " -[" << dict.Name(e.label) << "]-> v" << e.dst
        << "\n";
  }
  return out.str();
}

int DegreeDistanceFromSorted(const std::vector<int>& small_sorted,
                             const std::vector<int>& big_sorted) {
  SIMJ_CHECK_LE(small_sorted.size(), big_sorted.size());
  int total = 0;
  for (size_t i = 0; i < small_sorted.size(); ++i) {
    int diff = small_sorted[i] - big_sorted[i];
    if (diff > 0) total += diff;
  }
  return total;
}

int DegreeDistance(const LabeledGraph& a, const LabeledGraph& b) {
  const LabeledGraph& small = a.num_vertices() <= b.num_vertices() ? a : b;
  const LabeledGraph& big = a.num_vertices() <= b.num_vertices() ? b : a;
  return DegreeDistanceFromSorted(small.SortedDegrees(), big.SortedDegrees());
}

}  // namespace simj::graph
