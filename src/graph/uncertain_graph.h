// Uncertain graph model (paper Def. 2) and possible-world machinery
// (Def. 3).
//
// An uncertain graph has the same directed labeled structure as a
// LabeledGraph, but each vertex carries one or more mutually exclusive
// (label, probability) alternatives with probabilities summing to at most 1.
// A possible world picks one alternative per vertex; its appearance
// probability is the product of the picked probabilities. Edge labels are
// certain (the paper's fictitious-vertex reduction for uncertain edges is
// provided by LiftUncertainEdges).
//
// Possible-world *groups* (paper Section 6.2) are represented as
// UncertainGraphs whose vertices carry a subset of the original label
// alternatives, keeping the original (unnormalized) probabilities; the
// group's probability mass is then the product of per-vertex sums.

#ifndef SIMJ_GRAPH_UNCERTAIN_GRAPH_H_
#define SIMJ_GRAPH_UNCERTAIN_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "util/status.h"

namespace simj::graph {

struct LabelAlternative {
  LabelId label = kInvalidLabel;
  double prob = 0.0;

  friend bool operator==(const LabelAlternative&,
                         const LabelAlternative&) = default;
};

class UncertainGraph {
 public:
  UncertainGraph() = default;

  // Adds a vertex with the given mutually exclusive alternatives.
  // Requires: non-empty, every prob in (0, 1], sum <= 1 (+epsilon).
  int AddVertex(std::vector<LabelAlternative> alternatives);

  // Adds a certain vertex (single label with probability 1).
  int AddCertainVertex(LabelId label) {
    return AddVertex({LabelAlternative{label, 1.0}});
  }

  void AddEdge(int src, int dst, LabelId label);

  int num_vertices() const { return static_cast<int>(alternatives_.size()); }
  int num_edges() const { return structure_.num_edges(); }

  const std::vector<LabelAlternative>& alternatives(int v) const {
    SIMJ_CHECK(v >= 0 && v < num_vertices());
    return alternatives_[v];
  }

  // True when vertex v has a single alternative with probability 1.
  bool IsVertexCertain(int v) const;

  const std::vector<Edge>& edges() const { return structure_.edges(); }
  int degree(int v) const { return structure_.degree(v); }
  std::vector<int> SortedDegrees() const { return structure_.SortedDegrees(); }
  LabelCounts EdgeLabelCounts() const { return structure_.EdgeLabelCounts(); }

  // The label structure with vertex labels left invalid; used where only
  // the topology matters.
  const LabeledGraph& structure() const { return structure_; }

  // Number of possible worlds (product of alternative counts), saturating
  // at INT64_MAX.
  int64_t NumPossibleWorlds() const;

  // Total probability mass: product over vertices of the per-vertex sums.
  // Equals 1 for a full graph whose alternatives sum to 1 everywhere, and
  // the group mass for a restricted graph.
  double TotalMass() const;

  // Materializes the possible world selected by `choice` (choice[v] indexes
  // alternatives(v)).
  LabeledGraph Materialize(const std::vector<int>& choice) const;

  // Probability of that world: product of chosen alternative probabilities.
  double WorldProbability(const std::vector<int>& choice) const;

  // Returns a copy where vertex v keeps only the alternatives whose indices
  // are listed in `keep` (order preserved). Probabilities are not
  // renormalized, so masses of complementary restrictions add up.
  UncertainGraph RestrictVertex(int v, const std::vector<int>& keep) const;

  // Full-graph invariant validation for API boundaries (paper Def. 2/4):
  // the topology is valid (see LabeledGraph::ValidateTopology), every
  // vertex has a non-empty alternative set whose labels are valid in
  // `dict` and mutually exclusive (no duplicates), every probability lies
  // in (0, 1], and the per-vertex mass is <= 1 + epsilon. Returns the
  // first violation as a descriptive InvalidArgument status. AddVertex
  // aborts on these conditions for programmatic construction; Validate is
  // the recoverable form for data that crosses a trust boundary.
  Status Validate(const LabelDictionary& dict) const;

  // Lifts a certain graph into the uncertain model.
  static UncertainGraph FromCertain(const LabeledGraph& g);

  // Unchecked assembly from raw parts — the deserialization escape hatch.
  // Unlike AddVertex, this enforces nothing (empty alternative sets,
  // probabilities outside (0, 1], mass above 1, a structure whose vertex
  // count disagrees with `alternatives` all pass through); callers MUST
  // run Validate() before using the graph.
  static UncertainGraph FromParts(
      std::vector<std::vector<LabelAlternative>> alternatives,
      LabeledGraph structure);

  std::string DebugString(const LabelDictionary& dict) const;

 private:
  std::vector<std::vector<LabelAlternative>> alternatives_;
  LabeledGraph structure_;  // vertex labels unused (kInvalidLabel)
};

// Enumerates the possible worlds of an uncertain graph in odometer order.
//
//   for (PossibleWorldIterator it(g); !it.Done(); it.Next()) {
//     use(it.choice(), it.probability());
//   }
class PossibleWorldIterator {
 public:
  explicit PossibleWorldIterator(const UncertainGraph& g);

  bool Done() const { return done_; }
  void Next();

  const std::vector<int>& choice() const { return choice_; }
  double probability() const;

 private:
  const UncertainGraph& g_;
  std::vector<int> choice_;
  bool done_;
};

// Input to LiftUncertainEdges: a directed edge whose label is uncertain.
struct UncertainEdge {
  int src = 0;
  int dst = 0;
  std::vector<LabelAlternative> alternatives;
};

// Paper Section 3.1.1 remark: edge-label uncertainty reduces to vertex-label
// uncertainty by replacing each uncertain edge (u, v) with a fictitious
// vertex w carrying the edge's label alternatives plus edges u->w and w->v
// labeled with `link_label` (a reserved label interned by the caller).
// Certain vertices and edges are copied through unchanged.
UncertainGraph LiftUncertainEdges(
    const std::vector<std::vector<LabelAlternative>>& vertex_alternatives,
    const std::vector<Edge>& certain_edges,
    const std::vector<UncertainEdge>& uncertain_edges, LabelId link_label);

}  // namespace simj::graph

#endif  // SIMJ_GRAPH_UNCERTAIN_GRAPH_H_
