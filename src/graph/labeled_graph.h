// Certain (deterministic) labeled directed graph.
//
// This is the representation of a SPARQL query graph and of a materialized
// possible world of an uncertain graph. Vertices carry exactly one label;
// edges are directed and labeled; parallel edges with distinct labels are
// allowed (two predicates between the same subject/object); self loops are
// not (RDF query graphs never need them and excluding them keeps the degree
// arithmetic of the CSS bound simple).

#ifndef SIMJ_GRAPH_LABELED_GRAPH_H_
#define SIMJ_GRAPH_LABELED_GRAPH_H_

#include <string>
#include <vector>

#include "graph/label.h"
#include "util/status.h"

namespace simj::graph {

struct Edge {
  int src = 0;
  int dst = 0;
  LabelId label = kInvalidLabel;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class LabeledGraph {
 public:
  LabeledGraph() = default;

  // Adds a vertex and returns its index.
  int AddVertex(LabelId label);

  // Adds a directed edge src -> dst. Requires valid vertex indices and
  // src != dst.
  void AddEdge(int src, int dst, LabelId label);

  int num_vertices() const { return static_cast<int>(vertex_labels_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  LabelId vertex_label(int v) const {
    SIMJ_CHECK(v >= 0 && v < num_vertices());
    return vertex_labels_[v];
  }
  void set_vertex_label(int v, LabelId label) {
    SIMJ_CHECK(v >= 0 && v < num_vertices());
    vertex_labels_[v] = label;
  }

  const std::vector<Edge>& edges() const { return edges_; }
  const Edge& edge(int e) const { return edges_[e]; }

  // Indices into edges() of edges leaving / entering v.
  const std::vector<int>& out_edges(int v) const { return out_[v]; }
  const std::vector<int>& in_edges(int v) const { return in_[v]; }

  // Total degree (in + out) of v.
  int degree(int v) const {
    return static_cast<int>(out_[v].size() + in_[v].size());
  }

  // Labels of all parallel edges src -> dst (usually 0 or 1 entries).
  std::vector<LabelId> EdgeLabelsBetween(int src, int dst) const;

  // Total degrees sorted non-increasingly (used by the degree distance).
  std::vector<int> SortedDegrees() const;

  // Multiset of vertex labels / edge labels.
  LabelCounts VertexLabelCounts() const;
  LabelCounts EdgeLabelCounts() const;

  // Full-graph invariant validation for API boundaries: every edge
  // references in-range endpoints, has no self loop and carries a label id
  // that is valid in `dict`; the adjacency lists agree with edges(); and
  // every vertex label is a valid id. Returns the first violation as an
  // InvalidArgument status with the offending vertex/edge spelled out.
  // O(V + E) — call it when graphs cross a trust boundary (parsers,
  // RPC-style entry points); the join's debug build calls it per input.
  Status Validate(const LabelDictionary& dict) const;

  // Same, but skips vertex-label validity: the topology check used for
  // UncertainGraph::structure(), whose vertex labels are kInvalidLabel by
  // design.
  Status ValidateTopology(const LabelDictionary& dict) const;

  // Unchecked assembly from raw parts — the deserialization escape hatch.
  // Unlike AddVertex/AddEdge, this enforces nothing: the result may violate
  // every invariant, and callers MUST run Validate() before using the graph.
  // Construction itself stays memory-safe: edges with out-of-range
  // endpoints are kept in edges() but left out of the adjacency lists
  // (Validate reports them).
  static LabeledGraph FromParts(std::vector<LabelId> vertex_labels,
                                std::vector<Edge> edges);

  // Human-readable dump, e.g. for test failures.
  std::string DebugString(const LabelDictionary& dict) const;

 private:
  std::vector<LabelId> vertex_labels_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
};

// Degree distance dif(a, b) (paper Def. 9): with sorted degree sequences of
// the smaller graph (m vertices) and the larger graph, sum of
// positive-truncated differences d_i(small) - d_i(big) over i < m.
[[nodiscard]] int DegreeDistance(const LabeledGraph& a, const LabeledGraph& b);

// Same, from precomputed non-increasing degree sequences.
[[nodiscard]] int DegreeDistanceFromSorted(const std::vector<int>& small_sorted,
                             const std::vector<int>& big_sorted);

}  // namespace simj::graph

#endif  // SIMJ_GRAPH_LABELED_GRAPH_H_
