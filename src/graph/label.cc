#include "graph/label.h"

#include <algorithm>

namespace simj::graph {

LabelId LabelDictionary::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  // Inserting while frozen would race with concurrent join workers.
  SIMJ_CHECK(!frozen());
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  is_wildcard_.push_back(!name.empty() && name.front() == '?');
  index_.emplace(names_.back(), id);
  return id;
}

LabelId LabelDictionary::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidLabel : it->second;
}

int MatchableLabelCount(const LabelCounts& a, const LabelCounts& b,
                        const LabelDictionary& dict) {
  // Exact matches between identical non-wildcard labels, then wildcards
  // soak up the leftovers. Greedily matching wildcards against leftover
  // non-wildcards first is optimal: wildcard-wildcard pairs consume two
  // flexible items for one match.
  int exact = 0;
  int rem_a_nonwild = 0;
  int wild_a = 0;
  for (const auto& [label, count] : a) {
    if (dict.IsWildcard(label)) {
      wild_a += count;
      continue;
    }
    auto it = b.find(label);
    int matched = 0;
    if (it != b.end() && !dict.IsWildcard(it->first)) {
      matched = std::min(count, it->second);
    }
    exact += matched;
    rem_a_nonwild += count - matched;
  }
  int rem_b_nonwild = 0;
  int wild_b = 0;
  for (const auto& [label, count] : b) {
    if (dict.IsWildcard(label)) {
      wild_b += count;
      continue;
    }
    auto it = a.find(label);
    int matched = 0;
    if (it != a.end()) matched = std::min(count, it->second);
    rem_b_nonwild += count - matched;
  }
  int m1 = std::min(wild_a, rem_b_nonwild);
  int m2 = std::min(wild_b, rem_a_nonwild);
  int m3 = std::min(wild_a - m1, wild_b - m2);
  return exact + m1 + m2 + m3;
}

}  // namespace simj::graph
